package repro

// One benchmark per figure of the paper's evaluation, plus the §4.1/§4.2
// mechanism benches and the ablations DESIGN.md calls out. Each bench
// regenerates the figure's data end to end (fleet synthesis, trace
// collection, estimation, rendering-ready aggregates) and reports custom
// metrics so the run doubles as a results table:
//
//	go test -bench=. -benchmem
//
// Fleet-census benches use a 280-pair fleet per iteration (1/6 of the
// paper's 1613) to keep iterations short; cmd/repro runs the full size.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

var benchCfg = fleet.ExperimentConfig{Seed: 1, Pairs: 280}

// BenchmarkFig1OversamplingCensus regenerates Figure 1: the per-metric
// fraction of devices polled above their Nyquist rate.
func BenchmarkFig1OversamplingCensus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Census.OversampledFraction(), "%oversampled")
	}
}

// BenchmarkFig2AliasSpectra regenerates Figure 2: alias image geometry for
// a single tone sampled above and below its Nyquist rate.
func BenchmarkFig2AliasSpectra(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BelowPeak, "aliasHz")
	}
}

// BenchmarkFig3TwoToneAliasing regenerates Figure 3: the 400+440 Hz tone
// sampled at 890/800/600 Hz with reconstructions.
func BenchmarkFig3TwoToneAliasing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Variants[2].Fidelity.NRMSE, "worstNRMSE")
	}
}

// BenchmarkFig4ReductionRatioCDFs regenerates Figure 4: per-metric CDFs of
// the possible sampling-rate reduction.
func BenchmarkFig4ReductionRatioCDFs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FracAbove1000, "%ge1000x")
		b.ReportMetric(res.Pooled.Quantile(0.5), "medianReduction")
	}
}

// BenchmarkFig5NyquistBoxplot regenerates Figure 5: the box plot of
// Nyquist rates per metric family.
func BenchmarkFig5NyquistBoxplot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TemperatureRange[1], "tempMaxHz")
	}
}

// BenchmarkFig6TemperatureRoundTrip regenerates Figure 6: the temperature
// signal downsampled to its Nyquist rate and reconstructed.
func BenchmarkFig6TemperatureRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig6(fleet.Fig6Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fidelity.L2, "L2")
		b.ReportMetric(res.Fidelity.CostReduction(), "reduction")
	}
}

// BenchmarkFig7MovingWindowNyquist regenerates Figure 7: the 6-hour
// moving-window Nyquist scan with a mid-trace regime change.
func BenchmarkFig7MovingWindowNyquist(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunFig7(fleet.Fig7Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PostMedian/res.PreMedian, "rateJump")
	}
}

// BenchmarkDualRateAliasDetection exercises the §4.1 detector sweep.
func BenchmarkDualRateAliasDetection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunDualRate(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Correct), "correctVerdicts")
	}
}

// BenchmarkAdaptiveSampler exercises the §4.2 probe/converge/decay loop
// against static polling on a day with a link flap.
func BenchmarkAdaptiveSampler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunAdaptive(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Comparison.CostReduction, "costReduction")
	}
}

// BenchmarkAblationEnergyCutoff sweeps the 90/99/99.99% energy cut-off
// (DESIGN.md choice 1).
func BenchmarkAblationEnergyCutoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.RunCutoffAblation(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweetSpotFrontier traces the fleet-wide cost/quality curve of
// the paper's title: audit, aggregate demand, budget sweep.
func BenchmarkSweetSpotFrontier(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunBudgetFrontier(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TodayOverSpend, "overspendX")
	}
}

// BenchmarkErgodicity measures the §6 fleet-ergodicity exploration.
func BenchmarkErgodicity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunErgodicity(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Homogeneous.MeanKS, "meanKS")
	}
}

// BenchmarkAblationWindowLength sweeps the analysis window (1/2/4 days),
// the resolution-floor ablation of EXPERIMENTS.md.
func BenchmarkAblationWindowLength(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunWindowAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rows[len(res.Rows)-1].FracAbove1000, "%ge1000x@4d")
	}
}

// BenchmarkAblationMemory compares the §4.2 adaptive loop with and
// without requirement memory on recurring fast episodes.
func BenchmarkAblationMemory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunMemoryAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[1].InadequateOnsets), "missedWithMemory")
		b.ReportMetric(float64(res.Rows[0].InadequateOnsets), "missedMemoryless")
	}
}

// BenchmarkAblationHeadroom sweeps §4.2's headroom factor against a
// first-of-its-kind event (capture vs standing cost).
func BenchmarkAblationHeadroom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunHeadroomAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		captured := 0.0
		for _, row := range res.Rows {
			if row.OnsetCaptured {
				captured++
			}
		}
		b.ReportMetric(captured, "onsetsCaptured")
	}
}

// BenchmarkAblationEstimatorVariants scores estimator variants (plain /
// linear detrend / Hann / Welch) against ground truth.
func BenchmarkAblationEstimatorVariants(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunEstimatorAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MedianRatio, "paperMedianRatio")
	}
}

// BenchmarkAblationInterpolation compares the pre-cleaning interpolation
// policies of §3.2 (DESIGN.md choice 4) on a jittered trace.
func BenchmarkAblationInterpolation(b *testing.B) {
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	s := nyquist.NewSeries(nil)
	for i := 0; i < 2880; i++ {
		jitter := time.Duration(i%17) * 300 * time.Millisecond
		ts := start.Add(time.Duration(i)*30*time.Second + jitter)
		s.AppendValue(ts, 50+10*float64(i%120)/120)
	}
	for _, ip := range []nyquist.Interpolation{nyquist.NearestNeighbor, nyquist.Linear, nyquist.PreviousValue} {
		b.Run(ip.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Regularize(30*time.Second, ip); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamVsBatchRefresh measures the cost of keeping a Nyquist
// estimate fresh after each new poll — the live-monitoring workload. The
// batch path re-runs a full-trace FFT per poll, O(N log N); the streaming
// engine slides its spectral state, O(N) with a far smaller constant. The
// sizes sweep from a 1-day/1-minute trace to a 1-day/1-second trace to
// show the gap widening with trace length.
func BenchmarkStreamVsBatchRefresh(b *testing.B) {
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	for _, size := range []struct {
		name     string
		n        int
		interval time.Duration
	}{
		{"1day-1min", 1440, time.Minute},
		{"1day-15s", 5760, 15 * time.Second},
		{"1day-1s", 86400, time.Second},
	} {
		vals := make([]float64, size.n)
		for i := range vals {
			ts := float64(i) * size.interval.Seconds()
			vals[i] = 50 + 5*math.Sin(2*math.Pi*12/86400*ts) + 2*math.Sin(2*math.Pi*40/86400*ts)
		}
		u, err := nyquist.NewUniform(start, size.interval, vals)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("batch/"+size.name, func(b *testing.B) {
			var est nyquist.Estimator
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(u); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("stream/"+size.name, func(b *testing.B) {
			st, err := nyquist.NewStreamEstimator(nyquist.StreamConfig{
				Interval:      size.interval,
				WindowSamples: size.n,
				EmitEvery:     1 << 30,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range vals {
				st.Push(v)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Push(vals[i%len(vals)])
				if _, err := st.Current(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetScanner measures the concurrent fleet census across pool
// sizes: throughput should scale with workers up to GOMAXPROCS.
func BenchmarkFleetScanner(b *testing.B) {
	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 7, TotalPairs: 140})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sc, err := fleet.NewScanner(fleet.ScanConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := sc.ScanAll(f)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Pairs), "pairs")
			}
		})
	}
}

// BenchmarkEstimateDayTrace measures the core estimator on a single
// day-long 30-second trace — the unit of work every census repeats.
func BenchmarkEstimateDayTrace(b *testing.B) {
	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 3, TotalPairs: 14})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	u := f.Devices[0].Trace(start, 0, fleet.Day)
	var est nyquist.Estimator
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(u); err != nil && err != nyquist.ErrAliased {
			b.Fatal(err)
		}
	}
}
