// Fleetaudit: census an entire (simulated) datacenter the way §3.2 of the
// paper audits a production cloud: for every metric/device pair, estimate
// the Nyquist rate from one day of its own trace and compare it against
// the rate the monitoring system actually uses.
//
// The output is the paper's headline evidence in miniature: the fraction
// of devices over-sampling (Fig. 1), the distribution of possible
// reduction ratios (Fig. 4), and the aggregate savings a Nyquist-aware
// collector would bank.
//
// Run with: go run ./examples/fleetaudit [-pairs 280]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

func main() {
	pairs := flag.Int("pairs", 280, "metric/device pairs to audit")
	flag.Parse()

	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 7, TotalPairs: *pairs})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	var est nyquist.Estimator

	type bucket struct {
		total, over, aliased int
		ratios               []float64
	}
	byMetric := map[string]*bucket{}
	var allRatios []float64
	var samplesNow, samplesNeeded float64

	for _, d := range f.Devices {
		b := byMetric[d.Metric.String()]
		if b == nil {
			b = &bucket{}
			byMetric[d.Metric.String()] = b
		}
		b.total++

		u := d.Trace(start, 0, fleet.Day)
		res, err := est.Estimate(u)
		switch {
		case errors.Is(err, nyquist.ErrAliased):
			b.aliased++
			continue
		case err != nil:
			log.Fatalf("%s: %v", d.ID, err)
		}
		if res.Oversampled() {
			b.over++
		}
		b.ratios = append(b.ratios, res.ReductionRatio)
		allRatios = append(allRatios, res.ReductionRatio)
		samplesNow += u.SampleRate() * fleet.Day.Seconds()
		samplesNeeded += res.NyquistRate * fleet.Day.Seconds()
	}

	names := make([]string, 0, len(byMetric))
	for name := range byMetric {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-20s %7s %12s %9s %14s\n", "metric", "devices", "oversampled", "aliased", "median cut")
	for _, name := range names {
		b := byMetric[name]
		fmt.Printf("%-20s %7d %11.0f%% %8d %13.0fx\n",
			name, b.total, 100*float64(b.over)/float64(b.total), b.aliased, median(b.ratios))
	}

	fmt.Printf("\nfleet-wide: %d pairs audited\n", f.Len())
	fmt.Printf("  samples collected per day today: %.0f\n", samplesNow)
	fmt.Printf("  samples actually needed per day: %.0f\n", samplesNeeded)
	if samplesNeeded > 0 {
		fmt.Printf("  => a Nyquist-aware collector shrinks the pipeline %.0fx\n", samplesNow/samplesNeeded)
	}
	fmt.Printf("  pairs reducible >=100x: %.0f%%   >=1000x: %.0f%%\n",
		100*fracAbove(allRatios, 100), 100*fracAbove(allRatios, 1000))
	fmt.Println("\n(cf. paper §3.2: 89% of 1613 production pairs over-sampled; ~20% reducible 1000x)")
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func fracAbove(v []float64, x float64) float64 {
	if len(v) == 0 {
		return 0
	}
	n := 0
	for _, r := range v {
		if r >= x {
			n++
		}
	}
	return float64(n) / float64(len(v))
}
