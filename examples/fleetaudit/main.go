// Fleetaudit: census an entire (simulated) datacenter the way §3.2 of the
// paper audits a production cloud: for every metric/device pair, estimate
// the Nyquist rate from one day of its own trace and compare it against
// the rate the monitoring system actually uses.
//
// The audit runs on the concurrent fleet scanner: devices are sharded
// across a bounded worker pool, each device's day of polls streams through
// an incremental estimator (no fleet-sized buffering), and per-device
// results arrive over a channel as workers finish them.
//
// The output is the paper's headline evidence in miniature: the fraction
// of devices over-sampling (Fig. 1), the distribution of possible
// reduction ratios (Fig. 4), and the aggregate savings a Nyquist-aware
// collector would bank.
//
// Run with: go run ./examples/fleetaudit [-pairs 280] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/fleet"
)

func main() {
	pairs := flag.Int("pairs", 280, "metric/device pairs to audit")
	workers := flag.Int("workers", 0, "scanner worker pool size (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print each pair as its result streams in")
	flag.Parse()

	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 7, TotalPairs: *pairs})
	if err != nil {
		log.Fatal(err)
	}
	sc, err := fleet.NewScanner(fleet.ScanConfig{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	// Stream per-device results as they complete, then aggregate them
	// deterministically (the report is identical for any worker count).
	results := make([]fleet.DeviceResult, 0, f.Len())
	for r := range sc.Scan(f) {
		if *verbose {
			switch {
			case r.Err != nil:
				fmt.Printf("  %-32s %v\n", r.ID, r.Err)
			default:
				fmt.Printf("  %-32s %.1fx reducible\n", r.ID, r.Result.ReductionRatio)
			}
		}
		results = append(results, r)
	}
	rep := fleet.Aggregate(results, fleet.Day)

	fmt.Print(rep.Render())
	fmt.Println("\n(cf. paper §3.2: 89% of 1613 production pairs over-sampled; ~20% reducible 1000x)")
}
