// Adaptive: watch the §4.2 dynamic sampling loop ride out a link flap.
//
// A switch port's FCS-error rate is normally a slow signal, but a failing
// transceiver makes it oscillate fast for a couple of hours. A static
// poller either wastes samples forever (fast rate) or misses the incident
// (slow rate). The adaptive loop starts slow, detects aliasing with
// dual-rate probes the moment the flap begins, multiplicatively probes up,
// and decays back once the link heals.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	dev, err := fleet.NewDevice("switch42/fcs", fleet.FCSErrors, 1e-4, 30*time.Second, rng, 4242)
	if err != nil {
		log.Fatal(err)
	}
	const day = 86400.0
	// The flap: two hours of 0.004 Hz oscillation starting at hour 8.
	dev.AddBurst(fleet.Burst{Start: 8 * 3600, Duration: 2 * 3600, Freq: 4e-3, Amp: 60})

	sampler, err := nyquist.NewAdaptiveSampler(nyquist.AdaptiveConfig{
		InitialRate:   1.0 / 300, // start at one poll per 5 minutes
		MaxRate:       1.0 / 10,
		EpochDuration: 3600, // re-decide hourly
		DecreaseAfter: 2,
		Memory:        false,
		Estimator:     nyquist.EstimatorConfig{EnergyCutoff: 0.90},
		// Hour-long windows of a diurnal signal see less than one cycle,
		// so their spectra are mostly trend leakage; a looser tolerance
		// keeps that from reading as aliasing between the two rates.
		Detector: nyquist.DualRateConfig{Tolerance: 0.25},
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := sampler.Run(dev, 0, day)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hour  mode       rate        verdict   next rate")
	for _, e := range run.Epochs {
		marker := ""
		if e.Start >= 8*3600 && e.Start < 10*3600 {
			marker = "   <- flap in progress"
		}
		fmt.Printf("%4.0f  %-9s  %-10s  %-8s  %-10s%s\n",
			e.Start/3600, e.Mode, rate(e.Rate), verdict(e.Aliased), rate(e.NextRate), marker)
	}

	// The honest comparison: a static poller that must CATCH the flap has
	// to run at the peak rate all day; the adaptive poller pays it only
	// while needed.
	peak := 0.0
	for _, e := range run.Epochs {
		if e.Rate > peak {
			peak = e.Rate
		}
	}
	fmt.Printf("\ntotal samples spent: %d\n", run.TotalSamples)
	fmt.Printf("static poller provisioned for the flap (%.3g Hz all day): %d samples\n",
		peak, int(day*peak))
	fmt.Printf("peak requirement remembered: %.3g Hz\n", run.MaxNyquistSeen)
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("The rate trace shows the §4.2 lifecycle: probe at startup, converge")
	fmt.Println("low, spike with the incident (dual-rate probes caught the aliasing),")
	fmt.Println("then decay once the line quiets down.")
}

func rate(r float64) string {
	if r <= 0 {
		return "-"
	}
	return fmt.Sprintf("1/%.0fs", 1/r)
}

func verdict(aliased bool) string {
	if aliased {
		return "ALIASED"
	}
	return "clean"
}
