// Archiver: the paper's a-posteriori path (§4, first paragraph).
//
// Sometimes the measurement itself is cheap — the switch exports the
// counter anyway — and the real costs are storage and downstream
// analysis. Then nothing needs to change at the device: keep polling
// fast, but before writing to the TSDB, compute each window's Nyquist
// rate and store only the window re-sampled at that rate. Readers
// reconstruct on demand.
//
// This example streams two days of 30-second link-utilization polls
// through the archiver, shows the storage bill shrinking, and reads the
// series back to verify nothing an operator could query was lost.
//
// Run with: go run ./examples/archiver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	dev, err := fleet.NewDevice("tor17/linkutil", fleet.LinkUtil, 3e-4, 30*time.Second, rng, 1717)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

	// The fast path: poll every 30 s into the archiver instead of
	// straight into the store.
	archive := fleet.NewStore(0)
	arch, err := fleet.NewArchiver(dev.ID, archive, 30*time.Second, fleet.ArchiverConfig{
		WindowSamples: 2880, // analyze one day at a time
		QuantStep:     dev.Profile().QuantStep,
	})
	if err != nil {
		log.Fatal(err)
	}
	const days = 2
	total := days * 2880
	for i := 0; i < total; i++ {
		ts := start.Add(time.Duration(i) * 30 * time.Second)
		if err := arch.Ingest(nyquist.Point{Time: ts, Value: dev.At(float64(i) * 30)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := arch.Flush(); err != nil {
		log.Fatal(err)
	}

	raw, stored, aliasedBlocks := arch.Savings()
	model := fleet.DefaultCostModel()
	fmt.Printf("polled:  %6d samples (%.0f KB at %0.f B/sample)\n",
		raw, float64(raw)*model.StoreBytesPerSample/1024, model.StoreBytesPerSample)
	fmt.Printf("stored:  %6d samples (%.1f KB) — %.0fx smaller\n",
		stored, float64(stored)*model.StoreBytesPerSample/1024, arch.Reduction())
	fmt.Printf("blocks kept raw (aliased or too short): %d\n\n", aliasedBlocks)

	// The read path: reconstruct at the original resolution and compare
	// against what a direct store would have held.
	rec, err := arch.ReadBack(1.0 / 30)
	if err != nil {
		log.Fatal(err)
	}
	orig := make([]float64, total)
	for i := range orig {
		orig[i] = dev.At(float64(i) * 30)
	}
	n := rec.Len()
	if n > total {
		n = total
	}
	fid, err := nyquist.CompareSignals(orig[:n], rec.Values[:n])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d samples at the original 30 s grid\n", n)
	fmt.Printf("reconstruction: NRMSE %.4f, max error %.2f %s\n",
		fid.NRMSE, fid.MaxAbs, dev.Profile().Unit)
	fmt.Println("\nThe TSDB holds a fraction of the bytes; queries see the same signal.")

	// The storage leg itself is now a sharded multi-resolution tsdb.
	// Re-run the same session against a store bounded to a sliver of the
	// archived footprint: where the seed store returned ErrStoreFull and
	// stalled, the engine cascades old samples into Nyquist-derived
	// min/max/mean tiers — resolution degrades, the session never stops.
	small := fleet.NewTieredStore(fleet.StoreConfig{
		Retention: fleet.RetentionConfig{RawCapacity: 64, TierCapacity: 32},
	})
	arch2, err := fleet.NewArchiver(dev.ID, small, 30*time.Second, fleet.ArchiverConfig{
		WindowSamples: 2880,
		QuantStep:     dev.Profile().QuantStep,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < total; i++ {
		ts := start.Add(time.Duration(i) * 30 * time.Second)
		if err := arch2.Ingest(nyquist.Point{Time: ts, Value: dev.At(float64(i) * 30)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := arch2.Flush(); err != nil {
		log.Fatal(err)
	}
	st := small.Stats()
	fmt.Printf("\nbounded store (64-point raw ring): %d writes -> %d retained, %d compacted, %d dropped\n",
		st.Appends, st.Retained(), st.Compacted, st.Dropped)
	for _, s := range small.Snapshot() {
		fmt.Printf("  %s: retention tuned to %.4g Hz (archiver estimate), raw %d pts\n",
			s.ID, s.NyquistRate, s.RawPoints)
		for i, t := range s.Tiers {
			fmt.Printf("    tier %d: %3d buckets @ %v (%d samples summarized)\n",
				i+1, t.Buckets, t.Width, t.Samples)
		}
	}

	// The operator's range query: day 1 under a 12-point budget. The
	// engine stitches the cheapest tiers covering the window and thins to
	// the budget.
	res, err := small.QueryRange(dev.ID, start, start.Add(24*time.Hour), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery day 1 (budget 12): %d points, thinned=%v, tiers:", len(res.Points), res.Thinned)
	for _, ts := range res.Tiers {
		fmt.Printf(" [tier %d: %d pts]", ts.Tier, ts.Points)
	}
	fmt.Println()
}
