// Closedloop: the paper's whole argument in one running system. A
// synthetic datacenter regime (pick one from the scenario catalog) is
// monitored by a fleet controller that closes the loop the paper leaves
// open: estimate each signal's Nyquist rate from its own stream, spend a
// fleet-wide sample budget where the estimates say it matters, and let
// the storage engine's retention follow the same estimates — so
// collection, transmission, storage and analysis all shrink together
// toward the cost/quality sweet spot.
//
// The run prints three acts:
//
//  1. The census (PR 1's concurrent scanner): how over-sampled the fleet
//     is at its ad-hoc production rates.
//  2. The control rounds: fleet rate, demand, budget quality and
//     convergence per round, as the loop re-allocates poll rates.
//  3. The outcome: cost reduction versus production, reconstruction
//     error against ground truth, and the storage engine's Nyquist-tuned
//     retention state.
//
// Run with: go run ./examples/closedloop [-scenario racks] [-devices 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/fleet"
)

func main() {
	name := flag.String("scenario", "racks", "workload regime (diurnal, microburst, flatline, sweep, racks, phasejitter)")
	devices := flag.Int("devices", 200, "fleet size")
	seed := flag.Int64("seed", 7, "scenario seed")
	flag.Parse()

	sc, err := fleet.BuildScenario(*name, *seed, *devices)
	if err != nil {
		log.Fatal(err)
	}
	prod := 0.0
	for _, d := range sc.Fleet.Devices {
		prod += d.PollRate()
	}
	budget := prod * sc.Spec.BudgetFraction

	ctl, err := fleet.NewController(sc, fleet.ControllerConfig{
		BudgetHz:    budget,
		InitialScan: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== act 1: the census ===\n")
	fmt.Printf("regime %q: %s\n\n", sc.Spec.Name, sc.Spec.Description)
	fmt.Print(ctl.CensusReport().Render())

	fmt.Printf("\n=== act 2: closing the loop ===\n")
	rep, err := ctl.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())

	fmt.Printf("\n=== act 3: where the budget went ===\n")
	over, under := 0, 0
	for _, st := range ctl.Devices() {
		switch {
		case st.TrueNyquist > 0 && st.Rate >= st.TrueNyquist:
			over++
		default:
			under++
		}
	}
	fmt.Printf("devices polling at/above their true Nyquist rate: %d; below (budgeted or flat): %d\n", over, under)
	if rep.FinalHz > 0 {
		fmt.Printf("steady-state pipeline: %.4g Hz vs %.4g Hz production (%.1fx cheaper), quality bar %.0f%% of swing, measured %.1f%%\n",
			rep.FinalHz, rep.ProductionHz, rep.ProductionHz/rep.FinalHz, 100*sc.Spec.QualityBar, 100*rep.Quality.MeanErr)
	}
	fmt.Println("\n(cf. the paper's sweet spot: spend the monitoring budget where the signals need it, nowhere else)")
}
