// Dualrate: see the §4.1 aliasing detector work — and see its blind spot.
//
// Sampling a signal at one rate cannot tell you whether you are aliasing:
// the folded spectrum looks like a perfectly plausible slow signal. Penny
// et al.'s trick (paper §4.1) is to sample at TWO rates whose ratio is not
// an integer; content above the slower Nyquist limit folds to different
// image frequencies in the two spectra, so comparing them exposes it.
//
// This example probes a signal with a hidden 0.9 Hz component using slow
// rates from 0.5 Hz to 3 Hz and prints the verdicts, then demonstrates why
// the non-integer-ratio condition matters.
//
// Run with: go run ./examples/dualrate
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"repro/nyquist"
)

func main() {
	// The monitored signal: slow 0.05 Hz baseline plus a hidden fast
	// 0.9 Hz component (true Nyquist rate: 1.8 Hz).
	signal := nyquist.SamplerFunc(func(t float64) float64 {
		return 10 + 4*math.Sin(2*math.Pi*0.05*t) + 3*math.Sin(2*math.Pi*0.9*t)
	})
	const trueNyquist = 1.8

	det := nyquist.NewDualRateDetector(nyquist.DualRateConfig{})
	const fast = 7.3 // companion rate, above everything

	fmt.Println("slow rate  ground truth  detector verdict  divergence")
	for _, slow := range []float64{0.53, 0.97, 1.31, 1.51, 2.17, 3.01} {
		v, _, err := det.Probe(signal, 0, 120, fast, slow)
		if err != nil {
			log.Fatalf("probe at %v Hz: %v", slow, err)
		}
		truth := "aliases"
		if slow >= trueNyquist {
			truth = "safe"
		}
		fmt.Printf("%6.2f Hz  %-12s  %-16s  %.3f\n", slow, truth, verdict(v), v.Score)
	}

	// The blind spot: an integer rate ratio folds content onto the SAME
	// bins in both spectra, so the comparison sees nothing. The library
	// refuses the pair outright.
	fmt.Println()
	if _, _, err := det.Probe(signal, 0, 120, fast, fast/4); errors.Is(err, nyquist.ErrRateRatio) {
		fmt.Printf("probing at %.3g and %.3g Hz rejected: %v\n", fast, fast/4, err)
	}
	safe := nyquist.SuggestSlowRate(fast)
	fmt.Printf("suggested companion for %.3g Hz: %.3g Hz (golden-ratio spacing)\n", fast, safe)
	if err := nyquist.ValidateRatePair(fast, safe); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIn the adaptive loop (§4.2) this check runs every epoch: one detection")
	fmt.Println("costs ~2x samples for that window, which the >2x average over-sampling")
	fmt.Println("the paper measured more than pays back.")
}

func verdict(v *nyquist.Verdict) string {
	if v.Aliased {
		return "ALIASED"
	}
	return "clean"
}
