// Quickstart: estimate how often a metric actually needs to be measured.
//
// We build a day-long trace the way a production collector would see it —
// a diurnal signal polled every 30 seconds, rounded to the sensor's
// resolution — then ask the toolkit three questions:
//
//  1. What is this signal's Nyquist rate? (§3.2 of the paper)
//  2. How much collection cost can we shed?
//  3. If we keep only Nyquist-rate samples, how well can we reconstruct
//     the original? (§4.3)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/nyquist"
)

func main() {
	// --- 1. A production-style trace: 30 s polls for one day. ---------
	const (
		pollInterval = 30 * time.Second
		day          = 24 * time.Hour
	)
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	quant, err := nyquist.NewQuantizer(0.5) // sensor reports half units
	if err != nil {
		log.Fatal(err)
	}
	n := int(day / pollInterval)
	vals := make([]float64, n)
	for i := range vals {
		t := float64(i) * pollInterval.Seconds()
		// A temperature-like signal: diurnal cycle plus two harmonics.
		v := 45 +
			6*math.Sin(2*math.Pi*1/86400.0*t) +
			2*math.Sin(2*math.Pi*3/86400.0*t+1) +
			1*math.Sin(2*math.Pi*8/86400.0*t+2)
		vals[i] = quant.Value(v)
	}
	trace, err := nyquist.NewUniform(start, pollInterval, vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d samples at %v intervals (%.4g Hz)\n",
		trace.Len(), trace.Interval, trace.SampleRate())

	// --- 2. Estimate the Nyquist rate (99%% energy cut-off). ----------
	var est nyquist.Estimator // zero value = the paper's defaults
	res, err := est.Estimate(trace)
	if err != nil {
		log.Fatalf("estimate: %v", err)
	}
	fmt.Printf("nyquist rate: %.4g Hz — the signal only needs a sample every %v\n",
		res.NyquistRate, time.Duration(float64(time.Second)/res.NyquistRate).Round(time.Minute))
	fmt.Printf("current over-sampling: %.0fx\n", res.ReductionRatio)

	// --- 3. Keep only Nyquist-rate samples and reconstruct. -----------
	rec, fid, err := nyquist.RoundTrip(trace, 1.2*res.NyquistRate, nyquist.ReconstructConfig{
		QuantStep: 0.5, // re-apply the sensor grid when reconstructing (§4.3)
	})
	if err != nil {
		log.Fatalf("round trip: %v", err)
	}
	fmt.Printf("\nkept %d of %d samples (%.0fx cheaper)\n",
		fid.SamplesAfter, fid.SamplesBefore, fid.CostReduction())
	fmt.Printf("reconstruction: L2 distance %.3g, max pointwise error %.3g\n",
		fid.L2, fid.MaxAbs)
	fmt.Printf("reconstructed trace has %d samples at the original grid\n", rec.Len())

	if fid.MaxAbs <= 0.5 {
		fmt.Println("\n=> every reconstructed reading is within one sensor quantum of the original:")
		fmt.Println("   the discarded samples carried no information (Fig. 6 of the paper).")
	}
}
