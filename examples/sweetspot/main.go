// Sweetspot: find the cost-vs-quality knee for a whole fleet — the
// paper's title, as a number you can budget against.
//
// The workflow mirrors what a platform team would actually do:
//
//  1. Audit every metric/device pair's Nyquist rate from its own traces.
//  2. Sum them: that's the fleet's true information demand, in samples/s.
//  3. Sweep a global budget through a proportional-fair allocator and
//     plot quality against cost. Quality climbs linearly until the budget
//     equals the demand, then goes flat — everything beyond the knee is
//     waste, and production today sits far beyond it.
//
// Run with: go run ./examples/sweetspot
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

func main() {
	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 11, TotalPairs: 140})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	var est nyquist.Estimator

	// 1-2: audit and sum the demand.
	var demands []fleet.Demand
	var todayHz float64
	for _, d := range f.Devices {
		res, err := est.Estimate(d.Trace(start, 0, fleet.Day))
		if errors.Is(err, nyquist.ErrAliased) {
			continue // unreliable; a real rollout would re-measure faster
		}
		if err != nil {
			log.Fatal(err)
		}
		w := 1.0
		if d.Metric == fleet.FCSErrors || d.Metric == fleet.LossyPaths {
			w = 4 // fault signals matter more than capacity gauges
		}
		demands = append(demands, fleet.Demand{ID: d.ID, NyquistRate: res.NyquistRate, Weight: w})
		todayHz += d.PollRate()
	}
	var demandHz float64
	for _, d := range demands {
		demandHz += d.NyquistRate
	}
	fmt.Printf("audited %d pairs\n", len(demands))
	fmt.Printf("information demand: %.3f samples/s   production spend: %.3f samples/s (%.0fx)\n\n",
		demandHz, todayHz, todayHz/demandHz)

	// 3: sweep the budget.
	pts, err := fleet.Frontier(demands, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("budget (x demand)  samples/s  quality  lossless metrics")
	for _, p := range pts {
		fmt.Printf("%13.2fx  %9.3f  %7.3f  %d/%d\n",
			p.BudgetFraction, p.BudgetHz, p.Quality, p.Lossless, len(demands))
	}

	// What would a 60% budget cut from the knee cost, and whom?
	plan, err := fleet.Allocate(demands, 0.4*demandHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat 0.4x demand: quality %.2f, %d/%d metrics still lossless\n",
		plan.QualityScore(), plan.LosslessCount, len(demands))
	fmt.Println("weighted fault signals (FCS errors, lossy paths) keep a larger share of")
	fmt.Println("their band than best-effort gauges — the allocator spends scarcity where")
	fmt.Println("it hurts least.")
}
