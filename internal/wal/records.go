// Encoding of the individual record payloads: sealed-block and
// estimator-state records for the segment log, and the per-series
// retention snapshot records. Framing and integrity live in wal.go.

package wal

import (
	"fmt"
	"time"

	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
)

// blockRec is one sealed raw block of one series.
type blockRec struct {
	id  string
	blk tsdb.Block
}

func encodeBlockRec(e *enc, r blockRec) {
	e.str(r.id)
	e.uvarint(uint64(r.blk.Len()))
	e.bytes(r.blk.Data())
}

// decodeBlockRec rebuilds the block, copying its payload out of the
// replay buffer (the buffer is reused record to record, but a rebuilt
// Block retains its data slice for the life of the store).
func decodeBlockRec(payload []byte) (blockRec, error) {
	d := dec{b: payload}
	id := d.str()
	n := int(d.uvarint())
	data := append([]byte(nil), d.bytes()...)
	if err := d.err(); err != nil {
		return blockRec{}, err
	}
	blk, err := tsdb.RebuildBlock(data, n)
	if err != nil {
		return blockRec{}, fmt.Errorf("block record for %q: %w", id, err)
	}
	return blockRec{id: id, blk: blk}, nil
}

// stateRec is one series' estimator tuning state plus the retention
// rate the store is currently tuned to.
type stateRec struct {
	st          monitor.IngestSeriesState
	retentionHz float64
}

func encodeStateRec(e *enc, r stateRec) {
	e.str(r.st.Series)
	e.varint(int64(r.st.Interval))
	e.varint(r.st.Samples)
	e.varint(int64(r.st.Reprobes))
	e.f64(r.st.NyquistRate)
	e.varint(int64(r.st.CleanStreak))
	e.f64(r.retentionHz)
}

func decodeStateRec(payload []byte) (stateRec, error) {
	d := dec{b: payload}
	r := stateRec{}
	r.st.Series = d.str()
	r.st.Interval = d.duration()
	r.st.Samples = d.varint()
	r.st.Reprobes = int(d.varint())
	r.st.NyquistRate = d.f64()
	r.st.CleanStreak = int(d.varint())
	r.retentionHz = d.f64()
	return r, d.err()
}

// encodeSeriesSnap writes one tsdb.SeriesSnapshot.
func encodeSeriesSnap(e *enc, s tsdb.SeriesSnapshot) {
	e.str(s.ID)
	e.f64(s.NyquistRate)
	e.varint(int64(s.Gap))
	e.bool(s.HaveLast)
	if s.HaveLast {
		e.nanos(s.LastTime)
	}
	e.varint(s.Appends)
	e.varint(s.Compacted)
	e.varint(s.Dropped)
	e.uvarint(uint64(len(s.Raw)))
	for _, seg := range s.Raw {
		if seg.Points != nil {
			e.bool(false)
			encodePoints(e, seg.Points)
		} else {
			e.bool(true)
			e.uvarint(uint64(seg.Block.Len()))
			e.bytes(seg.Block.Data())
		}
	}
	encodePoints(e, s.Active)
	e.uvarint(uint64(len(s.Tiers)))
	for _, t := range s.Tiers {
		e.varint(int64(t.Width))
		e.uvarint(uint64(len(t.Buckets)))
		for _, b := range t.Buckets {
			encodeBucket(e, b)
		}
		e.bool(t.Cur != nil)
		if t.Cur != nil {
			encodeBucket(e, *t.Cur)
		}
	}
}

func decodeSeriesSnap(payload []byte) (tsdb.SeriesSnapshot, error) {
	d := dec{b: payload}
	s := tsdb.SeriesSnapshot{}
	s.ID = d.str()
	s.NyquistRate = d.f64()
	s.Gap = d.duration()
	s.HaveLast = d.bool()
	if s.HaveLast {
		s.LastTime = d.nanos()
	}
	s.Appends = d.varint()
	s.Compacted = d.varint()
	s.Dropped = d.varint()
	nRaw := int(d.uvarint())
	for i := 0; i < nRaw && d.err() == nil; i++ {
		if d.bool() {
			n := int(d.uvarint())
			data := append([]byte(nil), d.bytes()...)
			if d.err() != nil {
				break
			}
			blk, err := tsdb.RebuildBlock(data, n)
			if err != nil {
				return s, fmt.Errorf("snapshot series %q: %w", s.ID, err)
			}
			s.Raw = append(s.Raw, tsdb.RawSegment{Block: blk})
		} else {
			pts := decodePoints(&d)
			s.Raw = append(s.Raw, tsdb.RawSegment{Points: pts})
		}
	}
	s.Active = decodePoints(&d)
	nTiers := int(d.uvarint())
	for k := 0; k < nTiers && d.err() == nil; k++ {
		t := tsdb.TierSnapshot{Width: d.duration()}
		nb := int(d.uvarint())
		for i := 0; i < nb && d.err() == nil; i++ {
			t.Buckets = append(t.Buckets, decodeBucket(&d))
		}
		if d.bool() {
			b := decodeBucket(&d)
			t.Cur = &b
		}
		s.Tiers = append(s.Tiers, t)
	}
	return s, d.err()
}

// encodePoints writes a point slice with delta-coded nanos (snapshot
// active tails are small; this is compactness without another codec).
func encodePoints(e *enc, pts []series.Point) {
	e.uvarint(uint64(len(pts)))
	prev := int64(0)
	for i, p := range pts {
		n := p.Time.UnixNano()
		if i == 0 {
			e.varint(n)
		} else {
			e.varint(n - prev)
		}
		prev = n
		e.f64(p.Value)
	}
}

func decodePoints(d *dec) []series.Point {
	n := int(d.uvarint())
	if n == 0 || d.err() != nil {
		return nil
	}
	out := make([]series.Point, 0, n)
	nano := int64(0)
	for i := 0; i < n && d.err() == nil; i++ {
		if i == 0 {
			nano = d.varint()
		} else {
			nano += d.varint()
		}
		out = append(out, series.Point{Time: time.Unix(0, nano), Value: d.f64()})
	}
	return out
}

func encodeBucket(e *enc, b tsdb.BucketSnapshot) {
	e.nanos(b.Start)
	e.varint(b.End.UnixNano() - b.Start.UnixNano())
	e.f64(b.Min)
	e.f64(b.Max)
	e.f64(b.Sum)
	e.varint(b.Count)
}

func decodeBucket(d *dec) tsdb.BucketSnapshot {
	b := tsdb.BucketSnapshot{}
	b.Start = d.nanos()
	b.End = b.Start.Add(d.duration())
	b.Min = d.f64()
	b.Max = d.f64()
	b.Sum = d.f64()
	b.Count = d.varint()
	return b
}

// snapHeader opens a snapshot file.
type snapHeader struct {
	version uint64
	// nextSeg is the first segment index NOT covered by the snapshot:
	// replay resumes there.
	nextSeg uint64
}

func encodeSnapHeader(e *enc, h snapHeader) {
	e.uvarint(h.version)
	e.uvarint(h.nextSeg)
}

func decodeSnapHeader(payload []byte) (snapHeader, error) {
	d := dec{b: payload}
	h := snapHeader{version: d.uvarint(), nextSeg: d.uvarint()}
	return h, d.err()
}

// snapFooter closes a snapshot file; its presence (with matching
// counts) proves the snapshot was written to completion.
type snapFooter struct {
	series uint64
	states uint64
}

func encodeSnapFooter(e *enc, f snapFooter) {
	e.uvarint(f.series)
	e.uvarint(f.states)
}

func decodeSnapFooter(payload []byte) (snapFooter, error) {
	d := dec{b: payload}
	f := snapFooter{series: d.uvarint(), states: d.uvarint()}
	return f, d.err()
}
