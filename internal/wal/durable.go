// Durable ties the segment log to the serving state: it hooks the
// store's block sealing into the log, periodically records estimator
// tuning state, replays everything on boot, and compacts the log behind
// snapshots. This file is the subsystem's public surface; wal.go owns
// the bytes.

package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
)

// Options parameterizes a Durable store. The zero value is serving-safe.
type Options struct {
	// FsyncEvery is the group-commit window (see LogOptions.FsyncEvery):
	// zero selects 10ms, negative syncs every append.
	FsyncEvery time.Duration
	// SegmentBytes rotates segments at this size; zero selects 64 MiB.
	SegmentBytes int64
	// SnapshotEvery is the background compactor's cadence; zero selects
	// 60s, negative disables automatic snapshots (Snapshot can still be
	// called manually).
	SnapshotEvery time.Duration
	// SnapshotMinBytes skips a compaction round when fewer WAL bytes
	// accumulated since the last snapshot; zero selects 1 MiB.
	SnapshotMinBytes int64
	// StateEvery is the estimator tuning-state record cadence; zero
	// selects 15s, negative disables periodic state records (they are
	// still written on Close and captured by snapshots).
	StateEvery time.Duration
	// ScrubEvery is the background CRC scrub's cadence: re-read and
	// checksum the segments this session sealed plus the newest
	// snapshot, so silent disk corruption is counted in LogStats.Errors
	// while the process still serves — not discovered at the next boot's
	// replay, when the good copy in memory is already gone. Zero selects
	// 60s, negative disables (Scrub can still be called manually).
	ScrubEvery time.Duration
	// SyncObserver, when set, is called with each group commit's fsync
	// wall time (see LogOptions.SyncObserver). It runs with the log's
	// mutex held, so it must be fast and nonblocking.
	SyncObserver func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 60 * time.Second
	}
	if o.SnapshotMinBytes <= 0 {
		o.SnapshotMinBytes = 1 << 20
	}
	if o.StateEvery == 0 {
		o.StateEvery = 15 * time.Second
	}
	if o.ScrubEvery == 0 {
		o.ScrubEvery = 60 * time.Second
	}
	return o
}

// ReplayInfo summarizes what boot recovery did.
type ReplayInfo struct {
	// SnapshotLoaded reports a valid snapshot was restored (and Seq its
	// index).
	SnapshotLoaded bool
	SnapshotSeq    uint64
	// Segments is the number of segment files replayed.
	Segments int
	// Records counts intact records applied across those segments.
	Records int64
	// Points counts points appended into the store from block records.
	Points int64
	// SkippedPoints counts replayed points the store rejected as
	// duplicates of snapshot-covered data (the snapshot-boundary
	// overlap) or as out of order.
	SkippedPoints int64
	// Series is the number of series in the store after recovery.
	Series int
	// EstimatorStates is the number of estimator tuning states restored.
	EstimatorStates int
	// TornTail reports replay stopped at a torn or corrupt record — the
	// normal shape after a crash (the tail past the last group commit).
	TornTail bool
	// Duration is the wall time recovery took.
	Duration time.Duration
}

// Stats is the durability subsystem's operator view.
type Stats struct {
	Dir string
	Log LogStats
	// Snapshots counts snapshots taken this session; LastSnapshot
	// stamps the newest (zero when none yet). SnapshotErrors counts
	// failed snapshot attempts — like Log.Errors, a non-zero value
	// means durability is degraded while serving continues.
	Snapshots      int64
	SnapshotErrors int64
	LastSnapshot   time.Time
	// SnapshotSeries is the series count in the newest snapshot.
	SnapshotSeries int
	// ScrubRuns counts background CRC scrub passes this session;
	// ScrubFiles the segment/snapshot files they read; ScrubCorrupt the
	// files that failed a checksum (each also counted into Log.Errors).
	// LastScrub stamps the newest pass (zero when none yet).
	ScrubRuns    int64
	ScrubFiles   int64
	ScrubCorrupt int64
	LastScrub    time.Time
	// Replay describes boot recovery.
	Replay ReplayInfo
}

// Durable is a restart-safe wrapper around the serving pair: it makes
// the store's sealed blocks and the estimator's tuning state durable,
// and rebuilds both on Open.
type Durable struct {
	dir   string
	opts  Options
	store *monitor.Store
	est   *monitor.IngestEstimator
	log   *Log

	replay ReplayInfo

	mu             sync.Mutex // serializes snapshots, state sweeps and scrubs
	snapshots      int64
	snapshotErrs   int64
	lastSnapshot   time.Time
	snapshotSeries int
	bytesAtSnap    int64
	scrubRuns      int64
	scrubFiles     int64
	scrubCorrupt   int64
	lastScrub      time.Time
	lastState      map[string]stateRec
	// pendingStates carries snapshot-loaded estimator states from
	// loadSnapshot to recover, which applies them (WAL records may
	// override) with rewarm-adjusted sample counts.
	pendingStates map[string]stateRec

	stopc chan struct{}
	donec chan struct{}
}

// Open recovers the durable state in dir into store and est, then
// arms the write path: sealed blocks and estimator state flow into the
// log from the moment Open returns. The store must have been built with
// tsdb.Config.StrictAppend — replay relies on the strict-order contract
// to skip snapshot-boundary duplicates — and with CompressBlock > 0,
// since only sealed compressed blocks are logged. The store and
// estimator must not receive traffic until Open returns.
func Open(dir string, store *monitor.Store, est *monitor.IngestEstimator, opts Options) (*Durable, error) {
	if store == nil || est == nil {
		return nil, errors.New("wal: Open needs a store and an ingest estimator")
	}
	if !store.DB().Strict() {
		return nil, errors.New("wal: durability requires a strict-append store (tsdb.Config.StrictAppend)")
	}
	if store.DB().Retention().CompressBlock <= 0 {
		return nil, errors.New("wal: durability requires compressed blocks (RetentionConfig.CompressBlock > 0)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Durable{
		dir:       dir,
		opts:      opts.withDefaults(),
		store:     store,
		est:       est,
		lastState: make(map[string]stateRec),
		stopc:     make(chan struct{}),
		donec:     make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	log, err := openLog(dir, LogOptions{
		FsyncEvery:   d.opts.FsyncEvery,
		SegmentBytes: d.opts.SegmentBytes,
		SyncObserver: d.opts.SyncObserver,
	})
	if err != nil {
		return nil, err
	}
	d.log = log
	d.bytesAtSnap = log.Stats().Bytes
	store.DB().OnSeal(func(id string, blk tsdb.Block) {
		e := enc{}
		encodeBlockRec(&e, blockRec{id: id, blk: blk})
		// Append counts every failure — including append-after-close —
		// into LogStats.Errors, so a dropped block record surfaces as
		// degraded durability in /metrics and the scrub report. Under
		// the shard lock there is nothing else safe to do with the
		// error: no I/O, no logging, no re-entering the store.
		//nyquist:allow-discard Append self-counts failures into LogStats.Errors; the seal hook runs under the shard lock
		_ = d.log.Append(recBlock, e.b)
	})
	go d.background()
	return d, nil
}

// Replay returns what boot recovery did.
func (d *Durable) Replay() ReplayInfo { return d.replay }

// Store and Estimator expose the wrapped serving pair.
func (d *Durable) Store() *monitor.Store               { return d.store }
func (d *Durable) Estimator() *monitor.IngestEstimator { return d.est }

// recover loads the newest valid snapshot and replays the segments past
// it, then rewarms the estimator windows from the newest stored points.
func (d *Durable) recover() error {
	begin := time.Now()
	info := &d.replay

	fromSeg := uint64(0)
	// watermark maps snapshot-restored series to their newest captured
	// timestamp. The segment after the snapshot boundary can re-log a
	// block that straddles it (the active tail at snapshot time plus
	// newer points); points at or before the watermark are
	// snapshot-covered duplicates and must not re-land. The cost is
	// that an equal-timestamped duplicate pair straddling the boundary
	// deduplicates on replay — the lesser evil against double-counting
	// every boundary point.
	watermark := map[string]time.Time{}
	if snaps, err := listSnapshots(d.dir); err == nil {
		for i := len(snaps) - 1; i >= 0; i-- {
			h, ok, err := d.loadSnapshot(snaps[i], watermark)
			if err != nil {
				return err
			}
			if ok {
				info.SnapshotLoaded = true
				info.SnapshotSeq = snaps[i]
				fromSeg = h.nextSeg
				break
			}
		}
	} else {
		return err
	}

	segs, err := listSegments(d.dir)
	if err != nil {
		return err
	}
	// Latest state record per series wins — WAL records over snapshot
	// ones — applied after the store replay so the estimator sees the
	// final tuning.
	states := d.pendingStates
	d.pendingStates = nil
	if states == nil {
		states = map[string]stateRec{}
	}
	for _, idx := range segs {
		if idx < fromSeg {
			continue
		}
		records, torn, err := replayFile(filepath.Join(d.dir, segName(idx)), segMagic, func(typ byte, payload []byte) error {
			switch typ {
			case recBlock:
				r, err := decodeBlockRec(payload)
				if err != nil {
					return err
				}
				pts, err := r.blk.Points(nil)
				if err != nil {
					return err
				}
				w, hasW := watermark[r.id]
				for _, p := range pts {
					if hasW && !p.Time.After(w) {
						info.SkippedPoints++
						continue
					}
					if err := d.store.Append(r.id, p); err != nil {
						info.SkippedPoints++
						continue
					}
					info.Points++
				}
			case recState:
				r, err := decodeStateRec(payload)
				if err != nil {
					return err
				}
				states[r.st.Series] = r
			}
			// Unknown record types are skipped: a newer writer's records
			// must not brick an older reader.
			return nil
		})
		info.Records += records
		info.Segments++
		if torn {
			info.TornTail = true
		}
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", segName(idx), err)
		}
	}
	// Rewarm plan: the newest ~window stored points of every recovered
	// series are re-fed through Observe so estimates (and the retune
	// debounce) pick up where the crashed process left off instead of
	// starting cold. Tails are computed BEFORE states are applied so
	// each restored Samples counter can be reduced by the points about
	// to be re-observed — otherwise every restart would inflate the
	// per-series sample count by up to a window.
	tails := d.rewarmTails()
	for _, r := range states {
		st := r.st
		if fed := int64(len(tails[st.Series])); fed > 0 {
			if st.Samples > fed {
				st.Samples -= fed
			} else {
				st.Samples = 0
			}
		}
		if d.est.RestoreState(st) {
			info.EstimatorStates++
		}
		if r.retentionHz > 0 {
			d.store.SetNyquist(st.Series, r.retentionHz)
		}
		d.lastState[st.Series] = r
	}
	for id, pts := range tails {
		for _, p := range pts {
			if !d.est.Observe(id, p) {
				break // MaxSeries cap: stop burning work on this id
			}
		}
	}
	info.Series = len(d.store.IDs())
	info.Duration = time.Since(begin)
	return nil
}

// rewarmTails returns, per recovered series, the newest stored points
// to re-feed through the estimator: enough to fill a window and cross
// the retune debounce. Series without restored tuning state re-probe
// their interval from the same tail.
func (d *Durable) rewarmTails() map[string][]series.Point {
	cfg := d.est.Config()
	want := cfg.WindowSamples + cfg.EmitEvery*(cfg.RetuneCleanStreak+2)
	tails := map[string][]series.Point{}
	for _, id := range d.store.IDs() {
		res, err := d.store.QueryRange(id, time.Time{}, time.Time{}, 0)
		if err != nil || len(res.Points) == 0 {
			continue
		}
		pts := res.Points
		if len(pts) > want {
			pts = pts[len(pts)-want:]
		}
		tails[id] = pts
	}
	return tails
}

// loadSnapshot parses and applies snapshot idx, recording each restored
// series' newest timestamp in watermark. A snapshot missing its footer
// (or failing any record CRC) is reported invalid, not an error: the
// caller falls back to the previous one. The whole file is decoded
// before anything is applied, so a half-written snapshot never leaves a
// half-restored store.
func (d *Durable) loadSnapshot(idx uint64, watermark map[string]time.Time) (snapHeader, bool, error) {
	var (
		header   snapHeader
		haveHdr  bool
		seriesS  []tsdb.SeriesSnapshot
		statesS  []stateRec
		footer   *snapFooter
		parseErr error
	)
	_, torn, err := replayFile(filepath.Join(d.dir, snapName(idx)), snapMagic, func(typ byte, payload []byte) error {
		switch typ {
		case recSnapHeader:
			h, err := decodeSnapHeader(payload)
			if err != nil {
				parseErr = err
				return err
			}
			header, haveHdr = h, true
		case recSnapSeries:
			s, err := decodeSeriesSnap(payload)
			if err != nil {
				parseErr = err
				return err
			}
			seriesS = append(seriesS, s)
		case recSnapState:
			r, err := decodeStateRec(payload)
			if err != nil {
				parseErr = err
				return err
			}
			statesS = append(statesS, r)
		case recSnapFooter:
			f, err := decodeSnapFooter(payload)
			if err != nil {
				parseErr = err
				return err
			}
			footer = &f
		}
		return nil
	})
	if err != nil && parseErr == nil {
		return snapHeader{}, false, err
	}
	if parseErr != nil || torn || !haveHdr || footer == nil ||
		footer.series != uint64(len(seriesS)) || footer.states != uint64(len(statesS)) {
		return snapHeader{}, false, nil // incomplete snapshot: fall back
	}
	for _, s := range seriesS {
		if err := d.store.DB().RestoreSeries(s); err != nil {
			return snapHeader{}, false, err
		}
		if s.HaveLast {
			watermark[s.ID] = s.LastTime
		}
	}
	// Estimator states are not applied here: recover() merges them with
	// any newer WAL state records and applies the winners once, with
	// sample counts adjusted for the rewarm feed.
	if d.pendingStates == nil {
		d.pendingStates = make(map[string]stateRec, len(statesS))
	}
	for _, r := range statesS {
		d.pendingStates[r.st.Series] = r
	}
	return header, true, nil
}

// Sync forces a group commit.
func (d *Durable) Sync() error { return d.log.Sync() }

// Snapshot writes a full block snapshot and compacts the log: rotate the
// live segment (the snapshot boundary), export every series and the
// estimator state to a temp file, fsync+rename it into place, then
// delete the covered segments and older snapshots. Ingest continues
// throughout — the store is export-locked one shard at a time — and a
// crash mid-snapshot is safe at every step (the half-written temp or
// footer-less file is ignored on the next boot).
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *Durable) snapshotLocked() error {
	nextSeg, err := d.log.Rotate()
	if err != nil {
		return err
	}
	seq := nextSeg
	tmp := filepath.Join(d.dir, fmt.Sprintf("snap-%08d.tmp", seq))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(snapMagic); err != nil {
		f.Close()
		return err
	}
	writeRec := func(typ byte, e *enc) error { return frame(w, typ, e.b) }

	e := &enc{}
	encodeSnapHeader(e, snapHeader{version: 1, nextSeg: nextSeg})
	if err := writeRec(recSnapHeader, e); err != nil {
		f.Close()
		return err
	}
	nSeries := uint64(0)
	err = d.store.DB().ExportSeries(func(s tsdb.SeriesSnapshot) error {
		nSeries++
		e := &enc{}
		encodeSeriesSnap(e, s)
		return writeRec(recSnapSeries, e)
	})
	if err != nil {
		f.Close()
		return err
	}
	states := d.est.ExportState()
	for _, st := range states {
		e := &enc{}
		r := stateRec{st: st, retentionHz: d.store.NyquistRate(st.Series)}
		encodeStateRec(e, r)
		if err := writeRec(recSnapState, e); err != nil {
			f.Close()
			return err
		}
		d.lastState[st.Series] = r
	}
	e = &enc{}
	encodeSnapFooter(e, snapFooter{series: nSeries, states: uint64(len(states))})
	if err := writeRec(recSnapFooter, e); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(d.dir, snapName(seq))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(d.dir)

	// Compaction: everything before the boundary is now covered.
	if err := d.log.RemoveBefore(nextSeg); err != nil {
		return err
	}
	if snaps, err := listSnapshots(d.dir); err == nil {
		for _, idx := range snaps {
			if idx < seq {
				_ = os.Remove(filepath.Join(d.dir, snapName(idx)))
			}
		}
	}
	d.snapshots++
	d.lastSnapshot = time.Now()
	d.snapshotSeries = int(nSeries)
	d.bytesAtSnap = d.log.Stats().Bytes
	return nil
}

// Scrub re-reads and CRC-verifies the durable files this process is
// responsible for: every segment this session sealed (earlier sessions'
// segments may legitimately carry a torn tail from a crash, so they are
// off limits) and the newest snapshot. A file that fails is counted in
// ScrubCorrupt and into LogStats.Errors — the point is to surface a
// flipped bit while the in-memory copy is still good, not at the next
// boot's replay when it is the only copy left. Returns the files checked
// and the corrupt ones found this pass.
func (d *Durable) Scrub() (checked, corrupt int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Every pass re-reads every file — a segment verified clean last
	// pass can rot before this one, so caching clean results would blind
	// the scrub to exactly what it exists to catch. The set is bounded:
	// compaction deletes sealed segments behind each snapshot.
	from, to := d.log.sealedRange()
	for idx := from; idx < to; idx++ {
		path := filepath.Join(d.dir, segName(idx))
		if _, err := os.Stat(path); err != nil {
			continue // compacted away behind a snapshot
		}
		checked++
		_, torn, err := replayFile(path, segMagic, func(byte, []byte) error { return nil })
		switch {
		case err != nil:
			corrupt++
			d.log.noteExternalErr(fmt.Errorf("wal: scrub: %s: %w", segName(idx), err))
		case torn:
			// This session sealed the segment cleanly; a torn record now
			// is bit rot, not a crash artifact.
			corrupt++
			d.log.noteExternalErr(fmt.Errorf("wal: scrub: %s: %w", segName(idx), ErrCorrupt))
		}
	}
	if snaps, err := listSnapshots(d.dir); err == nil && len(snaps) > 0 {
		idx := snaps[len(snaps)-1]
		checked++
		if !verifySnapshotFile(filepath.Join(d.dir, snapName(idx))) {
			corrupt++
			d.log.noteExternalErr(fmt.Errorf("wal: scrub: %s: %w", snapName(idx), ErrCorrupt))
		}
	}
	d.scrubRuns++
	d.scrubFiles += int64(checked)
	d.scrubCorrupt += int64(corrupt)
	d.lastScrub = time.Now()
	return checked, corrupt
}

// verifySnapshotFile decodes every record of a snapshot without applying
// anything, reporting whether the file is structurally complete: magic,
// header, per-record CRCs, and a footer whose counts match.
func verifySnapshotFile(path string) bool {
	var (
		haveHdr          bool
		nSeries, nStates uint64
		footer           *snapFooter
		bad              bool
	)
	_, torn, err := replayFile(path, snapMagic, func(typ byte, payload []byte) error {
		var derr error
		switch typ {
		case recSnapHeader:
			_, derr = decodeSnapHeader(payload)
			haveHdr = derr == nil
		case recSnapSeries:
			_, derr = decodeSeriesSnap(payload)
			nSeries++
		case recSnapState:
			_, derr = decodeStateRec(payload)
			nStates++
		case recSnapFooter:
			var f snapFooter
			f, derr = decodeSnapFooter(payload)
			if derr == nil {
				footer = &f
			}
		}
		if derr != nil {
			bad = true
		}
		return derr
	})
	if err != nil || torn || bad {
		return false
	}
	return haveHdr && footer != nil && footer.series == nSeries && footer.states == nStates
}

// syncDir fsyncs a directory so a just-renamed file's dirent is durable.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// writeStates appends a state record for every series whose tuning
// changed since the last sweep.
func (d *Durable) writeStates() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.est.ExportState() {
		r := stateRec{st: st, retentionHz: d.store.NyquistRate(st.Series)}
		if prev, ok := d.lastState[st.Series]; ok && prev == r {
			continue
		}
		e := enc{}
		encodeStateRec(&e, r)
		if err := d.log.Append(recState, e.b); err != nil {
			return
		}
		d.lastState[st.Series] = r
	}
}

func (d *Durable) background() {
	defer close(d.donec)
	stateEvery := d.opts.StateEvery
	snapEvery := d.opts.SnapshotEvery
	scrubEvery := d.opts.ScrubEvery
	var statec, snapc, scrubc <-chan time.Time
	if stateEvery > 0 {
		t := time.NewTicker(stateEvery)
		defer t.Stop()
		statec = t.C
	}
	if snapEvery > 0 {
		t := time.NewTicker(snapEvery)
		defer t.Stop()
		snapc = t.C
	}
	if scrubEvery > 0 {
		t := time.NewTicker(scrubEvery)
		defer t.Stop()
		scrubc = t.C
	}
	for {
		select {
		case <-d.stopc:
			return
		case <-statec:
			d.writeStates()
		case <-scrubc:
			d.Scrub()
		case <-snapc:
			d.mu.Lock()
			grown := d.log.Stats().Bytes-d.bytesAtSnap >= d.opts.SnapshotMinBytes
			if grown {
				if err := d.snapshotLocked(); err != nil {
					d.snapshotErrs++
					fmt.Fprintf(os.Stderr, "wal: background snapshot failed: %v\n", err)
				}
			}
			d.mu.Unlock()
		}
	}
}

// Close makes the remaining state durable and stops the subsystem: the
// stores' active tails are force-sealed into the log, a final state
// sweep is written, and the log is committed and closed. The seal hook
// is detached, so the store outlives Close safely (writes just stop
// being durable).
func (d *Durable) Close() error {
	close(d.stopc)
	<-d.donec
	d.store.SealActive()
	d.writeStates()
	err := d.log.Close()
	d.store.DB().OnSeal(nil)
	return err
}

// abort is the crash simulation used by tests: drop everything since
// the last group commit and stop, with no seal, no state sweep and no
// flush.
func (d *Durable) abort() {
	close(d.stopc)
	<-d.donec
	d.store.DB().OnSeal(nil)
	d.log.abort()
}

// Stats reports the subsystem's operator view.
func (d *Durable) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Dir:            d.dir,
		Log:            d.log.Stats(),
		Snapshots:      d.snapshots,
		SnapshotErrors: d.snapshotErrs,
		LastSnapshot:   d.lastSnapshot,
		SnapshotSeries: d.snapshotSeries,
		ScrubRuns:      d.scrubRuns,
		ScrubFiles:     d.scrubFiles,
		ScrubCorrupt:   d.scrubCorrupt,
		LastScrub:      d.lastScrub,
		Replay:         d.replay,
	}
}
