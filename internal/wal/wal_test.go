package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLogRoundTrip pins the framing contract: records appended across
// rotations come back intact, typed and in order.
func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, LogOptions{FsyncEvery: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		typ     byte
		payload []byte
	}
	var want []rec
	for i := 0; i < 40; i++ {
		r := rec{typ: byte(1 + i%2), payload: bytes.Repeat([]byte{byte(i)}, i)}
		want = append(want, r)
		if err := l.Append(r.typ, r.payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("tiny SegmentBytes produced %d segments, want rotation", len(segs))
	}
	var got []rec
	for _, idx := range segs {
		_, torn, err := replayFile(filepath.Join(dir, segName(idx)), segMagic, func(typ byte, payload []byte) error {
			got = append(got, rec{typ: typ, payload: append([]byte(nil), payload...)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if torn {
			t.Fatalf("segment %d torn after a clean close", idx)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestLogTornTail pins crash behavior: a truncated or bit-flipped tail
// stops replay at the last intact record instead of erroring or
// feeding garbage through.
func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, LogOptions{FsyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(recBlock, bytes.Repeat([]byte{0xAB}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated-mid-record": func(b []byte) []byte { return b[:len(b)-37] },
		"bit-flip-in-tail": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-20] ^= 0x40
			return c
		},
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			n, torn, err := replayFile(path, segMagic, func(byte, []byte) error { return nil })
			if err != nil {
				t.Fatalf("replay errored instead of stopping: %v", err)
			}
			if !torn {
				t.Fatal("corrupt tail not reported as torn")
			}
			if n != 9 {
				t.Fatalf("replayed %d records, want 9 intact before the corruption", n)
			}
		})
	}
}

// TestLogGroupCommit exercises the async path: appends return before
// the data is on disk, Sync makes it durable, and the background
// flusher catches up on its own within the window.
func TestLogGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, LogOptions{FsyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		if err := l.Append(recState, []byte("state")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n, _, err := replayFile(filepath.Join(dir, segName(1)), segMagic, func(byte, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("after Sync, %d records on disk, want 100", n)
	}
	st := l.Stats()
	if st.Records != 100 || st.Syncs == 0 {
		t.Fatalf("stats = %+v, want 100 records and at least one sync", st)
	}
}

// TestRemoveBefore pins compaction bookkeeping.
func TestRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, LogOptions{FsyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(recState, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	l.mu.Lock()
	cur := l.seg
	l.mu.Unlock()
	if err := l.RemoveBefore(cur); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 || segs[0] != cur {
		t.Fatalf("segments after RemoveBefore(%d) = %v, want just the live one", cur, segs)
	}
}
