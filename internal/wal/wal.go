// Package wal is the durability leg of the serving pipeline: a
// write-ahead log plus block snapshots that make nyquistd restart-safe.
// Everything the store and the estimate-on-ingest hook hold lives in
// memory; without this package a restart silently discards exactly the
// long-horizon history the paper's estimate→retain loop exists to
// preserve.
//
// The design leans on a property the storage engine already has: the
// compressed tsdb.Block is a byte-exact, self-delimiting unit. The log
// therefore never records individual points — it records sealed blocks
// (via the store's seal hook) plus periodic per-series tuning state
// (locked poll interval, trusted Nyquist rate), framed as
// length-prefixed, CRC-32C-checked records in numbered segment files.
// Appends land in a buffered writer and a group-commit flusher fsyncs
// on a fixed cadence, so the ingest hot path never waits on the disk;
// the durability window is the fsync interval plus the unsealed tail of
// each series' active block.
//
// On boot the Durable layer loads the newest valid snapshot, replays
// every later segment into the store (out-of-order duplicates from the
// snapshot boundary are skipped by the store's strict-append contract),
// restores estimator tuning state, and rewarms the estimator windows
// from the newest stored points. A background compactor periodically
// writes a new snapshot — the full store exported series by series,
// sealed blocks verbatim — and deletes the segments it covers, bounding
// both replay time and disk use.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record types. Segment files hold block/state records; snapshot files
// hold the snap* types.
const (
	recBlock      byte = 1 // one sealed raw block of one series
	recState      byte = 2 // one series' estimator/retention tuning state
	recSnapHeader byte = 3 // snapshot header: format version + next segment
	recSnapSeries byte = 4 // one series' full retention state
	recSnapState  byte = 5 // one series' estimator tuning state
	recSnapFooter byte = 6 // snapshot footer: record counts (completeness proof)
)

const (
	segMagic  = "NYQWAL1\n"
	snapMagic = "NYQSNP1\n"
	// maxRecordBytes bounds one record so replay of a corrupt length
	// prefix cannot attempt an absurd allocation.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when a segment or snapshot record fails its
// CRC or decodes to an impossible shape.
var ErrCorrupt = errors.New("wal: corrupt record")

// LogOptions parameterizes a segment log.
type LogOptions struct {
	// FsyncEvery is the group-commit window: how often the background
	// flusher pushes buffered records to disk and fsyncs. Zero selects
	// 10ms; negative syncs synchronously on every append (the paranoid
	// configuration — every accepted record is durable before the next).
	FsyncEvery time.Duration
	// SegmentBytes rotates the live segment once it exceeds this size;
	// zero selects 64 MiB.
	SegmentBytes int64
	// SyncObserver, when set, observes the wall time of every flush+fsync
	// the log issues — the observability layer's fsync-latency histogram.
	// It is called with the log's mutex held, so it must be fast and
	// nonblocking (an atomic histogram observe, not I/O).
	SyncObserver func(time.Duration)
}

func (o LogOptions) withDefaults() LogOptions {
	if o.FsyncEvery == 0 {
		o.FsyncEvery = 10 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// LogStats is the log's operator view.
type LogStats struct {
	// Segments is the number of live segment files (including current).
	Segments int
	// Bytes is the total size of the live segment files, counting
	// records not yet flushed.
	Bytes int64
	// Records counts records appended this session.
	Records int64
	// Syncs counts fsyncs issued this session.
	Syncs int64
	// Rotations counts segment rotations this session (size-triggered
	// plus snapshot-boundary rotations).
	Rotations int64
	// Errors counts failed appends, syncs and rotations this session —
	// a non-zero value means durability is degraded (disk full, EIO)
	// even though ingest keeps serving; LastError is the most recent
	// failure. Surfaced through /api/v1/stats so the condition is
	// visible before a crash makes it fatal.
	Errors    int64
	LastError string
}

// Log is an append-only segment log. Appends are safe for concurrent
// use; one background flusher provides the group commit.
type Log struct {
	dir  string
	opts LogOptions

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	seg       uint64 // current segment index
	startSeg  uint64 // first segment opened by this session (scrub floor)
	segBytes  int64  // bytes written to the current segment
	oldBytes  int64  // bytes in older (already sealed) live segments
	segCount  int
	dirty     bool
	records   int64
	syncs     int64
	rotations int64
	errors    int64
	lastErr   string
	closed    bool

	stopc chan struct{}
	donec chan struct{}
}

func segName(idx uint64) string  { return fmt.Sprintf("seg-%08d.wal", idx) }
func snapName(idx uint64) string { return fmt.Sprintf("snap-%08d.snap", idx) }

// listSegments returns the segment indices present in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "seg-%d.wal", &idx); n == 1 && e.Name() == segName(idx) {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// listSnapshots returns the snapshot indices present in dir, sorted.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.snap", &idx); n == 1 && e.Name() == snapName(idx) {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// openLog opens dir for appending: existing segments are left untouched
// (boot replays them; compaction deletes them) and a fresh segment one
// past the newest becomes the append target.
func openLog(dir string, opts LogOptions) (*Log, error) {
	opts = opts.withDefaults()
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	var oldBytes int64
	for _, idx := range segs {
		if idx >= next {
			next = idx + 1
		}
		if fi, err := os.Stat(filepath.Join(dir, segName(idx))); err == nil {
			oldBytes += fi.Size()
		}
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		seg:      next,
		startSeg: next,
		oldBytes: oldBytes,
		segCount: len(segs) + 1,
		stopc:    make(chan struct{}),
		donec:    make(chan struct{}),
	}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	go l.flushLoop()
	return l, nil
}

// openSegment creates and syncs segment idx as the append target.
// Caller holds mu (or is the constructor).
func (l *Log) openSegment(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(idx)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	l.f, l.w = f, w
	l.seg = idx
	l.segBytes = int64(len(segMagic))
	l.dirty = true
	return nil
}

// frame appends one framed record to w: u32le payload length, type
// byte, payload, u32le CRC-32C over type+payload.
func frame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	crc := crc32.Update(crc32.Checksum(hdr[4:5], crcTable), crcTable, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

func frameSize(payload []byte) int64 { return int64(len(payload)) + 9 }

// Append frames one record into the live segment. With a non-negative
// FsyncEvery the write is buffered and becomes durable at the next
// group commit — no file I/O happens on the caller's path (size-based
// rotation runs in the flusher), so a seal hook calling Append under a
// shard lock only pays a mutex and a buffer copy. A negative FsyncEvery
// syncs (and rotates, when due) before returning. Failures are counted
// in LogStats.Errors as well as returned.
func (l *Log) Append(typ byte, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		// A record offered after Close (a seal racing shutdown) is a
		// record the WAL does not hold: count it as degraded
		// durability, not just a caller error.
		return l.noteErr(os.ErrClosed)
	}
	if err := frame(l.w, typ, payload); err != nil {
		return l.noteErr(err)
	}
	l.segBytes += frameSize(payload)
	l.records++
	l.dirty = true
	if l.opts.FsyncEvery < 0 {
		if l.segBytes >= l.opts.SegmentBytes {
			if _, err := l.rotateLocked(); err != nil {
				return l.noteErr(err)
			}
			return nil
		}
		if err := l.syncLocked(); err != nil {
			return l.noteErr(err)
		}
	}
	return nil
}

// sealedRange returns the half-open segment-index interval [from, to)
// this session has written and sealed: from is the first segment the
// session opened, to the live append target. Segments below from belong
// to earlier sessions and may legitimately end in a torn tail (a crash),
// so only this range is fair game for corruption checks.
func (l *Log) sealedRange() (from, to uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.startSeg, l.seg
}

// noteExternalErr counts a durability failure detected outside the
// append path (the scrub) so it surfaces through LogStats.Errors like
// any other degradation.
func (l *Log) noteExternalErr(err error) {
	l.mu.Lock()
	l.noteErr(err)
	l.mu.Unlock()
}

// noteErr records a durability failure in the stats. Caller holds mu.
func (l *Log) noteErr(err error) error {
	if err != nil {
		l.errors++
		l.lastErr = err.Error()
	}
	return err
}

// syncLocked flushes the buffer and fsyncs. Caller holds mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	begin := time.Now()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	if l.opts.SyncObserver != nil {
		l.opts.SyncObserver(time.Since(begin))
	}
	return nil
}

// Sync forces a group commit: everything appended so far is durable
// when it returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	return l.syncLocked()
}

// rotateLocked seals the current segment (flush, fsync, close) and
// opens the next one. Returns the new current segment index. Caller
// holds mu.
func (l *Log) rotateLocked() (uint64, error) {
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	l.oldBytes += l.segBytes
	l.segCount++
	l.rotations++
	if err := l.openSegment(l.seg + 1); err != nil {
		return 0, err
	}
	return l.seg, nil
}

// Rotate seals the current segment and starts a new one, returning the
// new segment's index: records appended after Rotate land in segments ≥
// the returned index, which is the snapshot boundary contract.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, os.ErrClosed
	}
	return l.rotateLocked()
}

// RemoveBefore deletes segment files with index < seg — the compaction
// step after a successful snapshot covering them.
func (l *Log) RemoveBefore(seg uint64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, idx := range segs {
		if idx >= seg {
			continue
		}
		path := filepath.Join(l.dir, segName(idx))
		var size int64
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		if err := os.Remove(path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		l.mu.Lock()
		l.segCount--
		l.oldBytes -= size
		l.mu.Unlock()
	}
	return firstErr
}

// Close seals the log: final group commit, stop the flusher, close the
// file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopc)
	<-l.donec
	return err
}

// abort drops buffered records and closes the file without flushing —
// the test harness' SIGKILL: everything since the last group commit is
// lost, exactly as a real crash would lose it.
func (l *Log) abort() {
	l.mu.Lock()
	if !l.closed {
		l.f.Close()
		l.closed = true
	}
	l.mu.Unlock()
	close(l.stopc)
	<-l.donec
}

func (l *Log) flushLoop() {
	defer close(l.donec)
	every := l.opts.FsyncEvery
	if every < 0 {
		<-l.stopc // synchronous mode: nothing to do in the background
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				// Size-based rotation happens here, not in Append, so
				// the two fsyncs and the file create it costs never sit
				// under a caller's lock; a segment can overshoot
				// SegmentBytes by at most one group-commit window of
				// traffic.
				if l.segBytes >= l.opts.SegmentBytes {
					if _, err := l.rotateLocked(); err != nil {
						l.noteErr(err)
					}
				} else if err := l.syncLocked(); err != nil {
					l.noteErr(err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Stats reports the log's current footprint.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Segments:  l.segCount,
		Bytes:     l.oldBytes + l.segBytes,
		Records:   l.records,
		Syncs:     l.syncs,
		Rotations: l.rotations,
		Errors:    l.errors,
		LastError: l.lastErr,
	}
}

// replayFile walks one framed file (segment or snapshot), calling fn for
// every intact record. It stops cleanly at a torn tail — a truncated or
// CRC-failing record, the expected shape after a crash — reporting
// torn=true; fn errors abort the walk.
func replayFile(path, magic string, fn func(typ byte, payload []byte) error) (records int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil || string(head) != magic {
		// A missing or wrong magic means the file never finished its
		// header write (or is foreign); treat as fully torn.
		return 0, true, nil
	}
	var hdr [5]byte
	payload := make([]byte, 0, 64<<10)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return records, false, nil
			}
			return records, true, nil // torn mid-header
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > maxRecordBytes {
			return records, true, nil
		}
		typ := hdr[4]
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, true, nil
		}
		var tail [4]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return records, true, nil
		}
		crc := crc32.Update(crc32.Checksum(hdr[4:5], crcTable), crcTable, payload)
		if crc != binary.LittleEndian.Uint32(tail[:]) {
			return records, true, nil
		}
		if err := fn(typ, payload); err != nil {
			return records, false, err
		}
		records++
	}
}
