package wal

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
)

var walStart = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func servingStore() *monitor.Store {
	return monitor.NewTieredStore(tsdb.Config{
		Shards:       4,
		StrictAppend: true,
		Retention: tsdb.RetentionConfig{
			RawCapacity:   2048,
			TierCapacity:  256,
			Tiers:         2,
			CompressBlock: 128,
		},
	})
}

var ingestCfg = monitor.IngestConfig{WindowSamples: 256, EmitEvery: 8}

// twoTone is the band-limited test signal: expected Nyquist = 2·f2.
func twoTone(f1, f2, t float64) float64 {
	return math.Sin(2*math.Pi*f1*t) + 0.8*math.Sin(2*math.Pi*f2*t+1)
}

// ingestLoad pushes n points of s series through the serving pair, as
// handleIngest would (store append + estimator observe per point).
func ingestLoad(t *testing.T, store *monitor.Store, est *monitor.IngestEstimator, seriesN, n int) {
	t.Helper()
	const f2 = 16.0 / 256
	for s := 0; s < seriesN; s++ {
		id := fmt.Sprintf("ext/dev%02d/metric", s)
		for i := 0; i < n; i++ {
			p := series.Point{
				Time:  walStart.Add(time.Duration(i) * time.Second),
				Value: twoTone(f2/4, f2, float64(i)) + float64(s),
			}
			if err := store.Append(id, p); err != nil {
				t.Fatalf("append %s/%d: %v", id, i, err)
			}
			est.Observe(id, p)
		}
	}
}

// assertStoresMatch compares every series' full query results.
func assertStoresMatch(t *testing.T, a, b *monitor.Store, context string) {
	t.Helper()
	idsA, idsB := a.IDs(), b.IDs()
	if len(idsA) != len(idsB) {
		t.Fatalf("%s: %d series recovered, want %d", context, len(idsB), len(idsA))
	}
	for _, id := range idsA {
		ra, err := a.QueryRange(id, time.Time{}, time.Time{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.QueryRange(id, time.Time{}, time.Time{}, 0)
		if err != nil {
			t.Fatalf("%s: recovered store lost %s: %v", context, id, err)
		}
		if len(ra.Points) != len(rb.Points) {
			t.Fatalf("%s: %s recovered %d points, want %d", context, id, len(rb.Points), len(ra.Points))
		}
		for i := range ra.Points {
			if !ra.Points[i].Time.Equal(rb.Points[i].Time) || ra.Points[i].Value != rb.Points[i].Value {
				t.Fatalf("%s: %s point %d = %v, want %v", context, id, i, rb.Points[i], ra.Points[i])
			}
		}
	}
}

// TestCrashRecoveryWALOnly is the core durability contract: SIGKILL
// (simulated by abandoning the Durable without Close) loses nothing
// that was sealed and group-committed; a fresh process replays the
// segments and serves identical query results and equivalent estimates.
func TestCrashRecoveryWALOnly(t *testing.T) {
	dir := t.TempDir()
	store1 := servingStore()
	est1 := monitor.NewIngestEstimator(store1, ingestCfg)
	d1, err := Open(dir, store1, est1, Options{FsyncEvery: -1, SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 1024 points = 8 sealed 128-point blocks per series, no unsealed
	// tail, so recovery must be exact.
	ingestLoad(t, store1, est1, 3, 1024)
	preAdv, ok := est1.Advice("ext/dev00/metric")
	if !ok || preAdv.NyquistRate == 0 {
		t.Fatalf("precondition: no trusted estimate before the crash: %+v", preAdv)
	}
	d1.abort() // crash: no Close, no final seal, no state sweep

	store2 := servingStore()
	est2 := monitor.NewIngestEstimator(store2, ingestCfg)
	d2, err := Open(dir, store2, est2, Options{FsyncEvery: -1, SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer d2.abort()

	info := d2.Replay()
	if info.Points != 3*1024 {
		t.Fatalf("replayed %d points, want %d (info: %+v)", info.Points, 3*1024, info)
	}
	if info.SnapshotLoaded {
		t.Fatalf("no snapshot was written, but replay claims one: %+v", info)
	}
	assertStoresMatch(t, store1, store2, "WAL-only")

	// The estimator rewarmed from the replayed tail: same window data,
	// same interval, numerically identical estimate.
	adv, ok := est2.Advice("ext/dev00/metric")
	if !ok {
		t.Fatal("no advice after recovery")
	}
	if adv.Interval != preAdv.Interval {
		t.Fatalf("recovered interval %v, want %v", adv.Interval, preAdv.Interval)
	}
	if !adv.Warm {
		t.Fatalf("estimator not rewarmed: %+v", adv)
	}
	if rel := math.Abs(adv.NyquistRate-preAdv.NyquistRate) / preAdv.NyquistRate; rel > 0.05 {
		t.Fatalf("recovered estimate %.6f Hz vs pre-crash %.6f Hz (%.1f%% off)", adv.NyquistRate, preAdv.NyquistRate, 100*rel)
	}
	if got, want := store2.NyquistRate("ext/dev00/metric"), store1.NyquistRate("ext/dev00/metric"); got != want {
		t.Fatalf("recovered retention rate %v, want %v", got, want)
	}
}

// TestCrashRecoveryUnsyncedTail pins the documented durability window:
// with a wide group-commit window, points appended after the last sync
// may be lost, but everything up to the sync must survive and the
// recovered store must still be internally consistent.
func TestCrashRecoveryUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	store1 := servingStore()
	est1 := monitor.NewIngestEstimator(store1, ingestCfg)
	// An hour-long group-commit window: nothing is synced unless we say so.
	d1, err := Open(dir, store1, est1, Options{FsyncEvery: time.Hour, SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ingestLoad(t, store1, est1, 1, 512) // 4 sealed blocks
	if err := d1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced continuation: 2 more sealed blocks that never hit disk.
	id := "ext/dev00/metric"
	for i := 512; i < 768; i++ {
		p := series.Point{Time: walStart.Add(time.Duration(i) * time.Second), Value: 1}
		if err := store1.Append(id, p); err != nil {
			t.Fatal(err)
		}
	}
	d1.abort()

	store2 := servingStore()
	est2 := monitor.NewIngestEstimator(store2, ingestCfg)
	d2, err := Open(dir, store2, est2, Options{SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.abort()
	res, err := store2.QueryRange(id, time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 512 {
		t.Fatalf("recovered %d points, want exactly the 512 synced ones", len(res.Points))
	}
}

// TestSnapshotCompaction pins the snapshot lifecycle: a snapshot
// captures the full store (tiers included), deletes the covered
// segments, and recovery from snapshot + later segments is identical to
// never restarting.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	store1 := servingStore()
	est1 := monitor.NewIngestEstimator(store1, ingestCfg)
	d1, err := Open(dir, store1, est1, Options{FsyncEvery: -1, SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 4000 > RawCapacity 2048: the cascade has pushed history into the
	// tiers, which only a snapshot (not WAL replay alone) can carry
	// across compaction.
	ingestLoad(t, store1, est1, 2, 4000)
	if err := d1.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) != 1 {
		t.Fatalf("snapshot left %d segments, want 1 (the live one)", len(segsAfter))
	}
	if st := d1.Stats(); st.Snapshots != 1 || st.SnapshotSeries != 2 {
		t.Fatalf("stats after snapshot: %+v", st)
	}

	// Post-snapshot traffic lands in the new segment. 96 more points
	// bring dev00 to 4096 = 32 sealed blocks exactly: the block sealed
	// after the snapshot straddles the boundary (32 snapshot-covered
	// points + these 96), and the active tail is empty at the crash, so
	// recovery must be exact and must not double the boundary points.
	id := "ext/dev00/metric"
	for i := 4000; i < 4096; i++ {
		p := series.Point{Time: walStart.Add(time.Duration(i) * time.Second), Value: 2}
		if err := store1.Append(id, p); err != nil {
			t.Fatal(err)
		}
		est1.Observe(id, p)
	}
	d1.abort()

	store2 := servingStore()
	est2 := monitor.NewIngestEstimator(store2, ingestCfg)
	d2, err := Open(dir, store2, est2, Options{SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatalf("reopen from snapshot: %v", err)
	}
	defer d2.abort()
	info := d2.Replay()
	if !info.SnapshotLoaded {
		t.Fatalf("snapshot not loaded on recovery: %+v", info)
	}
	if info.Points != 96 || info.SkippedPoints != 32 {
		t.Fatalf("replayed %d new + %d skipped boundary points, want 96 + 32 (info: %+v)", info.Points, info.SkippedPoints, info)
	}
	assertStoresMatch(t, store1, store2, "snapshot+WAL")

	// Estimator state came back through the snapshot.
	pre, _ := est1.Advice(id)
	post, ok := est2.Advice(id)
	if !ok || post.Interval != pre.Interval {
		t.Fatalf("recovered advice %+v, want interval %v", post, pre.Interval)
	}
}

// TestCleanShutdownSealsTail pins Close: the unsealed active tail and a
// final state sweep become durable, so a graceful restart loses nothing
// at all.
func TestCleanShutdownSealsTail(t *testing.T) {
	dir := t.TempDir()
	store1 := servingStore()
	est1 := monitor.NewIngestEstimator(store1, ingestCfg)
	d1, err := Open(dir, store1, est1, Options{SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ingestLoad(t, store1, est1, 1, 1000) // 7 sealed blocks + 104 active
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := servingStore()
	est2 := monitor.NewIngestEstimator(store2, ingestCfg)
	d2, err := Open(dir, store2, est2, Options{SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.abort()
	assertStoresMatch(t, store1, store2, "clean shutdown")
	pre, _ := est1.Advice("ext/dev00/metric")
	post, ok := est2.Advice("ext/dev00/metric")
	if !ok || post.NyquistRate != pre.NyquistRate || post.Interval != pre.Interval {
		t.Fatalf("advice after clean restart %+v, want nyquist %v interval %v", post, pre.NyquistRate, pre.Interval)
	}
	// Sample accounting must not inflate across restarts: the restored
	// counter is reduced by exactly the rewarm feed before the feed
	// re-observes those points.
	if post.Samples != pre.Samples {
		t.Fatalf("samples after clean restart = %d, want %d (rewarm must not double-count)", post.Samples, pre.Samples)
	}
}

// TestOpenRejectsUnsafeStores pins the contract checks.
func TestOpenRejectsUnsafeStores(t *testing.T) {
	est := monitor.NewIngestEstimator(nil, ingestCfg)
	lenient := monitor.NewTieredStore(tsdb.Config{Retention: tsdb.RetentionConfig{RawCapacity: 64, CompressBlock: 16}})
	if _, err := Open(t.TempDir(), lenient, est, Options{}); err == nil {
		t.Fatal("Open accepted a lenient store")
	}
	uncompressed := monitor.NewTieredStore(tsdb.Config{StrictAppend: true, Retention: tsdb.RetentionConfig{RawCapacity: 64}})
	if _, err := Open(t.TempDir(), uncompressed, est, Options{}); err == nil {
		t.Fatal("Open accepted an uncompressed store")
	}
}
