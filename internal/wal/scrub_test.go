package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/series"
)

// TestScrubDetectsBitFlip pins the scrub's reason to exist: a single bit
// flipped in a sealed segment is counted and surfaced through the log's
// error stats while the process still serves — before a replay would
// meet it with the in-memory copy already gone.
func TestScrubDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	store := servingStore()
	est := monitor.NewIngestEstimator(store, ingestCfg)
	// Tiny segments + synchronous appends: the load seals several
	// segments this session, giving the scrub real files to read.
	d, err := Open(dir, store, est, Options{
		FsyncEvery: -1, SegmentBytes: 4 << 10,
		SnapshotEvery: -1, StateEvery: -1, ScrubEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.abort()
	ingestLoad(t, store, est, 2, 1024)

	from, to := d.log.sealedRange()
	if to-from < 2 {
		t.Fatalf("load sealed only %d segments, the scrub needs at least one closed one", to-from)
	}

	// A clean pass: every sealed file verifies, nothing is corrupt.
	checked, corrupt := d.Scrub()
	if checked == 0 || corrupt != 0 {
		t.Fatalf("clean scrub: checked %d, corrupt %d", checked, corrupt)
	}
	if errs := d.Stats().Log.Errors; errs != 0 {
		t.Fatalf("clean scrub raised %d log errors", errs)
	}

	// Flip one bit mid-payload in the first sealed segment.
	path := filepath.Join(dir, segName(from))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, corrupt := d.Scrub(); corrupt != 1 {
		t.Fatalf("scrub found %d corrupt files, want the flipped segment", corrupt)
	}
	st := d.Stats()
	if st.ScrubCorrupt != 1 || st.ScrubRuns != 2 {
		t.Fatalf("scrub stats = runs %d, corrupt %d, want 2 and 1", st.ScrubRuns, st.ScrubCorrupt)
	}
	if st.Log.Errors == 0 || !strings.Contains(st.Log.LastError, segName(from)) {
		t.Fatalf("corruption not surfaced in log errors: %+v", st.Log)
	}
	if st.LastScrub.IsZero() {
		t.Fatal("LastScrub not stamped")
	}
	// The corrupt file is re-flagged every pass — the degraded signal
	// must stay live, not fade after the first report.
	if _, corrupt := d.Scrub(); corrupt != 1 {
		t.Fatalf("repeat scrub found %d corrupt files, want the same segment again", corrupt)
	}
}

// TestSnapshotFooterFallback pins recovery's snapshot selection: a
// newest snapshot with a corrupted footer is not an error — boot falls
// back to the previous valid snapshot plus segment replay, and serves
// the same data.
func TestSnapshotFooterFallback(t *testing.T) {
	dir := t.TempDir()
	store1 := servingStore()
	est1 := monitor.NewIngestEstimator(store1, ingestCfg)
	d1, err := Open(dir, store1, est1, Options{FsyncEvery: -1, SnapshotEvery: -1, StateEvery: -1, ScrubEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ingestLoad(t, store1, est1, 2, 1024)
	if err := d1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapsA, _ := listSnapshots(dir)
	if len(snapsA) != 1 {
		t.Fatalf("%d snapshots after first Snapshot, want 1", len(snapsA))
	}
	// Keep a copy of snapshot A: the second snapshot deletes it.
	pathA := filepath.Join(dir, snapName(snapsA[0]))
	copyA, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d1.abort()

	// Corrupt snapshot B's footer (truncate its tail) and restore A.
	snaps, _ := listSnapshots(dir)
	pathB := filepath.Join(dir, snapName(snaps[len(snaps)-1]))
	rawB, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathB, rawB[:len(rawB)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathA, copyA, 0o644); err != nil {
		t.Fatal(err)
	}
	if verifySnapshotFile(pathB) || !verifySnapshotFile(pathA) {
		t.Fatal("corruption setup backwards: B must fail verification, A must pass")
	}

	store2 := servingStore()
	est2 := monitor.NewIngestEstimator(store2, ingestCfg)
	d2, err := Open(dir, store2, est2, Options{SnapshotEvery: -1, StateEvery: -1, ScrubEvery: -1})
	if err != nil {
		t.Fatalf("reopen past the corrupt snapshot: %v", err)
	}
	defer d2.abort()
	info := d2.Replay()
	if !info.SnapshotLoaded || info.SnapshotSeq != snapsA[0] {
		t.Fatalf("recovery did not fall back to snapshot %d: %+v", snapsA[0], info)
	}
	assertStoresMatch(t, store1, store2, "footer fallback")
}

// TestEmptyDirColdStart pins the trivial-but-load-bearing edge: an empty
// data directory is a clean cold start, not an error — no snapshot, no
// replay, and the server ingests from scratch.
func TestEmptyDirColdStart(t *testing.T) {
	dir := t.TempDir()
	store := servingStore()
	est := monitor.NewIngestEstimator(store, ingestCfg)
	d, err := Open(dir, store, est, Options{FsyncEvery: -1, SnapshotEvery: -1, StateEvery: -1, ScrubEvery: -1})
	if err != nil {
		t.Fatalf("cold start on an empty dir: %v", err)
	}
	defer d.abort()
	info := d.Replay()
	if info.SnapshotLoaded || info.Segments != 0 || info.Records != 0 || info.Series != 0 {
		t.Fatalf("cold start replayed something: %+v", info)
	}
	p := series.Point{Time: walStart, Value: 1}
	if err := store.Append("cold/dev/metric", p); err != nil {
		t.Fatalf("first append after cold start: %v", err)
	}
	if checked, corrupt := d.Scrub(); corrupt != 0 {
		t.Fatalf("cold-start scrub: checked %d, corrupt %d", checked, corrupt)
	}
}
