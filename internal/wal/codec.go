// Payload codec for WAL records and snapshot files: a tiny append-only
// binary format (uvarint/zigzag-varint scalars, length-prefixed byte
// strings, IEEE-754 bit patterns for floats). Framing, typing and
// integrity live in the segment layer (wal.go); this file only encodes
// and decodes payload bodies.

package wal

import (
	"encoding/binary"
	"errors"
	"math"
	"time"
)

// errShortPayload is returned when a payload ends before its fields do.
var errShortPayload = errors.New("wal: truncated record payload")

// enc builds one record payload. The zero value is ready to use.
type enc struct {
	b []byte
}

func (e *enc) uvarint(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64)     { e.uvarint(math.Float64bits(v)) }
func (e *enc) nanos(t time.Time) { e.varint(t.UnixNano()) }
func (e *enc) bool(v bool) {
	if v {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
}
func (e *enc) bytes(v []byte) {
	e.uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(v string) {
	e.uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// dec consumes one record payload. The first decode error sticks; check
// err() once at the end.
type dec struct {
	b    []byte
	fail error
}

func (d *dec) err() error { return d.fail }

func (d *dec) uvarint() uint64 {
	if d.fail != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail = errShortPayload
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.fail != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail = errShortPayload
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) f64() float64            { return math.Float64frombits(d.uvarint()) }
func (d *dec) nanos() time.Time        { return time.Unix(0, d.varint()) }
func (d *dec) bool() bool              { return d.uvarint() != 0 }
func (d *dec) duration() time.Duration { return time.Duration(d.varint()) }

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.fail != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail = errShortPayload
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) str() string { return string(d.bytes()) }
