package monitor

import (
	"errors"
	"time"

	"repro/internal/series"
	"repro/internal/tsdb"
)

// Store is the monitoring pipeline's storage leg: a thin adapter over the
// sharded multi-resolution time-series engine (internal/tsdb). Writers
// spread across the engine's shards instead of serializing on one global
// mutex, and a bounded store degrades resolution under pressure —
// compacting old samples into Nyquist-derived min/max/mean tiers —
// instead of returning the hard ErrStoreFull the seed store stalled
// long-running archiver sessions with.
type Store struct {
	db *tsdb.DB
}

// ErrNoSeries is returned when querying an id that was never written.
var ErrNoSeries = tsdb.ErrNoSeries

// ErrStoreFull is the seed store's hard capacity failure.
//
// Deprecated: retained so existing callers keep compiling. The
// tsdb-backed store compacts into coarser retention tiers when full; no
// code path returns ErrStoreFull any more (see
// TestBoundedStoreNoLongerFails for the regression contract).
var ErrStoreFull = errors.New("monitor: store capacity exceeded")

// NewStore returns an empty store. capacity bounds each series' raw
// (full-resolution) ring in points (0 = unbounded); when a ring fills,
// old samples cascade into downsampled retention tiers rather than
// failing the write — the retention budget operators face, without the
// seed store's hard stop.
func NewStore(capacity int) *Store {
	return &Store{db: tsdb.New(tsdb.Config{Retention: tsdb.RetentionConfig{RawCapacity: capacity}})}
}

// NewTieredStore returns a store with full control over sharding and the
// multi-resolution retention policy.
func NewTieredStore(cfg tsdb.Config) *Store {
	return &Store{db: tsdb.New(cfg)}
}

// DB exposes the underlying engine for query/retention reporting.
func (s *Store) DB() *tsdb.DB { return s.db }

// Append adds one point to the series with the given id. Lenient stores
// (the default) never fail; a store built with tsdb.Config.StrictAppend
// — the serving/durability configuration — returns tsdb.ErrOutOfOrder
// for a point older than the series' newest sample and tsdb.ErrTimeRange
// for a timestamp outside the int64-nanosecond range, and the point does
// not land.
func (s *Store) Append(id string, p series.Point) error {
	return s.db.Append(id, p)
}

// AppendUniform stores every sample of a uniform trace under id, locking
// the series' shard once for the whole block. Under StrictAppend the
// first rejected sample stops the append and is returned.
func (s *Store) AppendUniform(id string, u *series.Uniform) error {
	return s.db.AppendUniform(id, u)
}

// AppendBatch appends a mixed-series batch with one shard-lock
// acquisition per touched shard, writing each point's verdict into its
// Err field (see tsdb.DB.AppendBatch). Returns the number of accepted
// points.
func (s *Store) AppendBatch(pts []tsdb.BatchPoint) int {
	return s.db.AppendBatch(pts)
}

// SealActive force-seals every series' active compressed run (see
// tsdb.DB.SealAll) so a write-ahead log sees the unsealed tails before
// shutdown. Returns the number of blocks sealed.
func (s *Store) SealActive() int { return s.db.SealAll() }

// SetNyquist records the series' estimated Nyquist rate (2·f_max, hertz)
// and retunes its retention tiers — the estimate→retain loop the
// archiver and pollers close.
func (s *Store) SetNyquist(id string, rate float64) {
	s.db.SetNyquistRate(id, rate)
}

// NyquistRate returns the series' recorded Nyquist estimate (0 = none).
func (s *Store) NyquistRate(id string) float64 {
	return s.db.NyquistRate(id)
}

// Query returns the stored samples for id strictly within [from, to),
// matching the seed store's window contract. Samples that were compacted
// into retention tiers appear as their buckets' mean values at the
// buckets' grid timestamps; a bucket whose grid time falls before `from`
// is excluded even when it summarizes in-window samples — use QueryRange
// for the overlap-inclusive, min/max/mean-detailed view.
func (s *Store) Query(id string, from, to time.Time) (*series.Series, error) {
	res, err := s.db.Query(id, from, to, 0)
	if err != nil {
		return nil, err
	}
	pts := res.Points[:0]
	for _, p := range res.Points {
		if !p.Time.Before(from) && p.Time.Before(to) {
			pts = append(pts, p)
		}
	}
	return series.New(pts), nil
}

// QueryRange is the tier-aware range query: at most maxPoints samples
// (0 = no limit) stitched from the cheapest tiers covering [from, to),
// with per-tier provenance and bucket aggregates.
func (s *Store) QueryRange(id string, from, to time.Time, maxPoints int) (*tsdb.QueryResult, error) {
	return s.db.Query(id, from, to, maxPoints)
}

// QueryMatch answers one range query for every series whose id matches
// pattern (prefix, or glob with '*'/'?'), fanning the per-shard reads
// out in parallel. maxPoints is a shared budget split across the matched
// series; maxSeries caps how many series are answered (smallest ids
// win). Zero matches is an empty result, not an error.
func (s *Store) QueryMatch(pattern string, from, to time.Time, maxPoints, maxSeries int) *tsdb.MatchResult {
	return s.db.QueryMatch(pattern, from, to, maxPoints, maxSeries)
}

// Full returns the complete stored series for id across all tiers.
func (s *Store) Full(id string) (*series.Series, error) {
	res, err := s.db.Full(id)
	if err != nil {
		return nil, err
	}
	return series.New(res.Points), nil
}

// IDs returns the stored series ids, sorted.
func (s *Store) IDs() []string { return s.db.IDs() }

// Points returns the total number of retained points (raw samples plus
// retention-tier buckets).
func (s *Store) Points() int { return s.db.Points() }

// Stats aggregates the engine for operator reporting.
func (s *Store) Stats() tsdb.Stats { return s.db.Stats() }

// Snapshot reports every series' retention state, sorted by id.
func (s *Store) Snapshot() []tsdb.SeriesStats { return s.db.Snapshot() }
