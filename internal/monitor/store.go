package monitor

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/series"
)

// Store is a concurrency-safe in-memory time-series database keyed by
// metric/device id — the "storage" leg of the monitoring pipeline. It is
// deliberately simple: what the experiments need is an accurate account of
// what was retained, not a production TSDB.
type Store struct {
	mu       sync.RWMutex
	data     map[string]*series.Series
	points   int
	capacity int
}

// ErrNoSeries is returned when querying an id that was never written.
var ErrNoSeries = errors.New("monitor: no such series")

// ErrStoreFull is returned when a bounded store cannot accept more points.
var ErrStoreFull = errors.New("monitor: store capacity exceeded")

// NewStore returns an empty store. capacity bounds the total number of
// points (0 = unbounded), modeling the retention budget operators actually
// face.
func NewStore(capacity int) *Store {
	return &Store{data: make(map[string]*series.Series), capacity: capacity}
}

// Append adds one point to the series with the given id.
func (s *Store) Append(id string, p series.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity > 0 && s.points >= s.capacity {
		return ErrStoreFull
	}
	ser, ok := s.data[id]
	if !ok {
		ser = &series.Series{}
		s.data[id] = ser
	}
	ser.Append(p)
	s.points++
	return nil
}

// AppendUniform stores every sample of a uniform trace under id.
func (s *Store) AppendUniform(id string, u *series.Uniform) error {
	for i, v := range u.Values {
		if err := s.Append(id, series.Point{Time: u.TimeAt(i), Value: v}); err != nil {
			return err
		}
	}
	return nil
}

// Query returns the stored samples for id within [from, to).
func (s *Store) Query(id string, from, to time.Time) (*series.Series, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.data[id]
	if !ok {
		return nil, ErrNoSeries
	}
	return ser.Window(from, to), nil
}

// Full returns the complete stored series for id.
func (s *Store) Full(id string) (*series.Series, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.data[id]
	if !ok {
		return nil, ErrNoSeries
	}
	return series.New(ser.Points()), nil
}

// IDs returns the stored series ids, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for id := range s.data {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Points returns the total number of stored points.
func (s *Store) Points() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.points
}
