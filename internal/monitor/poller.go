package monitor

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// StaticPoller samples a target at a fixed interval — today's production
// behaviour (§3.1: rates chosen by defaults and gut feeling, never
// re-considered).
type StaticPoller struct {
	// ID names the series written to the store.
	ID string
	// Target is the signal being polled.
	Target core.Sampler
	// Interval is the fixed poll interval.
	Interval time.Duration
	// Model prices the samples.
	Model CostModel
	// Stream, when non-nil, receives every polled sample — a streaming
	// estimator riding the production poll loop, so the operator learns
	// what rate the metric actually needs while today's rate keeps
	// collecting. Its Interval should match the poller's.
	Stream *core.StreamEstimator
}

// Run polls over [offset, offset+duration) seconds of signal time, writing
// to store (which may be nil for cost-only runs) with wall-clock timestamps
// anchored at start. It returns the bill.
func (p *StaticPoller) Run(store *Store, start time.Time, offset float64, duration time.Duration) (Cost, error) {
	var cost Cost
	if p.Target == nil {
		return cost, errors.New("monitor: static poller has no target")
	}
	if p.Interval <= 0 {
		return cost, series.ErrBadInterval
	}
	ivs := p.Interval.Seconds()
	n := int(duration.Seconds() / ivs)
	if n < 1 {
		n = 1
	}
	lastRate := 0.0
	for i := 0; i < n; i++ {
		v := p.Target.At(offset + float64(i)*ivs)
		if p.Stream != nil {
			up := p.Stream.Push(v)
			// A clean streaming estimate retunes the store's retention
			// tiers for this series (the estimate→retain loop), so even a
			// never-reconsidered static rate gets Nyquist-aware storage.
			// Only a changed estimate takes the store's write lock: with
			// the default per-poll emission cadence a converged stream
			// would otherwise retune on every sample.
			if up != nil && store != nil && up.Err == nil && up.Result.NyquistRate > 0 &&
				up.Result.NyquistRate != lastRate {
				lastRate = up.Result.NyquistRate
				store.SetNyquist(p.ID, lastRate)
			}
		}
		if store != nil {
			if err := store.Append(p.ID, series.Point{Time: start.Add(time.Duration(i) * p.Interval), Value: v}); err != nil {
				return cost, fmt.Errorf("monitor: %s: %w", p.ID, err)
			}
		}
	}
	cost.Add(p.Model, n)
	return cost, nil
}

// AdaptivePoller samples a target with the paper's dynamic method (§4.2):
// dual-rate aliasing checks, multiplicative probing, convergence to the
// Nyquist rate with headroom, and decay when the requirement drops.
type AdaptivePoller struct {
	// ID names the series written to the store.
	ID string
	// Target is the signal being polled.
	Target core.Sampler
	// Config drives the adaptive loop.
	Config core.AdaptiveConfig
	// Model prices the samples.
	Model CostModel
}

// AdaptiveResult reports an adaptive polling run.
type AdaptiveResult struct {
	// Cost is the total bill, including the companion-rate probes.
	Cost Cost
	// Run is the underlying adaptation log.
	Run *core.RunResult
}

// Run executes the adaptive loop over [offset, offset+duration) seconds of
// signal time. Samples taken at the primary rate are written to the store
// with timestamps anchored at start; companion-probe samples are billed
// but not stored (they exist only to detect aliasing, §4.1's ~2x cost that
// the expected >2x over-sampling savings amortize).
func (p *AdaptivePoller) Run(store *Store, start time.Time, offset float64, duration time.Duration) (*AdaptiveResult, error) {
	if p.Target == nil {
		return nil, errors.New("monitor: adaptive poller has no target")
	}
	sampler, err := core.NewAdaptiveSampler(p.Config)
	if err != nil {
		return nil, err
	}
	run, err := sampler.Run(p.Target, offset, duration.Seconds())
	if err != nil {
		return nil, err
	}
	res := &AdaptiveResult{Run: run}
	res.Cost.Add(p.Model, run.TotalSamples)
	if store != nil {
		// The converged poll rate is Headroom × the estimated Nyquist
		// rate; divide the loop's headroom back out so the store receives
		// the raw 2·f_max the other retain-loop feeds supply (tsdb
		// applies its own headroom when sizing tiers).
		if run.FinalRate > 0 {
			h := p.Config.Headroom
			if h <= 0 {
				h = 2 // core.AdaptiveConfig's default
			}
			store.SetNyquist(p.ID, run.FinalRate/h)
		}
		for _, e := range run.Epochs {
			// Re-materialize the primary-rate samples of this epoch for
			// storage. (The adaptive sampler already billed them.)
			n := int(p.Config.EpochDuration * e.Rate)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				ts := e.Start + float64(i)/e.Rate
				wall := start.Add(time.Duration((ts - offset) * float64(time.Second)))
				if err := store.Append(p.ID, series.Point{Time: wall, Value: p.Target.At(ts)}); err != nil {
					return nil, fmt.Errorf("monitor: %s: %w", p.ID, err)
				}
			}
		}
	}
	return res, nil
}
