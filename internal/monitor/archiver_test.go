package monitor

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

func TestArchiverCompressesOversampledStream(t *testing.T) {
	store := NewStore(0)
	a, err := NewArchiver("temp", store, time.Second, ArchiverConfig{WindowSamples: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// 4096 one-second samples of a 16-cycles-per-block signal.
	for i := 0; i < 4096; i++ {
		ts := start.Add(time.Duration(i) * time.Second)
		v := 40 + 5*math.Sin(2*math.Pi*16*float64(i)/1024)
		if err := a.Ingest(series.Point{Time: ts, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	raw, stored, aliased := a.Savings()
	if raw != 4096 {
		t.Fatalf("raw = %d", raw)
	}
	if aliased != 0 {
		t.Fatalf("aliased blocks = %d, want 0", aliased)
	}
	// 16 cycles/1024 samples -> Nyquist 32/1024; headroom 1.2 -> keep
	// roughly 40 samples per 1024. Anything below 1/10 of raw is a win.
	if stored >= raw/10 {
		t.Fatalf("stored %d of %d; expected heavy compression", stored, raw)
	}
	if a.Reduction() < 10 {
		t.Fatalf("reduction = %v", a.Reduction())
	}
}

func TestArchiverReadBackFidelity(t *testing.T) {
	store := NewStore(0)
	a, err := NewArchiver("sig", store, time.Second, ArchiverConfig{WindowSamples: 2048})
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]float64, 2048)
	for i := range orig {
		orig[i] = math.Sin(2*math.Pi*8*float64(i)/2048) + 0.5*math.Cos(2*math.Pi*20*float64(i)/2048)
		if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: orig[i]}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := a.ReadBack(1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() < len(orig)*9/10 {
		t.Fatalf("read back %d samples, want ~%d", rec.Len(), len(orig))
	}
	n := rec.Len()
	if n > len(orig) {
		n = len(orig)
	}
	fid, err := core.CompareSignals(orig[:n], rec.Values[:n])
	if err != nil {
		t.Fatal(err)
	}
	if fid.NRMSE > 0.05 {
		t.Fatalf("read-back NRMSE = %v", fid.NRMSE)
	}
}

func TestArchiverKeepsAliasedBlocksRaw(t *testing.T) {
	store := NewStore(0)
	a, err := NewArchiver("noise", store, time.Second, ArchiverConfig{WindowSamples: 512})
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(9)
	for i := 0; i < 512; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		v := float64(int64(state)) / math.MaxInt64
		if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	raw, stored, aliased := a.Savings()
	if aliased != 1 {
		t.Fatalf("aliased blocks = %d, want 1", aliased)
	}
	if stored != raw {
		t.Fatalf("aliased block must be stored raw: %d vs %d", stored, raw)
	}
}

func TestArchiverPartialFlush(t *testing.T) {
	store := NewStore(0)
	a, err := NewArchiver("short", store, time.Second, ArchiverConfig{WindowSamples: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Too short to estimate: flushed raw.
	for i := 0; i < 10; i++ {
		if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	_, stored, _ := a.Savings()
	if stored != 10 {
		t.Fatalf("stored = %d, want 10 raw", stored)
	}
	// Idempotent empty flush.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.Reduction() != 1 {
		t.Fatalf("reduction = %v, want 1", a.Reduction())
	}
}

func TestArchiverErrors(t *testing.T) {
	if _, err := NewArchiver("x", nil, time.Second, ArchiverConfig{}); err == nil {
		t.Fatal("nil store should fail")
	}
	if _, err := NewArchiver("x", NewStore(0), 0, ArchiverConfig{}); err == nil {
		t.Fatal("zero interval should fail")
	}
	a, err := NewArchiver("x", NewStore(0), time.Second, ArchiverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadBack(0); err == nil {
		t.Fatal("zero target rate should fail")
	}
	if _, err := a.ReadBack(1); err == nil {
		t.Fatal("read back of empty archive should fail")
	}
}
