package monitor

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

func managerConfig() ManagerConfig {
	return ManagerConfig{
		Adaptive: core.AdaptiveConfig{
			InitialRate:   0.05,
			MaxRate:       4,
			EpochDuration: 256,
		},
		Concurrency: 4,
		Model:       DefaultCostModel(),
	}
}

func fleetTargets(n int) []ManagedTarget {
	out := make([]ManagedTarget, n)
	for i := range out {
		f := 0.002 * float64(i+1) // distinct slow tones
		out[i] = ManagedTarget{
			ID: string(rune('a' + i)),
			Target: core.SamplerFunc(func(t float64) float64 {
				return 10 + math.Sin(2*math.Pi*f*t)
			}),
		}
	}
	return out
}

func TestManagerRunsAllTargets(t *testing.T) {
	m, err := NewManager(managerConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(fleetTargets(6), 0, 256*10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 6 || rep.Failed != 0 {
		t.Fatalf("targets = %d, failed = %d", len(rep.Targets), rep.Failed)
	}
	if rep.TotalCost.Samples <= 0 {
		t.Fatal("no cost accumulated")
	}
	// Sorted by ID.
	for i := 1; i < len(rep.Targets); i++ {
		if rep.Targets[i-1].ID > rep.Targets[i].ID {
			t.Fatal("reports not sorted")
		}
	}
	// Every target converged somewhere sensible.
	for _, tr := range rep.Targets {
		if tr.Run == nil || len(tr.Run.Epochs) != 10 {
			t.Fatalf("%s: incomplete run", tr.ID)
		}
	}
}

func TestManagerMatchesSerialRuns(t *testing.T) {
	// Concurrency must not change results: each target's run equals a
	// standalone sampler run with the same config.
	cfg := managerConfig()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := fleetTargets(4)
	rep, err := m.Run(targets, 0, 256*8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range rep.Targets {
		s, err := core.NewAdaptiveSampler(cfg.Adaptive)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Run(targets[i].Target, 0, 256*8)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Run.TotalSamples != want.TotalSamples || tr.Run.FinalRate != want.FinalRate {
			t.Fatalf("%s: concurrent run differs from serial (%d/%v vs %d/%v)",
				tr.ID, tr.Run.TotalSamples, tr.Run.FinalRate, want.TotalSamples, want.FinalRate)
		}
	}
}

func TestManagerPerTargetFailureIsolated(t *testing.T) {
	m, err := NewManager(managerConfig())
	if err != nil {
		t.Fatal(err)
	}
	targets := fleetTargets(3)
	targets[1].Target = nil // injected failure
	rep, err := m.Run(targets, 0, 256*5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	ok := 0
	for _, tr := range rep.Targets {
		if tr.Err == nil && tr.Run != nil {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("healthy targets completed = %d, want 2", ok)
	}
}

func TestManagerInitialRateOverride(t *testing.T) {
	m, err := NewManager(managerConfig())
	if err != nil {
		t.Fatal(err)
	}
	targets := fleetTargets(1)
	targets[0].InitialRate = 2
	rep, err := m.Run(targets, 0, 256*3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Targets[0].Run.Epochs[0].Rate; got != 2 {
		t.Fatalf("first epoch rate = %v, want the 2 Hz override", got)
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(ManagerConfig{Concurrency: -1}); err == nil {
		t.Fatal("negative concurrency should fail")
	}
	if _, err := NewManager(ManagerConfig{Adaptive: core.AdaptiveConfig{InitialRate: 1}}); err == nil {
		t.Fatal("invalid template should fail")
	}
	m, err := NewManager(managerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil, 0, time.Minute); err == nil {
		t.Fatal("no targets should fail")
	}
}
