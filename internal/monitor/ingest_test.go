package monitor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/series"
	"repro/internal/tsdb"
)

var ingestStart = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// twoTone is a band-limited test signal whose 99%-energy cut-off sits at
// its top component, so the expected Nyquist estimate is 2·f2.
func twoTone(f1, f2, t float64) float64 {
	return math.Sin(2*math.Pi*f1*t) + 0.8*math.Sin(2*math.Pi*f2*t+1)
}

// TestIngestEstimatorClosesLoop pins the serving-path contract: pushing
// a clean, regularly polled series locks the interval, produces a warm
// estimate near ground truth, suggests the sweet-spot interval, and
// retunes the store's retention via SetNyquist.
func TestIngestEstimatorClosesLoop(t *testing.T) {
	store := NewTieredStore(tsdb.Config{Retention: tsdb.RetentionConfig{RawCapacity: 128, Tiers: 2}})
	e := NewIngestEstimator(store, IngestConfig{WindowSamples: 256, EmitEvery: 8})
	const (
		id       = "ext/router7/octets"
		f2       = 16.0 / 256 // on-bin top component at 1 Hz polls
		f1       = f2 / 4
		interval = time.Second
	)
	wantNyquist := 2 * f2
	for i := 0; i < 600; i++ {
		ts := ingestStart.Add(time.Duration(i) * interval)
		e.Observe(id, series.Point{Time: ts, Value: twoTone(f1, f2, float64(i))})
	}
	adv, ok := e.Advice(id)
	if !ok {
		t.Fatal("no advice for an observed series")
	}
	if adv.Interval != interval {
		t.Fatalf("locked interval %v, want %v", adv.Interval, interval)
	}
	if !adv.Warm {
		t.Fatalf("not warm after 600 samples with a 256 window: %+v", adv)
	}
	if adv.Aliased {
		t.Fatalf("clean signal flagged aliased: %+v", adv)
	}
	if rel := math.Abs(adv.NyquistRate-wantNyquist) / wantNyquist; rel > 0.2 {
		t.Fatalf("estimate %.5f Hz, want %.5f Hz ±20%% (off by %.0f%%)", adv.NyquistRate, wantNyquist, 100*rel)
	}
	wantSuggest := time.Duration(float64(time.Second) / (1.2 * adv.NyquistRate))
	if d := adv.SuggestedInterval - wantSuggest; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("suggested interval %v, want %v", adv.SuggestedInterval, wantSuggest)
	}
	// The estimate→retain loop must have reached the store.
	if got := store.NyquistRate(id); math.Abs(got-adv.NyquistRate) > 1e-9 {
		t.Fatalf("store retention rate %.5f, want the clean estimate %.5f", got, adv.NyquistRate)
	}
	if adv.Samples != 600 {
		t.Fatalf("samples %d, want 600", adv.Samples)
	}
}

// TestIngestEstimatorAliasedNeverRetunes pins the §4.2 asymmetry across
// the wire: an undersampled stream — energy at the very top of the
// measurable band, the aliasing signature — raises the alias streak and
// halves the suggested interval, but never touches retention.
func TestIngestEstimatorAliasedNeverRetunes(t *testing.T) {
	store := NewTieredStore(tsdb.Config{Retention: tsdb.RetentionConfig{RawCapacity: 128, Tiers: 2}})
	e := NewIngestEstimator(store, IngestConfig{WindowSamples: 64, EmitEvery: 4})
	const id = "ext/undersampled"
	for i := 0; i < 300; i++ {
		ts := ingestStart.Add(time.Duration(i) * time.Second)
		// Top tone at bin 31 of 64 (0.484 Hz against 1 Hz polls): past
		// the estimator's aliased guard in every window.
		e.Observe(id, series.Point{Time: ts, Value: twoTone(0.1, 31.0/64, float64(i))})
	}
	adv, ok := e.Advice(id)
	if !ok {
		t.Fatal("no advice")
	}
	if !adv.Aliased || adv.AliasStreak < 2 {
		t.Fatalf("white stream not flagged aliased with a streak: %+v", adv)
	}
	if adv.SuggestedInterval != time.Second/2 {
		t.Fatalf("aliased suggestion %v, want half the poll interval", adv.SuggestedInterval)
	}
	if got := store.NyquistRate(id); got != 0 {
		t.Fatalf("aliased stream retuned retention to %.5f Hz — it must not", got)
	}
}

// TestIngestEstimatorLocksJitteredGrid: external pollers jitter; the
// median-gap probe must still lock the nominal interval.
func TestIngestEstimatorLocksJitteredGrid(t *testing.T) {
	e := NewIngestEstimator(nil, IngestConfig{WindowSamples: 64})
	const id = "ext/jitter"
	rng := rand.New(rand.NewSource(3))
	ts := ingestStart
	for i := 0; i < 50; i++ {
		e.Observe(id, series.Point{Time: ts, Value: float64(i)})
		ts = ts.Add(10*time.Second + time.Duration(rng.Intn(41)-20)*time.Millisecond)
	}
	adv, _ := e.Advice(id)
	if adv.Interval < 9*time.Second || adv.Interval > 11*time.Second {
		t.Fatalf("locked %v from a jittered 10 s grid", adv.Interval)
	}
}

// TestIngestEstimatorReprobesOnDrift: a client redeploy that changes the
// poll rate must re-lock the interval instead of estimating on a wrong
// frequency axis.
func TestIngestEstimatorReprobesOnDrift(t *testing.T) {
	e := NewIngestEstimator(nil, IngestConfig{WindowSamples: 64, ProbeGaps: 4})
	const id = "ext/redeployed"
	ts := ingestStart
	for i := 0; i < 40; i++ {
		e.Observe(id, series.Point{Time: ts, Value: float64(i)})
		ts = ts.Add(time.Second)
	}
	if adv, _ := e.Advice(id); adv.Interval != time.Second {
		t.Fatalf("initial lock %v, want 1s", adv.Interval)
	}
	for i := 0; i < 40; i++ {
		e.Observe(id, series.Point{Time: ts, Value: float64(i)})
		ts = ts.Add(10 * time.Second)
	}
	adv, _ := e.Advice(id)
	if adv.Reprobes == 0 {
		t.Fatalf("no reprobe after a 10x gap change: %+v", adv)
	}
	if adv.Interval != 10*time.Second {
		t.Fatalf("re-locked %v, want 10s", adv.Interval)
	}
}

// TestIngestEstimatorConcurrent hammers distinct and shared series from
// many goroutines — the serving ingest pattern — for the race detector.
func TestIngestEstimatorConcurrent(t *testing.T) {
	store := NewTieredStore(tsdb.Config{Shards: 4, Retention: tsdb.RetentionConfig{RawCapacity: 64, Tiers: 2}})
	e := NewIngestEstimator(store, IngestConfig{WindowSamples: 64, EmitEvery: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("ext/dev%d", g%4) // pairs of goroutines share a series
			for i := 0; i < 500; i++ {
				ts := ingestStart.Add(time.Duration(i) * time.Second)
				e.Observe(id, series.Point{Time: ts, Value: twoTone(0.01, 0.05, float64(i))})
				if i%100 == 0 {
					_, _ = e.Advice(id)
					_ = e.Series()
				}
			}
		}(g)
	}
	wg.Wait()
	if e.Len() != 4 {
		t.Fatalf("observed %d series, want 4", e.Len())
	}
}

// TestIngestEstimatorMaxSeries pins the hostile-cardinality bound: new
// series beyond the cap are dropped and counted, existing series keep
// estimating.
func TestIngestEstimatorMaxSeries(t *testing.T) {
	e := NewIngestEstimator(nil, IngestConfig{WindowSamples: 64, MaxSeries: 2})
	p := func(i int) series.Point {
		return series.Point{Time: ingestStart.Add(time.Duration(i) * time.Second), Value: float64(i)}
	}
	if !e.Observe("a", p(0)) || !e.Observe("b", p(0)) {
		t.Fatal("observations under the cap were dropped")
	}
	for i := 0; i < 3; i++ {
		if e.Observe(fmt.Sprintf("overflow/%d", i), p(i)) {
			t.Fatalf("series beyond MaxSeries=2 was accepted")
		}
	}
	if !e.Observe("a", p(1)) {
		t.Fatal("existing series dropped after the cap was hit")
	}
	if got := e.Rejected(); got != 3 {
		t.Fatalf("Rejected() = %d, want 3", got)
	}
	if got := e.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	if _, ok := e.Advice("overflow/0"); ok {
		t.Fatal("advice exists for a rejected series")
	}
}

// TestIngestEstimatorStateRoundTrip pins the durability contract:
// exported tuning state restored into a fresh estimator answers Advice
// with the same interval and Nyquist rate, re-applies the retention
// retune, and continues estimating when new points arrive.
func TestIngestEstimatorStateRoundTrip(t *testing.T) {
	mkStore := func() *Store {
		return NewTieredStore(tsdb.Config{Retention: tsdb.RetentionConfig{RawCapacity: 128, Tiers: 2}})
	}
	cfg := IngestConfig{WindowSamples: 256, EmitEvery: 8}
	store1 := mkStore()
	e1 := NewIngestEstimator(store1, cfg)
	const (
		id       = "ext/router7/octets"
		f2       = 16.0 / 256
		f1       = f2 / 4
		interval = time.Second
	)
	for i := 0; i < 600; i++ {
		ts := ingestStart.Add(time.Duration(i) * interval)
		e1.Observe(id, series.Point{Time: ts, Value: twoTone(f1, f2, float64(i))})
	}
	pre, _ := e1.Advice(id)
	if pre.NyquistRate == 0 {
		t.Fatal("no trusted estimate to persist")
	}

	states := e1.ExportState()
	if len(states) != 1 || states[0].Series != id {
		t.Fatalf("ExportState = %+v, want one entry for %q", states, id)
	}
	store2 := mkStore()
	e2 := NewIngestEstimator(store2, cfg)
	if !e2.RestoreState(states[0]) {
		t.Fatal("RestoreState declined")
	}
	adv, ok := e2.Advice(id)
	if !ok {
		t.Fatal("no advice after restore")
	}
	if adv.Interval != pre.Interval {
		t.Fatalf("restored interval %v, want %v", adv.Interval, pre.Interval)
	}
	if adv.NyquistRate != pre.NyquistRate {
		t.Fatalf("restored nyquist %v, want %v", adv.NyquistRate, pre.NyquistRate)
	}
	if adv.Samples != pre.Samples {
		t.Fatalf("restored samples %d, want %d", adv.Samples, pre.Samples)
	}
	if got := store2.NyquistRate(id); got != pre.NyquistRate {
		t.Fatalf("restore did not re-apply SetNyquist: store rate %v, want %v", got, pre.NyquistRate)
	}

	// Rewarm: feeding the same tail the original estimator last saw
	// converges back to (numerically) the same estimate without
	// re-probing the interval.
	for i := 600; i < 1300; i++ {
		ts := ingestStart.Add(time.Duration(i) * interval)
		e2.Observe(id, series.Point{Time: ts, Value: twoTone(f1, f2, float64(i))})
	}
	adv2, _ := e2.Advice(id)
	if !adv2.Warm {
		t.Fatalf("restored estimator never rewarmed: %+v", adv2)
	}
	if adv2.Reprobes != pre.Reprobes {
		t.Fatalf("restored estimator re-probed: %d, want %d", adv2.Reprobes, pre.Reprobes)
	}
	if rel := math.Abs(adv2.NyquistRate-pre.NyquistRate) / pre.NyquistRate; rel > 0.05 {
		t.Fatalf("rewarmed estimate %.6f Hz drifted from %.6f Hz (%.1f%%)", adv2.NyquistRate, pre.NyquistRate, 100*rel)
	}
}

// TestIngestEstimatorLRUEviction pins the eviction order and contract:
// with EvictAfter enabled, a new series at the cap evicts the
// longest-idle series (and only a sufficiently idle one), counting each
// eviction, while EvictAfter=0 keeps the PR 5 hard-cap behavior.
func TestIngestEstimatorLRUEviction(t *testing.T) {
	e := NewIngestEstimator(nil, IngestConfig{WindowSamples: 64, MaxSeries: 2, EvictAfter: 1})
	p := func(i int) series.Point {
		return series.Point{Time: ingestStart.Add(time.Duration(i) * time.Second), Value: float64(i)}
	}
	if !e.Observe("a", p(0)) || !e.Observe("b", p(1)) {
		t.Fatal("observations under the cap were dropped")
	}
	// c arrives at the cap: a is the longest idle, so a goes.
	if !e.Observe("c", p(2)) {
		t.Fatal("new series was rejected although an idle one was evictable")
	}
	if _, ok := e.Advice("a"); ok {
		t.Fatal("evicted series a still has advice")
	}
	if _, ok := e.Advice("b"); !ok {
		t.Fatal("series b was evicted out of LRU order (a was older)")
	}
	// d arrives: now b is the longest idle.
	if !e.Observe("d", p(3)) {
		t.Fatal("second new series was rejected")
	}
	if _, ok := e.Advice("b"); ok {
		t.Fatal("evicted series b still has advice")
	}
	if _, ok := e.Advice("c"); !ok {
		t.Fatal("series c was evicted out of LRU order (b was older)")
	}
	if got := e.Evicted(); got != 2 {
		t.Fatalf("Evicted() = %d, want 2", got)
	}
	if got := e.Rejected(); got != 0 {
		t.Fatalf("Rejected() = %d, want 0 (eviction, not rejection)", got)
	}
	if got := e.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}

	// Freshly-active series must never be evicted: with a high
	// EvictAfter nothing is idle enough, so the cap rejects instead.
	e2 := NewIngestEstimator(nil, IngestConfig{WindowSamples: 64, MaxSeries: 2, EvictAfter: 1 << 20})
	e2.Observe("a", p(0))
	e2.Observe("b", p(1))
	if e2.Observe("c", p(2)) {
		t.Fatal("series admitted by evicting a fresh series")
	}
	if got, want := e2.Rejected(), int64(1); got != want {
		t.Fatalf("Rejected() = %d, want %d", got, want)
	}
	if got := e2.Evicted(); got != 0 {
		t.Fatalf("Evicted() = %d, want 0", got)
	}
}
