package monitor

import (
	"errors"
	"math"
	"sort"
)

// The paper's title promise made operational: given a fleet of metrics
// with known (estimated) Nyquist rates and a global sample budget, decide
// each metric's poll rate so total cost meets the budget with the least
// information loss. Above the fleet's aggregate Nyquist demand everything
// is lossless and extra budget is pure waste; below it, something must
// alias, and the allocator chooses what.

// Demand is one metric's sampling requirement.
type Demand struct {
	// ID names the metric/device pair.
	ID string
	// NyquistRate is the minimum lossless rate (hertz).
	NyquistRate float64
	// Weight scales how much the metric's quality matters; zero means 1.
	Weight float64
	// MaxRate caps the useful rate (e.g. the device's export limit);
	// zero means no cap beyond NyquistRate (sampling above it is waste).
	MaxRate float64
}

// Allocation is the budgeter's decision for one metric.
type Allocation struct {
	// Demand echoes the input.
	Demand Demand
	// Rate is the granted poll rate (hertz).
	Rate float64
	// Lossless reports whether Rate >= NyquistRate.
	Lossless bool
}

// Plan is a complete budget allocation.
type Plan struct {
	// Allocations holds one entry per demand, in input order.
	Allocations []Allocation
	// BudgetHz is the granted total (sum of rates), samples/second.
	BudgetHz float64
	// DemandHz is the fleet's aggregate Nyquist demand.
	DemandHz float64
	// LosslessCount is how many metrics stay above their Nyquist rate.
	LosslessCount int
}

// QualityScore summarizes a plan in [0, 1]: the weighted fraction of
// fleet information captured, counting a metric at rate r below its
// Nyquist requirement n as capturing r/n of its band (the captured
// spectrum fraction under a flat-spectrum prior) and a lossless metric as
// 1.
func (p *Plan) QualityScore() float64 {
	var got, total float64
	for _, a := range p.Allocations {
		w := a.Demand.Weight
		if w <= 0 {
			w = 1
		}
		total += w
		if a.Demand.NyquistRate <= 0 || a.Rate >= a.Demand.NyquistRate {
			got += w
			continue
		}
		got += w * a.Rate / a.Demand.NyquistRate
	}
	if total == 0 {
		return 0
	}
	return got / total
}

// Allocate distributes budgetHz samples/second across the demands.
//
// When the budget covers the aggregate Nyquist demand, every metric gets
// exactly its requirement (no waste above it unless MaxRate demands
// headroom are expressed in the demand itself). When it does not, the
// deficit is spread by weighted proportional fairness: each metric gets
// budget share proportional to weight*NyquistRate, which equalizes the
// *fraction* of each metric's band that survives — the max-min fair point
// of the quality score above.
func Allocate(demands []Demand, budgetHz float64) (*Plan, error) {
	if len(demands) == 0 {
		return nil, errors.New("monitor: no demands")
	}
	if !(budgetHz > 0) {
		return nil, errors.New("monitor: budget must be positive")
	}
	p := &Plan{}
	var totalDemand, totalWeighted float64
	for _, d := range demands {
		if d.NyquistRate < 0 || math.IsNaN(d.NyquistRate) || math.IsInf(d.NyquistRate, 0) {
			return nil, errors.New("monitor: invalid Nyquist rate in demand " + d.ID)
		}
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		totalDemand += d.NyquistRate
		totalWeighted += w * d.NyquistRate
	}
	p.DemandHz = totalDemand
	if budgetHz >= totalDemand {
		// Fully funded: grant exactly the requirement.
		for _, d := range demands {
			p.Allocations = append(p.Allocations, Allocation{Demand: d, Rate: d.NyquistRate, Lossless: true})
			p.LosslessCount++
			p.BudgetHz += d.NyquistRate
		}
		return p, nil
	}
	// Deficit: weighted proportional shares, then redistribute any
	// surplus from metrics whose share exceeds their requirement.
	type slot struct {
		d     Demand
		w     float64
		rate  float64
		fixed bool
	}
	slots := make([]slot, len(demands))
	for i, d := range demands {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		slots[i] = slot{d: d, w: w}
	}
	remaining := budgetHz
	// Iterative water-filling: cap funded slots at their demand and
	// re-share the surplus among the rest. Terminates in <= len rounds.
	for {
		var openWeighted float64
		for _, s := range slots {
			if !s.fixed {
				openWeighted += s.w * s.d.NyquistRate
			}
		}
		if openWeighted <= 0 {
			break
		}
		capped := false
		for i := range slots {
			if slots[i].fixed {
				continue
			}
			share := remaining * slots[i].w * slots[i].d.NyquistRate / openWeighted
			if share >= slots[i].d.NyquistRate {
				slots[i].rate = slots[i].d.NyquistRate
				slots[i].fixed = true
				remaining -= slots[i].d.NyquistRate
				capped = true
			}
		}
		if !capped {
			for i := range slots {
				if !slots[i].fixed {
					slots[i].rate = remaining * slots[i].w * slots[i].d.NyquistRate / openWeighted
				}
			}
			break
		}
	}
	for _, s := range slots {
		lossless := s.rate >= s.d.NyquistRate && s.d.NyquistRate > 0
		if lossless {
			p.LosslessCount++
		}
		p.Allocations = append(p.Allocations, Allocation{Demand: s.d, Rate: s.rate, Lossless: lossless})
		p.BudgetHz += s.rate
	}
	return p, nil
}

// Frontier sweeps the budget from a small fraction of the aggregate
// demand to beyond it and returns (budget, quality) points — the paper's
// cost-versus-quality curve whose knee is the sweet spot: quality rises
// linearly with budget until the aggregate Nyquist demand and is flat
// beyond it.
func Frontier(demands []Demand, points int) ([]FrontierPoint, error) {
	if points < 2 {
		points = 9
	}
	var demand float64
	for _, d := range demands {
		demand += d.NyquistRate
	}
	if demand <= 0 {
		return nil, errors.New("monitor: zero aggregate demand")
	}
	out := make([]FrontierPoint, 0, points)
	for i := 0; i < points; i++ {
		frac := 0.1 + 1.9*float64(i)/float64(points-1) // 0.1x .. 2.0x demand
		plan, err := Allocate(demands, frac*demand)
		if err != nil {
			return nil, err
		}
		out = append(out, FrontierPoint{
			BudgetFraction: frac,
			BudgetHz:       plan.BudgetHz,
			Quality:        plan.QualityScore(),
			Lossless:       plan.LosslessCount,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BudgetFraction < out[j].BudgetFraction })
	return out, nil
}

// FrontierPoint is one point of the cost/quality curve.
type FrontierPoint struct {
	// BudgetFraction is the budget as a fraction of aggregate demand.
	BudgetFraction float64
	// BudgetHz is the granted budget in samples/second.
	BudgetHz float64
	// Quality is the plan's QualityScore.
	Quality float64
	// Lossless is how many metrics stay above their Nyquist rate.
	Lossless int
}
