package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Manager runs the adaptive sampling loop over an entire fleet
// concurrently — the deployment shape of §4: one control loop per
// metric/device pair, a shared budget report for the operator. Workers
// are bounded so a 10k-pair fleet does not spawn 10k goroutines.
type Manager struct {
	cfg ManagerConfig
}

// ManagerConfig parameterizes a Manager.
type ManagerConfig struct {
	// Adaptive is the per-target loop configuration template. Targets
	// with a zero InitialRate inherit it entirely.
	Adaptive core.AdaptiveConfig
	// Concurrency bounds the worker pool; zero selects 8.
	Concurrency int
	// Model prices samples.
	Model CostModel
	// Store, when non-nil, persists every target's primary-rate samples
	// through the sharded tsdb engine and feeds each converged rate into
	// its series' retention policy. Workers write concurrently; the
	// engine's per-shard locks carry the fan-in.
	Store *Store
	// Start anchors stored sample timestamps; the zero value selects the
	// pipeline's standard epoch.
	Start time.Time
}

// ManagedTarget is one fleet member under adaptive control.
type ManagedTarget struct {
	// ID names the metric/device pair.
	ID string
	// Target is the signal source.
	Target core.Sampler
	// InitialRate optionally overrides the template's starting rate.
	InitialRate float64
}

// TargetReport is the outcome for one target.
type TargetReport struct {
	// ID echoes the target.
	ID string
	// Run is the adaptation log (nil when Err is set).
	Run *core.RunResult
	// Cost is the target's bill.
	Cost Cost
	// Err records a per-target failure; other targets proceed.
	Err error
}

// FleetReport aggregates a fleet run.
type FleetReport struct {
	// Targets holds per-target outcomes sorted by ID.
	Targets []TargetReport
	// TotalCost sums all successful targets' bills.
	TotalCost Cost
	// Failed counts targets that errored.
	Failed int
}

// NewManager validates cfg and returns a Manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Concurrency < 0 {
		return nil, errors.New("monitor: negative concurrency")
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 8
	}
	// Validate the template once so per-target failures can only come
	// from the targets themselves.
	probe := cfg.Adaptive
	if probe.InitialRate == 0 {
		probe.InitialRate = 1
	}
	if _, err := core.NewAdaptiveSampler(probe); err != nil {
		return nil, fmt.Errorf("monitor: manager template: %w", err)
	}
	return &Manager{cfg: cfg}, nil
}

// Run drives every target's adaptive loop over [offset, offset+duration)
// seconds of signal time. Per-target failures are recorded, not fatal;
// Run errors only on systemic misuse (no targets).
func (m *Manager) Run(targets []ManagedTarget, offset float64, duration time.Duration) (*FleetReport, error) {
	if len(targets) == 0 {
		return nil, errors.New("monitor: no targets")
	}
	reports := make([]TargetReport, len(targets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, m.cfg.Concurrency)
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[i] = m.runOne(targets[i], offset, duration)
		}(i)
	}
	wg.Wait()
	rep := &FleetReport{Targets: reports}
	sort.Slice(rep.Targets, func(a, b int) bool { return rep.Targets[a].ID < rep.Targets[b].ID })
	for _, tr := range rep.Targets {
		if tr.Err != nil {
			rep.Failed++
			continue
		}
		rep.TotalCost.AddCost(tr.Cost)
	}
	return rep, nil
}

func (m *Manager) runOne(t ManagedTarget, offset float64, duration time.Duration) TargetReport {
	rep := TargetReport{ID: t.ID}
	if t.Target == nil {
		rep.Err = errors.New("monitor: nil target")
		return rep
	}
	cfg := m.cfg.Adaptive
	if t.InitialRate > 0 {
		cfg.InitialRate = t.InitialRate
	}
	// The adaptive poller runs the loop either way; with a configured
	// store it also persists the primary-rate samples and closes the
	// estimate→retain loop (it tolerates a nil store).
	p := &AdaptivePoller{ID: t.ID, Target: t.Target, Config: cfg, Model: m.cfg.Model}
	res, err := p.Run(m.cfg.Store, m.startTime(), offset, duration)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Run = res.Run
	rep.Cost = res.Cost
	return rep
}

// startTime resolves the timestamp anchor for stored samples.
func (m *Manager) startTime() time.Time {
	if !m.cfg.Start.IsZero() {
		return m.cfg.Start
	}
	return time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
}
