package monitor

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// Archiver implements the paper's a-posteriori path (§4, first
// paragraph): when measuring is cheap but storing and analyzing are not,
// keep polling at the high rate, compute the Nyquist rate over each
// completed window, and retain only the window re-sampled at that rate.
// Aliased windows are stored raw — losing them would discard exactly the
// information the estimator could not bound.
type Archiver struct {
	cfg      ArchiverConfig
	est      *core.Estimator
	store    *Store
	id       string
	interval time.Duration

	buf        []float64
	blockStart time.Time
	haveStart  bool

	raw, kept, aliasedBlocks int
}

// ArchiverConfig parameterizes an Archiver.
type ArchiverConfig struct {
	// WindowSamples is the analysis block size; zero selects 1024.
	WindowSamples int
	// Headroom multiplies the estimated Nyquist rate when choosing the
	// archived rate; zero selects 1.2 (sampling exactly at the critical
	// rate leaves the top component ambiguous).
	Headroom float64
	// Estimator configures per-block estimation.
	Estimator core.EstimatorConfig
	// QuantStep, when positive, is recorded so ReadBack can re-quantize
	// reconstructions to the sensor grid.
	QuantStep float64
}

func (c ArchiverConfig) withDefaults() ArchiverConfig {
	if c.WindowSamples <= 0 {
		c.WindowSamples = 1024
	}
	if c.Headroom <= 1 {
		c.Headroom = 1.2
	}
	return c
}

// NewArchiver returns an archiver writing series id to store. interval is
// the (uniform) spacing of the ingested samples.
func NewArchiver(id string, store *Store, interval time.Duration, cfg ArchiverConfig) (*Archiver, error) {
	if store == nil {
		return nil, errors.New("monitor: archiver needs a store")
	}
	if interval <= 0 {
		return nil, series.ErrBadInterval
	}
	c := cfg.withDefaults()
	est, err := core.NewEstimator(c.Estimator)
	if err != nil {
		return nil, err
	}
	return &Archiver{cfg: c, est: est, store: store, id: id, interval: interval}, nil
}

// Ingest buffers one high-rate sample; completing a window triggers an
// automatic Flush. Samples are assumed to arrive in time order at the
// configured interval (the poller's contract).
func (a *Archiver) Ingest(p series.Point) error {
	if !a.haveStart {
		a.blockStart = p.Time
		a.haveStart = true
	}
	a.buf = append(a.buf, p.Value)
	a.raw++
	if len(a.buf) >= a.cfg.WindowSamples {
		return a.Flush()
	}
	return nil
}

// Flush archives the buffered partial window. Blocks too short for
// estimation, and blocks the estimator flags as aliased, are stored raw.
func (a *Archiver) Flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	u := &series.Uniform{Start: a.blockStart, Interval: a.interval, Values: a.buf}
	res, err := a.est.Estimate(u)
	switch {
	case errors.Is(err, core.ErrAliased), errors.Is(err, core.ErrTooShort):
		a.aliasedBlocks++
		if err := a.store.AppendUniform(a.id, u); err != nil {
			return fmt.Errorf("monitor: archiver raw block: %w", err)
		}
		a.kept += len(a.buf)
	case err != nil:
		return err
	default:
		down, err := core.Downsample(u, a.cfg.Headroom*res.NyquistRate)
		if err != nil {
			return err
		}
		if err := a.store.AppendUniform(a.id, down); err != nil {
			return fmt.Errorf("monitor: archiver block: %w", err)
		}
		a.kept += len(down.Values)
	}
	a.buf = a.buf[:0]
	a.haveStart = false
	return nil
}

// Savings reports the raw sample count seen, the samples actually stored,
// and the number of blocks retained raw because they looked aliased.
func (a *Archiver) Savings() (raw, stored, aliasedBlocks int) {
	return a.raw, a.kept, a.aliasedBlocks
}

// Reduction returns raw/stored (0 before any flush).
func (a *Archiver) Reduction() float64 {
	if a.kept == 0 {
		return 0
	}
	return float64(a.raw) / float64(a.kept)
}

// ReadBack reconstructs the archived series at the target rate (hertz)
// over everything stored so far, re-quantizing when the config carries a
// quantum — the "reconstruct on demand" half of the a-posteriori path.
func (a *Archiver) ReadBack(targetRate float64) (*series.Uniform, error) {
	if !(targetRate > 0) {
		return nil, errors.New("monitor: target rate must be positive")
	}
	stored, err := a.store.Full(a.id)
	if err != nil {
		return nil, err
	}
	// Archived blocks have varying rates; regularize onto the stored
	// median grid first, then band-limited-upsample to the target.
	u, err := stored.RegularizeAuto()
	if err != nil {
		return nil, err
	}
	outLen := int(float64(u.Len()) * targetRate / u.SampleRate())
	if outLen < u.Len() {
		outLen = u.Len()
	}
	return core.Reconstruct(u, outLen, core.ReconstructConfig{QuantStep: a.cfg.QuantStep})
}
