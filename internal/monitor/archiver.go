package monitor

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// Archiver implements the paper's a-posteriori path (§4, first
// paragraph): when measuring is cheap but storing and analyzing are not,
// keep polling at the high rate, compute the Nyquist rate over each
// completed window, and retain only the window re-sampled at that rate.
// Aliased windows are stored raw — losing them would discard exactly the
// information the estimator could not bound.
type Archiver struct {
	cfg      ArchiverConfig
	est      *core.Estimator
	store    *Store
	id       string
	interval time.Duration

	// stream maintains the block's spectral estimate incrementally as
	// samples are ingested (paper-default estimator configurations only;
	// nil otherwise). It makes the current rate estimate available at
	// every sample (Advice) and lets Flush consume the already-built
	// state — O(window) — instead of running a fresh O(W log W) FFT.
	stream *core.StreamEstimator

	buf        []float64
	blockStart time.Time
	haveStart  bool

	raw, kept, aliasedBlocks int
}

// ArchiverConfig parameterizes an Archiver.
type ArchiverConfig struct {
	// WindowSamples is the analysis block size; zero selects 1024.
	WindowSamples int
	// Headroom multiplies the estimated Nyquist rate when choosing the
	// archived rate; zero selects 1.2 (sampling exactly at the critical
	// rate leaves the top component ambiguous).
	Headroom float64
	// Estimator configures per-block estimation.
	Estimator core.EstimatorConfig
	// QuantStep, when positive, is recorded so ReadBack can re-quantize
	// reconstructions to the sensor grid.
	QuantStep float64
}

func (c ArchiverConfig) withDefaults() ArchiverConfig {
	if c.WindowSamples <= 0 {
		c.WindowSamples = 1024
	}
	if c.Headroom <= 1 {
		c.Headroom = 1.2
	}
	return c
}

// NewArchiver returns an archiver writing series id to store. interval is
// the (uniform) spacing of the ingested samples.
func NewArchiver(id string, store *Store, interval time.Duration, cfg ArchiverConfig) (*Archiver, error) {
	if store == nil {
		return nil, errors.New("monitor: archiver needs a store")
	}
	if interval <= 0 {
		return nil, series.ErrBadInterval
	}
	c := cfg.withDefaults()
	est, err := core.NewEstimator(c.Estimator)
	if err != nil {
		return nil, err
	}
	a := &Archiver{cfg: c, est: est, store: store, id: id, interval: interval}
	// The streaming engine reproduces the batch estimator's paper-default
	// configuration (mean detrend, rectangular window, single FFT); any
	// other variant keeps the batch path. A MinSamples above the block
	// size must also stay on the batch path: those blocks are meant to
	// flush raw via ErrTooShort, which the stream (warm at a full
	// window) would instead estimate.
	e := c.Estimator
	minSamples := e.MinSamples
	if minSamples <= 0 {
		minSamples = 16
	}
	if !e.Welch && e.Window == nil && e.Detrend == core.DetrendMean && !e.IncludeDC && minSamples <= c.WindowSamples {
		// Windows too short for the stream (< 16 samples) are not an
		// archiver misconfiguration — they previously flushed raw via
		// the batch ErrTooShort path, and still do.
		if st, err := core.NewStreamEstimator(core.StreamConfig{
			Interval:      interval,
			WindowSamples: c.WindowSamples,
			EnergyCutoff:  e.EnergyCutoff,
			AliasedGuard:  e.AliasedGuard,
			// The estimate is read on demand (Advice/Flush), not emitted.
			EmitEvery: 1 << 30,
		}); err == nil {
			a.stream = st
		}
	}
	return a, nil
}

// Ingest buffers one high-rate sample; completing a window triggers an
// automatic Flush. Samples are assumed to arrive in time order at the
// configured interval (the poller's contract).
func (a *Archiver) Ingest(p series.Point) error {
	if !a.haveStart {
		a.blockStart = p.Time
		a.haveStart = true
	}
	a.buf = append(a.buf, p.Value)
	if a.stream != nil {
		a.stream.Push(p.Value)
	}
	a.raw++
	if len(a.buf) >= a.cfg.WindowSamples {
		return a.Flush()
	}
	return nil
}

// Advice returns the Nyquist estimate over the trailing window of
// ingested samples — the live view the incremental state affords between
// flushes (the window may span the last block boundary). It returns
// core.ErrTooShort until a full window has been ingested since the last
// partial flush (or always, for estimator variants that keep the batch
// path) and core.ErrAliased when the window carries the aliased
// signature.
func (a *Archiver) Advice() (*core.Result, error) {
	if a.stream == nil {
		return nil, core.ErrTooShort
	}
	return a.stream.Current()
}

// Flush archives the buffered partial window. Blocks too short for
// estimation, and blocks the estimator flags as aliased, are stored raw.
func (a *Archiver) Flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	u := &series.Uniform{Start: a.blockStart, Interval: a.interval, Values: a.buf}
	res, err := a.estimateBlock(u)
	switch {
	case errors.Is(err, core.ErrAliased), errors.Is(err, core.ErrTooShort):
		a.aliasedBlocks++
		if err := a.store.AppendUniform(a.id, u); err != nil {
			return fmt.Errorf("monitor: archiver raw block: %w", err)
		}
		a.kept += len(a.buf)
	case err != nil:
		return err
	default:
		down, err := core.Downsample(u, a.cfg.Headroom*res.NyquistRate)
		if err != nil {
			return err
		}
		if err := a.store.AppendUniform(a.id, down); err != nil {
			return fmt.Errorf("monitor: archiver block: %w", err)
		}
		a.kept += len(down.Values)
		// Close the estimate→retain loop: the block's Nyquist estimate
		// retunes the store's retention tiers, so a bounded store degrades
		// this series on the signal's own terms rather than a default grid.
		a.store.SetNyquist(a.id, res.NyquistRate)
	}
	wasPartial := len(a.buf) != a.cfg.WindowSamples
	a.buf = a.buf[:0]
	a.haveStart = false
	if a.stream != nil && wasPartial {
		// A full-block flush leaves the stream alone: its sliding window
		// realigns with the next block exactly when that block fills,
		// and Advice stays live in between. A partial (manual) flush
		// breaks that alignment, so the stream starts over.
		a.stream.Reset()
	}
	return nil
}

// estimateBlock uses the incrementally maintained spectral state when the
// buffered block fills a whole window, and falls back to the batch
// estimator for partial blocks (final flushes) and non-default estimator
// variants.
func (a *Archiver) estimateBlock(u *series.Uniform) (*core.Result, error) {
	if a.stream != nil && a.stream.Warm() && len(u.Values) == a.cfg.WindowSamples {
		return a.stream.Current()
	}
	return a.est.Estimate(u)
}

// Savings reports the raw sample count seen, the samples actually stored,
// and the number of blocks retained raw because they looked aliased.
func (a *Archiver) Savings() (raw, stored, aliasedBlocks int) {
	return a.raw, a.kept, a.aliasedBlocks
}

// Reduction returns raw/stored (0 before any flush).
func (a *Archiver) Reduction() float64 {
	if a.kept == 0 {
		return 0
	}
	return float64(a.raw) / float64(a.kept)
}

// ReadBack reconstructs the archived series at the target rate (hertz)
// over everything stored so far, re-quantizing when the config carries a
// quantum — the "reconstruct on demand" half of the a-posteriori path.
func (a *Archiver) ReadBack(targetRate float64) (*series.Uniform, error) {
	if !(targetRate > 0) {
		return nil, errors.New("monitor: target rate must be positive")
	}
	stored, err := a.store.Full(a.id)
	if err != nil {
		return nil, err
	}
	// Archived blocks have varying rates; regularize onto the stored
	// median grid first, then band-limited-upsample to the target.
	u, err := stored.RegularizeAuto()
	if err != nil {
		return nil, err
	}
	outLen := int(float64(u.Len()) * targetRate / u.SampleRate())
	if outLen < u.Len() {
		outLen = u.Len()
	}
	return core.Reconstruct(u, outLen, core.ReconstructConfig{QuantStep: a.cfg.QuantStep})
}
