package monitor

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// Comparison is a head-to-head of the production static poller against the
// paper's adaptive poller on the same device over the same period: the
// cost/quality sweet spot quantified.
type Comparison struct {
	// StaticCost is the fixed-rate poller's bill.
	StaticCost Cost
	// AdaptiveCost is the adaptive poller's bill (probe samples
	// included).
	AdaptiveCost Cost
	// CostReduction is StaticCost.Samples / AdaptiveCost.Samples.
	CostReduction float64
	// Fidelity compares the reconstruction from the adaptive trace
	// against the dense reference trace.
	Fidelity *core.Fidelity
	// FinalRate is where the adaptive loop converged (hertz).
	FinalRate float64
	// StaticRate is the production rate (hertz).
	StaticRate float64
}

// CompareConfig parameterizes Compare.
type CompareConfig struct {
	// StaticInterval is the production poll interval being challenged.
	StaticInterval time.Duration
	// Adaptive drives the adaptive poller.
	Adaptive core.AdaptiveConfig
	// ReferenceRate is the dense sampling rate (hertz) used to build the
	// ground-truth reference for fidelity scoring. It must resolve the
	// signal (well above its Nyquist rate).
	ReferenceRate float64
	// QuantStep re-quantizes the reconstruction (0 = off).
	QuantStep float64
	// Model prices samples for both sides.
	Model CostModel
}

// Compare runs both pollers over [offset, offset+duration) seconds of the
// target's signal time and scores cost and fidelity.
func Compare(target core.Sampler, offset float64, duration time.Duration, cfg CompareConfig) (*Comparison, error) {
	if target == nil {
		return nil, errors.New("monitor: nil target")
	}
	if cfg.StaticInterval <= 0 {
		return nil, series.ErrBadInterval
	}
	if !(cfg.ReferenceRate > 0) {
		return nil, errors.New("monitor: reference rate must be positive")
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

	static := &StaticPoller{ID: "static", Target: target, Interval: cfg.StaticInterval, Model: cfg.Model}
	staticCost, err := static.Run(nil, start, offset, duration)
	if err != nil {
		return nil, err
	}

	adaptive := &AdaptivePoller{ID: "adaptive", Target: target, Config: cfg.Adaptive, Model: cfg.Model}
	adRes, err := adaptive.Run(nil, start, offset, duration)
	if err != nil {
		return nil, err
	}

	// Build the reference trace and the adaptive reconstruction at the
	// reference rate for fidelity scoring.
	ref := sampleUniform(target, offset, duration, cfg.ReferenceRate, start)
	rec, err := reconstructFromEpochs(target, adRes.Run, offset, duration, cfg.ReferenceRate, start, cfg.QuantStep)
	if err != nil {
		return nil, err
	}
	fid, err := core.CompareSignals(ref.Values, rec.Values)
	if err != nil {
		return nil, err
	}
	fid.SamplesBefore = staticCost.Samples
	fid.SamplesAfter = adRes.Cost.Samples

	cmp := &Comparison{
		StaticCost:   staticCost,
		AdaptiveCost: adRes.Cost,
		Fidelity:     fid,
		FinalRate:    adRes.Run.FinalRate,
		StaticRate:   1 / cfg.StaticInterval.Seconds(),
	}
	if adRes.Cost.Samples > 0 {
		cmp.CostReduction = float64(staticCost.Samples) / float64(adRes.Cost.Samples)
	}
	return cmp, nil
}

func sampleUniform(target core.Sampler, offset float64, duration time.Duration, rate float64, start time.Time) *series.Uniform {
	n := int(duration.Seconds() * rate)
	if n < 1 {
		n = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = target.At(offset + float64(i)/rate)
	}
	return &series.Uniform{Start: start, Interval: time.Duration(float64(time.Second) / rate), Values: vals}
}

// reconstructFromEpochs rebuilds a dense signal from the adaptive run: for
// each epoch, the primary-rate samples are upsampled (band-limited
// interpolation) to the reference rate.
func reconstructFromEpochs(target core.Sampler, run *core.RunResult, offset float64, duration time.Duration, refRate float64, start time.Time, quantStep float64) (*series.Uniform, error) {
	totalLen := int(duration.Seconds() * refRate)
	if totalLen < 1 {
		totalLen = 1
	}
	out := make([]float64, 0, totalLen)
	for _, e := range run.Epochs {
		epochDur := nextEpochStart(run, e) - e.Start
		n := int(epochDur * e.Rate)
		if n < 1 {
			n = 1
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = target.At(e.Start + float64(i)/e.Rate)
		}
		wantLen := int(epochDur * refRate)
		if wantLen < n {
			wantLen = n
		}
		epochU := &series.Uniform{Start: start, Interval: time.Duration(float64(time.Second) / e.Rate), Values: vals}
		rec, err := core.Reconstruct(epochU, wantLen, core.ReconstructConfig{QuantStep: quantStep})
		if err != nil {
			return nil, err
		}
		out = append(out, rec.Values...)
	}
	// Pad or trim to the exact reference length (rounding drift across
	// epochs is at most a few samples).
	for len(out) < totalLen {
		out = append(out, out[len(out)-1])
	}
	out = out[:totalLen]
	return &series.Uniform{Start: start, Interval: time.Duration(float64(time.Second) / refRate), Values: out}, nil
}

func nextEpochStart(run *core.RunResult, e core.Epoch) float64 {
	if e.Index+1 < len(run.Epochs) {
		return run.Epochs[e.Index+1].Start
	}
	// Last epoch: assume the same length as the previous step.
	if e.Index > 0 {
		return e.Start + (e.Start - run.Epochs[e.Index-1].Start)
	}
	return e.Start + 1
}
