// Package monitor is the monitoring-pipeline substrate: pollers that
// sample devices at fixed or adaptive rates, an in-memory time-series
// store, and the cost accounting that makes the paper's cost/quality
// trade-off measurable (collection, transmission, storage and analysis all
// scale with sample volume, §1 and §3.1).
package monitor

import "fmt"

// CostModel prices one collected sample as it moves through the pipeline.
// The defaults model a typical SNMP-style collector: a 16-byte sample on
// the wire (timestamp + value + ids), stored as-is, with one CPU unit of
// collection work and half a unit of analysis work per sample.
type CostModel struct {
	// WireBytesPerSample is the network cost of shipping one sample to
	// the collector.
	WireBytesPerSample float64
	// StoreBytesPerSample is the storage cost of retaining one sample.
	StoreBytesPerSample float64
	// CollectCPUPerSample is the device+collector CPU work per sample.
	CollectCPUPerSample float64
	// AnalyzeCPUPerSample is the downstream analysis work per sample.
	AnalyzeCPUPerSample float64
}

// DefaultCostModel returns the standard pricing used by the experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		WireBytesPerSample:  16,
		StoreBytesPerSample: 16,
		CollectCPUPerSample: 1,
		AnalyzeCPUPerSample: 0.5,
	}
}

// Cost is an accumulated resource bill.
type Cost struct {
	// Samples is the number of measurements taken.
	Samples int
	// WireBytes is the bytes moved from devices to the collector.
	WireBytes float64
	// StoreBytes is the bytes retained.
	StoreBytes float64
	// CPUUnits is collection plus analysis work.
	CPUUnits float64
}

// Add bills n samples under model m.
func (c *Cost) Add(m CostModel, n int) {
	c.Samples += n
	fn := float64(n)
	c.WireBytes += m.WireBytesPerSample * fn
	c.StoreBytes += m.StoreBytesPerSample * fn
	c.CPUUnits += (m.CollectCPUPerSample + m.AnalyzeCPUPerSample) * fn
}

// AddCost merges another bill into c.
func (c *Cost) AddCost(o Cost) {
	c.Samples += o.Samples
	c.WireBytes += o.WireBytes
	c.StoreBytes += o.StoreBytes
	c.CPUUnits += o.CPUUnits
}

// Ratio returns how many times more expensive c is than o by sample count
// (0 when o is empty).
func (c Cost) Ratio(o Cost) float64 {
	if o.Samples == 0 {
		return 0
	}
	return float64(c.Samples) / float64(o.Samples)
}

// String renders the bill compactly.
func (c Cost) String() string {
	return fmt.Sprintf("samples=%d wire=%.0fB store=%.0fB cpu=%.1f", c.Samples, c.WireBytes, c.StoreBytes, c.CPUUnits)
}
