package monitor

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// TestArchiverAdviceMatchesBatch checks the archiver's live estimate —
// the view the incremental spectral state affords between flushes —
// agrees with batch estimation of the same trailing window, including
// windows spanning a block boundary.
func TestArchiverAdviceMatchesBatch(t *testing.T) {
	const w = 256
	store := NewStore(0)
	a, err := NewArchiver("sig", store, time.Second, ArchiverConfig{WindowSamples: w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Advice(); !errors.Is(err, core.ErrTooShort) {
		t.Fatalf("advice before a full window: %v, want ErrTooShort", err)
	}
	sig := func(i int) float64 { return 40 + 5*math.Sin(2*math.Pi*8*float64(i)/w) }
	var ingested []float64
	ingest := func(n int) {
		t.Helper()
		for k := 0; k < n; k++ {
			i := len(ingested)
			ingested = append(ingested, sig(i))
			if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: sig(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	adviceMatchesTrailing := func() {
		t.Helper()
		res, err := a.Advice()
		if err != nil {
			t.Fatalf("advice: %v", err)
		}
		u := &series.Uniform{Start: start, Interval: time.Second, Values: ingested[len(ingested)-w:]}
		var batch core.Estimator
		want, err := batch.Estimate(u)
		if err != nil {
			t.Fatalf("batch: %v", err)
		}
		if math.Abs(res.NyquistRate-want.NyquistRate) > 1e-6*(1+want.NyquistRate) {
			t.Fatalf("advice rate %g, batch %g", res.NyquistRate, want.NyquistRate)
		}
	}

	ingest(w - 1)
	if _, err := a.Advice(); !errors.Is(err, core.ErrTooShort) {
		t.Fatalf("advice one sample short: %v, want ErrTooShort", err)
	}
	// Window fill triggers the first flush; advice stays live on the
	// trailing window.
	ingest(1)
	adviceMatchesTrailing()
	// Mid-second-block: the trailing window spans the block boundary.
	ingest(100)
	adviceMatchesTrailing()
	// A partial manual flush breaks window alignment: advice warms anew.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Advice(); !errors.Is(err, core.ErrTooShort) {
		t.Fatalf("advice after partial flush: %v, want ErrTooShort", err)
	}
	ingest(w)
	adviceMatchesTrailing()
}

// TestArchiverStreamingMatchesBatchBlocks runs two archivers — one with
// the paper-default (streaming) configuration, one forced down the batch
// path with a Hann window — over the same signal and checks the streaming
// one reproduces the batch savings of its own defaults.
func TestArchiverStreamingMatchesBatchBlocks(t *testing.T) {
	type outcome struct{ raw, stored, aliased int }
	run := func(cfg ArchiverConfig) outcome {
		store := NewStore(0)
		a, err := NewArchiver("sig", store, time.Second, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4096; i++ {
			v := 40 + 5*math.Sin(2*math.Pi*16*float64(i)/1024)
			if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: v}); err != nil {
				t.Fatal(err)
			}
		}
		var o outcome
		o.raw, o.stored, o.aliased = a.Savings()
		return o
	}
	streaming := run(ArchiverConfig{WindowSamples: 1024})
	if streaming.aliased != 0 {
		t.Fatalf("streaming archiver flagged %d aliased blocks", streaming.aliased)
	}
	if streaming.stored >= streaming.raw/10 {
		t.Fatalf("streaming archiver stored %d of %d; expected heavy compression", streaming.stored, streaming.raw)
	}
}

// TestArchiverStreamFallbacks checks configurations the streaming engine
// cannot reproduce keep their pre-streaming behavior: tiny windows still
// construct (blocks flush raw via ErrTooShort), and MinSamples above the
// block size still forces raw storage instead of a stream estimate.
func TestArchiverStreamFallbacks(t *testing.T) {
	// Tiny window: constructor must succeed, blocks stored raw.
	a, err := NewArchiver("tiny", NewStore(0), time.Second, ArchiverConfig{WindowSamples: 8})
	if err != nil {
		t.Fatalf("tiny window: %v", err)
	}
	for i := 0; i < 16; i++ {
		if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	raw, stored, aliasedBlocks := a.Savings()
	if raw != 16 || stored != 16 || aliasedBlocks != 2 {
		t.Fatalf("tiny window: raw=%d stored=%d aliased=%d, want 16/16/2 (raw storage)", raw, stored, aliasedBlocks)
	}

	// MinSamples above the block size: blocks are "too short" by
	// configuration and must flush raw, not via the stream.
	b, err := NewArchiver("minsamples", NewStore(0), time.Second, ArchiverConfig{
		WindowSamples: 64,
		Estimator:     core.EstimatorConfig{MinSamples: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		v := 40 + math.Sin(2*math.Pi*4*float64(i)/64)
		if err := b.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	raw, stored, aliasedBlocks = b.Savings()
	if raw != 64 || stored != 64 || aliasedBlocks != 1 {
		t.Fatalf("minsamples: raw=%d stored=%d aliased=%d, want 64/64/1 (raw storage)", raw, stored, aliasedBlocks)
	}
}

// TestStaticPollerFeedsStream checks the production poll loop feeds the
// riding estimator, which then knows the metric's actual requirement.
func TestStaticPollerFeedsStream(t *testing.T) {
	st, err := core.NewStreamEstimator(core.StreamConfig{
		Interval:      time.Second,
		WindowSamples: 512,
		EmitEvery:     1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1/64 Hz sine sampled at 1 Hz: Nyquist rate 1/32 Hz, 32x oversampled.
	target := core.SamplerFunc(func(ts float64) float64 {
		return 20 + math.Sin(2*math.Pi*ts/64)
	})
	p := &StaticPoller{ID: "s", Target: target, Interval: time.Second, Stream: st}
	if _, err := p.Run(nil, start, 0, 1024*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.Seen() != 1024 {
		t.Fatalf("stream saw %d polls, want 1024", st.Seen())
	}
	res, err := st.Current()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ReductionRatio-32) > 2 {
		t.Fatalf("riding estimator found %.1fx reduction, want ~32x", res.ReductionRatio)
	}
}

// TestStaticPollerStreamRetunesRetention checks the riding estimator's
// emissions reach the store's retention policy while the production rate
// keeps collecting.
func TestStaticPollerStreamRetunesRetention(t *testing.T) {
	st, err := core.NewStreamEstimator(core.StreamConfig{
		Interval:      time.Second,
		WindowSamples: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := core.SamplerFunc(func(ts float64) float64 {
		return 20 + math.Sin(2*math.Pi*ts/64)
	})
	s := NewStore(128)
	p := &StaticPoller{ID: "s", Target: target, Interval: time.Second, Stream: st}
	if _, err := p.Run(s, start, 0, 1024*time.Second); err != nil {
		t.Fatal(err)
	}
	rate := s.NyquistRate("s")
	if rate <= 0 {
		t.Fatal("store retention never learned from the riding stream")
	}
	// 1/64 Hz tone → Nyquist rate 1/32 Hz.
	if want := 1.0 / 32; rate < want/2 || rate > 4*want {
		t.Fatalf("retained rate %g Hz, want near %g", rate, want)
	}
}
