package monitor

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

var start = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

func slowTone(f float64) core.SamplerFunc {
	return func(t float64) float64 { return 40 + 10*math.Sin(2*math.Pi*f*t) }
}

func TestCostModelAccumulation(t *testing.T) {
	var c Cost
	m := DefaultCostModel()
	c.Add(m, 10)
	if c.Samples != 10 || c.WireBytes != 160 || c.StoreBytes != 160 || c.CPUUnits != 15 {
		t.Fatalf("cost = %+v", c)
	}
	var d Cost
	d.Add(m, 5)
	c.AddCost(d)
	if c.Samples != 15 {
		t.Fatalf("merged samples = %d", c.Samples)
	}
	if r := c.Ratio(d); math.Abs(r-3) > 1e-12 {
		t.Fatalf("ratio = %v, want 3", r)
	}
	if (Cost{}).Ratio(Cost{}) != 0 {
		t.Fatal("ratio vs empty should be 0")
	}
	if c.String() == "" {
		t.Fatal("empty cost string")
	}
}

func TestStoreAppendQuery(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		if err := s.Append("a", series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Query("a", start.Add(2*time.Second), start.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("query returned %d points, want 3", got.Len())
	}
	if _, err := s.Query("missing", start, start.Add(time.Hour)); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
	if s.Points() != 10 {
		t.Fatalf("points = %d", s.Points())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("ids = %v", ids)
	}
}

// TestBoundedStoreNoLongerFails is the regression test for the seed
// store's failure mode: a bounded store used to return a hard
// ErrStoreFull once the capacity was hit, silently stalling long-running
// archiver sessions. The tsdb-backed store must instead keep accepting
// writes forever and degrade resolution (compact into min/max/mean tiers).
func TestBoundedStoreNoLongerFails(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 500; i++ {
		if err := s.Append("a", series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatalf("append %d: %v (the bounded store must never fail a write)", i, err)
		}
	}
	st := s.Stats()
	if st.Appends != 500 {
		t.Fatalf("appends = %d, want 500", st.Appends)
	}
	if st.Compacted == 0 {
		t.Fatal("capacity pressure never compacted anything")
	}
	// Degraded, not dead: history is still queryable at reduced
	// resolution alongside the exact raw tail.
	full, err := s.QueryRange("a", start, start.Add(500*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	aggregated := false
	for _, a := range full.Aggregates {
		if a.Count > 1 {
			aggregated = true
		}
	}
	if !aggregated {
		t.Fatal("no downsampled buckets; store did not degrade per tier")
	}
	if full.Points[len(full.Points)-1].Value != 499 {
		t.Fatalf("newest raw value = %v, want 499", full.Points[len(full.Points)-1].Value)
	}
}

func TestStoreConcurrentAppend(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g%4))
			for i := 0; i < 200; i++ {
				_ = s.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if s.Points() != 1600 {
		t.Fatalf("points = %d, want 1600", s.Points())
	}
	if len(s.IDs()) != 4 {
		t.Fatalf("ids = %v", s.IDs())
	}
}

func TestStoreAppendUniform(t *testing.T) {
	s := NewStore(0)
	u := &series.Uniform{Start: start, Interval: time.Second, Values: []float64{1, 2, 3}}
	if err := s.AppendUniform("u", u); err != nil {
		t.Fatal(err)
	}
	full, err := s.Full("u")
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 3 {
		t.Fatalf("full len = %d", full.Len())
	}
	if _, err := s.Full("nope"); !errors.Is(err, ErrNoSeries) {
		t.Fatal("want ErrNoSeries")
	}
}

func TestStaticPollerRun(t *testing.T) {
	s := NewStore(0)
	p := &StaticPoller{ID: "dev", Target: slowTone(0.001), Interval: 10 * time.Second, Model: DefaultCostModel()}
	cost, err := p.Run(s, start, 0, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Samples != 60 {
		t.Fatalf("samples = %d, want 60", cost.Samples)
	}
	stored, err := s.Full("dev")
	if err != nil {
		t.Fatal(err)
	}
	if stored.Len() != 60 {
		t.Fatalf("stored = %d", stored.Len())
	}
}

func TestStaticPollerBoundedStoreDegrades(t *testing.T) {
	// Regression for the seed failure mode: a bounded store filling
	// mid-run used to abort the poller with ErrStoreFull. Now the run
	// completes and old samples survive as coarser-tier summaries.
	s := NewStore(10)
	p := &StaticPoller{ID: "dev", Target: slowTone(0.001), Interval: time.Second, Model: DefaultCostModel()}
	cost, err := p.Run(s, start, 0, time.Minute)
	if err != nil {
		t.Fatalf("bounded store aborted the run: %v", err)
	}
	if cost.Samples != 60 {
		t.Fatalf("samples = %d, want the full 60", cost.Samples)
	}
	st := s.Stats()
	if st.Appends != 60 || st.Compacted != 50 {
		t.Fatalf("appends = %d, compacted = %d; want 60/50", st.Appends, st.Compacted)
	}
}

func TestArchiverBoundedStoreKeepsRunning(t *testing.T) {
	// The seed archiver stalled for good once its bounded store filled.
	// A long session over a tiny store must now run to completion with
	// every block accepted.
	s := NewStore(3)
	a, err := NewArchiver("x", s, time.Second, ArchiverConfig{WindowSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 7)}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	raw, stored, _ := a.Savings()
	if raw != 1024 || stored == 0 {
		t.Fatalf("raw=%d stored=%d; the session must have kept archiving", raw, stored)
	}
}

func TestStaticPollerErrors(t *testing.T) {
	p := &StaticPoller{ID: "x", Interval: time.Second}
	if _, err := p.Run(nil, start, 0, time.Minute); err == nil {
		t.Fatal("nil target should fail")
	}
	p = &StaticPoller{ID: "x", Target: slowTone(0.1)}
	if _, err := p.Run(nil, start, 0, time.Minute); err == nil {
		t.Fatal("zero interval should fail")
	}
}

func TestAdaptivePollerStoresPrimarySamples(t *testing.T) {
	s := NewStore(0)
	p := &AdaptivePoller{
		ID:     "dev",
		Target: slowTone(0.02),
		Config: core.AdaptiveConfig{InitialRate: 0.5, MaxRate: 4, EpochDuration: 256},
		Model:  DefaultCostModel(),
	}
	res, err := p.Run(s, start, 0, 2048*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Samples <= 0 {
		t.Fatal("no samples billed")
	}
	stored, err := s.Full("dev")
	if err != nil {
		t.Fatal(err)
	}
	if stored.Len() == 0 {
		t.Fatal("nothing stored")
	}
	// Probe overhead means billed > stored.
	if res.Cost.Samples <= stored.Len() {
		t.Fatalf("billed %d should exceed stored %d (companion probes)", res.Cost.Samples, stored.Len())
	}
}

func TestAdaptivePollerNilTarget(t *testing.T) {
	p := &AdaptivePoller{ID: "x", Config: core.AdaptiveConfig{InitialRate: 1, MaxRate: 2, EpochDuration: 10}}
	if _, err := p.Run(nil, start, 0, time.Minute); err == nil {
		t.Fatal("nil target should fail")
	}
}

func TestCompareAdaptiveBeatsStaticOnSlowSignal(t *testing.T) {
	// A signal with a 0.002 Hz component polled statically at 1 Hz is
	// massively oversampled; the adaptive poller must slash cost while
	// keeping reconstruction quality high.
	target := slowTone(0.002)
	cmp, err := Compare(target, 0, 4096*time.Second, CompareConfig{
		StaticInterval: time.Second,
		Adaptive:       core.AdaptiveConfig{InitialRate: 0.05, MaxRate: 1, EpochDuration: 1024},
		ReferenceRate:  1,
		Model:          DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CostReduction < 5 {
		t.Fatalf("cost reduction = %v, want > 5x", cmp.CostReduction)
	}
	if cmp.Fidelity.NRMSE > 0.05 {
		t.Fatalf("NRMSE = %v, want < 0.05", cmp.Fidelity.NRMSE)
	}
}

// TestArchiverClosesEstimateRetainLoop checks a clean block estimate
// lands in the store's retention policy: after archiving, the series
// carries the Nyquist rate the stream estimator found.
func TestArchiverClosesEstimateRetainLoop(t *testing.T) {
	s := NewStore(256)
	a, err := NewArchiver("temp", s, time.Second, ArchiverConfig{WindowSamples: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		v := 40 + 5*math.Sin(2*math.Pi*16*float64(i)/1024)
		if err := a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.NyquistRate("temp")
	if got <= 0 {
		t.Fatal("store never learned the series' Nyquist rate")
	}
	// 16 cycles per 1024 s → f_max = 16/1024 Hz → Nyquist rate 32/1024.
	want := 2 * 16.0 / 1024
	if got < want/2 || got > 4*want {
		t.Fatalf("retained rate %g Hz, want within a small factor of %g", got, want)
	}
}

// TestManagerPersistsThroughStore checks the fleet path writes through
// the sharded engine: concurrent workers store their primary-rate
// samples and feed converged rates into per-series retention.
func TestManagerPersistsThroughStore(t *testing.T) {
	s := NewStore(0)
	cfg := managerConfig()
	cfg.Store = s
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := fleetTargets(4)
	rep, err := m.Run(targets, 0, 256*8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed = %d", rep.Failed)
	}
	ids := s.IDs()
	if len(ids) != 4 {
		t.Fatalf("stored series = %v, want all 4 targets", ids)
	}
	for _, tr := range rep.Targets {
		stored, err := s.Full(tr.ID)
		if err != nil {
			t.Fatalf("%s: %v", tr.ID, err)
		}
		if stored.Len() == 0 {
			t.Fatalf("%s: nothing persisted", tr.ID)
		}
		// The converged rate is Headroom (default 2) × the requirement;
		// the store receives the raw Nyquist rate.
		if rate := s.NyquistRate(tr.ID); rate != tr.Run.FinalRate/2 {
			t.Fatalf("%s: retention rate %g, want converged/headroom %g", tr.ID, rate, tr.Run.FinalRate/2)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(nil, 0, time.Minute, CompareConfig{StaticInterval: time.Second, ReferenceRate: 1}); err == nil {
		t.Fatal("nil target should fail")
	}
	if _, err := Compare(slowTone(0.01), 0, time.Minute, CompareConfig{ReferenceRate: 1}); err == nil {
		t.Fatal("zero static interval should fail")
	}
	if _, err := Compare(slowTone(0.01), 0, time.Minute, CompareConfig{StaticInterval: time.Second}); err == nil {
		t.Fatal("zero reference rate should fail")
	}
}
