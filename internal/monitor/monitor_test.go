package monitor

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

var start = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

func slowTone(f float64) core.SamplerFunc {
	return func(t float64) float64 { return 40 + 10*math.Sin(2*math.Pi*f*t) }
}

func TestCostModelAccumulation(t *testing.T) {
	var c Cost
	m := DefaultCostModel()
	c.Add(m, 10)
	if c.Samples != 10 || c.WireBytes != 160 || c.StoreBytes != 160 || c.CPUUnits != 15 {
		t.Fatalf("cost = %+v", c)
	}
	var d Cost
	d.Add(m, 5)
	c.AddCost(d)
	if c.Samples != 15 {
		t.Fatalf("merged samples = %d", c.Samples)
	}
	if r := c.Ratio(d); math.Abs(r-3) > 1e-12 {
		t.Fatalf("ratio = %v, want 3", r)
	}
	if (Cost{}).Ratio(Cost{}) != 0 {
		t.Fatal("ratio vs empty should be 0")
	}
	if c.String() == "" {
		t.Fatal("empty cost string")
	}
}

func TestStoreAppendQuery(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		if err := s.Append("a", series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Query("a", start.Add(2*time.Second), start.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("query returned %d points, want 3", got.Len())
	}
	if _, err := s.Query("missing", start, start.Add(time.Hour)); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
	if s.Points() != 10 {
		t.Fatalf("points = %d", s.Points())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestStoreCapacity(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 3; i++ {
		if err := s.Append("a", series.Point{Time: start, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append("a", series.Point{Time: start, Value: 1}); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
}

func TestStoreConcurrentAppend(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g%4))
			for i := 0; i < 200; i++ {
				_ = s.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if s.Points() != 1600 {
		t.Fatalf("points = %d, want 1600", s.Points())
	}
	if len(s.IDs()) != 4 {
		t.Fatalf("ids = %v", s.IDs())
	}
}

func TestStoreAppendUniform(t *testing.T) {
	s := NewStore(0)
	u := &series.Uniform{Start: start, Interval: time.Second, Values: []float64{1, 2, 3}}
	if err := s.AppendUniform("u", u); err != nil {
		t.Fatal(err)
	}
	full, err := s.Full("u")
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 3 {
		t.Fatalf("full len = %d", full.Len())
	}
	if _, err := s.Full("nope"); !errors.Is(err, ErrNoSeries) {
		t.Fatal("want ErrNoSeries")
	}
}

func TestStaticPollerRun(t *testing.T) {
	s := NewStore(0)
	p := &StaticPoller{ID: "dev", Target: slowTone(0.001), Interval: 10 * time.Second, Model: DefaultCostModel()}
	cost, err := p.Run(s, start, 0, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Samples != 60 {
		t.Fatalf("samples = %d, want 60", cost.Samples)
	}
	stored, err := s.Full("dev")
	if err != nil {
		t.Fatal(err)
	}
	if stored.Len() != 60 {
		t.Fatalf("stored = %d", stored.Len())
	}
}

func TestStaticPollerStoreFullPropagates(t *testing.T) {
	// Failure injection: a bounded store fills mid-run; the poller must
	// surface ErrStoreFull instead of silently dropping samples.
	s := NewStore(10)
	p := &StaticPoller{ID: "dev", Target: slowTone(0.001), Interval: time.Second, Model: DefaultCostModel()}
	_, err := p.Run(s, start, 0, time.Minute)
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
	if s.Points() != 10 {
		t.Fatalf("stored %d points, want exactly the capacity", s.Points())
	}
}

func TestArchiverStoreFullPropagates(t *testing.T) {
	s := NewStore(3)
	a, err := NewArchiver("x", s, time.Second, ArchiverConfig{WindowSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	var ingestErr error
	for i := 0; i < 64 && ingestErr == nil; i++ {
		ingestErr = a.Ingest(series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 7)})
	}
	if !errors.Is(ingestErr, ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", ingestErr)
	}
}

func TestStaticPollerErrors(t *testing.T) {
	p := &StaticPoller{ID: "x", Interval: time.Second}
	if _, err := p.Run(nil, start, 0, time.Minute); err == nil {
		t.Fatal("nil target should fail")
	}
	p = &StaticPoller{ID: "x", Target: slowTone(0.1)}
	if _, err := p.Run(nil, start, 0, time.Minute); err == nil {
		t.Fatal("zero interval should fail")
	}
}

func TestAdaptivePollerStoresPrimarySamples(t *testing.T) {
	s := NewStore(0)
	p := &AdaptivePoller{
		ID:     "dev",
		Target: slowTone(0.02),
		Config: core.AdaptiveConfig{InitialRate: 0.5, MaxRate: 4, EpochDuration: 256},
		Model:  DefaultCostModel(),
	}
	res, err := p.Run(s, start, 0, 2048*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Samples <= 0 {
		t.Fatal("no samples billed")
	}
	stored, err := s.Full("dev")
	if err != nil {
		t.Fatal(err)
	}
	if stored.Len() == 0 {
		t.Fatal("nothing stored")
	}
	// Probe overhead means billed > stored.
	if res.Cost.Samples <= stored.Len() {
		t.Fatalf("billed %d should exceed stored %d (companion probes)", res.Cost.Samples, stored.Len())
	}
}

func TestAdaptivePollerNilTarget(t *testing.T) {
	p := &AdaptivePoller{ID: "x", Config: core.AdaptiveConfig{InitialRate: 1, MaxRate: 2, EpochDuration: 10}}
	if _, err := p.Run(nil, start, 0, time.Minute); err == nil {
		t.Fatal("nil target should fail")
	}
}

func TestCompareAdaptiveBeatsStaticOnSlowSignal(t *testing.T) {
	// A signal with a 0.002 Hz component polled statically at 1 Hz is
	// massively oversampled; the adaptive poller must slash cost while
	// keeping reconstruction quality high.
	target := slowTone(0.002)
	cmp, err := Compare(target, 0, 4096*time.Second, CompareConfig{
		StaticInterval: time.Second,
		Adaptive:       core.AdaptiveConfig{InitialRate: 0.05, MaxRate: 1, EpochDuration: 1024},
		ReferenceRate:  1,
		Model:          DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CostReduction < 5 {
		t.Fatalf("cost reduction = %v, want > 5x", cmp.CostReduction)
	}
	if cmp.Fidelity.NRMSE > 0.05 {
		t.Fatalf("NRMSE = %v, want < 0.05", cmp.Fidelity.NRMSE)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(nil, 0, time.Minute, CompareConfig{StaticInterval: time.Second, ReferenceRate: 1}); err == nil {
		t.Fatal("nil target should fail")
	}
	if _, err := Compare(slowTone(0.01), 0, time.Minute, CompareConfig{ReferenceRate: 1}); err == nil {
		t.Fatal("zero static interval should fail")
	}
	if _, err := Compare(slowTone(0.01), 0, time.Minute, CompareConfig{StaticInterval: time.Second}); err == nil {
		t.Fatal("zero reference rate should fail")
	}
}
