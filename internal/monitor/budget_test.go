package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func demoDemands() []Demand {
	return []Demand{
		{ID: "a", NyquistRate: 0.01},
		{ID: "b", NyquistRate: 0.04},
		{ID: "c", NyquistRate: 0.15},
	}
}

func TestAllocateFullyFunded(t *testing.T) {
	p, err := Allocate(demoDemands(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.LosslessCount != 3 {
		t.Fatalf("lossless = %d, want 3", p.LosslessCount)
	}
	// No waste: each metric gets exactly its requirement.
	for _, a := range p.Allocations {
		if a.Rate != a.Demand.NyquistRate {
			t.Fatalf("%s granted %v, want exactly %v", a.Demand.ID, a.Rate, a.Demand.NyquistRate)
		}
	}
	if got := p.QualityScore(); got != 1 {
		t.Fatalf("quality = %v, want 1", got)
	}
	if math.Abs(p.BudgetHz-0.2) > 1e-12 {
		t.Fatalf("spent %v, want 0.2", p.BudgetHz)
	}
}

func TestAllocateDeficitProportional(t *testing.T) {
	// Budget is half the demand: every metric should retain half its
	// band (equal weights), i.e. rate = nyquist/2.
	p, err := Allocate(demoDemands(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Allocations {
		want := a.Demand.NyquistRate / 2
		if math.Abs(a.Rate-want) > 1e-12 {
			t.Fatalf("%s granted %v, want %v", a.Demand.ID, a.Rate, want)
		}
		if a.Lossless {
			t.Fatalf("%s marked lossless in deficit", a.Demand.ID)
		}
	}
	if got := p.QualityScore(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("quality = %v, want 0.5", got)
	}
}

func TestAllocateWeights(t *testing.T) {
	demands := []Demand{
		{ID: "critical", NyquistRate: 0.1, Weight: 9},
		{ID: "besteffort", NyquistRate: 0.1, Weight: 1},
	}
	p, err := Allocate(demands, 0.1) // half the total demand
	if err != nil {
		t.Fatal(err)
	}
	crit, be := p.Allocations[0], p.Allocations[1]
	if crit.Rate <= be.Rate {
		t.Fatalf("critical %v not above best-effort %v", crit.Rate, be.Rate)
	}
	if math.Abs(crit.Rate-0.09) > 1e-12 || math.Abs(be.Rate-0.01) > 1e-12 {
		t.Fatalf("rates = %v, %v; want 0.09, 0.01", crit.Rate, be.Rate)
	}
}

func TestAllocateEqualBandFractions(t *testing.T) {
	// Proportional fairness with equal weights: every metric keeps the
	// same fraction of its band regardless of absolute demand.
	demands := []Demand{
		{ID: "tiny", NyquistRate: 0.001},
		{ID: "huge", NyquistRate: 1},
	}
	p, err := Allocate(demands, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fracTiny := p.Allocations[0].Rate / 0.001
	fracHuge := p.Allocations[1].Rate / 1
	if math.Abs(fracTiny-fracHuge) > 1e-9 {
		t.Fatalf("band fractions differ: %v vs %v", fracTiny, fracHuge)
	}
}

func TestAllocateCapsOverWeightedDemand(t *testing.T) {
	// A heavily weighted small demand gets a proportional share larger
	// than its requirement: it must cap there and the surplus must flow
	// to the other metric.
	demands := []Demand{
		{ID: "vip", NyquistRate: 0.01, Weight: 100},
		{ID: "bulk", NyquistRate: 1, Weight: 1},
	}
	p, err := Allocate(demands, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Allocations[0].Rate != 0.01 || !p.Allocations[0].Lossless {
		t.Fatalf("vip got %v, want its full 0.01", p.Allocations[0].Rate)
	}
	if math.Abs(p.Allocations[1].Rate-0.49) > 1e-9 {
		t.Fatalf("bulk got %v, want the 0.49 surplus", p.Allocations[1].Rate)
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(nil, 1); err == nil {
		t.Fatal("no demands should fail")
	}
	if _, err := Allocate(demoDemands(), 0); err == nil {
		t.Fatal("zero budget should fail")
	}
	if _, err := Allocate([]Demand{{ID: "x", NyquistRate: math.NaN()}}, 1); err == nil {
		t.Fatal("NaN demand should fail")
	}
}

func TestAllocateBudgetConservedProperty(t *testing.T) {
	f := func(rates []uint16, budgetSeed uint16) bool {
		if len(rates) == 0 {
			return true
		}
		if len(rates) > 50 {
			rates = rates[:50]
		}
		demands := make([]Demand, len(rates))
		var total float64
		for i, r := range rates {
			demands[i] = Demand{ID: "d", NyquistRate: float64(r%1000+1) / 1000}
			total += demands[i].NyquistRate
		}
		budget := total * (0.05 + float64(budgetSeed)/65535*2)
		p, err := Allocate(demands, budget)
		if err != nil {
			return false
		}
		// Spend never exceeds min(budget, demand); no metric exceeds its
		// requirement; quality in [0, 1].
		capped := math.Min(budget, total)
		if p.BudgetHz > capped*(1+1e-9) {
			return false
		}
		for _, a := range p.Allocations {
			if a.Rate > a.Demand.NyquistRate*(1+1e-9) || a.Rate < 0 {
				return false
			}
		}
		q := p.QualityScore()
		return q >= 0 && q <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierShape(t *testing.T) {
	pts, err := Frontier(demoDemands(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("points = %d", len(pts))
	}
	// Quality must be non-decreasing in budget, hit 1 at >=1x demand,
	// and be linear below (knee at 1.0).
	prev := -1.0
	for _, p := range pts {
		if p.Quality < prev-1e-9 {
			t.Fatalf("quality not monotone at %v", p.BudgetFraction)
		}
		prev = p.Quality
		if p.BudgetFraction >= 1 && p.Quality < 1-1e-9 {
			t.Fatalf("budget %vx demand but quality %v", p.BudgetFraction, p.Quality)
		}
		if p.BudgetFraction < 1 && math.Abs(p.Quality-p.BudgetFraction) > 1e-9 {
			t.Fatalf("below the knee quality %v != budget fraction %v", p.Quality, p.BudgetFraction)
		}
	}
}

func TestFrontierErrors(t *testing.T) {
	if _, err := Frontier(nil, 5); err == nil {
		t.Fatal("empty demands should fail")
	}
	if _, err := Frontier([]Demand{{ID: "x", NyquistRate: 0}}, 5); err == nil {
		t.Fatal("zero demand should fail")
	}
}
