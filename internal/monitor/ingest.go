package monitor

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// IngestEstimator is the estimate-on-ingest hook for externally pushed
// telemetry: the serving counterpart of the Archiver's riding stream.
// Controller-managed devices get their Nyquist estimates from the poll
// loop itself; series that arrive over a network boundary (internal/api,
// cmd/nyquistd) have no poller to ride, so the hook rebuilds the same
// loop from the ingest stream alone:
//
//  1. The first few points of an unknown series probe its poll interval
//     (the median positive gap — external pollers jitter).
//  2. Once the interval locks, every point feeds a per-series
//     core.StreamEstimator, so a live §3.2 estimate, aliasing verdict
//     and sweet-spot poll suggestion exist for every external series.
//  3. Clean estimates retune the store's retention (Store.SetNyquist) —
//     the paper's estimate→retain loop, closed across the wire. Aliased
//     windows never retune (the §4.2 asymmetry: an aliased estimate is
//     exactly the one you must not trust), they only raise AliasStreak
//     so clients can poll faster.
//
// A sustained shift in the observed inter-arrival gap (a client
// redeploy changing its poll rate) re-probes the interval and restarts
// that series' window.
//
// IngestEstimator is safe for concurrent use; distinct series proceed in
// parallel.
type IngestEstimator struct {
	cfg   IngestConfig
	store *Store

	// clock counts every observation estimator-wide; each series stamps
	// it into lastSeen so idleness is measured in observations, not wall
	// time (a quiet fleet should not age anything out).
	clock atomic.Int64

	// Lifecycle counters for the observability layer, atomic so the
	// per-series fast path never takes the estimator lock to bump them:
	// probes counts interval locks (a series graduating from the gap
	// probe to a live analysis window), reprobes the drift-triggered
	// re-locks, retunes the clean-streak SetNyquist handoffs, and
	// aliasedRefreshes every estimate refresh carrying the aliased
	// signature.
	probes           atomic.Int64
	reprobesTotal    atomic.Int64
	retunes          atomic.Int64
	aliasedRefreshes atomic.Int64

	mu     sync.RWMutex
	series map[string]*ingestSeries
	// rejected counts observations dropped because MaxSeries was hit.
	rejected int64
	// evicted counts series aged out by LRU eviction to admit new ones.
	evicted int64
	// evictQueue caches eviction candidates (oldest first) from the last
	// full scan, so a churn storm pays one O(n log n) scan per batch of
	// evictions instead of per eviction.
	evictQueue []string
}

// IngestConfig parameterizes an IngestEstimator.
type IngestConfig struct {
	// WindowSamples is each series' sliding analysis window; zero
	// selects 256 (shorter than the batch default: serving clients want
	// first estimates after hundreds, not thousands, of points).
	WindowSamples int
	// EmitEvery is the number of points between estimate refreshes once
	// a window is full; zero selects 8.
	EmitEvery int
	// EnergyCutoff is the spectral energy fraction defining the Nyquist
	// cut-off, passed through to each series' stream estimator; zero
	// selects the core default.
	EnergyCutoff float64
	// Headroom multiplies the estimated Nyquist rate when suggesting a
	// poll interval and when retuning retention; zero selects 1.2.
	Headroom float64
	// ProbeGaps is the number of inter-arrival gaps observed before the
	// poll interval locks; zero selects 8.
	ProbeGaps int
	// DriftFactor bounds how far the observed gap may drift from the
	// locked interval (in either direction) before the series re-probes;
	// zero selects 2 (half/double). Values ≤ 1 disable drift re-probes.
	DriftFactor float64
	// RetuneCleanStreak is how many consecutive clean estimate refreshes
	// a series needs before a refresh retunes retention — the mirror of
	// the controller's §4.2 asymmetry (one clean window among aliased
	// ones is noise, not license to coarsen storage). Zero selects 2.
	RetuneCleanStreak int
	// MaxSeries bounds the number of per-series estimator windows. Each
	// series costs a sliding-DFT window (O(WindowSamples) floats), so a
	// hostile cardinality explosion — an id per request — would grow the
	// estimator without bound. Observations for new series beyond the cap
	// are dropped (and counted; see Rejected): existing series keep
	// estimating, the overflow series simply get no estimates or
	// retention retuning. Zero means unbounded.
	MaxSeries int
	// EvictAfter enables LRU eviction under the MaxSeries cap: when a
	// new series arrives at the cap, the longest-idle series — one not
	// observed for at least EvictAfter observations, estimator-wide — is
	// evicted to admit it, so churned ids (pod renames, short-lived
	// jobs) age out instead of pinning the cap forever. The evicted
	// series' stored points and retention tuning survive; only its
	// estimator window is released. Zero disables eviction (new series
	// at the cap are rejected); negative selects 4 x MaxSeries.
	EvictAfter int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.WindowSamples <= 0 {
		c.WindowSamples = 256
	}
	if c.EmitEvery <= 0 {
		c.EmitEvery = 8
	}
	if c.Headroom <= 1 {
		c.Headroom = 1.2
	}
	if c.ProbeGaps <= 0 {
		c.ProbeGaps = 8
	}
	if c.DriftFactor == 0 {
		c.DriftFactor = 2
	}
	if c.RetuneCleanStreak <= 0 {
		c.RetuneCleanStreak = 2
	}
	if c.EvictAfter < 0 {
		c.EvictAfter = 4 * c.MaxSeries
	}
	return c
}

// IngestAdvice is the live operator guidance for one ingested series.
type IngestAdvice struct {
	// Series is the series id.
	Series string
	// Samples counts every point observed for the series.
	Samples int64
	// Interval is the locked poll interval (0 while still probing).
	Interval time.Duration
	// Warm reports whether a full analysis window has been seen; the
	// estimate fields below are meaningful only when it is.
	Warm bool
	// NyquistRate is the latest clean estimate in hertz (0 = none yet).
	NyquistRate float64
	// SuggestedInterval is the sweet-spot poll interval: 1/(Headroom ×
	// NyquistRate) for clean windows, half the current interval while
	// aliased.
	SuggestedInterval time.Duration
	// Aliased reports that the newest window carried the aliased
	// signature; AliasStreak counts consecutive aliased refreshes (≥ 2
	// means the client genuinely polls too slowly, not a one-window
	// blip).
	Aliased     bool
	AliasStreak int
	// EnergyCaptured is the spectral energy fraction below the cut-off
	// in the newest window.
	EnergyCaptured float64
	// UpdatedAt is the newest sample's timestamp at the last estimate
	// refresh (zero before the first refresh).
	UpdatedAt time.Time
	// Reprobes counts interval re-locks caused by sustained gap drift.
	Reprobes int
}

// ingestSeries is one series' hook state. Its own mutex serializes
// observations per series while distinct series proceed in parallel.
type ingestSeries struct {
	// lastSeen is the estimator-wide clock value of the newest
	// observation for this series — the LRU recency stamp. Atomic so the
	// Observe fast path can stamp it without the estimator lock.
	lastSeen atomic.Int64

	mu sync.Mutex

	est      *core.StreamEstimator
	interval time.Duration
	pending  []series.Point // pre-lock probe window
	lastTime time.Time
	haveLast bool
	samples  int64
	reprobes int

	// drift counts consecutive gaps outside the accepted band around
	// the locked interval.
	drift int
	// cleanStreak counts consecutive clean estimate refreshes — the
	// retune debounce.
	cleanStreak int

	last        *core.StreamUpdate
	lastNyquist float64 // last clean estimate handed to SetNyquist
}

// NewIngestEstimator returns a hook feeding estimates into store (which
// may be nil when only advice, not retention retuning, is wanted).
func NewIngestEstimator(store *Store, cfg IngestConfig) *IngestEstimator {
	return &IngestEstimator{
		cfg:    cfg.withDefaults(),
		store:  store,
		series: make(map[string]*ingestSeries),
	}
}

// Observe ingests one point for id: pre-lock points accumulate toward
// the interval probe, post-lock points feed the series' streaming
// estimator, and clean estimate refreshes retune the store's retention
// for id. The only way it declines is the MaxSeries cap: an observation
// for a new series beyond the cap is dropped and counted, and Observe
// returns false.
func (e *IngestEstimator) Observe(id string, p series.Point) bool {
	tick := e.clock.Add(1)
	s := e.lookupOrCreate(id, tick)
	if s == nil {
		return false
	}
	s.lastSeen.Store(tick)
	s.mu.Lock()
	e.observeLocked(s, id, p)
	s.mu.Unlock()
	return true
}

// ObserveRun ingests a same-series run of points in arrival order:
// semantically exactly len(pts) Observe calls, but the series is
// resolved once and its lock is held for the whole run, so the batched
// ingest path pays one map lookup and one lock round-trip per series per
// batch instead of per point. Returns the number of points observed; the
// remainder was dropped at the MaxSeries cap. Drops are always a prefix
// of the run — each dropped point retries admission (eviction can free a
// slot mid-run, exactly as per-point Observe calls would), and once the
// series exists nothing declines.
func (e *IngestEstimator) ObserveRun(id string, pts []series.Point) int {
	dropped := 0
	var s *ingestSeries
	var tick int64
	for dropped < len(pts) {
		tick = e.clock.Add(1)
		if s = e.lookupOrCreate(id, tick); s != nil {
			break
		}
		dropped++
	}
	if s == nil {
		return 0
	}
	s.lastSeen.Store(tick)
	run := pts[dropped:]
	if len(run) > 1 {
		// Advance the estimator-wide clock for the rest of the run in one
		// add: intermediate tick values are observable only as LRU
		// recency, and only the newest stamp matters.
		s.lastSeen.Store(e.clock.Add(int64(len(run) - 1)))
	}
	s.mu.Lock()
	for i := range run {
		e.observeLocked(s, id, run[i])
	}
	s.mu.Unlock()
	return len(run)
}

// lookupOrCreate resolves id's hook state, creating it on first sight.
// A nil return means the MaxSeries cap held and nothing idle could be
// evicted: the observation is dropped and counted.
func (e *IngestEstimator) lookupOrCreate(id string, tick int64) *ingestSeries {
	e.mu.RLock()
	s := e.series[id]
	e.mu.RUnlock()
	if s != nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s = e.series[id]; s == nil {
		if e.cfg.MaxSeries > 0 && len(e.series) >= e.cfg.MaxSeries && !e.evictOneLocked(tick) {
			e.rejected++
			return nil
		}
		s = &ingestSeries{}
		e.series[id] = s
	}
	return s
}

// observeLocked is the per-point body shared by Observe and ObserveRun.
// Called with s.mu held.
func (e *IngestEstimator) observeLocked(s *ingestSeries, id string, p series.Point) {
	s.samples++
	if s.est == nil {
		s.probe(e, id, p)
		return
	}
	// Drift watch: a sustained change in the inter-arrival gap means
	// the client changed its poll rate; the locked grid (and with it
	// the frequency axis) is wrong, so re-probe.
	if s.haveLast && e.cfg.DriftFactor > 1 {
		if gap := p.Time.Sub(s.lastTime); gap > 0 {
			lo := time.Duration(float64(s.interval) / e.cfg.DriftFactor)
			hi := time.Duration(float64(s.interval) * e.cfg.DriftFactor)
			if gap < lo || gap > hi {
				s.drift++
			} else {
				s.drift = 0
			}
			if s.drift > e.cfg.ProbeGaps {
				s.reprobe(p)
				e.reprobesTotal.Add(1)
				return
			}
		}
	}
	s.lastTime, s.haveLast = p.Time, true
	if up := s.est.Push(p.Value); up != nil {
		s.last = up
		if up.Err == nil && up.Result.NyquistRate > 0 {
			s.cleanStreak++
			if s.cleanStreak >= e.cfg.RetuneCleanStreak {
				s.lastNyquist = up.Result.NyquistRate
				e.retunes.Add(1)
				if e.store != nil {
					e.store.SetNyquist(id, up.Result.NyquistRate)
				}
			}
		} else {
			s.cleanStreak = 0
			if up.Err != nil {
				e.aliasedRefreshes.Add(1)
			}
		}
	}
}

// evictBatch caps how many candidates one eviction scan caches: enough
// to amortize a churn storm, small enough to bound the sort.
const evictBatch = 4096

// evictOneLocked frees one estimator slot by evicting the longest-idle
// series, provided its idleness has reached EvictAfter observations.
// Returns false (no slot freed) when eviction is disabled or every
// series is recent enough to keep. Called with e.mu held for writing.
func (e *IngestEstimator) evictOneLocked(now int64) bool {
	if e.cfg.EvictAfter <= 0 {
		return false
	}
	if len(e.evictQueue) == 0 {
		type cand struct {
			id   string
			seen int64
		}
		cands := make([]cand, 0, 64)
		for id, s := range e.series {
			if seen := s.lastSeen.Load(); now-seen >= int64(e.cfg.EvictAfter) {
				cands = append(cands, cand{id, seen})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].seen != cands[b].seen {
				return cands[a].seen < cands[b].seen
			}
			return cands[a].id < cands[b].id
		})
		if len(cands) > evictBatch {
			cands = cands[:evictBatch]
		}
		for _, c := range cands {
			e.evictQueue = append(e.evictQueue, c.id)
		}
	}
	for len(e.evictQueue) > 0 {
		id := e.evictQueue[0]
		e.evictQueue = e.evictQueue[1:]
		s, ok := e.series[id]
		if !ok {
			continue
		}
		// Revalidate: the series may have woken up since the scan.
		if now-s.lastSeen.Load() < int64(e.cfg.EvictAfter) {
			continue
		}
		delete(e.series, id)
		e.evicted++
		return true
	}
	return false
}

// probe accumulates pre-lock points and locks the interval once enough
// gaps are seen. Called with s.mu held.
func (s *ingestSeries) probe(e *IngestEstimator, id string, p series.Point) {
	s.pending = append(s.pending, p)
	s.lastTime, s.haveLast = p.Time, true
	gaps := make([]time.Duration, 0, len(s.pending)-1)
	for i := 1; i < len(s.pending); i++ {
		if g := s.pending[i].Time.Sub(s.pending[i-1].Time); g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) < e.cfg.ProbeGaps {
		// Constant or backwards timestamps never lock; cap the probe
		// buffer so a misbehaving client cannot grow it unboundedly.
		if max := 4 * (e.cfg.ProbeGaps + 1); len(s.pending) > max {
			s.pending = append(s.pending[:0], s.pending[len(s.pending)-max:]...)
		}
		return
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a] < gaps[b] })
	interval := gaps[len(gaps)/2]
	est, err := core.NewStreamEstimator(core.StreamConfig{
		Interval:      interval,
		WindowSamples: e.cfg.WindowSamples,
		EmitEvery:     e.cfg.EmitEvery,
		EnergyCutoff:  e.cfg.EnergyCutoff,
		Headroom:      e.cfg.Headroom,
		Start:         s.pending[0].Time,
	})
	if err != nil {
		// Unlockable configuration (e.g. sub-minimum window from the
		// caller); stay in probe mode rather than fail ingest.
		return
	}
	s.est = est
	s.interval = interval
	e.probes.Add(1)
	for _, q := range s.pending {
		if up := s.est.Push(q.Value); up != nil {
			s.last = up
		}
	}
	s.pending = nil
}

// reprobe drops the locked grid after sustained gap drift and restarts
// the probe from the current point. Called with s.mu held.
func (s *ingestSeries) reprobe(p series.Point) {
	s.est = nil
	s.interval = 0
	s.drift = 0
	s.cleanStreak = 0
	s.last = nil
	s.reprobes++
	s.pending = append(s.pending[:0], p)
	s.lastTime, s.haveLast = p.Time, true
}

// Advice returns the live guidance for id, or ok=false when the series
// was never observed.
func (e *IngestEstimator) Advice(id string) (IngestAdvice, bool) {
	e.mu.RLock()
	s := e.series[id]
	e.mu.RUnlock()
	if s == nil {
		return IngestAdvice{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	adv := IngestAdvice{
		Series:      id,
		Samples:     s.samples,
		Interval:    s.interval,
		NyquistRate: s.lastNyquist,
		Reprobes:    s.reprobes,
	}
	if s.est != nil {
		adv.Warm = s.est.Warm()
	}
	if up := s.last; up != nil {
		adv.Aliased = up.Err != nil
		adv.AliasStreak = up.AliasStreak
		adv.SuggestedInterval = up.SuggestedInterval
		adv.UpdatedAt = up.Time
		if up.Result != nil {
			adv.EnergyCaptured = up.Result.EnergyCaptured
		}
	}
	return adv, true
}

// Series returns the observed series ids, sorted.
func (e *IngestEstimator) Series() []string {
	e.mu.RLock()
	out := make([]string, 0, len(e.series))
	for id := range e.series {
		out = append(out, id)
	}
	e.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of observed series.
func (e *IngestEstimator) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.series)
}

// Rejected returns the number of observations dropped because the
// MaxSeries cap was hit.
func (e *IngestEstimator) Rejected() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rejected
}

// Evicted returns the number of series aged out by LRU eviction.
func (e *IngestEstimator) Evicted() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.evicted
}

// Config returns the estimator's effective configuration (defaults
// applied).
func (e *IngestEstimator) Config() IngestConfig { return e.cfg }

// Probes returns the number of interval locks: series that graduated
// from the gap probe to a live analysis window.
func (e *IngestEstimator) Probes() int64 { return e.probes.Load() }

// Reprobes returns the number of drift-triggered interval re-locks
// across all series.
func (e *IngestEstimator) Reprobes() int64 { return e.reprobesTotal.Load() }

// Retunes returns the number of clean-streak estimate refreshes that
// (re)tuned retention via SetNyquist.
func (e *IngestEstimator) Retunes() int64 { return e.retunes.Load() }

// AliasedRefreshes returns the number of estimate refreshes that
// carried the aliased signature — the fleet-wide under-sampling pulse.
func (e *IngestEstimator) AliasedRefreshes() int64 { return e.aliasedRefreshes.Load() }

// IngestSeriesState is one series' durable tuning state: everything a
// restarted estimator needs to keep giving the same advice without
// re-learning from scratch. The sliding analysis window itself is not
// exported — it is rebuilt ("rewarmed") by replaying the newest stored
// points through Observe.
type IngestSeriesState struct {
	// Series is the series id.
	Series string
	// Interval is the locked poll interval (0 = still probing).
	Interval time.Duration
	// Samples counts every point observed for the series.
	Samples int64
	// Reprobes counts interval re-locks from sustained gap drift.
	Reprobes int
	// NyquistRate is the last clean estimate handed to SetNyquist.
	NyquistRate float64
	// CleanStreak is the retune debounce counter.
	CleanStreak int
}

// ExportState captures every series' tuning state for persistence.
func (e *IngestEstimator) ExportState() []IngestSeriesState {
	e.mu.RLock()
	ids := make([]string, 0, len(e.series))
	ptrs := make([]*ingestSeries, 0, len(e.series))
	for id, s := range e.series {
		ids = append(ids, id)
		ptrs = append(ptrs, s)
	}
	e.mu.RUnlock()
	out := make([]IngestSeriesState, 0, len(ids))
	for i, s := range ptrs {
		s.mu.Lock()
		out = append(out, IngestSeriesState{
			Series:      ids[i],
			Interval:    s.interval,
			Samples:     s.samples,
			Reprobes:    s.reprobes,
			NyquistRate: s.lastNyquist,
			CleanStreak: s.cleanStreak,
		})
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Series < out[b].Series })
	return out
}

// RestoreState reinstates one series' tuning state, replacing any
// existing state for the id: the locked interval comes back immediately
// (no re-probe) and the last trusted Nyquist estimate is carried over so
// Advice answers before the analysis window rewarms. Subject to the same
// MaxSeries cap as Observe; returns false when the cap drops it.
func (e *IngestEstimator) RestoreState(st IngestSeriesState) bool {
	tick := e.clock.Add(1)
	e.mu.Lock()
	s := e.series[st.Series]
	if s == nil {
		if e.cfg.MaxSeries > 0 && len(e.series) >= e.cfg.MaxSeries && !e.evictOneLocked(tick) {
			e.rejected++
			e.mu.Unlock()
			return false
		}
		s = &ingestSeries{}
		e.series[st.Series] = s
	}
	e.mu.Unlock()
	s.lastSeen.Store(tick)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.est = nil
	s.interval = 0
	s.pending = nil
	s.haveLast = false
	s.drift = 0
	s.last = nil
	s.samples = st.Samples
	s.reprobes = st.Reprobes
	s.lastNyquist = st.NyquistRate
	s.cleanStreak = st.CleanStreak
	if st.Interval > 0 {
		est, err := core.NewStreamEstimator(core.StreamConfig{
			Interval:      st.Interval,
			WindowSamples: e.cfg.WindowSamples,
			EmitEvery:     e.cfg.EmitEvery,
			EnergyCutoff:  e.cfg.EnergyCutoff,
			Headroom:      e.cfg.Headroom,
		})
		if err == nil {
			s.est = est
			s.interval = st.Interval
		}
	}
	if st.NyquistRate > 0 && e.store != nil {
		e.store.SetNyquist(st.Series, st.NyquistRate)
	}
	return true
}
