package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan is a reusable FFT execution plan for one transform size: twiddle
// factors and bit-reversal indices are computed once, and Execute works
// in caller-provided buffers, so the per-transform cost is allocation-free
// — the hot path for moving-window scans and Welch averaging, which
// transform thousands of equal-length segments.
type Plan struct {
	n       int
	rev     []int
	forward [][]complex128 // twiddles per stage
	inverse [][]complex128
}

// NewPlan builds a plan for n-point transforms. n must be a power of two
// (arbitrary sizes go through the one-shot FFT, which handles Bluestein).
func NewPlan(n int) (*Plan, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, errors.New("dsp: plan size must be a positive power of two")
	}
	p := &Plan{n: n}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for _, inverse := range []bool{false, true} {
		sign := -1.0
		if inverse {
			sign = 1.0
		}
		var stages [][]complex128
		for size := 2; size <= n; size <<= 1 {
			half := size >> 1
			tw := make([]complex128, half)
			for k := 0; k < half; k++ {
				tw[k] = cmplx.Exp(complex(0, sign*2*math.Pi*float64(k)/float64(size)))
			}
			stages = append(stages, tw)
		}
		if inverse {
			p.inverse = stages
		} else {
			p.forward = stages
		}
	}
	return p, nil
}

// Size returns the transform length.
func (p *Plan) Size() int { return p.n }

// Forward computes the DFT of src into dst (both length Size; they may be
// the same slice). No allocation.
func (p *Plan) Forward(dst, src []complex128) error {
	return p.execute(dst, src, p.forward, false)
}

// Inverse computes the inverse DFT (with 1/N normalization) of src into
// dst. No allocation.
func (p *Plan) Inverse(dst, src []complex128) error {
	return p.execute(dst, src, p.inverse, true)
}

func (p *Plan) execute(dst, src []complex128, stages [][]complex128, normalize bool) error {
	if len(dst) != p.n || len(src) != p.n {
		return errors.New("dsp: plan buffer length mismatch")
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	for i, j := range p.rev {
		if j > i {
			dst[i], dst[j] = dst[j], dst[i]
		}
	}
	for s, tw := range stages {
		size := 2 << s
		half := size >> 1
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				a := dst[start+k]
				b := dst[start+k+half] * tw[k]
				dst[start+k] = a + b
				dst[start+k+half] = a - b
			}
		}
	}
	if normalize {
		inv := complex(1/float64(p.n), 0)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return nil
}

// PSDInto computes a one-sided PSD of the real signal src (length Size)
// into power (length Size/2+1) using scratch (length Size), with the same
// normalization as Periodogram under a nil window. Allocation-free.
func (p *Plan) PSDInto(power []float64, scratch []complex128, src []float64) error {
	if len(src) != p.n || len(scratch) != p.n || len(power) != p.n/2+1 {
		return errors.New("dsp: PSDInto buffer length mismatch")
	}
	for i, v := range src {
		scratch[i] = complex(v, 0)
	}
	if err := p.Forward(scratch, scratch); err != nil {
		return err
	}
	norm := 1 / (float64(p.n) * float64(p.n))
	for k := 0; k <= p.n/2; k++ {
		re, im := real(scratch[k]), imag(scratch[k])
		pw := (re*re + im*im) * norm
		if k != 0 && k != p.n/2 {
			pw *= 2
		}
		power[k] = pw
	}
	return nil
}
