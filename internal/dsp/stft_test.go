package dsp

import (
	"math"
	"testing"
)

func TestPlanMatchesFFT(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() != n {
			t.Fatalf("size = %d", p.Size())
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*0.3))
		}
		want := FFT(x)
		got := make([]complex128, n)
		if err := p.Forward(got, x); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !complexAlmostEqual(got[k], want[k], 1e-9*float64(n)) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, got[k], want[k])
			}
		}
		// Round trip through the plan.
		back := make([]complex128, n)
		if err := p.Inverse(back, got); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !complexAlmostEqual(back[i], x[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d round trip index %d", n, i)
			}
		}
	}
}

func TestPlanInPlace(t *testing.T) {
	p, err := NewPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 16)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	want := FFT(x)
	if err := p.Forward(x, x); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if !complexAlmostEqual(x[k], want[k], 1e-9) {
			t.Fatalf("in-place bin %d", k)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := NewPlan(12); err == nil {
		t.Fatal("non-power-of-two should fail")
	}
	p, _ := NewPlan(8)
	if err := p.Forward(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := p.PSDInto(make([]float64, 3), make([]complex128, 8), make([]float64, 8)); err == nil {
		t.Fatal("PSD buffer mismatch should fail")
	}
}

func TestPlanPSDMatchesPeriodogram(t *testing.T) {
	const n = 512
	x := sineWave(n, 512, 60, 1.5)
	want, err := Periodogram(x, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, n/2+1)
	scratch := make([]complex128, n)
	if err := p.PSDInto(power, scratch, x); err != nil {
		t.Fatal(err)
	}
	for k := range power {
		if !almostEqual(power[k], want.Power[k], 1e-12+1e-9*want.Power[k]) {
			t.Fatalf("bin %d: %v vs %v", k, power[k], want.Power[k])
		}
	}
}

func TestPlanPSDZeroAlloc(t *testing.T) {
	const n = 1024
	x := sineWave(n, 1024, 100, 1)
	p, _ := NewPlan(n)
	power := make([]float64, n/2+1)
	scratch := make([]complex128, n)
	allocs := testing.AllocsPerRun(20, func() {
		if err := p.PSDInto(power, scratch, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PSDInto allocates %v per run, want 0", allocs)
	}
}

func TestSTFTChirpTracksFrequency(t *testing.T) {
	// Frequency steps from 20 Hz to 120 Hz halfway: the per-frame peak
	// must follow.
	const fs = 1024.0
	n := 8192
	x := make([]float64, n)
	for i := range x {
		f := 20.0
		if i >= n/2 {
			f = 120
		}
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	sg, err := STFT{SegmentLen: 512}.Compute(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	peakAt := func(frame []float64) float64 {
		best := 1
		for k := 2; k < len(frame); k++ {
			if frame[k] > frame[best] {
				best = k
			}
		}
		return sg.Freqs[best]
	}
	first := peakAt(sg.Power[0])
	last := peakAt(sg.Power[len(sg.Power)-1])
	if math.Abs(first-20) > 3 {
		t.Fatalf("first frame peak %v, want 20", first)
	}
	if math.Abs(last-120) > 3 {
		t.Fatalf("last frame peak %v, want 120", last)
	}
	if len(sg.Times) != len(sg.Power) {
		t.Fatal("times/power mismatch")
	}
	if sg.Times[1]-sg.Times[0] != 256/fs {
		t.Fatalf("hop = %v, want %v", sg.Times[1]-sg.Times[0], 256/fs)
	}
}

func TestSTFTFrameCutoffRises(t *testing.T) {
	const fs = 256.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		f := 4.0
		if i >= n/2 {
			f = 60
		}
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	sg, err := STFT{SegmentLen: 256}.Compute(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	cut := sg.FrameCutoff(0.99)
	if len(cut) != len(sg.Power) {
		t.Fatal("cutoff length mismatch")
	}
	if cut[0] > 10 {
		t.Fatalf("early cutoff %v, want ~4", cut[0])
	}
	if cut[len(cut)-1] < 50 {
		t.Fatalf("late cutoff %v, want ~60", cut[len(cut)-1])
	}
}

func TestSTFTErrors(t *testing.T) {
	if _, err := (STFT{}).Compute(nil, 1); err == nil {
		t.Fatal("empty signal should fail")
	}
	if _, err := (STFT{SegmentLen: 100}).Compute(make([]float64, 400), 1); err == nil {
		t.Fatal("non-power-of-two segment should fail")
	}
	if _, err := (STFT{SegmentLen: 512}).Compute(make([]float64, 100), 1); err == nil {
		t.Fatal("segment longer than signal should fail")
	}
	if _, err := (STFT{SegmentLen: 64}).Compute(make([]float64, 128), 0); err == nil {
		t.Fatal("bad rate should fail")
	}
}

func BenchmarkPlanPSD1024(b *testing.B) {
	const n = 1024
	x := sineWave(n, 1024, 100, 1)
	p, _ := NewPlan(n)
	power := make([]float64, n/2+1)
	scratch := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PSDInto(power, scratch, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeriodogramVsPlan1024(b *testing.B) {
	x := sineWave(1024, 1024, 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Periodogram(x, 1024, nil); err != nil {
			b.Fatal(err)
		}
	}
}
