package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func complexAlmostEqual(a, b complex128, eps float64) bool {
	return cmplx.Abs(a-b) <= eps
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Fatalf("FFT(nil) = %v, want empty", got)
	}
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || !complexAlmostEqual(got[0], 3+4i, tol) {
		t.Fatalf("FFT of single sample = %v, want [3+4i]", got)
	}
}

func TestFFTKnownDFT(t *testing.T) {
	// DFT of [1, 0, 0, 0] is all-ones.
	got := FFT([]complex128{1, 0, 0, 0})
	for i, v := range got {
		if !complexAlmostEqual(v, 1, tol) {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a constant is N at DC, 0 elsewhere.
	got = FFT([]complex128{2, 2, 2, 2})
	if !complexAlmostEqual(got[0], 8, tol) {
		t.Fatalf("DC bin = %v, want 8", got[0])
	}
	for i := 1; i < 4; i++ {
		if !complexAlmostEqual(got[i], 0, tol) {
			t.Fatalf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 8, 12, 16, 17, 31, 32, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := FFT(x)
		for k := range want {
			if !complexAlmostEqual(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func TestFFTSineSinglePeak(t *testing.T) {
	const n = 256
	const bin = 19
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*bin*float64(i)/n), 0)
	}
	spec := FFT(x)
	// A real sine concentrates magnitude n/2 at bins +-bin.
	if got := cmplx.Abs(spec[bin]); !almostEqual(got, n/2, 1e-6) {
		t.Fatalf("peak magnitude = %v, want %v", got, n/2)
	}
	if got := cmplx.Abs(spec[n-bin]); !almostEqual(got, n/2, 1e-6) {
		t.Fatalf("mirror magnitude = %v, want %v", got, n/2)
	}
	for k := range spec {
		if k == bin || k == n-bin {
			continue
		}
		if cmplx.Abs(spec[k]) > 1e-6 {
			t.Fatalf("leakage at bin %d: %v", k, spec[k])
		}
	}
}

func TestIFFTRoundTripProperty(t *testing.T) {
	f := func(re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		if n == 0 {
			return true
		}
		if n > 512 {
			n = 512
		}
		x := make([]complex128, n)
		var scale float64
		for i := 0; i < n; i++ {
			// Bound magnitudes so the tolerance is meaningful.
			x[i] = complex(math.Mod(re[i], 1e6), math.Mod(im[i], 1e6))
			scale = math.Max(scale, cmplx.Abs(x[i]))
		}
		if scale == 0 {
			scale = 1
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-7*scale*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 300 {
			vals = vals[:300]
		}
		x := make([]complex128, len(vals))
		var timeEnergy float64
		for i, v := range vals {
			v = math.Mod(v, 1e6)
			x[i] = complex(v, 0)
			timeEnergy += v * v
		}
		spec := FFT(x)
		var freqEnergy float64
		for _, s := range spec {
			freqEnergy += real(s)*real(s) + imag(s)*imag(s)
		}
		freqEnergy /= float64(len(vals))
		return almostEqual(timeEnergy, freqEnergy, 1e-6*(1+timeEnergy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(120)
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = 2*a[i] + 3*b[i]
		}
		fa, fb, fsum := FFT(a), FFT(b), FFT(sum)
		for k := 0; k < n; k++ {
			want := 2*fa[k] + 3*fb[k]
			if !complexAlmostEqual(fsum[k], want, 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: linearity violated: %v vs %v", n, k, fsum[k], want)
			}
		}
	}
}

func TestFFTRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 7, 64, 129} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := IFFTReal(FFTReal(x))
		for i := range x {
			if !almostEqual(x[i], y[i], 1e-8) {
				t.Fatalf("n=%d index %d: %v != %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{8, 15, 128} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := FFTReal(x)
		for k := 1; k < n; k++ {
			want := cmplx.Conj(spec[n-k])
			if !complexAlmostEqual(spec[k], want, 1e-8) {
				t.Fatalf("n=%d bin %d not conjugate-symmetric: %v vs %v", n, k, spec[k], want)
			}
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFFTFreqs(t *testing.T) {
	got := FFTFreqs(4, 8)
	want := []float64{0, 2, -4, -2}
	for i := range want {
		if !almostEqual(got[i], want[i], tol) {
			t.Fatalf("FFTFreqs(4,8)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	got = FFTFreqs(5, 5)
	want = []float64{0, 1, 2, -2, -1}
	for i := range want {
		if !almostEqual(got[i], want[i], tol) {
			t.Fatalf("FFTFreqs(5,5)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := FFTFreqs(0, 10); len(got) != 0 {
		t.Fatalf("FFTFreqs(0) should be empty, got %v", got)
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v != %v", i, x[i], orig[i])
		}
	}
}

func BenchmarkFFTPow2_4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_4095(b *testing.B) {
	x := make([]complex128, 4095)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
