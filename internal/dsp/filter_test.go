package dsp

import (
	"math"
	"testing"
)

func TestLowPassFFTRemovesHighTone(t *testing.T) {
	const fs = 1000.0
	const n = 1000
	low := sineWave(n, fs, 10, 1)
	high := sineWave(n, fs, 200, 1)
	mixed := make([]float64, n)
	for i := range mixed {
		mixed[i] = low[i] + high[i]
	}
	got, err := LowPassFFT(mixed, fs, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-low[i]) > 1e-6 {
			t.Fatalf("index %d: filtered %v, want %v", i, got[i], low[i])
		}
	}
}

func TestLowPassFFTPassthrough(t *testing.T) {
	x := sineWave(512, 512, 100, 1)
	got, err := LowPassFFT(x, 512, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(got[i], x[i], 1e-9) {
			t.Fatalf("index %d changed: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestLowPassFFTPreservesDC(t *testing.T) {
	x := make([]float64, 128)
	for i := range x {
		x[i] = 7
	}
	got, err := LowPassFFT(x, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !almostEqual(got[i], 7, 1e-9) {
			t.Fatalf("DC not preserved at %d: %v", i, got[i])
		}
	}
}

func TestLowPassFFTErrors(t *testing.T) {
	if _, err := LowPassFFT(nil, 1, 1); err == nil {
		t.Fatal("want error for empty signal")
	}
	if _, err := LowPassFFT([]float64{1}, 0, 1); err == nil {
		t.Fatal("want error for zero sample rate")
	}
	if _, err := LowPassFFT([]float64{1}, 1, -1); err == nil {
		t.Fatal("want error for negative cutoff")
	}
}

func TestHighPassFFTComplementsLowPass(t *testing.T) {
	const fs = 200.0
	x := make([]float64, 400)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 3 + math.Sin(2*math.Pi*5*ti) + 0.5*math.Sin(2*math.Pi*60*ti)
	}
	lo, err := LowPassFFT(x, fs, 20)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := HighPassFFT(x, fs, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(lo[i]+hi[i], x[i], 1e-8) {
			t.Fatalf("low+high != original at %d: %v vs %v", i, lo[i]+hi[i], x[i])
		}
	}
	// High-pass output must have (near-)zero mean: DC always removed.
	var mean float64
	for _, v := range hi {
		mean += v
	}
	mean /= float64(len(hi))
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("high-pass output mean = %v, want 0", mean)
	}
}

func TestFIRLowPassDesign(t *testing.T) {
	h, err := FIRLowPass(64, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(h)%2 != 1 {
		t.Fatalf("taps = %d, want odd", len(h))
	}
	// Unit DC gain.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("DC gain = %v, want 1", sum)
	}
	// Symmetric (linear phase).
	for i := 0; i < len(h)/2; i++ {
		if !almostEqual(h[i], h[len(h)-1-i], 1e-12) {
			t.Fatalf("kernel asymmetric at %d", i)
		}
	}
}

func TestFIRLowPassErrors(t *testing.T) {
	if _, err := FIRLowPass(0, 1000, 100); err == nil {
		t.Fatal("want error for zero taps")
	}
	if _, err := FIRLowPass(5, 0, 100); err == nil {
		t.Fatal("want error for bad sample rate")
	}
	if _, err := FIRLowPass(5, 1000, 600); err == nil {
		t.Fatal("want error for cutoff above Nyquist")
	}
	if _, err := FIRLowPass(5, 1000, 0); err == nil {
		t.Fatal("want error for zero cutoff")
	}
}

func TestFIRFilterAttenuatesStopband(t *testing.T) {
	const fs = 1000.0
	h, err := FIRLowPass(101, fs, 50)
	if err != nil {
		t.Fatal(err)
	}
	pass := sineWave(2000, fs, 10, 1)
	stop := sineWave(2000, fs, 300, 1)
	passOut := Convolve(pass, h)
	stopOut := Convolve(stop, h)
	if r := rmsMid(passOut) / rmsMid(pass); r < 0.95 {
		t.Fatalf("passband gain %v, want ~1", r)
	}
	if r := rmsMid(stopOut) / rmsMid(stop); r > 0.01 {
		t.Fatalf("stopband gain %v, want < 0.01", r)
	}
}

// rmsMid returns the RMS of the middle half of x, avoiding edge transients.
func rmsMid(x []float64) float64 {
	lo, hi := len(x)/4, 3*len(x)/4
	var acc float64
	for _, v := range x[lo:hi] {
		acc += v * v
	}
	return math.Sqrt(acc / float64(hi-lo))
}

func TestConvolveDegenerate(t *testing.T) {
	if out := Convolve(nil, []float64{1}); len(out) != 0 {
		t.Fatal("convolve with empty input should be empty")
	}
	if out := Convolve([]float64{1, 2}, nil); len(out) != 2 || out[0] != 0 {
		t.Fatal("convolve with empty kernel should be zeros")
	}
	// Identity kernel.
	x := []float64{1, 2, 3, 4}
	out := Convolve(x, []float64{1})
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("identity convolution mismatch at %d", i)
		}
	}
}
