package dsp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDetrendLinearRemovesRamp(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 3 + 0.5*float64(i)
	}
	out := DetrendLinear(x)
	for i, v := range out {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual %v at %d, want 0", v, i)
		}
	}
}

func TestDetrendLinearPreservesTone(t *testing.T) {
	// Ramp + tone: after detrending, the tone must survive intact.
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 - 0.02*float64(i) + math.Sin(2*math.Pi*8*float64(i)/float64(n))
	}
	out := DetrendLinear(x)
	spec, err := Periodogram(out, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak, bin := spec.PeakFrequency(1)
	if math.Abs(peak-8.0/float64(n)) > 1e-9 {
		t.Fatalf("peak at %v", peak)
	}
	if !almostEqual(spec.Power[bin], 0.5, 0.01) {
		t.Fatalf("tone power %v, want ~0.5", spec.Power[bin])
	}
}

func TestDetrendLinearReducesLeakage(t *testing.T) {
	// A sub-window-period component looks like a ramp; linear detrending
	// must cut the high-frequency leakage dramatically vs mean removal.
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.3 * float64(i) / float64(n)) // 0.3 cycles in window
	}
	mean := DetrendLinear(x) // compare against simple mean removal
	var m float64
	for _, v := range x {
		m += v
	}
	m /= float64(n)
	centered := make([]float64, n)
	for i, v := range x {
		centered[i] = v - m
	}
	sLin, _ := Periodogram(mean, 1, nil)
	sMean, _ := Periodogram(centered, 1, nil)
	tailLin := tailPower(sLin, 20)
	tailMean := tailPower(sMean, 20)
	if tailLin >= tailMean/5 {
		t.Fatalf("linear detrend tail %v not well below mean-removal tail %v", tailLin, tailMean)
	}
}

func tailPower(s *Spectrum, fromBin int) float64 {
	var acc float64
	for k := fromBin; k < len(s.Power); k++ {
		acc += s.Power[k]
	}
	return acc
}

func TestDetrendLinearDegenerate(t *testing.T) {
	if out := DetrendLinear(nil); len(out) != 0 {
		t.Fatal("nil input should give empty output")
	}
	out := DetrendLinear([]float64{5})
	if out[0] != 0 {
		t.Fatalf("single sample residual %v", out[0])
	}
	out = DetrendLinear([]float64{7, 7, 7})
	for _, v := range out {
		if math.Abs(v) > 1e-12 {
			t.Fatal("constant should detrend to zero")
		}
	}
}

func TestDetrendLinearZeroMeanProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, math.Mod(v, 1e8))
		}
		if len(clean) < 2 {
			return true
		}
		out := DetrendLinear(clean)
		var sum, scale float64
		for i, v := range out {
			sum += v
			if a := math.Abs(clean[i]); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		return math.Abs(sum/float64(len(out))) < 1e-7*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianFilterKillsImpulses(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 10
	}
	x[20], x[50], x[80] = 1000, -1000, 500 // glitches
	out := MedianFilter(x, 5)
	for i, v := range out {
		if v != 10 {
			t.Fatalf("index %d: %v, want 10", i, v)
		}
	}
}

func TestMedianFilterPreservesStep(t *testing.T) {
	x := []float64{0, 0, 0, 0, 0, 10, 10, 10, 10, 10}
	out := MedianFilter(x, 3)
	// A median filter preserves step edges (no smearing).
	for i := 0; i < 5; i++ {
		if out[i] != 0 {
			t.Fatalf("pre-step index %d: %v", i, out[i])
		}
	}
	for i := 5; i < 10; i++ {
		if out[i] != 10 {
			t.Fatalf("post-step index %d: %v", i, out[i])
		}
	}
}

func TestMedianFilterWindowHandling(t *testing.T) {
	x := []float64{3, 1, 2}
	// window <1 clamps to 1 (identity); even window is made odd.
	out := MedianFilter(x, 0)
	for i := range x {
		if out[i] != x[i] {
			t.Fatal("window 1 must be identity")
		}
	}
	if out := MedianFilter(nil, 3); len(out) != 0 {
		t.Fatal("empty input")
	}
	out = MedianFilter(x, 2) // becomes 3
	if out[1] != 2 {
		t.Fatalf("median of [3 1 2] = %v, want 2", out[1])
	}
}

func TestMedianFilterMatchesSortDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const w = 7
	out := MedianFilter(x, w)
	for i := range x {
		lo, hi := i-w/2, i+w/2+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		ref := append([]float64(nil), x[lo:hi]...)
		sort.Float64s(ref)
		var want float64
		if len(ref)%2 == 1 {
			want = ref[len(ref)/2]
		} else {
			want = (ref[len(ref)/2-1] + ref[len(ref)/2]) / 2
		}
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("index %d: %v, want %v", i, out[i], want)
		}
	}
}

func TestAutocorrelation(t *testing.T) {
	// Period-4 signal: ACF must peak again at lag 4.
	x := make([]float64, 400)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 4)
	}
	acf := Autocorrelation(x, 8)
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Fatalf("acf[0] = %v", acf[0])
	}
	if acf[4] < 0.9 {
		t.Fatalf("acf[4] = %v, want ~1", acf[4])
	}
	if acf[2] > -0.9 {
		t.Fatalf("acf[2] = %v, want ~-1", acf[2])
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if Autocorrelation(nil, 5) != nil {
		t.Fatal("nil input")
	}
	acf := Autocorrelation([]float64{5, 5, 5}, 10)
	if acf[0] != 1 {
		t.Fatalf("constant acf[0] = %v", acf[0])
	}
	if len(acf) != 3 {
		t.Fatalf("maxLag should clamp to n-1, got %d", len(acf))
	}
}

func TestAutocorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 128)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		acf := Autocorrelation(x, 32)
		for _, v := range acf {
			if v > 1+1e-9 || v < -1-1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return acf[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMedianFilter(b *testing.B) {
	x := sineWave(4096, 1024, 60, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MedianFilter(x, 9)
	}
}
