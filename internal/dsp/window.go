package dsp

import "math"

// Window is a taper applied to a signal segment before spectral analysis to
// control leakage. Implementations return the coefficient for index i of an
// n-point window.
type Window interface {
	// Coeff returns the window coefficient at index i of an n-point window.
	Coeff(i, n int) float64
	// Name returns a short human-readable identifier.
	Name() string
}

// Rectangular is the identity window (no taper). It has the narrowest main
// lobe and the worst leakage; it is the implicit window of a raw FFT.
type Rectangular struct{}

// Coeff implements Window.
func (Rectangular) Coeff(i, n int) float64 { return 1 }

// Name implements Window.
func (Rectangular) Name() string { return "rectangular" }

// Hann is the raised-cosine window, a good default for noisy monitoring
// signals with unknown content.
type Hann struct{}

// Coeff implements Window.
func (Hann) Coeff(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
}

// Name implements Window.
func (Hann) Name() string { return "hann" }

// Hamming is the classic 0.54/0.46 raised-cosine window.
type Hamming struct{}

// Coeff implements Window.
func (Hamming) Coeff(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
}

// Name implements Window.
func (Hamming) Name() string { return "hamming" }

// Blackman is a three-term cosine window with very low side lobes, useful
// when a weak high-frequency component must be detected next to a strong
// low-frequency one.
type Blackman struct{}

// Coeff implements Window.
func (Blackman) Coeff(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	x := 2 * math.Pi * float64(i) / float64(n-1)
	return 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
}

// Name implements Window.
func (Blackman) Name() string { return "blackman" }

// ApplyWindow returns a copy of x multiplied point-wise by w. The input is
// not modified. A nil window is treated as Rectangular.
func ApplyWindow(x []float64, w Window) []float64 {
	out := make([]float64, len(x))
	if w == nil {
		copy(out, x)
		return out
	}
	n := len(x)
	for i, v := range x {
		out[i] = v * w.Coeff(i, n)
	}
	return out
}

// WindowPower returns the mean squared coefficient of an n-point window,
// used to normalize power spectral densities so that windowed and
// unwindowed estimates integrate to the same total power.
func WindowPower(w Window, n int) float64 {
	if w == nil || n == 0 {
		return 1
	}
	var s float64
	for i := 0; i < n; i++ {
		c := w.Coeff(i, n)
		s += c * c
	}
	return s / float64(n)
}
