package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizerRounds(t *testing.T) {
	q, err := NewQuantizer(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ in, want float64 }{
		{0.4, 0}, {0.6, 1}, {-0.4, 0}, {-0.6, -1}, {2.5, 3}, {2, 2},
	}
	for _, c := range cases {
		if got := q.Value(c.in); got != c.want {
			t.Errorf("Value(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizerOffset(t *testing.T) {
	q := &Quantizer{Step: 2, Offset: 1}
	// Grid is ..., -1, 1, 3, 5, ...
	if got := q.Value(1.9); got != 1 {
		t.Fatalf("Value(1.9) = %v, want 1", got)
	}
	if got := q.Value(2.1); got != 3 {
		t.Fatalf("Value(2.1) = %v, want 3", got)
	}
}

func TestQuantizerNil(t *testing.T) {
	var q *Quantizer
	if got := q.Value(1.234); got != 1.234 {
		t.Fatalf("nil quantizer should be identity, got %v", got)
	}
	if got := q.NoisePower(); got != 0 {
		t.Fatalf("nil quantizer noise power = %v, want 0", got)
	}
}

func TestNewQuantizerErrors(t *testing.T) {
	for _, step := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewQuantizer(step); err == nil {
			t.Errorf("NewQuantizer(%v) should fail", step)
		}
	}
}

func TestQuantizerErrorBoundProperty(t *testing.T) {
	f := func(v float64, stepSeed uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 1e9)
		step := 0.5 + float64(stepSeed%40)/10 // 0.5 .. 4.4
		q := &Quantizer{Step: step}
		got := q.Value(v)
		return math.Abs(got-v) <= step/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerIdempotentProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 1e6)
		q := &Quantizer{Step: 0.25}
		once := q.Value(v)
		return q.Value(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerApply(t *testing.T) {
	q := &Quantizer{Step: 1}
	in := []float64{0.1, 0.9, 1.5, -0.7}
	out := q.Apply(in)
	want := []float64{0, 1, 2, -1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Apply[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if in[0] != 0.1 {
		t.Fatal("Apply must not mutate its input")
	}
}

func TestNoisePower(t *testing.T) {
	q := &Quantizer{Step: 2}
	if got, want := q.NoisePower(), 4.0/12; !almostEqual(got, want, 1e-12) {
		t.Fatalf("NoisePower = %v, want %v", got, want)
	}
}

func TestEstimateStepRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := &Quantizer{Step: 0.5}
	x := make([]float64, 500)
	for i := range x {
		x[i] = q.Value(10 * math.Sin(float64(i)/20) * rng.Float64())
	}
	got := EstimateStep(x)
	if !almostEqual(got, 0.5, 1e-9) {
		t.Fatalf("EstimateStep = %v, want 0.5", got)
	}
}

func TestEstimateStepUnquantized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if got := EstimateStep(x); got != 0 {
		t.Fatalf("EstimateStep on white noise = %v, want 0", got)
	}
}

func TestEstimateStepConstant(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	if got := EstimateStep(x); got != 0 {
		t.Fatalf("EstimateStep on constant = %v, want 0", got)
	}
	if got := EstimateStep(nil); got != 0 {
		t.Fatalf("EstimateStep on empty = %v, want 0", got)
	}
}

func TestGoertzelMatchesPeriodogram(t *testing.T) {
	const fs = 500.0
	const n = 1000
	x := sineWave(n, fs, 50, 2)
	s, err := Periodogram(x, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, bin := s.PeakFrequency(1)
	g, err := Goertzel(x, fs, s.Freqs[bin])
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, s.Power[bin], 1e-9*(1+s.Power[bin])) {
		t.Fatalf("goertzel power %v != periodogram bin power %v", g, s.Power[bin])
	}
}

func TestGoertzelErrors(t *testing.T) {
	if _, err := Goertzel(nil, 1, 0); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := Goertzel([]float64{1}, 0, 0); err == nil {
		t.Fatal("want error for bad rate")
	}
	if _, err := Goertzel([]float64{1, 2}, 10, 9); err == nil {
		t.Fatal("want error for frequency above Nyquist")
	}
}

func TestGoertzelZeroAwayFromTone(t *testing.T) {
	const fs = 256.0
	x := sineWave(512, fs, 32, 1)
	g, err := Goertzel(x, fs, 96)
	if err != nil {
		t.Fatal(err)
	}
	if g > 1e-12 {
		t.Fatalf("power at 96 Hz = %v, want ~0", g)
	}
}

func TestWindowCoefficients(t *testing.T) {
	// All windows are 1 at a single point and bounded in [0, 1.01].
	for _, w := range []Window{Rectangular{}, Hann{}, Hamming{}, Blackman{}} {
		if got := w.Coeff(0, 1); got != 1 {
			t.Errorf("%s: Coeff(0,1) = %v, want 1", w.Name(), got)
		}
		for i := 0; i < 64; i++ {
			c := w.Coeff(i, 64)
			if c < -1e-9 || c > 1.01 {
				t.Errorf("%s: Coeff(%d,64) = %v out of range", w.Name(), i, c)
			}
		}
	}
}

func TestWindowSymmetry(t *testing.T) {
	for _, w := range []Window{Hann{}, Hamming{}, Blackman{}} {
		const n = 33
		for i := 0; i < n/2; i++ {
			if !almostEqual(w.Coeff(i, n), w.Coeff(n-1-i, n), 1e-12) {
				t.Errorf("%s asymmetric at %d", w.Name(), i)
			}
		}
	}
}

func TestApplyWindowNil(t *testing.T) {
	x := []float64{1, 2, 3}
	out := ApplyWindow(x, nil)
	for i := range x {
		if out[i] != x[i] {
			t.Fatal("nil window must copy unchanged")
		}
	}
	out[0] = 99
	if x[0] == 99 {
		t.Fatal("ApplyWindow must return a copy")
	}
}

func TestWindowPower(t *testing.T) {
	if got := WindowPower(Rectangular{}, 10); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("rectangular window power = %v, want 1", got)
	}
	if got := WindowPower(nil, 10); got != 1 {
		t.Fatalf("nil window power = %v, want 1", got)
	}
	// Hann mean squared coefficient approaches 3/8 for large n.
	if got := WindowPower(Hann{}, 4096); math.Abs(got-0.375) > 0.01 {
		t.Fatalf("hann window power = %v, want ~0.375", got)
	}
}
