package dsp

import (
	"errors"
	"math"
)

// Decimate keeps every factor-th sample of x starting at index 0. It does
// not apply an anti-alias filter; it models exactly what a monitoring
// system does when it lowers its poll rate, which is the operation whose
// safety the Nyquist analysis certifies.
func Decimate(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, errors.New("dsp: decimation factor must be >= 1")
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// DecimateFiltered low-pass filters x to the post-decimation Nyquist
// frequency before keeping every factor-th sample; this is the safe
// downsampler used when a trace is re-sampled for storage (paper §4).
func DecimateFiltered(x []float64, sampleRate float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, errors.New("dsp: decimation factor must be >= 1")
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	filtered, err := LowPassFFT(x, sampleRate, sampleRate/(2*float64(factor)))
	if err != nil {
		return nil, err
	}
	return Decimate(filtered, factor)
}

// UpsampleFFT stretches x to outLen samples by zero-padding its spectrum,
// i.e. ideal band-limited (sinc) interpolation. It is the reconstruction
// step used to compare a Nyquist-rate trace against the original (Fig. 6).
// outLen must be >= len(x).
func UpsampleFFT(x []float64, outLen int) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmptySignal
	}
	if outLen < n {
		return nil, errors.New("dsp: UpsampleFFT target length below input length")
	}
	if outLen == n {
		out := make([]float64, n)
		copy(out, x)
		return out, nil
	}
	spec := FFTReal(x)
	padded := make([]complex128, outLen)
	half := n / 2
	for k := 0; k <= half; k++ {
		padded[k] = spec[k]
	}
	for k := 1; k < n-half; k++ {
		padded[outLen-k] = spec[n-k]
	}
	if n%2 == 0 {
		// Split the Nyquist bin between its two images to keep the
		// upsampled signal real and energy-preserving.
		padded[half] = spec[half] / 2
		padded[outLen-half] = spec[half] / 2
	}
	out := IFFTReal(padded)
	scale := float64(outLen) / float64(n)
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}

// ResampleLinear resamples x (sampled at inRate) to outRate using linear
// interpolation, returning the samples covering the same time span.
func ResampleLinear(x []float64, inRate, outRate float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(inRate > 0) || !(outRate > 0) {
		return nil, ErrBadSampleRate
	}
	dur := float64(len(x)-1) / inRate
	outLen := int(math.Floor(dur*outRate)) + 1
	if outLen < 1 {
		outLen = 1
	}
	out := make([]float64, outLen)
	for i := range out {
		t := float64(i) / outRate * inRate // position in input samples
		j := int(math.Floor(t))
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := t - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out, nil
}

// ResampleNearest resamples x (sampled at inRate) to outRate by taking the
// nearest input sample. This is the pre-cleaning interpolation the paper
// uses for irregular traces (§3.2, nearest-neighbour re-sampling).
func ResampleNearest(x []float64, inRate, outRate float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(inRate > 0) || !(outRate > 0) {
		return nil, ErrBadSampleRate
	}
	dur := float64(len(x)-1) / inRate
	outLen := int(math.Floor(dur*outRate)) + 1
	if outLen < 1 {
		outLen = 1
	}
	out := make([]float64, outLen)
	for i := range out {
		j := int(math.Round(float64(i) / outRate * inRate))
		if j >= len(x) {
			j = len(x) - 1
		}
		out[i] = x[j]
	}
	return out, nil
}

// SincInterpolate evaluates the Whittaker-Shannon reconstruction of the
// uniformly sampled signal x (rate sampleRate, first sample at t=0) at an
// arbitrary time t in seconds. It is exact for signals band-limited below
// sampleRate/2 and infinitely long; for finite windows the edges degrade,
// so callers should keep t away from the window boundaries.
func SincInterpolate(x []float64, sampleRate, t float64) float64 {
	var acc float64
	for n, v := range x {
		u := t*sampleRate - float64(n)
		acc += v * sinc(u)
	}
	return acc
}

// sinc is the normalized sinc function sin(pi x)/(pi x).
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}
