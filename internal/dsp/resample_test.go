package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got, err := Decimate(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Decimate(x, 0); err == nil {
		t.Fatal("want error for factor 0")
	}
}

func TestDecimateLengthProperty(t *testing.T) {
	f := func(n uint8, factor uint8) bool {
		fac := int(factor%16) + 1
		x := make([]float64, int(n))
		got, err := Decimate(x, fac)
		if err != nil {
			return false
		}
		want := (len(x) + fac - 1) / fac
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecimateFilteredAvoidsAliasing(t *testing.T) {
	// A 400 Hz tone decimated 4x from 1 kHz aliases to 100 Hz with plain
	// Decimate; DecimateFiltered must suppress it instead.
	const fs = 1000.0
	x := sineWave(4000, fs, 400, 1)
	plain, err := Decimate(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := DecimateFiltered(x, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rmsMid(plain) < 0.5 {
		t.Fatalf("plain decimation should alias with full power, rms=%v", rmsMid(plain))
	}
	if rmsMid(filtered) > 0.05 {
		t.Fatalf("filtered decimation leaked aliased power, rms=%v", rmsMid(filtered))
	}
}

func TestDecimateFilteredFactorOne(t *testing.T) {
	x := []float64{1, 2, 3}
	got, err := DecimateFiltered(x, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("factor-1 decimation changed data at %d", i)
		}
	}
}

func TestUpsampleFFTRecoversBandlimited(t *testing.T) {
	// Sample a 3 Hz tone at 32 Hz (well above Nyquist), upsample 4x, and
	// compare against the directly sampled 128 Hz version.
	const f0 = 3.0
	const n = 64
	coarse := make([]float64, n)
	for i := range coarse {
		coarse[i] = math.Sin(2 * math.Pi * f0 * float64(i) / 32)
	}
	up, err := UpsampleFFT(coarse, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range up {
		want := math.Sin(2 * math.Pi * f0 * float64(i) / 128)
		if math.Abs(up[i]-want) > 1e-9 {
			t.Fatalf("index %d: %v, want %v", i, up[i], want)
		}
	}
}

func TestUpsampleFFTPreservesOriginalSamples(t *testing.T) {
	// With an integer upsampling ratio, every k-th output must equal the
	// corresponding input sample for a band-limited input.
	const n = 32
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*2*float64(i)/n) + 0.3*math.Cos(2*math.Pi*5*float64(i)/n)
	}
	up, err := UpsampleFFT(x, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(up[3*i]-x[i]) > 1e-9 {
			t.Fatalf("sample %d not preserved: %v vs %v", i, up[3*i], x[i])
		}
	}
}

func TestUpsampleFFTErrors(t *testing.T) {
	if _, err := UpsampleFFT(nil, 10); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := UpsampleFFT([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("want error for shrinking target")
	}
	x := []float64{1, 2, 3}
	same, err := UpsampleFFT(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if same[i] != x[i] {
			t.Fatal("identity upsample should copy input")
		}
	}
}

func TestResampleLinearIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		if len(vals) > 200 {
			vals = vals[:200]
		}
		clean := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			clean[i] = math.Mod(v, 1e9)
		}
		out, err := ResampleLinear(clean, 10, 10)
		if err != nil || len(out) != len(clean) {
			return false
		}
		for i := range clean {
			if math.Abs(out[i]-clean[i]) > 1e-9*(1+math.Abs(clean[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResampleLinearHalvesRamp(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	out, err := ResampleLinear(x, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		want := float64(i) / 2
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("index %d: %v, want %v", i, out[i], want)
		}
	}
}

func TestResampleNearestPicksClosest(t *testing.T) {
	x := []float64{10, 20, 30, 40}
	out, err := ResampleNearest(x, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// t = 0, 1/3, 2/3, 1, 4/3, ... -> nearest indices 0,0,1,1,1,2,2,2,3,3.
	want := []float64{10, 10, 20, 20, 20, 30, 30, 30, 40, 40}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(out), len(want), out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("index %d: %v, want %v", i, out[i], want[i])
		}
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := ResampleLinear(nil, 1, 1); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := ResampleLinear([]float64{1}, 0, 1); err == nil {
		t.Fatal("want error for bad in rate")
	}
	if _, err := ResampleNearest([]float64{1}, 1, 0); err == nil {
		t.Fatal("want error for bad out rate")
	}
}

func TestSincInterpolateExactAtSamples(t *testing.T) {
	x := []float64{1, -2, 3, 0.5, -1, 2, 0, 1}
	for n, v := range x {
		got := SincInterpolate(x, 4, float64(n)/4)
		if math.Abs(got-v) > 1e-9 {
			t.Fatalf("sample %d: %v, want %v", n, got, v)
		}
	}
}

func TestSincInterpolateMidpointOfTone(t *testing.T) {
	// Interpolate a slow tone between samples; interior accuracy should
	// be high even with a modest window.
	const fs = 16.0
	const f0 = 1.0
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	tm := float64(n/2) / fs // interior point
	tq := tm + 0.5/fs       // halfway between samples
	want := math.Sin(2 * math.Pi * f0 * tq)
	got := SincInterpolate(x, fs, tq)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("midpoint interpolation %v, want %v", got, want)
	}
}

func BenchmarkUpsampleFFT(b *testing.B) {
	x := sineWave(1024, 1024, 60, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UpsampleFFT(x, 8192); err != nil {
			b.Fatal(err)
		}
	}
}
