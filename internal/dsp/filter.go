package dsp

import (
	"errors"
	"math"
)

// LowPassFFT removes all frequency content strictly above cutoff hertz from
// x (sampled at sampleRate) by zeroing FFT bins and inverting, exactly the
// reconstruction low-pass described in the paper (§4.3). The returned slice
// has the same length as x. cutoff >= sampleRate/2 returns a copy unchanged.
func LowPassFFT(x []float64, sampleRate, cutoff float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, ErrBadSampleRate
	}
	if cutoff < 0 {
		return nil, errors.New("dsp: negative cutoff frequency")
	}
	n := len(x)
	spec := FFTReal(x)
	df := sampleRate / float64(n)
	for k := 1; k <= n/2; k++ {
		f := float64(k) * df
		if f > cutoff {
			spec[k] = 0
			if k != n-k { // mirror bin, absent only for the Nyquist bin
				spec[n-k] = 0
			}
		}
	}
	return IFFTReal(spec), nil
}

// HighPassFFT removes all frequency content at or below cutoff hertz
// (always including DC) from x. It is the complement of LowPassFFT and is
// used by the dual-rate aliasing detector to isolate suspect content.
func HighPassFFT(x []float64, sampleRate, cutoff float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, ErrBadSampleRate
	}
	n := len(x)
	spec := FFTReal(x)
	spec[0] = 0
	df := sampleRate / float64(n)
	for k := 1; k <= n/2; k++ {
		f := float64(k) * df
		if f <= cutoff {
			spec[k] = 0
			if k != n-k {
				spec[n-k] = 0
			}
		}
	}
	return IFFTReal(spec), nil
}

// FIRLowPass designs a windowed-sinc low-pass FIR filter with the given
// number of taps (forced odd for a symmetric, linear-phase kernel) and
// cutoff in hertz for signals sampled at sampleRate. The kernel is
// normalized to unit DC gain. It exists as the streaming alternative to
// LowPassFFT for adaptive pollers that cannot buffer a whole window.
func FIRLowPass(taps int, sampleRate, cutoff float64) ([]float64, error) {
	if taps < 1 {
		return nil, errors.New("dsp: FIR filter needs at least one tap")
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, ErrBadSampleRate
	}
	if cutoff <= 0 || cutoff > sampleRate/2 {
		return nil, errors.New("dsp: FIR cutoff must be in (0, sampleRate/2]")
	}
	if taps%2 == 0 {
		taps++
	}
	mid := taps / 2
	fc := cutoff / sampleRate // normalized cutoff in cycles/sample
	h := make([]float64, taps)
	var sum float64
	w := Hamming{}
	for i := range h {
		m := float64(i - mid)
		var v float64
		if m == 0 {
			v = 2 * fc
		} else {
			v = math.Sin(2*math.Pi*fc*m) / (math.Pi * m)
		}
		v *= w.Coeff(i, taps)
		h[i] = v
		sum += v
	}
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return h, nil
}

// Convolve returns the "same"-length convolution of x with kernel h,
// i.e. the filtered signal aligned with the input. Edges are handled by
// treating samples outside x as the nearest edge value, which avoids the
// startup transient distorting short monitoring windows.
func Convolve(x, h []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 || len(h) == 0 {
		return out
	}
	mid := len(h) / 2
	for i := range x {
		var acc float64
		for j, hv := range h {
			idx := i + mid - j
			if idx < 0 {
				idx = 0
			} else if idx >= len(x) {
				idx = len(x) - 1
			}
			acc += hv * x[idx]
		}
		out[i] = acc
	}
	return out
}
