package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential property: over random window lengths, resync cadences,
// stream lengths and signals, the sliding DFT's PSD must match the direct
// FFT periodogram of the same window contents to floating-point accuracy.
// The recurrence path (between resyncs) is exactly the code the property
// stresses: drift there is invisible to the fixed-size unit tests.
func TestSlidingDFTMatchesDirectFFTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Arbitrary (non-power-of-two welcome) window lengths; Bluestein
		// handles the odd ones.
		n := 16 + rng.Intn(185)
		// Resync cadence from "every push" to "never during this run".
		resync := 1 + rng.Intn(4*n)
		s, err := NewSlidingDFT(n, resync)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Push past the fill point by a random amount so the comparison
		// window lands at a random phase between resyncs.
		total := n + rng.Intn(3*n)
		// A hostile signal: tones on and off the bin grid, a ramp, an
		// offset, and noise.
		offset := 50 * (rng.Float64() - 0.5)
		slope := rng.Float64() - 0.5
		f1 := float64(1+rng.Intn(n/2)) / float64(n)
		f2 := rng.Float64() / 2
		for i := 0; i < total; i++ {
			ts := float64(i)
			v := offset + slope*ts +
				math.Sin(2*math.Pi*f1*ts+0.3) +
				0.5*math.Sin(2*math.Pi*f2*ts+1.1) +
				0.1*(rng.Float64()-0.5)
			s.Push(v)
		}

		window := make([]float64, n)
		if err := s.Window(window); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := Periodogram(window, 1, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := make([]float64, s.Bins())
		if err := s.PSDInto(got); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != len(want.Power) {
			t.Fatalf("seed %d: bin counts differ: %d vs %d", seed, len(got), len(want.Power))
		}
		// Tolerance scales with the window's total power: the recurrence
		// redistributes eps-level error across bins.
		var total2 float64
		for _, v := range window {
			total2 += v * v
		}
		tol := 1e-9 * (1 + total2)
		for k := range got {
			if math.Abs(got[k]-want.Power[k]) > tol {
				t.Logf("seed %d: n=%d resync=%d bin %d: sliding %g vs fft %g (tol %g)",
					seed, n, resync, k, got[k], want.Power[k], tol)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
