package dsp

import (
	"errors"
	"math"
)

// Quantizer rounds samples to a uniform grid, modeling the finite
// resolution of real sensors (e.g. a temperature probe that reports whole
// degrees). The paper (§4.3) notes quantization injects high-frequency
// noise that both complicates Nyquist estimation and must be re-applied to
// recover the original readings after reconstruction.
type Quantizer struct {
	// Step is the quantum; samples are rounded to the nearest multiple.
	Step float64
	// Offset shifts the grid: values are rounded to Offset + k*Step.
	Offset float64
}

// NewQuantizer returns a Quantizer with the given step. Step must be
// positive.
func NewQuantizer(step float64) (*Quantizer, error) {
	if !(step > 0) || math.IsInf(step, 0) {
		return nil, errors.New("dsp: quantizer step must be positive and finite")
	}
	return &Quantizer{Step: step}, nil
}

// Value quantizes a single sample.
func (q *Quantizer) Value(v float64) float64 {
	if q == nil || q.Step <= 0 {
		return v
	}
	return q.Offset + math.Round((v-q.Offset)/q.Step)*q.Step
}

// Apply returns a quantized copy of x.
func (q *Quantizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = q.Value(v)
	}
	return out
}

// NoisePower returns the expected quantization-noise power Step^2/12 for a
// uniform quantizer under the standard high-resolution model. The Nyquist
// estimator uses it to size its energy cut-off sanity checks.
func (q *Quantizer) NoisePower() float64 {
	if q == nil {
		return 0
	}
	return q.Step * q.Step / 12
}

// EstimateStep guesses the quantization step of a trace as the smallest
// non-zero gap between distinct consecutive values. It returns 0 when the
// trace looks unquantized (fewer than minDistinct distinct deltas agree) or
// has no variation. It is a heuristic: production counters and gauges are
// quantized on fixed grids, which this recovers reliably.
func EstimateStep(x []float64) float64 {
	const eps = 1e-12
	best := math.Inf(1)
	found := false
	for i := 1; i < len(x); i++ {
		d := math.Abs(x[i] - x[i-1])
		if d > eps && d < best {
			best = d
			found = true
		}
	}
	if !found {
		return 0
	}
	// Verify most deltas are near-multiples of the candidate step;
	// otherwise the signal is not grid-quantized and we report 0.
	var checked, agree int
	for i := 1; i < len(x); i++ {
		d := math.Abs(x[i] - x[i-1])
		if d <= eps {
			continue
		}
		checked++
		ratio := d / best
		if math.Abs(ratio-math.Round(ratio)) < 0.05 {
			agree++
		}
	}
	if checked == 0 || float64(agree)/float64(checked) < 0.9 {
		return 0
	}
	return best
}
