package dsp

import (
	"errors"
	"math"
)

// Spectrum is a one-sided power spectral density estimate: Power[i] is the
// signal power attributed to frequency Freqs[i]. Frequencies run from 0 (DC)
// to sampleRate/2 inclusive.
type Spectrum struct {
	// Freqs holds the center frequency of each bin in hertz, ascending.
	Freqs []float64
	// Power holds the power in each bin. The sum over all bins equals the
	// mean squared value of the analyzed segment (Parseval), up to window
	// normalization.
	Power []float64
	// SampleRate is the rate of the signal the spectrum was computed from.
	SampleRate float64
}

// ErrEmptySignal is returned by spectral estimators given no samples.
var ErrEmptySignal = errors.New("dsp: empty signal")

// ErrBadSampleRate is returned when a sample rate is not a positive,
// finite number.
var ErrBadSampleRate = errors.New("dsp: sample rate must be positive and finite")

// Periodogram computes a one-sided PSD of x sampled at sampleRate hertz
// using a single windowed FFT. A nil window means rectangular. The estimate
// is normalized so that the bin powers sum to the mean squared value of the
// (unwindowed) signal; this makes energy-fraction thresholds such as the
// paper's 99 % cut-off independent of signal length and window choice.
func Periodogram(x []float64, sampleRate float64, w Window) (*Spectrum, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, ErrBadSampleRate
	}
	n := len(x)
	spec := FFTReal(ApplyWindow(x, w))
	nBins := n/2 + 1
	power := make([]float64, nBins)
	wp := WindowPower(w, n)
	if wp == 0 {
		// Degenerate window (e.g. 2-point Hann is identically zero); the
		// spectrum is all zeros, so any finite normalization works.
		wp = 1
	}
	norm := 1 / (float64(n) * float64(n) * wp)
	for k := 0; k < nBins; k++ {
		re, im := real(spec[k]), imag(spec[k])
		p := (re*re + im*im) * norm
		// Interior bins fold in the conjugate-symmetric negative
		// frequency; DC and (for even n) the Nyquist bin do not.
		if k != 0 && !(n%2 == 0 && k == n/2) {
			p *= 2
		}
		power[k] = p
	}
	freqs := make([]float64, nBins)
	df := sampleRate / float64(n)
	for k := range freqs {
		freqs[k] = float64(k) * df
	}
	return &Spectrum{Freqs: freqs, Power: power, SampleRate: sampleRate}, nil
}

// WelchConfig parameterizes Welch's averaged-periodogram PSD estimate.
type WelchConfig struct {
	// SegmentLen is the number of samples per segment. Values < 2 select
	// a single segment covering the whole signal.
	SegmentLen int
	// Overlap is the number of samples shared by consecutive segments.
	// It must be smaller than SegmentLen; the conventional choice is
	// SegmentLen/2.
	Overlap int
	// Window tapers each segment; nil means Hann, the usual Welch choice.
	Window Window
}

// Welch computes a one-sided PSD by averaging windowed periodograms over
// overlapping segments, trading frequency resolution for variance
// reduction. It is the noise-robust alternative to Periodogram for the
// estimator's moving-window mode.
func Welch(x []float64, sampleRate float64, cfg WelchConfig) (*Spectrum, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, ErrBadSampleRate
	}
	segLen := cfg.SegmentLen
	if segLen < 2 || segLen > len(x) {
		segLen = len(x)
	}
	overlap := cfg.Overlap
	if overlap < 0 {
		overlap = 0
	}
	if overlap >= cfg.SegmentLen && cfg.SegmentLen >= 2 {
		return nil, errors.New("dsp: welch overlap must be smaller than segment length")
	}
	if overlap >= segLen {
		// Segment was clamped to the (short) signal; shrink the overlap
		// with it so the fallback single-segment path still works.
		overlap = segLen / 2
	}
	w := cfg.Window
	if w == nil {
		w = Hann{}
	}
	step := segLen - overlap
	var acc *Spectrum
	segments := 0
	for start := 0; start+segLen <= len(x); start += step {
		ps, err := Periodogram(x[start:start+segLen], sampleRate, w)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = ps
		} else {
			for i := range acc.Power {
				acc.Power[i] += ps.Power[i]
			}
		}
		segments++
	}
	if acc == nil {
		// Signal shorter than one segment: fall back to a single
		// whole-signal periodogram.
		return Periodogram(x, sampleRate, w)
	}
	inv := 1 / float64(segments)
	for i := range acc.Power {
		acc.Power[i] *= inv
	}
	return acc, nil
}

// TotalPower returns the sum of power across all bins of s.
func (s *Spectrum) TotalPower() float64 {
	var t float64
	for _, p := range s.Power {
		t += p
	}
	return t
}

// CumulativeCutoff returns the lowest frequency f such that bins at or
// below f contain at least fraction*TotalPower of the spectrum's energy,
// together with the index of that bin. When startBin > 0 the bins below it
// (typically DC) are excluded from both numerator and denominator. If the
// total energy in scope is zero, the first in-scope frequency is returned.
func (s *Spectrum) CumulativeCutoff(fraction float64, startBin int) (freq float64, bin int) {
	if len(s.Power) == 0 {
		return 0, -1
	}
	if startBin < 0 {
		startBin = 0
	}
	if startBin >= len(s.Power) {
		startBin = len(s.Power) - 1
	}
	var total float64
	for _, p := range s.Power[startBin:] {
		total += p
	}
	if total <= 0 {
		return s.Freqs[startBin], startBin
	}
	target := fraction * total
	var cum float64
	for k := startBin; k < len(s.Power); k++ {
		cum += s.Power[k]
		if cum >= target {
			return s.Freqs[k], k
		}
	}
	last := len(s.Power) - 1
	return s.Freqs[last], last
}

// PeakFrequency returns the frequency of the strongest bin at or above
// startBin. It reports 0, -1 for an empty spectrum.
func (s *Spectrum) PeakFrequency(startBin int) (freq float64, bin int) {
	if len(s.Power) == 0 || startBin >= len(s.Power) {
		return 0, -1
	}
	if startBin < 0 {
		startBin = 0
	}
	best := startBin
	for k := startBin + 1; k < len(s.Power); k++ {
		if s.Power[k] > s.Power[best] {
			best = k
		}
	}
	return s.Freqs[best], best
}

// BinWidth returns the frequency spacing between adjacent bins, or 0 for a
// degenerate spectrum.
func (s *Spectrum) BinWidth() float64 {
	if len(s.Freqs) < 2 {
		return 0
	}
	return s.Freqs[1] - s.Freqs[0]
}
