package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestSlidingDFTMatchesPeriodogram checks that once warm, the sliding PSD
// equals a batch Periodogram over the same window, for power-of-two and
// Bluestein-path window lengths alike.
func TestSlidingDFTMatchesPeriodogram(t *testing.T) {
	for _, n := range []int{16, 64, 100, 257} {
		rng := rand.New(rand.NewSource(int64(n)))
		sd, err := NewSlidingDFT(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		stream := make([]float64, 3*n+n/3)
		for i := range stream {
			stream[i] = math.Sin(2*math.Pi*float64(i)/17) + 0.3*rng.NormFloat64()
		}
		power := make([]float64, sd.Bins())
		window := make([]float64, n)
		for i, v := range stream {
			sd.Push(v)
			if !sd.Warm() || i%7 != 0 {
				continue
			}
			if err := sd.PSDInto(power); err != nil {
				t.Fatal(err)
			}
			if err := sd.Window(window); err != nil {
				t.Fatal(err)
			}
			want, err := Periodogram(window, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			for k := range power {
				if diff := math.Abs(power[k] - want.Power[k]); diff > 1e-9*(1+want.Power[k]) {
					t.Fatalf("n=%d push=%d bin %d: sliding %g batch %g", n, i, k, power[k], want.Power[k])
				}
			}
		}
	}
}

// TestSlidingDFTWindowOrder checks the ring unrolls oldest-first.
func TestSlidingDFTWindowOrder(t *testing.T) {
	sd, err := NewSlidingDFT(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		sd.Push(float64(i))
	}
	got := make([]float64, 4)
	if err := sd.Window(got); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
}

// TestSlidingDFTDriftBounded pushes far more samples than the resync
// cadence and checks the recurrence drift stays near machine epsilon.
func TestSlidingDFTDriftBounded(t *testing.T) {
	const n = 128
	sd, err := NewSlidingDFT(n, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	window := make([]float64, n)
	power := make([]float64, sd.Bins())
	for i := 0; i < 50*n; i++ {
		sd.Push(rng.NormFloat64())
	}
	if err := sd.PSDInto(power); err != nil {
		t.Fatal(err)
	}
	if err := sd.Window(window); err != nil {
		t.Fatal(err)
	}
	want, err := Periodogram(window, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range want.Power {
		total += p
	}
	for k := range power {
		if diff := math.Abs(power[k] - want.Power[k]); diff > 1e-8*total {
			t.Fatalf("bin %d drifted: sliding %g batch %g", k, power[k], want.Power[k])
		}
	}
}

// TestSlidingDFTReset checks a reset estimator behaves like a fresh one.
func TestSlidingDFTReset(t *testing.T) {
	sd, err := NewSlidingDFT(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sd.Push(float64(i))
	}
	sd.Reset()
	if sd.Warm() || sd.Pushes() != 0 {
		t.Fatalf("reset left warm=%v pushes=%d", sd.Warm(), sd.Pushes())
	}
	vals := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	for _, v := range vals {
		sd.Push(v)
	}
	power := make([]float64, sd.Bins())
	if err := sd.PSDInto(power); err != nil {
		t.Fatal(err)
	}
	want, err := Periodogram(vals, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range power {
		if math.Abs(power[k]-want.Power[k]) > 1e-9 {
			t.Fatalf("bin %d after reset: %g want %g", k, power[k], want.Power[k])
		}
	}
}

// TestSlidingDFTRejectsTinyWindows checks validation.
func TestSlidingDFTRejectsTinyWindows(t *testing.T) {
	if _, err := NewSlidingDFT(1, 0); err == nil {
		t.Fatal("want error for 1-sample window")
	}
}

// BenchmarkSlidingDFTPush measures the O(N) incremental update against the
// O(N log N) full recompute it replaces.
func BenchmarkSlidingDFTPush(b *testing.B) {
	const n = 1440 // one day of 1-minute polls
	sd, err := NewSlidingDFT(n, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sd.Push(float64(i % 37))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd.Push(float64(i % 53))
	}
}
