package dsp

import "math"

// DetrendLinear returns a copy of x with the least-squares straight line
// removed. Monitoring windows often cover less than one cycle of a very
// slow component; to the FFT that residual ramp is a discontinuity whose
// leakage spreads across all bins and inflates energy-fraction cut-offs.
// Removing the best-fit line first confines the estimator to the content
// that actually varies within the window.
func DetrendLinear(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		return out // single sample: the "line" is the sample itself
	}
	// Closed-form simple linear regression on index.
	var sumY, sumXY float64
	for i, v := range x {
		sumY += v
		sumXY += float64(i) * v
	}
	fn := float64(n)
	sumX := fn * (fn - 1) / 2
	sumXX := (fn - 1) * fn * (2*fn - 1) / 6
	den := fn*sumXX - sumX*sumX
	var slope, intercept float64
	if den != 0 {
		slope = (fn*sumXY - sumX*sumY) / den
		intercept = (sumY - slope*sumX) / fn
	} else {
		intercept = sumY / fn
	}
	for i, v := range x {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}

// MedianFilter returns x smoothed with a sliding median of the given
// window (forced odd). Medians remove impulsive noise — sensor glitches,
// counter resets — without the smearing a mean filter causes, one of the
// "standard techniques" the paper waves at for pre-filtering noisy traces
// (§4.1). Edges are handled by shrinking the window.
func MedianFilter(x []float64, window int) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	buf := make([]float64, 0, window)
	for i := range x {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		buf = append(buf[:0], x[lo:hi]...)
		out[i] = medianOf(buf)
	}
	return out
}

// medianOf returns the median of buf, reordering it in place.
func medianOf(buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return math.NaN()
	}
	k := n / 2
	// Quickselect.
	lo, hi := 0, n-1
	for lo < hi {
		pivot := buf[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for buf[i] < pivot {
				i++
			}
			for buf[j] > pivot {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	if n%2 == 1 {
		return buf[k]
	}
	// Even length: average the two central order statistics.
	maxBelow := buf[0]
	for _, v := range buf[:k] {
		if v > maxBelow {
			maxBelow = v
		}
	}
	return (maxBelow + buf[k]) / 2
}

// Autocorrelation returns the biased sample autocorrelation of x up to
// maxLag, normalized so lag 0 equals 1. It backs the autocorrelation
// baseline estimator used in the ablation benches: the first zero
// crossing of the ACF is a classic (cruder) bandwidth proxy against which
// the paper's spectral method is compared.
func Autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 || n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var c0 float64
	for _, v := range x {
		d := v - mean
		c0 += d * d
	}
	out := make([]float64, maxLag+1)
	if c0 == 0 {
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var acc float64
		for i := 0; i+lag < n; i++ {
			acc += (x[i] - mean) * (x[i+lag] - mean)
		}
		out[lag] = acc / c0
	}
	return out
}
