// Package dsp provides the digital signal processing substrate for the
// monitoring reproduction: Fourier transforms, power spectral density
// estimation, window functions, low-pass filtering, resampling and
// quantization. Everything is built on the standard library only.
//
// Conventions: the forward transform is
//
//	X[k] = sum_n x[n] * exp(-2*pi*i*k*n/N)
//
// and the inverse transform divides by N, so IFFT(FFT(x)) == x. Power
// spectral densities are one-sided unless stated otherwise.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is accepted: power-of-two lengths use the iterative
// radix-2 Cooley-Tukey algorithm and other lengths fall back to Bluestein's
// chirp-z algorithm, so the cost is O(N log N) in all cases. An empty input
// yields an empty output.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) reproduces x up to rounding error.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTReal transforms a real-valued signal and returns the full complex
// spectrum of length len(x). Callers that only need the non-redundant half
// can slice the result to len(x)/2+1 bins.
func FFTReal(x []float64) []complex128 {
	buf := make([]complex128, len(x))
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf, false)
	return buf
}

// IFFTReal inverts a spectrum that is known to correspond to a real signal
// and returns only the real parts. Imaginary residue from rounding is
// discarded.
func IFFTReal(spec []complex128) []float64 {
	buf := IFFT(spec)
	out := make([]float64, len(buf))
	for i, v := range buf {
		out[i] = real(v)
	}
	return out
}

// fftInPlace computes the DFT of x in place. When inverse is true it
// computes the inverse transform including the 1/N normalization.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		fftRadix2(x, inverse)
	} else {
		fftBluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// fftRadix2 is the iterative radix-2 Cooley-Tukey FFT. len(x) must be a
// power of two. No normalization is applied.
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// wBase = exp(i*step); recurrence keeps the inner loop free of
		// trig calls while periodic re-seeding bounds the error.
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// fftBluestein computes an arbitrary-length DFT as a convolution with a
// chirp, evaluated with power-of-two FFTs (chirp-z transform).
func fftBluestein(x []complex128, inverse bool) {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign*i*pi*k^2/n); k^2 is reduced mod 2n to keep the
	// argument small, preserving precision for long inputs.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (uint64(k) * uint64(k)) % uint64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	a := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b := make([]complex128, m)
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	// Unnormalized inverse radix-2 transform: conj, forward, conj, /m.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	fftRadix2(a, false)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = cmplx.Conj(a[k]) * scale * chirp[k]
	}
}

// NextPow2 returns the smallest power of two >= n. It panics if n exceeds
// the largest power of two representable in an int.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1 << (bits.Len(uint(n - 1)))
	if p < n {
		panic(fmt.Sprintf("dsp: NextPow2 overflow for n=%d", n))
	}
	return p
}

// FFTFreqs returns the frequency in hertz of each bin of an N-point
// transform of a signal sampled at sampleRate. Bins in the upper half are
// reported as negative frequencies, matching the conventional layout.
func FFTFreqs(n int, sampleRate float64) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	df := sampleRate / float64(n)
	for i := range out {
		if i <= (n-1)/2 {
			out[i] = float64(i) * df
		} else {
			out[i] = float64(i-n) * df
		}
	}
	return out
}
