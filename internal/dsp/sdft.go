package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// SlidingDFT maintains the DFT of the most recent N samples of a stream
// incrementally: each Push retires the oldest sample and admits the newest
// in O(N) bin updates, where a fresh FFT over the window would cost
// O(N log N). It is the spectral state behind the streaming Nyquist
// estimator — one bounded ring buffer plus one complex accumulator per
// one-sided bin, regardless of how long the stream runs.
//
// The recurrence X_k ← (X_k − x_old + x_new)·e^{+j2πk/N} is exact in real
// arithmetic but accumulates rounding drift under floating point, so the
// state is periodically re-derived from the ring buffer with the package's
// FFT (see ResyncEvery). Only the one-sided bins 0..N/2 are kept; the
// analyzed signal is real, so the negative frequencies are conjugate
// mirrors carrying no extra information.
type SlidingDFT struct {
	n       int
	ring    []float64
	head    int          // ring slot the next Push overwrites (= oldest sample once warm)
	pushes  int64        // total samples ever pushed
	bins    []complex128 // one-sided DFT of the current window, bins 0..n/2
	twiddle []complex128 // e^{+j2πk/n} per bin
	resync  int64        // exact recompute cadence in pushes
	scratch []complex128 // FFT input reused by resyncs
}

// DefaultResyncEvery is the default number of pushes between exact FFT
// re-derivations of the sliding state. One resync per window length keeps
// the relative drift near machine epsilon while amortizing the FFT to
// O(log N) per push.
const DefaultResyncEvery = 0 // 0 selects the window length

// ErrWindowTooSmall is returned for sliding windows shorter than 2 samples.
var ErrWindowTooSmall = errors.New("dsp: sliding DFT window must hold at least 2 samples")

// NewSlidingDFT returns a sliding DFT over windows of n samples.
// resyncEvery is the number of pushes between exact FFT re-derivations;
// zero selects n.
func NewSlidingDFT(n int, resyncEvery int) (*SlidingDFT, error) {
	if n < 2 {
		return nil, ErrWindowTooSmall
	}
	if resyncEvery <= 0 {
		resyncEvery = n
	}
	s := &SlidingDFT{
		n:       n,
		ring:    make([]float64, n),
		bins:    make([]complex128, n/2+1),
		twiddle: make([]complex128, n/2+1),
		resync:  int64(resyncEvery),
		scratch: make([]complex128, n),
	}
	for k := range s.twiddle {
		s.twiddle[k] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(n)))
	}
	return s, nil
}

// N returns the window length in samples.
func (s *SlidingDFT) N() int { return s.n }

// Bins returns the number of one-sided frequency bins (N/2 + 1).
func (s *SlidingDFT) Bins() int { return len(s.bins) }

// Pushes returns the total number of samples pushed so far.
func (s *SlidingDFT) Pushes() int64 { return s.pushes }

// Warm reports whether a full window has been seen, i.e. the bins describe
// N real samples rather than a zero-padded prefix.
func (s *SlidingDFT) Warm() bool { return s.pushes >= int64(s.n) }

// Reset clears the state for reuse on a new stream without reallocating.
func (s *SlidingDFT) Reset() {
	for i := range s.ring {
		s.ring[i] = 0
	}
	for i := range s.bins {
		s.bins[i] = 0
	}
	s.head = 0
	s.pushes = 0
}

// Push slides the window one sample forward. Until the window fills, the
// retired value is the zero the ring was initialized with, so the bins
// describe the zero-padded prefix; callers gate on Warm for exact results.
func (s *SlidingDFT) Push(v float64) {
	old := s.ring[s.head]
	s.ring[s.head] = v
	s.head++
	if s.head == s.n {
		s.head = 0
	}
	s.pushes++
	if s.pushes%s.resync == 0 {
		s.recompute()
		return
	}
	d := complex(v-old, 0)
	for k, w := range s.twiddle {
		s.bins[k] = (s.bins[k] + d) * w
	}
}

// recompute re-derives the bins exactly from the ring buffer, clearing the
// rounding drift the O(N)-per-push recurrence accumulates.
func (s *SlidingDFT) recompute() {
	// Unroll the ring into window order: oldest sample first.
	for i := 0; i < s.n; i++ {
		s.scratch[i] = complex(s.ring[(s.head+i)%s.n], 0)
	}
	fftInPlace(s.scratch, false)
	copy(s.bins, s.scratch[:len(s.bins)])
}

// Resync forces an immediate exact re-derivation of the bins.
func (s *SlidingDFT) Resync() { s.recompute() }

// PSDInto fills power with the one-sided PSD of the current window under
// the Periodogram convention (rectangular window: bin powers sum to the
// window's mean squared value). power must have length Bins().
func (s *SlidingDFT) PSDInto(power []float64) error {
	if len(power) != len(s.bins) {
		return errors.New("dsp: sliding DFT power buffer has wrong length")
	}
	n := float64(s.n)
	norm := 1 / (n * n)
	for k, b := range s.bins {
		re, im := real(b), imag(b)
		p := (re*re + im*im) * norm
		if k != 0 && !(s.n%2 == 0 && k == s.n/2) {
			p *= 2
		}
		power[k] = p
	}
	return nil
}

// Window copies the current window contents, oldest sample first, into
// dst (which must have length N) — the batch-estimator view of the same
// samples, used by equivalence tests and aliased-window fallbacks.
func (s *SlidingDFT) Window(dst []float64) error {
	if len(dst) != s.n {
		return errors.New("dsp: sliding DFT window buffer has wrong length")
	}
	for i := 0; i < s.n; i++ {
		dst[i] = s.ring[(s.head+i)%s.n]
	}
	return nil
}
