package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sineWave samples amplitude*sin(2*pi*freq*t) at sampleRate for n samples.
func sineWave(n int, sampleRate, freq, amplitude float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = amplitude * math.Sin(2*math.Pi*freq*float64(i)/sampleRate)
	}
	return x
}

func TestPeriodogramErrors(t *testing.T) {
	if _, err := Periodogram(nil, 1, nil); err != ErrEmptySignal {
		t.Fatalf("want ErrEmptySignal, got %v", err)
	}
	if _, err := Periodogram([]float64{1}, 0, nil); err != ErrBadSampleRate {
		t.Fatalf("want ErrBadSampleRate, got %v", err)
	}
	if _, err := Periodogram([]float64{1}, math.Inf(1), nil); err != ErrBadSampleRate {
		t.Fatalf("want ErrBadSampleRate for +Inf, got %v", err)
	}
}

func TestPeriodogramSinePeak(t *testing.T) {
	const fs = 1000.0
	const n = 1000
	const f0 = 50.0
	s, err := Periodogram(sineWave(n, fs, f0, 1), fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak, bin := s.PeakFrequency(1)
	if !almostEqual(peak, f0, s.BinWidth()/2) {
		t.Fatalf("peak at %v Hz, want %v", peak, f0)
	}
	// A unit sine has mean-square power 0.5, all in one bin here since f0
	// falls exactly on a bin.
	if !almostEqual(s.Power[bin], 0.5, 1e-9) {
		t.Fatalf("peak power = %v, want 0.5", s.Power[bin])
	}
}

func TestPeriodogramParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{16, 99, 256, 1001} {
		x := make([]float64, n)
		var ms float64
		for i := range x {
			x[i] = rng.NormFloat64()
			ms += x[i] * x[i]
		}
		ms /= float64(n)
		s, err := Periodogram(x, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(s.TotalPower(), ms, 1e-9*(1+ms)) {
			t.Fatalf("n=%d: total PSD power %v != mean square %v", n, s.TotalPower(), ms)
		}
	}
}

func TestPeriodogramDCOnly(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	s, err := Periodogram(x, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Power[0], 25, 1e-9) {
		t.Fatalf("DC power = %v, want 25", s.Power[0])
	}
	for k := 1; k < len(s.Power); k++ {
		if s.Power[k] > 1e-12 {
			t.Fatalf("bin %d has power %v, want 0", k, s.Power[k])
		}
	}
}

func TestPeriodogramNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 256 {
			vals = vals[:256]
		}
		clean := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			clean[i] = math.Mod(v, 1e8)
		}
		s, err := Periodogram(clean, 1, Hann{})
		if err != nil {
			return false
		}
		for _, p := range s.Power {
			if p < 0 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	single, err := Periodogram(x, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	welch, err := Welch(x, 1, WelchConfig{SegmentLen: 512, Overlap: 256})
	if err != nil {
		t.Fatal(err)
	}
	// White-noise PSD should be flat; Welch's estimate must have visibly
	// lower relative variance across bins (skip DC).
	if v1, v2 := relVariance(single.Power[1:]), relVariance(welch.Power[1:]); v2 >= v1 {
		t.Fatalf("welch variance %v not below periodogram variance %v", v2, v1)
	}
}

func relVariance(p []float64) float64 {
	var mean float64
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	var acc float64
	for _, v := range p {
		d := v - mean
		acc += d * d
	}
	return acc / (float64(len(p)) * mean * mean)
}

func TestWelchShortSignalFallsBack(t *testing.T) {
	x := sineWave(64, 64, 4, 1)
	s, err := Welch(x, 64, WelchConfig{SegmentLen: 256, Overlap: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Power) != 33 {
		t.Fatalf("fallback spectrum has %d bins, want 33", len(s.Power))
	}
}

func TestWelchBadOverlap(t *testing.T) {
	x := sineWave(128, 64, 4, 1)
	if _, err := Welch(x, 64, WelchConfig{SegmentLen: 32, Overlap: 32}); err == nil {
		t.Fatal("expected error for overlap >= segment length")
	}
}

func TestWelchPeakSurvivesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const fs = 100.0
	x := sineWave(8192, fs, 10, 1)
	for i := range x {
		x[i] += 0.5 * rng.NormFloat64()
	}
	s, err := Welch(x, fs, WelchConfig{SegmentLen: 1024, Overlap: 512})
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := s.PeakFrequency(1)
	if math.Abs(peak-10) > 0.2 {
		t.Fatalf("welch peak at %v, want ~10 Hz", peak)
	}
}

func TestCumulativeCutoff(t *testing.T) {
	s := &Spectrum{
		Freqs: []float64{0, 1, 2, 3, 4},
		Power: []float64{100, 50, 30, 15, 5},
	}
	// Excluding DC, total=100; 99% reached at the last bin.
	f, bin := s.CumulativeCutoff(0.99, 1)
	if bin != 4 || f != 4 {
		t.Fatalf("cutoff = (%v, %d), want (4, 4)", f, bin)
	}
	// 80% of 100 = 80, reached at bin 2 (50+30).
	f, bin = s.CumulativeCutoff(0.80, 1)
	if bin != 2 || f != 2 {
		t.Fatalf("cutoff = (%v, %d), want (2, 2)", f, bin)
	}
	// Including DC, total=200, 50% reached at bin 0.
	f, bin = s.CumulativeCutoff(0.50, 0)
	if bin != 0 || f != 0 {
		t.Fatalf("cutoff = (%v, %d), want (0, 0)", f, bin)
	}
}

func TestCumulativeCutoffZeroPower(t *testing.T) {
	s := &Spectrum{Freqs: []float64{0, 1, 2}, Power: []float64{0, 0, 0}}
	f, bin := s.CumulativeCutoff(0.99, 1)
	if bin != 1 || f != 1 {
		t.Fatalf("cutoff on zero spectrum = (%v, %d), want (1, 1)", f, bin)
	}
}

func TestCumulativeCutoffDegenerate(t *testing.T) {
	s := &Spectrum{}
	if _, bin := s.CumulativeCutoff(0.5, 0); bin != -1 {
		t.Fatalf("empty spectrum should return bin -1, got %d", bin)
	}
	s = &Spectrum{Freqs: []float64{0, 1}, Power: []float64{1, 1}}
	if _, bin := s.CumulativeCutoff(0.5, 99); bin != 1 {
		t.Fatalf("out-of-range startBin should clamp, got bin %d", bin)
	}
}

func TestPeakFrequencyDegenerate(t *testing.T) {
	s := &Spectrum{}
	if _, bin := s.PeakFrequency(0); bin != -1 {
		t.Fatalf("empty spectrum peak bin = %d, want -1", bin)
	}
}

func TestWindowedPeriodogramStillNormalized(t *testing.T) {
	// With window-power normalization, a full-scale sine's power estimate
	// should remain ~0.5 under any window.
	const fs, f0, n = 1024.0, 128.0, 4096
	x := sineWave(n, fs, f0, 1)
	for _, w := range []Window{Rectangular{}, Hann{}, Hamming{}, Blackman{}} {
		s, err := Periodogram(x, fs, w)
		if err != nil {
			t.Fatal(err)
		}
		// Sum power in a small band around the peak to absorb leakage.
		_, bin := s.PeakFrequency(1)
		var p float64
		for k := bin - 4; k <= bin+4 && k < len(s.Power); k++ {
			if k >= 0 {
				p += s.Power[k]
			}
		}
		if math.Abs(p-0.5) > 0.02 {
			t.Errorf("%s window: band power %v, want ~0.5", w.Name(), p)
		}
	}
}

func BenchmarkPeriodogram4096(b *testing.B) {
	x := sineWave(4096, 1024, 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Periodogram(x, 1024, Hann{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelch8192(b *testing.B) {
	x := sineWave(8192, 1024, 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Welch(x, 1024, WelchConfig{SegmentLen: 1024, Overlap: 512}); err != nil {
			b.Fatal(err)
		}
	}
}
