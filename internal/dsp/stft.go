package dsp

import (
	"errors"
	"math"
)

// STFT parameterizes a short-time Fourier transform: the time-resolved
// spectral view behind moving-window Nyquist scans and the spectrogram
// rendering of Fig. 7-style analyses.
type STFT struct {
	// SegmentLen is the samples per frame; it must be a power of two so
	// frames run through a reusable Plan.
	SegmentLen int
	// Hop is the frame step; zero selects SegmentLen/2.
	Hop int
	// Window tapers each frame; nil selects Hann.
	Window Window
}

// Spectrogram is the STFT output: Power[t][f] is the one-sided PSD of
// frame t at frequency Freqs[f]; Times[t] is the frame start in seconds.
type Spectrogram struct {
	Times []float64
	Freqs []float64
	Power [][]float64
	// SampleRate echoes the analyzed signal's rate.
	SampleRate float64
}

// Compute runs the STFT over x sampled at sampleRate hertz.
func (s STFT) Compute(x []float64, sampleRate float64) (*Spectrogram, error) {
	if len(x) == 0 {
		return nil, ErrEmptySignal
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, ErrBadSampleRate
	}
	segLen := s.SegmentLen
	if segLen <= 0 {
		segLen = 256
	}
	if segLen&(segLen-1) != 0 {
		return nil, errors.New("dsp: STFT segment length must be a power of two")
	}
	if segLen > len(x) {
		return nil, errors.New("dsp: STFT segment longer than signal")
	}
	hop := s.Hop
	if hop <= 0 {
		hop = segLen / 2
	}
	w := s.Window
	if w == nil {
		w = Hann{}
	}
	plan, err := NewPlan(segLen)
	if err != nil {
		return nil, err
	}
	nBins := segLen/2 + 1
	out := &Spectrogram{SampleRate: sampleRate}
	out.Freqs = make([]float64, nBins)
	df := sampleRate / float64(segLen)
	for k := range out.Freqs {
		out.Freqs[k] = float64(k) * df
	}
	coeffs := make([]float64, segLen)
	var wp float64
	for i := range coeffs {
		coeffs[i] = w.Coeff(i, segLen)
		wp += coeffs[i] * coeffs[i]
	}
	wp /= float64(segLen)
	if wp == 0 {
		wp = 1
	}
	scratch := make([]complex128, segLen)
	frame := make([]float64, segLen)
	for start := 0; start+segLen <= len(x); start += hop {
		for i := range frame {
			frame[i] = x[start+i] * coeffs[i]
		}
		power := make([]float64, nBins)
		if err := plan.PSDInto(power, scratch, frame); err != nil {
			return nil, err
		}
		for k := range power {
			power[k] /= wp
		}
		out.Power = append(out.Power, power)
		out.Times = append(out.Times, float64(start)/sampleRate)
	}
	if len(out.Power) == 0 {
		return nil, errors.New("dsp: STFT produced no frames")
	}
	return out, nil
}

// FrameCutoff returns, for each frame, the frequency below which fraction
// of that frame's (non-DC) energy lies — the per-frame version of the
// estimator's cut-off, tracing how the required rate moves through time.
func (sg *Spectrogram) FrameCutoff(fraction float64) []float64 {
	out := make([]float64, len(sg.Power))
	for t, frame := range sg.Power {
		var total float64
		for k := 1; k < len(frame); k++ {
			total += frame[k]
		}
		if total <= 0 {
			out[t] = sg.Freqs[min2(1, len(sg.Freqs)-1)]
			continue
		}
		target := fraction * total
		var cum float64
		for k := 1; k < len(frame); k++ {
			cum += frame[k]
			if cum >= target {
				out[t] = sg.Freqs[k]
				break
			}
		}
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
