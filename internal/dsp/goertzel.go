package dsp

import (
	"errors"
	"math"
)

// Goertzel evaluates the power of a single DFT bin at the given frequency
// (hertz) of a signal sampled at sampleRate, in O(N) time and O(1) space.
// Adaptive pollers use it to watch one suspect frequency (e.g. the band
// just below the current poll rate's Nyquist limit) far more cheaply than a
// full FFT per window.
func Goertzel(x []float64, sampleRate, freq float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmptySignal
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return 0, ErrBadSampleRate
	}
	if freq < 0 || freq > sampleRate/2 {
		return 0, errors.New("dsp: goertzel frequency outside [0, sampleRate/2]")
	}
	n := float64(len(x))
	// Round to the nearest integral bin so the recurrence is exact.
	k := math.Round(freq / sampleRate * n)
	w := 2 * math.Pi * k / n
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	// Normalize to match the Periodogram convention (power as a fraction
	// of mean-square, one-sided).
	power /= n * n
	if k != 0 && int(k) != len(x)/2 {
		power *= 2
	}
	return power, nil
}
