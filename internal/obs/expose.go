// Exposition: rendering a Registry as Prometheus text format
// (version 0.0.4 — the format every scraper and promtool understands)
// and as a flat []Sample for the self-scrape loop. Families are sorted
// by name and children by label values, so output is deterministic —
// the property the golden test and the smoke scraper pin.

package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition sample, flattened: histograms contribute
// their _bucket/_sum/_count series like the text format does. Name and
// Labels concatenated are the canonical series identity — exactly the
// string the self-scrape loop uses as a TSDB series id.
type Sample struct {
	// Name is the sample name (family name, with the _bucket/_sum/
	// _count suffix for histogram components).
	Name string
	// Labels is the rendered label set, `{k="v",...}` with keys sorted,
	// or "" for unlabeled samples.
	Labels string
	// Value is the sample value at gather time.
	Value float64
}

// ID returns the canonical series identity, Name immediately followed
// by Labels.
func (s Sample) ID() string { return s.Name + s.Labels }

// Gather returns every sample in exposition order. The slice is fresh
// per call; values are atomic loads, not a consistent snapshot.
func (r *Registry) Gather() []Sample {
	var out []Sample
	r.eachFamily(func(f *family) {
		f.gather(&out)
	})
	return out
}

// WriteProm renders the registry in Prometheus text format.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	r.eachFamily(func(f *family) {
		f.writeProm(bw)
	})
	return bw.Flush()
}

// Handler returns the GET /metrics handler. A failed render cannot be
// reported to the scraper (the status line is already committed by the
// first write), so the error is handed to onWriteErr — the server
// counts it into nyquistd_http_write_errors_total — instead of being
// dropped. A nil onWriteErr is allowed for callers with no counter.
func (r *Registry) Handler(onWriteErr func(error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil && onWriteErr != nil {
			onWriteErr(err)
		}
	})
}

// eachFamily visits families sorted by name.
func (r *Registry) eachFamily(fn func(*family)) {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if f != nil {
			fn(f)
		}
	}
}

// snapshotChildren returns the family's children with keys sorted, plus
// the func-metric value when this is a function metric.
func (f *family) snapshotChildren() ([]*child, func() float64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	kids := make([]*child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	return kids, f.fn
}

func (f *family) gather(out *[]Sample) {
	kids, fn := f.snapshotChildren()
	if fn != nil {
		*out = append(*out, Sample{Name: f.name, Value: fn()})
		return
	}
	for _, c := range kids {
		labels := renderLabels(f.labels, c.labelValues, "", "")
		switch f.kind {
		case KindCounter:
			*out = append(*out, Sample{Name: f.name, Labels: labels, Value: float64(c.counter.Value())})
		case KindGauge:
			*out = append(*out, Sample{Name: f.name, Labels: labels, Value: c.gauge.Value()})
		case KindHistogram:
			h := c.hist
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				*out = append(*out, Sample{
					Name:   f.name + "_bucket",
					Labels: renderLabels(f.labels, c.labelValues, "le", formatFloat(b)),
					Value:  float64(cum),
				})
			}
			count := h.Count()
			*out = append(*out, Sample{Name: f.name + "_bucket",
				Labels: renderLabels(f.labels, c.labelValues, "le", "+Inf"), Value: float64(count)})
			*out = append(*out, Sample{Name: f.name + "_sum", Labels: labels, Value: h.Sum()})
			*out = append(*out, Sample{Name: f.name + "_count", Labels: labels, Value: float64(count)})
		}
	}
}

func (f *family) writeProm(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	// One Gather-shaped pass: the flattened samples are exactly the
	// lines the text format wants.
	var samples []Sample
	f.gather(&samples)
	for _, s := range samples {
		w.WriteString(s.Name)
		w.WriteString(s.Labels)
		w.WriteByte(' ')
		w.WriteString(formatFloat(s.Value))
		w.WriteByte('\n')
	}
}

// renderLabels renders `{k="v",...}` with an optional extra pair
// (histogram le) appended; returns "" when there are no pairs at all.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
