package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeHistogramBasics pins the instrument semantics the
// exposition and the self-scrape loop rely on.
func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_counter_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("test_hist", "help", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got := h.Sum(); got != 111.5 {
		t.Fatalf("hist sum = %v, want 111.5", got)
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "help", "handler", "code")
	a := v.With("ingest", "2xx")
	b := v.With("ingest", "2xx")
	if a != b {
		t.Fatal("same label values must resolve to the same child")
	}
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("shared child = %d, want 1", got)
	}
	if c := v.With("ingest", "5xx"); c == a {
		t.Fatal("different label values must resolve to different children")
	}
}

func TestRegistryPanicsOnConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_metric", "help")
	mustPanic(t, "type conflict", func() { r.Gauge("test_metric", "help") })
	mustPanic(t, "schema conflict", func() {
		r.CounterVec("test_labeled", "help", "a")
		r.CounterVec("test_labeled", "help", "b")
	})
	mustPanic(t, "invalid name", func() { r.Counter("0bad", "help") })
	mustPanic(t, "reserved label", func() { r.CounterVec("test_le", "help", "le") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("test_buckets", "help", []float64{2, 1}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestExpositionGolden pins the exact text format: HELP/TYPE headers,
// label rendering and escaping, cumulative le buckets with +Inf, and
// deterministic family/child ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "Counts a.").Add(3)
	v := r.CounterVec("test_b_total", "Counts b, labeled.", "handler", "code")
	v.With("query", "2xx").Add(2)
	v.With("ingest", "2xx").Inc()
	r.Gauge("test_g", "A gauge with an \"odd\"\nhelp\\string.").Set(1.5)
	h := r.Histogram("test_h", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("test_fn", "A sampled gauge.", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP test_a_total Counts a.",
		"# TYPE test_a_total counter",
		"test_a_total 3",
		"# HELP test_b_total Counts b, labeled.",
		"# TYPE test_b_total counter",
		`test_b_total{handler="ingest",code="2xx"} 1`,
		`test_b_total{handler="query",code="2xx"} 2`,
		"# HELP test_fn A sampled gauge.",
		"# TYPE test_fn gauge",
		"test_fn 42",
		`# HELP test_g A gauge with an "odd"\nhelp\\string.`,
		"# TYPE test_g gauge",
		"test_g 1.5",
		"# HELP test_h A histogram.",
		"# TYPE test_h histogram",
		`test_h_bucket{le="0.1"} 1`,
		`test_h_bucket{le="1"} 2`,
		`test_h_bucket{le="+Inf"} 3`,
		"test_h_sum 2.55",
		"test_h_count 3",
		"",
	}, "\n")
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGatherSampleIDs(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_total", "help", "x").With("a").Inc()
	h := r.Histogram("test_h", "help", []float64{1})
	h.Observe(0.5)
	ids := map[string]float64{}
	for _, s := range r.Gather() {
		ids[s.ID()] = s.Value
	}
	for id, want := range map[string]float64{
		`test_total{x="a"}`:        1,
		`test_h_bucket{le="1"}`:    1,
		`test_h_bucket{le="+Inf"}`: 1,
		"test_h_sum":               0.5,
		"test_h_count":             1,
	} {
		if got, ok := ids[id]; !ok || got != want {
			t.Errorf("sample %q = %v (present=%v), want %v", id, got, ok, want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		3:            "3",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

// TestConcurrencyHammer drives every instrument kind from many
// goroutines while a reader gathers — the -race CI job turns any
// unsynchronized access into a failure, and the totals check that no
// increment was lost.
func TestConcurrencyHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "help")
	v := r.CounterVec("hammer_labeled_total", "help", "worker")
	g := r.Gauge("hammer_gauge", "help")
	h := r.Histogram("hammer_hist", "help", []float64{0.25, 0.5, 0.75})

	const workers = 8
	const perWorker = 5000
	var writers, reader sync.WaitGroup
	stopReads := make(chan struct{})
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
				r.Gather()
				var sb strings.Builder
				_ = r.WriteProm(&sb)
			}
		}
	}()
	labels := []string{"w0", "w1", "w2", "w3"}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			lc := v.With(labels[w%len(labels)])
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lc.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	writers.Wait()
	close(stopReads)
	reader.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != float64(total) {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("hist count = %d, want %d", got, total)
	}
	var labeledTotal int64
	for _, l := range labels {
		labeledTotal += v.With(l).Value()
	}
	if labeledTotal != total {
		t.Errorf("labeled sum = %d, want %d", labeledTotal, total)
	}
}
