// Package obs is the self-observation leg of the serving pipeline: a
// zero-dependency (stdlib-only) metrics subsystem safe to call from the
// ingest hot path, plus Prometheus text-format exposition (expose.go).
//
// The paper's whole premise is that a monitoring system should know its
// own signal quality; a monitor that cannot see itself degrade is the
// exact monitoring-gap-as-failure-signal the estimator exists to catch.
// This package closes that gap for nyquistd: every layer (HTTP, ingest,
// tsdb, WAL, estimator) registers instruments here, GET /metrics
// exposes them, and the self-scrape loop (internal/api) feeds the same
// samples back into nyquistd's own TSDB so alias/flatline detection on
// nyquistd_* series becomes built-in self-health.
//
// Design constraints, in order:
//
//   - Hot-path writes never take a lock. Counter and Gauge are single
//     atomics; Histogram.Observe is a handful of atomics on fixed
//     buckets (no quantile sketches, no allocation). Labeled instruments
//     resolve their label set once (Vec.With) and are cached by the
//     caller; resolution itself is a read-locked map hit.
//
//   - Registration is explicit and panics on conflict. Metric names are
//     config, not data: a name/type collision is a programming error the
//     first request should surface, not silently merge.
//
//   - Reads (exposition, Gather) are consistent enough for monitoring:
//     each sample is an atomic load, but a scrape is not a snapshot —
//     counters scraped mid-batch may disagree transiently. That is the
//     standard Prometheus contract.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type, matching the Prometheus exposition
// TYPE keywords.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing count. The zero value is ready
// to use, but counters obtained from a Registry are what exposition
// sees.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are not hot-path instruments).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: cumulative-on-read bucket
// counts plus a total sum, all atomics. Buckets are chosen at
// registration and never change, so Observe is lock-free: one linear
// scan over ≤ ~16 bounds, two atomic adds, one CAS loop for the sum.
type Histogram struct {
	// bounds are the inclusive upper bounds, strictly increasing; the
	// +Inf bucket is implicit.
	bounds []float64
	// counts[i] counts observations in (bounds[i-1], bounds[i]];
	// counts[len(bounds)] is the +Inf overflow. Non-cumulative in
	// memory, cumulated at exposition.
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the latency
// shorthand used by every timing call site.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets is the default latency histogram layout in seconds:
// 100µs to 10s, roughly log-spaced — wide enough for a group-commit
// fsync and a cold tier-stitched query on the same axis.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets is the default size/count histogram layout: 1 to 100k,
// log-spaced, for batch line counts and fan-out widths.
var SizeBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000}

// family is one registered metric family: a name, a type, a label
// schema, and the children keyed by label values.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
	order    []string // registration order of child keys; sorted at expose

	// fn, when set, makes this a function metric: sampled at read time,
	// no children (reporting existing subsystem counters without
	// double-bookkeeping them).
	fn func() float64
}

// child is one labeled instrument inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family, creating it on first registration and
// panicking when a re-registration disagrees on type or label schema —
// a name collision is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, kind: kind,
			labels:   append([]string(nil), labels...),
			bounds:   bounds,
			children: make(map[string]*child),
		}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind || !equalStrings(f.labels, labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type or label schema", name))
	}
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, nil, nil).child(nil).counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, nil, nil).child(nil).gauge
}

// Histogram registers (or fetches) an unlabeled histogram. A nil
// buckets selects LatencyBuckets. Bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, nil, checkBuckets(name, buckets)).child(nil).hist
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{r.lookup(name, help, KindCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs at least one label", name))
	}
	return &GaugeVec{r.lookup(name, help, KindGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %q needs at least one label", name))
	}
	return &HistogramVec{r.lookup(name, help, KindHistogram, labels, checkBuckets(name, buckets))}
}

// GaugeFunc registers a gauge sampled by fn at read time — the bridge
// for subsystems that already keep their own counters (tsdb.Stats, the
// WAL, the estimator): exposition reports their truth without a second
// bookkeeping path that could drift.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc is GaugeFunc with counter semantics (the sampled value
// must be monotonic; the sampler is trusted).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVec hands out per-label-set counters.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// name, in registration order), creating it on first use. Hot paths
// should call With once and cache the result.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).counter }

// GaugeVec hands out per-label-set gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).gauge }

// HistogramVec hands out per-label-set histograms.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).hist }

// child returns the instrument for the given label values, creating it
// on first use. The read-locked fast path makes repeated resolution
// cheap, but callers on hot paths should still cache the result.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Int64, len(f.bounds)+1)
		c.hist = h
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

func checkBuckets(name string, b []float64) []float64 {
	if b == nil {
		return LatencyBuckets
	}
	for i := 1; i < len(b); i++ {
		if !(b[i] > b[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q buckets must be strictly increasing", name))
		}
	}
	return b
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
