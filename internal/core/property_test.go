package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property tests on the estimator's core invariants, run over randomized
// band-limited signals.

// randBandlimited builds a random sum of bin-aligned tones below maxBin
// cycles per window, n samples at 1 Hz.
func randBandlimited(rng *rand.Rand, n, maxBin int) ([]float64, int) {
	k := 1 + rng.Intn(maxBin)
	nTones := 1 + rng.Intn(4)
	vals := make([]float64, n)
	top := 0
	for tn := 0; tn < nTones; tn++ {
		bin := 1 + rng.Intn(k)
		if bin > top {
			top = bin
		}
		amp := 0.5 + rng.Float64()
		ph := 2 * math.Pi * rng.Float64()
		for i := range vals {
			vals[i] += amp * math.Sin(2*math.Pi*float64(bin)*float64(i)/float64(n)+ph)
		}
	}
	return vals, top
}

func TestEstimatorNeverUnderestimatesTopToneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 1024
		vals, top := randBandlimited(rng, n, 100)
		var e Estimator
		res, err := e.Estimate(uniformFromSamples(vals, time.Second))
		if errors.Is(err, ErrAliased) {
			return true // conservative outcomes are acceptable
		}
		if err != nil {
			return false
		}
		// The cut-off must sit at or above the strongest content... at
		// least, the reported rate must cover the top tone's frequency
		// minus the 1% energy the threshold may legitimately drop.
		// Guarantee checked: never below half the true requirement.
		trueNyquist := 2 * float64(top) / float64(n)
		return res.NyquistRate >= trueNyquist/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorCutoffMonotoneProperty(t *testing.T) {
	// A higher energy cut-off must never yield a lower Nyquist estimate
	// on the same trace.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 1024
		vals, _ := randBandlimited(rng, n, 80)
		for i := range vals {
			vals[i] += 0.01 * rng.NormFloat64()
		}
		u := uniformFromSamples(vals, time.Second)
		prev := 0.0
		for _, cutoff := range []float64{0.5, 0.9, 0.99} {
			e, err := NewEstimator(EstimatorConfig{EnergyCutoff: cutoff})
			if err != nil {
				return false
			}
			res, err := e.Estimate(u)
			if errors.Is(err, ErrAliased) {
				return true // later (higher) cutoffs would also alias
			}
			if err != nil {
				return false
			}
			if res.NyquistRate < prev-1e-12 {
				return false
			}
			prev = res.NyquistRate
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFidelityMonotoneInRateProperty(t *testing.T) {
	// More budget (a higher target rate) must never make reconstruction
	// meaningfully worse.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 2048
		vals, top := randBandlimited(rng, n, 60)
		u := uniformFromSamples(vals, time.Second)
		trueNyquist := 2 * float64(top) / float64(n)
		prevNRMSE := math.Inf(1)
		for _, mult := range []float64{0.3, 1.5, 6} {
			_, fid, err := RoundTrip(u, mult*trueNyquist, ReconstructConfig{})
			if err != nil {
				return false
			}
			if fid.NRMSE > prevNRMSE+0.05 {
				return false
			}
			prevNRMSE = fid.NRMSE
		}
		// At 1.5x the requirement the round trip must be essentially
		// lossless (bin-aligned content, integer-divisible preferred
		// factors).
		_, fid, err := RoundTrip(u, 1.5*trueNyquist, ReconstructConfig{})
		if err != nil {
			return false
		}
		return fid.NRMSE < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingWindowCountProperty(t *testing.T) {
	f := func(winSeed, stepSeed uint8) bool {
		n := 2048
		vals, _ := randBandlimited(rand.New(rand.NewSource(3)), n, 50)
		u := uniformFromSamples(vals, time.Second)
		winSamples := 64 + int(winSeed)%1000
		stepSamples := 1 + int(stepSeed)%500
		win := time.Duration(winSamples) * time.Second
		step := time.Duration(stepSamples) * time.Second
		var e Estimator
		res, err := e.MovingWindow(u, win, step)
		if err != nil {
			return errors.Is(err, ErrTooShort)
		}
		want := (n-winSamples)/stepSamples + 1
		return len(res) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveRateAlwaysBoundedProperty(t *testing.T) {
	f := func(seed int64, initSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := 0.05 + 2*rng.Float64()
		sig := SamplerFunc(func(ts float64) float64 {
			return math.Sin(2 * math.Pi * f1 * ts)
		})
		cfg := AdaptiveConfig{
			InitialRate:   0.1 + float64(initSeed)/32,
			MaxRate:       16,
			MinRate:       0.05,
			EpochDuration: 64,
		}
		a, err := NewAdaptiveSampler(cfg)
		if err != nil {
			return false
		}
		run, err := a.Run(sig, 0, 64*15)
		if err != nil {
			return false
		}
		for _, e := range run.Epochs {
			if e.Rate < cfg.MinRate-1e-12 || e.Rate > cfg.MaxRate+1e-12 {
				return false
			}
			if e.NextRate < cfg.MinRate-1e-12 || e.NextRate > cfg.MaxRate+1e-12 {
				return false
			}
		}
		return run.TotalSamples > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
