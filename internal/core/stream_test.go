package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/series"
)

func dayTrace(t *testing.T, n int, interval time.Duration, noise float64, seed int64) *series.Uniform {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		ts := float64(i) * interval.Seconds()
		vals[i] = 50 +
			5*math.Sin(2*math.Pi*12/86400*ts) +
			2*math.Sin(2*math.Pi*40/86400*ts) +
			noise*rng.NormFloat64()
	}
	u, err := series.NewUniform(time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC), interval, vals)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestStreamMatchesBatch is the equivalence contract: a StreamEstimator
// fed a whole trace produces the same estimate as the batch Estimator
// over that trace, to floating-point accuracy.
func TestStreamMatchesBatch(t *testing.T) {
	u := dayTrace(t, 1440, time.Minute, 0.05, 4)

	var batch Estimator
	want, err := batch.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStreamEstimator(StreamConfig{Interval: time.Minute, WindowSamples: u.Len()})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range u.Values {
		st.Push(v)
	}
	got, err := st.Current()
	if err != nil {
		t.Fatal(err)
	}

	relClose := func(name string, g, w float64) {
		t.Helper()
		if diff := math.Abs(g - w); diff > 1e-9*(1+math.Abs(w)) {
			t.Fatalf("%s: streaming %g, batch %g", name, g, w)
		}
	}
	relClose("NyquistRate", got.NyquistRate, want.NyquistRate)
	relClose("CutoffFreq", got.CutoffFreq, want.CutoffFreq)
	relClose("ReductionRatio", got.ReductionRatio, want.ReductionRatio)
	relClose("EnergyCaptured", got.EnergyCaptured, want.EnergyCaptured)
	if got.Aliased != want.Aliased {
		t.Fatalf("aliased: streaming %v, batch %v", got.Aliased, want.Aliased)
	}
}

// TestStreamMatchesMovingWindow checks the sliding emissions reproduce
// the batch moving-window scan window for window.
func TestStreamMatchesMovingWindow(t *testing.T) {
	const (
		window = 256
		step   = 64
	)
	u := dayTrace(t, 2048, 30*time.Second, 0.02, 11)

	var batch Estimator
	wins, err := batch.MovingWindow(u, window*30*time.Second, step*30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStreamEstimator(StreamConfig{
		Interval:      30 * time.Second,
		WindowSamples: window,
		EmitEvery:     step,
		Start:         u.Start,
	})
	if err != nil {
		t.Fatal(err)
	}
	ups := st.Feed(u.Values)

	if len(ups) != len(wins) {
		t.Fatalf("emissions: streaming %d, batch %d", len(ups), len(wins))
	}
	for i, up := range ups {
		w := wins[i]
		if !up.WindowStart.Equal(w.WindowStart) {
			t.Fatalf("window %d start: streaming %v, batch %v", i, up.WindowStart, w.WindowStart)
		}
		if (up.Err != nil) != (w.Err != nil) {
			t.Fatalf("window %d: streaming err %v, batch err %v", i, up.Err, w.Err)
		}
		if w.Err != nil {
			continue
		}
		if diff := math.Abs(up.Result.NyquistRate - w.Result.NyquistRate); diff > 1e-6*(1+w.Result.NyquistRate) {
			t.Fatalf("window %d rate: streaming %g, batch %g", i, up.Result.NyquistRate, w.Result.NyquistRate)
		}
	}
}

// TestStreamAliasingStreak feeds a signal whose energy sits entirely at
// the top of the analyzed band — the aliased signature — and checks the
// risk signal.
func TestStreamAliasingStreak(t *testing.T) {
	st, err := NewStreamEstimator(StreamConfig{Interval: time.Second, WindowSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	var last *StreamUpdate
	emitted := 0
	for i := 0; i < 200; i++ {
		if up := st.Push(float64(1 - 2*(i%2))); up != nil {
			emitted++
			if !errors.Is(up.Err, ErrAliased) {
				t.Fatalf("emission %d: want ErrAliased, got %v", emitted, up.Err)
			}
			if up.AliasStreak != emitted {
				t.Fatalf("emission %d: streak %d", emitted, up.AliasStreak)
			}
			if up.SuggestedInterval != time.Second/2 {
				t.Fatalf("emission %d: suggested %v, want 500ms", emitted, up.SuggestedInterval)
			}
			last = up
		}
	}
	if last == nil || !last.Result.Aliased {
		t.Fatal("no aliased emissions")
	}
}

// TestStreamSweetSpot checks the suggested interval applies the headroom
// factor to the estimated rate.
func TestStreamSweetSpot(t *testing.T) {
	u := dayTrace(t, 1440, time.Minute, 0, 4)
	st, err := NewStreamEstimator(StreamConfig{Interval: time.Minute, WindowSamples: u.Len(), Headroom: 2})
	if err != nil {
		t.Fatal(err)
	}
	var last *StreamUpdate
	for _, v := range u.Values {
		if up := st.Push(v); up != nil {
			last = up
		}
	}
	if last == nil {
		t.Fatal("no emission after a full window")
	}
	want := time.Duration(float64(time.Second) / (2 * last.Result.NyquistRate))
	if last.SuggestedInterval != want {
		t.Fatalf("suggested %v, want %v", last.SuggestedInterval, want)
	}
}

// TestStreamWarmupAndReset checks nothing is emitted before a full
// window, Current reports ErrTooShort, and Reset restores a fresh state.
func TestStreamWarmupAndReset(t *testing.T) {
	st, err := NewStreamEstimator(StreamConfig{Interval: time.Second, WindowSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 31; i++ {
		if up := st.Push(float64(i)); up != nil {
			t.Fatalf("emission during warmup at push %d", i)
		}
	}
	if _, err := st.Current(); !errors.Is(err, ErrTooShort) {
		t.Fatalf("Current before warm: %v, want ErrTooShort", err)
	}
	if up := st.Push(1); up == nil {
		t.Fatal("no emission at window fill")
	}
	st.Reset()
	if st.Warm() || st.Seen() != 0 {
		t.Fatalf("reset left warm=%v seen=%d", st.Warm(), st.Seen())
	}
	if _, err := st.Current(); !errors.Is(err, ErrTooShort) {
		t.Fatalf("Current after reset: %v, want ErrTooShort", err)
	}
}

// TestStreamPushSteadyStateAllocs checks the non-emitting, non-resync
// push path allocates nothing — the bounded-memory property.
func TestStreamPushSteadyStateAllocs(t *testing.T) {
	st, err := NewStreamEstimator(StreamConfig{
		Interval:      time.Second,
		WindowSamples: 256,
		EmitEvery:     1 << 30,
		ResyncEvery:   1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		st.Push(float64(i % 7))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		st.Push(3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push allocates %v objects per call", allocs)
	}
}

// TestStreamConfigValidation exercises the config error paths.
func TestStreamConfigValidation(t *testing.T) {
	cases := []StreamConfig{
		{}, // missing interval
		{Interval: time.Second, WindowSamples: 8},  // window too short
		{Interval: time.Second, EnergyCutoff: 1.5}, // cutoff out of range
		{Interval: time.Second, AliasedGuard: 2},   // guard above 1
	}
	for i, cfg := range cases {
		if _, err := NewStreamEstimator(cfg); err == nil {
			t.Fatalf("case %d: config %+v accepted", i, cfg)
		}
	}
}
