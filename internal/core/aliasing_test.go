package core

import (
	"errors"
	"math"
	"testing"
)

// twoTone is a Sampler emitting sin at f1 plus a weaker sin at f2.
func twoTone(f1, f2, a2 float64) SamplerFunc {
	return func(t float64) float64 {
		return math.Sin(2*math.Pi*f1*t) + a2*math.Sin(2*math.Pi*f2*t)
	}
}

func TestValidateRatePair(t *testing.T) {
	if err := ValidateRatePair(10, 3.7); err != nil {
		t.Fatalf("10/3.7 should be fine: %v", err)
	}
	if err := ValidateRatePair(10, 5); !errors.Is(err, ErrRateRatio) {
		t.Fatalf("integer ratio err = %v, want ErrRateRatio", err)
	}
	if err := ValidateRatePair(10, 10.01); err == nil {
		t.Fatal("slow >= fast should fail")
	}
	if err := ValidateRatePair(10, 0); err == nil {
		t.Fatal("zero slow rate should fail")
	}
	if err := ValidateRatePair(10, 3.33333); !errors.Is(err, ErrRateRatio) {
		t.Fatalf("near-integer ratio err = %v, want ErrRateRatio", err)
	}
}

func TestSuggestSlowRate(t *testing.T) {
	fast := 7.3
	slow := SuggestSlowRate(fast)
	if err := ValidateRatePair(fast, slow); err != nil {
		t.Fatalf("suggested pair invalid: %v", err)
	}
}

func TestDualRateDetectsAliasing(t *testing.T) {
	// Signal has content at 12 Hz. Slow rate 10 Hz (Nyquist 5 Hz) aliases
	// it; fast rate 37 Hz does not.
	src := twoTone(1, 12, 1)
	d := NewDualRateDetector(DualRateConfig{})
	v, _, err := d.Probe(src, 0, 30, 37, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Aliased {
		t.Fatalf("aliasing not detected, score = %v over %d bins", v.Score, v.ComparedBins)
	}
}

func TestDualRateCleanSignal(t *testing.T) {
	// Content only at 1 Hz: both 37 Hz and 10 Hz sample it faithfully.
	src := twoTone(1, 2, 0.3)
	d := NewDualRateDetector(DualRateConfig{})
	v, _, err := d.Probe(src, 0, 30, 37, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Aliased {
		t.Fatalf("false positive: score = %v over %d bins", v.Score, v.ComparedBins)
	}
}

func TestDualRateIntegerRatioRejected(t *testing.T) {
	d := NewDualRateDetector(DualRateConfig{})
	src := twoTone(1, 2, 0)
	if _, _, err := d.Probe(src, 0, 10, 20, 10); !errors.Is(err, ErrRateRatio) {
		t.Fatalf("err = %v, want ErrRateRatio", err)
	}
}

func TestDualRateShortWindow(t *testing.T) {
	d := NewDualRateDetector(DualRateConfig{})
	if _, err := d.Compare([]float64{1, 2}, 10, []float64{1, 2}, 3.7); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestDualRateDefaultSlowRate(t *testing.T) {
	src := twoTone(0.5, 1, 0.1)
	d := NewDualRateDetector(DualRateConfig{})
	// slowRate <= 0 selects SuggestSlowRate(fast).
	v, cost, err := d.Probe(src, 0, 60, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("probe reported zero cost")
	}
	if v.Aliased {
		t.Fatalf("clean signal flagged: score %v", v.Score)
	}
}

func TestDualRateScoreMonotoneInAliasPower(t *testing.T) {
	// More aliased energy should produce a larger divergence score.
	d := NewDualRateDetector(DualRateConfig{})
	var prev float64 = -1
	for _, amp := range []float64{0, 0.5, 2} {
		src := twoTone(1, 13, amp)
		v, _, err := d.Probe(src, 0, 30, 37, 10)
		if err != nil {
			t.Fatal(err)
		}
		if v.Score < prev-0.02 {
			t.Fatalf("score not monotone: amp=%v score=%v prev=%v", amp, v.Score, prev)
		}
		prev = v.Score
	}
}

func TestDualRateMedianPrefilterSuppressesImpulses(t *testing.T) {
	// A clean slow tone plus rare large glitches. Glitches are broadband
	// and land differently in the two samplings, so the raw comparison
	// may cry aliasing; the §4.1 median pre-filter removes them.
	glitchy := SamplerFunc(func(t float64) float64 {
		v := 10 + 3*math.Sin(2*math.Pi*0.05*t)
		// Deterministic sparse impulses ~2% of samples.
		if k := int(t * 37); k%53 == 0 {
			v += 80
		}
		return v
	})
	raw := NewDualRateDetector(DualRateConfig{})
	filtered := NewDualRateDetector(DualRateConfig{MedianPrefilter: 5})
	vRaw, _, err := raw.Probe(glitchy, 0, 120, 37, 10)
	if err != nil {
		t.Fatal(err)
	}
	vFiltered, _, err := filtered.Probe(glitchy, 0, 120, 37, 10)
	if err != nil {
		t.Fatal(err)
	}
	if vFiltered.Score >= vRaw.Score {
		t.Fatalf("prefilter did not reduce divergence: %v vs %v", vFiltered.Score, vRaw.Score)
	}
	if vFiltered.Aliased {
		t.Fatalf("glitches still read as aliasing after prefilter (score %v)", vFiltered.Score)
	}
}

func TestDualRatePrefilterStillDetectsRealAliasing(t *testing.T) {
	// The pre-filter must not blind the detector to genuine sustained
	// high-frequency content.
	src := twoTone(1, 12, 1.5)
	d := NewDualRateDetector(DualRateConfig{MedianPrefilter: 3})
	v, _, err := d.Probe(src, 0, 30, 37, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Aliased {
		t.Fatalf("real aliasing missed with prefilter on (score %v)", v.Score)
	}
}

func TestDualRateNoiseFiltered(t *testing.T) {
	// Tiny wideband component under the noise floor must not trigger.
	src := SamplerFunc(func(t float64) float64 {
		return math.Sin(2*math.Pi*1*t) + 1e-5*math.Sin(2*math.Pi*11*t)
	})
	d := NewDualRateDetector(DualRateConfig{NoiseFloor: 1e-3})
	v, _, err := d.Probe(src, 0, 30, 37, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Aliased {
		t.Fatalf("noise-level component triggered detection: score %v", v.Score)
	}
}
