package core

import (
	"errors"
	"math"
	"sort"
)

// The paper's "Beyond Nyquist" future work (§6) asks whether fleet
// telemetry is ergodic: are the statistics of one device observed over a
// long window the same as the statistics of the whole fleet observed at
// one instant? Operators assume so implicitly whenever they canary a
// change on a few machines and extrapolate. This file makes the question
// measurable: a Kolmogorov-Smirnov comparison of the temporal
// distribution of each device against the ensemble distribution, plus the
// derived answer to "how long must I observe a canary?".

// KSDistance returns the two-sample Kolmogorov-Smirnov statistic — the
// maximum absolute difference between the empirical CDFs of a and b — in
// [0, 1]. Zero means identical distributions.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("core: KS distance needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Advance both sides through the smallest pending value so ties
		// are consumed together; comparing mid-tie would report a
		// spurious CDF gap.
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// ErgodicityReport summarizes how well time averages substitute for
// ensemble averages across a set of same-metric signals.
type ErgodicityReport struct {
	// PerDevice[i] is the KS distance between device i's temporal
	// distribution and the pooled ensemble distribution.
	PerDevice []float64
	// MeanKS and MaxKS aggregate PerDevice.
	MeanKS, MaxKS float64
	// ErgodicFraction is the share of devices whose KS distance is at
	// or below the threshold used by Ergodic.
	ErgodicFraction float64
	// Threshold is the KS acceptance bound used.
	Threshold float64
}

// Ergodic reports whether the set behaves ergodically at the threshold.
func (r *ErgodicityReport) Ergodic() bool {
	return r.ErgodicFraction >= 0.9
}

// MeasureErgodicity compares each device's sample distribution against
// the pooled ensemble. signals[i] holds device i's samples over the
// observation window (equal sampling assumed). threshold <= 0 selects
// 0.1, a conventional "close enough for canarying" bound.
func MeasureErgodicity(signals [][]float64, threshold float64) (*ErgodicityReport, error) {
	if len(signals) < 2 {
		return nil, errors.New("core: ergodicity needs at least two devices")
	}
	if threshold <= 0 {
		threshold = 0.1
	}
	var pooled []float64
	for _, s := range signals {
		if len(s) == 0 {
			return nil, errors.New("core: empty device signal")
		}
		pooled = append(pooled, s...)
	}
	rep := &ErgodicityReport{Threshold: threshold}
	ok := 0
	for _, s := range signals {
		d, err := KSDistance(s, pooled)
		if err != nil {
			return nil, err
		}
		rep.PerDevice = append(rep.PerDevice, d)
		rep.MeanKS += d
		if d > rep.MaxKS {
			rep.MaxKS = d
		}
		if d <= threshold {
			ok++
		}
	}
	rep.MeanKS /= float64(len(signals))
	rep.ErgodicFraction = float64(ok) / float64(len(signals))
	return rep, nil
}

// CanaryHorizon answers the paper's operational question: how long must a
// single canary device be observed before its time statistics match the
// ensemble? It grows the observation prefix of the canary's samples until
// the KS distance to the ensemble snapshot drops below threshold, and
// returns the number of samples needed (or -1 if the full window never
// converges — a non-ergodic device).
func CanaryHorizon(canary []float64, ensemble []float64, threshold float64) (int, error) {
	if len(canary) == 0 || len(ensemble) == 0 {
		return 0, errors.New("core: canary horizon needs samples")
	}
	if threshold <= 0 {
		threshold = 0.1
	}
	// Grow geometrically: KS of a short prefix is noisy anyway, and the
	// scan stays O(n log n) overall.
	for n := 8; ; n = n * 3 / 2 {
		if n > len(canary) {
			n = len(canary)
		}
		d, err := KSDistance(canary[:n], ensemble)
		if err != nil {
			return 0, err
		}
		if d <= threshold {
			return n, nil
		}
		if n == len(canary) {
			return -1, nil
		}
	}
}
