package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/dsp"
)

// The §4.3 concerns, tested directly: (a) quantization noise must not
// derail Nyquist estimation (the energy threshold discards it), and
// (b) reconstruction plus re-quantization recovers quantized readings.

func TestEstimatorRobustToQuantization(t *testing.T) {
	// Amplitude-5 tone quantized to integers (quantization noise power
	// 1/12 ≈ 0.7% of signal power): the estimate must match the clean
	// trace's.
	const n = 4096
	const f0 = 24.0 / n
	clean := make([]float64, n)
	quantized := make([]float64, n)
	q := &dsp.Quantizer{Step: 1}
	for i := range clean {
		v := 5 * math.Sin(2*math.Pi*f0*float64(i))
		clean[i] = v
		quantized[i] = q.Value(v)
	}
	var e Estimator
	rClean, err := e.Estimate(uniformFromSamples(clean, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rQuant, err := e.Estimate(uniformFromSamples(quantized, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rQuant.NyquistRate-rClean.NyquistRate) > 4*rClean.Spectrum.BinWidth() {
		t.Fatalf("quantized estimate %v vs clean %v", rQuant.NyquistRate, rClean.NyquistRate)
	}
}

func TestEstimatorCoarseQuantizationInflatesOrAliases(t *testing.T) {
	// When the quantum approaches the signal swing, most energy IS
	// quantization noise; the estimator must either inflate the rate or
	// flag the trace — never report a confidently tiny requirement.
	const n = 4096
	const f0 = 8.0 / n
	q := &dsp.Quantizer{Step: 4}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = q.Value(2.2 * math.Sin(2*math.Pi*f0*float64(i)))
	}
	var e Estimator
	res, err := e.Estimate(uniformFromSamples(vals, time.Second))
	if err != nil {
		// Aliased verdict is an acceptable (honest) outcome.
		return
	}
	if res.NyquistRate < 2*f0 {
		t.Fatalf("coarse quantization produced a confident under-estimate: %v < %v", res.NyquistRate, 2*f0)
	}
}

func TestRoundTripQuantizedCounterStyleSignal(t *testing.T) {
	// Integer-quantized slow signal with a large DC offset (counter-rate
	// style): round trip at a safe rate, re-quantize, compare interiors.
	const n = 2048
	q := &dsp.Quantizer{Step: 1}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = q.Value(120 + 30*math.Sin(2*math.Pi*8*float64(i)/n) + 10*math.Sin(2*math.Pi*16*float64(i)/n))
	}
	u := uniformFromSamples(vals, time.Second)
	var e Estimator
	res, err := e.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	_, fid, err := RoundTrip(u, 1.3*res.NyquistRate, ReconstructConfig{QuantStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fid.MaxAbs > 1 {
		t.Fatalf("max error %v, want <= 1 quantum", fid.MaxAbs)
	}
	if fid.CostReduction() < 10 {
		t.Fatalf("cost reduction %v, want substantial", fid.CostReduction())
	}
}

func TestEstimateStepFeedsReconstruction(t *testing.T) {
	// The full §4.3 loop without prior knowledge: detect the quantum
	// from the trace itself, then use it for recovery.
	const n = 2048
	q := &dsp.Quantizer{Step: 0.5}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = q.Value(40 + 8*math.Sin(2*math.Pi*10*float64(i)/n))
	}
	step := dsp.EstimateStep(vals)
	if step != 0.5 {
		t.Fatalf("detected step %v, want 0.5", step)
	}
	u := uniformFromSamples(vals, time.Second)
	var e Estimator
	res, err := e.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	_, fid, err := RoundTrip(u, 1.3*res.NyquistRate, ReconstructConfig{QuantStep: step})
	if err != nil {
		t.Fatal(err)
	}
	if fid.MaxAbs > step {
		t.Fatalf("max error %v above one detected quantum %v", fid.MaxAbs, step)
	}
}
