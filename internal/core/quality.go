package core

import (
	"errors"
	"math"
)

// Fidelity quantifies how well a reconstructed signal matches the original
// — the paper's "quality" side of the cost/quality trade-off (Fig. 6 uses
// the L2 distance).
type Fidelity struct {
	// L2 is the Euclidean distance between the two signals.
	L2 float64
	// RMSE is the root-mean-square error.
	RMSE float64
	// NRMSE is RMSE normalized by the original's range; NaN when the
	// original is constant.
	NRMSE float64
	// MaxAbs is the worst-case pointwise error.
	MaxAbs float64
	// SNRdB is the signal-to-error ratio in decibels; +Inf for an exact
	// match.
	SNRdB float64
	// SamplesBefore and SamplesAfter record the cost side when filled by
	// RoundTrip: original and downsampled sample counts.
	SamplesBefore, SamplesAfter int
}

// CostReduction returns SamplesBefore/SamplesAfter, the factor by which
// the measurement volume shrank (0 when unset).
func (f *Fidelity) CostReduction() float64 {
	if f.SamplesAfter == 0 {
		return 0
	}
	return float64(f.SamplesBefore) / float64(f.SamplesAfter)
}

// ErrLengthMismatch is returned when two signals being compared have
// different lengths.
var ErrLengthMismatch = errors.New("core: signals have different lengths")

// CompareSignals computes fidelity metrics between an original signal and
// its reconstruction. Both must have the same length.
func CompareSignals(original, reconstructed []float64) (*Fidelity, error) {
	if len(original) != len(reconstructed) {
		return nil, ErrLengthMismatch
	}
	if len(original) == 0 {
		return nil, errors.New("core: cannot compare empty signals")
	}
	var sumSqErr, sumSqSig, maxAbs float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range original {
		d := original[i] - reconstructed[i]
		sumSqErr += d * d
		sumSqSig += original[i] * original[i]
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
		if original[i] < lo {
			lo = original[i]
		}
		if original[i] > hi {
			hi = original[i]
		}
	}
	n := float64(len(original))
	f := &Fidelity{
		L2:     math.Sqrt(sumSqErr),
		RMSE:   math.Sqrt(sumSqErr / n),
		MaxAbs: maxAbs,
	}
	if hi > lo {
		f.NRMSE = f.RMSE / (hi - lo)
	} else {
		f.NRMSE = math.NaN()
	}
	if sumSqErr == 0 {
		f.SNRdB = math.Inf(1)
	} else if sumSqSig > 0 {
		f.SNRdB = 10 * math.Log10(sumSqSig/sumSqErr)
	}
	return f, nil
}
