package core

import (
	"time"

	"repro/internal/series"
)

// refEpoch anchors synthetic uniform traces that have no wall-clock
// meaning; only relative spacing matters to the estimator.
var refEpoch = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

// uniformFromSamples wraps raw samples into a Uniform trace starting at
// the reference epoch.
func uniformFromSamples(x []float64, interval time.Duration) *series.Uniform {
	return &series.Uniform{Start: refEpoch, Interval: interval, Values: x}
}
