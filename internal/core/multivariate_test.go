package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/series"
)

func TestEstimateGroupDriver(t *testing.T) {
	var e Estimator
	// Three signals with bin-aligned content at 4, 20, and 10 cycles per
	// window: the 20-cycle one must drive the group rate.
	traces := []*series.Uniform{
		tone(4096, 1, 0, 4.0/4096),
		tone(4096, 1, 0, 20.0/4096),
		tone(4096, 1, 0, 10.0/4096),
	}
	g, err := e.EstimateGroup([]string{"slow", "fast", "mid"}, traces)
	if err != nil {
		t.Fatal(err)
	}
	if g.Driver != 1 {
		t.Fatalf("driver = %d (%s), want 1 (fast)", g.Driver, g.Names[g.Driver])
	}
	want := 2 * 20.0 / 4096
	if math.Abs(g.GroupRate-want) > 3.0/4096 {
		t.Fatalf("group rate = %v, want ~%v", g.GroupRate, want)
	}
	if g.AnyAliased {
		t.Fatal("clean group flagged aliased")
	}
	if red := g.GroupReduction(); red < 50 || red > 150 {
		t.Fatalf("group reduction = %v, want ~100", red)
	}
}

func TestEstimateGroupErrors(t *testing.T) {
	var e Estimator
	if _, err := e.EstimateGroup(nil, nil); err == nil {
		t.Fatal("empty group should fail")
	}
	u := tone(1024, 1, 0, 0.01)
	if _, err := e.EstimateGroup([]string{"a", "b"}, []*series.Uniform{u}); err == nil {
		t.Fatal("name/trace mismatch should fail")
	}
	if _, err := e.EstimateGroup([]string{"a"}, []*series.Uniform{nil}); err == nil {
		t.Fatal("nil trace should fail")
	}
	u2 := &series.Uniform{Start: refEpoch, Interval: 2 * time.Second, Values: u.Values}
	if _, err := e.EstimateGroup([]string{"a", "b"}, []*series.Uniform{u, u2}); err == nil {
		t.Fatal("mixed sample rates should fail")
	}
}

func TestEstimateGroupWithAliasedMember(t *testing.T) {
	var e Estimator
	noise := make([]float64, 1024)
	state := uint64(7)
	for i := range noise {
		state = state*6364136223846793005 + 1442695040888963407
		noise[i] = float64(int64(state)) / math.MaxInt64
	}
	traces := []*series.Uniform{
		tone(1024, 1, 0, 10.0/1024),
		uniformFromSamples(noise, time.Second),
	}
	g, err := e.EstimateGroup([]string{"clean", "noisy"}, traces)
	if err != nil {
		t.Fatal(err)
	}
	if !g.AnyAliased {
		t.Fatal("white-noise member should mark the group aliased")
	}
	if !errors.Is(g.Errs[1], ErrAliased) {
		t.Fatalf("member error = %v, want ErrAliased", g.Errs[1])
	}
	if g.Driver != 0 {
		t.Fatalf("driver = %d, want the measurable member", g.Driver)
	}
}

func TestCrossCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	c, err := CrossCorrelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("corr = %v, want 1", c)
	}
	neg := []float64{4, 3, 2, 1}
	c, _ = CrossCorrelation(a, neg)
	if math.Abs(c+1) > 1e-12 {
		t.Fatalf("corr = %v, want -1", c)
	}
	if _, err := CrossCorrelation(a, []float64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("length mismatch should fail")
	}
	if _, err := CrossCorrelation(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
	c, _ = CrossCorrelation([]float64{5, 5}, []float64{1, 2})
	if !math.IsNaN(c) {
		t.Fatalf("constant input corr = %v, want NaN", c)
	}
}

func TestGroupRoundTripPreservesCorrelation(t *testing.T) {
	// Two phase-locked band-limited signals: correlations must survive a
	// group-rate round trip (the §6 claim).
	n := 4096
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		ph := 2 * math.Pi * 16 * float64(i) / float64(n)
		a[i] = math.Sin(ph) + 0.5*math.Sin(2*ph)
		b[i] = 0.8*math.Sin(ph+0.3) + 0.2*math.Sin(2*ph+1)
	}
	traces := []*series.Uniform{
		uniformFromSamples(a, time.Second),
		uniformFromSamples(b, time.Second),
	}
	groupRate := 2 * 32.0 / float64(n) // covers the 2nd harmonic of both
	worstNRMSE, drift, err := GroupRoundTrip(traces, groupRate, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if worstNRMSE > 1e-6 {
		t.Fatalf("worst NRMSE = %v, want ~0", worstNRMSE)
	}
	if drift > 1e-9 {
		t.Fatalf("correlation drift = %v, want ~0", drift)
	}
}

func TestGroupRoundTripDetectsViolation(t *testing.T) {
	// Downsampling below a member's Nyquist rate must blow the
	// correlation tolerance.
	// The correlation-carrying content lives in the fast component:
	// a = slow + fast, b = slow - fast are uncorrelated at full rate
	// (equal powers cancel) but become perfectly correlated once the
	// fast tone is lost to sub-Nyquist downsampling.
	n := 4096
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		slow := math.Sin(2 * math.Pi * 4 * float64(i) / float64(n))
		fast := math.Sin(2 * math.Pi * 200 * float64(i) / float64(n))
		a[i] = slow + fast
		b[i] = slow - fast
	}
	traces := []*series.Uniform{
		uniformFromSamples(a, time.Second),
		uniformFromSamples(b, time.Second),
	}
	// Group rate covers the slow tone only.
	_, drift, err := GroupRoundTrip(traces, 2*8.0/float64(n), 1, 0.05)
	if err == nil {
		t.Fatalf("expected tolerance violation, drift = %v", drift)
	}
}

func TestGroupRoundTripEmpty(t *testing.T) {
	if _, _, err := GroupRoundTrip(nil, 1, 1, 0); err == nil {
		t.Fatal("empty group should fail")
	}
}
