package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KSDistance(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Fatalf("KS(a, a) = %v, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KSDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.99 {
		t.Fatalf("KS of disjoint supports = %v, want ~1", d)
	}
}

func TestKSDistanceErrors(t *testing.T) {
	if _, err := KSDistance(nil, []float64{1}); err == nil {
		t.Fatal("empty sample should fail")
	}
}

func TestKSDistanceBoundsProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		ca := cleanVals(a)
		cb := cleanVals(b)
		if len(ca) == 0 || len(cb) == 0 {
			return true
		}
		d, err := KSDistance(ca, cb)
		if err != nil {
			return false
		}
		// Symmetric, bounded.
		d2, _ := KSDistance(cb, ca)
		return d >= 0 && d <= 1 && math.Abs(d-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func cleanVals(v []float64) []float64 {
	out := make([]float64, 0, len(v))
	for _, x := range v {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

func TestMeasureErgodicityHomogeneousFleet(t *testing.T) {
	// Devices drawing from the same distribution: ergodic.
	rng := rand.New(rand.NewSource(3))
	signals := make([][]float64, 20)
	for i := range signals {
		s := make([]float64, 500)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		signals[i] = s
	}
	rep, err := MeasureErgodicity(signals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ergodic() {
		t.Fatalf("homogeneous fleet not ergodic: %+v", rep)
	}
	if rep.MeanKS > 0.08 {
		t.Fatalf("mean KS = %v", rep.MeanKS)
	}
}

func TestMeasureErgodicityHeterogeneousFleet(t *testing.T) {
	// Half the devices run 10x hotter: canarying on one device would
	// mislead — not ergodic.
	rng := rand.New(rand.NewSource(4))
	signals := make([][]float64, 20)
	for i := range signals {
		s := make([]float64, 500)
		offset := 0.0
		if i%2 == 0 {
			offset = 10
		}
		for j := range s {
			s[j] = offset + rng.NormFloat64()
		}
		signals[i] = s
	}
	rep, err := MeasureErgodicity(signals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ergodic() {
		t.Fatalf("bimodal fleet reported ergodic: mean KS %v", rep.MeanKS)
	}
	if rep.MaxKS < 0.3 {
		t.Fatalf("max KS = %v, want large", rep.MaxKS)
	}
}

func TestMeasureErgodicityErrors(t *testing.T) {
	if _, err := MeasureErgodicity(nil, 0); err == nil {
		t.Fatal("empty fleet should fail")
	}
	if _, err := MeasureErgodicity([][]float64{{1}}, 0); err == nil {
		t.Fatal("single device should fail")
	}
	if _, err := MeasureErgodicity([][]float64{{1}, {}}, 0); err == nil {
		t.Fatal("empty member should fail")
	}
}

func TestCanaryHorizonConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ensemble := make([]float64, 2000)
	for i := range ensemble {
		ensemble[i] = rng.NormFloat64()
	}
	canary := make([]float64, 2000)
	for i := range canary {
		canary[i] = rng.NormFloat64()
	}
	n, err := CanaryHorizon(canary, ensemble, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n > 500 {
		t.Fatalf("horizon = %d, want quick convergence for iid data", n)
	}
}

func TestCanaryHorizonNeverConverges(t *testing.T) {
	// Canary from a shifted distribution: no observation length helps.
	rng := rand.New(rand.NewSource(6))
	ensemble := make([]float64, 1000)
	canary := make([]float64, 1000)
	for i := range ensemble {
		ensemble[i] = rng.NormFloat64()
		canary[i] = 5 + rng.NormFloat64()
	}
	n, err := CanaryHorizon(canary, ensemble, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Fatalf("horizon = %d, want -1 (non-ergodic)", n)
	}
}

func TestCanaryHorizonErrors(t *testing.T) {
	if _, err := CanaryHorizon(nil, []float64{1}, 0); err == nil {
		t.Fatal("empty canary should fail")
	}
}

func TestDetrendModeString(t *testing.T) {
	cases := map[DetrendMode]string{
		DetrendMean:     "mean",
		DetrendLinear:   "linear",
		DetrendNone:     "none",
		DetrendMode(42): "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestEstimatorLinearDetrendHelpsSubWindowTrend(t *testing.T) {
	// Signal: strong sub-window drift (0.4 cycles/window) plus a weak
	// fast tone. With mean removal the drift's leakage inflates the
	// cut-off; linear detrending should bring the estimate down toward
	// the fast tone's true requirement.
	n := 4096
	vals := make([]float64, n)
	for i := range vals {
		ph := float64(i) / float64(n)
		vals[i] = 50*math.Sin(2*math.Pi*0.4*ph) + math.Sin(2*math.Pi*100*ph)
	}
	u := uniformFromSamples(vals, 1e9) // 1 sample/s
	eMean, _ := NewEstimator(EstimatorConfig{Detrend: DetrendMean})
	eLin, _ := NewEstimator(EstimatorConfig{Detrend: DetrendLinear})
	rMean, err1 := eMean.Estimate(u)
	rLin, err2 := eLin.Estimate(u)
	if err1 != nil || err2 != nil {
		t.Fatalf("estimates failed: %v, %v", err1, err2)
	}
	if rLin.NyquistRate > rMean.NyquistRate {
		t.Fatalf("linear detrend estimate %v above mean-removal estimate %v",
			rLin.NyquistRate, rMean.NyquistRate)
	}
}

func TestEstimatorDetrendNone(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Detrend: DetrendNone})
	if err != nil {
		t.Fatal(err)
	}
	// Raw analysis of a pure tone still works (DC bin is skipped).
	res, err := e.Estimate(tone(1024, 1, 100, 16.0/1024))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 16.0 / 1024
	if math.Abs(res.NyquistRate-want) > 4.0/1024 {
		t.Fatalf("NyquistRate = %v, want ~%v", res.NyquistRate, want)
	}
}
