package core
