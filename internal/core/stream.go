package core

import (
	"time"

	"repro/internal/dsp"
	"repro/internal/series"
)

// StreamConfig parameterizes a StreamEstimator.
type StreamConfig struct {
	// Interval is the spacing of the incoming polls. Required.
	Interval time.Duration
	// WindowSamples is the sliding analysis window length; zero selects
	// 1024. Windows shorter than 16 samples are rejected, matching the
	// batch estimator's minimum.
	WindowSamples int
	// EnergyCutoff is the energy fraction threshold; zero selects
	// DefaultEnergyCutoff. Values must lie in (0, 1].
	EnergyCutoff float64
	// AliasedGuard is the fraction of the analyzed band the cut-off may
	// reach before a window is declared aliased; zero selects 0.95 (see
	// EstimatorConfig.AliasedGuard).
	AliasedGuard float64
	// EmitEvery is the number of pushes between emitted updates once the
	// window is full; zero selects 1 (an update per poll).
	EmitEvery int
	// ResyncEvery is the number of pushes between exact FFT
	// re-derivations of the sliding spectral state; zero selects
	// WindowSamples. The first full window always coincides with a
	// resync, so the first emission is FFT-exact.
	ResyncEvery int
	// Headroom multiplies the estimated Nyquist rate when suggesting a
	// poll interval; zero selects 1.2 (sampling exactly at the critical
	// rate leaves the top component ambiguous).
	Headroom float64
	// Start, when set, anchors update timestamps: sample i is taken to
	// occur at Start + i*Interval.
	Start time.Time
	// EmitSpectrum attaches a copy of the window PSD to each emitted
	// Result. Off by default so the steady-state push path allocates
	// nothing.
	EmitSpectrum bool
}

func (c StreamConfig) withDefaults() (StreamConfig, error) {
	if c.Interval <= 0 {
		return c, series.ErrBadInterval
	}
	if c.WindowSamples == 0 {
		c.WindowSamples = 1024
	}
	if c.WindowSamples < 16 {
		return c, ErrTooShort
	}
	if c.EnergyCutoff == 0 {
		c.EnergyCutoff = DefaultEnergyCutoff
	}
	// Reuse the batch validation for the shared knobs.
	if _, err := (EstimatorConfig{EnergyCutoff: c.EnergyCutoff, AliasedGuard: c.AliasedGuard}).withDefaults(); err != nil {
		return c, err
	}
	if c.AliasedGuard <= 0 {
		c.AliasedGuard = 0.95
	}
	if c.EmitEvery <= 0 {
		c.EmitEvery = 1
	}
	if c.Headroom <= 1 {
		c.Headroom = 1.2
	}
	return c, nil
}

// StreamUpdate is one emission of a streaming estimation: the estimate
// over the window ending at the newest poll, plus the derived operator
// guidance (aliasing risk and sweet-spot poll interval).
type StreamUpdate struct {
	// Index is the zero-based index of the newest sample in the stream.
	Index int64
	// Time is the newest sample's timestamp (zero unless StreamConfig
	// carried a Start).
	Time time.Time
	// WindowStart is the timestamp of the oldest sample in the analyzed
	// window (zero unless StreamConfig carried a Start).
	WindowStart time.Time
	// Result is the estimate over the current window; its fields follow
	// the batch Estimator's Result exactly.
	Result *Result
	// Err is ErrAliased when the window carries the aliased signature,
	// mirroring the batch estimator's contract. The Result is still
	// populated (with Aliased set) so consumers can render the window.
	Err error
	// AliasStreak counts consecutive emitted updates that were aliased,
	// ending with this one — the operator's aliasing-risk signal: a
	// one-window blip is likely noise, a growing streak means the poll
	// rate is genuinely too low.
	AliasStreak int
	// SuggestedInterval is the sweet-spot poll interval: 1/(Headroom ×
	// NyquistRate) for clean windows, half the current interval for
	// aliased ones (the §4.2 move: poll faster until the rate becomes
	// recoverable).
	SuggestedInterval time.Duration
}

// StreamEstimator is the incremental counterpart of Estimator: it
// maintains a sliding-window power spectrum over a live stream of polls
// and re-derives the Nyquist rate, aliasing verdict and sweet-spot
// suggestion in O(window) arithmetic per poll — where re-running the
// batch estimator would cost a full O(N log N) FFT every time. Memory is
// bounded by the window length no matter how long the stream runs.
//
// The spectral state is a sliding DFT (internal/dsp) that is periodically
// re-derived with an exact FFT, so a StreamEstimator's results match the
// batch Estimator (DetrendMean, rectangular window — the paper's §3.2
// configuration) on the same window to floating-point accuracy. The mean
// subtraction batch performs only affects the DC bin under a rectangular
// window, and both estimators exclude DC from the energy budget.
//
// A StreamEstimator is not safe for concurrent use; shard streams across
// estimators instead (fleet.Scanner does exactly that).
type StreamEstimator struct {
	cfg   StreamConfig
	sd    *dsp.SlidingDFT
	power []float64
	freqs []float64
	count int64
	// streak is the current run of consecutive aliased emissions.
	streak int
	// ref is subtracted from every pushed value before it enters the
	// spectral state. Removing a constant only changes the (excluded) DC
	// bin in exact arithmetic, but without it a large offset — counters
	// and gauges ride on them — scatters eps-level FFT rounding noise
	// across all bins, which an exactly-constant signal would then read
	// as a flat (aliased-looking) spectrum. Anchoring to the first
	// sample keeps the analyzed magnitudes small, the same numerical
	// conditioning the batch estimator gets from subtracting the mean.
	ref     float64
	haveRef bool
}

// NewStreamEstimator validates cfg and returns a StreamEstimator.
func NewStreamEstimator(cfg StreamConfig) (*StreamEstimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sd, err := dsp.NewSlidingDFT(c.WindowSamples, c.ResyncEvery)
	if err != nil {
		return nil, err
	}
	s := &StreamEstimator{
		cfg:   c,
		sd:    sd,
		power: make([]float64, sd.Bins()),
		freqs: make([]float64, sd.Bins()),
	}
	fs := 1 / c.Interval.Seconds()
	df := fs / float64(c.WindowSamples)
	for k := range s.freqs {
		s.freqs[k] = float64(k) * df
	}
	return s, nil
}

// SampleRate returns the configured poll rate in hertz.
func (s *StreamEstimator) SampleRate() float64 { return 1 / s.cfg.Interval.Seconds() }

// WindowSamples returns the sliding window length.
func (s *StreamEstimator) WindowSamples() int { return s.cfg.WindowSamples }

// Seen returns the total number of polls pushed so far.
func (s *StreamEstimator) Seen() int64 { return s.count }

// Warm reports whether a full window has been seen, i.e. estimates
// describe real samples only.
func (s *StreamEstimator) Warm() bool { return s.count >= int64(s.cfg.WindowSamples) }

// Reset clears the stream state for reuse on a new signal with the same
// configuration, without reallocating.
func (s *StreamEstimator) Reset() {
	s.sd.Reset()
	s.count = 0
	s.streak = 0
	s.ref = 0
	s.haveRef = false
}

// Push ingests one poll. It returns a non-nil update when the window is
// full and the emission cadence hits, nil otherwise. The steady-state
// path performs O(window) float work and no allocation except for the
// emitted update itself.
func (s *StreamEstimator) Push(v float64) *StreamUpdate {
	if !s.haveRef {
		s.ref = v
		s.haveRef = true
	}
	s.sd.Push(v - s.ref)
	s.count++
	w := int64(s.cfg.WindowSamples)
	if s.count < w || (s.count-w)%int64(s.cfg.EmitEvery) != 0 {
		return nil
	}
	return s.emit()
}

// Feed pushes every value of a trace and returns the emitted updates —
// the streaming replacement for the batch MovingWindow scan.
func (s *StreamEstimator) Feed(values []float64) []StreamUpdate {
	var out []StreamUpdate
	for _, v := range values {
		if up := s.Push(v); up != nil {
			out = append(out, *up)
		}
	}
	return out
}

// Current computes the estimate over the present window without waiting
// for the emission cadence. It returns ErrTooShort until a full window
// has been seen, and ErrAliased (with a populated Result) for windows
// carrying the aliased signature, mirroring the batch Estimate contract.
func (s *StreamEstimator) Current() (*Result, error) {
	if !s.Warm() {
		return nil, ErrTooShort
	}
	res := s.estimate()
	if res.Aliased {
		return res, ErrAliased
	}
	return res, nil
}

// emit builds the cadence-gated update and maintains the alias streak.
func (s *StreamEstimator) emit() *StreamUpdate {
	res := s.estimate()
	up := &StreamUpdate{
		Index:  s.count - 1,
		Result: res,
	}
	if !s.cfg.Start.IsZero() {
		up.Time = s.cfg.Start.Add(time.Duration(up.Index) * s.cfg.Interval)
		up.WindowStart = up.Time.Add(-time.Duration(s.cfg.WindowSamples-1) * s.cfg.Interval)
	}
	if res.Aliased {
		up.Err = ErrAliased
		s.streak++
		up.SuggestedInterval = s.cfg.Interval / 2
	} else {
		s.streak = 0
		if res.NyquistRate > 0 {
			up.SuggestedInterval = time.Duration(float64(time.Second) / (s.cfg.Headroom * res.NyquistRate))
		}
	}
	up.AliasStreak = s.streak
	return up
}

// estimate derives a batch-equivalent Result from the sliding spectrum.
func (s *StreamEstimator) estimate() *Result {
	_ = s.sd.PSDInto(s.power) // length is fixed at construction
	fs := s.SampleRate()
	spec := dsp.Spectrum{Freqs: s.freqs, Power: s.power, SampleRate: fs}
	// DC is excluded from the energy budget, matching the batch
	// estimator's default (DetrendMean / !IncludeDC).
	const startBin = 1
	cutFreq, bin := spec.CumulativeCutoff(s.cfg.EnergyCutoff, startBin)
	res := &Result{
		CutoffFreq:     cutFreq,
		SampleRate:     fs,
		EnergyCaptured: capturedFraction(&spec, startBin, bin),
	}
	if s.cfg.EmitSpectrum {
		res.Spectrum = &dsp.Spectrum{
			Freqs:      append([]float64(nil), s.freqs...),
			Power:      append([]float64(nil), s.power...),
			SampleRate: fs,
		}
	}
	if bin >= len(spec.Power)-1 || cutFreq >= s.cfg.AliasedGuard*fs/2 {
		res.Aliased = true
		return res
	}
	res.NyquistRate = 2 * cutFreq
	if res.NyquistRate > 0 {
		res.ReductionRatio = fs / res.NyquistRate
	} else {
		res.NyquistRate = 2 * spec.BinWidth()
		if res.NyquistRate > 0 {
			res.ReductionRatio = fs / res.NyquistRate
		}
	}
	return res
}
