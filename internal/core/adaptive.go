package core

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Mode is the state of the adaptive sampling loop.
type Mode int

const (
	// Probing means aliasing was detected (or nothing is known yet) and
	// the rate is being increased multiplicatively (§4.2: "While aliasing
	// persists, we remain in probe mode").
	Probing Mode = iota
	// Converged means the current rate passed the dual-rate check and the
	// estimator produced a Nyquist rate the poller now tracks.
	Converged
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Probing:
		return "probing"
	case Converged:
		return "converged"
	default:
		return "unknown"
	}
}

// AdaptiveConfig parameterizes the dynamic sampling method of §4.2.
type AdaptiveConfig struct {
	// InitialRate is the first poll rate tried, in hertz. Required.
	InitialRate float64
	// MinRate and MaxRate bound the adapted rate. MaxRate is required;
	// MinRate defaults to MaxRate/1e6.
	MinRate, MaxRate float64
	// Headroom multiplies the estimated Nyquist rate when setting the
	// poll rate, keeping margin for first-of-their-kind events (§4.2
	// last paragraph). Zero selects 2.
	Headroom float64
	// ProbeFactor is the multiplicative rate increase while aliasing
	// persists. Zero selects 2.
	ProbeFactor float64
	// DecayFactor moves the rate toward a lower measured requirement:
	// newRate = old*DecayFactor + target*(1-DecayFactor). Zero selects
	// 0.5; 1 disables decreases.
	DecayFactor float64
	// DecreaseAfter is how many consecutive windows must measure a lower
	// Nyquist rate before the poll rate is allowed to drop (hysteresis).
	// Zero selects 3.
	DecreaseAfter int
	// EpochDuration is the analysis window length in seconds of signal
	// time. Required.
	EpochDuration float64
	// Memory, when true, remembers the historical maximum Nyquist rate
	// and never lets the poll rate drop below Headroom times it — the
	// paper's "remember previous maximum Nyquist rates to ramp up more
	// quickly" hardened into a floor.
	Memory bool
	// Estimator configures the per-window Nyquist estimation.
	Estimator EstimatorConfig
	// Detector configures dual-rate aliasing checks.
	Detector DualRateConfig
}

func (c AdaptiveConfig) validate() (AdaptiveConfig, error) {
	if !(c.InitialRate > 0) {
		return c, errors.New("core: adaptive sampler needs a positive initial rate")
	}
	if !(c.MaxRate > 0) {
		return c, errors.New("core: adaptive sampler needs a positive max rate")
	}
	if c.MinRate <= 0 {
		c.MinRate = c.MaxRate / 1e6
	}
	if c.MinRate > c.MaxRate {
		return c, fmt.Errorf("core: min rate %v above max rate %v", c.MinRate, c.MaxRate)
	}
	if c.Headroom <= 0 {
		c.Headroom = 2
	}
	if c.ProbeFactor <= 1 {
		c.ProbeFactor = 2
	}
	if c.DecayFactor <= 0 || c.DecayFactor > 1 {
		c.DecayFactor = 0.5
	}
	if c.DecreaseAfter <= 0 {
		c.DecreaseAfter = 3
	}
	if !(c.EpochDuration > 0) {
		return c, errors.New("core: adaptive sampler needs a positive epoch duration")
	}
	return c, nil
}

// Epoch records one adaptation step.
type Epoch struct {
	// Index is the epoch number, starting at 0.
	Index int
	// Start is the signal time at which the epoch began, in seconds.
	Start float64
	// Mode is the state the sampler was in while measuring this epoch.
	Mode Mode
	// Rate is the poll rate used during this epoch, in hertz.
	Rate float64
	// Aliased is the dual-rate verdict for this epoch.
	Aliased bool
	// AliasScore is the spectral divergence score behind Aliased.
	AliasScore float64
	// EstimatedNyquist is the per-window estimate (0 while probing or
	// when estimation failed).
	EstimatedNyquist float64
	// NextRate is the poll rate chosen for the following epoch.
	NextRate float64
	// Samples is the number of measurements spent in this epoch,
	// including the companion slow-rate probe.
	Samples int
}

// RunResult summarizes an adaptive sampling run.
type RunResult struct {
	// Epochs holds one record per adaptation step, in order.
	Epochs []Epoch
	// TotalSamples is the total measurement cost of the run.
	TotalSamples int
	// FinalRate is the poll rate after the last epoch.
	FinalRate float64
	// MaxNyquistSeen is the largest per-window Nyquist estimate.
	MaxNyquistSeen float64
}

// ConvergedRate returns the most common converged-mode rate of the run's
// final third, a stable summary of where the loop settled.
func (r *RunResult) ConvergedRate() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	start := len(r.Epochs) * 2 / 3
	var sum float64
	var n int
	for _, e := range r.Epochs[start:] {
		if e.Mode == Converged {
			sum += e.Rate
			n++
		}
	}
	if n == 0 {
		return r.FinalRate
	}
	return sum / float64(n)
}

// AdaptiveSampler drives the probe/converge/decay loop of §4.2 over a
// signal source.
type AdaptiveSampler struct {
	cfg      AdaptiveConfig
	detector *DualRateDetector
	est      *Estimator

	rate        float64
	mode        Mode
	lowStreak   int
	memoryFloor float64
	maxSeen     float64
}

// NewAdaptiveSampler validates cfg and returns a ready sampler.
func NewAdaptiveSampler(cfg AdaptiveConfig) (*AdaptiveSampler, error) {
	c, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	est, err := NewEstimator(c.Estimator)
	if err != nil {
		return nil, err
	}
	return &AdaptiveSampler{
		cfg:      c,
		detector: NewDualRateDetector(c.Detector),
		est:      est,
		rate:     clamp(c.InitialRate, c.MinRate, c.MaxRate),
		mode:     Probing,
	}, nil
}

// Rate returns the current poll rate in hertz.
func (a *AdaptiveSampler) Rate() float64 { return a.rate }

// Mode returns the current state.
func (a *AdaptiveSampler) Mode() Mode { return a.mode }

// Run advances the sampler over duration seconds of signal time starting
// at start, one epoch per cfg.EpochDuration, and returns the full log.
func (a *AdaptiveSampler) Run(src Sampler, start, duration float64) (*RunResult, error) {
	if src == nil {
		return nil, errors.New("core: nil sampler source")
	}
	if !(duration > 0) {
		return nil, errors.New("core: non-positive run duration")
	}
	res := &RunResult{}
	epochs := int(duration / a.cfg.EpochDuration)
	if epochs < 1 {
		epochs = 1
	}
	for i := 0; i < epochs; i++ {
		e, err := a.Step(src, start+float64(i)*a.cfg.EpochDuration)
		if err != nil {
			return nil, fmt.Errorf("core: epoch %d: %w", i, err)
		}
		e.Index = i
		res.Epochs = append(res.Epochs, *e)
		res.TotalSamples += e.Samples
	}
	res.FinalRate = a.rate
	res.MaxNyquistSeen = a.maxSeen
	return res, nil
}

// Step measures one epoch at the current rate, updates the state machine
// and returns the record. It is exported so pollers can drive the loop on
// live data instead of a closed-form source.
func (a *AdaptiveSampler) Step(src Sampler, start float64) (*Epoch, error) {
	e := &Epoch{Start: start, Mode: a.mode, Rate: a.rate}
	verdict, cost, err := a.detector.Probe(src, start, a.cfg.EpochDuration, a.rate, 0)
	if errors.Is(err, ErrTooShort) {
		// The current rate yields too few samples per epoch to even
		// check for aliasing; treat it like a positive verdict and
		// probe upward, which also fixes the sample count.
		verdict = &Verdict{Aliased: true}
		cost = int(a.cfg.EpochDuration * a.rate)
		err = nil
	}
	if err != nil {
		return nil, err
	}
	e.Samples = cost
	e.Aliased = verdict.Aliased
	e.AliasScore = verdict.Score

	switch {
	case verdict.Aliased:
		// §4.2: multiplicatively increase while aliasing persists.
		a.mode = Probing
		a.lowStreak = 0
		a.setRate(a.rate * a.cfg.ProbeFactor)
	default:
		// No aliasing: the fast-rate window is trustworthy; estimate
		// the Nyquist rate from it (§3.2 method).
		est := a.estimateWindow(src, start)
		e.EstimatedNyquist = est
		if est > 0 {
			if est > a.maxSeen {
				a.maxSeen = est
			}
			if a.cfg.Memory {
				a.memoryFloor = a.cfg.Headroom * a.maxSeen
			}
			target := a.cfg.Headroom * est
			if target >= a.rate {
				a.setRate(target)
				a.lowStreak = 0
			} else {
				a.lowStreak++
				if a.lowStreak >= a.cfg.DecreaseAfter {
					next := a.rate*a.cfg.DecayFactor + target*(1-a.cfg.DecayFactor)
					if a.cfg.Memory && next < a.memoryFloor {
						next = a.memoryFloor
					}
					a.setRate(next)
				}
			}
			a.mode = Converged
		}
	}
	e.NextRate = a.rate
	return e, nil
}

func (a *AdaptiveSampler) estimateWindow(src Sampler, start float64) float64 {
	x := sampleRange(src, start, a.cfg.EpochDuration, a.rate)
	interval := time.Duration(float64(time.Second) / a.rate)
	if interval <= 0 {
		return 0
	}
	u := uniformFromSamples(x, interval)
	res, err := a.est.Estimate(u)
	if err != nil || res.Aliased {
		return 0
	}
	return res.NyquistRate
}

func (a *AdaptiveSampler) setRate(r float64) {
	a.rate = clamp(r, a.cfg.MinRate, a.cfg.MaxRate)
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
