package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dsp"
	"repro/internal/series"
)

// Downsample re-samples a trace to the target rate (hertz) after low-pass
// filtering at the new Nyquist limit, returning the cheaper trace a
// monitoring system would store (§4: "store ... only the measurements that
// are re-sampled at the lower nyquist rate"). The effective rate is the
// nearest integer division of the original rate, never below targetRate.
func Downsample(u *series.Uniform, targetRate float64) (*series.Uniform, error) {
	if u == nil || len(u.Values) == 0 {
		return nil, series.ErrEmpty
	}
	fs := u.SampleRate()
	if !(targetRate > 0) {
		return nil, errors.New("core: target rate must be positive")
	}
	if targetRate >= fs {
		out := make([]float64, len(u.Values))
		copy(out, u.Values)
		return &series.Uniform{Start: u.Start, Interval: u.Interval, Values: out}, nil
	}
	factor := int(math.Floor(fs / targetRate))
	if factor < 1 {
		factor = 1
	}
	vals, err := dsp.DecimateFiltered(u.Values, fs, factor)
	if err != nil {
		return nil, err
	}
	return &series.Uniform{
		Start:    u.Start,
		Interval: time.Duration(factor) * u.Interval,
		Values:   vals,
	}, nil
}

// DownsampleRaw keeps every k-th sample with no anti-alias filter — what a
// poller that simply lowers its rate produces. Safe only when the original
// signal's Nyquist rate is at or below the new rate.
func DownsampleRaw(u *series.Uniform, targetRate float64) (*series.Uniform, error) {
	if u == nil || len(u.Values) == 0 {
		return nil, series.ErrEmpty
	}
	fs := u.SampleRate()
	if !(targetRate > 0) {
		return nil, errors.New("core: target rate must be positive")
	}
	factor := int(math.Floor(fs / targetRate))
	if factor < 1 {
		factor = 1
	}
	vals, err := dsp.Decimate(u.Values, factor)
	if err != nil {
		return nil, err
	}
	return &series.Uniform{
		Start:    u.Start,
		Interval: time.Duration(factor) * u.Interval,
		Values:   vals,
	}, nil
}

// downsampleByFactor is Downsample with an explicit integer decimation
// factor, avoiding floating-point drift in rate-to-factor conversion.
func downsampleByFactor(u *series.Uniform, factor int) (*series.Uniform, error) {
	if factor < 1 {
		factor = 1
	}
	vals, err := dsp.DecimateFiltered(u.Values, u.SampleRate(), factor)
	if err != nil {
		return nil, err
	}
	return &series.Uniform{
		Start:    u.Start,
		Interval: time.Duration(factor) * u.Interval,
		Values:   vals,
	}, nil
}

// ReconstructConfig parameterizes Reconstruct.
type ReconstructConfig struct {
	// QuantStep, when positive, re-quantizes the reconstruction to the
	// sensor's grid, the paper's trick for recovering quantized readings
	// exactly (§4.3).
	QuantStep float64
	// QuantOffset shifts the quantization grid.
	QuantOffset float64
}

// Reconstruct up-samples a (Nyquist-rate) trace back to targetLen samples
// via ideal band-limited interpolation — the operator-side recovery path
// whose fidelity Fig. 6 demonstrates. The result spans the same start time
// with interval scaled accordingly.
func Reconstruct(down *series.Uniform, targetLen int, cfg ReconstructConfig) (*series.Uniform, error) {
	if down == nil || len(down.Values) == 0 {
		return nil, series.ErrEmpty
	}
	if targetLen < len(down.Values) {
		return nil, fmt.Errorf("core: reconstruction target %d below trace length %d", targetLen, len(down.Values))
	}
	vals, err := dsp.UpsampleFFT(down.Values, targetLen)
	if err != nil {
		return nil, err
	}
	if cfg.QuantStep > 0 {
		q := &dsp.Quantizer{Step: cfg.QuantStep, Offset: cfg.QuantOffset}
		vals = q.Apply(vals)
	}
	interval := time.Duration(float64(down.Interval) * float64(len(down.Values)) / float64(targetLen))
	if interval <= 0 {
		interval = 1
	}
	return &series.Uniform{Start: down.Start, Interval: interval, Values: vals}, nil
}

// RoundTrip downsamples u to targetRate and reconstructs it back to the
// original length, returning the reconstruction and the fidelity metrics
// against the original — the exact experiment of Fig. 6.
//
// Reconstruction always runs at an exact integer multiple of the
// downsampled length so that original and reconstructed samples share one
// time grid; the surplus tail (at most factor-1 samples) is trimmed.
// Among the decimation factors satisfying targetRate, RoundTrip prefers
// the largest one that divides the trace length: the decimated window then
// spans exactly the original period, which removes reconstruction leakage
// entirely for window-periodic signals (how Fig. 6 achieves L2 = 0).
func RoundTrip(u *series.Uniform, targetRate float64, cfg ReconstructConfig) (*series.Uniform, *Fidelity, error) {
	if u == nil || len(u.Values) == 0 {
		return nil, nil, series.ErrEmpty
	}
	if !(targetRate > 0) {
		return nil, nil, errors.New("core: target rate must be positive")
	}
	fs := u.SampleRate()
	maxFactor := int(math.Floor(fs / targetRate))
	if maxFactor < 1 {
		maxFactor = 1
	}
	factor := maxFactor
	for d := maxFactor; d >= 1; d-- {
		if len(u.Values)%d == 0 {
			factor = d
			break
		}
	}
	down, err := downsampleByFactor(u, factor)
	if err != nil {
		return nil, nil, err
	}
	gridFactor := 1
	if u.Interval > 0 {
		gridFactor = int(down.Interval / u.Interval)
	}
	if gridFactor < 1 {
		gridFactor = 1
	}
	rec, err := Reconstruct(down, gridFactor*len(down.Values), cfg)
	if err != nil {
		return nil, nil, err
	}
	if len(rec.Values) < len(u.Values) {
		return nil, nil, fmt.Errorf("core: round trip produced %d samples, need %d", len(rec.Values), len(u.Values))
	}
	rec.Values = rec.Values[:len(u.Values)]
	fid, err := CompareSignals(u.Values, rec.Values)
	if err != nil {
		return nil, nil, err
	}
	fid.SamplesBefore = len(u.Values)
	fid.SamplesAfter = len(down.Values)
	return rec, fid, nil
}
