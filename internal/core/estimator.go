// Package core implements the paper's primary contribution: estimating the
// Nyquist rate of monitored signals from their traces (§3.2), detecting
// aliasing with dual-rate sampling (§4.1), adapting the measurement rate
// on-line (§4.2), and reconstructing downsampled signals (§4.3).
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dsp"
	"repro/internal/series"
)

// DefaultEnergyCutoff is the fraction of total signal energy that must be
// captured below the reported cut-off frequency. The paper uses 99 % as a
// workaround for measurement noise (§3.2).
const DefaultEnergyCutoff = 0.99

// ErrAliased is reported when the estimator needs every FFT bin to reach
// the energy cut-off, the paper's signature of an already-aliased trace
// (recorded as −1 in the paper; here a typed error so callers cannot
// mistake it for a rate).
var ErrAliased = errors.New("core: trace appears aliased; Nyquist rate not recoverable")

// ErrTooShort is reported for traces with too few samples for a meaningful
// spectral estimate.
var ErrTooShort = errors.New("core: trace too short for Nyquist estimation")

// DetrendMode selects how the estimator removes the slow offset a
// monitoring window almost always rides on before the FFT.
type DetrendMode int

const (
	// DetrendMean subtracts the mean (the default; equivalent to
	// excluding the DC bin, which a constant offset would otherwise
	// dominate).
	DetrendMean DetrendMode = iota
	// DetrendLinear removes the least-squares line. Windows that cover
	// less than one cycle of a very slow component see it as a ramp
	// whose leakage spreads across all bins; removing the line confines
	// the estimate to content that varies within the window.
	DetrendLinear
	// DetrendNone analyzes the raw samples.
	DetrendNone
)

// String returns the mode name.
func (d DetrendMode) String() string {
	switch d {
	case DetrendMean:
		return "mean"
	case DetrendLinear:
		return "linear"
	case DetrendNone:
		return "none"
	default:
		return "unknown"
	}
}

// EstimatorConfig parameterizes Nyquist-rate estimation.
type EstimatorConfig struct {
	// EnergyCutoff is the energy fraction threshold. Zero selects
	// DefaultEnergyCutoff. Values must lie in (0, 1].
	EnergyCutoff float64
	// IncludeDC counts the DC bin toward the energy budget. The default
	// (false) removes the mean first: counters and gauges carry large
	// constant offsets that would otherwise satisfy any cut-off at bin 0.
	IncludeDC bool
	// Detrend selects the pre-FFT trend removal (ignored when IncludeDC
	// is set). The zero value is DetrendMean, the paper's implicit
	// behaviour; DetrendLinear is the robust choice for windows shorter
	// than the slowest component's period.
	Detrend DetrendMode
	// Window tapers the trace before the FFT; nil means rectangular,
	// matching the paper's plain-FFT method.
	Window dsp.Window
	// Welch, when true, uses Welch's averaged periodogram with
	// WelchSegments segments instead of a single FFT. More robust to
	// noise at the price of frequency resolution.
	Welch bool
	// WelchSegments is the number of (half-overlapping) segments when
	// Welch is set; zero selects 8.
	WelchSegments int
	// MinSamples rejects traces shorter than this; zero selects 16.
	MinSamples int
	// AliasedGuard is the fraction of the analyzed band the cut-off may
	// reach before the trace is declared aliased. The paper's criterion
	// is "all bins needed"; in practice a near-flat spectrum (noise or
	// folded content) parks the cut-off within a hair of the top bin, so
	// any cut-off above AliasedGuard * sampleRate/2 is treated as the
	// aliased signature. Zero selects 0.95; 1 restores the literal
	// all-bins rule.
	AliasedGuard float64
}

func (c EstimatorConfig) withDefaults() (EstimatorConfig, error) {
	if c.EnergyCutoff == 0 {
		c.EnergyCutoff = DefaultEnergyCutoff
	}
	if c.EnergyCutoff <= 0 || c.EnergyCutoff > 1 {
		return c, fmt.Errorf("core: energy cutoff %v outside (0, 1]", c.EnergyCutoff)
	}
	if c.WelchSegments <= 0 {
		c.WelchSegments = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.AliasedGuard <= 0 {
		c.AliasedGuard = 0.95
	}
	if c.AliasedGuard > 1 {
		return c, fmt.Errorf("core: aliased guard %v above 1", c.AliasedGuard)
	}
	return c, nil
}

// Estimator computes Nyquist rates from traces. The zero value uses the
// paper's defaults; construct with NewEstimator to validate a custom
// configuration once.
type Estimator struct {
	cfg EstimatorConfig
}

// NewEstimator validates cfg and returns an Estimator.
func NewEstimator(cfg EstimatorConfig) (*Estimator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: c}, nil
}

// Result reports a Nyquist-rate estimate for one trace.
type Result struct {
	// NyquistRate is twice the energy cut-off frequency, in hertz: the
	// minimum sampling rate that captures the configured energy fraction.
	// Zero when Aliased.
	NyquistRate float64
	// CutoffFreq is the frequency below which the energy fraction is
	// reached, in hertz.
	CutoffFreq float64
	// SampleRate is the rate of the analyzed trace, in hertz.
	SampleRate float64
	// Aliased is true when every FFT bin was needed to reach the energy
	// cut-off — the paper's already-aliased signature (§3.2 step b).
	Aliased bool
	// ReductionRatio is SampleRate / NyquistRate: how much the current
	// rate exceeds the required one (>1 means over-sampling). Zero when
	// Aliased.
	ReductionRatio float64
	// EnergyCaptured is the fraction of in-scope energy at or below
	// CutoffFreq.
	EnergyCaptured float64
	// Spectrum is the PSD the decision was made on.
	Spectrum *dsp.Spectrum
}

// Oversampled reports whether the trace was sampled above its estimated
// Nyquist rate.
func (r *Result) Oversampled() bool {
	return !r.Aliased && r.SampleRate > r.NyquistRate
}

// Estimate analyzes a uniformly sampled trace. When the trace appears
// aliased it returns the populated Result together with ErrAliased.
func (e *Estimator) Estimate(u *series.Uniform) (*Result, error) {
	cfg, err := e.cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if u == nil || len(u.Values) < cfg.MinSamples {
		return nil, ErrTooShort
	}
	fs := u.SampleRate()
	if !(fs > 0) {
		return nil, series.ErrBadInterval
	}
	values := u.Values
	if !cfg.IncludeDC {
		switch cfg.Detrend {
		case DetrendLinear:
			values = dsp.DetrendLinear(values)
		case DetrendNone:
			// Keep raw samples; only the DC bin is skipped below.
		default:
			values = series.Detrend(values)
		}
	}
	var spec *dsp.Spectrum
	if cfg.Welch {
		segLen := len(values) * 2 / (cfg.WelchSegments + 1)
		spec, err = dsp.Welch(values, fs, dsp.WelchConfig{SegmentLen: segLen, Overlap: segLen / 2, Window: cfg.Window})
	} else {
		spec, err = dsp.Periodogram(values, fs, cfg.Window)
	}
	if err != nil {
		return nil, err
	}
	startBin := 1
	if cfg.IncludeDC {
		startBin = 0
	}
	cutFreq, bin := spec.CumulativeCutoff(cfg.EnergyCutoff, startBin)
	res := &Result{
		CutoffFreq:     cutFreq,
		SampleRate:     fs,
		Spectrum:       spec,
		EnergyCaptured: capturedFraction(spec, startBin, bin),
	}
	if bin >= len(spec.Power)-1 || cutFreq >= cfg.AliasedGuard*fs/2 {
		// (Nearly) all bins were needed: the paper concludes the signal
		// is probably already aliased and records -1.
		res.Aliased = true
		return res, ErrAliased
	}
	res.NyquistRate = 2 * cutFreq
	if res.NyquistRate > 0 {
		res.ReductionRatio = fs / res.NyquistRate
	} else {
		// Energy concentrated at (or below) the first analyzed bin: the
		// signal is effectively constant at this resolution. Report the
		// finest measurable rate instead of zero so ratios stay finite.
		res.NyquistRate = 2 * spec.BinWidth()
		if res.NyquistRate > 0 {
			res.ReductionRatio = fs / res.NyquistRate
		}
	}
	return res, nil
}

// EstimateSeries regularizes an irregular trace with nearest-neighbour
// interpolation at its median interval (the paper's pre-cleaning) and then
// estimates its Nyquist rate.
func (e *Estimator) EstimateSeries(s *series.Series) (*Result, error) {
	u, err := s.RegularizeAuto()
	if err != nil {
		return nil, err
	}
	return e.Estimate(u)
}

func capturedFraction(spec *dsp.Spectrum, startBin, bin int) float64 {
	if bin < 0 || startBin < 0 || startBin >= len(spec.Power) {
		return 0
	}
	var total, cum float64
	for k := startBin; k < len(spec.Power); k++ {
		total += spec.Power[k]
		if k <= bin {
			cum += spec.Power[k]
		}
	}
	if total <= 0 {
		return 1
	}
	return cum / total
}

// WindowedResult is one step of a moving-window Nyquist scan (Fig. 7).
type WindowedResult struct {
	// WindowStart is the beginning of the analysis window (the paper's
	// Fig. 7 timestamps mark the beginning of the moving window).
	WindowStart time.Time
	// Result is the estimate over that window; nil when the window was
	// too short.
	Result *Result
	// Err is ErrAliased or a shortness error for degenerate windows.
	Err error
}

// MovingWindow runs the estimator over sliding windows of the given length
// and step, reproducing the paper's Fig. 7 methodology (6 h window, 5 min
// step for the temperature signal).
func (e *Estimator) MovingWindow(u *series.Uniform, window, step time.Duration) ([]WindowedResult, error) {
	if window <= 0 || step <= 0 {
		return nil, series.ErrBadInterval
	}
	if u.Interval <= 0 {
		return nil, series.ErrBadInterval
	}
	winSamples := int(window / u.Interval)
	stepSamples := int(step / u.Interval)
	if stepSamples < 1 {
		stepSamples = 1
	}
	if winSamples < 2 {
		return nil, ErrTooShort
	}
	var out []WindowedResult
	for lo := 0; lo+winSamples <= len(u.Values); lo += stepSamples {
		sub, err := u.Slice(lo, lo+winSamples)
		if err != nil {
			return nil, err
		}
		res, err := e.Estimate(sub)
		out = append(out, WindowedResult{WindowStart: u.TimeAt(lo), Result: res, Err: err})
	}
	if len(out) == 0 {
		return nil, ErrTooShort
	}
	return out, nil
}
