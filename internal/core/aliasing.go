package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dsp"
)

// DualRateConfig parameterizes the Penny-style dual-rate aliasing detector
// (paper §4.1): sample the signal at two rates f1 > f2 whose ratio is not
// an integer; if the spectra disagree below f2/2, content above f2/2 exists
// and sampling at f2 would alias.
type DualRateConfig struct {
	// Tolerance is the normalized spectral-divergence score above which
	// aliasing is declared. Zero selects 0.1.
	Tolerance float64
	// NoiseFloor is the fraction of the strongest bin's power below
	// which a bin is ignored in both spectra, filtering the measurement-
	// noise floor as the paper suggests (§4.1). The floor must be
	// relative to the peak rather than the total: white measurement
	// noise spreads its fixed per-sample power across however many bins
	// the rate yields, so per-bin noise power is rate-dependent and
	// would otherwise register as spurious divergence. Zero selects
	// 5e-3.
	NoiseFloor float64
	// Window tapers both traces before comparison; nil means Hann, which
	// suppresses the leakage differences two different rates inevitably
	// produce.
	Window dsp.Window
	// MedianPrefilter, when >= 3, runs both traces through a sliding
	// median of that window before comparison — the paper's "noise
	// especially of a small amplitude can be filtered using standard
	// techniques" (§4.1). It removes impulsive glitches that would
	// otherwise register as broadband divergence, at the cost of
	// attenuating genuine content near the slow Nyquist limit.
	MedianPrefilter int
}

func (c DualRateConfig) withDefaults() DualRateConfig {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.NoiseFloor <= 0 {
		c.NoiseFloor = 5e-3
	}
	if c.Window == nil {
		c.Window = dsp.Hann{}
	}
	return c
}

// DualRateDetector detects aliasing by comparing spectra measured at two
// sampling rates.
type DualRateDetector struct {
	cfg DualRateConfig
}

// NewDualRateDetector returns a detector with the given configuration.
func NewDualRateDetector(cfg DualRateConfig) *DualRateDetector {
	return &DualRateDetector{cfg: cfg.withDefaults()}
}

// ErrRateRatio is returned when the two sampling rates have an (near-)
// integer ratio, which the method forbids (paper footnote 1: f2 must not be
// a factor of f1, or aliased images land on the same bins in both spectra
// and the comparison is blind).
var ErrRateRatio = errors.New("core: dual-rate sampling requires a non-integer rate ratio")

// ValidateRatePair checks that fast > slow > 0 and fast/slow is not within
// 0.05 of an integer (an absolute margin: what matters physically is how
// far apart the two spectra's alias images land, which is set by the
// fractional part of the ratio regardless of its magnitude).
func ValidateRatePair(fast, slow float64) error {
	if !(slow > 0) || !(fast > slow) {
		return fmt.Errorf("core: need fast > slow > 0, got fast=%v slow=%v", fast, slow)
	}
	ratio := fast / slow
	if math.Abs(ratio-math.Round(ratio)) < 0.05 {
		return ErrRateRatio
	}
	return nil
}

// SuggestSlowRate returns a rate below fast with a safely non-integer
// ratio, suitable as the companion probe rate. The fixed factor 1/φ
// (golden ratio) is maximally far from all rationals with small
// denominators.
func SuggestSlowRate(fast float64) float64 {
	const invPhi = 0.6180339887498949
	return fast * invPhi
}

// Verdict is the outcome of a dual-rate comparison.
type Verdict struct {
	// Aliased is true when the spectra diverge beyond tolerance.
	Aliased bool
	// Score is the normalized divergence in [0, 1]: 0 when the spectra
	// agree exactly below slowRate/2, approaching 1 for total mismatch.
	Score float64
	// ComparedBins is how many frequency bins entered the comparison.
	ComparedBins int
}

// Compare analyzes two traces of the same underlying signal window: fastX
// sampled at fastRate and slowX at slowRate. It returns the aliasing
// verdict for the slow rate.
func (d *DualRateDetector) Compare(fastX []float64, fastRate float64, slowX []float64, slowRate float64) (*Verdict, error) {
	if err := ValidateRatePair(fastRate, slowRate); err != nil {
		return nil, err
	}
	if len(fastX) < 8 || len(slowX) < 8 {
		return nil, ErrTooShort
	}
	cfg := d.cfg
	if cfg.MedianPrefilter >= 3 {
		fastX = dsp.MedianFilter(fastX, cfg.MedianPrefilter)
		slowX = dsp.MedianFilter(slowX, cfg.MedianPrefilter)
	}
	fastSpec, err := dsp.Periodogram(detrendCopy(fastX), fastRate, cfg.Window)
	if err != nil {
		return nil, err
	}
	slowSpec, err := dsp.Periodogram(detrendCopy(slowX), slowRate, cfg.Window)
	if err != nil {
		return nil, err
	}
	// Compare on the slow spectrum's grid, strictly below slowRate/2 with
	// a guard band: the top bins of the slow spectrum always disagree
	// slightly because of leakage.
	limit := slowRate / 2 * 0.9
	floor := cfg.NoiseFloor * math.Max(peakPower(fastSpec), peakPower(slowSpec))
	var num, den float64
	bins := 0
	for k := 1; k < len(slowSpec.Freqs); k++ {
		f := slowSpec.Freqs[k]
		if f >= limit {
			break
		}
		pSlow := slowSpec.Power[k]
		pFast := interpPower(fastSpec, f)
		if pSlow < floor && pFast < floor {
			continue
		}
		num += math.Abs(pSlow - pFast)
		den += pSlow + pFast
		bins++
	}
	v := &Verdict{ComparedBins: bins}
	if den > 0 {
		v.Score = num / den
	}
	v.Aliased = v.Score > cfg.Tolerance
	return v, nil
}

// peakPower returns the strongest non-DC bin power of a spectrum.
func peakPower(s *dsp.Spectrum) float64 {
	var best float64
	for k := 1; k < len(s.Power); k++ {
		if s.Power[k] > best {
			best = s.Power[k]
		}
	}
	return best
}

// interpPower linearly interpolates a spectrum's power at frequency f.
func interpPower(s *dsp.Spectrum, f float64) float64 {
	n := len(s.Freqs)
	if n == 0 {
		return 0
	}
	if f <= s.Freqs[0] {
		return s.Power[0]
	}
	if f >= s.Freqs[n-1] {
		return s.Power[n-1]
	}
	// Uniform grid: locate directly.
	df := s.BinWidth()
	if df <= 0 {
		return s.Power[0]
	}
	pos := f / df
	lo := int(pos)
	if lo >= n-1 {
		return s.Power[n-1]
	}
	frac := pos - float64(lo)
	return s.Power[lo]*(1-frac) + s.Power[lo+1]*frac
}

func detrendCopy(x []float64) []float64 {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - mean
	}
	return out
}

// Sampler produces the value of the underlying continuous signal at an
// absolute time in seconds. The dcsim devices implement it; tests use
// closures.
type Sampler interface {
	// At returns the signal value at time t (seconds).
	At(t float64) float64
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func(t float64) float64

// At implements Sampler.
func (f SamplerFunc) At(t float64) float64 { return f(t) }

// Probe samples src over [start, start+dur) at both fastRate and a
// companion slow rate (SuggestSlowRate when slowRate <= 0) and reports the
// aliasing verdict for the slow rate, together with the number of samples
// spent. This is the measurement step of the adaptive loop (§4.1-4.2).
func (d *DualRateDetector) Probe(src Sampler, start, dur, fastRate, slowRate float64) (*Verdict, int, error) {
	if slowRate <= 0 {
		slowRate = SuggestSlowRate(fastRate)
	}
	fastX := sampleRange(src, start, dur, fastRate)
	slowX := sampleRange(src, start, dur, slowRate)
	v, err := d.Compare(fastX, fastRate, slowX, slowRate)
	if err != nil {
		return nil, 0, err
	}
	return v, len(fastX) + len(slowX), nil
}

func sampleRange(src Sampler, start, dur, rate float64) []float64 {
	n := int(dur * rate)
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = src.At(start + float64(i)/rate)
	}
	return out
}
