package core

import (
	"math"
	"testing"
)

func defaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		InitialRate:   1,
		MaxRate:       256,
		EpochDuration: 64,
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	if _, err := NewAdaptiveSampler(AdaptiveConfig{MaxRate: 1, EpochDuration: 1}); err == nil {
		t.Fatal("missing initial rate should fail")
	}
	if _, err := NewAdaptiveSampler(AdaptiveConfig{InitialRate: 1, EpochDuration: 1}); err == nil {
		t.Fatal("missing max rate should fail")
	}
	if _, err := NewAdaptiveSampler(AdaptiveConfig{InitialRate: 1, MaxRate: 1}); err == nil {
		t.Fatal("missing epoch duration should fail")
	}
	if _, err := NewAdaptiveSampler(AdaptiveConfig{InitialRate: 1, MaxRate: 1, MinRate: 2, EpochDuration: 1}); err == nil {
		t.Fatal("min above max should fail")
	}
}

func TestAdaptiveProbesUpThenConverges(t *testing.T) {
	// Signal with content at 3 Hz. Starting at 1 Hz the sampler must
	// probe upward, then converge near Headroom * 6 Hz = 12 Hz.
	src := twoTone(0.2, 3, 1)
	a, err := NewAdaptiveSampler(defaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(src, 0, 64*40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 40 {
		t.Fatalf("epochs = %d, want 40", len(res.Epochs))
	}
	// Early epochs must probe.
	if res.Epochs[0].Mode != Probing {
		t.Fatal("first epoch should be probing")
	}
	// Rates must have increased at some point.
	sawIncrease := false
	for _, e := range res.Epochs {
		if e.NextRate > e.Rate {
			sawIncrease = true
			break
		}
	}
	if !sawIncrease {
		t.Fatal("sampler never raised its rate")
	}
	// It must end converged with a rate comfortably above 2*3 Hz but far
	// below MaxRate.
	final := res.ConvergedRate()
	if final < 6 || final > 64 {
		t.Fatalf("converged rate = %v, want within [6, 64]", final)
	}
	if res.MaxNyquistSeen < 5 || res.MaxNyquistSeen > 8 {
		t.Fatalf("MaxNyquistSeen = %v, want ~6", res.MaxNyquistSeen)
	}
}

func TestAdaptiveDecreasesAfterQuietPeriod(t *testing.T) {
	// First 10 epochs contain a 3 Hz tone; afterwards only 0.05 Hz.
	var cfg = defaultAdaptiveConfig()
	cfg.InitialRate = 32
	cfg.DecreaseAfter = 2
	cfg.DecayFactor = 0.3
	src := SamplerFunc(func(t float64) float64 {
		v := math.Sin(2 * math.Pi * 0.05 * t)
		if t < 10*cfg.EpochDuration {
			v += math.Sin(2 * math.Pi * 3 * t)
		}
		return v
	})
	a, err := NewAdaptiveSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(src, 0, cfg.EpochDuration*60)
	if err != nil {
		t.Fatal(err)
	}
	busyRate := res.Epochs[9].Rate
	if res.FinalRate >= busyRate/2 {
		t.Fatalf("rate did not decay: busy %v, final %v", busyRate, res.FinalRate)
	}
}

func TestAdaptiveMemoryFloor(t *testing.T) {
	// Same regime change, but Memory keeps the rate near the historical
	// requirement.
	cfg := defaultAdaptiveConfig()
	cfg.InitialRate = 32
	cfg.DecreaseAfter = 2
	cfg.DecayFactor = 0.3
	cfg.Memory = true
	src := SamplerFunc(func(t float64) float64 {
		v := math.Sin(2 * math.Pi * 0.05 * t)
		if t < 10*cfg.EpochDuration {
			v += math.Sin(2 * math.Pi * 3 * t)
		}
		return v
	})
	a, err := NewAdaptiveSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(src, 0, cfg.EpochDuration*60)
	if err != nil {
		t.Fatal(err)
	}
	floor := 2.0 * res.MaxNyquistSeen // Headroom defaults to 2
	if res.FinalRate < floor*0.9 {
		t.Fatalf("memory floor violated: final %v, floor %v", res.FinalRate, floor)
	}
}

func TestAdaptiveRespectsMaxRate(t *testing.T) {
	cfg := defaultAdaptiveConfig()
	cfg.MaxRate = 8
	cfg.EpochDuration = 32
	// Content at 30 Hz can never be resolved below 60 Hz: the sampler
	// must keep probing but saturate at MaxRate.
	src := twoTone(0.1, 30, 1)
	a, err := NewAdaptiveSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(src, 0, 32*20)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.Rate > cfg.MaxRate+1e-9 || e.NextRate > cfg.MaxRate+1e-9 {
			t.Fatalf("rate %v exceeded MaxRate %v", e.Rate, cfg.MaxRate)
		}
	}
}

func TestAdaptiveRunErrors(t *testing.T) {
	a, err := NewAdaptiveSampler(defaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(nil, 0, 100); err == nil {
		t.Fatal("nil source should fail")
	}
	if _, err := a.Run(twoTone(1, 2, 0), 0, 0); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestAdaptiveCostBelowStaticMax(t *testing.T) {
	// The whole point: adapting must cost fewer samples than statically
	// polling at the converged-safe max rate.
	cfg := defaultAdaptiveConfig()
	src := twoTone(0.2, 2, 0.5)
	a, err := NewAdaptiveSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := cfg.EpochDuration * 40
	res, err := a.Run(src, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	staticCost := int(dur * cfg.MaxRate)
	if res.TotalSamples >= staticCost {
		t.Fatalf("adaptive cost %d not below static max cost %d", res.TotalSamples, staticCost)
	}
}

func TestAdaptiveAccessors(t *testing.T) {
	a, err := NewAdaptiveSampler(defaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rate() != 1 {
		t.Fatalf("initial Rate() = %v, want 1", a.Rate())
	}
	if a.Mode() != Probing {
		t.Fatalf("initial Mode() = %v, want Probing", a.Mode())
	}
	if _, err := a.Run(twoTone(0.2, 1, 0.5), 0, 64*5); err != nil {
		t.Fatal(err)
	}
	if a.Rate() <= 0 {
		t.Fatal("Rate() after run should be positive")
	}
}

func TestGroupReductionUnmeasurable(t *testing.T) {
	g := &GroupResult{Driver: -1}
	if g.GroupReduction() != 0 {
		t.Fatal("unmeasurable group reduction should be 0")
	}
}

func TestModeString(t *testing.T) {
	if Probing.String() != "probing" || Converged.String() != "converged" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}
