package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/series"
)

// The paper's "Multivariate signals" future work (§6): applications often
// consume several signals jointly, and their correlations matter. As long
// as every signal is sampled at or above its own Nyquist rate, each can
// be reconstructed exactly, so any joint statistic is preserved. This
// file implements that group analysis: per-signal estimates, the joint
// rate, and a verification that cross-correlations survive a group-rate
// round trip.

// GroupResult is the joint Nyquist analysis of a set of signals.
type GroupResult struct {
	// Names lists the analyzed signals.
	Names []string
	// PerSignal holds each signal's individual estimate (nil entries
	// correspond to estimation errors recorded in Errs).
	PerSignal []*Result
	// Errs holds per-signal estimation errors (ErrAliased etc.).
	Errs []error
	// GroupRate is the rate at which the whole set must be sampled so
	// every member stays above its Nyquist rate: the max over members.
	GroupRate float64
	// Driver is the index of the signal that determines GroupRate.
	Driver int
	// AnyAliased reports whether any member's rate is unrecoverable, in
	// which case GroupRate covers only the measurable members.
	AnyAliased bool
}

// EstimateGroup analyzes a set of equally sampled traces jointly.
// The traces may have different lengths but must share one sample rate —
// the common case of one poller scraping many counters at once.
func (e *Estimator) EstimateGroup(names []string, traces []*series.Uniform) (*GroupResult, error) {
	if len(traces) == 0 {
		return nil, errors.New("core: empty signal group")
	}
	if len(names) != len(traces) {
		return nil, fmt.Errorf("core: %d names for %d traces", len(names), len(traces))
	}
	g := &GroupResult{Names: append([]string(nil), names...), Driver: -1}
	for i, u := range traces {
		if u == nil {
			return nil, fmt.Errorf("core: nil trace %q", names[i])
		}
	}
	rate0 := traces[0].SampleRate()
	for i, u := range traces {
		if math.Abs(u.SampleRate()-rate0) > 1e-9*rate0 {
			return nil, fmt.Errorf("core: trace %q rate %v differs from group rate %v", names[i], u.SampleRate(), rate0)
		}
		res, err := e.Estimate(u)
		g.PerSignal = append(g.PerSignal, res)
		g.Errs = append(g.Errs, err)
		if err != nil || res == nil || res.Aliased {
			g.AnyAliased = g.AnyAliased || errors.Is(err, ErrAliased)
			continue
		}
		if res.NyquistRate > g.GroupRate {
			g.GroupRate = res.NyquistRate
			g.Driver = i
		}
	}
	if g.Driver < 0 && !g.AnyAliased {
		return nil, errors.New("core: no measurable signal in group")
	}
	return g, nil
}

// GroupReduction returns the common reduction ratio available when the
// whole set is downsampled to GroupRate (0 when unmeasurable).
func (g *GroupResult) GroupReduction() float64 {
	if g.GroupRate <= 0 || g.Driver < 0 {
		return 0
	}
	return g.PerSignal[g.Driver].SampleRate / g.GroupRate
}

// CrossCorrelation returns the zero-lag Pearson correlation between two
// equally long signals — the joint statistic multivariate consumers care
// about. NaN when either signal is constant.
func CrossCorrelation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, errors.New("core: empty signals")
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN(), nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// GroupRoundTrip downsamples every member to the group rate (with the
// given headroom factor, >=1) and verifies that each signal reconstructs
// and that every pairwise correlation is preserved within tol. It returns
// the worst per-signal NRMSE and the worst absolute correlation drift —
// the §6 claim made checkable.
func GroupRoundTrip(traces []*series.Uniform, groupRate, headroom, tol float64) (worstNRMSE, worstCorrDrift float64, err error) {
	if len(traces) == 0 {
		return 0, 0, errors.New("core: empty signal group")
	}
	if headroom < 1 {
		headroom = 1
	}
	target := groupRate * headroom
	recs := make([][]float64, len(traces))
	for i, u := range traces {
		rec, fid, err := RoundTrip(u, target, ReconstructConfig{})
		if err != nil {
			return 0, 0, fmt.Errorf("core: group member %d: %w", i, err)
		}
		if fid.NRMSE > worstNRMSE {
			worstNRMSE = fid.NRMSE
		}
		recs[i] = rec.Values
	}
	for i := 0; i < len(traces); i++ {
		for j := i + 1; j < len(traces); j++ {
			na, nb := len(traces[i].Values), len(traces[j].Values)
			n := na
			if nb < n {
				n = nb
			}
			orig, err := CrossCorrelation(traces[i].Values[:n], traces[j].Values[:n])
			if err != nil {
				return 0, 0, err
			}
			rec, err := CrossCorrelation(recs[i][:n], recs[j][:n])
			if err != nil {
				return 0, 0, err
			}
			if math.IsNaN(orig) || math.IsNaN(rec) {
				continue
			}
			if d := math.Abs(orig - rec); d > worstCorrDrift {
				worstCorrDrift = d
			}
		}
	}
	if tol > 0 && worstCorrDrift > tol {
		return worstNRMSE, worstCorrDrift,
			fmt.Errorf("core: correlation drift %v exceeds tolerance %v", worstCorrDrift, tol)
	}
	return worstNRMSE, worstCorrDrift, nil
}
