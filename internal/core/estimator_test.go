package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/series"
)

// tone builds a uniform trace of sum-of-sines at the given frequencies
// (hertz), sampled at rate for n samples, with optional offset.
func tone(n int, rate float64, offset float64, freqs ...float64) *series.Uniform {
	vals := make([]float64, n)
	for i := range vals {
		t := float64(i) / rate
		v := offset
		for j, f := range freqs {
			v += math.Sin(2*math.Pi*f*t+float64(j)) / float64(j+1)
		}
		vals[i] = v
	}
	return uniformFromSamples(vals, time.Duration(float64(time.Second)/rate))
}

func TestEstimateSingleTone(t *testing.T) {
	// 0.01 Hz tone sampled at 1 Hz for 4096 s: Nyquist rate should be
	// ~0.02 Hz and the reduction ratio ~50x.
	var e Estimator
	res, err := e.Estimate(tone(4096, 1, 10, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aliased {
		t.Fatal("clean tone reported aliased")
	}
	if math.Abs(res.NyquistRate-0.02) > 2*res.Spectrum.BinWidth() {
		t.Fatalf("NyquistRate = %v, want ~0.02", res.NyquistRate)
	}
	if res.ReductionRatio < 40 || res.ReductionRatio > 60 {
		t.Fatalf("ReductionRatio = %v, want ~50", res.ReductionRatio)
	}
	if !res.Oversampled() {
		t.Fatal("50x oversampled trace not reported Oversampled")
	}
	if res.EnergyCaptured < 0.99 {
		t.Fatalf("EnergyCaptured = %v, want >= 0.99", res.EnergyCaptured)
	}
}

func TestEstimateTwoTonesUsesHigher(t *testing.T) {
	var e Estimator
	res, err := e.Estimate(tone(8192, 1, 0, 0.01, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NyquistRate-0.2) > 4*res.Spectrum.BinWidth() {
		t.Fatalf("NyquistRate = %v, want ~0.2 (driven by the 0.1 Hz tone)", res.NyquistRate)
	}
}

func TestEstimateWhiteNoiseAliased(t *testing.T) {
	// White noise is flat: 99% of energy needs ~99% of bins, i.e. all of
	// them within rounding -> aliased signature.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	u := uniformFromSamples(vals, time.Second)
	var e Estimator
	res, err := e.Estimate(u)
	if !errors.Is(err, ErrAliased) {
		t.Fatalf("white noise: err = %v, want ErrAliased (res=%+v)", err, res)
	}
	if res == nil || !res.Aliased {
		t.Fatal("aliased result not populated")
	}
	if res.NyquistRate != 0 {
		t.Fatalf("aliased NyquistRate = %v, want 0", res.NyquistRate)
	}
}

func TestEstimateDCOnlyTraceFallsBack(t *testing.T) {
	u := tone(1024, 1, 42) // constant 42
	var e Estimator
	res, err := e.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	// A constant has no content: the estimator reports the finest
	// measurable rate (2 bin widths) rather than zero.
	if res.NyquistRate <= 0 {
		t.Fatalf("constant trace NyquistRate = %v, want > 0", res.NyquistRate)
	}
	if res.ReductionRatio <= 0 {
		t.Fatalf("constant trace ReductionRatio = %v, want > 0", res.ReductionRatio)
	}
}

func TestEstimateIncludeDC(t *testing.T) {
	// With IncludeDC, a large offset dominates and the cutoff sits at
	// bin 0; the fallback still reports a tiny positive rate.
	e, err := NewEstimator(EstimatorConfig{IncludeDC: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Estimate(tone(4096, 1, 1000, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutoffFreq != 0 {
		t.Fatalf("CutoffFreq = %v, want 0 (DC dominates)", res.CutoffFreq)
	}
}

func TestEstimateTooShort(t *testing.T) {
	var e Estimator
	if _, err := e.Estimate(tone(4, 1, 0, 0.1)); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
	if _, err := e.Estimate(nil); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil trace err = %v, want ErrTooShort", err)
	}
}

func TestEstimatorConfigValidation(t *testing.T) {
	if _, err := NewEstimator(EstimatorConfig{EnergyCutoff: 1.5}); err == nil {
		t.Fatal("cutoff > 1 should fail")
	}
	if _, err := NewEstimator(EstimatorConfig{EnergyCutoff: -0.1}); err == nil {
		t.Fatal("negative cutoff should fail")
	}
	e, err := NewEstimator(EstimatorConfig{EnergyCutoff: 0.9, Welch: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(tone(2048, 1, 0, 0.05)); err != nil {
		t.Fatalf("welch estimate failed: %v", err)
	}
}

func TestHigherCutoffRaisesRate(t *testing.T) {
	// The paper: 99.99% would increase the estimated rate vs 99%.
	rng := rand.New(rand.NewSource(8))
	vals := make([]float64, 8192)
	for i := range vals {
		t := float64(i)
		vals[i] = math.Sin(2*math.Pi*0.01*t) + 0.05*rng.NormFloat64()
	}
	u := uniformFromSamples(vals, time.Second)
	e99, _ := NewEstimator(EstimatorConfig{EnergyCutoff: 0.99})
	e9999, _ := NewEstimator(EstimatorConfig{EnergyCutoff: 0.9999})
	r99, err := e99.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	r9999, err := e9999.Estimate(u)
	if err != nil && !errors.Is(err, ErrAliased) {
		t.Fatal(err)
	}
	if !r9999.Aliased && r9999.NyquistRate < r99.NyquistRate {
		t.Fatalf("99.99%% cutoff rate %v below 99%% rate %v", r9999.NyquistRate, r99.NyquistRate)
	}
}

func TestEstimateSeriesIrregular(t *testing.T) {
	// Irregular 60s-ish polling of a slow tone; EstimateSeries must
	// pre-clean and still find the right rate.
	rng := rand.New(rand.NewSource(5))
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	s := &series.Series{}
	const f0 = 1.0 / 3600 // one cycle per hour
	for i := 0; i < 2000; i++ {
		jitter := time.Duration(rng.Intn(10000)-5000) * time.Millisecond
		ts := start.Add(time.Duration(i)*60*time.Second + jitter)
		tsec := ts.Sub(start).Seconds()
		s.AppendValue(ts, math.Sin(2*math.Pi*f0*tsec))
	}
	var e Estimator
	res, err := e.EstimateSeries(s)
	if err != nil {
		t.Fatal(err)
	}
	// Jittered timestamps plus nearest-neighbour regularization spread a
	// little energy upward, so the estimate may exceed the ideal 2*f0 by
	// a modest margin — but never fall below it.
	want := 2 * f0
	if res.NyquistRate < want-res.Spectrum.BinWidth() || res.NyquistRate > 1.6*want {
		t.Fatalf("NyquistRate = %v, want within [%v, %v]", res.NyquistRate, want, 1.6*want)
	}
}

func TestNyquistNeverExceedsSampleRateProperty(t *testing.T) {
	f := func(seed int64, freqSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := 1.0
		f0 := 0.01 + 0.4*float64(freqSeed)/255 // within (0, fs/2)
		n := 1024
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Sin(2*math.Pi*f0*float64(i)/fs) + 0.01*rng.NormFloat64()
		}
		var e Estimator
		res, err := e.Estimate(uniformFromSamples(vals, time.Second))
		if errors.Is(err, ErrAliased) {
			return true
		}
		if err != nil {
			return false
		}
		return res.NyquistRate <= fs+1e-12 && res.NyquistRate > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingWindow(t *testing.T) {
	// Frequency doubles halfway through; windowed estimates must rise.
	const fs = 1.0
	n := 8192
	vals := make([]float64, n)
	for i := range vals {
		ts := float64(i)
		f0 := 0.01
		if i >= n/2 {
			f0 = 0.05
		}
		vals[i] = math.Sin(2 * math.Pi * f0 * ts)
	}
	u := uniformFromSamples(vals, time.Second)
	var e Estimator
	res, err := e.MovingWindow(u, 1024*time.Second, 512*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 10 {
		t.Fatalf("only %d windows", len(res))
	}
	first, last := res[0], res[len(res)-1]
	if first.Err != nil || last.Err != nil {
		t.Fatalf("window errors: %v, %v", first.Err, last.Err)
	}
	if !(last.Result.NyquistRate > 2*first.Result.NyquistRate) {
		t.Fatalf("expected rate growth: first %v, last %v", first.Result.NyquistRate, last.Result.NyquistRate)
	}
	if !first.WindowStart.Equal(u.Start) {
		t.Fatalf("first window start = %v, want %v", first.WindowStart, u.Start)
	}
}

func TestMovingWindowErrors(t *testing.T) {
	u := tone(100, 1, 0, 0.1)
	var e Estimator
	if _, err := e.MovingWindow(u, 0, time.Second); err == nil {
		t.Fatal("want error for zero window")
	}
	if _, err := e.MovingWindow(u, time.Hour, 0); err == nil {
		t.Fatal("want error for zero step")
	}
	if _, err := e.MovingWindow(u, 500*time.Hour, time.Hour); !errors.Is(err, ErrTooShort) {
		t.Fatalf("window longer than trace: err = %v, want ErrTooShort", err)
	}
}
