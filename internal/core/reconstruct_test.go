package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/series"
)

func TestRoundTripBandlimitedIsLossless(t *testing.T) {
	// Band-limited bin-aligned signal at 40/4096 Hz sampled at 1 Hz;
	// downsampling 16x (still above the Nyquist rate) and reconstructing
	// must be essentially exact — Fig. 6's "L2 distance is 0".
	u := tone(4096, 1, 0, 40.0/4096)
	rec, fid, err := RoundTrip(u, 1.0/16, ReconstructConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Values) != len(u.Values) {
		t.Fatalf("reconstruction length %d, want %d", len(rec.Values), len(u.Values))
	}
	if fid.NRMSE > 1e-9 {
		t.Fatalf("NRMSE = %v, want ~0", fid.NRMSE)
	}
	if fid.CostReduction() < 15 {
		t.Fatalf("cost reduction = %v, want ~16x", fid.CostReduction())
	}
}

func TestRoundTripBelowNyquistDegrades(t *testing.T) {
	u := tone(4096, 1, 0, 200.0/4096) // Nyquist rate ~0.098 Hz
	_, good, err := RoundTrip(u, 0.25, ReconstructConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, bad, err := RoundTrip(u, 0.02, ReconstructConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if bad.RMSE <= good.RMSE*10 {
		t.Fatalf("sub-Nyquist RMSE %v not clearly worse than safe RMSE %v", bad.RMSE, good.RMSE)
	}
}

func TestDownsampleInterval(t *testing.T) {
	u := tone(1000, 1, 0, 0.01)
	d, err := Downsample(u, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d.Interval != 4*time.Second {
		t.Fatalf("interval = %v, want 4s", d.Interval)
	}
	if len(d.Values) != 250 {
		t.Fatalf("len = %d, want 250", len(d.Values))
	}
	if !d.Start.Equal(u.Start) {
		t.Fatal("downsample moved the start time")
	}
}

func TestDownsampleAboveRateIsCopy(t *testing.T) {
	u := tone(64, 1, 3, 0.05)
	d, err := Downsample(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Values) != len(u.Values) {
		t.Fatal("copy expected")
	}
	d.Values[0] = 999
	if u.Values[0] == 999 {
		t.Fatal("downsample aliased the input slice")
	}
}

func TestDownsampleErrors(t *testing.T) {
	if _, err := Downsample(nil, 1); !errors.Is(err, series.ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	u := tone(64, 1, 0, 0.05)
	if _, err := Downsample(u, 0); err == nil {
		t.Fatal("zero target rate should fail")
	}
	if _, err := DownsampleRaw(nil, 1); !errors.Is(err, series.ErrEmpty) {
		t.Fatalf("raw err = %v, want ErrEmpty", err)
	}
	if _, err := DownsampleRaw(u, -1); err == nil {
		t.Fatal("negative rate should fail")
	}
}

func TestDownsampleRawKeepsSamples(t *testing.T) {
	u := uniformFromSamples([]float64{0, 1, 2, 3, 4, 5, 6, 7}, time.Second)
	d, err := DownsampleRaw(u, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4, 6}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Fatalf("values = %v, want %v", d.Values, want)
		}
	}
}

func TestReconstructQuantizationRecovery(t *testing.T) {
	// Quantized slow signal: re-quantizing the reconstruction recovers
	// the original readings exactly (paper §4.3 (b)).
	n := 2048
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Round(20 + 5*math.Sin(2*math.Pi*10*float64(i)/float64(n)))
	}
	u := uniformFromSamples(vals, time.Second)
	down, err := Downsample(u, 1.0/16)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(down, n, ReconstructConfig{QuantStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper notes the recovered quantized signal "may be slightly
	// different": quantization noise near a rounding boundary can flip
	// one quantum. Demand interior errors of at most one quantum and
	// exact recovery for the vast majority of samples.
	lo, hi := n/10, 9*n/10
	interior, err := CompareSignals(u.Values[lo:hi], rec.Values[lo:hi])
	if err != nil {
		t.Fatal(err)
	}
	if interior.MaxAbs > 1 {
		t.Fatalf("interior max error %v after re-quantization, want <= 1 quantum", interior.MaxAbs)
	}
	exact := 0
	for i := lo; i < hi; i++ {
		if u.Values[i] == rec.Values[i] {
			exact++
		}
	}
	if frac := float64(exact) / float64(hi-lo); frac < 0.9 {
		t.Fatalf("only %.1f%% of interior samples recovered exactly", 100*frac)
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(nil, 10, ReconstructConfig{}); !errors.Is(err, series.ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	u := tone(64, 1, 0, 0.05)
	if _, err := Reconstruct(u, 10, ReconstructConfig{}); err == nil {
		t.Fatal("shrinking reconstruction should fail")
	}
}

func TestCompareSignals(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	f, err := CompareSignals(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.L2 != 0 || f.RMSE != 0 || f.MaxAbs != 0 {
		t.Fatalf("identical signals: %+v", f)
	}
	if !math.IsInf(f.SNRdB, 1) {
		t.Fatalf("SNR = %v, want +Inf", f.SNRdB)
	}
	b = []float64{2, 2, 3, 4}
	f, err = CompareSignals(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxAbs != 1 || math.Abs(f.L2-1) > 1e-12 {
		t.Fatalf("fidelity = %+v", f)
	}
	if math.Abs(f.NRMSE-0.5/3) > 1e-12 {
		t.Fatalf("NRMSE = %v, want %v", f.NRMSE, 0.5/3)
	}
}

func TestCompareSignalsErrors(t *testing.T) {
	if _, err := CompareSignals([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := CompareSignals(nil, nil); err == nil {
		t.Fatal("empty comparison should fail")
	}
}

func TestCompareSignalsConstantNRMSE(t *testing.T) {
	f, err := CompareSignals([]float64{5, 5}, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.NRMSE) {
		t.Fatalf("NRMSE on constant original = %v, want NaN", f.NRMSE)
	}
}

func TestFidelityCostReductionUnset(t *testing.T) {
	var f Fidelity
	if f.CostReduction() != 0 {
		t.Fatal("unset cost reduction should be 0")
	}
}
