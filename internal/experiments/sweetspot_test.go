package experiments

import (
	"strings"
	"testing"
)

func TestBudgetFrontier(t *testing.T) {
	res, err := RunBudgetFrontier(smallFleet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs < 200 {
		t.Fatalf("usable pairs = %d", res.Pairs)
	}
	// Production must sit far right of the knee — that's the thesis.
	if res.TodayOverSpend < 5 {
		t.Fatalf("production overspend = %vx, want >> 1", res.TodayOverSpend)
	}
	// The curve must reach quality 1 at/after the knee.
	last := res.Points[len(res.Points)-1]
	if last.Quality < 1-1e-9 {
		t.Fatalf("final quality = %v", last.Quality)
	}
	first := res.Points[0]
	if first.Quality > 0.5 {
		t.Fatalf("starved budget quality = %v, want low", first.Quality)
	}
	if out := res.Render(); !strings.Contains(out, "sweet spot") || !strings.Contains(out, "knee") {
		t.Fatal("render incomplete")
	}
}

func TestErgodicityExperiment(t *testing.T) {
	res, err := RunErgodicity(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Homogeneous.Ergodic() {
		t.Fatalf("homogeneous fleet not ergodic: mean KS %v", res.Homogeneous.MeanKS)
	}
	if res.Mixed.Ergodic() {
		t.Fatalf("mixed fleet reported ergodic: mean KS %v", res.Mixed.MeanKS)
	}
	if res.CanarySamples <= 0 {
		t.Fatalf("canary horizon = %d, want positive", res.CanarySamples)
	}
	if res.OutlierCanarySamples != -1 {
		t.Fatalf("outlier canary horizon = %d, want -1", res.OutlierCanarySamples)
	}
	if out := res.Render(); !strings.Contains(out, "ergodic") {
		t.Fatal("render incomplete")
	}
}

func TestMemoryAblation(t *testing.T) {
	res, err := RunMemoryAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	memoryless, withMemory := res.Rows[0], res.Rows[1]
	if memoryless.Memory || !withMemory.Memory {
		t.Fatal("row order wrong")
	}
	if memoryless.Episodes < 3 {
		t.Fatalf("only %d recurrences observed", memoryless.Episodes)
	}
	// The §4.2 claim: memory misses fewer onsets. (It can still miss
	// the earliest recurrences — the floor is only armed once probing
	// has overlapped an episode at an adequate rate.)
	if withMemory.InadequateOnsets >= memoryless.InadequateOnsets {
		t.Fatalf("memory missed %d onsets vs %d memoryless — no benefit",
			withMemory.InadequateOnsets, memoryless.InadequateOnsets)
	}
	if withMemory.InadequateOnsets > 1 {
		t.Fatalf("memory missed %d onsets, want <= 1", withMemory.InadequateOnsets)
	}
	if out := res.Render(); !strings.Contains(out, "memory") {
		t.Fatal("render incomplete")
	}
}

func TestHeadroomAblation(t *testing.T) {
	res, err := RunHeadroomAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Cost must grow with headroom; capture must be monotone too, with
	// the largest headroom covering the 3x event and the smallest not.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].TotalSamples <= res.Rows[i-1].TotalSamples {
			t.Fatalf("cost not increasing with headroom: %+v", res.Rows)
		}
		if res.Rows[i-1].OnsetCaptured && !res.Rows[i].OnsetCaptured {
			t.Fatalf("capture not monotone in headroom: %+v", res.Rows)
		}
	}
	if res.Rows[0].OnsetCaptured {
		t.Fatalf("1x headroom should miss a 3x event onset (rate %v)", res.Rows[0].PreEventRate)
	}
	if !res.Rows[2].OnsetCaptured {
		t.Fatalf("4x headroom should capture a 3x event onset (rate %v)", res.Rows[2].PreEventRate)
	}
	if out := res.Render(); !strings.Contains(out, "headroom") {
		t.Fatal("render incomplete")
	}
}

func TestEstimatorAblation(t *testing.T) {
	res, err := RunEstimatorAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's method must be well calibrated on resolvable devices.
	paper := res.Rows[0]
	if paper.MedianRatio < 0.5 || paper.MedianRatio > 2 {
		t.Fatalf("paper variant median ratio = %v", paper.MedianRatio)
	}
	if paper.WithinFactor2 < 0.7 {
		t.Fatalf("paper variant within-2x = %v", paper.WithinFactor2)
	}
	for _, row := range res.Rows {
		if row.MedianRatio <= 0 {
			t.Fatalf("%s: degenerate ratio", row.Name)
		}
	}
	if out := res.Render(); !strings.Contains(out, "variant") {
		t.Fatal("render incomplete")
	}
}

func TestWindowAblation(t *testing.T) {
	res, err := RunWindowAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The floor halves per doubling; the >=1000x mass must not shrink as
	// the window grows.
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.FloorHz >= prev.FloorHz {
			t.Fatalf("floor did not drop: %v -> %v", prev.FloorHz, cur.FloorHz)
		}
		if cur.FracAbove1000+0.02 < prev.FracAbove1000 {
			t.Fatalf(">=1000x mass shrank with a longer window: %v -> %v",
				prev.FracAbove1000, cur.FracAbove1000)
		}
	}
	if out := res.Render(); !strings.Contains(out, "resolution floor") {
		t.Fatal("render incomplete")
	}
}
