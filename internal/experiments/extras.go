package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dcsim"
	"repro/internal/monitor"
	"repro/internal/report"
)

// DualRateResult quantifies §4.1: the dual-rate detector's verdicts as the
// slow probe rate sweeps across a signal's true Nyquist rate.
type DualRateResult struct {
	// TrueNyquist is the signal's ground-truth Nyquist rate (Hz).
	TrueNyquist float64
	// Rows holds one sweep step each.
	Rows []DualRateRow
	// Correct counts verdicts matching ground truth.
	Correct int
}

// DualRateRow is one step of the sweep.
type DualRateRow struct {
	// SlowRate is the probe rate under test (Hz).
	SlowRate float64
	// ShouldAlias is the ground truth (SlowRate < TrueNyquist).
	ShouldAlias bool
	// Detected is the detector's verdict.
	Detected bool
	// Score is the spectral divergence behind the verdict.
	Score float64
}

// RunDualRate sweeps the slow probe rate across a band-limited signal's
// Nyquist rate and scores the §4.1 detector against ground truth.
func RunDualRate(seed int64) (*DualRateResult, error) {
	rng := rand.New(rand.NewSource(seed + 41))
	const bandLimit = 0.02 // Hz -> Nyquist rate 0.04 Hz
	sig, err := dcsim.NewBandLimited(rng, bandLimit, 5, 10)
	if err != nil {
		return nil, err
	}
	det := core.NewDualRateDetector(core.DualRateConfig{})
	res := &DualRateResult{TrueNyquist: 2 * bandLimit}
	// Fast companion rate: comfortably above Nyquist, non-integer ratios
	// to every slow rate below.
	const fast = 0.367
	for _, slow := range []float64{0.0095, 0.017, 0.031, 0.047, 0.071, 0.11} {
		v, _, err := det.Probe(sig, 0, 6/bandLimit*4, fast, slow)
		if err != nil {
			return nil, fmt.Errorf("experiments: dual-rate at %v Hz: %w", slow, err)
		}
		row := DualRateRow{
			SlowRate:    slow,
			ShouldAlias: slow < res.TrueNyquist,
			Detected:    v.Aliased,
			Score:       v.Score,
		}
		if row.Detected == row.ShouldAlias {
			res.Correct++
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep table.
func (r *DualRateResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.1 dual-rate aliasing detection (true Nyquist rate %s Hz)\n\n", fmtHz(r.TrueNyquist))
	tb := report.NewTable("slow rate (Hz)", "ground truth", "detected", "score")
	for _, row := range r.Rows {
		tb.AddRow(fmtHz(row.SlowRate), verdict(row.ShouldAlias), verdict(row.Detected), fmt.Sprintf("%.3f", row.Score))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\n%d/%d verdicts correct.\n", r.Correct, len(r.Rows))
	return b.String()
}

func verdict(aliased bool) string {
	if aliased {
		return "aliased"
	}
	return "clean"
}

// AdaptiveResult quantifies §4.2 end-to-end: static versus adaptive
// polling cost and fidelity on a device with a mid-run regime change.
type AdaptiveResult struct {
	// Comparison is the cost/quality head-to-head.
	Comparison *monitor.Comparison
	// Epochs is the adaptation trace for rendering.
	Epochs []core.Epoch
}

// RunAdaptive reproduces the §4.2 scenario: a link's FCS-error rate is
// quiet, then a flapping transceiver injects fast oscillations; the
// adaptive poller must probe up during the incident and decay afterwards,
// beating the static poller's cost at comparable fidelity.
func RunAdaptive(seed int64) (*AdaptiveResult, error) {
	rng := rand.New(rand.NewSource(seed + 42))
	dev, err := dcsim.NewDevice("fcs/adaptive", dcsim.FCSErrors, 2e-4, 30*time.Second, rng, uint64(seed)+424)
	if err != nil {
		return nil, err
	}
	const day = 86400.0
	dev.AddBurst(dcsim.Burst{Start: day / 3, Duration: day / 6, Freq: 3e-3, Amp: 25})

	adaptiveCfg := core.AdaptiveConfig{
		InitialRate:   1.0 / 300,
		MaxRate:       1.0 / 15,
		EpochDuration: 2 * 3600,
		DecreaseAfter: 2,
		Memory:        false,
		// 90 % cut-off: per-epoch windows are short and noisy, and the
		// 2x headroom already covers the tail the lower cut-off drops.
		Estimator: core.EstimatorConfig{EnergyCutoff: 0.90},
	}
	cmp, err := monitor.Compare(dev, 0, 24*time.Hour, monitor.CompareConfig{
		StaticInterval: 30 * time.Second,
		Adaptive:       adaptiveCfg,
		ReferenceRate:  1.0 / 15,
		QuantStep:      dev.Profile().QuantStep,
		Model:          monitor.DefaultCostModel(),
	})
	if err != nil {
		return nil, err
	}
	// Re-run the bare sampler to expose the epoch trace.
	sampler, err := core.NewAdaptiveSampler(adaptiveCfg)
	if err != nil {
		return nil, err
	}
	run, err := sampler.Run(dev, 0, day)
	if err != nil {
		return nil, err
	}
	return &AdaptiveResult{Comparison: cmp, Epochs: run.Epochs}, nil
}

// Render prints the cost/quality comparison and the rate trajectory.
func (r *AdaptiveResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.2 adaptive sampling vs production static polling (FCS errors, 1 day, link flap)\n\n")
	c := r.Comparison
	tb := report.NewTable("quantity", "static", "adaptive")
	tb.AddRow("samples", fmt.Sprintf("%d", c.StaticCost.Samples), fmt.Sprintf("%d", c.AdaptiveCost.Samples))
	tb.AddRow("wire bytes", fmt.Sprintf("%.0f", c.StaticCost.WireBytes), fmt.Sprintf("%.0f", c.AdaptiveCost.WireBytes))
	tb.AddRow("cpu units", fmt.Sprintf("%.0f", c.StaticCost.CPUUnits), fmt.Sprintf("%.0f", c.AdaptiveCost.CPUUnits))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nCost reduction: %.1fx; reconstruction NRMSE vs dense reference: %.4f\n",
		c.CostReduction, c.Fidelity.NRMSE)
	pts := make([]report.Point, len(r.Epochs))
	for i, e := range r.Epochs {
		pts[i] = report.Point{X: e.Start / 3600, Y: e.Rate}
	}
	b.WriteByte('\n')
	b.WriteString(report.AsciiPlot{Width: 72, Height: 10, Title: "adaptive poll rate (Hz) vs time (hours)"}.Render(pts))
	return b.String()
}

// CutoffAblation sweeps the energy cut-off (DESIGN.md choice 1) and
// reports the median estimated Nyquist rate and reconstruction error at
// each setting, reproducing the paper's argument for 99 %.
type CutoffAblation struct {
	// Rows holds one cut-off setting each.
	Rows []CutoffRow
}

// CutoffRow is one cut-off setting's outcome.
type CutoffRow struct {
	// Cutoff is the energy fraction.
	Cutoff float64
	// MedianNyquist is the median estimate across devices (Hz).
	MedianNyquist float64
	// MedianReduction is the median reduction ratio.
	MedianReduction float64
	// AliasedFrac is the share of traces declared aliased.
	AliasedFrac float64
	// MedianNRMSE is the median round-trip reconstruction error at the
	// estimated rate.
	MedianNRMSE float64
}

// RunCutoffAblation measures the cut-off's effect on a small fleet.
func RunCutoffAblation(seed int64) (*CutoffAblation, error) {
	fleet, err := dcsim.NewFleet(dcsim.FleetConfig{Seed: seed + 43, TotalPairs: 140, UndersampledFraction: -1})
	if err != nil {
		return nil, err
	}
	out := &CutoffAblation{}
	for _, cutoff := range []float64{0.90, 0.99, 0.9999} {
		est, err := core.NewEstimator(core.EstimatorConfig{EnergyCutoff: cutoff})
		if err != nil {
			return nil, err
		}
		var rates, reductions, errs []float64
		aliased := 0
		total := 0
		for _, d := range fleet.Devices {
			u := d.Trace(start, 0, dcsim.Day)
			total++
			res, err := est.Estimate(u)
			if err != nil || res.Aliased {
				aliased++
				continue
			}
			rates = append(rates, res.NyquistRate)
			reductions = append(reductions, res.ReductionRatio)
			if _, fid, err := core.RoundTrip(u, res.NyquistRate, core.ReconstructConfig{}); err == nil {
				errs = append(errs, fid.NRMSE)
			}
		}
		out.Rows = append(out.Rows, CutoffRow{
			Cutoff:          cutoff,
			MedianNyquist:   report.NewCDF(rates).Quantile(0.5),
			MedianReduction: report.NewCDF(reductions).Quantile(0.5),
			AliasedFrac:     float64(aliased) / float64(total),
			MedianNRMSE:     report.NewCDF(errs).Quantile(0.5),
		})
	}
	return out, nil
}

// Render prints the ablation table.
func (r *CutoffAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: energy cut-off (paper §3.2 picks 99%; 99.99% mostly captures noise)\n\n")
	tb := report.NewTable("cutoff", "median Nyquist (Hz)", "median reduction", "aliased", "median NRMSE")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.4g", row.Cutoff), fmtHz(row.MedianNyquist),
			fmt.Sprintf("%.1fx", row.MedianReduction),
			fmt.Sprintf("%.0f%%", 100*row.AliasedFrac),
			fmt.Sprintf("%.4f", row.MedianNRMSE))
	}
	b.WriteString(tb.String())
	return b.String()
}
