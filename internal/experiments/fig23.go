package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/report"
	"repro/internal/series"
)

// Fig3Variant is one sampled version of the two-tone demonstration signal
// (Figure 3 panels b-d / f-h; Figure 2 is the schematic version of the
// same effect).
type Fig3Variant struct {
	// Label names the panel.
	Label string
	// Rate is the sampling rate in hertz.
	Rate float64
	// PeakFreqs are the two strongest spectral peaks observed (hertz).
	PeakFreqs [2]float64
	// Fidelity compares the reconstruction against the reference signal.
	Fidelity *core.Fidelity
	// Spectrum is the one-sided PSD of the sampled signal.
	Spectrum *dsp.Spectrum
}

// Fig3Result is the data behind Figure 3 (and the quantitative version of
// Figure 2): a 400 Hz + 440 Hz two-tone signal sampled above, slightly
// below, and far below its 880 Hz Nyquist rate.
type Fig3Result struct {
	// ToneA and ToneB are the signal's true components (400, 440 Hz).
	ToneA, ToneB float64
	// ReferenceRate is the dense sampling rate of the ground truth.
	ReferenceRate float64
	// Variants holds the three sampled versions (above / slightly below
	// / far below Nyquist).
	Variants []Fig3Variant
}

// RunFig3 reproduces Figure 3 (the paper's aliasing demonstration): the
// superposition of 400 Hz and 440 Hz sines sampled at 890, 800 and 600 Hz,
// reconstructed and compared against the original.
func RunFig3() (*Fig3Result, error) {
	const (
		toneA, toneB = 400.0, 440.0
		refRate      = 2000.0
		dur          = 2.0 // seconds; both tones bin-aligned
	)
	sig := func(t float64) float64 {
		return math.Sin(2*math.Pi*toneA*t) + math.Sin(2*math.Pi*toneB*t)
	}
	refLen := int(refRate * dur)
	ref := make([]float64, refLen)
	for i := range ref {
		ref[i] = sig(float64(i) / refRate)
	}
	res := &Fig3Result{ToneA: toneA, ToneB: toneB, ReferenceRate: refRate}
	for _, v := range []struct {
		label string
		rate  float64
	}{
		{"above Nyquist (890 Hz)", 890},
		{"slightly below (800 Hz)", 800},
		{"far below (600 Hz)", 600},
	} {
		n := int(v.rate * dur)
		x := make([]float64, n)
		for i := range x {
			x[i] = sig(float64(i) / v.rate)
		}
		spec, err := dsp.Periodogram(x, v.rate, nil)
		if err != nil {
			return nil, err
		}
		p1, p2 := topTwoPeaks(spec)
		u := &series.Uniform{Start: start, Interval: time.Duration(float64(time.Second) / v.rate), Values: x}
		rec, err := core.Reconstruct(u, refLen, core.ReconstructConfig{})
		if err != nil {
			return nil, err
		}
		fid, err := core.CompareSignals(ref, rec.Values)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, Fig3Variant{
			Label:     v.label,
			Rate:      v.rate,
			PeakFreqs: [2]float64{p1, p2},
			Fidelity:  fid,
			Spectrum:  spec,
		})
	}
	return res, nil
}

// topTwoPeaks returns the frequencies of the two strongest non-DC local
// maxima of a spectrum, in ascending frequency order. Maxima below 1e-6 of
// the strongest peak are numerical noise and are ignored; when only one
// significant peak exists (e.g. a tone parked exactly on the folding
// frequency vanishes) it is returned twice.
func topTwoPeaks(s *dsp.Spectrum) (float64, float64) {
	best1, best2 := -1, -1
	for k := 1; k < len(s.Power)-1; k++ {
		if s.Power[k] < s.Power[k-1] || s.Power[k] < s.Power[k+1] {
			continue
		}
		switch {
		case best1 < 0 || s.Power[k] > s.Power[best1]:
			best2 = best1
			best1 = k
		case best2 < 0 || s.Power[k] > s.Power[best2]:
			best2 = k
		}
	}
	if best1 < 0 {
		return 0, 0
	}
	if best2 < 0 || s.Power[best2] < 1e-6*s.Power[best1] {
		return s.Freqs[best1], s.Freqs[best1]
	}
	f1, f2 := s.Freqs[best1], s.Freqs[best2]
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	return f1, f2
}

// Render draws the Fig. 3 summary: observed peaks and reconstruction error
// per sampling rate, plus an ASCII spectrum for each variant.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: %g Hz + %g Hz two-tone signal (Nyquist rate %g Hz)\n\n",
		r.ToneA, r.ToneB, 2*r.ToneB)
	tb := report.NewTable("variant", "rate (Hz)", "observed peaks (Hz)", "reconstruction NRMSE")
	for _, v := range r.Variants {
		tb.AddRow(v.Label,
			fmt.Sprintf("%.0f", v.Rate),
			fmt.Sprintf("%.0f, %.0f", v.PeakFreqs[0], v.PeakFreqs[1]),
			fmt.Sprintf("%.4f", v.Fidelity.NRMSE))
	}
	b.WriteString(tb.String())
	b.WriteString("\nPaper: (b) 890 Hz preserves both tones; (c) 800 Hz and (d) 600 Hz alias them\nto lower image frequencies and distort the reconstruction.\n")
	for _, v := range r.Variants {
		pts := make([]report.Point, len(v.Spectrum.Freqs))
		for i := range pts {
			pts[i] = report.Point{X: v.Spectrum.Freqs[i], Y: v.Spectrum.Power[i]}
		}
		b.WriteByte('\n')
		b.WriteString(report.AsciiPlot{Width: 70, Height: 8, Title: "PSD, " + v.Label}.Render(pts))
	}
	return b.String()
}

// Fig2Result quantifies Figure 2's schematic: where the alias images of a
// tone land when sampling below the Nyquist rate.
type Fig2Result struct {
	// Tone is the signal frequency in hertz.
	Tone float64
	// AboveRate and BelowRate are the two sampling rates.
	AboveRate, BelowRate float64
	// AbovePeak and BelowPeak are the strongest observed frequencies.
	AbovePeak, BelowPeak float64
	// PredictedImage is |Tone - BelowRate| — where folding theory puts
	// the alias.
	PredictedImage float64
}

// RunFig2 demonstrates the aliasing geometry of Figure 2 on a single tone.
func RunFig2() (*Fig2Result, error) {
	const tone = 70.0
	const above, below = 200.0, 100.0
	mk := func(rate float64) (*dsp.Spectrum, error) {
		n := int(rate * 4)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * tone * float64(i) / rate)
		}
		return dsp.Periodogram(x, rate, nil)
	}
	sa, err := mk(above)
	if err != nil {
		return nil, err
	}
	sb, err := mk(below)
	if err != nil {
		return nil, err
	}
	fa, _ := sa.PeakFrequency(1)
	fb, _ := sb.PeakFrequency(1)
	return &Fig2Result{
		Tone: tone, AboveRate: above, BelowRate: below,
		AbovePeak: fa, BelowPeak: fb,
		PredictedImage: math.Abs(tone - below),
	}, nil
}

// Render summarizes the Fig. 2 demonstration.
func (r *Fig2Result) Render() string {
	return fmt.Sprintf(
		"Figure 2: a %g Hz tone sampled at %g Hz appears at %g Hz;\nsampled at %g Hz (below its %g Hz Nyquist rate) it aliases to %g Hz\n(folding theory predicts %g Hz).\n",
		r.Tone, r.AboveRate, r.AbovePeak, r.BelowRate, 2*r.Tone, r.BelowPeak, r.PredictedImage)
}
