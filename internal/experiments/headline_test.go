package experiments

import (
	"testing"

	"repro/internal/dcsim"
)

// TestFullScaleHeadlines runs the census at the paper's full population
// (1613 pairs, seed 1 — the exact configuration EXPERIMENTS.md records)
// and pins the headline statistics to the ranges documented there, so a
// regression in any substrate that would silently change the published
// numbers fails loudly.
func TestFullScaleHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale census skipped in -short mode")
	}
	cfg := FleetConfig{Seed: 1, Pairs: 1613, TraceDuration: dcsim.Day}
	pairs, err := censusFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := summarizeCensus(pairs)
	if c.Pairs != 1613 {
		t.Fatalf("pairs = %d", c.Pairs)
	}
	// EXPERIMENTS.md: 93% over-sampled (paper: 89%).
	if f := c.OversampledFraction(); f < 0.90 || f > 0.96 {
		t.Fatalf("oversampled fraction = %.3f, EXPERIMENTS.md records ~0.93", f)
	}
	if c.Errors != 0 {
		t.Fatalf("estimator rejected %d traces outright", c.Errors)
	}

	// Fig. 4 headline: pooled >=1000x mass ~11% with one-day windows.
	f4, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f4.FracAbove1000 < 0.07 || f4.FracAbove1000 > 0.17 {
		t.Fatalf(">=1000x = %.3f, EXPERIMENTS.md records ~0.11", f4.FracAbove1000)
	}
	if med := f4.Pooled.Quantile(0.5); med < 50 || med > 250 {
		t.Fatalf("pooled median reduction = %.0f, EXPERIMENTS.md records ~111x", med)
	}

	// Fig. 5 headline: temperature max ~3e-3 Hz (the paper's number).
	f5, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f5.TemperatureRange[1] < 2e-3 || f5.TemperatureRange[1] > 4.5e-3 {
		t.Fatalf("temperature max = %v Hz, paper records 3e-3", f5.TemperatureRange[1])
	}
}

// TestFig6Headline pins the Fig. 6 numbers EXPERIMENTS.md records.
func TestFig6Headline(t *testing.T) {
	res, err := RunFig6(Fig6Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity.SamplesAfter != 36 || res.Fidelity.SamplesBefore != 576 {
		t.Fatalf("samples %d/%d, EXPERIMENTS.md records 36/576",
			res.Fidelity.SamplesAfter, res.Fidelity.SamplesBefore)
	}
	if res.Fidelity.L2 > 4 {
		t.Fatalf("L2 = %v, EXPERIMENTS.md records 2.45", res.Fidelity.L2)
	}
	if res.Fidelity.MaxAbs > 0.5+1e-9 {
		t.Fatalf("max error %v exceeds one 0.5 quantum", res.Fidelity.MaxAbs)
	}
}
