package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dcsim"
	"repro/internal/dsp"
	"repro/internal/report"
)

// EstimatorAblation compares estimator variants (DESIGN.md choices 2 and
// 4, plus the Welch option) on the same fleet: plain FFT with mean
// removal (the paper's method), linear detrending, Hann windowing, and
// Welch averaging. Accuracy is scored against the devices' ground-truth
// Nyquist rates — knowable only because the fleet is synthetic.
type EstimatorAblation struct {
	// Rows holds one variant each.
	Rows []EstimatorVariantRow
}

// EstimatorVariantRow is one variant's accuracy summary.
type EstimatorVariantRow struct {
	// Name identifies the variant.
	Name string
	// MedianRatio is the median of estimate/truth across devices (1 is
	// perfect; above 1 over-estimates, wasting samples; below 1
	// under-estimates, risking aliasing).
	MedianRatio float64
	// WithinFactor2 is the share of devices whose estimate lands within
	// 2x of ground truth.
	WithinFactor2 float64
	// AliasedFrac is the share of traces the variant refused.
	AliasedFrac float64
}

// RunEstimatorAblation scores the variants over a 140-pair fleet.
func RunEstimatorAblation(seed int64) (*EstimatorAblation, error) {
	fleet, err := dcsim.NewFleet(dcsim.FleetConfig{Seed: seed + 44, TotalPairs: 140, UndersampledFraction: -1})
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		cfg  core.EstimatorConfig
	}{
		{"paper (FFT, mean removal)", core.EstimatorConfig{}},
		{"linear detrend", core.EstimatorConfig{Detrend: core.DetrendLinear}},
		{"hann window", core.EstimatorConfig{Window: dsp.Hann{}}},
		{"welch (8 segments)", core.EstimatorConfig{Welch: true}},
	}
	out := &EstimatorAblation{}
	for _, v := range variants {
		est, err := core.NewEstimator(v.cfg)
		if err != nil {
			return nil, err
		}
		var ratios []float64
		within := 0
		aliased := 0
		usable := 0
		for _, d := range fleet.Devices {
			// Score only devices whose requirement the one-day window
			// can actually resolve.
			if d.TrueNyquist < 4*2.0/86400 {
				continue
			}
			usable++
			u := d.Trace(start, 0, dcsim.Day)
			res, err := est.Estimate(u)
			if err != nil || res.Aliased {
				aliased++
				continue
			}
			r := res.NyquistRate / d.TrueNyquist
			ratios = append(ratios, r)
			if r >= 0.5 && r <= 2 {
				within++
			}
		}
		row := EstimatorVariantRow{Name: v.name}
		if usable > 0 {
			row.AliasedFrac = float64(aliased) / float64(usable)
			row.WithinFactor2 = float64(within) / float64(usable)
		}
		row.MedianRatio = report.NewCDF(ratios).Quantile(0.5)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the variant comparison.
func (r *EstimatorAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: estimator variants vs ground truth (resolvable devices only)\n\n")
	tb := report.NewTable("variant", "median est/truth", "within 2x", "refused")
	for _, row := range r.Rows {
		tb.AddRow(row.Name,
			fmt.Sprintf("%.2f", row.MedianRatio),
			fmt.Sprintf("%.0f%%", 100*row.WithinFactor2),
			fmt.Sprintf("%.0f%%", 100*row.AliasedFrac))
	}
	b.WriteString(tb.String())
	b.WriteString("\nThe paper's plain method is already well calibrated on harmonic telemetry;\nwindowing/averaging trade a little ratio bias for noise robustness, and\nlinear detrending only matters when windows under-span the slowest cycle.\n")
	return b.String()
}
