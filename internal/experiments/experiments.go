// Package experiments regenerates every figure of the paper's evaluation.
// Each RunFigN function produces the data behind the corresponding figure
// plus a text rendering; cmd/repro drives them and EXPERIMENTS.md records
// paper-reported versus measured values.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dcsim"
)

// FleetConfig parameterizes the fleet-census experiments (Figs. 1, 4, 5).
type FleetConfig struct {
	// Seed makes the synthetic fleet deterministic.
	Seed int64
	// Pairs is the number of metric/device pairs; zero selects the
	// paper's 1613.
	Pairs int
	// TraceDuration is the per-device trace length; zero selects one
	// day, the paper's per-datapoint window.
	TraceDuration time.Duration
	// Estimator configures Nyquist estimation; the zero value is the
	// paper's method (99 % cut-off, plain FFT).
	Estimator core.EstimatorConfig
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Pairs <= 0 {
		c.Pairs = 1613
	}
	if c.TraceDuration <= 0 {
		c.TraceDuration = dcsim.Day
	}
	return c
}

// start is the wall-clock anchor of all experiment traces.
var start = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

// pairResult is the per-device outcome of a fleet census.
type pairResult struct {
	dev *dcsim.Device
	res *core.Result
	err error
}

// censusFleet builds the fleet and estimates every device's Nyquist rate
// from its production trace — the shared measurement pass behind Figs. 1,
// 4 and 5 and the §3.2 aggregate statistics.
func censusFleet(cfg FleetConfig) ([]pairResult, error) {
	cfg = cfg.withDefaults()
	fleet, err := dcsim.NewFleet(dcsim.FleetConfig{Seed: cfg.Seed, TotalPairs: cfg.Pairs})
	if err != nil {
		return nil, err
	}
	est, err := core.NewEstimator(cfg.Estimator)
	if err != nil {
		return nil, err
	}
	out := make([]pairResult, 0, fleet.Len())
	for _, d := range fleet.Devices {
		u := d.Trace(start, 0, cfg.TraceDuration)
		res, err := est.Estimate(u)
		out = append(out, pairResult{dev: d, res: res, err: err})
	}
	return out, nil
}

// Census is the aggregate §3.2 statistics over a fleet measurement pass.
type Census struct {
	// Pairs is the number of metric/device pairs measured.
	Pairs int
	// Oversampled is the count sampling above their estimated Nyquist
	// rate (paper: 89 % of 1613).
	Oversampled int
	// Undersampled is the count at or below it, including aliased
	// traces (paper: ~11 %).
	Undersampled int
	// Aliased is the subset of Undersampled with the aliased signature.
	Aliased int
	// Errors is the count of traces the estimator rejected outright.
	Errors int
}

// OversampledFraction returns Oversampled/Pairs.
func (c Census) OversampledFraction() float64 {
	if c.Pairs == 0 {
		return 0
	}
	return float64(c.Oversampled) / float64(c.Pairs)
}

func summarizeCensus(pairs []pairResult) Census {
	var c Census
	c.Pairs = len(pairs)
	for _, p := range pairs {
		switch {
		case p.res == nil:
			c.Errors++
		case p.res.Aliased:
			c.Aliased++
			c.Undersampled++
		case p.res.Oversampled():
			c.Oversampled++
		default:
			c.Undersampled++
		}
	}
	return c
}

func fmtHz(v float64) string {
	return fmt.Sprintf("%.3g", v)
}
