package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dcsim"
	"repro/internal/monitor"
	"repro/internal/report"
)

// BudgetFrontierResult is the paper's title claim as a curve: fleet-wide
// monitoring quality as a function of the global sampling budget, with
// the sweet spot at the aggregate Nyquist demand.
type BudgetFrontierResult struct {
	// Points is the (budget fraction, quality) curve.
	Points []monitor.FrontierPoint
	// DemandHz is the fleet's aggregate Nyquist demand in samples/s.
	DemandHz float64
	// TodayHz is what the fleet's current ad-hoc rates spend.
	TodayHz float64
	// TodayOverSpend is TodayHz / DemandHz — how far past the knee
	// production operates.
	TodayOverSpend float64
	// Pairs is the number of usable metric/device pairs.
	Pairs int
}

// RunBudgetFrontier estimates every fleet device's Nyquist rate, then
// sweeps a global sample budget through the allocator and traces the
// cost/quality frontier. Production's current spend is marked on the
// curve: it sits far right of the knee, which is the paper's argument in
// one picture.
func RunBudgetFrontier(cfg FleetConfig) (*BudgetFrontierResult, error) {
	pairs, err := censusFleet(cfg)
	if err != nil {
		return nil, err
	}
	var demands []monitor.Demand
	var todayHz float64
	for _, p := range pairs {
		if p.res == nil || p.res.Aliased {
			continue
		}
		demands = append(demands, monitor.Demand{
			ID:          p.dev.ID,
			NyquistRate: p.res.NyquistRate,
		})
		todayHz += p.dev.PollRate()
	}
	if len(demands) == 0 {
		return nil, fmt.Errorf("experiments: no usable devices for the frontier")
	}
	pts, err := monitor.Frontier(demands, 20)
	if err != nil {
		return nil, err
	}
	res := &BudgetFrontierResult{Points: pts, TodayHz: todayHz, Pairs: len(demands)}
	for _, d := range demands {
		res.DemandHz += d.NyquistRate
	}
	if res.DemandHz > 0 {
		res.TodayOverSpend = todayHz / res.DemandHz
	}
	return res, nil
}

// Render draws the frontier with production's position annotated.
func (r *BudgetFrontierResult) Render() string {
	var b strings.Builder
	b.WriteString("Cost vs. quality sweet spot (title experiment)\n\n")
	pts := make([]report.Point, len(r.Points))
	for i, p := range r.Points {
		pts[i] = report.Point{X: p.BudgetFraction, Y: p.Quality}
	}
	b.WriteString(report.AsciiPlot{Width: 70, Height: 12,
		Title: "fleet quality vs budget (x = budget / aggregate Nyquist demand)"}.Render(pts))
	fmt.Fprintf(&b, "\nAggregate Nyquist demand: %.2f samples/s across %d pairs\n", r.DemandHz, r.Pairs)
	fmt.Fprintf(&b, "Production's ad-hoc spend: %.2f samples/s = %.0fx the demand\n", r.TodayHz, r.TodayOverSpend)
	b.WriteString("Quality rises linearly with budget up to the knee at 1.0x (the aggregate\nNyquist rate) and is flat beyond it; everything production spends past the\nknee buys nothing.\n")
	return b.String()
}

// ErgodicityResult is the §6 "Beyond numbers" exploration: does one
// device's history stand in for the fleet (the canarying assumption)?
type ErgodicityResult struct {
	// Homogeneous is the report for a single-population fleet.
	Homogeneous *core.ErgodicityReport
	// Mixed is the report when a minority of devices behaves differently
	// (e.g. one rack near a failing CRAC unit).
	Mixed *core.ErgodicityReport
	// CanarySamples is how many samples one homogeneous device needed
	// before its statistics matched the ensemble.
	CanarySamples int
	// OutlierCanarySamples is -1: an outlier device never converges.
	OutlierCanarySamples int
}

// RunErgodicity measures the ergodicity of simulated temperature fleets
// and the canary-horizon question the paper poses (§6).
func RunErgodicity(seed int64) (*ErgodicityResult, error) {
	const devices = 24
	const samples = 720 // one day of 2-minute polls

	build := func(offset func(i int) float64) ([][]float64, error) {
		out := make([][]float64, devices)
		for i := range out {
			rng := rand.New(rand.NewSource(seed + int64(i)*131))
			dev, err := dcsim.NewDevice(fmt.Sprintf("temp/%02d", i), dcsim.Temperature,
				3e-4, 2*time.Minute, rng, uint64(seed)+uint64(i))
			if err != nil {
				return nil, err
			}
			sig := make([]float64, samples)
			for j := range sig {
				sig[j] = dev.At(float64(j)*120) + offset(i)
			}
			out[i] = sig
		}
		return out, nil
	}

	homo, err := build(func(int) float64 { return 0 })
	if err != nil {
		return nil, err
	}
	homoRep, err := core.MeasureErgodicity(homo, 0.15)
	if err != nil {
		return nil, err
	}
	// A quarter of the fleet runs 15 degrees hotter.
	mixed, err := build(func(i int) float64 {
		if i%4 == 0 {
			return 15
		}
		return 0
	})
	if err != nil {
		return nil, err
	}
	mixedRep, err := core.MeasureErgodicity(mixed, 0.15)
	if err != nil {
		return nil, err
	}

	ensemble := flatten(homo)
	canary, err := core.CanaryHorizon(homo[1], ensemble, 0.15)
	if err != nil {
		return nil, err
	}
	outlier, err := core.CanaryHorizon(mixed[0], flatten(mixed[1:]), 0.15)
	if err != nil {
		return nil, err
	}
	return &ErgodicityResult{
		Homogeneous:          homoRep,
		Mixed:                mixedRep,
		CanarySamples:        canary,
		OutlierCanarySamples: outlier,
	}, nil
}

func flatten(sig [][]float64) []float64 {
	var out []float64
	for _, s := range sig {
		out = append(out, s...)
	}
	return out
}

// Render prints the ergodicity comparison.
func (r *ErgodicityResult) Render() string {
	var b strings.Builder
	b.WriteString("§6 ergodicity: does one device's history stand in for the fleet?\n\n")
	tb := report.NewTable("fleet", "mean KS", "max KS", "ergodic devices", "verdict")
	tb.AddRow("homogeneous", fmt.Sprintf("%.3f", r.Homogeneous.MeanKS),
		fmt.Sprintf("%.3f", r.Homogeneous.MaxKS),
		fmt.Sprintf("%.0f%%", 100*r.Homogeneous.ErgodicFraction), verdictErgodic(r.Homogeneous))
	tb.AddRow("25% hot outliers", fmt.Sprintf("%.3f", r.Mixed.MeanKS),
		fmt.Sprintf("%.3f", r.Mixed.MaxKS),
		fmt.Sprintf("%.0f%%", 100*r.Mixed.ErgodicFraction), verdictErgodic(r.Mixed))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nCanary horizon (homogeneous fleet): %d samples until one device's statistics\nmatch the ensemble.\n", r.CanarySamples)
	if r.OutlierCanarySamples < 0 {
		b.WriteString("Canary horizon (outlier device): never — extrapolating from it would mislead,\nwhich is the paper's warning about the implicit ergodicity assumption.\n")
	} else {
		fmt.Fprintf(&b, "Canary horizon (outlier device): %d samples.\n", r.OutlierCanarySamples)
	}
	return b.String()
}

func verdictErgodic(r *core.ErgodicityReport) string {
	if r.Ergodic() {
		return "ergodic"
	}
	return "NOT ergodic"
}

// WindowAblation quantifies the one-day resolution floor EXPERIMENTS.md
// documents: longer analysis windows resolve slower signals and unlock
// larger reduction ratios.
type WindowAblation struct {
	// Rows holds one trace-length setting each.
	Rows []WindowRow
}

// WindowRow is one window-length setting.
type WindowRow struct {
	// Days is the trace length.
	Days int
	// MedianReduction is the pooled median reduction ratio.
	MedianReduction float64
	// FracAbove1000 is the pooled share of pairs reducible >= 1000x.
	FracAbove1000 float64
	// FloorHz is the lowest reportable Nyquist rate (2 cycles/window).
	FloorHz float64
}

// RunWindowAblation runs the Fig. 4 census at 1, 2 and 4-day windows.
func RunWindowAblation(seed int64) (*WindowAblation, error) {
	out := &WindowAblation{}
	for _, days := range []int{1, 2, 4} {
		cfg := FleetConfig{Seed: seed, Pairs: 140, TraceDuration: time.Duration(days) * dcsim.Day}
		res, err := RunFig4(cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, WindowRow{
			Days:            days,
			MedianReduction: res.Pooled.Quantile(0.5),
			FracAbove1000:   res.FracAbove1000,
			FloorHz:         2.0 / (float64(days) * 86400),
		})
	}
	return out, nil
}

// Render prints the window-length sweep.
func (r *WindowAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: analysis window length (the one-day resolution floor)\n\n")
	tb := report.NewTable("window", "rate floor (Hz)", "median reduction", ">=1000x")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%d day(s)", row.Days), fmtHz(row.FloorHz),
			fmt.Sprintf("%.0fx", row.MedianReduction),
			fmt.Sprintf("%.0f%%", 100*row.FracAbove1000))
	}
	b.WriteString(tb.String())
	b.WriteString("\nA window of n samples cannot certify reductions beyond n/2; lengthening the\nwindow lowers the floor and exposes the slower devices' full savings.\n")
	return b.String()
}
