package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dcsim"
	"repro/internal/dsp"
	"repro/internal/report"
)

// Fig6Config parameterizes the temperature round-trip experiment.
type Fig6Config struct {
	// Seed drives the synthetic temperature device.
	Seed int64
	// Duration is the trace length; zero selects two days.
	Duration time.Duration
	// PollInterval is the production rate; zero selects the paper's five
	// minutes.
	PollInterval time.Duration
}

// Fig6Result is the data behind Figure 6: an actual (5-minute) temperature
// trace versus the version downsampled to its Nyquist rate and upsampled
// back, with the paper's headline "the L2 distance between these signals
// is 0".
type Fig6Result struct {
	// PollRate is the production sampling rate in hertz.
	PollRate float64
	// NyquistRate is the rate the estimator found for the trace.
	NyquistRate float64
	// AdaptiveRate is where the §4.2 adaptive loop converged.
	AdaptiveRate float64
	// Fidelity compares original and reconstruction (with quantization
	// recovery, §4.3).
	Fidelity *core.Fidelity
	// FidelityNoQuant is the same comparison without re-quantization.
	FidelityNoQuant *core.Fidelity
	// Original and Reconstructed are the two curves of the figure.
	Original, Reconstructed []float64
}

// RunFig6 reproduces Figure 6: downsample a temperature signal to its
// (adaptively inferred) Nyquist rate, upsample back, and measure the L2
// distance.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * dcsim.Day
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 600))
	// A temperature probe with a mid-range band limit so the 5-minute
	// production polls oversample it comfortably.
	dev, err := dcsim.NewDevice("temperature/fig6", dcsim.Temperature, 1e-4, cfg.PollInterval, rng, uint64(cfg.Seed)+606)
	if err != nil {
		return nil, err
	}
	// A repeatable probe: readings are quantized (0.5 °C) but noise-free,
	// matching the production trace whose round trip the paper reports
	// as exactly L2 = 0. (With sensor noise above ~quantum/3, boundary
	// readings flip by one quantum and the distance is small but
	// nonzero; EXPERIMENTS.md quantifies that variant.)
	dev.SetNoiseAmp(0)
	u := dev.Trace(start, 0, cfg.Duration)
	pollRate := 1 / cfg.PollInterval.Seconds()

	var est core.Estimator
	eres, err := est.Estimate(u)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6 estimate: %w", err)
	}

	// §4.2 dynamic adaptation over the same signal.
	sampler, err := core.NewAdaptiveSampler(core.AdaptiveConfig{
		InitialRate:   pollRate / 2,
		MaxRate:       pollRate,
		EpochDuration: (6 * time.Hour).Seconds(),
	})
	if err != nil {
		return nil, err
	}
	arun, err := sampler.Run(dev, 0, cfg.Duration.Seconds())
	if err != nil {
		return nil, err
	}

	// Downsample to the inferred Nyquist rate (with a 10 % margin —
	// sampling *exactly at* the critical rate leaves the top component
	// ambiguous) and reconstruct, re-applying the sensor's 0.5 °C
	// quantum (§4.3).
	quant := dev.Profile().QuantStep
	target := 1.1 * eres.NyquistRate
	rec, fid, err := core.RoundTrip(u, target, core.ReconstructConfig{QuantStep: quant})
	if err != nil {
		return nil, err
	}
	_, fidNoQ, err := core.RoundTrip(u, target, core.ReconstructConfig{})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{
		PollRate:        pollRate,
		NyquistRate:     eres.NyquistRate,
		AdaptiveRate:    arun.ConvergedRate(),
		Fidelity:        fid,
		FidelityNoQuant: fidNoQ,
		Original:        u.Values,
		Reconstructed:   rec.Values,
	}, nil
}

// Render prints the Fig. 6 comparison and an overlay plot.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: temperature signal, downsampled to the Nyquist rate and upsampled back\n\n")
	tb := report.NewTable("quantity", "value")
	tb.AddRow("production poll rate (Hz)", fmtHz(r.PollRate))
	tb.AddRow("estimated Nyquist rate (Hz)", fmtHz(r.NyquistRate))
	tb.AddRow("adaptive converged rate (Hz)", fmtHz(r.AdaptiveRate))
	tb.AddRow("samples kept", fmt.Sprintf("%d of %d (%.0fx reduction)",
		r.Fidelity.SamplesAfter, r.Fidelity.SamplesBefore, r.Fidelity.CostReduction()))
	tb.AddRow("L2 distance (requantized)", fmt.Sprintf("%.4g", r.Fidelity.L2))
	tb.AddRow("L2 distance (raw)", fmt.Sprintf("%.4g", r.FidelityNoQuant.L2))
	tb.AddRow("NRMSE (requantized)", fmt.Sprintf("%.5f", r.Fidelity.NRMSE))
	b.WriteString(tb.String())
	b.WriteString("\nPaper: the L2 distance between the signals is 0 (after quantization recovery).\n\n")
	pts := make([]report.Point, 0, len(r.Original)+len(r.Reconstructed))
	for i, v := range r.Original {
		pts = append(pts, report.Point{X: float64(i), Y: v})
	}
	b.WriteString(report.AsciiPlot{Width: 72, Height: 10, Title: "original (5-min polls)"}.Render(pts))
	pts = pts[:0]
	for i, v := range r.Reconstructed {
		pts = append(pts, report.Point{X: float64(i), Y: v})
	}
	b.WriteString(report.AsciiPlot{Width: 72, Height: 10, Title: "reconstructed from Nyquist-rate samples"}.Render(pts))
	return b.String()
}

// Fig7Config parameterizes the moving-window experiment.
type Fig7Config struct {
	// Seed drives the synthetic device.
	Seed int64
	// Window is the moving analysis window; zero selects the paper's 6 h.
	Window time.Duration
	// Step is the window step; zero selects the paper's 5 min.
	Step time.Duration
	// Duration is the trace length; zero selects 3 days.
	Duration time.Duration
}

// Fig7Point is one moving-window Nyquist estimate.
type Fig7Point struct {
	// WindowStart marks the beginning of the window (as in the paper).
	WindowStart time.Time
	// NyquistRate is the estimate (0 when the window was aliased).
	NyquistRate float64
	// Aliased marks unreliable windows.
	Aliased bool
}

// Fig7Result is the data behind Figure 7: the inferred Nyquist rate over
// time for a temperature signal whose behaviour shifts mid-trace.
type Fig7Result struct {
	// Points is the rate time-series (6 h window, 5 min step).
	Points []Fig7Point
	// ShiftAt is when the synthetic regime change happens.
	ShiftAt time.Time
	// PreMedian and PostMedian summarize the inferred rates before and
	// after the shift.
	PreMedian, PostMedian float64
	// Spectrogram is the STFT view of the same trace: the regime change
	// is visible as a band appearing mid-trace.
	Spectrogram *dsp.Spectrogram
}

// RunFig7 reproduces Figure 7: a 6-hour moving window stepped every 5
// minutes over a temperature trace, reporting the inferred Nyquist rate at
// each step. A mid-trace burst raises the local rate, demonstrating why
// adaptation must track time-varying Nyquist rates (§3.2, §4).
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.Window <= 0 {
		cfg.Window = 6 * time.Hour
	}
	if cfg.Step <= 0 {
		cfg.Step = 5 * time.Minute
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * dcsim.Day
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 700))
	dev, err := dcsim.NewDevice("temperature/fig7", dcsim.Temperature, 5e-5, 30*time.Second, rng, uint64(cfg.Seed)+707)
	if err != nil {
		return nil, err
	}
	// Regime change at 1/3 of the trace: sustained faster thermal
	// oscillation (e.g. a failing fan cycling).
	shiftOffset := cfg.Duration.Seconds() / 3
	dev.AddBurst(dcsim.Burst{
		Start:    shiftOffset,
		Duration: cfg.Duration.Seconds() / 3,
		Freq:     1e-3,
		Amp:      8,
	})
	u := dev.Trace(start, 0, cfg.Duration)
	var est core.Estimator
	wins, err := est.MovingWindow(u, cfg.Window, cfg.Step)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{ShiftAt: start.Add(time.Duration(shiftOffset * float64(time.Second)))}
	var pre, post []float64
	for _, w := range wins {
		p := Fig7Point{WindowStart: w.WindowStart}
		if w.Result != nil && !w.Result.Aliased {
			p.NyquistRate = w.Result.NyquistRate
		} else {
			p.Aliased = true
		}
		res.Points = append(res.Points, p)
		if p.NyquistRate > 0 {
			if w.WindowStart.Before(res.ShiftAt) {
				pre = append(pre, p.NyquistRate)
			} else {
				post = append(post, p.NyquistRate)
			}
		}
	}
	res.PreMedian = report.NewCDF(pre).Quantile(0.5)
	res.PostMedian = report.NewCDF(post).Quantile(0.5)
	if sg, err := (dsp.STFT{SegmentLen: 512}).Compute(detrendForSpectrogram(u.Values), u.SampleRate()); err == nil {
		res.Spectrogram = sg
	}
	return res, nil
}

// detrendForSpectrogram removes the mean so the DC column does not drown
// the heatmap's shading.
func detrendForSpectrogram(x []float64) []float64 {
	var m float64
	for _, v := range x {
		m += v
	}
	m /= float64(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}

// Render prints the Fig. 7 rate-over-time curve.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: inferred Nyquist rate over time (6 h moving window, 5 min step)\n\n")
	pts := make([]report.Point, 0, len(r.Points))
	for _, p := range r.Points {
		if p.NyquistRate > 0 {
			pts = append(pts, report.Point{
				X: p.WindowStart.Sub(r.Points[0].WindowStart).Hours(),
				Y: p.NyquistRate,
			})
		}
	}
	b.WriteString(report.AsciiPlot{Width: 72, Height: 12, Title: "Nyquist rate (Hz) vs window start (hours)"}.Render(pts))
	fmt.Fprintf(&b, "\nMedian inferred rate before regime change: %s Hz; after: %s Hz (shift at t=%.0f h)\n",
		fmtHz(r.PreMedian), fmtHz(r.PostMedian), r.ShiftAt.Sub(r.Points[0].WindowStart).Hours())
	b.WriteString("Paper: the inferred rate varies over time on the same device, motivating dynamic adaptation.\n")
	if r.Spectrogram != nil {
		b.WriteByte('\n')
		b.WriteString(report.Heatmap{Title: "Spectrogram of the trace (regime change visible as a new band)", Log: true}.Render(r.Spectrogram.Power))
	}
	return b.String()
}
