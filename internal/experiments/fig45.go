package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dcsim"
	"repro/internal/report"
	"repro/internal/series"
)

// Fig4Result is the data behind Figure 4: per metric family, the CDF of
// the possible reduction ratio (current sampling rate / estimated Nyquist
// rate) across devices. Aliased traces are excluded, as in the paper ("we
// do not show the cases where we cannot reliably detect the Nyquist
// rate").
type Fig4Result struct {
	// Metrics lists metric families with at least one usable device.
	Metrics []string
	// CDFs[i] is the reduction-ratio distribution of Metrics[i].
	CDFs []*report.CDF
	// Pooled is the distribution over all usable pairs.
	Pooled *report.CDF
	// FracAbove1000 is the pooled share of pairs reducible by >= 1000x
	// (paper: ~20 %).
	FracAbove1000 float64
	// MaxResolvable notes the ceiling the one-day window imposes on the
	// measurable ratio per poll interval (n/2 for an n-sample trace).
	MaxResolvable map[string]float64
}

// RunFig4 reproduces Figure 4: reduction-ratio CDFs per metric.
func RunFig4(cfg FleetConfig) (*Fig4Result, error) {
	pairs, err := censusFleet(cfg)
	if err != nil {
		return nil, err
	}
	byMetric := make(map[dcsim.Metric][]float64)
	var pooled []float64
	maxRes := make(map[string]float64)
	for _, p := range pairs {
		if p.res == nil || p.res.Aliased {
			continue
		}
		r := p.res.ReductionRatio
		byMetric[p.dev.Metric] = append(byMetric[p.dev.Metric], r)
		pooled = append(pooled, r)
		iv := p.dev.PollInterval.String()
		n := float64(int(cfg.withDefaults().TraceDuration / p.dev.PollInterval))
		if n/2 > maxRes[iv] {
			maxRes[iv] = n / 2
		}
	}
	res := &Fig4Result{Pooled: report.NewCDF(pooled), MaxResolvable: maxRes}
	res.FracAbove1000 = res.Pooled.FractionAbove(1000)
	for _, m := range dcsim.AllMetrics() {
		vals := byMetric[m]
		if len(vals) == 0 {
			continue
		}
		res.Metrics = append(res.Metrics, m.String())
		res.CDFs = append(res.CDFs, report.NewCDF(vals))
	}
	return res, nil
}

// Render prints per-metric reduction-ratio quantiles and the pooled CDF.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: possible reduction ratio (current rate / Nyquist rate), per metric\n\n")
	tb := report.NewTable("metric", "n", "p10", "median", "p90", "max", ">=10x", ">=100x", ">=1000x")
	for i, m := range r.Metrics {
		c := r.CDFs[i]
		tb.AddRow(m,
			fmt.Sprintf("%d", c.Len()),
			fmt.Sprintf("%.1f", c.Quantile(0.10)),
			fmt.Sprintf("%.1f", c.Quantile(0.50)),
			fmt.Sprintf("%.1f", c.Quantile(0.90)),
			fmt.Sprintf("%.0f", c.Quantile(1)),
			fmt.Sprintf("%.0f%%", 100*c.FractionAbove(10)),
			fmt.Sprintf("%.0f%%", 100*c.FractionAbove(100)),
			fmt.Sprintf("%.0f%%", 100*c.FractionAbove(1000)))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nPooled: %d usable pairs, %.0f%% reducible by >=1000x (paper: ~20%% at 1000x).\n",
		r.Pooled.Len(), 100*r.FracAbove1000)
	b.WriteByte('\n')
	b.WriteString(report.AsciiPlot{
		Width: 70, Height: 14, LogX: true,
		Title: "Pooled reduction-ratio CDF (log x, cf. Fig. 4)",
	}.Render(r.Pooled.LogXPoints(120)))
	return b.String()
}

// Fig5Result is the data behind Figure 5: the distribution of estimated
// Nyquist rates per metric family.
type Fig5Result struct {
	// Metrics lists the families in Fig. 5 order.
	Metrics []string
	// Boxes[i] is the five-number summary of Metrics[i]'s Nyquist rates.
	Boxes []series.FiveNumber
	// TemperatureRange records the min/max temperature Nyquist rate, the
	// statistic the paper quotes (7.99e-7 to 0.003 Hz).
	TemperatureRange [2]float64
}

// RunFig5 reproduces Figure 5: the box plot of Nyquist rates per metric.
func RunFig5(cfg FleetConfig) (*Fig5Result, error) {
	pairs, err := censusFleet(cfg)
	if err != nil {
		return nil, err
	}
	byMetric := make(map[dcsim.Metric][]float64)
	for _, p := range pairs {
		if p.res == nil || p.res.Aliased {
			continue
		}
		byMetric[p.dev.Metric] = append(byMetric[p.dev.Metric], p.res.NyquistRate)
	}
	res := &Fig5Result{}
	for _, m := range dcsim.AllMetrics() {
		vals := byMetric[m]
		if len(vals) == 0 {
			continue
		}
		res.Metrics = append(res.Metrics, m.String())
		res.Boxes = append(res.Boxes, series.BoxStats(vals))
		if m == dcsim.Temperature {
			b := series.BoxStats(vals)
			res.TemperatureRange = [2]float64{b.Min, b.Max}
		}
	}
	return res, nil
}

// Render prints the per-metric five-number summaries and text box plot.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: Nyquist rate (Hz) per monitoring system\n\n")
	tb := report.NewTable("metric", "min", "q1", "median", "q3", "max")
	lo, hi := 1e300, 0.0
	for i, m := range r.Metrics {
		bx := r.Boxes[i]
		tb.AddRow(m, fmtHz(bx.Min), fmtHz(bx.Q1), fmtHz(bx.Median), fmtHz(bx.Q3), fmtHz(bx.Max))
		if bx.Min > 0 && bx.Min < lo {
			lo = bx.Min
		}
		if bx.Max > hi {
			hi = bx.Max
		}
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	for i, m := range r.Metrics {
		bx := r.Boxes[i]
		b.WriteString(report.BoxRow(m, bx.Min, bx.Q1, bx.Median, bx.Q3, bx.Max, lo, hi, 55, true))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nTemperature Nyquist range: %s .. %s Hz (paper: 7.99e-7 .. 3e-3 Hz)\n",
		fmtHz(r.TemperatureRange[0]), fmtHz(r.TemperatureRange[1]))
	return b.String()
}
