package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

// MemoryAblation quantifies §4.2's "remember previous maximum Nyquist
// rates to ramp up more quickly": on a signal with recurring fast
// episodes, a sampler with memory holds the historical requirement as a
// rate floor and is already adequate when the episode recurs, while the
// memoryless sampler re-probes from scratch each time and under-samples
// the episode's onset.
type MemoryAblation struct {
	// Rows compares the two configurations.
	Rows []MemoryRow
	// EpisodeNyquist is the fast episodes' required rate (Hz).
	EpisodeNyquist float64
}

// MemoryRow is one configuration's outcome.
type MemoryRow struct {
	// Memory marks the remembering configuration.
	Memory bool
	// InadequateOnsets counts recurring episodes whose first epoch ran
	// below the episode's Nyquist requirement (missed onsets).
	InadequateOnsets int
	// Episodes is the number of recurrences after the first.
	Episodes int
	// TotalSamples is the run's measurement cost.
	TotalSamples int
}

// RunMemoryAblation drives both configurations over a day with a fast
// episode recurring every 4 hours (a flapping link's duty cycle).
func RunMemoryAblation(seed int64) (*MemoryAblation, error) {
	const (
		day         = 2 * 86400.0
		period      = 8 * 3600.0
		episodeLen  = 3 * 1800.0 // long enough for probing to reach an adequate rate mid-episode
		episodeFreq = 0.02       // Hz; requires 0.04 Hz sampling
		epoch       = 1800.0
	)
	sig := core.SamplerFunc(func(t float64) float64 {
		v := 20 + 5*math.Sin(2*math.Pi*t/43200)
		phase := math.Mod(t, period)
		if phase < episodeLen {
			env := 0.5 * (1 - math.Cos(2*math.Pi*phase/episodeLen))
			v += 15 * env * math.Sin(2*math.Pi*episodeFreq*t+float64(seed))
		}
		return v
	})
	out := &MemoryAblation{EpisodeNyquist: 2 * episodeFreq}
	for _, memory := range []bool{false, true} {
		cfg := core.AdaptiveConfig{
			InitialRate:   1.0 / 300,
			MaxRate:       1,
			EpochDuration: epoch,
			ProbeFactor:   4,
			DecreaseAfter: 1,
			DecayFactor:   0.2,
			Memory:        memory,
			Estimator:     core.EstimatorConfig{EnergyCutoff: 0.9},
		}
		s, err := core.NewAdaptiveSampler(cfg)
		if err != nil {
			return nil, err
		}
		run, err := s.Run(sig, 0, day)
		if err != nil {
			return nil, err
		}
		row := MemoryRow{Memory: memory, TotalSamples: run.TotalSamples}
		for _, e := range run.Epochs {
			onset := math.Mod(e.Start, period) < epoch // epoch containing an episode start
			if !onset || e.Start < period {
				continue // skip the first episode: nothing to remember yet
			}
			row.Episodes++
			if e.Rate < out.EpisodeNyquist {
				row.InadequateOnsets++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (r *MemoryAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: §4.2 memory (recurring episodes need %s Hz)\n\n", fmtHz(r.EpisodeNyquist))
	tb := report.NewTable("config", "recurrences", "missed onsets", "total samples")
	for _, row := range r.Rows {
		name := "memoryless"
		if row.Memory {
			name = "with memory"
		}
		tb.AddRow(name, fmt.Sprintf("%d", row.Episodes),
			fmt.Sprintf("%d", row.InadequateOnsets), fmt.Sprintf("%d", row.TotalSamples))
	}
	b.WriteString(tb.String())
	b.WriteString("\nMemory holds the historical maximum requirement as a rate floor, so recurring\nepisodes are captured from their first sample; the memoryless loop re-probes\nand under-samples each onset. The price is the extra samples of the floor.\n")
	return b.String()
}
