package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

// HeadroomAblation quantifies §4.2's last-paragraph dilemma: a
// first-of-its-kind event cannot be predicted by probing, memory, or any
// adaptive policy — at its onset the poller runs whatever rate the quiet
// signal justified. The only defence is headroom, and headroom is paid
// for around the clock.
type HeadroomAblation struct {
	// Rows holds one headroom setting each.
	Rows []HeadroomRow
	// QuietNyquist is the quiet signal's requirement (Hz).
	QuietNyquist float64
	// EventNyquist is the surprise event's requirement (Hz).
	EventNyquist float64
}

// HeadroomRow is one headroom setting's outcome.
type HeadroomRow struct {
	// Headroom is the configured multiplier.
	Headroom float64
	// PreEventRate is the poll rate in force when the event begins.
	PreEventRate float64
	// OnsetCaptured reports whether that rate covered the event's
	// Nyquist requirement from its first sample.
	OnsetCaptured bool
	// TotalSamples is the run's cost.
	TotalSamples int
}

// RunHeadroomAblation sweeps the headroom factor over a signal whose
// surprise event needs 3x the quiet requirement.
func RunHeadroomAblation(seed int64) (*HeadroomAblation, error) {
	const (
		day       = 86400.0
		quietFreq = 1e-3       // quiet content: Nyquist 2e-3 Hz
		eventAt   = day * 0.75 // late surprise
		eventFreq = 3e-3       // event content: Nyquist 6e-3 Hz
		epoch     = 7200.0
	)
	sig := core.SamplerFunc(func(t float64) float64 {
		v := 30 + 6*math.Sin(2*math.Pi*quietFreq*t+float64(seed))
		if t >= eventAt {
			u := (t - eventAt) / (day - eventAt)
			env := 0.5 * (1 - math.Cos(2*math.Pi*u))
			v += 12 * env * math.Sin(2*math.Pi*eventFreq*t)
		}
		return v
	})
	out := &HeadroomAblation{QuietNyquist: 2 * quietFreq, EventNyquist: 2 * eventFreq}
	for _, h := range []float64{1, 2, 4} {
		s, err := core.NewAdaptiveSampler(core.AdaptiveConfig{
			InitialRate:   4 * quietFreq,
			MaxRate:       1,
			EpochDuration: epoch,
			Headroom:      h,
			DecreaseAfter: 1,
			DecayFactor:   0.3,
			Estimator:     core.EstimatorConfig{EnergyCutoff: 0.9},
		})
		if err != nil {
			return nil, err
		}
		run, err := s.Run(sig, 0, day)
		if err != nil {
			return nil, err
		}
		row := HeadroomRow{Headroom: h, TotalSamples: run.TotalSamples}
		for _, e := range run.Epochs {
			if e.Start <= eventAt && eventAt < e.Start+epoch {
				row.PreEventRate = e.Rate
				row.OnsetCaptured = e.Rate >= out.EventNyquist
				break
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the sweep.
func (r *HeadroomAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: §4.2 headroom vs a first-of-its-kind event\n(quiet requirement %s Hz; surprise event needs %s Hz)\n\n",
		fmtHz(r.QuietNyquist), fmtHz(r.EventNyquist))
	tb := report.NewTable("headroom", "rate at event onset (Hz)", "onset captured", "total samples")
	for _, row := range r.Rows {
		tb.AddRow(fmt.Sprintf("%.0fx", row.Headroom),
			fmtHz(row.PreEventRate),
			fmt.Sprintf("%v", row.OnsetCaptured),
			fmt.Sprintf("%d", row.TotalSamples))
	}
	b.WriteString(tb.String())
	b.WriteString("\nNo adaptive policy can anticipate a first occurrence; only standing headroom\ncovers the onset, and its cost scales with the multiplier — the trade-off the\npaper leaves open.\n")
	return b.String()
}
