package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dcsim"
	"repro/internal/report"
)

// Fig1Result is the data behind Figure 1: per metric, the fraction of
// devices whose current production poll rate exceeds the Nyquist rate
// estimated from their own trace.
type Fig1Result struct {
	// Metrics lists the 14 metric families in Fig. 5 order.
	Metrics []string
	// FractionAbove[i] is the share of Metrics[i] devices sampling above
	// their Nyquist rate.
	FractionAbove []float64
	// Census is the fleet-wide aggregate (§3.2: 89 % over-sampled).
	Census Census
}

// RunFig1 reproduces Figure 1: the over-sampling census per metric family.
func RunFig1(cfg FleetConfig) (*Fig1Result, error) {
	pairs, err := censusFleet(cfg)
	if err != nil {
		return nil, err
	}
	type agg struct{ above, total int }
	byMetric := make(map[dcsim.Metric]*agg, dcsim.NumMetrics)
	for _, m := range dcsim.AllMetrics() {
		byMetric[m] = &agg{}
	}
	for _, p := range pairs {
		a := byMetric[p.dev.Metric]
		a.total++
		if p.res != nil && !p.res.Aliased && p.res.Oversampled() {
			a.above++
		}
	}
	res := &Fig1Result{Census: summarizeCensus(pairs)}
	for _, m := range dcsim.AllMetrics() {
		a := byMetric[m]
		frac := 0.0
		if a.total > 0 {
			frac = float64(a.above) / float64(a.total)
		}
		res.Metrics = append(res.Metrics, m.String())
		res.FractionAbove = append(res.FractionAbove, frac)
	}
	return res, nil
}

// Render draws the Fig. 1 bar chart plus the aggregate statistics.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString(report.Bar(
		"Figure 1: fraction of devices measured above the Nyquist rate, per metric",
		r.Metrics, r.FractionAbove, 50))
	fmt.Fprintf(&b, "\nFleet: %d metric/device pairs; %d (%.0f%%) over-sampled, %d under-sampled (%d aliased)\n",
		r.Census.Pairs, r.Census.Oversampled, 100*r.Census.OversampledFraction(),
		r.Census.Undersampled, r.Census.Aliased)
	b.WriteString("Paper reports: 89% of 1613 pairs sampling above their Nyquist rate, ~11% below.\n")
	return b.String()
}
