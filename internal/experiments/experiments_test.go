package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// smallFleet keeps census tests fast while remaining statistically
// meaningful (20 devices per metric family).
var smallFleet = FleetConfig{Seed: 1, Pairs: 280}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig1(smallFleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 14 || len(res.FractionAbove) != 14 {
		t.Fatalf("metrics = %d, want 14", len(res.Metrics))
	}
	// The paper's Fig. 1: the vast majority of devices oversample, for
	// every metric.
	for i, f := range res.FractionAbove {
		if f < 0.5 || f > 1 {
			t.Errorf("%s: oversampled fraction %.2f outside [0.5, 1]", res.Metrics[i], f)
		}
	}
	// Aggregate: ~89% oversampled.
	if got := res.Census.OversampledFraction(); got < 0.75 || got > 0.97 {
		t.Fatalf("census oversampled fraction = %.2f, want ~0.89", got)
	}
	if out := res.Render(); !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Temperature") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig2AliasGeometry(t *testing.T) {
	res, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AbovePeak-res.Tone) > 1 {
		t.Fatalf("above-Nyquist peak at %v, want %v", res.AbovePeak, res.Tone)
	}
	if math.Abs(res.BelowPeak-res.PredictedImage) > 1 {
		t.Fatalf("alias image at %v, predicted %v", res.BelowPeak, res.PredictedImage)
	}
	if !strings.Contains(res.Render(), "aliases") {
		t.Fatal("render missing explanation")
	}
}

func TestFig3AliasingDemo(t *testing.T) {
	res, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 3 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	above, slightly, far := res.Variants[0], res.Variants[1], res.Variants[2]
	// Above Nyquist: peaks at 400 and 440, near-exact reconstruction.
	if math.Abs(above.PeakFreqs[0]-400) > 2 || math.Abs(above.PeakFreqs[1]-440) > 2 {
		t.Fatalf("890 Hz peaks = %v, want 400/440", above.PeakFreqs)
	}
	if above.Fidelity.NRMSE > 1e-6 {
		t.Fatalf("890 Hz NRMSE = %v, want ~0", above.Fidelity.NRMSE)
	}
	// Slightly below: the 440 Hz tone must have moved (aliased image at
	// 800-440=360; the 400 Hz tone sits exactly on the folding frequency
	// and collapses), and reconstruction must degrade.
	if math.Abs(slightly.PeakFreqs[0]-360) > 2 && math.Abs(slightly.PeakFreqs[1]-360) > 2 {
		t.Fatalf("800 Hz image peaks = %v, want 360 present", slightly.PeakFreqs)
	}
	for _, p := range slightly.PeakFreqs {
		if math.Abs(p-440) < 2 {
			t.Fatalf("800 Hz sampling cannot show the true 440 Hz tone: %v", slightly.PeakFreqs)
		}
	}
	if slightly.Fidelity.NRMSE < 100*above.Fidelity.NRMSE {
		t.Fatalf("800 Hz NRMSE %v not clearly worse than 890 Hz %v", slightly.Fidelity.NRMSE, above.Fidelity.NRMSE)
	}
	// Far below: images at 600-400=200 and 600-440=160.
	if math.Abs(far.PeakFreqs[0]-160) > 2 || math.Abs(far.PeakFreqs[1]-200) > 2 {
		t.Fatalf("600 Hz image peaks = %v, want 160/200", far.PeakFreqs)
	}
	if far.Fidelity.NRMSE < slightly.Fidelity.NRMSE {
		t.Fatalf("600 Hz should be worse than 800 Hz: %v vs %v", far.Fidelity.NRMSE, slightly.Fidelity.NRMSE)
	}
	if out := res.Render(); !strings.Contains(out, "Figure 3") || !strings.Contains(out, "PSD") {
		t.Fatal("render incomplete")
	}
}

func TestFig4ReductionCDFs(t *testing.T) {
	res, err := RunFig4(smallFleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) < 12 {
		t.Fatalf("only %d metrics usable", len(res.Metrics))
	}
	if res.Pooled.Len() < 200 {
		t.Fatalf("pooled pairs = %d", res.Pooled.Len())
	}
	// Paper: substantial mass at >=1000x (about 20%); allow a wide band
	// for the small fleet.
	if res.FracAbove1000 < 0.05 || res.FracAbove1000 > 0.5 {
		t.Fatalf("frac >= 1000x = %.2f, want ~0.2", res.FracAbove1000)
	}
	// Median reduction must show heavy oversampling overall.
	if med := res.Pooled.Quantile(0.5); med < 5 {
		t.Fatalf("pooled median reduction = %v, want > 5x", med)
	}
	if out := res.Render(); !strings.Contains(out, "Figure 4") || !strings.Contains(out, "1000x") {
		t.Fatal("render incomplete")
	}
}

func TestFig5NyquistBoxes(t *testing.T) {
	res, err := RunFig5(smallFleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) < 12 {
		t.Fatalf("metrics = %d", len(res.Metrics))
	}
	for i, bx := range res.Boxes {
		if !(bx.Min <= bx.Median && bx.Median <= bx.Max) {
			t.Fatalf("%s: unordered box %+v", res.Metrics[i], bx)
		}
		if bx.Min <= 0 {
			t.Fatalf("%s: non-positive Nyquist rate %v", res.Metrics[i], bx.Min)
		}
		// Fig. 5's y axis spans 0..0.008 Hz; our under-sampled devices
		// with 30 s polls can report up to ~fs/2 before the aliased
		// guard trips, so allow a little more.
		if bx.Max > 0.04 {
			t.Fatalf("%s: max %v far above Fig. 5 range", res.Metrics[i], bx.Max)
		}
	}
	// Temperature spread should roughly match the paper's reported
	// range: minimum near 1e-6, maximum near 3e-3.
	if res.TemperatureRange[0] > 1e-4 {
		t.Fatalf("temperature min %v too high", res.TemperatureRange[0])
	}
	if res.TemperatureRange[1] < 3e-4 {
		t.Fatalf("temperature max %v too low", res.TemperatureRange[1])
	}
	if out := res.Render(); !strings.Contains(out, "Figure 5") {
		t.Fatal("render incomplete")
	}
}

func TestFig6RoundTripNearZeroL2(t *testing.T) {
	res, err := RunFig6(Fig6Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The estimated rate must sit well below the 5-minute production
	// rate (the trace is oversampled) and the reconstruction must be
	// essentially lossless after quantization recovery.
	if res.NyquistRate >= res.PollRate {
		t.Fatalf("Nyquist %v not below poll rate %v", res.NyquistRate, res.PollRate)
	}
	if res.Fidelity.CostReduction() < 2 {
		t.Fatalf("cost reduction %v, want >= 2x", res.Fidelity.CostReduction())
	}
	if res.Fidelity.NRMSE > 0.02 {
		t.Fatalf("requantized NRMSE = %v, want ~0", res.Fidelity.NRMSE)
	}
	// Quantization recovery must not hurt.
	if res.Fidelity.RMSE > res.FidelityNoQuant.RMSE+0.3 {
		t.Fatalf("requantized RMSE %v much worse than raw %v", res.Fidelity.RMSE, res.FidelityNoQuant.RMSE)
	}
	if res.AdaptiveRate <= 0 {
		t.Fatal("adaptive loop never converged")
	}
	if out := res.Render(); !strings.Contains(out, "Figure 6") || !strings.Contains(out, "L2") {
		t.Fatal("render incomplete")
	}
}

func TestFig7TracksRegimeChange(t *testing.T) {
	res, err := RunFig7(Fig7Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 100 {
		t.Fatalf("points = %d, want hundreds (5-min steps over days)", len(res.Points))
	}
	// The burst must raise the inferred rate markedly.
	if res.PostMedian < 2*res.PreMedian {
		t.Fatalf("post-shift median %v not above pre-shift %v", res.PostMedian, res.PreMedian)
	}
	// Window step honored: consecutive points 5 minutes apart.
	if len(res.Points) > 1 {
		if got := res.Points[1].WindowStart.Sub(res.Points[0].WindowStart); got != 5*time.Minute {
			t.Fatalf("step = %v, want 5m", got)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 7") {
		t.Fatal("render incomplete")
	}
}

func TestDualRateSweep(t *testing.T) {
	res, err := RunDualRate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Correct < len(res.Rows)-1 {
		t.Fatalf("only %d/%d verdicts correct", res.Correct, len(res.Rows))
	}
	if out := res.Render(); !strings.Contains(out, "dual-rate") {
		t.Fatal("render incomplete")
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	res, err := RunAdaptive(1)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Comparison
	if c.CostReduction < 2 {
		t.Fatalf("cost reduction = %v, want > 2x", c.CostReduction)
	}
	if c.Fidelity.NRMSE > 0.25 {
		t.Fatalf("NRMSE = %v too high", c.Fidelity.NRMSE)
	}
	// The rate trajectory must rise during the burst interval.
	var quietMax, burstMax float64
	for _, e := range res.Epochs {
		if e.Start < 86400/3 {
			if e.Rate > quietMax {
				quietMax = e.Rate
			}
		} else if e.Start < 86400/2 {
			if e.Rate > burstMax {
				burstMax = e.Rate
			}
		}
	}
	if burstMax <= quietMax {
		t.Fatalf("rate did not rise during burst: quiet %v, burst %v", quietMax, burstMax)
	}
	if out := res.Render(); !strings.Contains(out, "adaptive") {
		t.Fatal("render incomplete")
	}
}

func TestCutoffAblation(t *testing.T) {
	res, err := RunCutoffAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Higher cut-off must not lower the median estimated rate, and must
	// raise (or hold) the aliased fraction — the paper's 99.99% caveat.
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		usable := cur.AliasedFrac < 0.99
		if usable && cur.MedianNyquist < prev.MedianNyquist*0.9 {
			t.Fatalf("cutoff %v median rate %v below cutoff %v rate %v",
				cur.Cutoff, cur.MedianNyquist, prev.Cutoff, prev.MedianNyquist)
		}
		if cur.AliasedFrac+1e-9 < prev.AliasedFrac {
			t.Fatalf("aliased fraction dropped when cutoff rose: %v -> %v", prev.AliasedFrac, cur.AliasedFrac)
		}
	}
	if out := res.Render(); !strings.Contains(out, "cut-off") {
		t.Fatal("render incomplete")
	}
}

func TestCensusCountsConsistent(t *testing.T) {
	pairs, err := censusFleet(FleetConfig{Seed: 5, Pairs: 140})
	if err != nil {
		t.Fatal(err)
	}
	c := summarizeCensus(pairs)
	if c.Pairs != 140 {
		t.Fatalf("pairs = %d", c.Pairs)
	}
	if c.Oversampled+c.Undersampled+c.Errors != c.Pairs {
		t.Fatalf("census buckets don't add up: %+v", c)
	}
	if c.Aliased > c.Undersampled {
		t.Fatalf("aliased %d exceeds undersampled %d", c.Aliased, c.Undersampled)
	}
}
