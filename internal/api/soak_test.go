package api

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/tsdb"
)

// TestIngestSoakConservation is the concurrency soak for the batched
// ingest path, meant to run under -race: HTTP and bulk-lane writers
// pound disjoint series families while ?match= readers sweep the cached
// read path and a background goroutine force-seals mid-soak. At the end
// the books must balance exactly — every line a writer sent is accounted
// accepted or rejected in its response, the store's append counter
// equals the sum of accepted responses, and the metrics registry agrees
// with both. A lost update anywhere in the pooled-batch plumbing (a
// scratch buffer shared across requests, a verdict written after the
// chunk recycled) shows up as either a race report or a conservation
// gap.
func TestIngestSoakConservation(t *testing.T) {
	const (
		httpWriters = 3
		bulkWriters = 2
		readers     = 2
		batches     = 12
		batchLines  = 300
	)
	srv := NewServer(Config{
		Store:  DefaultStore(),
		Ingest: monitor.IngestConfig{WindowSamples: 64, EmitEvery: 8},
	})
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bln.Close()
	go srv.ServeBulk(bln)

	var (
		sentLines, gotAccepted, gotRejected atomic.Int64
		writers, aux                        sync.WaitGroup
		stop                                = make(chan struct{})
	)
	// Each writer owns a disjoint series family with its own ascending
	// clock; every 25th line rewinds to draw a deterministic strict-append
	// reject, so the rejected leg of the conservation law is exercised —
	// not just the happy path.
	makeBatch := func(lane string, w, round int) string {
		var sb strings.Builder
		base := apiStart.Add(time.Duration(round*batchLines) * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i) * time.Second)
			if i%25 == 24 {
				ts = ts.Add(-time.Hour)
			}
			fmt.Fprintf(&sb, "{\"series\":\"soak/%s%d/dev%02d\",\"ts\":%d,\"value\":%d.5}\n",
				lane, w, i%8, ts.Unix(), i)
		}
		return sb.String()
	}

	for w := 0; w < httpWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for round := 0; round < batches; round++ {
				body := makeBatch("h", w, round)
				resp, err := http.Post(hts.URL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out IngestResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Errorf("http writer %d: decode: %v", w, err)
					return
				}
				sentLines.Add(batchLines)
				gotAccepted.Add(int64(out.Accepted))
				gotRejected.Add(int64(out.Rejected))
			}
		}(w)
	}
	for w := 0; w < bulkWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			conn, err := net.Dial("tcp", bln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			var hdr [4]byte
			for round := 0; round < batches; round++ {
				body := makeBatch("b", w, round)
				binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
				if _, err := conn.Write(hdr[:]); err != nil {
					t.Error(err)
					return
				}
				if _, err := io.WriteString(conn, body); err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					t.Error(err)
					return
				}
				rb := make([]byte, binary.BigEndian.Uint32(hdr[:]))
				if _, err := io.ReadFull(conn, rb); err != nil {
					t.Error(err)
					return
				}
				var out IngestResponse
				if err := json.Unmarshal(rb, &out); err != nil {
					t.Errorf("bulk writer %d: decode %q: %v", w, rb, err)
					return
				}
				sentLines.Add(batchLines)
				gotAccepted.Add(int64(out.Accepted))
				gotRejected.Add(int64(out.Rejected))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(hts.URL + "/api/v1/query?match=soak/*&max_points=500")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				srv.Store().SealActive()
			}
		}
	}()

	writers.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		return
	}

	wantLines := int64((httpWriters + bulkWriters) * batches * batchLines)
	if got := gotAccepted.Load() + gotRejected.Load(); got != wantLines {
		t.Fatalf("conservation broke: %d lines sent, responses account %d (accepted %d + rejected %d)",
			wantLines, got, gotAccepted.Load(), gotRejected.Load())
	}
	if appends := srv.Store().Stats().Appends; appends != gotAccepted.Load() {
		t.Fatalf("store Appends = %d, responses accepted %d", appends, gotAccepted.Load())
	}
	if v := srv.metrics.ingestAccepted.Value(); v != gotAccepted.Load() {
		t.Fatalf("metrics accepted counter = %d, responses accepted %d", v, gotAccepted.Load())
	}
	if v := srv.metrics.ingestRejected.Value(); v != gotRejected.Load() {
		t.Fatalf("metrics rejected counter = %d, responses rejected %d", v, gotRejected.Load())
	}
	if v := srv.metrics.bulkFrames.Value(); v != int64(bulkWriters*batches) {
		t.Fatalf("bulk frames = %d, want %d", v, bulkWriters*batches)
	}
}

// TestBulkLaneProtocol pins the frame protocol edges the soak's happy
// path never hits: an oversize frame draws an error response and a
// closed connection; a not-ready server answers every frame with the
// replay error but keeps the connection; an empty frame is a no-op ping.
func TestBulkLaneProtocol(t *testing.T) {
	srv := NewServer(Config{
		Store: monitor.NewTieredStore(tsdb.Config{Shards: 2, StrictAppend: true,
			Retention: tsdb.RetentionConfig{RawCapacity: 64}}),
		MaxBodyBytes: 256,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeBulk(ln)

	dial := func() net.Conn {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	sendFrame := func(c net.Conn, payload []byte) (map[string]any, error) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := c.Write(hdr[:]); err != nil {
			return nil, err
		}
		if _, err := c.Write(payload); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return nil, err
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(c, body); err != nil {
			return nil, err
		}
		out := map[string]any{}
		return out, json.Unmarshal(body, &out)
	}

	// Happy path + empty ping on one connection.
	c := dial()
	out, err := sendFrame(c, []byte("{\"series\":\"p/a\",\"ts\":1,\"value\":1}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out["accepted"] != float64(1) {
		t.Fatalf("accepted = %v, want 1", out["accepted"])
	}
	if out, err = sendFrame(c, nil); err != nil || out["accepted"] != float64(0) {
		t.Fatalf("empty frame: %v %v", out, err)
	}

	// Oversize frame: error response, then close.
	c2 := dial()
	out, err = sendFrame(c2, bytes.Repeat([]byte("x"), 300))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["error"]; !ok {
		t.Fatalf("oversize frame answered %v, want an error", out)
	}
	if _, err := sendFrame(c2, []byte("{}\n")); err == nil {
		t.Fatal("connection survived an oversize frame, want close")
	}

	// Not-ready server: error per frame, connection stays.
	srv.SetReady(false)
	c3 := dial()
	for i := 0; i < 2; i++ {
		out, err = sendFrame(c3, []byte("{\"series\":\"p/a\",\"ts\":2,\"value\":1}\n"))
		if err != nil {
			t.Fatalf("frame %d while not ready: %v", i, err)
		}
		if es, _ := out["error"].(string); !strings.Contains(es, "WAL replay") {
			t.Fatalf("not-ready answer = %v, want replay error", out)
		}
	}
	srv.SetReady(true)
	if out, err = sendFrame(c3, []byte("{\"series\":\"p/a\",\"ts\":3,\"value\":1}\n")); err != nil || out["accepted"] != float64(1) {
		t.Fatalf("after ready: %v %v", out, err)
	}
}
