// Package api is the serving surface of the monitoring toolkit: the
// HTTP handlers behind cmd/nyquistd. It turns the in-process pipeline —
// sharded compressed storage (internal/tsdb via monitor.Store) plus
// estimate-on-ingest (monitor.IngestEstimator) — into a network service
// external pollers can push telemetry into and query reconstructions,
// estimates and operator advice back out of.
//
// Endpoints (all JSON; see docs/API.md for schemas and curl examples):
//
//	POST /api/v1/ingest    batch ingest, one JSON object per line
//	GET  /api/v1/query     tier-stitched range read with a point budget
//	GET  /api/v1/estimate  live Nyquist estimate + poll advice for a series
//	GET  /api/v1/series    stored series inventory (retention detail per id)
//	GET  /api/v1/stats     whole-store operator stats
//	GET  /healthz          liveness
//
// Every ingested point lands in the store and feeds the series' live
// estimator; clean estimates retune the series' retention tiers, so the
// paper's estimate→retain loop closes for traffic the server never
// polled itself. Handlers are safe for concurrent use and stateless
// beyond the store/estimator pair, so one Server can sit behind any
// net/http server or mux.
package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the backing store. Nil selects the serving default:
	// 16-shard strict-append engine, 4096-point compressed raw rings,
	// two min/max/mean tiers of 1024 buckets, 128-entry Gorilla blocks.
	Store *monitor.Store
	// Estimator is the estimate-on-ingest hook. Nil builds one over
	// Store from Ingest; pass an existing estimator when it was already
	// wired elsewhere (the durability layer restores state into it
	// before the server starts).
	Estimator *monitor.IngestEstimator
	// Ingest parameterizes the per-series estimate-on-ingest hook
	// (ignored when Estimator is set).
	Ingest monitor.IngestConfig
	// WAL, when set, is the durability subsystem whose stats are
	// surfaced through /api/v1/stats. The server never writes to it
	// directly — sealed blocks reach the log through the store's seal
	// hook — so this is reporting-only wiring.
	WAL *wal.Durable
	// MaxBodyBytes bounds an ingest request body; zero selects 8 MiB.
	MaxBodyBytes int64
	// MaxQueryPoints caps (and defaults) a query's point budget; zero
	// selects 10000. Clients asking for more are thinned to this.
	MaxQueryPoints int
}

// DefaultStore returns the serving-default store configuration (see
// Config.Store). Serving stores are strict-append: a point the store
// refuses (out of order, or a timestamp outside the representable
// range) is reported as rejected, never as accepted — the contract the
// write-ahead log's replay also relies on.
func DefaultStore() *monitor.Store {
	return monitor.NewTieredStore(tsdb.Config{
		Shards:       16,
		StrictAppend: true,
		Retention: tsdb.RetentionConfig{
			RawCapacity:   4096,
			TierCapacity:  1024,
			Tiers:         2,
			CompressBlock: 128,
		},
	})
}

// Server holds the serving state: the store, the estimate-on-ingest
// hook, and the HTTP plumbing around them.
type Server struct {
	cfg    Config
	store  *monitor.Store
	ingest *monitor.IngestEstimator
	start  time.Time
}

// NewServer returns a Server over cfg.
func NewServer(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = DefaultStore()
	}
	if cfg.Estimator == nil {
		cfg.Estimator = monitor.NewIngestEstimator(cfg.Store, cfg.Ingest)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxQueryPoints <= 0 {
		cfg.MaxQueryPoints = 10000
	}
	return &Server{
		cfg:    cfg,
		store:  cfg.Store,
		ingest: cfg.Estimator,
		start:  time.Now(),
	}
}

// Store exposes the backing store (reporting, tests).
func (s *Server) Store() *monitor.Store { return s.store }

// Ingest exposes the estimate-on-ingest hook (durability wiring, tests).
func (s *Server) Ingest() *monitor.IngestEstimator { return s.ingest }

// Handler returns the route mux. The returned handler is safe for
// concurrent use.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /api/v1/query", s.handleQuery)
	mux.HandleFunc("GET /api/v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /api/v1/series", s.handleSeries)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON writes v with status code; encode failures surface as 500s
// only if nothing was flushed yet.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// handleIngest consumes a JSON-lines batch (see IngestLine), appending
// every parseable point to the store and the estimate-on-ingest hook.
// Malformed lines are counted and reported, not fatal — a telemetry
// batch with one bad record must not lose the other 999 — unless every
// line fails, which returns 400.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// maxLineBytes bounds one line; longer lines are rejected
	// individually — the rest of the batch still lands (a Scanner's
	// ErrTooLong would silently drop every subsequent line).
	const maxLineBytes = 1 << 20
	body := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), 64<<10)
	resp := IngestResponse{}
	// seen doubles as the per-request series-name intern table: the fast
	// parser yields names as byte slices into the read buffer, and the
	// map lookup with a string(bytes) key is allocation-free, so each
	// distinct series name is materialized once per batch instead of
	// once per line.
	seen := map[string]string{}
	lineNo := 0
	intern := func(b []byte) (string, bool) {
		if id, ok := seen[string(b)]; ok {
			return id, false
		}
		id := string(b)
		seen[id] = id
		return id, true
	}
	ingestPoint := func(id string, p series.Point, isNew bool) {
		// An append the store refuses is a rejected line, not an
		// accepted one, and must not feed the estimator: an out-of-order
		// point that never landed would otherwise count as Accepted and
		// still poison the series' interval probe and analysis window.
		if aerr := s.store.Append(id, p); aerr != nil {
			resp.reject(lineNo, appendReason(aerr))
			if isNew {
				// Series counts series that landed points; un-intern so
				// a later accepted point still counts it.
				delete(seen, id)
			}
			return
		}
		if !s.ingest.Observe(id, p) {
			resp.EstimatorDropped++
		}
		resp.Accepted++
		if isNew {
			resp.Series++
		}
	}
	for {
		line, err := body.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			switch line = bytes.TrimRight(line, "\r\n"); {
			case len(line) > maxLineBytes:
				resp.reject(lineNo, fmt.Sprintf("line exceeds %d bytes", maxLineBytes))
			case len(line) == 0 || allSpace(line):
				// blank separator
			default:
				if fl, ok := fastParseLine(line); ok {
					id, isNew := intern(fl.series)
					ingestPoint(id, series.Point{Time: fl.t, Value: fl.value}, isNew)
					break
				}
				var in IngestLine
				if jerr := json.Unmarshal(line, &in); jerr != nil {
					resp.reject(lineNo, fmt.Sprintf("bad JSON: %v", jerr))
					break
				}
				p, perr := in.point()
				if perr != nil {
					resp.reject(lineNo, perr.Error())
					break
				}
				id, isNew := intern([]byte(in.Series))
				ingestPoint(id, p, isNew)
			}
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes after %d accepted points; split the batch", s.cfg.MaxBodyBytes, resp.Accepted))
				return
			}
			resp.reject(lineNo+1, err.Error())
			break
		}
	}
	if resp.Accepted == 0 && resp.Rejected > 0 {
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// appendReason renders a store rejection as an ingest error reason.
func appendReason(err error) string {
	switch {
	case errors.Is(err, tsdb.ErrOutOfOrder):
		return "out of order: timestamp precedes the series' newest stored sample"
	case errors.Is(err, tsdb.ErrTimeRange):
		return "timestamp outside the storable range (years 1678-2262)"
	default:
		return "store rejected the point: " + err.Error()
	}
}

func allSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}

// handleQuery answers a tier-stitched range read: ?series= (required),
// optional from/to (RFC3339 or Unix seconds; absent = unbounded) and
// max_points (defaulted and capped by MaxQueryPoints).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("series")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: series")
		return
	}
	from, err := parseTimeParam(q.Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from: "+err.Error())
		return
	}
	to, err := parseTimeParam(q.Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad to: "+err.Error())
		return
	}
	maxPoints := s.cfg.MaxQueryPoints
	if v := q.Get("max_points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad max_points: want a positive integer")
			return
		}
		if n < maxPoints {
			maxPoints = n
		}
	}
	res, err := s.store.QueryRange(id, from, to, maxPoints)
	if err != nil {
		// Only a genuinely unknown series is a 404. Any other store
		// failure (e.g. a corrupt replayed block surfacing at read
		// time) is a 500: masking it as "unknown series" would hide a
		// durability problem behind an answer that looks routine.
		if errors.Is(err, monitor.ErrNoSeries) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown series %q", id))
			return
		}
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("query %q: %v", id, err))
		return
	}
	writeJSON(w, http.StatusOK, queryResponseFrom(res))
}

// handleEstimate answers the live per-series estimate and poll advice:
// ?series= (required).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("series")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: series")
		return
	}
	adv, ok := s.ingest.Advice(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("series %q was never ingested", id))
		return
	}
	writeJSON(w, http.StatusOK, estimateResponseFrom(adv, s.store.NyquistRate(id)))
}

// handleSeries lists stored series; ?series= narrows to one id with
// full retention detail.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("series"); id != "" {
		st, err := s.store.DB().SeriesStats(id)
		if err != nil {
			if errors.Is(err, monitor.ErrNoSeries) {
				writeError(w, http.StatusNotFound, fmt.Sprintf("unknown series %q", id))
				return
			}
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("series %q: %v", id, err))
			return
		}
		writeJSON(w, http.StatusOK, seriesEntryFrom(*st))
		return
	}
	snap := s.store.Snapshot()
	resp := SeriesResponse{Series: make([]SeriesEntry, 0, len(snap))}
	for _, st := range snap {
		resp.Series = append(resp.Series, seriesEntryFrom(st))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats reports whole-store operator stats, including estimator
// cardinality accounting and (when durability is enabled) the WAL's
// state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var walStats *wal.Stats
	if s.cfg.WAL != nil {
		st := s.cfg.WAL.Stats()
		walStats = &st
	}
	writeJSON(w, http.StatusOK, statsResponseFrom(s.store.Stats(), s.ingest, walStats, time.Since(s.start)))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// parseTimeParam accepts RFC3339(Nano) timestamps or Unix seconds
// (fractional allowed); empty means unbounded (zero time).
func parseTimeParam(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t, nil
	}
	if t, err := timeFromUnixSeconds(v); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("%q is neither RFC3339 nor Unix seconds", v)
}

var errPointShape = errors.New("want {\"series\": string, \"ts\": RFC3339 string or Unix seconds, \"value\": number}")

// point validates an ingest line into a storable sample.
func (l *IngestLine) point() (series.Point, error) {
	if l.Series == "" {
		return series.Point{}, fmt.Errorf("missing series: %w", errPointShape)
	}
	if l.Value == nil {
		return series.Point{}, fmt.Errorf("missing value: %w", errPointShape)
	}
	raw := []byte(l.TS)
	if len(raw) == 0 || string(raw) == "null" {
		return series.Point{}, fmt.Errorf("missing ts: %w", errPointShape)
	}
	var (
		t   time.Time
		err error
	)
	if raw[0] == '"' {
		var s string
		if json.Unmarshal(raw, &s) != nil {
			return series.Point{}, fmt.Errorf("bad ts %s: %w", raw, errPointShape)
		}
		t, err = time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return series.Point{}, fmt.Errorf("bad ts %q: %w", s, errPointShape)
		}
	} else {
		t, err = timeFromUnixSeconds(string(raw))
		if err != nil {
			return series.Point{}, fmt.Errorf("bad ts %s: %v (%w)", raw, err, errPointShape)
		}
	}
	return series.Point{Time: t, Value: *l.Value}, nil
}

// timeFromUnixSeconds parses a decimal Unix-seconds literal exactly:
// the integer and fractional digits convert separately, so second- and
// millisecond-precision wire timestamps never pick up the ~100 ns noise
// a float64 epoch conversion would add (which would poison the store's
// delta-of-delta compression). Exponent forms fall back to float64 with
// that (documented) precision loss.
func timeFromUnixSeconds(s string) (time.Time, error) {
	if strings.ContainsAny(s, "eE") {
		sec, err := strconv.ParseFloat(s, 64)
		const maxAbs = float64(1<<63-1) / 1e9
		if err != nil || sec != sec || sec < -maxAbs || sec > maxAbs {
			return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
		}
		whole := int64(sec)
		return time.Unix(whole, int64((sec-float64(whole))*1e9)), nil
	}
	digits := s
	neg := false
	if strings.HasPrefix(digits, "-") {
		neg = true
		digits = digits[1:]
	}
	intPart, frac, _ := strings.Cut(digits, ".")
	if intPart == "" {
		if frac == "" {
			// "-", "." and "-." are not timestamps, not epoch 0.
			return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
		}
		intPart = "0"
	}
	// Unsigned parses: the sign was already stripped, and ParseInt would
	// accept a second one ("--1").
	usec, err := strconv.ParseUint(intPart, 10, 63)
	if err != nil {
		return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
	}
	sec := int64(usec)
	var ns int64
	if frac != "" {
		if len(frac) > 9 {
			frac = frac[:9] // sub-nanosecond digits truncate
		}
		uns, err := strconv.ParseUint(frac, 10, 63)
		if err != nil {
			return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
		}
		ns = int64(uns)
		for i := len(frac); i < 9; i++ {
			ns *= 10
		}
	}
	if neg {
		sec, ns = -sec, -ns
	}
	return time.Unix(sec, ns), nil
}
