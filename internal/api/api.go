// Package api is the serving surface of the monitoring toolkit: the
// HTTP handlers behind cmd/nyquistd. It turns the in-process pipeline —
// sharded compressed storage (internal/tsdb via monitor.Store) plus
// estimate-on-ingest (monitor.IngestEstimator) — into a network service
// external pollers can push telemetry into and query reconstructions,
// estimates and operator advice back out of.
//
// Endpoints (all JSON; see docs/API.md for schemas and curl examples):
//
//	POST /api/v1/ingest    batch ingest, one JSON object per line
//	GET  /api/v1/query     tier-stitched range read with a point budget;
//	                       ?match= fans one request across a series family,
//	                       ?reconstruct=&step= resamples server-side onto a
//	                       uniform grid (see reconstruct.go)
//	GET  /api/v1/estimate  live Nyquist estimate + poll advice for a series
//	GET  /api/v1/series    stored series inventory (retention detail per id)
//	GET  /api/v1/stats     whole-store operator stats
//	GET  /healthz          liveness (the process is up)
//	GET  /readyz           readiness (WAL replay finished; safe to send traffic)
//	GET  /metrics          Prometheus text exposition (internal/obs)
//
// Every ingested point lands in the store and feeds the series' live
// estimator; clean estimates retune the series' retention tiers, so the
// paper's estimate→retain loop closes for traffic the server never
// polled itself. Handlers are safe for concurrent use and stateless
// beyond the store/estimator pair, so one Server can sit behind any
// net/http server or mux.
//
// The server observes itself: every request passes the middleware chain
// in middleware.go (request ID → per-route metrics/logging → panic
// recovery), the full nyquistd_* metric inventory lives in metrics.go,
// and the optional self-scrape loop (selfscrape.go) feeds those metrics
// back into the server's own store as ordinary series.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/series"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the backing store. Nil selects the serving default:
	// 16-shard strict-append engine, 4096-point compressed raw rings,
	// two min/max/mean tiers of 1024 buckets, 128-entry Gorilla blocks.
	Store *monitor.Store
	// Estimator is the estimate-on-ingest hook. Nil builds one over
	// Store from Ingest; pass an existing estimator when it was already
	// wired elsewhere (the durability layer restores state into it
	// before the server starts).
	Estimator *monitor.IngestEstimator
	// Ingest parameterizes the per-series estimate-on-ingest hook
	// (ignored when Estimator is set).
	Ingest monitor.IngestConfig
	// WAL, when set, is the durability subsystem whose stats are
	// surfaced through /api/v1/stats. The server never writes to it
	// directly — sealed blocks reach the log through the store's seal
	// hook — so this is reporting-only wiring.
	WAL *wal.Durable
	// MaxBodyBytes bounds an ingest request body; zero selects 8 MiB.
	MaxBodyBytes int64
	// MaxQueryPoints caps (and defaults) a query's point budget; zero
	// selects 10000. Clients asking for more are thinned to this (the
	// response carries "clamped": true when that happens).
	MaxQueryPoints int
	// MaxQuerySeries caps how many series one ?match= query may answer;
	// zero selects 512. Extra matches are cut deterministically (smallest
	// ids win) and reported via "truncated": true.
	MaxQuerySeries int
	// Metrics is the registry the server instruments itself into and
	// serves at GET /metrics. Nil builds a fresh one — metrics are
	// always on; the registry is only injectable so tests and embedders
	// can read it.
	Metrics *obs.Registry
	// Logger receives structured request/error logs. Nil discards —
	// embedders and benchmarks stay quiet by default; cmd/nyquistd
	// passes a real handler.
	Logger *slog.Logger
	// SlowQuery is the request-latency threshold above which a request
	// is logged at Warn with its query. Zero selects 1s; negative
	// disables slow logging.
	SlowQuery time.Duration
}

// DefaultStore returns the serving-default store configuration (see
// Config.Store). Serving stores are strict-append: a point the store
// refuses (out of order, or a timestamp outside the representable
// range) is reported as rejected, never as accepted — the contract the
// write-ahead log's replay also relies on.
func DefaultStore() *monitor.Store {
	return monitor.NewTieredStore(tsdb.Config{
		Shards:       16,
		StrictAppend: true,
		CacheBytes:   32 << 20,
		Retention: tsdb.RetentionConfig{
			RawCapacity:   4096,
			TierCapacity:  1024,
			Tiers:         2,
			CompressBlock: 128,
		},
	})
}

// Server holds the serving state: the store, the estimate-on-ingest
// hook, and the HTTP plumbing around them.
type Server struct {
	cfg    Config
	store  *monitor.Store
	ingest *monitor.IngestEstimator
	start  time.Time

	metrics   *serverMetrics
	logger    *slog.Logger
	slowQuery time.Duration
	reqSeq    atomic.Int64

	// interned is the cross-request series-id intern table (see
	// ingest.go): the first sighting of a series name materializes the
	// string; every later batch — HTTP or bulk lane — resolves it with an
	// allocation-free lookup.
	interned interner

	// ready gates the data endpoints: false while the WAL replays into
	// the store (the listener is already up so probes and /metrics can
	// watch recovery), true once traffic is safe.
	ready atomic.Bool
	// walp is the durability layer, attached after replay via
	// SetDurable; nil on memory-only servers. Atomic because metric
	// gathers and handlers read it while startup writes it.
	walp atomic.Pointer[wal.Durable]
}

// NewServer returns a Server over cfg. The server starts ready; a boot
// sequence that replays a WAL after the listener is up should call
// SetReady(false) first and SetReady(true) when replay finishes.
func NewServer(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = DefaultStore()
	}
	if cfg.Estimator == nil {
		cfg.Estimator = monitor.NewIngestEstimator(cfg.Store, cfg.Ingest)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxQueryPoints <= 0 {
		cfg.MaxQueryPoints = 10000
	}
	if cfg.MaxQuerySeries <= 0 {
		cfg.MaxQuerySeries = 512
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	if cfg.SlowQuery == 0 {
		cfg.SlowQuery = time.Second
	}
	s := &Server{
		cfg:       cfg,
		store:     cfg.Store,
		ingest:    cfg.Estimator,
		start:     time.Now(),
		logger:    cfg.Logger,
		slowQuery: cfg.SlowQuery,
	}
	s.interned.m = make(map[string]string)
	if cfg.WAL != nil {
		s.walp.Store(cfg.WAL)
	}
	s.metrics = newServerMetrics(cfg.Metrics, s.store, s.ingest, s.walp.Load, s.start)
	s.ready.Store(true)
	return s
}

// Store exposes the backing store (reporting, tests).
func (s *Server) Store() *monitor.Store { return s.store }

// Ingest exposes the estimate-on-ingest hook (durability wiring, tests).
func (s *Server) Ingest() *monitor.IngestEstimator { return s.ingest }

// Metrics exposes the server's registry (self-scrape loop, tests).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// SetReady flips the readiness gate (see Server.ready).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetDurable attaches the durability layer after boot replay, making
// its stats visible to /api/v1/stats and the nyquistd_wal_* metrics.
func (s *Server) SetDurable(d *wal.Durable) { s.walp.Store(d) }

// ObserveWALFsync records one group-commit fsync duration — wire it to
// wal.Options.SyncObserver. Safe from the log's commit path: one
// histogram observe, no locks.
func (s *Server) ObserveWALFsync(d time.Duration) {
	s.metrics.walFsync.Observe(d.Seconds())
}

// Handler returns the instrumented route mux: every route passes the
// middleware chain (request ID, in-flight gauge, panic recovery, then
// per-route metrics/logging), and the data endpoints additionally gate
// on readiness. The returned handler is safe for concurrent use.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /api/v1/ingest", s.route("ingest", true, s.handleIngest))
	mux.Handle("GET /api/v1/query", s.route("query", true, s.handleQuery))
	mux.Handle("GET /api/v1/estimate", s.route("estimate", true, s.handleEstimate))
	mux.Handle("GET /api/v1/series", s.route("series", true, s.handleSeries))
	mux.Handle("GET /api/v1/stats", s.route("stats", false, s.handleStats))
	mux.Handle("GET /healthz", s.route("healthz", false, s.handleHealthz))
	mux.Handle("GET /readyz", s.route("readyz", false, s.handleReadyz))
	mux.Handle("GET /metrics", s.route("metrics", false, s.cfg.Metrics.Handler(func(error) {
		s.metrics.httpWriteErrs.Inc()
	}).ServeHTTP))
	return s.wrap(mux)
}

// writeJSON writes v with status code. An encode/write failure cannot
// be reported to the client (the header is committed), so it is counted
// and logged instead — a silent `_ = enc.Encode` is how response bugs
// hide.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.metrics.httpWriteErrs.Inc()
		s.logger.Warn("response write failed",
			"request_id", RequestIDFrom(r.Context()),
			"path", r.URL.Path,
			"status", code,
			"err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, code int, msg string) {
	s.writeJSON(w, r, code, errorBody{Error: msg})
}

// handleIngest consumes a JSON-lines batch (see IngestLine) through the
// batched zero-copy core in ingest.go: lines scan in place against a
// pooled buffer, points land through per-shard batch appends, and repeat
// series cost no per-line allocations. Malformed lines are counted and
// reported, not fatal — a telemetry batch with one bad record must not
// lose the other 999 — unless every line fails, which returns 400.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	resp := IngestResponse{}
	// Per-batch tallies, flushed into the registry once at the end: one
	// atomic add per counter per request instead of per line keeps the
	// instrumented hot path within its overhead budget.
	var tally ingestTally
	defer tally.flush(s.metrics)
	// runIngest folds every read failure except the body limit into the
	// response as a rejected line, so a non-nil error here is exactly the
	// 413 contract.
	if err := s.runIngest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), &resp, &tally); err != nil {
		s.writeError(w, r, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes after %d accepted points; split the batch", s.cfg.MaxBodyBytes, resp.Accepted))
		return
	}
	if resp.Accepted == 0 && resp.Rejected > 0 {
		s.writeJSON(w, r, http.StatusBadRequest, resp)
		return
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// ingestTally accumulates one batch's metric deltas locally; flush
// publishes them with a handful of atomic adds.
type ingestTally struct {
	lines, accepted, rejected, estDropped int64
	bytes                                 int64
	fast, fallback                        int64
	rejBadJSON, rejBadShape, rejTooLong   int64
	rejOutOfOrder, rejTimeRange           int64
	rejStoreOther, rejReadError           int64
}

func (t *ingestTally) flush(m *serverMetrics) {
	m.batchLines.Observe(float64(t.lines))
	m.batchBytes.Observe(float64(t.bytes))
	m.ingestAccepted.Add(t.accepted)
	m.ingestRejected.Add(t.rejected)
	m.ingestEstDropped.Add(t.estDropped)
	m.parseFast.Add(t.fast)
	m.parseFallback.Add(t.fallback)
	m.rejBadJSON.Add(t.rejBadJSON)
	m.rejBadShape.Add(t.rejBadShape)
	m.rejTooLong.Add(t.rejTooLong)
	m.rejOutOfOrder.Add(t.rejOutOfOrder)
	m.rejTimeRange.Add(t.rejTimeRange)
	m.rejStoreOther.Add(t.rejStoreOther)
	m.rejReadError.Add(t.rejReadError)
}

// appendReason renders a store rejection as an ingest error reason.
func appendReason(err error) string {
	switch {
	case errors.Is(err, tsdb.ErrOutOfOrder):
		return "out of order: timestamp precedes the series' newest stored sample"
	case errors.Is(err, tsdb.ErrTimeRange):
		return "timestamp outside the storable range (years 1678-2262)"
	default:
		//nyquist:allow-alloc reject path: the reason is rendered once per rejected point
		return "store rejected the point: " + err.Error()
	}
}

func allSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}

// handleQuery answers a tier-stitched range read: ?series= (one id) or
// ?match= (prefix/glob over the id space), optional from/to (RFC3339 or
// Unix seconds; absent = unbounded), max_points (defaulted and capped
// by MaxQueryPoints; a request above the cap is clamped and says so),
// and reconstruct=/step= for server-side resampling onto a uniform grid
// (see reconstruct.go).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("series")
	pattern := q.Get("match")
	switch {
	case id == "" && pattern == "":
		s.writeError(w, r, http.StatusBadRequest, "missing required parameter: series (or match)")
		return
	case id != "" && pattern != "":
		s.writeError(w, r, http.StatusBadRequest, "series and match are mutually exclusive")
		return
	}
	from, err := parseTimeParam(q.Get("from"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad from: "+err.Error())
		return
	}
	to, err := parseTimeParam(q.Get("to"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad to: "+err.Error())
		return
	}
	// An inverted range is a client bug (swapped parameters, a broken
	// dashboard time picker), not an empty window: answering 200 [] hides
	// it. Reject loudly.
	if !from.IsZero() && !to.IsZero() && from.After(to) {
		s.writeError(w, r, http.StatusBadRequest, "bad range: from after to")
		return
	}
	maxPoints := s.cfg.MaxQueryPoints
	clamped := false
	if v := q.Get("max_points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, r, http.StatusBadRequest, "bad max_points: want a positive integer")
			return
		}
		if n < maxPoints {
			maxPoints = n
		} else if n > maxPoints {
			// The budget silently shrinking under a dashboard that asked
			// for more is how "why is my graph decimated" tickets happen:
			// honor the cap but say so in the response.
			clamped = true
			s.metrics.queryClamped.Inc()
		}
	}
	spec, err := parseReconstruct(q)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if pattern != "" {
		s.handleQueryMatch(w, r, pattern, from, to, maxPoints, clamped, spec)
		return
	}
	t0 := time.Now()
	res, err := s.store.QueryRange(id, from, to, maxPoints)
	s.metrics.querySeconds.ObserveSince(t0)
	if err != nil {
		// Only a genuinely unknown series is a 404. Any other store
		// failure (e.g. a corrupt replayed block surfacing at read
		// time) is a 500: masking it as "unknown series" would hide a
		// durability problem behind an answer that looks routine.
		if errors.Is(err, monitor.ErrNoSeries) {
			s.writeError(w, r, http.StatusNotFound, fmt.Sprintf("unknown series %q", id))
			return
		}
		s.writeError(w, r, http.StatusInternalServerError, fmt.Sprintf("query %q: %v", id, err))
		return
	}
	s.metrics.queryTiers.Observe(float64(len(res.Tiers)))
	if res.Thinned {
		s.metrics.queryThinned.Inc()
	}
	resp := queryResponseFrom(res)
	resp.Clamped = clamped
	if spec.want {
		rec, err := reconstruct(res, spec, s.store.NyquistRate(id), from, maxPoints)
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, fmt.Sprintf("reconstruct %q: %v", id, err))
			return
		}
		applyReconstruction(&resp, rec)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleQueryMatch is the multi-series fan-in: one request answers every
// series matching the pattern, sharing one point budget. Zero matches is
// a 200 with an empty result set — dashboards poll patterns before the
// fleet reports in, and a 404 would page someone over an empty rack.
func (s *Server) handleQueryMatch(w http.ResponseWriter, r *http.Request, pattern string, from, to time.Time, maxPoints int, clamped bool, spec reconstructSpec) {
	t0 := time.Now()
	mres := s.store.QueryMatch(pattern, from, to, maxPoints, s.cfg.MaxQuerySeries)
	s.metrics.querySeconds.ObserveSince(t0)
	s.metrics.queryMatchSeries.Observe(float64(len(mres.Results)))
	resp := MatchResponse{
		Match:     pattern,
		Matches:   mres.Matches,
		Truncated: mres.Truncated,
		Clamped:   clamped,
		Results:   make([]QueryResponse, 0, len(mres.Results)),
	}
	// The per-series reconstruction budget mirrors the store's split of
	// the shared point budget.
	perBudget := maxPoints
	if len(mres.Results) > 0 {
		perBudget = maxPoints / len(mres.Results)
		if perBudget < 1 {
			perBudget = 1
		}
	}
	for _, res := range mres.Results {
		s.metrics.queryTiers.Observe(float64(len(res.Tiers)))
		if res.Thinned {
			s.metrics.queryThinned.Inc()
		}
		qr := queryResponseFrom(res)
		if spec.want {
			rec, err := reconstruct(res, spec, s.store.NyquistRate(res.ID), from, perBudget)
			if err != nil {
				s.writeError(w, r, http.StatusInternalServerError, fmt.Sprintf("reconstruct %q: %v", res.ID, err))
				return
			}
			applyReconstruction(&qr, rec)
			if qr.Clamped {
				resp.Clamped = true
			}
		}
		resp.Results = append(resp.Results, qr)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// applyReconstruction swaps a response's stored points for the
// reconstructed grid and annotates how the grid was produced.
func applyReconstruction(resp *QueryResponse, rec reconstruction) {
	resp.Points = make([]PointJSON, 0, len(rec.pts))
	for _, p := range rec.pts {
		resp.Points = append(resp.Points, PointJSON{TS: wireTime(p.Time), Value: p.Value})
	}
	resp.Reconstruct = rec.mode
	resp.StepSeconds = rec.step.Seconds()
	if rec.clamped {
		resp.Clamped = true
	}
}

// handleEstimate answers the live per-series estimate and poll advice:
// ?series= (required).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("series")
	if id == "" {
		s.writeError(w, r, http.StatusBadRequest, "missing required parameter: series")
		return
	}
	adv, ok := s.ingest.Advice(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Sprintf("series %q was never ingested", id))
		return
	}
	s.writeJSON(w, r, http.StatusOK, estimateResponseFrom(adv, s.store.NyquistRate(id)))
}

// handleSeries lists stored series; ?series= narrows to one id with
// full retention detail.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("series"); id != "" {
		st, err := s.store.DB().SeriesStats(id)
		if err != nil {
			if errors.Is(err, monitor.ErrNoSeries) {
				s.writeError(w, r, http.StatusNotFound, fmt.Sprintf("unknown series %q", id))
				return
			}
			s.writeError(w, r, http.StatusInternalServerError, fmt.Sprintf("series %q: %v", id, err))
			return
		}
		s.writeJSON(w, r, http.StatusOK, seriesEntryFrom(*st))
		return
	}
	snap := s.store.Snapshot()
	resp := SeriesResponse{Series: make([]SeriesEntry, 0, len(snap))}
	for _, st := range snap {
		resp.Series = append(resp.Series, seriesEntryFrom(st))
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleStats reports whole-store operator stats, including estimator
// cardinality accounting and (when durability is enabled) the WAL's
// state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var walStats *wal.Stats
	if d := s.walp.Load(); d != nil {
		st := d.Stats()
		walStats = &st
	}
	s.writeJSON(w, r, http.StatusOK, statsResponseFrom(s.store.Stats(), s.ingest, walStats, time.Since(s.start)))
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It never gates on readiness — an orchestrator that killed a replaying
// process for being "unhealthy" would turn every long recovery into a
// crash loop.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is readiness: 200 once WAL replay finished and the data
// endpoints accept traffic, 503 before.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{
			"status": "starting",
			"reason": "WAL replay in progress",
		})
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"status":         "ready",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// parseTimeParam accepts RFC3339(Nano) timestamps or Unix seconds
// (fractional allowed); empty means unbounded (zero time).
func parseTimeParam(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t, nil
	}
	if t, err := timeFromUnixSeconds(v); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("%q is neither RFC3339 nor Unix seconds", v)
}

var errPointShape = errors.New("want {\"series\": string, \"ts\": RFC3339 string or Unix seconds, \"value\": number}")

// point validates an ingest line into a storable sample.
func (l *IngestLine) point() (series.Point, error) {
	if l.Series == "" {
		return series.Point{}, fmt.Errorf("missing series: %w", errPointShape)
	}
	if l.Value == nil {
		return series.Point{}, fmt.Errorf("missing value: %w", errPointShape)
	}
	raw := []byte(l.TS)
	if len(raw) == 0 || string(raw) == "null" {
		return series.Point{}, fmt.Errorf("missing ts: %w", errPointShape)
	}
	var (
		t   time.Time
		err error
	)
	if raw[0] == '"' {
		var s string
		if json.Unmarshal(raw, &s) != nil {
			return series.Point{}, fmt.Errorf("bad ts %s: %w", raw, errPointShape)
		}
		t, err = time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return series.Point{}, fmt.Errorf("bad ts %q: %w", s, errPointShape)
		}
	} else {
		t, err = timeFromUnixSeconds(string(raw))
		if err != nil {
			return series.Point{}, fmt.Errorf("bad ts %s: %v (%w)", raw, err, errPointShape)
		}
	}
	return series.Point{Time: t, Value: *l.Value}, nil
}

// timeFromUnixSeconds parses a decimal Unix-seconds literal exactly:
// the integer and fractional digits convert separately, so second- and
// millisecond-precision wire timestamps never pick up the ~100 ns noise
// a float64 epoch conversion would add (which would poison the store's
// delta-of-delta compression). Exponent forms fall back to float64 with
// that (documented) precision loss.
func timeFromUnixSeconds(s string) (time.Time, error) {
	if strings.ContainsAny(s, "eE") {
		sec, err := strconv.ParseFloat(s, 64)
		const maxAbs = float64(1<<63-1) / 1e9
		if err != nil || sec != sec || sec < -maxAbs || sec > maxAbs {
			//nyquist:allow-alloc error path: a malformed timestamp bails the line off the fast path
			return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
		}
		whole := int64(sec)
		return time.Unix(whole, int64((sec-float64(whole))*1e9)), nil
	}
	digits := s
	neg := false
	if strings.HasPrefix(digits, "-") {
		neg = true
		digits = digits[1:]
	}
	intPart, frac, _ := strings.Cut(digits, ".")
	if intPart == "" {
		if frac == "" {
			// "-", "." and "-." are not timestamps, not epoch 0.
			//nyquist:allow-alloc error path: a malformed timestamp bails the line off the fast path
			return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
		}
		intPart = "0"
	}
	// Unsigned parses: the sign was already stripped, and ParseInt would
	// accept a second one ("--1").
	usec, err := strconv.ParseUint(intPart, 10, 63)
	if err != nil {
		//nyquist:allow-alloc error path: a malformed timestamp bails the line off the fast path
		return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
	}
	sec := int64(usec)
	var ns int64
	if frac != "" {
		if len(frac) > 9 {
			frac = frac[:9] // sub-nanosecond digits truncate
		}
		uns, err := strconv.ParseUint(frac, 10, 63)
		if err != nil {
			//nyquist:allow-alloc error path: a malformed timestamp bails the line off the fast path
			return time.Time{}, fmt.Errorf("%q is not a representable Unix-seconds timestamp", s)
		}
		ns = int64(uns)
		for i := len(frac); i < 9; i++ {
			ns *= 10
		}
	}
	if neg {
		sec, ns = -sec, -ns
	}
	return time.Unix(sec, ns), nil
}
