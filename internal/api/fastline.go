// The ingest fast path: a hand-rolled parser for the overwhelmingly
// common wire shape
//
//	{"series":"...","ts":<number|"RFC3339">,"value":<number>}
//
// in any key order, without encoding/json. Profiling the serving hot
// path puts ~a third of ingest CPU in the generic JSON decoder (object
// scanning, RawMessage and *float64 allocations, reflection); batches
// arrive at hundreds of thousands of lines per second, so that tax is
// the difference between holding the 500k points/s ingest bar with the
// WAL armed and not.
//
// The fast path is deliberately conservative: any escape sequence,
// duplicate or unknown key, nested value, or other irregularity makes it
// bail and the line takes the full encoding/json route instead — it is
// an optimization, never a second dialect. TestFastLineMatchesJSON
// differentially checks both parsers against each other.

package api

import (
	"math"
	"strconv"
	"time"
	"unicode/utf8"
	"unsafe"
)

// viewString returns b viewed as a string without copying. The view is
// only valid while b's backing buffer is neither reused nor mutated, so
// it is strictly for handing tokens to parse functions (strconv, the
// epoch parser, time.Parse with a fixed layout) that return scalars and
// retain nothing on success; errors carrying the view are discarded
// before the buffer can be recycled. This is what keeps the fast path at
// zero allocations per line — string(tok) at these call sites was one
// heap copy per number parsed.
//
//nyquist:view
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// fastLine is the fast path's output: the series name still as raw
// bytes (interned by the caller), the parsed timestamp, and the value.
type fastLine struct {
	series []byte
	t      time.Time
	value  float64
}

// fastParseLine attempts the fast path on one trimmed, non-empty line.
// ok=false means "fall back to encoding/json", not "reject the line".
//
//nyquist:hotpath
//nyquist:view
func fastParseLine(line []byte) (out fastLine, ok bool) {
	p := lineParser{b: line}
	p.space()
	if !p.eat('{') {
		return out, false
	}
	var haveSeries, haveTS, haveValue bool
	for {
		p.space()
		key, kok := p.simpleString()
		if !kok {
			return out, false
		}
		p.space()
		if !p.eat(':') {
			return out, false
		}
		p.space()
		switch string(key) {
		case "series":
			s, sok := p.simpleString()
			if !sok || haveSeries {
				return out, false
			}
			out.series = s
			haveSeries = true
		case "ts":
			if haveTS {
				return out, false
			}
			if s, sok := p.simpleString(); sok {
				//nyquist:allow-alloc RFC3339 string timestamps take the library parse; the numeric epoch shape is the zero-alloc case
				t, err := time.Parse(time.RFC3339Nano, viewString(s))
				if err != nil {
					return out, false
				}
				out.t = t
			} else {
				tok, nok := p.number()
				if !nok {
					return out, false
				}
				t, err := timeFromUnixSeconds(viewString(tok))
				if err != nil {
					return out, false
				}
				out.t = t
			}
			haveTS = true
		case "value":
			tok, nok := p.number()
			if !nok || haveValue {
				return out, false
			}
			v, err := strconv.ParseFloat(viewString(tok), 64)
			if err != nil || math.IsInf(v, 0) {
				return out, false
			}
			out.value = v
			haveValue = true
		default:
			return out, false
		}
		p.space()
		if p.eat(',') {
			continue
		}
		break
	}
	if !p.eat('}') {
		return out, false
	}
	p.space()
	if !p.done() {
		return out, false
	}
	return out, haveSeries && haveTS && haveValue && len(out.series) > 0
}

// lineParser is a minimal cursor over one line.
type lineParser struct {
	b []byte
	i int
}

func (p *lineParser) done() bool { return p.i >= len(p.b) }

func (p *lineParser) space() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t':
			p.i++
		default:
			return
		}
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// simpleString consumes a double-quoted string with no escapes,
// returning its inner bytes. Any backslash — or a control byte, which
// JSON strings forbid — bails, as does invalid UTF-8: encoding/json
// rewrites bad bytes to U+FFFD, and taking them raw here would store the
// same line under a different series name than the slow path (found by
// FuzzIngestLine). The slow path knows the full grammar.
//
//nyquist:view
func (p *lineParser) simpleString() ([]byte, bool) {
	if p.i >= len(p.b) || p.b[p.i] != '"' {
		return nil, false
	}
	start := p.i + 1
	for j := start; j < len(p.b); j++ {
		switch c := p.b[j]; {
		case c == '\\' || c < 0x20:
			return nil, false
		case c == '"':
			out := p.b[start:j]
			if !utf8.Valid(out) {
				return nil, false
			}
			p.i = j + 1
			return out, true
		}
	}
	return nil, false
}

// number consumes a number token and validates it against the JSON
// number grammar before returning it. Go's strconv.ParseFloat (and the
// decimal epoch parser) are laxer than JSON — they take "+1", ".5",
// "5.", "01", "Inf" — and the fast path must not become a second
// dialect where those forms sneak through, so anything outside the JSON
// grammar bails to the slow path (which rejects the whole line).
//
//nyquist:view
func (p *lineParser) number() ([]byte, bool) {
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.i++
		default:
			goto donetok
		}
	}
donetok:
	tok := p.b[start:p.i]
	if !jsonNumber(tok) {
		return nil, false
	}
	return tok, true
}

// jsonNumber reports whether tok matches RFC 8259's number production:
// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
func jsonNumber(tok []byte) bool {
	i, n := 0, len(tok)
	if i < n && tok[i] == '-' {
		i++
	}
	switch {
	case i < n && tok[i] == '0':
		i++
	case i < n && tok[i] >= '1' && tok[i] <= '9':
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < n && tok[i] == '.' {
		i++
		if i >= n || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < n && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < n && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= n || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == n
}
