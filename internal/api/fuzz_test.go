package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/dcsim"
)

// FuzzIngestLine fuzzes the ingest fast path against encoding/json: on
// any input, if fastParseLine accepts, the slow path must accept the
// same line and produce the identical (series, time, value) — the
// property TestFastLineMatchesJSON checks on curated lines, here under
// coverage-guided mutation. A divergence is a second wire dialect: the
// fate of a point would depend on which parser happened to see it.
func FuzzIngestLine(f *testing.F) {
	// Curated seeds: the differential test's edge shapes.
	for _, raw := range []string{
		`{"series":"a/b","ts":1753600000,"value":1.5}`,
		`{"series":"a/b","ts":1753600000.25,"value":-3}`,
		`{"series":"a/b","ts":"2026-07-01T00:00:00Z","value":42}`,
		`{"series":"a/b","ts":"2026-07-01T00:00:00.123456789+02:00","value":0.001}`,
		`{"value":7,"ts":1753600000,"series":"reordered"}`,
		`{ "series" : "spaced" , "ts" : 1 , "value" : 2 }`,
		`{"series":"a/b","ts":1.7536e9,"value":1}`,
		`{"series":"esc\"aped","ts":1,"value":1}`,
		`{"series":"a","ts":1,"value":1,"extra":true}`,
		`{"series":"a","ts":{"nested":1},"value":1}`,
		`{"series":"","ts":1,"value":1}`,
		`{"series":"dup","ts":1,"ts":2,"value":1}`,
		`{"series":"a","ts":1,"value":+1.5}`,
		`{"series":"a","ts":.5,"value":1}`,
		`{"series":"a","ts":01,"value":1}`,
		`{"series":"a","ts":1,"value":1e}`,
		"{\"series\":\"ctrl\tchar\",\"ts\":1,\"value\":1}",
		`not json at all`,
		"",
		"\r\n",
	} {
		f.Add([]byte(raw))
	}
	// Hostile wire traffic: real lines a push client derives from the
	// regime generators — churned "#e0001" ids, skewed RFC3339Nano
	// stamps, backfilled duplicates — exactly what a live server chews
	// through in the chaos harness.
	for _, name := range []string{"cardinality", "clockskew"} {
		sc, err := dcsim.BuildScenario(name, 101, 4)
		if err != nil {
			f.Fatal(err)
		}
		g := dcsim.NewWireGen(sc, dcsim.WireConfig{SamplesPerRound: 8})
		for _, ws := range g.Round() {
			f.Add(fmt.Appendf(nil, `{"series":%q,"ts":%q,"value":%v}`,
				ws.ID, ws.Time.Format("2006-01-02T15:04:05.999999999Z07:00"), ws.Value))
		}
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		// The handler hands fastParseLine one "\r\n"-trimmed, non-empty
		// line; mirror that framing.
		line := bytes.TrimRight(raw, "\r\n")
		if len(line) == 0 {
			return
		}
		fl, ok := fastParseLine(line)
		if !ok {
			return // fast path bailed: the slow path owns the line
		}
		var in IngestLine
		if err := json.Unmarshal(line, &in); err != nil {
			t.Fatalf("fast path accepted %q but encoding/json rejects it: %v", line, err)
		}
		p, err := in.point()
		if err != nil {
			t.Fatalf("fast path accepted %q but the slow path rejects the point: %v", line, err)
		}
		if string(fl.series) != in.Series || !fl.t.Equal(p.Time) || fl.value != p.Value {
			t.Fatalf("parsers disagree on %q: fast (%s, %v, %v) vs slow (%s, %v, %v)",
				line, fl.series, fl.t, fl.value, in.Series, p.Time, p.Value)
		}
	})
}
