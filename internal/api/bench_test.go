package api

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/wal"
)

// BenchmarkIngestBatch measures the serving hot path: one op is a
// 1000-line POST /api/v1/ingest batch (store append + estimate-on-ingest
// for every line), spread over 16 series. points/s is reported as a
// custom metric; BENCH_ingest.json records the measured figures.
func BenchmarkIngestBatch(b *testing.B) {
	srv := NewServer(Config{})
	h := srv.Handler()
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Pre-render one batch per iteration window: distinct timestamps per
	// iteration keep the store appending forward, as a real poller
	// would. Bodies are rebuilt cheaply by timestamp offset.
	mkBatch := func(iter int) string {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return sb.String()
	}
	// Bodies never repeat — the strict serving store rejects timestamp
	// rewinds, so each iteration advances the grid — but only a small
	// rotating window is retained, rendered outside the timed sections,
	// so the benchmark's own strings don't become GC ballast.
	bodies := make([]string, 8)
	refill := func(from int) {
		for j := range bodies {
			bodies[j] = mkBatch(from + j)
		}
	}
	refill(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(bodies) == 0 {
			b.StopTimer()
			refill(i)
			b.StartTimer()
		}
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(bodies[i%len(bodies)]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkIngestWithWAL is BenchmarkIngestBatch with durability armed:
// the same 1000-line batches, but every sealed block is framed into the
// write-ahead log under the default 10ms group-commit window. The delta
// against BenchmarkIngestBatch is the whole durability tax on the hot
// path; BENCH_ingest.json records both.
func BenchmarkIngestWithWAL(b *testing.B) {
	store := DefaultStore()
	est := monitor.NewIngestEstimator(store, monitor.IngestConfig{})
	d, err := wal.Open(b.TempDir(), store, est, wal.Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	srv := NewServer(Config{Store: store, Estimator: est, WAL: d})
	h := srv.Handler()
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	mkBatch := func(iter int) string {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return sb.String()
	}
	// Same rotating-window body generation as BenchmarkIngestBatch:
	// timestamps always advance (the strict store and the WAL both
	// require it) without retaining unbounded strings.
	bodies := make([]string, 8)
	refill := func(from int) {
		for j := range bodies {
			bodies[j] = mkBatch(from + j)
		}
	}
	refill(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(bodies) == 0 {
			b.StopTimer()
			refill(i)
			b.StartTimer()
		}
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(bodies[i%len(bodies)]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkQueryRecent measures the read hot path: a recent-window query
// with a 500-point budget against a store holding compressed history.
func BenchmarkQueryRecent(b *testing.B) {
	srv := NewServer(Config{})
	h := srv.Handler()
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	var sb strings.Builder
	for i := 0; i < 8192; i++ {
		fmt.Fprintf(&sb, `{"series":"bench/dev00/metric","ts":%d,"value":%.2f}`+"\n",
			start.Add(time.Duration(i)*30*time.Second).Unix(), 40+float64(i%37)*0.25)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(sb.String()))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		b.Fatalf("seed ingest: HTTP %d", rw.Code)
	}
	from := start.Add(7000 * 30 * time.Second).Format(time.RFC3339)
	url := "/api/v1/query?series=bench/dev00/metric&from=" + from + "&max_points=500"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, url, nil))
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rw.Code)
		}
	}
}

// BenchmarkIngestBatchAffinity measures the batched ingest core alone —
// runIngest driven straight over an in-memory body, no HTTP plumbing —
// so the number isolates zero-copy parse + shard-affinity AppendBatch +
// estimator run-feeding. The delta against BenchmarkIngestBatch is the
// HTTP tax; the delta against the seed's per-line loop is the tentpole.
func BenchmarkIngestBatchAffinity(b *testing.B) {
	srv := NewServer(Config{})
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	mkBatch := func(iter int) []byte {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return []byte(sb.String())
	}
	bodies := make([][]byte, 8)
	refill := func(from int) {
		for j := range bodies {
			bodies[j] = mkBatch(from + j)
		}
	}
	refill(0)
	var br bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(bodies) == 0 {
			b.StopTimer()
			refill(i)
			b.StartTimer()
		}
		br.Reset(bodies[i%len(bodies)])
		var resp IngestResponse
		var tally ingestTally
		if err := srv.runIngest(&br, &resp, &tally); err != nil {
			b.Fatal(err)
		}
		if resp.Accepted != batchLines {
			b.Fatalf("accepted %d/%d (rejected %d: %+v)", resp.Accepted, batchLines, resp.Rejected, resp.Errors)
		}
		tally.flush(srv.metrics)
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkBulkLane measures the plain-TCP length-prefixed lane end to
// end over loopback: one op is a framed 1000-line batch written to a
// live ServeBulk listener plus the synchronous response read. Compare
// with BenchmarkIngestBatch (same batches over HTTP) for the framing
// win.
func BenchmarkBulkLane(b *testing.B) {
	srv := NewServer(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeBulk(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	mkFrame := func(iter int) []byte {
		var sb strings.Builder
		sb.Grow(batchLines*64 + 4)
		sb.Write([]byte{0, 0, 0, 0})
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		frame := []byte(sb.String())
		binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
		return frame
	}
	frames := make([][]byte, 8)
	refill := func(from int) {
		for j := range frames {
			frames[j] = mkFrame(from + j)
		}
	}
	refill(0)
	var hdr [4]byte
	respBuf := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(frames) == 0 {
			b.StopTimer()
			refill(i)
			b.StartTimer()
		}
		if _, err := conn.Write(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			b.Fatal(err)
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n > len(respBuf) {
			respBuf = make([]byte, n)
		}
		if _, err := io.ReadFull(conn, respBuf[:n]); err != nil {
			b.Fatal(err)
		}
		var out IngestResponse
		if err := json.Unmarshal(respBuf[:n], &out); err != nil {
			b.Fatal(err)
		}
		if out.Accepted != batchLines {
			b.Fatalf("accepted %d/%d (rejected %d)", out.Accepted, batchLines, out.Rejected)
		}
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkIngestWALParallel measures aggregate serving throughput with
// durability armed: GOMAXPROCS concurrent writers, each owning a
// disjoint series family, drive 1000-line batches through the batched
// core simultaneously — the soak test's topology, timed. This is the
// number the 2M points/s goal is chased on: per-series estimator locks
// and per-shard store locks mean independent writers should scale to
// core count. Bodies are pre-rendered once per writer; between
// iterations only the fixed-width timestamp digits are patched in
// place, so body generation stays off the timed path without
// StopTimer (unavailable under RunParallel).
func BenchmarkIngestWALParallel(b *testing.B) {
	store := DefaultStore()
	est := monitor.NewIngestEstimator(store, monitor.IngestConfig{})
	d, err := wal.Open(b.TempDir(), store, est, wal.Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	srv := NewServer(Config{Store: store, Estimator: est, WAL: d})
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	var gid int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := atomic.AddInt64(&gid, 1)
		// Per-writer body: fixed-width 10-digit timestamps so each
		// iteration can advance every line by delta with digit surgery at
		// recorded offsets instead of re-rendering JSON.
		var sb strings.Builder
		sb.Grow(batchLines * 72)
		offs := make([]int, batchLines)
		tsv := make([]int64, batchLines)
		for i := 0; i < batchLines; i++ {
			ts := start.Add(time.Duration(i/nSeries) * 30 * time.Second).Unix()
			fmt.Fprintf(&sb, `{"series":"par%d/dev%02d/metric","ts":`, w, i%nSeries)
			offs[i] = sb.Len()
			fmt.Fprintf(&sb, `%010d,"value":%.2f}`+"\n", ts, 40+float64(i%37)*0.25)
			tsv[i] = ts
		}
		body := []byte(sb.String())
		delta := int64(batchLines / nSeries * 30)
		var br bytes.Reader
		for pb.Next() {
			br.Reset(body)
			var resp IngestResponse
			var tally ingestTally
			if err := srv.runIngest(&br, &resp, &tally); err != nil {
				b.Fatal(err)
			}
			if resp.Accepted != batchLines {
				b.Fatalf("writer %d: accepted %d/%d (rejected %d: %+v)",
					w, resp.Accepted, batchLines, resp.Rejected, resp.Errors)
			}
			tally.flush(srv.metrics)
			for i, off := range offs {
				v := tsv[i] + delta
				tsv[i] = v
				for p := off + 9; p >= off; p-- {
					body[p] = byte('0' + v%10)
					v /= 10
				}
			}
		}
	})
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}
