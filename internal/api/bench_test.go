package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/wal"
)

// BenchmarkIngestBatch measures the serving hot path: one op is a
// 1000-line POST /api/v1/ingest batch (store append + estimate-on-ingest
// for every line), spread over 16 series. points/s is reported as a
// custom metric; BENCH_ingest.json records the measured figures.
func BenchmarkIngestBatch(b *testing.B) {
	srv := NewServer(Config{})
	h := srv.Handler()
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Pre-render one batch per iteration window: distinct timestamps per
	// iteration keep the store appending forward, as a real poller
	// would. Bodies are rebuilt cheaply by timestamp offset.
	mkBatch := func(iter int) string {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return sb.String()
	}
	// Bodies never repeat — the strict serving store rejects timestamp
	// rewinds, so each iteration advances the grid — but only a small
	// rotating window is retained, rendered outside the timed sections,
	// so the benchmark's own strings don't become GC ballast.
	bodies := make([]string, 8)
	refill := func(from int) {
		for j := range bodies {
			bodies[j] = mkBatch(from + j)
		}
	}
	refill(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(bodies) == 0 {
			b.StopTimer()
			refill(i)
			b.StartTimer()
		}
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(bodies[i%len(bodies)]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkIngestWithWAL is BenchmarkIngestBatch with durability armed:
// the same 1000-line batches, but every sealed block is framed into the
// write-ahead log under the default 10ms group-commit window. The delta
// against BenchmarkIngestBatch is the whole durability tax on the hot
// path; BENCH_ingest.json records both.
func BenchmarkIngestWithWAL(b *testing.B) {
	store := DefaultStore()
	est := monitor.NewIngestEstimator(store, monitor.IngestConfig{})
	d, err := wal.Open(b.TempDir(), store, est, wal.Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	srv := NewServer(Config{Store: store, Estimator: est, WAL: d})
	h := srv.Handler()
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	mkBatch := func(iter int) string {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return sb.String()
	}
	// Same rotating-window body generation as BenchmarkIngestBatch:
	// timestamps always advance (the strict store and the WAL both
	// require it) without retaining unbounded strings.
	bodies := make([]string, 8)
	refill := func(from int) {
		for j := range bodies {
			bodies[j] = mkBatch(from + j)
		}
	}
	refill(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%len(bodies) == 0 {
			b.StopTimer()
			refill(i)
			b.StartTimer()
		}
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(bodies[i%len(bodies)]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkQueryRecent measures the read hot path: a recent-window query
// with a 500-point budget against a store holding compressed history.
func BenchmarkQueryRecent(b *testing.B) {
	srv := NewServer(Config{})
	h := srv.Handler()
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	var sb strings.Builder
	for i := 0; i < 8192; i++ {
		fmt.Fprintf(&sb, `{"series":"bench/dev00/metric","ts":%d,"value":%.2f}`+"\n",
			start.Add(time.Duration(i)*30*time.Second).Unix(), 40+float64(i%37)*0.25)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(sb.String()))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		b.Fatalf("seed ingest: HTTP %d", rw.Code)
	}
	from := start.Add(7000 * 30 * time.Second).Format(time.RFC3339)
	url := "/api/v1/query?series=bench/dev00/metric&from=" + from + "&max_points=500"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, url, nil))
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rw.Code)
		}
	}
}
