package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// BenchmarkIngestBatch measures the serving hot path: one op is a
// 1000-line POST /api/v1/ingest batch (store append + estimate-on-ingest
// for every line), spread over 16 series. points/s is reported as a
// custom metric; BENCH_ingest.json records the measured figures.
func BenchmarkIngestBatch(b *testing.B) {
	srv := NewServer(Config{})
	h := srv.Handler()
	const (
		batchLines = 1000
		nSeries    = 16
	)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Pre-render one batch per iteration window: distinct timestamps per
	// iteration keep the store appending forward, as a real poller
	// would. Bodies are rebuilt cheaply by timestamp offset.
	mkBatch := func(iter int) string {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"bench/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return sb.String()
	}
	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = mkBatch(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(bodies[i%len(bodies)]))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rw.Code, rw.Body.String())
		}
	}
	b.StopTimer()
	pointsPerSec := float64(b.N) * batchLines / b.Elapsed().Seconds()
	b.ReportMetric(pointsPerSec, "points/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLines), "ns/point")
}

// BenchmarkQueryRecent measures the read hot path: a recent-window query
// with a 500-point budget against a store holding compressed history.
func BenchmarkQueryRecent(b *testing.B) {
	srv := NewServer(Config{})
	h := srv.Handler()
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	var sb strings.Builder
	for i := 0; i < 8192; i++ {
		fmt.Fprintf(&sb, `{"series":"bench/dev00/metric","ts":%d,"value":%.2f}`+"\n",
			start.Add(time.Duration(i)*30*time.Second).Unix(), 40+float64(i%37)*0.25)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(sb.String()))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		b.Fatalf("seed ingest: HTTP %d", rw.Code)
	}
	from := start.Add(7000 * 30 * time.Second).Format(time.RFC3339)
	url := "/api/v1/query?series=bench/dev00/metric&from=" + from + "&max_points=500"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, url, nil))
		if rw.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rw.Code)
		}
	}
}
