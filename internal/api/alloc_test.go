package api

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestFastParseZeroAlloc pins the per-line contract of the zero-copy
// hot path: parsing a well-formed line and resolving an already-interned
// series id must not allocate at all. fastParseLine returns views into
// the input buffer, and a warm interner answers the []byte lookup via
// the compiler's map[string(b)] optimization — if either ever regresses
// to a copy, this test fails with a nonzero count.
func TestFastParseZeroAlloc(t *testing.T) {
	srv := NewServer(Config{})
	line := []byte(`{"series":"alloc/dev00/metric","ts":1753500000,"value":41.25}`)
	fl, ok := fastParseLine(line)
	if !ok {
		t.Fatalf("fast path refused canonical line %q", line)
	}
	srv.interned.intern(fl.series) // warm: first intern copies, later hits must not

	if n := testing.AllocsPerRun(200, func() {
		fl, ok := fastParseLine(line)
		if !ok {
			t.Fatal("fast path refused line mid-run")
		}
		if got := srv.interned.intern(fl.series); got != "alloc/dev00/metric" {
			t.Fatalf("interned %q", got)
		}
	}); n != 0 {
		t.Fatalf("fast parse + warm intern allocates %.2f/line, want 0", n)
	}
}

// TestIngestBatchAllocCeiling pins the amortized allocation budget of
// the whole batched core — zero-copy parse, shard-affinity AppendBatch,
// seal path, estimator run-feeding — on warm repeat-series traffic.
// Steady state is NOT zero per batch: the estimator emits a StreamUpdate
// every EmitEvery accepted points and sealing retains compressed block
// payloads, both by design. But everything per-point in the serving
// layer must stay off the heap, so the whole pipeline is pinned to a
// small fraction of an allocation per point. The seed's per-line loop
// sat near 4 allocs/point; the batched core measures ~0.3 (estimator
// emissions + seals), and this ceiling fails the build if a per-point
// allocation ever creeps back in.
func TestIngestBatchAllocCeiling(t *testing.T) {
	const (
		batchLines = 1000
		nSeries    = 16
		runs       = 20
		ceiling    = 0.6 // allocs per point, amortized over a warm batch
	)
	srv := NewServer(Config{})
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	mkBatch := func(iter int) []byte {
		var sb strings.Builder
		sb.Grow(batchLines * 64)
		base := start.Add(time.Duration(iter*batchLines/nSeries) * 30 * time.Second)
		for i := 0; i < batchLines; i++ {
			ts := base.Add(time.Duration(i/nSeries) * 30 * time.Second)
			fmt.Fprintf(&sb, `{"series":"alloc/dev%02d/metric","ts":%d,"value":%.2f}`+"\n",
				i%nSeries, ts.Unix(), 40+float64(i%37)*0.25)
		}
		return []byte(sb.String())
	}
	// Bodies are pre-rendered outside the measured region; the strict
	// store requires advancing timestamps, so each run consumes the next
	// window. Two warm batches first: they populate the interner, the
	// batch pool, and every per-series estimator window.
	bodies := make([][]byte, runs+3)
	for i := range bodies {
		bodies[i] = mkBatch(i)
	}
	var br bytes.Reader
	next := 0
	run := func() {
		br.Reset(bodies[next])
		next++
		var resp IngestResponse
		var tally ingestTally
		if err := srv.runIngest(&br, &resp, &tally); err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != batchLines {
			t.Fatalf("accepted %d/%d (rejected %d: %+v)", resp.Accepted, batchLines, resp.Rejected, resp.Errors)
		}
		tally.flush(srv.metrics)
	}
	run()
	run()
	perBatch := testing.AllocsPerRun(runs, run)
	if perPoint := perBatch / batchLines; perPoint > ceiling {
		t.Fatalf("warm ingest batch allocates %.0f/batch = %.3f/point, ceiling %.2f/point",
			perBatch, perPoint, ceiling)
	}
}
