// Request plumbing around the handlers: per-request IDs, the
// status/bytes-recording ResponseWriter, the outer wrapper (in-flight
// gauge + panic recovery), and the per-route instrumentation (latency,
// status-class counts, body bytes, structured logs, readiness gate).
// Panics stop here: a handler bug becomes a counted, logged 500 with a
// request ID — never a torn connection with no trace.

package api

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

type ctxKey int

const requestIDKey ctxKey = 0

// RequestIDFrom returns the request's ID ("" outside the middleware).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// nextRequestID mints an ID unique within and across sessions: the
// server's start time scopes the sequence, so IDs from before a restart
// never collide with ones after.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%x-%06d", s.start.UnixNano()&0xffffffff, s.reqSeq.Add(1))
}

// statusRecorder captures what left the wire: status code, body bytes,
// and whether the header was committed (the recovery middleware may
// only write a 500 while it is not).
type statusRecorder struct {
	http.ResponseWriter
	status   int
	bytes    int64
	wrote    bool
	writeErr bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	if err != nil {
		r.writeErr = true
	}
	return n, err
}

// Flush passes through so streaming responses keep working behind the
// recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap is the outermost middleware: request ID, in-flight gauge, and
// panic recovery. Recovery is outermost-but-one so every inner layer —
// route instrumentation included — is covered.
func (s *Server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := s.nextRequestID()
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))
		w.Header().Set("X-Request-Id", rid)
		rec := &statusRecorder{ResponseWriter: w}
		s.metrics.httpInFlight.Add(1)
		defer s.metrics.httpInFlight.Add(-1)
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				// The sanctioned abort-this-connection panic: not a bug,
				// not ours to swallow.
				panic(p)
			}
			s.metrics.httpPanics.Inc()
			s.logger.Error("handler panic",
				"request_id", rid,
				"method", r.Method,
				"path", r.URL.Path,
				"panic", fmt.Sprint(p),
				"stack", string(debug.Stack()))
			if !rec.wrote {
				s.writeError(rec, r, http.StatusInternalServerError, "internal error (request "+rid+")")
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// route wraps one endpoint with its per-handler instrumentation. gated
// routes answer 503 until SetReady(true) — the WAL-replay window —
// while probes and /metrics stay reachable throughout.
func (s *Server) route(name string, gated bool, h http.HandlerFunc) http.Handler {
	latency := s.metrics.httpLatency.With(name)
	bodyBytes := s.metrics.httpBodyBytes.With(name)
	respBytes := s.metrics.httpRespBytes.With(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if gated && !s.ready.Load() {
			s.writeError(w, r, http.StatusServiceUnavailable, "starting: WAL replay in progress, retry shortly")
		} else {
			h(w, r)
		}
		elapsed := time.Since(t0)
		latency.Observe(elapsed.Seconds())
		if r.ContentLength > 0 {
			bodyBytes.Add(r.ContentLength)
		}
		status := http.StatusOK
		if rec, ok := w.(*statusRecorder); ok {
			if rec.wrote {
				status = rec.status
			}
			respBytes.Add(rec.bytes)
		}
		s.metrics.httpRequests.With(name, statusClass(status)).Inc()
		if s.slowQuery > 0 && elapsed >= s.slowQuery {
			s.logger.Warn("slow request",
				"request_id", RequestIDFrom(r.Context()),
				"handler", name,
				"method", r.Method,
				"path", r.URL.Path,
				"query", r.URL.RawQuery,
				"status", status,
				"elapsed", elapsed)
		} else if s.logger.Enabled(r.Context(), slog.LevelDebug) {
			s.logger.Debug("request",
				"request_id", RequestIDFrom(r.Context()),
				"handler", name,
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"elapsed", elapsed)
		}
	})
}

// statusClass buckets a status code into the exposition label: "2xx",
// "4xx", ... — per-code cardinality buys nothing at this endpoint
// count.
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
