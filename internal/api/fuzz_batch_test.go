package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dcsim"
	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
)

// diffPair is one differential-ingest fixture: a server driven through
// the batched core (runIngest) and a twin store/estimator pair driven
// through the reference per-line algorithm. Estimators are advice-only
// (nil store) and uncapped so their feeds can't retune retention or
// drop series mid-batch — the stores stay pure functions of the accept/
// reject stream, which is the thing under test.
type diffPair struct {
	srv      *Server
	refStore *monitor.Store
	refEst   *monitor.IngestEstimator
}

func newDiffPair() *diffPair {
	mk := func() *monitor.Store {
		return monitor.NewTieredStore(tsdb.Config{
			Shards:       4,
			StrictAppend: true,
			Retention: tsdb.RetentionConfig{
				RawCapacity:   64,
				TierCapacity:  32,
				Tiers:         2,
				CompressBlock: 16,
			},
		})
	}
	return &diffPair{
		srv: NewServer(Config{
			Store:     mk(),
			Estimator: monitor.NewIngestEstimator(nil, monitor.IngestConfig{}),
		}),
		refStore: mk(),
		refEst:   monitor.NewIngestEstimator(nil, monitor.IngestConfig{}),
	}
}

// referenceIngest is the per-line oracle: the seed handler's algorithm —
// bufio.ReadBytes, fast/fallback parse, one store.Append and one
// estimator.Observe per line — preserved verbatim as the semantic
// contract the batched core must reproduce bit for bit.
func referenceIngest(store *monitor.Store, est *monitor.IngestEstimator, raw []byte) IngestResponse {
	body := bufio.NewReaderSize(bytes.NewReader(raw), 64<<10)
	resp := IngestResponse{}
	seen := map[string]string{}
	lineNo := 0
	intern := func(b []byte) (string, bool) {
		if id, ok := seen[string(b)]; ok {
			return id, false
		}
		id := string(b)
		seen[id] = id
		return id, true
	}
	ingestPoint := func(id string, p series.Point, isNew bool) {
		if aerr := store.Append(id, p); aerr != nil {
			resp.reject(lineNo, appendReason(aerr))
			if isNew {
				delete(seen, id)
			}
			return
		}
		if !est.Observe(id, p) {
			resp.EstimatorDropped++
		}
		resp.Accepted++
		if isNew {
			resp.Series++
		}
	}
	for {
		line, err := body.ReadBytes('\n')
		if len(line) > 0 {
			lineNo++
			switch line = bytes.TrimRight(line, "\r\n"); {
			case len(line) > maxLineBytes:
				resp.reject(lineNo, lineTooLongReason)
			case len(line) == 0 || allSpace(line):
			default:
				if fl, ok := fastParseLine(line); ok {
					id, isNew := intern(fl.series)
					ingestPoint(id, series.Point{Time: fl.t, Value: fl.value}, isNew)
					break
				}
				var in IngestLine
				if jerr := json.Unmarshal(line, &in); jerr != nil {
					resp.reject(lineNo, "bad JSON: "+jerr.Error())
					break
				}
				p, perr := in.point()
				if perr != nil {
					resp.reject(lineNo, perr.Error())
					break
				}
				id, isNew := intern([]byte(in.Series))
				ingestPoint(id, p, isNew)
			}
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			resp.reject(lineNo+1, err.Error())
			break
		}
	}
	return resp
}

// runDiff feeds one batch body through both implementations and fails on
// any observable divergence: the JSON response (accept/reject verdicts,
// reasons, error lines, series and estimator-drop counts), the stored
// bytes per series, and the estimators' full per-series tuning state.
func runDiff(t *testing.T, d *diffPair, body io.Reader, raw []byte) {
	t.Helper()
	resp := IngestResponse{}
	var tally ingestTally
	if err := d.srv.runIngest(body, &resp, &tally); err != nil {
		t.Fatalf("runIngest returned %v for a plain reader (only the HTTP body limit may error)", err)
	}
	want := referenceIngest(d.refStore, d.refEst, raw)

	if tally.accepted+tally.rejected != int64(resp.Accepted+resp.Rejected) {
		t.Fatalf("tally accounting diverges from response: tally %d+%d, response %d+%d",
			tally.accepted, tally.rejected, resp.Accepted, resp.Rejected)
	}
	got, _ := json.Marshal(resp)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(got, wantJSON) {
		t.Fatalf("responses diverge on %q:\nbatched:  %s\nper-line: %s", truncateRaw(raw), got, wantJSON)
	}

	// Canonical snapshot rendering: every stored byte and counter, with
	// the in-progress tier bucket dereferenced (its pointer identity is
	// not part of the stored state).
	render := func(ss tsdb.SeriesSnapshot) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s ny=%v gap=%v last=%v/%v app=%d comp=%d drop=%d\n",
			ss.ID, ss.NyquistRate, ss.Gap, ss.LastTime, ss.HaveLast, ss.Appends, ss.Compacted, ss.Dropped)
		for _, seg := range ss.Raw {
			fmt.Fprintf(&b, "raw pts=%v blk=%x n=%d\n", seg.Points, seg.Block.Data(), seg.Block.Len())
		}
		fmt.Fprintf(&b, "active=%v\n", ss.Active)
		for _, tr := range ss.Tiers {
			fmt.Fprintf(&b, "tier w=%v buckets=%+v", tr.Width, tr.Buckets)
			if tr.Cur != nil {
				fmt.Fprintf(&b, " cur=%+v", *tr.Cur)
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	snap := func(s *monitor.Store) map[string]string {
		out := map[string]string{}
		if err := s.DB().ExportSeries(func(ss tsdb.SeriesSnapshot) error {
			out[ss.ID] = render(ss)
			return nil
		}); err != nil {
			t.Fatalf("export: %v", err)
		}
		return out
	}
	gotSnap, wantSnap := snap(d.srv.Store()), snap(d.refStore)
	if len(gotSnap) != len(wantSnap) {
		t.Fatalf("stored series diverge: batched %d, per-line %d", len(gotSnap), len(wantSnap))
	}
	for id, w := range wantSnap {
		if g := gotSnap[id]; g != w {
			t.Fatalf("stored state diverges for %q:\nbatched:  %s\nper-line: %s", id, g, w)
		}
	}

	gotState, wantState := d.srv.Ingest().ExportState(), d.refEst.ExportState()
	if len(gotState) != len(wantState) {
		t.Fatalf("estimator series diverge: batched %d, per-line %d", len(gotState), len(wantState))
	}
	for i := range wantState {
		if gotState[i] != wantState[i] {
			t.Fatalf("estimator state diverges for %q:\nbatched:  %+v\nper-line: %+v",
				wantState[i].Series, gotState[i], wantState[i])
		}
	}
}

func truncateRaw(raw []byte) []byte {
	if len(raw) > 256 {
		return raw[:256]
	}
	return raw
}

// FuzzIngestBatch is the batch-level differential fuzz: any body handed
// to the zero-copy batched core and to the reference per-line
// implementation must produce identical accept/reject verdicts and
// reasons per line, identical stored bytes, and identical estimator
// feeds. FuzzIngestLine holds the two parsers equal on one line; this
// holds the whole pipeline — scanning, interning, shard regrouping,
// chunk flushing, error-list merging — equal on arbitrary batches.
func FuzzIngestBatch(f *testing.F) {
	for _, raw := range []string{
		"",
		"\n",
		"\r\n\r\n",
		`{"series":"a","ts":1,"value":1}`,
		"{\"series\":\"a\",\"ts\":1,\"value\":1}\n{\"series\":\"a\",\"ts\":2,\"value\":2}\n",
		// Same series split around a reject: the reject must not count the
		// series out (Series counts series with >=1 accepted point).
		"{\"series\":\"a\",\"ts\":5,\"value\":1}\n{\"series\":\"a\",\"ts\":3,\"value\":2}\n{\"series\":\"a\",\"ts\":9,\"value\":3}\n",
		// A series whose only point is rejected: not counted.
		"{\"series\":\"a\",\"ts\":5,\"value\":1}\n{\"series\":\"b\",\"ts\":7,\"value\":1}\nnot json\n{\"series\":\"b\",\"ts\":4,\"value\":2}\n",
		// Interleaved series, out-of-order inside one, blank separators,
		// CRLF framing, no trailing newline.
		"{\"series\":\"x\",\"ts\":1,\"value\":1}\r\n\r\n{\"series\":\"y\",\"ts\":1,\"value\":1}\r\n{\"series\":\"x\",\"ts\":0,\"value\":9}\r\n{\"series\":\"y\",\"ts\":2,\"value\":2}",
		// Fallback-path lines (escapes, reordered keys) mixed with fast.
		"{\"series\":\"esc\\\"aped\",\"ts\":1,\"value\":1}\n{\"value\":7,\"ts\":2,\"series\":\"esc\\\"aped\"}\n{\"series\":\"plain\",\"ts\":\"2026-07-01T00:00:00Z\",\"value\":3}\n",
		// More than maxIngestErrors failures: the detail list truncates at
		// five in line order.
		"a\nb\nc\nd\ne\nf\ng\n",
		"   \t  \n{\"series\":\"ws\",\"ts\":1,\"value\":1}\n\t\n",
	} {
		f.Add([]byte(raw))
	}
	// Hostile wire rounds as whole batches: churned ids, skewed stamps,
	// backfilled duplicates — each regime's round is one body.
	for _, name := range []string{"cardinality", "backfill", "clockskew", "podchurn"} {
		sc, err := dcsim.BuildScenario(name, 101, 4)
		if err != nil {
			f.Fatal(err)
		}
		g := dcsim.NewWireGen(sc, dcsim.WireConfig{SamplesPerRound: 8})
		for round := 0; round < 2; round++ {
			var body []byte
			for _, ws := range g.Round() {
				body = fmt.Appendf(body, "{\"series\":%q,\"ts\":%q,\"value\":%v}\n",
					ws.ID, ws.Time.Format("2006-01-02T15:04:05.999999999Z07:00"), ws.Value)
			}
			f.Add(body)
		}
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 64<<10 {
			return
		}
		runDiff(t, newDiffPair(), bytes.NewReader(raw), raw)
	})
}

// errReader yields its payload in small, randomly-sized reads so the
// scanner's buffer-compaction and partial-line paths run, then ends with
// a non-EOF error: the batched core must fold it into the response as a
// rejected line exactly like the per-line path.
type stutterReader struct {
	data []byte
	rng  *rand.Rand
	err  error
}

func (r *stutterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		return 0, io.EOF
	}
	n := 1 + r.rng.Intn(min(len(r.data), min(len(p), 37)))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// TestIngestBatchDifferentialLarge drives batches big enough to cross
// the core's chunk-flush threshold several times — the multi-chunk
// error-merge and estimator-run paths a fuzz-sized input can't reach —
// through stuttering reads, and holds them to the per-line oracle.
func TestIngestBatchDifferentialLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clocks := map[int]int{}
	var sb strings.Builder
	for i := 0; i < 3*ingestFlushPoints+257; i++ {
		sid := rng.Intn(24)
		switch rng.Intn(20) {
		case 0: // late point -> strict-append reject
			fmt.Fprintf(&sb, "{\"series\":\"big/dev%02d\",\"ts\":%d,\"value\":%.3f}\n",
				sid, base.Unix()+int64(clocks[sid])-int64(1+rng.Intn(50)), rng.NormFloat64())
		case 1: // malformed
			sb.WriteString("{\"series\":\"big/dev\",\"ts\":}\n")
		case 2: // blank separator
			sb.WriteString("\r\n")
		case 3: // fallback path (reordered keys)
			clocks[sid] += 1 + rng.Intn(5)
			fmt.Fprintf(&sb, "{\"value\":%.3f,\"ts\":%d,\"series\":\"big/dev%02d\"}\n",
				rng.NormFloat64(), base.Unix()+int64(clocks[sid]), sid)
		default:
			clocks[sid] += 1 + rng.Intn(5)
			fmt.Fprintf(&sb, "{\"series\":\"big/dev%02d\",\"ts\":%d,\"value\":%.3f}\n",
				sid, base.Unix()+int64(clocks[sid]), rng.NormFloat64())
		}
	}
	raw := []byte(sb.String())
	runDiff(t, newDiffPair(), &stutterReader{data: raw, rng: rng}, raw)
}

// TestIngestBatchReadErrorParity: a mid-stream read failure surfaces as
// one rejected line (reason = the error text) at the next line number,
// after every complete line before it was processed — the per-line
// path's contract.
func TestIngestBatchReadErrorParity(t *testing.T) {
	raw := []byte("{\"series\":\"a\",\"ts\":1,\"value\":1}\n{\"series\":\"a\",\"ts\":2,\"value\":2}\n")
	boom := errors.New("connection torn mid-batch")
	d := newDiffPair()
	resp := IngestResponse{}
	var tally ingestTally
	if err := d.srv.runIngest(&stutterReader{data: raw, rng: rand.New(rand.NewSource(1)), err: boom}, &resp, &tally); err != nil {
		t.Fatalf("read errors must fold into the response, got %v", err)
	}
	if resp.Accepted != 2 || resp.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 2 accepted + 1 rejected read-error line", resp.Accepted, resp.Rejected)
	}
	if len(resp.Errors) != 1 || resp.Errors[0].Line != 3 || resp.Errors[0].Reason != boom.Error() {
		t.Fatalf("errors = %+v, want line 3 rejected with %q", resp.Errors, boom)
	}
	if tally.rejReadError != 1 {
		t.Fatalf("rejReadError = %d, want 1", tally.rejReadError)
	}
}
