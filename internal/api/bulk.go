// The plain-TCP bulk ingest lane (nyquistd -bulk-addr): the same
// JSON-lines batches as POST /api/v1/ingest, framed with a 4-byte
// big-endian length prefix instead of HTTP. High-rate pushers pay HTTP's
// per-request tax — header parsing, routing, response headers — hundreds
// of times per second at 2M points/s with 4096-line batches; the bulk
// lane strips the exchange to length+payload over one long-lived
// connection while reusing the exact parse/append core (ingest.go), so
// both lanes share one accounting contract and one metrics inventory.
//
// Wire protocol (see docs/API.md "Bulk lane"):
//
//	client → server:  repeated frames [uint32 big-endian N][N bytes JSON-lines]
//	server → client:  per frame, [uint32 big-endian M][M bytes JSON]
//
// The response JSON is the same IngestResponse as the HTTP endpoint, or
// {"error": "..."} for frame-level failures (oversize frame, server not
// ready). A frame longer than MaxBodyBytes draws an error response and
// closes the connection — the stream offset can't be trusted past a
// frame the server refused to read. Closing the connection between
// frames is the clean shutdown.

package api

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// bulkReadBuffer sizes each connection's buffered reader; frames larger
// than this stream through it in chunks.
const bulkReadBuffer = 64 << 10

// ServeBulk accepts bulk-lane connections on ln until the listener
// closes, serving each connection on its own goroutine. Closing ln is
// the shutdown signal: in-flight frames finish, and ServeBulk returns
// nil.
func (s *Server) ServeBulk(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBulkConn(conn)
	}
}

func (s *Server) serveBulkConn(conn net.Conn) {
	s.metrics.bulkConns.Add(1)
	defer s.metrics.bulkConns.Add(-1)
	defer conn.Close()
	var (
		hdr     [4]byte
		payload []byte
		out     bytes.Buffer
		br      bytes.Reader
		rd      = bufio.NewReaderSize(conn, bulkReadBuffer)
		wr      = bufio.NewWriterSize(conn, 4<<10)
	)
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			// EOF on a frame boundary is the clean hangup; anything else
			// (mid-header cut, reset) has no recovery either way.
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if int64(n) > s.cfg.MaxBodyBytes {
			// Mirror of HTTP's 413. The payload was never read, so the
			// stream offset is unknown from here: answer and hang up.
			s.writeBulkFrame(wr, &out, errorBody{Error: fmt.Sprintf(
				"frame exceeds %d bytes; split the batch", s.cfg.MaxBodyBytes)})
			wr.Flush()
			return
		}
		if int(n) > cap(payload) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(rd, payload); err != nil {
			return
		}
		s.metrics.bulkFrames.Inc()
		s.metrics.bulkBytes.Add(int64(n))
		if !s.ready.Load() {
			// Same gate as the HTTP data endpoints (middleware.go): no
			// writes land while the WAL replays. The connection survives —
			// the pusher retries the frame.
			if s.writeBulkFrame(wr, &out, errorBody{Error: "starting: WAL replay in progress, retry shortly"}) != nil {
				return
			}
			if wr.Flush() != nil {
				return
			}
			continue
		}
		resp := IngestResponse{}
		var tally ingestTally
		br.Reset(payload)
		// A bytes.Reader can't hit the HTTP body limit, so the error
		// return is always nil here; every line-level failure is already
		// inside resp.
		_ = s.runIngest(&br, &resp, &tally)
		tally.flush(s.metrics)
		if s.writeBulkFrame(wr, &out, resp) != nil {
			return
		}
		if wr.Flush() != nil {
			return
		}
	}
}

// writeBulkFrame encodes v as one length-prefixed JSON response frame.
// An encode failure is counted like an HTTP response-write failure — it
// cannot be reported to this client either.
func (s *Server) writeBulkFrame(w io.Writer, buf *bytes.Buffer, v any) error {
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.metrics.httpWriteErrs.Inc()
		return err
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}
