// The server's metric inventory: every nyquistd_* family, registered
// once per Server. Two bridging styles coexist here. Measurements the
// subsystems already keep (tsdb appends, WAL syncs, estimator retunes)
// surface through func metrics that sample the owning layer's stats at
// gather time — the storage and durability packages stay free of any
// obs import, and there is no double bookkeeping to drift. Measurements
// only the HTTP layer can see (request latency, reject reasons, query
// stitch time) are first-class instruments updated on the hot path;
// those children are resolved once here so handlers never pay the
// label-lookup map walk per request.

package api

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

// statsTTL bounds how often a metrics gather may re-snapshot the store
// and WAL. A gather touches each subsystem stat a dozen times (one per
// family); without the cache a tight self-scrape interval would walk
// every shard a dozen times per tick.
const statsTTL = 50 * time.Millisecond

// cached memoizes a stats snapshot for statsTTL.
type cached[T any] struct {
	fetch func() T
	mu    sync.Mutex
	at    time.Time
	v     T
}

func (c *cached[T]) get() T {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > statsTTL {
		c.v = c.fetch()
		c.at = now
	}
	return c.v
}

// serverMetrics holds the hot-path instrument children the handlers
// update directly. Func-metric families are registered but not stored:
// the registry owns them and samples the closures at gather time.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP surface (labeled vecs; per-code children resolved on demand
	// since the code class is only known after the handler ran).
	httpRequests  *obs.CounterVec // handler, code class
	httpLatency   *obs.HistogramVec
	httpBodyBytes *obs.CounterVec
	httpRespBytes *obs.CounterVec
	httpInFlight  *obs.Gauge
	httpPanics    *obs.Counter
	httpWriteErrs *obs.Counter

	// Ingest accounting, flushed once per batch from local tallies.
	ingestAccepted   *obs.Counter
	ingestRejected   *obs.Counter
	ingestEstDropped *obs.Counter
	parseFast        *obs.Counter
	parseFallback    *obs.Counter
	batchLines       *obs.Histogram
	batchBytes       *obs.Histogram

	// Bulk lane (the plain-TCP length-prefixed ingest listener).
	bulkConns  *obs.Gauge
	bulkFrames *obs.Counter
	bulkBytes  *obs.Counter

	rejBadJSON    *obs.Counter
	rejBadShape   *obs.Counter
	rejTooLong    *obs.Counter
	rejOutOfOrder *obs.Counter
	rejTimeRange  *obs.Counter
	rejStoreOther *obs.Counter
	rejReadError  *obs.Counter

	// Read path.
	querySeconds     *obs.Histogram
	queryTiers       *obs.Histogram
	queryThinned     *obs.Counter
	queryClamped     *obs.Counter
	queryMatchSeries *obs.Histogram

	// Durability: fsync wall time, fed through Server.ObserveWALFsync
	// from the log's group-commit path.
	walFsync *obs.Histogram
}

// queryTierBuckets bound the per-query tier fan-out histogram: a query
// answered from the raw ring touches 1 tier; deep history walks raw
// plus every downsampled tier.
var queryTierBuckets = []float64{0, 1, 2, 3, 4, 8}

// newServerMetrics registers the full inventory on reg. getWAL is
// called at gather time so the WAL family reports zeros before the
// durability layer attaches (and on memory-only servers).
func newServerMetrics(reg *obs.Registry, store *monitor.Store, est *monitor.IngestEstimator, getWAL func() *wal.Durable, start time.Time) *serverMetrics {
	m := &serverMetrics{reg: reg}

	m.httpRequests = reg.CounterVec("nyquistd_http_requests_total",
		"HTTP requests served, by handler and status class.", "handler", "code")
	m.httpLatency = reg.HistogramVec("nyquistd_http_request_seconds",
		"Wall time per HTTP request, by handler.", obs.LatencyBuckets, "handler")
	m.httpBodyBytes = reg.CounterVec("nyquistd_http_request_body_bytes_total",
		"Request body bytes received, by handler (Content-Length when declared).", "handler")
	m.httpRespBytes = reg.CounterVec("nyquistd_http_response_bytes_total",
		"Response body bytes written, by handler.", "handler")
	m.httpInFlight = reg.Gauge("nyquistd_http_in_flight",
		"HTTP requests currently being served.")
	m.httpPanics = reg.Counter("nyquistd_http_panics_total",
		"Handler panics caught by the recovery middleware.")
	m.httpWriteErrs = reg.Counter("nyquistd_http_write_errors_total",
		"Response encode/write failures (client gone mid-response, or a marshal bug).")

	points := reg.CounterVec("nyquistd_ingest_points_total",
		"Ingested lines by outcome: accepted into the store, rejected, or accepted with the estimator at its series cap.", "result")
	m.ingestAccepted = points.With("accepted")
	m.ingestRejected = points.With("rejected")
	m.ingestEstDropped = points.With("estimator_dropped")
	parse := reg.CounterVec("nyquistd_ingest_parse_total",
		"Ingest lines by parse path: the allocation-free fast parser vs the encoding/json fallback.", "path")
	m.parseFast = parse.With("fast")
	m.parseFallback = parse.With("fallback")
	rejects := reg.CounterVec("nyquistd_ingest_rejects_total",
		"Rejected ingest lines by reason.", "reason")
	m.rejBadJSON = rejects.With("bad_json")
	m.rejBadShape = rejects.With("bad_shape")
	m.rejTooLong = rejects.With("too_long")
	m.rejOutOfOrder = rejects.With("out_of_order")
	m.rejTimeRange = rejects.With("time_range")
	m.rejStoreOther = rejects.With("store_other")
	m.rejReadError = rejects.With("read_error")
	m.batchLines = reg.Histogram("nyquistd_ingest_batch_lines",
		"Non-blank lines per ingest batch.", obs.SizeBuckets)
	m.batchBytes = reg.Histogram("nyquistd_ingest_batch_bytes",
		"Payload bytes consumed per ingest batch (HTTP body or bulk frame), counted once by the ingest core.", obs.SizeBuckets)

	m.bulkConns = reg.Gauge("nyquistd_bulk_connections",
		"Bulk-lane TCP connections currently open.")
	m.bulkFrames = reg.Counter("nyquistd_bulk_frames_total",
		"Length-prefixed batch frames processed on the bulk lane.")
	m.bulkBytes = reg.Counter("nyquistd_bulk_bytes_total",
		"Payload bytes received on the bulk lane (frame bodies, excluding length prefixes).")

	m.querySeconds = reg.Histogram("nyquistd_query_seconds",
		"Tier-stitched range-read wall time (store read + stitch, excluding JSON encoding).", obs.LatencyBuckets)
	m.queryTiers = reg.Histogram("nyquistd_query_tiers",
		"Storage tiers contributing per query (1 = raw ring only).", queryTierBuckets)
	m.queryThinned = reg.Counter("nyquistd_query_thinned_total",
		"Queries whose stitched result exceeded the point budget and was stride-decimated.")
	m.queryClamped = reg.Counter("nyquistd_query_clamped_total",
		"Queries whose max_points exceeded the server cap and were clamped to it.")
	m.queryMatchSeries = reg.Histogram("nyquistd_query_match_series",
		"Series answered per ?match= fan-in query.", obs.SizeBuckets)

	m.walFsync = reg.Histogram("nyquistd_wal_fsync_seconds",
		"WAL group-commit fsync wall time.", obs.LatencyBuckets)

	// ---- func-metric bridges ----

	ts := &cached[tsdb.Stats]{fetch: store.Stats}
	reg.GaugeFunc("nyquistd_tsdb_series", "Stored series.",
		func() float64 { return float64(ts.get().Series) })
	reg.GaugeFunc("nyquistd_tsdb_raw_points", "Full-resolution samples currently retained.",
		func() float64 { return float64(ts.get().RawPoints) })
	reg.GaugeFunc("nyquistd_tsdb_tier_buckets", "Downsampled tier buckets currently retained.",
		func() float64 { return float64(ts.get().Buckets) })
	reg.CounterFunc("nyquistd_tsdb_appends_total", "Points ever appended to the store.",
		func() float64 { return float64(ts.get().Appends) })
	reg.CounterFunc("nyquistd_tsdb_compacted_total", "Raw samples cascaded into downsampled tiers.",
		func() float64 { return float64(ts.get().Compacted) })
	reg.CounterFunc("nyquistd_tsdb_dropped_total", "Samples aged out of the last tier (the only data the engine forgets).",
		func() float64 { return float64(ts.get().Dropped) })
	reg.CounterFunc("nyquistd_tsdb_sealed_blocks_total", "Raw blocks sealed (compressed) over the store's lifetime.",
		func() float64 { return float64(ts.get().SealedBlocks) })
	reg.GaugeFunc("nyquistd_tsdb_compressed_bytes", "Sealed Gorilla-block payload bytes currently held.",
		func() float64 { return float64(ts.get().CompressedBytes) })
	reg.GaugeFunc("nyquistd_tsdb_compressed_entries", "Points and buckets held in sealed blocks.",
		func() float64 { return float64(ts.get().CompressedEntries) })

	reg.CounterFunc("nyquistd_query_cache_hits_total", "Sealed-block decodes served from the decoded-block cache.",
		func() float64 { return float64(ts.get().Cache.Hits) })
	reg.CounterFunc("nyquistd_query_cache_misses_total", "Sealed-block decodes that missed the cache and ran the codec.",
		func() float64 { return float64(ts.get().Cache.Misses) })
	reg.CounterFunc("nyquistd_query_cache_evictions_total", "Decoded-block cache entries LRU-evicted at the byte budget.",
		func() float64 { return float64(ts.get().Cache.Evictions) })
	reg.CounterFunc("nyquistd_query_cache_invalidations_total", "Decoded-block cache entries dropped because their block left retention.",
		func() float64 { return float64(ts.get().Cache.Invalidations) })
	reg.GaugeFunc("nyquistd_query_cache_bytes", "Decoded-block cache occupancy in bytes.",
		func() float64 { return float64(ts.get().Cache.Bytes) })
	reg.GaugeFunc("nyquistd_query_cache_entries", "Decoded-block cache entries currently held.",
		func() float64 { return float64(ts.get().Cache.Entries) })
	reg.GaugeFunc("nyquistd_query_cache_max_bytes", "Decoded-block cache byte budget (0 = cache disabled).",
		func() float64 { return float64(ts.get().Cache.MaxBytes) })

	reg.GaugeFunc("nyquistd_estimator_series", "Series with a live estimator window.",
		func() float64 { return float64(est.Len()) })
	reg.CounterFunc("nyquistd_estimator_probes_total", "Interval probes completed (first lock per series, plus re-probes that locked).",
		func() float64 { return float64(est.Probes()) })
	reg.CounterFunc("nyquistd_estimator_reprobes_total", "Re-probes triggered by interval drift past the tolerance band.",
		func() float64 { return float64(est.Reprobes()) })
	reg.CounterFunc("nyquistd_estimator_retunes_total", "Retention retunes applied after a clean estimate streak.",
		func() float64 { return float64(est.Retunes()) })
	reg.CounterFunc("nyquistd_estimator_aliased_refreshes_total", "Estimate refreshes rejected as aliased/unstable (clean streak reset).",
		func() float64 { return float64(est.AliasedRefreshes()) })
	reg.CounterFunc("nyquistd_estimator_evictions_total", "Idle series evicted at the estimator's series cap.",
		func() float64 { return float64(est.Evicted()) })
	reg.CounterFunc("nyquistd_estimator_rejected_total", "Observations dropped because the series cap held and nothing was idle.",
		func() float64 { return float64(est.Rejected()) })

	ws := &cached[wal.Stats]{fetch: func() wal.Stats {
		if d := getWAL(); d != nil {
			return d.Stats()
		}
		return wal.Stats{}
	}}
	reg.GaugeFunc("nyquistd_wal_enabled", "1 when the durability layer is attached.",
		func() float64 {
			if getWAL() != nil {
				return 1
			}
			return 0
		})
	reg.CounterFunc("nyquistd_wal_records_total", "Records appended to the write-ahead log this session.",
		func() float64 { return float64(ws.get().Log.Records) })
	reg.GaugeFunc("nyquistd_wal_bytes", "Bytes across live WAL segments.",
		func() float64 { return float64(ws.get().Log.Bytes) })
	reg.GaugeFunc("nyquistd_wal_segments", "Live WAL segment files.",
		func() float64 { return float64(ws.get().Log.Segments) })
	reg.CounterFunc("nyquistd_wal_syncs_total", "WAL group commits (fsyncs) this session.",
		func() float64 { return float64(ws.get().Log.Syncs) })
	reg.CounterFunc("nyquistd_wal_rotations_total", "WAL segment rotations this session (size-triggered plus snapshot boundaries).",
		func() float64 { return float64(ws.get().Log.Rotations) })
	reg.CounterFunc("nyquistd_wal_errors_total", "WAL write/sync/scrub errors this session; non-zero means durability is degraded.",
		func() float64 { return float64(ws.get().Log.Errors) })
	reg.CounterFunc("nyquistd_wal_snapshots_total", "Block snapshots taken this session.",
		func() float64 { return float64(ws.get().Snapshots) })
	reg.CounterFunc("nyquistd_wal_snapshot_errors_total", "Failed snapshot attempts this session.",
		func() float64 { return float64(ws.get().SnapshotErrors) })
	reg.CounterFunc("nyquistd_wal_scrub_runs_total", "Background CRC scrub passes this session.",
		func() float64 { return float64(ws.get().ScrubRuns) })
	reg.CounterFunc("nyquistd_wal_scrub_files_total", "Files read by scrub passes this session.",
		func() float64 { return float64(ws.get().ScrubFiles) })
	reg.CounterFunc("nyquistd_wal_scrub_corrupt_total", "Files that failed a scrub checksum; non-zero means a durable copy is rotting.",
		func() float64 { return float64(ws.get().ScrubCorrupt) })
	reg.GaugeFunc("nyquistd_wal_replay_points", "Points recovered into the store at boot.",
		func() float64 { return float64(ws.get().Replay.Points) })
	reg.GaugeFunc("nyquistd_wal_replay_skipped_points", "Replayed points skipped as snapshot-covered duplicates or out of order.",
		func() float64 { return float64(ws.get().Replay.SkippedPoints) })

	reg.Gauge("nyquistd_up", "Always 1 while the process serves; the self-scrape loop turns this into a liveness series.").Set(1)
	reg.GaugeFunc("nyquistd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("nyquistd_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })

	return m
}
