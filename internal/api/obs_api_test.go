package api

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint drives real traffic through the server and then
// checks GET /metrics: right content type, every required family
// present, and request accounting that matches the traffic sent.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	lines := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		lines = append(lines, fmt.Sprintf(`{"series":"m.cpu","ts":%d,"value":%.6f}`,
			apiStart.Add(time.Duration(i)*diurnalStep).Unix(), diurnalValue(i)))
	}
	postLines(t, ts.URL, lines)
	resp, err := http.Get(ts.URL + "/api/v1/query?series=m.cpu")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if rid := mresp.Header.Get("X-Request-Id"); rid == "" {
		t.Fatal("/metrics response missing X-Request-Id")
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`nyquistd_http_requests_total{handler="ingest",code="2xx"} 1`,
		`nyquistd_http_requests_total{handler="query",code="2xx"} 1`,
		`nyquistd_ingest_points_total{result="accepted"} 64`,
		`nyquistd_ingest_parse_total{path="fast"} 64`,
		"nyquistd_tsdb_appends_total 64",
		"nyquistd_tsdb_series 1",
		"nyquistd_estimator_series 1",
		"nyquistd_wal_enabled 0",
		"nyquistd_up 1",
		"# TYPE nyquistd_http_request_seconds histogram",
		"# TYPE nyquistd_query_seconds histogram",
		"# TYPE nyquistd_wal_fsync_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i <= 0 || i == len(line)-1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestReadinessGate pins the liveness/readiness split: while not ready
// the data endpoints 503 but /healthz and /metrics keep answering, and
// /readyz flips with the gate.
func TestReadinessGate(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SetReady(false)

	status := func(method, path, body string) int {
		t.Helper()
		var (
			resp *http.Response
			err  error
		)
		if method == http.MethodPost {
			resp, err = http.Post(ts.URL+path, "application/x-ndjson", strings.NewReader(body))
		} else {
			resp, err = http.Get(ts.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status(http.MethodGet, "/readyz", ""); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while starting: HTTP %d, want 503", got)
	}
	if got := status(http.MethodPost, "/api/v1/ingest", `{"series":"x","ts":1,"value":2}`); got != http.StatusServiceUnavailable {
		t.Fatalf("ingest while starting: HTTP %d, want 503", got)
	}
	if got := status(http.MethodGet, "/api/v1/query?series=x", ""); got != http.StatusServiceUnavailable {
		t.Fatalf("query while starting: HTTP %d, want 503", got)
	}
	if got := status(http.MethodGet, "/healthz", ""); got != http.StatusOK {
		t.Fatalf("/healthz while starting: HTTP %d, want 200 (liveness must not gate)", got)
	}
	if got := status(http.MethodGet, "/metrics", ""); got != http.StatusOK {
		t.Fatalf("/metrics while starting: HTTP %d, want 200", got)
	}
	if st := srv.Store().Stats(); st.Appends != 0 {
		t.Fatalf("store received %d appends through a closed gate", st.Appends)
	}

	srv.SetReady(true)
	if got := status(http.MethodGet, "/readyz", ""); got != http.StatusOK {
		t.Fatalf("/readyz when ready: HTTP %d, want 200", got)
	}
	if got := status(http.MethodPost, "/api/v1/ingest", `{"series":"x","ts":1,"value":2}`); got != http.StatusOK {
		t.Fatalf("ingest when ready: HTTP %d, want 200", got)
	}
}

// TestPanicRecovery pins the recovery middleware: a handler panic
// becomes a counted, logged 500 — and http.ErrAbortHandler passes
// through untouched, as net/http requires.
func TestPanicRecovery(t *testing.T) {
	srv := NewServer(Config{})
	h := srv.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: HTTP %d, want 500", rec.Code)
	}
	if got := srv.metrics.httpPanics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	if body := rec.Body.String(); !strings.Contains(body, "internal error") {
		t.Fatalf("panic response body = %q", body)
	}

	abort := srv.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("ErrAbortHandler was swallowed (recovered %v)", p)
		}
		if got := srv.metrics.httpPanics.Value(); got != 1 {
			t.Fatalf("ErrAbortHandler counted as a panic (counter = %d)", got)
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

// failingWriter fails every write — the "client hung up mid-response"
// shape.
type failingWriter struct{ header http.Header }

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("connection reset") }

// TestWriteJSONCountsFailures pins satellite (f): an encode/write
// failure is no longer silent — it lands in the write-errors counter.
func TestWriteJSONCountsFailures(t *testing.T) {
	srv := NewServer(Config{})
	req := httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil)
	srv.writeJSON(&failingWriter{}, req, http.StatusOK, map[string]string{"a": "b"})
	if got := srv.metrics.httpWriteErrs.Value(); got != 1 {
		t.Fatalf("write-errors counter = %d, want 1", got)
	}
}

// TestSelfScrape pins the tentpole's close: a scrape pass lands the
// server's own metrics in the server's own store as ordinary series,
// queryable over the public API, with histogram buckets excluded.
func TestSelfScrape(t *testing.T) {
	srv, ts := newTestServer(t)
	postLines(t, ts.URL, []string{fmt.Sprintf(`{"series":"m.cpu","ts":%d,"value":1}`, apiStart.Unix())})

	sc := srv.NewSelfScraper(time.Hour) // manual ticks only
	defer sc.Stop()
	landed, rejected := sc.ScrapeOnce()
	if landed == 0 {
		t.Fatal("self-scrape landed no samples")
	}
	if rejected != 0 {
		t.Fatalf("self-scrape rejected %d samples on first pass", rejected)
	}
	// A second pass must append a later point to the same series.
	time.Sleep(2 * time.Millisecond)
	sc.ScrapeOnce()

	res, err := srv.Store().QueryRange("nyquistd_up", time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatalf("query nyquistd_up from the store: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("nyquistd_up has %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Value != 1 {
			t.Fatalf("nyquistd_up point = %v, want 1", p.Value)
		}
	}

	// The labeled ingest counter lands under its full exposition ID.
	id := `nyquistd_ingest_points_total{result="accepted"}`
	if _, err := srv.Store().QueryRange(id, time.Time{}, time.Time{}, 0); err != nil {
		t.Fatalf("query %s from the store: %v", id, err)
	}

	// No histogram buckets: cardinality stays bounded.
	for _, sid := range srv.Store().IDs() {
		if strings.Contains(sid, "_bucket{") {
			t.Fatalf("self-scrape ingested a histogram bucket series: %s", sid)
		}
	}

	// And the self-view is reachable over the public query API.
	var out QueryResponse
	if code := getJSON(t, ts.URL+"/api/v1/query?series=nyquistd_up", &out); code != http.StatusOK {
		t.Fatalf("HTTP query for nyquistd_up: %d", code)
	}
	if len(out.Points) != 2 {
		t.Fatalf("HTTP query for nyquistd_up returned %d points, want 2", len(out.Points))
	}

	// The scraper accounts for itself.
	if runs := srv.metrics.reg.Gather(); runs != nil {
		found := false
		for _, s := range runs {
			if s.Name == "nyquistd_selfscrape_runs_total" && s.Value == 2 {
				found = true
			}
		}
		if !found {
			t.Fatal("nyquistd_selfscrape_runs_total != 2 after two passes")
		}
	}
}

// TestSlowRequestThresholdDefaults pins the Config defaulting: zero
// selects 1s, negative disables.
func TestSlowRequestThresholdDefaults(t *testing.T) {
	if srv := NewServer(Config{}); srv.slowQuery != time.Second {
		t.Fatalf("default slow-query = %v, want 1s", srv.slowQuery)
	}
	if srv := NewServer(Config{SlowQuery: -1}); srv.slowQuery != -1 {
		t.Fatalf("negative slow-query = %v, want -1 (disabled)", srv.slowQuery)
	}
}

// TestIngestBodyBytesCountedOnce pins the body-byte accounting contract
// after the batched-ingest rewrite: the route middleware records
// nyquistd_http_request_body_bytes_total exactly once per request from
// Content-Length, and the ingest core records the same byte count into
// the nyquistd_ingest_batch_bytes histogram exactly once per batch. The
// old per-line handler summed read-loop bytes into the HTTP counter on
// top of the middleware's Content-Length add, double-counting every
// ingest body; this test fails if either layer ever grows a second
// recording site.
func TestIngestBodyBytesCountedOnce(t *testing.T) {
	srv, ts := newTestServer(t)
	body := `{"series":"bytes/a","ts":1753500000,"value":1}` + "\n" +
		`{"series":"bytes/a","ts":1753500001,"value":2}` + "\n"
	resp, err := http.Post(ts.URL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}

	if v := srv.metrics.httpBodyBytes.With("ingest").Value(); v != int64(len(body)) {
		t.Fatalf("http_request_body_bytes{ingest} = %d after one %d-byte body, want exactly %d (double-count regression)",
			v, len(body), len(body))
	}
	if n := srv.metrics.batchBytes.Count(); n != 1 {
		t.Fatalf("ingest_batch_bytes count = %d after one batch, want 1", n)
	}
	if s := srv.metrics.batchBytes.Sum(); s != float64(len(body)) {
		t.Fatalf("ingest_batch_bytes sum = %v after one %d-byte body, want exactly %d (double-count regression)",
			s, len(body), len(body))
	}

	// A second identical body must advance both by exactly one body's
	// worth — linear in requests, not quadratic.
	resp, err = http.Post(ts.URL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if v := srv.metrics.httpBodyBytes.With("ingest").Value(); v != int64(2*len(body)) {
		t.Fatalf("http_request_body_bytes{ingest} = %d after two bodies, want %d", v, 2*len(body))
	}
	if s := srv.metrics.batchBytes.Sum(); s != float64(2*len(body)) {
		t.Fatalf("ingest_batch_bytes sum = %v after two bodies, want %d", s, 2*len(body))
	}
}
