package api

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

var apiStart = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// diurnalLine formats one ingest line of the synthetic diurnal series:
// the daily fundamental plus a 4x harmonic (true Nyquist = 8/day), on a
// 675 s grid = 128 polls/day, so the 256-sample window holds exactly two
// days and both tones sit on analysis bins.
const (
	diurnalF0      = 1.0 / 86400
	diurnalTop     = 4 * diurnalF0
	diurnalNyquist = 2 * diurnalTop
	diurnalStep    = 675 * time.Second
)

func diurnalValue(i int) float64 {
	ts := float64(i) * diurnalStep.Seconds()
	v := 40 + 8*math.Sin(2*math.Pi*diurnalF0*ts) + 6.4*math.Sin(2*math.Pi*diurnalTop*ts+1)
	// Sensor quantization: a quarter-unit step over a ~29-unit swing is
	// a 7-bit gauge (0.25 survives %.6f wire formatting exactly).
	// Production readings are quantized, and it is what makes the XOR
	// chain bite.
	return math.Round(v*4) / 4
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(Config{Ingest: monitor.IngestConfig{WindowSamples: 256, EmitEvery: 8}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postLines(t *testing.T, url string, lines []string) IngestResponse {
	t.Helper()
	resp, err := http.Post(url+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode ingest response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d (%+v)", resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestServerEndToEnd is the serving acceptance path: a synthetic
// known-Nyquist diurnal series ingested over HTTP in batches must yield
// a warm estimate near ground truth, retuned retention, a stitched
// query, and sane stats — the whole estimate→retain loop across the
// network boundary.
func TestServerEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)
	const id = "dc1/rack4/switch2:if7/octets"
	const n = 1024
	var batch []string
	for i := 0; i < n; i++ {
		when := apiStart.Add(time.Duration(i) * diurnalStep)
		// Alternate the two accepted timestamp encodings.
		tsField := fmt.Sprintf("%q", when.Format(time.RFC3339Nano))
		if i%2 == 1 {
			tsField = fmt.Sprintf("%.3f", float64(when.UnixNano())/1e9)
		}
		batch = append(batch, fmt.Sprintf(`{"series":%q,"ts":%s,"value":%.6f}`, id, tsField, diurnalValue(i)))
		if len(batch) == 256 || i == n-1 {
			out := postLines(t, ts.URL, batch)
			if out.Rejected != 0 {
				t.Fatalf("batch rejected lines: %+v", out)
			}
			batch = batch[:0]
		}
	}

	var est EstimateResponse
	if code := getJSON(t, ts.URL+"/api/v1/estimate?series="+id, &est); code != http.StatusOK {
		t.Fatalf("estimate: HTTP %d", code)
	}
	if !est.Warm {
		t.Fatalf("estimate not warm after %d samples: %+v", n, est)
	}
	if math.Abs(est.IntervalSeconds-diurnalStep.Seconds()) > 1 {
		t.Fatalf("locked interval %.1f s, want %.0f s", est.IntervalSeconds, diurnalStep.Seconds())
	}
	if est.Aliased {
		t.Fatalf("clean diurnal series flagged aliased: %+v", est)
	}
	// The diurnal scenario's quality bar is 35% of swing; hold the
	// estimate itself to a 20% relative band — tighter than the bar.
	if rel := math.Abs(est.NyquistHz-diurnalNyquist) / diurnalNyquist; rel > 0.2 {
		t.Fatalf("estimate %.8f Hz, ground truth %.8f Hz: off by %.0f%%", est.NyquistHz, diurnalNyquist, 100*rel)
	}
	if est.RetentionNyquistHz == 0 {
		t.Fatal("retention was never retuned from the ingest estimates")
	}
	if est.Samples != n {
		t.Fatalf("samples %d, want %d", est.Samples, n)
	}

	// Query the middle third with a budget; the result must be ordered,
	// in-window and within budget.
	from := apiStart.Add(n / 3 * diurnalStep)
	to := apiStart.Add(2 * n / 3 * diurnalStep)
	var qr QueryResponse
	u := fmt.Sprintf("%s/api/v1/query?series=%s&from=%s&to=%s&max_points=200",
		ts.URL, id, from.Format(time.RFC3339), to.Format(time.RFC3339))
	if code := getJSON(t, u, &qr); code != http.StatusOK {
		t.Fatalf("query: HTTP %d", code)
	}
	if len(qr.Points) == 0 || len(qr.Points) > 200 {
		t.Fatalf("query returned %d points, want 1..200", len(qr.Points))
	}
	prev := ""
	for _, p := range qr.Points {
		if p.TS < prev {
			t.Fatalf("unordered points: %s after %s", p.TS, prev)
		}
		prev = p.TS
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/api/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if st.Series != 1 || st.EstimatedSeries != 1 || st.Appends != n {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.CompressedEntries == 0 || st.BytesPerPoint <= 0 {
		t.Fatalf("serving store is not compressing: %+v", st)
	}
	if st.BytesPerPoint > 2 {
		t.Fatalf("bytes/point %.2f on the quantized diurnal stream, want <= 2", st.BytesPerPoint)
	}

	// The store really holds the data (not just the estimator).
	if got := srv.Store().NyquistRate(id); got == 0 {
		t.Fatal("store retention rate is 0 after clean estimates")
	}
}

// TestServerIngestPartialBatch pins batch robustness: malformed lines
// are rejected with located reasons, the rest land.
func TestServerIngestPartialBatch(t *testing.T) {
	_, ts := newTestServer(t)
	out := postLines(t, ts.URL, []string{
		`{"series":"a","ts":1753500000,"value":1}`,
		`not json at all`,
		`{"series":"","ts":1753500001,"value":2}`,
		`{"series":"a","ts":1753500002}`,
		`{"series":"a","ts":"2026-07-26T00:00:03Z","value":4}`,
		``,
		`{"series":"b","ts":1753500004.5,"value":5}`,
	})
	if out.Accepted != 3 || out.Rejected != 3 || out.Series != 2 {
		t.Fatalf("accepted/rejected/series = %d/%d/%d, want 3/3/2 (%+v)", out.Accepted, out.Rejected, out.Series, out)
	}
	if len(out.Errors) != 3 {
		t.Fatalf("want 3 located errors, got %+v", out.Errors)
	}
	if out.Errors[0].Line != 2 {
		t.Fatalf("first error at line %d, want 2", out.Errors[0].Line)
	}
}

// TestServerIngestAllBad: a fully malformed batch is a client error.
func TestServerIngestAllBad(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader("garbage\nmore garbage"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-bad batch: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestServerErrors pins the error statuses: unknown series are 404s,
// malformed parameters 400s, oversized bodies 413s.
func TestServerErrors(t *testing.T) {
	srv := NewServer(Config{MaxBodyBytes: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var e errorBody
	if code := getJSON(t, ts.URL+"/api/v1/query?series=nope", &e); code != http.StatusNotFound {
		t.Fatalf("query unknown series: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/estimate?series=nope", &e); code != http.StatusNotFound {
		t.Fatalf("estimate unknown series: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/query", &e); code != http.StatusBadRequest {
		t.Fatalf("query without series: HTTP %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/query?series=x&from=yesterday", &e); code != http.StatusBadRequest {
		t.Fatalf("query with bad from: HTTP %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/series?series=nope", &e); code != http.StatusNotFound {
		t.Fatalf("series detail for unknown id: HTTP %d, want 404", code)
	}

	long := strings.Repeat(`{"series":"a","ts":1753500000,"value":1}`+"\n", 64)
	resp, err := http.Post(ts.URL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
}

// TestServerSeriesInventory checks the list and detail views.
func TestServerSeriesInventory(t *testing.T) {
	_, ts := newTestServer(t)
	var lines []string
	for i := 0; i < 20; i++ {
		when := apiStart.Add(time.Duration(i) * time.Minute)
		lines = append(lines,
			fmt.Sprintf(`{"series":"a","ts":%q,"value":%d}`, when.Format(time.RFC3339), i),
			fmt.Sprintf(`{"series":"b","ts":%q,"value":%d}`, when.Format(time.RFC3339), -i))
	}
	postLines(t, ts.URL, lines)

	var list SeriesResponse
	if code := getJSON(t, ts.URL+"/api/v1/series", &list); code != http.StatusOK {
		t.Fatalf("series list: HTTP %d", code)
	}
	if len(list.Series) != 2 || list.Series[0].Series != "a" || list.Series[1].Series != "b" {
		t.Fatalf("series list wrong: %+v", list)
	}
	if list.Series[0].Appends != 20 || list.Series[0].RawPoints != 20 {
		t.Fatalf("series a counters wrong: %+v", list.Series[0])
	}

	var one SeriesEntry
	if code := getJSON(t, ts.URL+"/api/v1/series?series=b", &one); code != http.StatusOK {
		t.Fatalf("series detail: HTTP %d", code)
	}
	if one.Series != "b" || one.RawOldest == "" {
		t.Fatalf("series b detail wrong: %+v", one)
	}
}

// TestServerHealthz: liveness must answer without any state.
func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var h map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz body: %+v", h)
	}
}

// TestServerDefaultStoreCompresses pins the serving default: the store
// behind a zero-config server runs the compressed engine.
func TestServerDefaultStoreCompresses(t *testing.T) {
	srv := NewServer(Config{})
	if cb := srv.Store().DB().Retention().CompressBlock; cb == 0 {
		t.Fatal("serving default store is uncompressed")
	}
	if sh := srv.Store().DB().Shards(); sh != 16 {
		t.Fatalf("serving default shards %d, want 16", sh)
	}
	// A custom store must be honored untouched.
	custom := monitor.NewTieredStore(tsdb.Config{Shards: 2})
	if got := NewServer(Config{Store: custom}).Store(); got != custom {
		t.Fatal("custom store replaced")
	}
}

// TestServerIngestOverlongLine pins the fix for the scanner-truncation
// bug: a single over-limit line is rejected alone; every line after it
// still lands.
func TestServerIngestOverlongLine(t *testing.T) {
	_, ts := newTestServer(t)
	long := `{"series":"a","ts":1753500001,"value":1,"pad":"` + strings.Repeat("x", 1<<20) + `"}`
	out := postLines(t, ts.URL, []string{
		`{"series":"a","ts":1753500000,"value":1}`,
		long,
		`{"series":"a","ts":1753500002,"value":3}`,
		`{"series":"b","ts":1753500003,"value":4}`,
	})
	if out.Accepted != 3 || out.Rejected != 1 || out.Series != 2 {
		t.Fatalf("accepted/rejected/series = %d/%d/%d, want 3/1/2 (%+v)", out.Accepted, out.Rejected, out.Series, out.Errors)
	}
	if len(out.Errors) != 1 || out.Errors[0].Line != 2 || !strings.Contains(out.Errors[0].Reason, "exceeds") {
		t.Fatalf("overlong line not located: %+v", out.Errors)
	}
}

// TestTimeParamRejectsDegenerateLiterals pins the fix for "-"/"."/"-."
// parsing to epoch 0 instead of erroring.
func TestTimeParamRejectsDegenerateLiterals(t *testing.T) {
	for _, bad := range []string{"-", ".", "-.", "--1", "1.2.3", "nan"} {
		if got, err := parseTimeParam(bad); err == nil {
			t.Fatalf("parseTimeParam(%q) = %v, want error", bad, got)
		}
	}
	for in, want := range map[string]time.Time{
		"1753500000":    time.Unix(1753500000, 0),
		"1753500000.25": time.Unix(1753500000, 250000000),
		"-1.5":          time.Unix(-1, -500000000),
		".5":            time.Unix(0, 500000000),
		"1753500000.":   time.Unix(1753500000, 0),
	} {
		got, err := parseTimeParam(in)
		if err != nil || !got.Equal(want) {
			t.Fatalf("parseTimeParam(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

// TestIngestOutOfOrderAccounting is the regression test for the
// accepted-but-never-landed bug: an out-of-order point must be counted
// as a rejected line (with its line number and reason), must not land in
// the store, and must not feed the estimator.
func TestIngestOutOfOrderAccounting(t *testing.T) {
	srv, ts := newTestServer(t)
	id := "ext/ooo/gauge"
	line := func(i int) string {
		return fmt.Sprintf(`{"series":%q,"ts":%d,"value":%d}`, id, apiStart.Add(time.Duration(i)*time.Second).Unix(), i)
	}
	out := postLines(t, ts.URL, []string{line(0), line(1), line(2)})
	if out.Accepted != 3 || out.Rejected != 0 {
		t.Fatalf("seed batch: %+v", out)
	}

	// Line 2 of this batch rewinds the clock; lines 1 and 3 are fine.
	out = postLines(t, ts.URL, []string{line(3), line(1), line(4)})
	if out.Accepted != 2 || out.Rejected != 1 {
		t.Fatalf("out-of-order batch: accepted=%d rejected=%d, want 2/1 (%+v)", out.Accepted, out.Rejected, out)
	}
	if len(out.Errors) != 1 || out.Errors[0].Line != 2 || !strings.Contains(out.Errors[0].Reason, "out of order") {
		t.Fatalf("rejection detail = %+v, want line 2 flagged out of order", out.Errors)
	}

	// The store holds exactly the 5 accepted points.
	res, err := srv.Store().QueryRange(id, time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("store holds %d points, want 5 (the rejected point must not land)", len(res.Points))
	}
	// The estimator saw only the accepted points.
	adv, ok := srv.Ingest().Advice(id)
	if !ok || adv.Samples != 5 {
		t.Fatalf("estimator samples = %d (ok=%v), want 5", adv.Samples, ok)
	}

	// A far-future timestamp (outside int64 nanoseconds) is likewise a
	// rejected line, not a stored point.
	out = postLines(t, ts.URL, []string{line(5), fmt.Sprintf(`{"series":%q,"ts":"9999-01-01T00:00:00Z","value":1}`, id)})
	if out.Accepted != 1 || out.Rejected != 1 || !strings.Contains(out.Errors[0].Reason, "storable range") {
		t.Fatalf("time-range batch: %+v", out)
	}
}

// TestQueryErrorStatuses pins the unknown-series vs store-failure
// distinction: only ErrNoSeries maps to 404.
func TestQueryErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]any
	if code := getJSON(t, ts.URL+"/api/v1/query?series=never/written", &body); code != http.StatusNotFound {
		t.Fatalf("unknown series: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/series?series=never/written", &body); code != http.StatusNotFound {
		t.Fatalf("unknown series detail: HTTP %d, want 404", code)
	}
}

// TestIngestEstimatorCapSurfaced pins the MaxSeries cap on the serving
// path: overflow series are stored but flagged estimator_dropped, and
// /api/v1/stats reports the cap and the rejected count.
func TestIngestEstimatorCapSurfaced(t *testing.T) {
	srv := NewServer(Config{Ingest: monitor.IngestConfig{WindowSamples: 64, MaxSeries: 2}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var lines []string
	for s := 0; s < 4; s++ {
		for i := 0; i < 3; i++ {
			lines = append(lines, fmt.Sprintf(`{"series":"card/%d","ts":%d,"value":1}`,
				s, apiStart.Add(time.Duration(i)*time.Second).Unix()))
		}
	}
	out := postLines(t, ts.URL, lines)
	if out.Accepted != 12 {
		t.Fatalf("accepted %d, want 12 (capped series still store)", out.Accepted)
	}
	if out.EstimatorDropped != 6 {
		t.Fatalf("estimator_dropped = %d, want 6 (two overflow series x three points)", out.EstimatorDropped)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/api/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if stats.EstimatorMaxSeries != 2 || stats.EstimatedSeries != 2 || stats.EstimatorRejectedPoints != 6 {
		t.Fatalf("stats cap fields = max %d, estimated %d, rejected %d; want 2/2/6",
			stats.EstimatorMaxSeries, stats.EstimatedSeries, stats.EstimatorRejectedPoints)
	}
	if stats.Series != 4 {
		t.Fatalf("stored series = %d, want 4 (the cap bounds the estimator, not storage)", stats.Series)
	}
}

// TestStatsWALSection pins the durability reporting: a WAL-backed server
// surfaces the subsystem in /api/v1/stats.
func TestStatsWALSection(t *testing.T) {
	store := DefaultStore()
	est := monitor.NewIngestEstimator(store, monitor.IngestConfig{WindowSamples: 64})
	d, err := wal.Open(t.TempDir(), store, est, wal.Options{FsyncEvery: -1, SnapshotEvery: -1, StateEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := NewServer(Config{Store: store, Estimator: est, WAL: d})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var lines []string
	for i := 0; i < 300; i++ { // > 2 sealed 128-point blocks
		lines = append(lines, fmt.Sprintf(`{"series":"wal/gauge","ts":%d,"value":%d}`,
			apiStart.Add(time.Duration(i)*time.Second).Unix(), i%7))
	}
	postLines(t, ts.URL, lines)
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/api/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if stats.WAL == nil {
		t.Fatal("stats.wal missing on a durable server")
	}
	if stats.WAL.Records < 2 {
		t.Fatalf("wal.records = %d, want the sealed blocks logged", stats.WAL.Records)
	}
	if stats.WAL.Segments < 1 || stats.WAL.WALBytes == 0 {
		t.Fatalf("wal segment accounting = %+v", stats.WAL)
	}
}

// TestFastLineMatchesJSON differentially checks the ingest fast path
// against the full encoding/json route: every line the fast parser
// accepts must produce exactly the point the slow path produces, and
// every line it bails on must still work (or fail) through the slow
// path — the fast path is an optimization, never a second dialect.
func TestFastLineMatchesJSON(t *testing.T) {
	lines := []string{
		`{"series":"a/b","ts":1753600000,"value":1.5}`,
		`{"series":"a/b","ts":1753600000.25,"value":-3}`,
		`{"series":"a/b","ts":"2026-07-01T00:00:00Z","value":42}`,
		`{"series":"a/b","ts":"2026-07-01T00:00:00.123456789+02:00","value":0.001}`,
		`{"value":7,"ts":1753600000,"series":"reordered"}`,
		`{ "series" : "spaced" , "ts" : 1 , "value" : 2 }`,
		`{"series":"a/b","ts":1.7536e9,"value":1}`,
		`{"series":"escAped","ts":1,"value":1}`,        // escape: must fall back
		`{"series":"a","ts":1,"value":1,"extra":true}`, // unknown key: must fall back
		`{"series":"a","ts":{"nested":1},"value":1}`,   // nested: fall back, slow path rejects
		`{"series":"","ts":1,"value":1}`,               // empty series: rejected either way
		`{"series":"a","ts":"not a time","value":1}`,   // bad ts
		`{"series":"a","ts":1}`,                        // missing value
		`{"series":"dup","ts":1,"ts":2,"value":1}`,     // duplicate key: fall back
		`not json at all`,
		// Number forms Go's parsers take but JSON forbids: the fast path
		// must bail so the slow path rejects the whole line — otherwise
		// the same value's fate would flip on an unrelated detail.
		`{"series":"a","ts":1,"value":+1.5}`,
		`{"series":"a","ts":1,"value":.5}`,
		`{"series":"a","ts":1,"value":5.}`,
		`{"series":"a","ts":1,"value":01}`,
		`{"series":"a","ts":.5,"value":1}`,
		`{"series":"a","ts":01,"value":1}`,
		`{"series":"a","ts":1,"value":1e}`,
		`{"series":"a","ts":1,"value":--1}`,
		"{\"series\":\"ctrl\tchar\",\"ts\":1,\"value\":1}", // raw control byte in string: fall back
	}
	for _, raw := range lines {
		line := []byte(raw)
		var in IngestLine
		jerr := json.Unmarshal(line, &in)
		var slowPoint *struct {
			id string
			t  time.Time
			v  float64
		}
		if jerr == nil {
			if p, perr := in.point(); perr == nil {
				slowPoint = &struct {
					id string
					t  time.Time
					v  float64
				}{in.Series, p.Time, p.Value}
			}
		}
		fl, ok := fastParseLine(line)
		if !ok {
			continue // fast path bailed: the slow path owns the line
		}
		if slowPoint == nil {
			t.Fatalf("fast path accepted %q but the slow path rejects it", raw)
		}
		if string(fl.series) != slowPoint.id || !fl.t.Equal(slowPoint.t) || fl.value != slowPoint.v {
			t.Fatalf("fast path disagrees on %q: (%s, %v, %v) vs (%s, %v, %v)",
				raw, fl.series, fl.t, fl.value, slowPoint.id, slowPoint.t, slowPoint.v)
		}
	}
	// The common shapes must actually take the fast path, or the
	// optimization silently dies.
	for _, raw := range []string{
		`{"series":"a/b","ts":1753600000,"value":1.5}`,
		`{"series":"a/b","ts":"2026-07-01T00:00:00Z","value":42}`,
	} {
		if _, ok := fastParseLine([]byte(raw)); !ok {
			t.Fatalf("fast path bailed on the canonical shape %q", raw)
		}
	}
}
