package api

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/dcsim"
	"repro/internal/monitor"
)

// rampLines builds n ingest lines for a linear ramp: value i at
// apiStart + i·step.
func rampLines(id string, n int, step time.Duration) []string {
	lines := make([]string, n)
	for i := 0; i < n; i++ {
		when := apiStart.Add(time.Duration(i) * step)
		lines[i] = fmt.Sprintf(`{"series":%q,"ts":%q,"value":%d}`, id, when.Format(time.RFC3339Nano), i)
	}
	return lines
}

// TestQueryParamValidation pins the 400 surface: inverted ranges,
// unknown reconstruction policies, non-positive steps and contradictory
// series selectors must all be rejected loudly, not absorbed.
func TestQueryParamValidation(t *testing.T) {
	_, ts := newTestServer(t)
	postLines(t, ts.URL, rampLines("v/ramp", 16, time.Second))

	cases := []struct {
		name, query, wantErr string
	}{
		{"inverted-range", "series=v/ramp&from=2026-07-01T01:00:00Z&to=2026-07-01T00:00:00Z", "bad range: from after to"},
		{"unknown-reconstruct", "series=v/ramp&reconstruct=spline", "bad reconstruct"},
		{"zero-step", "series=v/ramp&reconstruct=linear&step=0", "bad step"},
		{"negative-step", "series=v/ramp&reconstruct=linear&step=-2", "bad step"},
		{"nan-step", "series=v/ramp&reconstruct=linear&step=NaN", "bad step"},
		{"garbage-step", "series=v/ramp&step=fast", "bad step"},
		{"series-and-match", "series=v/ramp&match=v/", "mutually exclusive"},
		{"neither", "", "missing required parameter"},
		{"bad-max-points", "series=v/ramp&max_points=-3", "bad max_points"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var body errorBody
			code := getJSON(t, ts.URL+"/api/v1/query?"+c.query, &body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400 (%+v)", code, body)
			}
			if !strings.Contains(body.Error, c.wantErr) {
				t.Fatalf("error %q does not mention %q", body.Error, c.wantErr)
			}
		})
	}

	// An equal, non-inverted range stays legal (empty 200).
	var qr QueryResponse
	if code := getJSON(t, ts.URL+"/api/v1/query?series=v/ramp&from=2026-07-01T00:00:05Z&to=2026-07-01T00:00:05Z", &qr); code != http.StatusOK {
		t.Fatalf("empty equal-bounds range: HTTP %d, want 200", code)
	}
	if len(qr.Points) != 0 {
		t.Fatalf("empty [t, t) range returned %d points", len(qr.Points))
	}
}

// TestQueryClampedFlag pins the max_points honesty contract: a request
// above the server cap is served at the cap and says so; a request under
// it is not flagged.
func TestQueryClampedFlag(t *testing.T) {
	srv := NewServer(Config{
		Ingest:         monitor.IngestConfig{WindowSamples: 256, EmitEvery: 8},
		MaxQueryPoints: 50,
	})
	hts := newHTTPServer(t, srv)
	postLines(t, hts.URL, rampLines("c/ramp", 200, time.Second))

	var qr QueryResponse
	if code := getJSON(t, hts.URL+"/api/v1/query?series=c/ramp&max_points=1000", &qr); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if !qr.Clamped {
		t.Fatal("max_points=1000 over a 50-point cap must set clamped")
	}
	if len(qr.Points) > 50 || !qr.Thinned {
		t.Fatalf("clamped query returned %d points (thinned=%v), want ≤50 thinned", len(qr.Points), qr.Thinned)
	}
	qr = QueryResponse{}
	if code := getJSON(t, hts.URL+"/api/v1/query?series=c/ramp&max_points=30", &qr); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if qr.Clamped {
		t.Fatal("an in-cap max_points must not be flagged clamped")
	}
	if len(qr.Points) > 30 {
		t.Fatalf("budget 30 exceeded: %d points", len(qr.Points))
	}
	// The clamp is also counted.
	if got := metricValue(t, hts.URL, "nyquistd_query_clamped_total"); got != 1 {
		t.Fatalf("nyquistd_query_clamped_total = %v, want 1", got)
	}
}

// newHTTPServer wraps a configured Server in an httptest listener.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// metricValue scrapes /metrics and returns the value of an unlabeled
// family's sample, or -1 when absent.
func metricValue(t *testing.T, base, family string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, family+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(family)+1:], "%g", &v); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestQueryMatchEndpoint pins the multi-series fan-in surface: sorted
// results, shared budget, the zero-match 200, and series-cap truncation.
func TestQueryMatchEndpoint(t *testing.T) {
	srv := NewServer(Config{
		Ingest:         monitor.IngestConfig{WindowSamples: 256, EmitEvery: 8},
		MaxQuerySeries: 2,
	})
	hts := newHTTPServer(t, srv)
	for _, id := range []string{"fleet/dev2", "fleet/dev1", "fleet/dev3", "other/dev"} {
		postLines(t, hts.URL, rampLines(id, 60, time.Second))
	}

	t.Run("zero-matches-is-200", func(t *testing.T) {
		var mr MatchResponse
		if code := getJSON(t, hts.URL+"/api/v1/query?match=nosuch/", &mr); code != http.StatusOK {
			t.Fatalf("zero-match pattern: HTTP %d, want 200", code)
		}
		if mr.Matches != 0 || len(mr.Results) != 0 {
			t.Fatalf("zero-match response %+v, want empty", mr)
		}
	})
	t.Run("glob-fan-in", func(t *testing.T) {
		var mr MatchResponse
		if code := getJSON(t, hts.URL+"/api/v1/query?"+url.Values{"match": {"fleet/dev?"}}.Encode(), &mr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		if mr.Matches != 3 {
			t.Fatalf("matched %d series, want 3", mr.Matches)
		}
		if !mr.Truncated || len(mr.Results) != 2 {
			t.Fatalf("series cap 2: truncated=%v results=%d, want true/2", mr.Truncated, len(mr.Results))
		}
		// Deterministic, sorted: the two smallest ids.
		if mr.Results[0].Series != "fleet/dev1" || mr.Results[1].Series != "fleet/dev2" {
			t.Fatalf("kept %q, %q — want the two smallest ids, sorted", mr.Results[0].Series, mr.Results[1].Series)
		}
		for _, r := range mr.Results {
			if len(r.Points) != 60 {
				t.Fatalf("series %q returned %d points, want 60", r.Series, len(r.Points))
			}
		}
	})
	t.Run("budget-split", func(t *testing.T) {
		var mr MatchResponse
		if code := getJSON(t, hts.URL+"/api/v1/query?match=fleet/&max_points=20", &mr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		for _, r := range mr.Results {
			if len(r.Points) > 10 {
				t.Fatalf("series %q got %d points of a 20-point budget over 2 answered series", r.Series, len(r.Points))
			}
		}
	})
	t.Run("reconstructed-fan-in", func(t *testing.T) {
		var mr MatchResponse
		u := hts.URL + "/api/v1/query?match=fleet/&reconstruct=linear&step=1"
		if code := getJSON(t, u, &mr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		for _, r := range mr.Results {
			if r.Reconstruct != "linear" || r.StepSeconds != 1 {
				t.Fatalf("series %q reconstruct=%q step=%v, want linear/1", r.Series, r.Reconstruct, r.StepSeconds)
			}
			if len(r.Points) != 60 {
				t.Fatalf("series %q reconstructed to %d points, want 60 (1 Hz over 59 s)", r.Series, len(r.Points))
			}
		}
	})
}

// TestQueryReconstructGrid pins the single-series reconstruction
// contract: the response grid is uniform at the requested step, values
// follow the policy, and the annotations echo what was done.
func TestQueryReconstructGrid(t *testing.T) {
	_, ts := newTestServer(t)
	const id = "r/ramp"
	// A ramp at 10 s spacing: value i at t = 10i s, so the signal in
	// continuous time is v(t) = t/10.
	postLines(t, ts.URL, rampLines(id, 20, 10*time.Second))

	t.Run("linear", func(t *testing.T) {
		var qr QueryResponse
		if code := getJSON(t, ts.URL+"/api/v1/query?series="+id+"&reconstruct=linear&step=5", &qr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		if qr.Reconstruct != "linear" || qr.StepSeconds != 5 {
			t.Fatalf("annotations reconstruct=%q step=%v, want linear/5", qr.Reconstruct, qr.StepSeconds)
		}
		// 0..190 s at 5 s pitch = 39 slots.
		if len(qr.Points) != 39 {
			t.Fatalf("grid has %d slots, want 39", len(qr.Points))
		}
		for i, p := range qr.Points {
			when, err := time.Parse(time.RFC3339Nano, p.TS)
			if err != nil {
				t.Fatal(err)
			}
			wantT := apiStart.Add(time.Duration(i) * 5 * time.Second)
			if !when.Equal(wantT) {
				t.Fatalf("slot %d at %v, want %v — grid must be uniform from the first stored point", i, when, wantT)
			}
			want := float64(i) * 5 / 10
			if math.Abs(p.Value-want) > 1e-9 {
				t.Fatalf("slot %d = %v, want %v (linear ramp)", i, p.Value, want)
			}
		}
	})
	t.Run("previous", func(t *testing.T) {
		var qr QueryResponse
		if code := getJSON(t, ts.URL+"/api/v1/query?series="+id+"&reconstruct=previous&step=5", &qr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		for i, p := range qr.Points {
			// Sample-and-hold: slot at 5i s holds the ramp value from the
			// last 10 s boundary.
			want := math.Floor(float64(i)*5/10 + 1e-9)
			if p.Value != want {
				t.Fatalf("slot %d = %v, want %v (sample-and-hold)", i, p.Value, want)
			}
		}
	})
	t.Run("step-implies-auto", func(t *testing.T) {
		var qr QueryResponse
		if code := getJSON(t, ts.URL+"/api/v1/query?series="+id+"&step=10", &qr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		if qr.Reconstruct == "" {
			t.Fatal("step without reconstruct must imply auto and report the resolved policy")
		}
		if len(qr.Points) != 20 {
			t.Fatalf("on-grid auto reconstruction has %d points, want 20", len(qr.Points))
		}
	})
	t.Run("grid-over-budget-clamps", func(t *testing.T) {
		var qr QueryResponse
		if code := getJSON(t, ts.URL+"/api/v1/query?series="+id+"&reconstruct=linear&step=0.001&max_points=100", &qr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		if !qr.Clamped {
			t.Fatal("a 190k-slot grid against a 100-point budget must clamp")
		}
		if len(qr.Points) != 100 {
			t.Fatalf("clamped grid has %d points, want exactly the 100 budget", len(qr.Points))
		}
	})
	t.Run("empty-window-reconstructs-empty", func(t *testing.T) {
		var qr QueryResponse
		u := ts.URL + "/api/v1/query?series=" + id + "&reconstruct=linear&step=5&from=2027-01-01T00:00:00Z&to=2027-01-02T00:00:00Z"
		if code := getJSON(t, u, &qr); code != http.StatusOK {
			t.Fatalf("HTTP %d, want 200 for an empty in-range window", code)
		}
		if len(qr.Points) != 0 {
			t.Fatalf("empty window reconstructed %d points", len(qr.Points))
		}
	})
}

// TestReconstructionBeatsStairStep is the acceptance golden test: over a
// seeded dcsim diurnal device, the server-side linear reconstruction at
// a grid 4x finer than the stored samples must track the clean signal
// better than the stair-step (previous-value) rendering a dashboard
// would otherwise draw, and land within the regime's quality bar
// (RMSE ≤ 35% of swing).
func TestReconstructionBeatsStairStep(t *testing.T) {
	scn, err := dcsim.BuildScenario("diurnal", 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	dev := scn.Fleet.Devices[0]
	// Store at 2x the device's true Nyquist rate (the paper's safe
	// oversampling), then ask the server for a 4x finer grid than stored.
	rate := 2 * dev.TrueNyquist
	ivSec := 1 / rate
	const n = 256

	_, ts := newTestServer(t)
	const id = "golden/diurnal"
	lines := make([]string, n)
	for i := 0; i < n; i++ {
		off := float64(i) * ivSec
		when := apiStart.Add(time.Duration(off * float64(time.Second)))
		lines[i] = fmt.Sprintf(`{"series":%q,"ts":%q,"value":%.9f}`, id, when.Format(time.RFC3339Nano), dev.CleanAt(off))
	}
	postLines(t, ts.URL, lines)

	rmseAt := func(mode string) float64 {
		var qr QueryResponse
		u := fmt.Sprintf("%s/api/v1/query?series=%s&reconstruct=%s&step=%.6f", ts.URL, id, mode, ivSec/4)
		if code := getJSON(t, u, &qr); code != http.StatusOK {
			t.Fatalf("reconstruct=%s: HTTP %d", mode, code)
		}
		if len(qr.Points) <= n {
			t.Fatalf("reconstruct=%s returned %d points — not finer than the %d stored", mode, len(qr.Points), n)
		}
		var sum float64
		for _, p := range qr.Points {
			when, err := time.Parse(time.RFC3339Nano, p.TS)
			if err != nil {
				t.Fatal(err)
			}
			truth := dev.CleanAt(when.Sub(apiStart).Seconds())
			sum += (p.Value - truth) * (p.Value - truth)
		}
		return math.Sqrt(sum / float64(len(qr.Points)))
	}

	linear := rmseAt("linear")
	stair := rmseAt("previous")

	// Swing of the clean signal over the ingested span.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 4*n; i++ {
		v := dev.CleanAt(float64(i) * ivSec / 4)
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	swing := hi - lo
	if swing <= 0 {
		t.Fatalf("degenerate device: swing %v", swing)
	}
	if linear >= stair {
		t.Fatalf("linear reconstruction RMSE %.4f not better than stair-step %.4f", linear, stair)
	}
	bar := scn.Spec.QualityBar * swing
	if linear > bar {
		t.Fatalf("linear reconstruction RMSE %.4f exceeds the regime quality bar %.4f (%.0f%% of %.4f swing)",
			linear, bar, 100*scn.Spec.QualityBar, swing)
	}
	t.Logf("RMSE: linear %.4f, stair %.4f, bar %.4f (swing %.4f)", linear, stair, bar, swing)
}

// TestStatsAndMetricsCacheBlock pins the cache's observability: the
// default serving store caches decoded blocks, /api/v1/stats reports the
// block, and the nyquistd_query_cache_* families move.
func TestStatsAndMetricsCacheBlock(t *testing.T) {
	_, ts := newTestServer(t)
	const id = "obs/cached"
	// 300 one-second samples: with 128-point blocks, two sealed blocks
	// plus an active tail.
	postLines(t, ts.URL, rampLines(id, 300, time.Second))
	for i := 0; i < 3; i++ {
		var qr QueryResponse
		if code := getJSON(t, ts.URL+"/api/v1/query?series="+id, &qr); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		if len(qr.Points) != 300 {
			t.Fatalf("query returned %d points, want 300", len(qr.Points))
		}
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/api/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if st.Cache == nil {
		t.Fatal("stats omit the cache block on the default (cached) store")
	}
	if st.Cache.MaxBytes != 32<<20 {
		t.Fatalf("cache max_bytes %d, want the 32 MiB default", st.Cache.MaxBytes)
	}
	if st.Cache.Misses == 0 || st.Cache.Hits == 0 || st.Cache.Entries == 0 {
		t.Fatalf("repeat queries over sealed blocks left the cache idle: %+v", st.Cache)
	}
	if got := metricValue(t, ts.URL, "nyquistd_query_cache_hits_total"); got <= 0 {
		t.Fatalf("nyquistd_query_cache_hits_total = %v, want > 0", got)
	}
	if got := metricValue(t, ts.URL, "nyquistd_query_cache_max_bytes"); got != float64(32<<20) {
		t.Fatalf("nyquistd_query_cache_max_bytes = %v, want %d", got, 32<<20)
	}
}
