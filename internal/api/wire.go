// The wire format: JSON shapes for every endpoint, kept apart from the
// handlers so docs/API.md has a single place to mirror. Field names are
// snake_case; times are RFC3339Nano strings on the way out and RFC3339
// or Unix seconds on the way in; durations and widths are fractional
// seconds; rates are hertz.

package api

import (
	"encoding/json"
	"time"

	"repro/internal/monitor"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

// IngestLine is one POST /api/v1/ingest line: a JSON object per point.
// TS accepts an RFC3339(Nano) string or fractional Unix seconds; numeric
// timestamps are parsed decimally (not through float64), so integer- and
// millisecond-precision epochs stay exact — off-grid nanosecond noise
// would poison the store's delta-of-delta timestamp compression.
type IngestLine struct {
	Series string          `json:"series"`
	TS     json.RawMessage `json:"ts"`
	Value  *float64        `json:"value"`
}

// IngestResponse summarizes a batch: how many lines landed, how many
// were rejected (malformed, out of order, or otherwise refused by the
// store — with the first few reasons), and how many distinct series the
// batch touched. A line is counted Accepted only when its point actually
// landed in the store.
type IngestResponse struct {
	Accepted int           `json:"accepted"`
	Rejected int           `json:"rejected"`
	Series   int           `json:"series"`
	Errors   []IngestError `json:"errors,omitempty"`
	// EstimatorDropped counts accepted points that were stored but not
	// fed to the estimate-on-ingest hook because its MaxSeries cap was
	// hit (the hostile-cardinality bound): such series get no estimates
	// or retention retuning until cardinality drops.
	EstimatorDropped int `json:"estimator_dropped,omitempty"`
}

// IngestError locates one rejected line.
type IngestError struct {
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// maxIngestErrors bounds the per-batch error detail.
const maxIngestErrors = 5

func (r *IngestResponse) reject(line int, reason string) {
	r.Rejected++
	if len(r.Errors) < maxIngestErrors {
		r.Errors = append(r.Errors, IngestError{Line: line, Reason: reason})
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// QueryResponse is a tier-stitched range read. Points from downsampled
// tiers carry their bucket's grid start time and mean value; Aggregates
// holds those buckets' full min/max/mean summaries.
type QueryResponse struct {
	Series string      `json:"series"`
	Points []PointJSON `json:"points"`
	// Tiers lists each storage tier that contributed (0 = raw samples,
	// k ≥ 1 = the k-th downsampled tier), in read order.
	Tiers      []TierSliceJSON `json:"tiers,omitempty"`
	Aggregates []AggPointJSON  `json:"aggregates,omitempty"`
	// Thinned reports the stitched result exceeded the point budget and
	// was stride-decimated down to it.
	Thinned bool `json:"thinned"`
	// Reconstruct and StepSeconds report server-side reconstruction:
	// when present, Points is the signal resampled onto a uniform grid
	// with this interpolation policy and pitch (auto reports the policy
	// it resolved to).
	Reconstruct string  `json:"reconstruct,omitempty"`
	StepSeconds float64 `json:"step_seconds,omitempty"`
	// Clamped reports the response honors a smaller point budget than the
	// client asked for: max_points exceeded the server cap, or the
	// requested reconstruction grid was coarsened to fit the budget.
	Clamped bool `json:"clamped,omitempty"`
}

// MatchResponse is a multi-series fan-in read: one QueryResponse per
// matched series, sorted by id, sharing one point budget.
type MatchResponse struct {
	// Match echoes the pattern.
	Match string `json:"match"`
	// Matches is how many series matched before the series cap; when
	// Truncated, only the lexicographically smallest ids were answered.
	Matches   int  `json:"matches"`
	Truncated bool `json:"truncated,omitempty"`
	// Clamped mirrors QueryResponse.Clamped at the request level.
	Clamped bool            `json:"clamped,omitempty"`
	Results []QueryResponse `json:"results"`
}

// PointJSON is one sample on the wire.
type PointJSON struct {
	TS    string  `json:"ts"`
	Value float64 `json:"value"`
}

// TierSliceJSON records one tier's contribution to a query.
type TierSliceJSON struct {
	Tier         int     `json:"tier"`
	WidthSeconds float64 `json:"width_seconds,omitempty"`
	Points       int     `json:"points"`
}

// AggPointJSON is one bucket summary on the wire.
type AggPointJSON struct {
	TS    string  `json:"ts"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
}

func queryResponseFrom(res *tsdb.QueryResult) QueryResponse {
	out := QueryResponse{Series: res.ID, Points: make([]PointJSON, 0, len(res.Points)), Thinned: res.Thinned}
	for _, p := range res.Points {
		out.Points = append(out.Points, PointJSON{TS: wireTime(p.Time), Value: p.Value})
	}
	for _, t := range res.Tiers {
		out.Tiers = append(out.Tiers, TierSliceJSON{Tier: t.Tier, WidthSeconds: t.Width.Seconds(), Points: t.Points})
	}
	for _, a := range res.Aggregates {
		out.Aggregates = append(out.Aggregates, AggPointJSON{
			TS: wireTime(a.Time), Min: a.Min, Max: a.Max, Mean: a.Mean, Count: a.Count,
		})
	}
	return out
}

// EstimateResponse is the live per-series estimate and poll advice.
type EstimateResponse struct {
	Series  string `json:"series"`
	Samples int64  `json:"samples"`
	// IntervalSeconds is the locked poll interval (0 while the first
	// few points still probe it).
	IntervalSeconds float64 `json:"interval_seconds"`
	// Warm reports a full analysis window has been seen; the estimate
	// fields are meaningful only when true.
	Warm bool `json:"warm"`
	// NyquistHz is the latest trusted (clean-streak) estimate, 0 = none.
	NyquistHz float64 `json:"nyquist_hz"`
	// SuggestedIntervalSeconds is the sweet-spot poll interval.
	SuggestedIntervalSeconds float64 `json:"suggested_interval_seconds"`
	// Aliased/AliasStreak report the aliasing verdict of the newest
	// window and how many consecutive refreshes carried it.
	Aliased     bool `json:"aliased"`
	AliasStreak int  `json:"alias_streak"`
	// EnergyCaptured is the spectral energy fraction below the cut-off.
	EnergyCaptured float64 `json:"energy_captured"`
	// RetentionNyquistHz is the rate the store's retention is currently
	// tuned to (lags NyquistHz by the clean-streak debounce).
	RetentionNyquistHz float64 `json:"retention_nyquist_hz"`
	// UpdatedAt stamps the newest sample of the last estimate refresh.
	UpdatedAt string `json:"updated_at,omitempty"`
	// Reprobes counts poll-interval re-locks after sustained gap drift.
	Reprobes int `json:"reprobes"`
}

func estimateResponseFrom(adv monitor.IngestAdvice, retentionHz float64) EstimateResponse {
	out := EstimateResponse{
		Series:                   adv.Series,
		Samples:                  adv.Samples,
		IntervalSeconds:          adv.Interval.Seconds(),
		Warm:                     adv.Warm,
		NyquistHz:                adv.NyquistRate,
		SuggestedIntervalSeconds: adv.SuggestedInterval.Seconds(),
		Aliased:                  adv.Aliased,
		AliasStreak:              adv.AliasStreak,
		EnergyCaptured:           adv.EnergyCaptured,
		RetentionNyquistHz:       retentionHz,
		Reprobes:                 adv.Reprobes,
	}
	if !adv.UpdatedAt.IsZero() {
		out.UpdatedAt = wireTime(adv.UpdatedAt)
	}
	return out
}

// SeriesResponse inventories the stored series.
type SeriesResponse struct {
	Series []SeriesEntry `json:"series"`
}

// SeriesEntry is one series' retention state.
type SeriesEntry struct {
	Series    string  `json:"series"`
	NyquistHz float64 `json:"nyquist_hz"`
	Appends   int64   `json:"appends"`
	RawPoints int     `json:"raw_points"`
	Compacted int64   `json:"compacted"`
	Dropped   int64   `json:"dropped"`
	// CompressedBytes is the sealed Gorilla payload for this series (0
	// when the store runs uncompressed).
	CompressedBytes int64      `json:"compressed_bytes"`
	RawOldest       string     `json:"raw_oldest,omitempty"`
	RawNewest       string     `json:"raw_newest,omitempty"`
	Tiers           []TierJSON `json:"tiers,omitempty"`
}

// TierJSON is one retention tier's state.
type TierJSON struct {
	WidthSeconds float64 `json:"width_seconds"`
	Buckets      int     `json:"buckets"`
	Samples      int64   `json:"samples"`
	Oldest       string  `json:"oldest,omitempty"`
	Newest       string  `json:"newest,omitempty"`
}

func seriesEntryFrom(st tsdb.SeriesStats) SeriesEntry {
	e := SeriesEntry{
		Series:          st.ID,
		NyquistHz:       st.NyquistRate,
		Appends:         st.Appends,
		RawPoints:       st.RawPoints,
		Compacted:       st.Compacted,
		Dropped:         st.Dropped,
		CompressedBytes: st.CompressedBytes,
	}
	if !st.RawOldest.IsZero() {
		e.RawOldest = wireTime(st.RawOldest)
		e.RawNewest = wireTime(st.RawNewest)
	}
	for _, t := range st.Tiers {
		tj := TierJSON{WidthSeconds: t.Width.Seconds(), Buckets: t.Buckets, Samples: t.Samples}
		if !t.Oldest.IsZero() {
			tj.Oldest = wireTime(t.Oldest)
			tj.Newest = wireTime(t.Newest)
		}
		e.Tiers = append(e.Tiers, tj)
	}
	return e
}

// StatsResponse is the whole-store operator report.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
	Series        int     `json:"series"`
	// EstimatedSeries counts series with a live ingest estimator;
	// EstimatorMaxSeries is the configured cap (0 = unbounded) and
	// EstimatorRejectedPoints counts observations dropped because the
	// cap was hit.
	EstimatedSeries         int   `json:"estimated_series"`
	EstimatorMaxSeries      int   `json:"estimator_max_series"`
	EstimatorRejectedPoints int64 `json:"estimator_rejected_points"`
	// EstimatorEvictedSeries counts idle series LRU-evicted to make room
	// under the cap (pod-churn renaming retires old ids through here).
	EstimatorEvictedSeries int64 `json:"estimator_evicted_series"`
	RawPoints              int   `json:"raw_points"`
	Buckets                int   `json:"buckets"`
	Appends                int64 `json:"appends"`
	Compacted              int64 `json:"compacted"`
	Dropped                int64 `json:"dropped"`
	// CompressedBytes/CompressedEntries describe the sealed Gorilla
	// payload; BytesPerPoint is their ratio (0 when uncompressed).
	CompressedBytes   int64   `json:"compressed_bytes"`
	CompressedEntries int64   `json:"compressed_entries"`
	BytesPerPoint     float64 `json:"bytes_per_point"`
	// Cache reports the decoded-block LRU; absent when the cache is
	// disabled (no CacheBytes budget, or an uncompressed store).
	Cache *CacheStatsJSON `json:"cache,omitempty"`
	// WAL reports the durability subsystem; absent when the server runs
	// memory-only.
	WAL *WALStatsJSON `json:"wal,omitempty"`
}

// CacheStatsJSON is the decoded-block LRU's operator view.
type CacheStatsJSON struct {
	// MaxBytes is the configured budget across shards; Bytes and Entries
	// the current occupancy.
	MaxBytes int64 `json:"max_bytes"`
	Bytes    int64 `json:"bytes"`
	Entries  int   `json:"entries"`
	// Hits and Misses count sealed-block decode lookups; Evictions counts
	// LRU evictions at the byte budget, Invalidations entries dropped
	// because their block left retention.
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// WALStatsJSON is the durability subsystem's operator view.
type WALStatsJSON struct {
	Dir string `json:"dir"`
	// Segments/WALBytes describe the live segment log; Records and
	// Syncs count this session's appended records and group commits.
	Segments int   `json:"segments"`
	WALBytes int64 `json:"wal_bytes"`
	Records  int64 `json:"records"`
	Syncs    int64 `json:"syncs"`
	// Errors counts failed log appends/syncs/rotations and LastError is
	// the newest failure: non-zero means durability is degraded (disk
	// full, EIO) even though ingest keeps serving.
	Errors    int64  `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	// Snapshots counts snapshots taken this session (SnapshotErrors the
	// failed attempts); LastSnapshot stamps the newest (absent before
	// the first).
	Snapshots      int64  `json:"snapshots"`
	SnapshotErrors int64  `json:"snapshot_errors"`
	LastSnapshot   string `json:"last_snapshot,omitempty"`
	SnapshotSeries int    `json:"snapshot_series,omitempty"`
	// ScrubRuns/ScrubFiles/ScrubCorrupt report the background CRC scrub
	// over this session's sealed segments and the newest snapshot; a
	// non-zero ScrubCorrupt means on-disk bit rot (also counted into
	// Errors). LastScrub stamps the newest pass.
	ScrubRuns    int64  `json:"scrub_runs"`
	ScrubFiles   int64  `json:"scrub_files"`
	ScrubCorrupt int64  `json:"scrub_corrupt"`
	LastScrub    string `json:"last_scrub,omitempty"`
	// Replay describes what boot recovery did.
	Replay WALReplayJSON `json:"replay"`
}

// WALReplayJSON summarizes boot recovery.
type WALReplayJSON struct {
	SnapshotLoaded  bool    `json:"snapshot_loaded"`
	Segments        int     `json:"segments"`
	Records         int64   `json:"records"`
	Points          int64   `json:"points"`
	SkippedPoints   int64   `json:"skipped_points"`
	Series          int     `json:"series"`
	EstimatorStates int     `json:"estimator_states"`
	TornTail        bool    `json:"torn_tail"`
	DurationSeconds float64 `json:"duration_seconds"`
}

func statsResponseFrom(st tsdb.Stats, est *monitor.IngestEstimator, walStats *wal.Stats, uptime time.Duration) StatsResponse {
	out := StatsResponse{
		UptimeSeconds:           uptime.Seconds(),
		Shards:                  st.Shards,
		Series:                  st.Series,
		EstimatedSeries:         est.Len(),
		EstimatorMaxSeries:      est.Config().MaxSeries,
		EstimatorRejectedPoints: est.Rejected(),
		EstimatorEvictedSeries:  est.Evicted(),
		RawPoints:               st.RawPoints,
		Buckets:                 st.Buckets,
		Appends:                 st.Appends,
		Compacted:               st.Compacted,
		Dropped:                 st.Dropped,
		CompressedBytes:         st.CompressedBytes,
		CompressedEntries:       st.CompressedEntries,
	}
	if st.CompressedEntries > 0 {
		out.BytesPerPoint = float64(st.CompressedBytes) / float64(st.CompressedEntries)
	}
	if st.Cache.MaxBytes > 0 {
		out.Cache = &CacheStatsJSON{
			MaxBytes:      st.Cache.MaxBytes,
			Bytes:         st.Cache.Bytes,
			Entries:       st.Cache.Entries,
			Hits:          st.Cache.Hits,
			Misses:        st.Cache.Misses,
			Evictions:     st.Cache.Evictions,
			Invalidations: st.Cache.Invalidations,
		}
	}
	if walStats != nil {
		w := &WALStatsJSON{
			Dir:            walStats.Dir,
			Segments:       walStats.Log.Segments,
			WALBytes:       walStats.Log.Bytes,
			Records:        walStats.Log.Records,
			Syncs:          walStats.Log.Syncs,
			Errors:         walStats.Log.Errors,
			LastError:      walStats.Log.LastError,
			Snapshots:      walStats.Snapshots,
			SnapshotErrors: walStats.SnapshotErrors,
			SnapshotSeries: walStats.SnapshotSeries,
			ScrubRuns:      walStats.ScrubRuns,
			ScrubFiles:     walStats.ScrubFiles,
			ScrubCorrupt:   walStats.ScrubCorrupt,
			Replay: WALReplayJSON{
				SnapshotLoaded:  walStats.Replay.SnapshotLoaded,
				Segments:        walStats.Replay.Segments,
				Records:         walStats.Replay.Records,
				Points:          walStats.Replay.Points,
				SkippedPoints:   walStats.Replay.SkippedPoints,
				Series:          walStats.Replay.Series,
				EstimatorStates: walStats.Replay.EstimatorStates,
				TornTail:        walStats.Replay.TornTail,
				DurationSeconds: walStats.Replay.Duration.Seconds(),
			},
		}
		if !walStats.LastSnapshot.IsZero() {
			w.LastSnapshot = wireTime(walStats.LastSnapshot)
		}
		if !walStats.LastScrub.IsZero() {
			w.LastScrub = wireTime(walStats.LastScrub)
		}
		out.WAL = w
	}
	return out
}

func wireTime(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }
