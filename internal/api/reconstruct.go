// Server-side reconstruction: the dashboard half of the Nyquist
// bargain. The store keeps only what the sampling theorem says it must
// (raw near the live edge, Nyquist-sized tier buckets behind it); a
// dashboard wants a dense uniform grid at whatever pixel pitch it is
// rendering. ?reconstruct=&step= runs the internal/series interpolation
// machinery over the tier-stitched result so the client gets the
// band-limited signal on its requested grid instead of a stair-step it
// would have to (wrongly) interpolate itself.

package api

import (
	"fmt"
	"net/url"
	"strconv"
	"time"

	"repro/internal/series"
	"repro/internal/tsdb"
)

// reconstructSpec is a parsed ?reconstruct=&step= pair.
type reconstructSpec struct {
	// want reports reconstruction was requested at all.
	want bool
	// auto defers the interpolation choice to the series' stored Nyquist
	// estimate (linear for band-limited signals, nearest otherwise).
	auto bool
	// mode is the interpolation policy (meaningful when !auto).
	mode series.Interpolation
	// step is the requested grid interval; 0 = derive from the series'
	// Nyquist rate (or its median interval as the fallback).
	step time.Duration
}

// parseReconstruct validates ?reconstruct= (linear|nearest|previous|auto)
// and ?step= (positive fractional seconds). step without reconstruct
// implies auto; reconstruct without step derives the grid from the
// series itself.
func parseReconstruct(q url.Values) (reconstructSpec, error) {
	var spec reconstructSpec
	switch mode := q.Get("reconstruct"); mode {
	case "":
	case "auto":
		spec.want, spec.auto = true, true
	case "linear":
		spec.want, spec.mode = true, series.Linear
	case "nearest":
		spec.want, spec.mode = true, series.NearestNeighbor
	case "previous":
		spec.want, spec.mode = true, series.PreviousValue
	default:
		return spec, fmt.Errorf("bad reconstruct: %q is not one of linear, nearest, previous, auto", mode)
	}
	if v := q.Get("step"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || !(sec > 0) {
			return spec, fmt.Errorf("bad step: want positive seconds, got %q", v)
		}
		spec.step = time.Duration(sec * float64(time.Second))
		if spec.step <= 0 {
			return spec, fmt.Errorf("bad step: %q is below 1ns resolution", v)
		}
		if !spec.want {
			// A grid pitch with no policy means "give me the signal on this
			// grid": auto picks the policy from the stored estimate.
			spec.want, spec.auto = true, true
		}
	}
	return spec, nil
}

// reconstruction is the outcome of applying a reconstructSpec.
type reconstruction struct {
	// pts is the resampled signal on the uniform grid.
	pts []series.Point
	// mode is the resolved interpolation policy name (auto reports what
	// it chose).
	mode string
	// step is the resolved grid interval.
	step time.Duration
	// clamped reports the requested grid exceeded the point budget and
	// the step was coarsened to fit.
	clamped bool
}

// reconstruct resamples a tier-stitched query result onto a uniform
// grid. nyquist is the series' stored rate estimate (0 = none): auto
// mode interpolates linearly when an estimate exists (the signal is
// known band-limited, so linear between sufficiently dense samples is
// faithful) and falls back to nearest-neighbour otherwise; a missing
// step derives from the estimate at the pipeline's standard 1.2×
// headroom, or from the stored points' median interval.
//
// The grid is anchored at the later of `from` and the first stored
// point and runs through the last stored point — reconstruction never
// extrapolates past the observed span. A grid that would exceed budget
// points is coarsened to exactly budget (clamped reports it). An empty
// result reconstructs to an empty result.
func reconstruct(res *tsdb.QueryResult, spec reconstructSpec, nyquist float64, from time.Time, budget int) (reconstruction, error) {
	out := reconstruction{step: spec.step}
	mode := spec.mode
	if spec.auto {
		if nyquist > 0 {
			mode = series.Linear
		} else {
			mode = series.NearestNeighbor
		}
	}
	out.mode = mode.String()
	if len(res.Points) == 0 {
		return out, nil
	}
	s := series.New(res.Points)
	if out.step <= 0 {
		if nyquist > 0 {
			out.step = time.Duration(float64(time.Second) / (1.2 * nyquist))
		} else if iv, err := s.MedianInterval(); err == nil && iv > 0 {
			out.step = iv
		} else {
			// One stored point: any positive step yields the same single-
			// slot grid.
			out.step = time.Second
		}
		if out.step <= 0 {
			out.step = time.Nanosecond
		}
	}
	start := res.Points[0].Time
	if !from.IsZero() && from.After(start) {
		start = from
	}
	end := res.Points[len(res.Points)-1].Time
	span := end.Sub(start)
	if span < 0 {
		span = 0
	}
	n := int(span/out.step) + 1
	if budget > 0 && n > budget {
		// Coarsen to exactly the budget instead of failing or thinning
		// after the fact — the budget is a response-size contract.
		out.clamped = true
		n = budget
		if n > 1 {
			out.step = span / time.Duration(n-1)
		}
		if out.step <= 0 {
			out.step = time.Nanosecond
		}
	}
	u, err := s.ResampleGrid(start, out.step, n, mode)
	if err != nil {
		return out, err
	}
	out.pts = make([]series.Point, len(u.Values))
	for i, v := range u.Values {
		out.pts[i] = series.Point{Time: u.TimeAt(i), Value: v}
	}
	return out, nil
}
