// The self-scrape loop: nyquistd monitoring nyquistd. At each tick the
// loop gathers the server's own registry and ingests every sample into
// the server's own TSDB as an ordinary series — same store, same
// estimator, same WAL. The payoff is the paper's thesis applied to the
// monitor itself: nyquistd_* series get live Nyquist estimates and
// alias/flatline detection like any tenant series, so "the monitor's
// own signal degraded" surfaces through the exact machinery built to
// catch it in others, and the self-view survives a crash because it
// rides the normal durability path.
//
// Feedback is bounded by construction: the scrape writes through
// store.Append, not HTTP, so it never inflates the request metrics it
// records, and histogram _bucket samples are skipped — per-scrape
// cardinality stays at the family count, not family × buckets.

package api

import (
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/series"
)

// SelfScraper periodically feeds the server's registry into its store.
type SelfScraper struct {
	srv      *Server
	interval time.Duration

	runs    *obs.Counter
	samples *obs.Counter
	errs    *obs.Counter
	dur     *obs.Histogram

	startOnce sync.Once
	stopOnce  sync.Once
	stopc     chan struct{}
	donec     chan struct{}
}

// NewSelfScraper returns a stopped scraper ticking at interval once
// started. The scraper registers its own accounting (runs, samples,
// errors, pass duration) in the same registry it scrapes — the loop
// observes itself too.
func (s *Server) NewSelfScraper(interval time.Duration) *SelfScraper {
	reg := s.cfg.Metrics
	return &SelfScraper{
		srv:      s,
		interval: interval,
		runs: reg.Counter("nyquistd_selfscrape_runs_total",
			"Self-scrape passes completed."),
		samples: reg.Counter("nyquistd_selfscrape_samples_total",
			"Samples ingested into the store by self-scrape passes."),
		errs: reg.Counter("nyquistd_selfscrape_errors_total",
			"Self-scrape samples the store refused (duplicate-timestamp ticks, range errors)."),
		dur: reg.Histogram("nyquistd_selfscrape_seconds",
			"Wall time per self-scrape pass.", nil),
		stopc: make(chan struct{}),
		donec: make(chan struct{}),
	}
}

// ScrapeOnce runs one pass and reports samples landed and store
// rejections. Every sample in a pass shares one timestamp, so each
// nyquistd_* series ticks at exactly the scrape interval — a uniform
// signal the estimator locks onto quickly.
func (sc *SelfScraper) ScrapeOnce() (landed, rejected int) {
	t0 := time.Now()
	for _, smp := range sc.srv.cfg.Metrics.Gather() {
		if strings.HasSuffix(smp.Name, "_bucket") {
			continue
		}
		if math.IsNaN(smp.Value) || math.IsInf(smp.Value, 0) {
			continue
		}
		id := smp.ID()
		p := series.Point{Time: t0, Value: smp.Value}
		if err := sc.srv.store.Append(id, p); err != nil {
			rejected++
			continue
		}
		sc.srv.ingest.Observe(id, p)
		landed++
	}
	sc.runs.Inc()
	sc.samples.Add(int64(landed))
	sc.errs.Add(int64(rejected))
	sc.dur.ObserveSince(t0)
	return landed, rejected
}

// Start launches the loop; repeated calls are no-ops.
func (sc *SelfScraper) Start() {
	sc.startOnce.Do(func() {
		go func() {
			defer close(sc.donec)
			tick := time.NewTicker(sc.interval)
			defer tick.Stop()
			for {
				select {
				case <-sc.stopc:
					return
				case <-tick.C:
					sc.ScrapeOnce()
				}
			}
		}()
	})
}

// Stop halts the loop and waits for the in-flight pass; repeated calls
// are no-ops. Safe to call on a never-started scraper.
func (sc *SelfScraper) Stop() {
	sc.stopOnce.Do(func() {
		close(sc.stopc)
		// If Start never ran, burn the once so the wait below returns;
		// if it did, this is a no-op and the goroutine closes donec.
		sc.startOnce.Do(func() { close(sc.donec) })
		<-sc.donec
	})
}
