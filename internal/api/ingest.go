// The batched ingest core shared by POST /api/v1/ingest and the plain-TCP
// bulk lane (bulk.go): a chunked zero-copy line scanner feeding
// tsdb.DB.AppendBatch. The old hot path paid per line — one ReadBytes
// allocation, one string materialization, one shard-lock round trip, one
// estimator lock — which profiling put ahead of the WAL as the ingest
// ceiling. The core restructures the path so the steady state (repeat
// series, numeric timestamps) allocates nothing per point:
//
//   - Lines are scanned in place against a pooled read buffer; the fast
//     parser (fastline.go) yields the series name as a subslice and the
//     timestamp/value as scalars, so nothing is copied per line.
//   - Series ids are interned in a per-handler (Server-scoped) table, so
//     a repeat series costs one allocation-free map lookup, ever.
//   - Parsed points accumulate into a chunk (arrival order) and flush
//     through AppendBatch: points grouped by FNV target shard, one
//     shard-lock acquisition per shard per chunk.
//   - Accepted points then feed the estimator in per-series runs
//     (IngestEstimator.ObserveRun): one series resolution per series per
//     chunk instead of per point.
//
// The accounting contract is unchanged: accepted+rejected = emitted
// lines, a store-rejected point never feeds the estimator, reject
// reasons and the first-five error detail match the per-line path
// line-for-line (FuzzIngestBatch holds the two implementations equal),
// and per-series arrival order is preserved end to end. One deliberate
// tightening: bytes past the MaxBodyBytes cutoff are dropped wholesale —
// the old path would parse (and could ingest) the truncated partial line
// at the limit boundary.

package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/series"
	"repro/internal/tsdb"
)

const (
	// maxLineBytes bounds one line; longer lines are rejected
	// individually — the rest of the batch still lands.
	maxLineBytes = 1 << 20
	// ingestReadChunk is the pooled read-buffer granularity; the buffer
	// grows (and is later shed) only when a single line exceeds it.
	ingestReadChunk = 64 << 10
	// ingestFlushPoints caps the pending chunk: parsed points flush
	// through AppendBatch at this size, bounding both batch memory and
	// shard-lock hold times.
	ingestFlushPoints = 4096
)

var lineTooLongReason = fmt.Sprintf("line exceeds %d bytes", maxLineBytes)

// maxInternedSeries caps the per-handler intern table (matching the
// estimator's default series cap). Ids beyond the cap still ingest —
// they just pay the string copy the table exists to avoid, so a hostile
// cardinality flood degrades to the old per-line cost instead of growing
// the table without bound.
const maxInternedSeries = 1 << 20

// interner is the per-handler series-id intern table. Lookups with a
// string(bytes) key compile to allocation-free map access; only the
// first sighting of an id materializes the string.
type interner struct {
	mu sync.RWMutex
	m  map[string]string
}

func (it *interner) intern(b []byte) string {
	it.mu.RLock()
	id, ok := it.m[string(b)]
	it.mu.RUnlock()
	if ok {
		return id
	}
	//nyquist:allow-alloc first sight of a series name pays one copy; every later hit returns the interned string
	return it.internString(string(b))
}

func (it *interner) internString(s string) string {
	it.mu.RLock()
	id, ok := it.m[s]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	if id, ok = it.m[s]; !ok {
		id = s
		if len(it.m) < maxInternedSeries {
			it.m[s] = s
		}
	}
	it.mu.Unlock()
	return id
}

// pointMeta carries a pending point's provenance: its 1-based line
// number (for error reporting in line order) and its per-batch series
// index.
type pointMeta struct {
	line int32
	sid  int32
}

type lineReject struct {
	line   int32
	reason string
}

// batchSeries is one distinct series of the batch: its interned id and
// how many of its points the store accepted (the Series counter counts
// entries with accepted > 0, exactly like the per-line path's
// intern/un-intern dance did).
type batchSeries struct {
	id       string
	accepted int32
}

// ingestBatch is the pooled per-request state: the read buffer, the
// pending chunk, and the per-batch series index. Everything is reused
// across requests; steady state allocates nothing here.
type ingestBatch struct {
	buf     []byte
	pts     []tsdb.BatchPoint
	meta    []pointMeta
	rejects []lineReject
	sids    map[string]int32
	series  []batchSeries
	// estimator-run grouping scratch (counting-sort by sid per chunk).
	sidCounts []int32
	sidOffs   []int32
	sidOrder  []int32
	runbuf    []series.Point
}

var ingestBatchPool = sync.Pool{New: func() any {
	return &ingestBatch{
		buf:  make([]byte, ingestReadChunk),
		sids: make(map[string]int32),
	}
}}

func getIngestBatch() *ingestBatch { return ingestBatchPool.Get().(*ingestBatch) }

func putIngestBatch(b *ingestBatch) {
	// Shed request-sized growth (a single huge line) so the pool holds
	// only steady-state buffers.
	if len(b.buf) > 4*ingestReadChunk {
		//nyquist:allow-alloc shedding request-sized growth; steady-state batches reuse the pooled buffer
		b.buf = make([]byte, ingestReadChunk)
	}
	clear(b.pts) // drop string references before pooling
	b.pts = b.pts[:0]
	b.meta = b.meta[:0]
	clear(b.rejects)
	b.rejects = b.rejects[:0]
	clear(b.sids)
	clear(b.series)
	b.series = b.series[:0]
	b.runbuf = b.runbuf[:0]
	ingestBatchPool.Put(b)
}

func (b *ingestBatch) addReject(line int32, reason string) {
	b.rejects = append(b.rejects, lineReject{line: line, reason: reason})
}

// sidFor resolves a series name (as raw bytes into the read buffer) to
// its per-batch index, interning the id on first sight. Repeat series —
// the steady state — cost one allocation-free map lookup.
func (b *ingestBatch) sidFor(s *Server, name []byte) int32 {
	if sid, ok := b.sids[string(name)]; ok {
		return sid
	}
	return b.addSid(s.interned.intern(name))
}

func (b *ingestBatch) sidForString(s *Server, name string) int32 {
	if sid, ok := b.sids[name]; ok {
		return sid
	}
	return b.addSid(s.interned.internString(name))
}

func (b *ingestBatch) addSid(id string) int32 {
	sid := int32(len(b.series))
	b.series = append(b.series, batchSeries{id: id})
	b.sids[id] = sid
	return sid
}

// countSeries folds the per-batch series table into the response's
// Series counter: distinct series that landed at least one accepted
// point.
func (b *ingestBatch) countSeries(resp *IngestResponse) {
	for i := range b.series {
		if b.series[i].accepted > 0 {
			resp.Series++
		}
	}
}

// runIngest consumes one JSON-lines payload: scan, parse, batch-append,
// estimate, account. It returns only a body-limit error (the HTTP
// handler turns *http.MaxBytesError into the 413 contract); every other
// read failure is folded into the response as a rejected line, exactly
// like the per-line path did.
//
//nyquist:hotpath
func (s *Server) runIngest(body io.Reader, resp *IngestResponse, tally *ingestTally) error {
	b := getIngestBatch()
	defer putIngestBatch(b)
	var (
		lineNo     int
		start, end int
		readErr    error
		zeroReads  int
	)
	for {
		if end == len(b.buf) {
			if start > 0 {
				// Slide the partial line to the front; completed lines
				// were already consumed in place.
				copy(b.buf, b.buf[start:end])
				end -= start
				start = 0
			} else {
				// One line larger than the whole buffer: grow. Bounded in
				// practice by MaxBodyBytes — the same envelope the old
				// per-line ReadBytes accumulation had.
				//nyquist:allow-alloc grows only when one line exceeds the whole read buffer, bounded by MaxBodyBytes
				nb := make([]byte, 2*len(b.buf))
				copy(nb, b.buf[:end])
				b.buf = nb
			}
		}
		n, err := body.Read(b.buf[end:])
		end += n
		tally.bytes += int64(n)
		if n == 0 && err == nil {
			if zeroReads++; zeroReads > 100 {
				err = io.ErrNoProgress
			}
		} else if n > 0 {
			zeroReads = 0
		}
		for {
			nl := bytes.IndexByte(b.buf[start:end], '\n')
			if nl < 0 {
				break
			}
			line := b.buf[start : start+nl]
			start += nl + 1
			lineNo++
			s.ingestLine(b, line, int32(lineNo), tally)
			if len(b.pts) >= ingestFlushPoints {
				s.flushChunk(b, resp, tally)
			}
		}
		if start == end {
			start, end = 0, 0
		}
		if err != nil {
			readErr = err
			break
		}
	}
	if readErr == io.EOF {
		if end > start {
			// Final line without a trailing newline.
			lineNo++
			s.ingestLine(b, b.buf[start:end], int32(lineNo), tally)
		}
		readErr = nil
	} else {
		var tooLarge *http.MaxBytesError
		if !errors.As(readErr, &tooLarge) {
			lineNo++
			b.addReject(int32(lineNo), readErr.Error())
			tally.rejReadError++
			readErr = nil
		}
	}
	s.flushChunk(b, resp, tally)
	b.countSeries(resp)
	tally.lines, tally.accepted, tally.rejected = int64(lineNo), int64(resp.Accepted), int64(resp.Rejected)
	return readErr
}

// ingestLine classifies one physical line: blank separator, too long,
// fast-parsed point, fallback-parsed point, or reject. Points join the
// pending chunk; rejects are queued (in line order) so flushChunk can
// interleave them with store verdicts for the response's error detail.
func (s *Server) ingestLine(b *ingestBatch, line []byte, lineNo int32, tally *ingestTally) {
	switch line = bytes.TrimRight(line, "\r\n"); {
	case len(line) > maxLineBytes:
		b.addReject(lineNo, lineTooLongReason)
		tally.rejTooLong++
	case len(line) == 0 || allSpace(line):
		// blank separator
	default:
		if fl, ok := fastParseLine(line); ok {
			tally.fast++
			sid := b.sidFor(s, fl.series)
			b.pts = append(b.pts, tsdb.BatchPoint{ID: b.series[sid].id, P: series.Point{Time: fl.t, Value: fl.value}})
			b.meta = append(b.meta, pointMeta{line: lineNo, sid: sid})
			return
		}
		tally.fallback++
		var in IngestLine
		//nyquist:allow-alloc json fallback: lines the fast parser bails on take encoding/json
		if jerr := json.Unmarshal(line, &in); jerr != nil {
			//nyquist:allow-alloc reject path: the reason string is built once per rejected line
			b.addReject(lineNo, "bad JSON: "+jerr.Error())
			tally.rejBadJSON++
			return
		}
		//nyquist:allow-alloc json fallback: validation of a line the fast parser already bailed on
		p, perr := in.point()
		if perr != nil {
			b.addReject(lineNo, perr.Error())
			tally.rejBadShape++
			return
		}
		sid := b.sidForString(s, in.Series)
		b.pts = append(b.pts, tsdb.BatchPoint{ID: b.series[sid].id, P: p})
		b.meta = append(b.meta, pointMeta{line: lineNo, sid: sid})
	}
}

// flushChunk lands the pending chunk: one AppendBatch (per-shard lock
// batching), verdict accounting merged with parse rejects in line order,
// then per-series estimator runs over the accepted points. An append the
// store refuses is a rejected line, not an accepted one, and never feeds
// the estimator: an out-of-order point that never landed would otherwise
// count as Accepted and still poison the series' interval probe.
func (s *Server) flushChunk(b *ingestBatch, resp *IngestResponse, tally *ingestTally) {
	if len(b.pts) == 0 && len(b.rejects) == 0 {
		return
	}
	s.store.AppendBatch(b.pts)
	// Merge parse rejects and store verdicts in line order so the
	// first-maxIngestErrors error detail matches the per-line path.
	ri := 0
	for i := range b.pts {
		line := b.meta[i].line
		for ri < len(b.rejects) && b.rejects[ri].line < line {
			resp.reject(int(b.rejects[ri].line), b.rejects[ri].reason)
			ri++
		}
		if err := b.pts[i].Err; err != nil {
			resp.reject(int(line), appendReason(err))
			switch {
			case errors.Is(err, tsdb.ErrOutOfOrder):
				tally.rejOutOfOrder++
			case errors.Is(err, tsdb.ErrTimeRange):
				tally.rejTimeRange++
			default:
				tally.rejStoreOther++
			}
		} else {
			resp.Accepted++
			b.series[b.meta[i].sid].accepted++
		}
	}
	for ; ri < len(b.rejects); ri++ {
		resp.reject(int(b.rejects[ri].line), b.rejects[ri].reason)
	}
	//nyquist:allow-alloc estimator feed runs once per flushed chunk, amortized over its points
	s.feedEstimator(b, resp, tally)
	b.pts = b.pts[:0]
	b.meta = b.meta[:0]
	b.rejects = b.rejects[:0]
}

// feedEstimator groups the chunk's accepted points into per-series runs
// (arrival order within each run, series in first-appearance order) and
// feeds each through ObserveRun. Cross-series interleaving is the only
// thing this changes versus per-point Observe calls, and series are
// independent in the estimator.
func (s *Server) feedEstimator(b *ingestBatch, resp *IngestResponse, tally *ingestTally) {
	nSids := len(b.series)
	if nSids == 0 {
		return
	}
	if cap(b.sidCounts) < nSids {
		b.sidCounts = make([]int32, nSids)
		b.sidOffs = make([]int32, nSids)
	}
	b.sidCounts = b.sidCounts[:nSids]
	b.sidOffs = b.sidOffs[:nSids]
	for i := range b.sidCounts {
		b.sidCounts[i] = 0
	}
	accepted := 0
	for i := range b.pts {
		if b.pts[i].Err == nil {
			b.sidCounts[b.meta[i].sid]++
			accepted++
		}
	}
	if accepted == 0 {
		return
	}
	if cap(b.sidOrder) < accepted {
		b.sidOrder = make([]int32, accepted)
	}
	b.sidOrder = b.sidOrder[:accepted]
	off := int32(0)
	for sid := range b.sidCounts {
		b.sidOffs[sid] = off
		off += b.sidCounts[sid]
	}
	for i := range b.pts {
		if b.pts[i].Err == nil {
			sid := b.meta[i].sid
			b.sidOrder[b.sidOffs[sid]] = int32(i)
			b.sidOffs[sid]++
		}
	}
	start := int32(0)
	for sid := 0; sid < nSids; sid++ {
		end := start + b.sidCounts[sid]
		if start == end {
			continue
		}
		b.runbuf = b.runbuf[:0]
		for _, idx := range b.sidOrder[start:end] {
			b.runbuf = append(b.runbuf, b.pts[idx].P)
		}
		fed := s.ingest.ObserveRun(b.series[sid].id, b.runbuf)
		if d := len(b.runbuf) - fed; d > 0 {
			resp.EstimatorDropped += d
			tally.estDropped += int64(d)
		}
		start = end
	}
}
