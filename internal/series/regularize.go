package series

import (
	"errors"
	"math"
	"time"
)

// Interpolation selects how Regularize fills grid slots between (or away
// from) observed samples.
type Interpolation int

const (
	// NearestNeighbor assigns each grid slot the value of the closest
	// observation in time. This is the pre-cleaning the paper applies to
	// irregular production traces (§3.2).
	NearestNeighbor Interpolation = iota
	// Linear interpolates linearly between the bracketing observations
	// and clamps to the edge values outside the observed range.
	Linear
	// PreviousValue holds the most recent observation (step/sample-and-
	// hold), matching how counters are usually rendered by dashboards.
	PreviousValue
)

// String returns the interpolation policy name.
func (ip Interpolation) String() string {
	switch ip {
	case NearestNeighbor:
		return "nearest"
	case Linear:
		return "linear"
	case PreviousValue:
		return "previous"
	default:
		return "unknown"
	}
}

// ErrBadInterpolation reports an unknown Interpolation value.
var ErrBadInterpolation = errors.New("series: unknown interpolation policy")

// Regularize resamples an irregular series onto a uniform grid with the
// given interval, starting at the first observation. Every grid slot is
// filled according to the interpolation policy, so the result has no gaps
// and is safe to hand to spectral analysis.
func (s *Series) Regularize(interval time.Duration, ip Interpolation) (*Uniform, error) {
	if interval <= 0 {
		return nil, ErrBadInterval
	}
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	pts := s.Points()
	start := pts[0].Time
	span := pts[len(pts)-1].Time.Sub(start)
	n := int(span/interval) + 1
	values := make([]float64, n)
	switch ip {
	case NearestNeighbor:
		fillNearest(values, pts, start, interval)
	case Linear:
		fillLinear(values, pts, start, interval)
	case PreviousValue:
		fillPrevious(values, pts, start, interval)
	default:
		return nil, ErrBadInterpolation
	}
	return &Uniform{Start: start, Interval: interval, Values: values}, nil
}

// ResampleGrid resamples the series onto an explicit uniform grid: n
// slots at start, start+interval, ..., start + (n-1)·interval, each
// filled according to the interpolation policy. Unlike Regularize, which
// anchors at the first observation, the caller owns the grid — this is
// the reconstruction entry point for serving a query's requested step,
// where the grid must align with the request window rather than with
// whatever sample happens to be stored first. Grid slots outside the
// observed span clamp to the edge values (no extrapolation).
func (s *Series) ResampleGrid(start time.Time, interval time.Duration, n int, ip Interpolation) (*Uniform, error) {
	if interval <= 0 {
		return nil, ErrBadInterval
	}
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	if n < 1 {
		return nil, ErrTooShort
	}
	pts := s.Points()
	values := make([]float64, n)
	switch ip {
	case NearestNeighbor:
		fillNearest(values, pts, start, interval)
	case Linear:
		fillLinear(values, pts, start, interval)
	case PreviousValue:
		fillPrevious(values, pts, start, interval)
	default:
		return nil, ErrBadInterpolation
	}
	return &Uniform{Start: start, Interval: interval, Values: values}, nil
}

// RegularizeAuto regularizes onto the series' own median interval with
// nearest-neighbour interpolation — the paper's default pre-cleaning.
func (s *Series) RegularizeAuto() (*Uniform, error) {
	iv, err := s.MedianInterval()
	if err != nil {
		return nil, err
	}
	if iv <= 0 {
		return nil, ErrBadInterval
	}
	return s.Regularize(iv, NearestNeighbor)
}

func fillNearest(values []float64, pts []Point, start time.Time, interval time.Duration) {
	j := 0
	for i := range values {
		t := start.Add(time.Duration(i) * interval)
		// Advance j while the next point is closer to t.
		for j+1 < len(pts) {
			cur := absDuration(pts[j].Time.Sub(t))
			next := absDuration(pts[j+1].Time.Sub(t))
			if next <= cur {
				j++
			} else {
				break
			}
		}
		values[i] = pts[j].Value
	}
}

func fillLinear(values []float64, pts []Point, start time.Time, interval time.Duration) {
	j := 0
	for i := range values {
		t := start.Add(time.Duration(i) * interval)
		for j+1 < len(pts) && pts[j+1].Time.Before(t) {
			j++
		}
		switch {
		case !pts[j].Time.Before(t): // t at or before current point
			values[i] = pts[j].Value
		case j+1 >= len(pts): // t after the last point
			values[i] = pts[len(pts)-1].Value
		default:
			t0, t1 := pts[j].Time, pts[j+1].Time
			span := t1.Sub(t0).Seconds()
			if span <= 0 {
				values[i] = pts[j+1].Value
				continue
			}
			frac := t.Sub(t0).Seconds() / span
			values[i] = pts[j].Value*(1-frac) + pts[j+1].Value*frac
		}
	}
}

func fillPrevious(values []float64, pts []Point, start time.Time, interval time.Duration) {
	j := 0
	for i := range values {
		t := start.Add(time.Duration(i) * interval)
		for j+1 < len(pts) && !pts[j+1].Time.After(t) {
			j++
		}
		values[i] = pts[j].Value
	}
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Gap describes a stretch between consecutive samples that exceeds a
// threshold — missing data in a production trace.
type Gap struct {
	// From is the time of the sample before the gap.
	From time.Time
	// To is the time of the sample after the gap.
	To time.Time
	// Missing is the estimated number of samples lost, relative to the
	// nominal interval used for detection.
	Missing int
}

// Length returns the gap duration.
func (g Gap) Length() time.Duration { return g.To.Sub(g.From) }

// Gaps returns every inter-sample spacing larger than factor times the
// median interval. factor <= 1 is treated as the conventional 1.5.
func (s *Series) Gaps(factor float64) ([]Gap, error) {
	med, err := s.MedianInterval()
	if err != nil {
		return nil, err
	}
	if med <= 0 {
		return nil, ErrBadInterval
	}
	if factor <= 1 {
		factor = 1.5
	}
	limit := time.Duration(float64(med) * factor)
	var out []Gap
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		d := pts[i].Time.Sub(pts[i-1].Time)
		if d > limit {
			missing := int(math.Round(d.Seconds()/med.Seconds())) - 1
			out = append(out, Gap{From: pts[i-1].Time, To: pts[i].Time, Missing: missing})
		}
	}
	return out, nil
}
