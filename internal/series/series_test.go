package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

// mk builds a series with samples at the given second offsets and values
// equal to the offsets unless vals is provided.
func mk(offsets []float64, vals ...[]float64) *Series {
	pts := make([]Point, len(offsets))
	for i, o := range offsets {
		v := o
		if len(vals) > 0 {
			v = vals[0][i]
		}
		pts[i] = Point{Time: t0.Add(time.Duration(o * float64(time.Second))), Value: v}
	}
	return New(pts)
}

func TestSeriesSortsPoints(t *testing.T) {
	s := mk([]float64{5, 1, 3})
	vals := s.Values()
	want := []float64{1, 3, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values() = %v, want sorted %v", vals, want)
		}
	}
}

func TestSeriesAppendOutOfOrder(t *testing.T) {
	s := &Series{}
	s.AppendValue(t0.Add(10*time.Second), 10)
	s.AppendValue(t0, 0)
	s.AppendValue(t0.Add(5*time.Second), 5)
	got := s.Values()
	want := []float64{0, 5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", got, want)
		}
	}
	start, err := s.Start()
	if err != nil || !start.Equal(t0) {
		t.Fatalf("Start() = %v, %v", start, err)
	}
	end, err := s.End()
	if err != nil || !end.Equal(t0.Add(10*time.Second)) {
		t.Fatalf("End() = %v, %v", end, err)
	}
}

func TestSeriesEmptyErrors(t *testing.T) {
	s := &Series{}
	if _, err := s.Start(); err != ErrEmpty {
		t.Fatalf("Start on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Duration(); err != ErrEmpty {
		t.Fatalf("Duration on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.MedianInterval(); err != ErrTooShort {
		t.Fatalf("MedianInterval on empty = %v, want ErrTooShort", err)
	}
	if got := s.String(); got != "series(empty)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMedianIntervalRobustToJitter(t *testing.T) {
	// Nominal 10 s polling with one huge gap; median must stay 10 s.
	s := mk([]float64{0, 10, 20, 30, 40, 400, 410, 420, 430})
	med, err := s.MedianInterval()
	if err != nil {
		t.Fatal(err)
	}
	if med != 10*time.Second {
		t.Fatalf("median interval = %v, want 10s", med)
	}
	rate, err := s.SampleRate()
	if err != nil || math.Abs(rate-0.1) > 1e-12 {
		t.Fatalf("SampleRate = %v, %v, want 0.1", rate, err)
	}
}

func TestWindow(t *testing.T) {
	s := mk([]float64{0, 1, 2, 3, 4, 5})
	w := s.Window(t0.Add(2*time.Second), t0.Add(5*time.Second))
	got := w.Values()
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("window = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
}

func TestUniformBasics(t *testing.T) {
	u, err := NewUniform(t0, 2*time.Second, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.SampleRate(); got != 0.5 {
		t.Fatalf("SampleRate = %v, want 0.5", got)
	}
	if got := u.Duration(); got != 6*time.Second {
		t.Fatalf("Duration = %v, want 6s", got)
	}
	if got := u.TimeAt(3); !got.Equal(t0.Add(6 * time.Second)) {
		t.Fatalf("TimeAt(3) = %v", got)
	}
	if _, err := NewUniform(t0, 0, nil); err != ErrBadInterval {
		t.Fatalf("want ErrBadInterval, got %v", err)
	}
}

func TestUniformSeriesRoundTrip(t *testing.T) {
	u, _ := NewUniform(t0, time.Second, []float64{5, 6, 7})
	s := u.Series()
	u2, err := s.Regularize(time.Second, NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.Values) != 3 {
		t.Fatalf("round trip has %d values", len(u2.Values))
	}
	for i := range u.Values {
		if u2.Values[i] != u.Values[i] {
			t.Fatalf("round trip value %d: %v vs %v", i, u2.Values[i], u.Values[i])
		}
	}
}

func TestUniformSlice(t *testing.T) {
	u, _ := NewUniform(t0, time.Second, []float64{0, 1, 2, 3, 4})
	sub, err := u.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Start.Equal(t0.Add(time.Second)) || len(sub.Values) != 3 {
		t.Fatalf("slice = %+v", sub)
	}
	if _, err := u.Slice(3, 2); err == nil {
		t.Fatal("want error for inverted slice")
	}
	if _, err := u.Slice(-1, 2); err == nil {
		t.Fatal("want error for negative index")
	}
	if _, err := u.Slice(0, 99); err == nil {
		t.Fatal("want error for out-of-range end")
	}
}

func TestRegularizeNearest(t *testing.T) {
	// Observations at 0, 2.6, 5.1s; grid of 1s spacing.
	s := mk([]float64{0, 2.6, 5.1}, []float64{10, 20, 30})
	u, err := s.Regularize(time.Second, NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	// Grid times 0..5. Nearest: 0->10, 1->10(dist1 vs 1.6), 2->20, 3->20,
	// 4->20 (1.4 vs 1.1 -> actually 4 is 1.4 from 2.6 and 1.1 from 5.1 -> 30)
	want := []float64{10, 10, 20, 20, 30, 30}
	if len(u.Values) != len(want) {
		t.Fatalf("values = %v, want %v", u.Values, want)
	}
	for i := range want {
		if u.Values[i] != want[i] {
			t.Fatalf("values = %v, want %v", u.Values, want)
		}
	}
}

func TestRegularizeLinear(t *testing.T) {
	s := mk([]float64{0, 4}, []float64{0, 8})
	u, err := s.Regularize(time.Second, Linear)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4, 6, 8}
	for i := range want {
		if math.Abs(u.Values[i]-want[i]) > 1e-12 {
			t.Fatalf("values = %v, want %v", u.Values, want)
		}
	}
}

func TestRegularizePrevious(t *testing.T) {
	s := mk([]float64{0, 2.5, 5}, []float64{1, 2, 3})
	u, err := s.Regularize(time.Second, PreviousValue)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1, 2, 2, 3}
	for i := range want {
		if u.Values[i] != want[i] {
			t.Fatalf("values = %v, want %v", u.Values, want)
		}
	}
}

func TestRegularizeErrors(t *testing.T) {
	s := mk([]float64{0, 1})
	if _, err := s.Regularize(0, NearestNeighbor); err != ErrBadInterval {
		t.Fatalf("want ErrBadInterval, got %v", err)
	}
	if _, err := s.Regularize(time.Second, Interpolation(99)); err != ErrBadInterpolation {
		t.Fatalf("want ErrBadInterpolation, got %v", err)
	}
	empty := &Series{}
	if _, err := empty.Regularize(time.Second, NearestNeighbor); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestRegularizeAuto(t *testing.T) {
	// 30 s polling with jitter; auto grid should be ~30 s.
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 100)
	for i := range pts {
		jitter := time.Duration(rng.Intn(2000)-1000) * time.Millisecond
		pts[i] = Point{Time: t0.Add(time.Duration(i)*30*time.Second + jitter), Value: float64(i)}
	}
	s := New(pts)
	u, err := s.RegularizeAuto()
	if err != nil {
		t.Fatal(err)
	}
	if u.Interval < 28*time.Second || u.Interval > 32*time.Second {
		t.Fatalf("auto interval = %v, want ~30s", u.Interval)
	}
	if u.Len() < 95 || u.Len() > 105 {
		t.Fatalf("auto length = %d, want ~100", u.Len())
	}
}

func TestRegularizeCoversSpanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 150 {
			raw = raw[:150]
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Time: t0.Add(time.Duration(r) * time.Second), Value: float64(i)}
		}
		s := New(pts)
		u, err := s.Regularize(time.Second, NearestNeighbor)
		if err != nil {
			return false
		}
		dur, _ := s.Duration()
		wantLen := int(dur/time.Second) + 1
		if u.Len() != wantLen {
			return false
		}
		// Every produced value must be one of the input values.
		valid := make(map[float64]bool, len(pts))
		for _, p := range pts {
			valid[p.Value] = true
		}
		for _, v := range u.Values {
			if !valid[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGaps(t *testing.T) {
	s := mk([]float64{0, 10, 20, 30, 90, 100, 110})
	gaps, err := s.Gaps(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v, want one gap", gaps)
	}
	g := gaps[0]
	if g.Length() != 60*time.Second {
		t.Fatalf("gap length = %v, want 60s", g.Length())
	}
	if g.Missing != 5 {
		t.Fatalf("missing = %d, want 5", g.Missing)
	}
}

func TestGapsNoGaps(t *testing.T) {
	s := mk([]float64{0, 10, 20, 30})
	gaps, err := s.Gaps(0) // 0 -> default factor 1.5
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 0 {
		t.Fatalf("gaps = %+v, want none", gaps)
	}
}
