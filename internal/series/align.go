package series

import (
	"errors"
	"time"
)

// AlignToCommonGrid regularizes several (possibly irregular, differently
// polled) series onto one shared uniform grid: the overlap of their time
// spans, sampled at the coarsest of their median intervals. This is the
// preparation step for joint (multivariate) analysis, which requires all
// members to share a sample rate — correlations computed on mismatched
// grids are meaningless.
//
// The returned signals all have the same Start, Interval and length.
func AlignToCommonGrid(seriesList []*Series, ip Interpolation) ([]*Uniform, error) {
	if len(seriesList) == 0 {
		return nil, errors.New("series: nothing to align")
	}
	var (
		start    time.Time
		end      time.Time
		interval time.Duration
	)
	for i, s := range seriesList {
		if s == nil || s.Len() == 0 {
			return nil, errors.New("series: empty member in alignment set")
		}
		st, err := s.Start()
		if err != nil {
			return nil, err
		}
		en, err := s.End()
		if err != nil {
			return nil, err
		}
		med, err := s.MedianInterval()
		if err != nil {
			return nil, err
		}
		if med <= 0 {
			return nil, ErrBadInterval
		}
		if i == 0 {
			start, end, interval = st, en, med
			continue
		}
		if st.After(start) {
			start = st
		}
		if en.Before(end) {
			end = en
		}
		if med > interval {
			interval = med
		}
	}
	if !end.After(start) {
		return nil, errors.New("series: alignment members do not overlap in time")
	}
	n := int(end.Sub(start)/interval) + 1
	if n < 2 {
		return nil, ErrTooShort
	}
	out := make([]*Uniform, len(seriesList))
	for i, s := range seriesList {
		// The alignment window is closed on both ends: `end` is the
		// earliest member's last sample, and that sample must survive the
		// windowing or the shortest member would lose its endpoint.
		// WindowInclusive makes that contract explicit (this used to be
		// faked with Window(start, end+1ns)).
		u, err := s.WindowInclusive(start, end).Regularize(interval, ip)
		if err != nil {
			return nil, err
		}
		// Regularize anchors at the member's first in-window sample;
		// re-anchor every member at the common start by padding or
		// trimming to the shared grid.
		vals := make([]float64, n)
		for j := 0; j < n; j++ {
			t := start.Add(time.Duration(j) * interval)
			idx := int(t.Sub(u.Start) / interval)
			switch {
			case idx < 0:
				vals[j] = u.Values[0]
			case idx >= len(u.Values):
				vals[j] = u.Values[len(u.Values)-1]
			default:
				vals[j] = u.Values[idx]
			}
		}
		out[i] = &Uniform{Start: start, Interval: interval, Values: vals}
	}
	return out, nil
}
