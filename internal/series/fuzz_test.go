package series

import (
	"math"
	"testing"
	"time"
)

// FuzzRegularize feeds random irregular traces through every
// interpolation policy and checks the grid contract: the output starts at
// the first observation, covers the observed span on an exact uniform
// grid, contains no NaN/Inf for finite inputs, and never invents values
// outside the observed range (nearest and previous pick existing samples;
// linear interpolates between neighbours).
func FuzzRegularize(f *testing.F) {
	f.Add([]byte{10, 1, 200, 50, 30, 128}, uint16(7), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 1, 255}, uint16(1), uint8(1))
	f.Add([]byte{60, 20, 60, 40, 60, 60, 60, 80}, uint16(60), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, intervalS uint16, policy uint8) {
		interval := time.Duration(1+int(intervalS%7200)) * time.Second
		ip := Interpolation(policy % 3)
		start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

		s := &Series{}
		now := start
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i+1 < len(data); i += 2 {
			// Deltas of 0..255 s: duplicates and bursts of co-timestamped
			// samples are part of the contract.
			now = now.Add(time.Duration(data[i]) * time.Second)
			v := float64(int8(data[i+1]))
			s.AppendValue(now, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		u, err := s.Regularize(interval, ip)
		if s.Len() == 0 {
			if err == nil {
				t.Fatal("empty series regularized without error")
			}
			return
		}
		if err != nil {
			t.Fatalf("regularize(%v, %v) on %d points: %v", interval, ip, s.Len(), err)
		}

		pts := s.Points()
		first, last := pts[0].Time, pts[len(pts)-1].Time
		if !u.Start.Equal(first) {
			t.Fatalf("grid starts at %v, want first observation %v", u.Start, first)
		}
		if u.Interval != interval {
			t.Fatalf("grid interval %v, want %v", u.Interval, interval)
		}
		wantLen := int(last.Sub(first)/interval) + 1
		if u.Len() != wantLen {
			t.Fatalf("grid has %d slots, want %d for span %v at %v", u.Len(), wantLen, last.Sub(first), interval)
		}
		for i, v := range u.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("slot %d is %v for finite inputs", i, v)
			}
			// All three policies stay within the observed value range.
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("slot %d value %v outside observed range [%v, %v] under %v", i, v, lo, hi, ip)
			}
		}
	})
}
