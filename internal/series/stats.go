package series

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	Count    int
	Mean     float64
	Variance float64 // population variance
	Std      float64
	Min      float64
	Max      float64
	RMS      float64
}

// Summarize computes descriptive statistics over values. An empty input
// yields a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{
		Count: len(values),
		Min:   math.Inf(1),
		Max:   math.Inf(-1),
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	n := float64(len(values))
	s.Mean = sum / n
	s.Variance = sumSq/n - s.Mean*s.Mean
	if s.Variance < 0 {
		s.Variance = 0 // rounding guard
	}
	s.Std = math.Sqrt(s.Variance)
	s.RMS = math.Sqrt(sumSq / n)
	return s
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Detrend returns a copy of values with the mean removed. Removing DC is a
// prerequisite for energy-fraction Nyquist estimation (DESIGN.md choice 2).
func Detrend(values []float64) []float64 {
	m := Mean(values)
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v - m
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of values using linear
// interpolation between order statistics. It returns NaN for empty input
// and clamps p to [0, 100].
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FiveNumber is a box-plot summary: minimum, lower quartile, median, upper
// quartile and maximum.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max float64
}

// BoxStats computes the five-number summary used by the Fig. 5 driver.
func BoxStats(values []float64) FiveNumber {
	return FiveNumber{
		Min:    Percentile(values, 0),
		Q1:     Percentile(values, 25),
		Median: Percentile(values, 50),
		Q3:     Percentile(values, 75),
		Max:    Percentile(values, 100),
	}
}

// Diff returns the first difference of values: out[i] = values[i+1] -
// values[i]. Monotone counters are differenced into rates before spectral
// analysis.
func Diff(values []float64) []float64 {
	if len(values) < 2 {
		return nil
	}
	out := make([]float64, len(values)-1)
	for i := range out {
		out[i] = values[i+1] - values[i]
	}
	return out
}

// IsMonotone reports whether values never decrease — the signature of a raw
// counter metric that should be differenced before analysis.
func IsMonotone(values []float64) bool {
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] {
			return false
		}
	}
	return len(values) > 0
}
