package series

import (
	"math"
	"testing"
	"time"
)

func TestAlignToCommonGrid(t *testing.T) {
	// Member A: 10 s polls over [0, 1000]; member B: 30 s polls over
	// [300, 1500]. Overlap [300, 1000], coarsest interval 30 s.
	a := &Series{}
	for i := 0; i <= 100; i++ {
		a.AppendValue(t0.Add(time.Duration(i)*10*time.Second), float64(i))
	}
	b := &Series{}
	for i := 10; i <= 50; i++ {
		b.AppendValue(t0.Add(time.Duration(i)*30*time.Second), 1000+float64(i))
	}
	aligned, err := AlignToCommonGrid([]*Series{a, b}, NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	ua, ub := aligned[0], aligned[1]
	if !ua.Start.Equal(ub.Start) || ua.Interval != ub.Interval || ua.Len() != ub.Len() {
		t.Fatalf("grids differ: %v/%v/%d vs %v/%v/%d",
			ua.Start, ua.Interval, ua.Len(), ub.Start, ub.Interval, ub.Len())
	}
	if !ua.Start.Equal(t0.Add(300 * time.Second)) {
		t.Fatalf("start = %v, want t0+300s", ua.Start)
	}
	if ua.Interval != 30*time.Second {
		t.Fatalf("interval = %v, want 30s", ua.Interval)
	}
	// Overlap 300..1000 s at 30 s: indices 0..23 -> 24 samples
	// (the last grid point at 990 s; 1020 s would exceed member A).
	wantLen := int((1000-300)/30) + 1
	if ua.Len() != wantLen {
		t.Fatalf("len = %d, want %d", ua.Len(), wantLen)
	}
	// Values: member A at grid point j is the sample nearest to
	// (300 + 30j) s, i.e. value (300+30j)/10.
	for j := 0; j < ua.Len(); j++ {
		want := float64(300+30*j) / 10
		if math.Abs(ua.Values[j]-want) > 1e-12 {
			t.Fatalf("A[%d] = %v, want %v", j, ua.Values[j], want)
		}
	}
}

func TestAlignErrors(t *testing.T) {
	if _, err := AlignToCommonGrid(nil, NearestNeighbor); err == nil {
		t.Fatal("empty set should fail")
	}
	if _, err := AlignToCommonGrid([]*Series{{}}, NearestNeighbor); err == nil {
		t.Fatal("empty member should fail")
	}
	// Non-overlapping members.
	a := &Series{}
	b := &Series{}
	for i := 0; i < 10; i++ {
		a.AppendValue(t0.Add(time.Duration(i)*time.Second), 1)
		b.AppendValue(t0.Add(time.Duration(i+100)*time.Second), 2)
	}
	if _, err := AlignToCommonGrid([]*Series{a, b}, NearestNeighbor); err == nil {
		t.Fatal("disjoint spans should fail")
	}
}

func TestAlignSingleMember(t *testing.T) {
	a := &Series{}
	for i := 0; i < 50; i++ {
		a.AppendValue(t0.Add(time.Duration(i)*time.Minute), float64(i%7))
	}
	aligned, err := AlignToCommonGrid([]*Series{a}, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if len(aligned) != 1 || aligned[0].Interval != time.Minute {
		t.Fatalf("aligned = %+v", aligned[0])
	}
}
