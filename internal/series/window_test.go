package series

import (
	"math"
	"testing"
	"time"
)

// TestWindowInclusiveEndpoint pins the closed-interval contract that
// AlignToCommonGrid relies on (and that used to be faked with
// Window(start, end+1ns)): a sample exactly at `end` is retained, a
// sample one nanosecond past it is not.
func TestWindowInclusiveEndpoint(t *testing.T) {
	end := t0.Add(100 * time.Second)
	s := &Series{}
	s.AppendValue(t0, 1)
	s.AppendValue(end, 2)                        // exactly on the window end
	s.AppendValue(end.Add(time.Nanosecond), 3)   // 1ns past — must be cut
	s.AppendValue(end.Add(2*time.Nanosecond), 4) //
	s.AppendValue(t0.Add(-time.Nanosecond), 0)   // 1ns before start — cut
	w := s.WindowInclusive(t0, end)
	if w.Len() != 2 {
		t.Fatalf("WindowInclusive kept %d samples, want 2", w.Len())
	}
	pts := w.Points()
	if !pts[0].Time.Equal(t0) || pts[0].Value != 1 {
		t.Fatalf("first kept sample %v=%v, want t0=1", pts[0].Time, pts[0].Value)
	}
	if !pts[1].Time.Equal(end) || pts[1].Value != 2 {
		t.Fatalf("endpoint sample %v=%v, want end=2 — the closed end must survive", pts[1].Time, pts[1].Value)
	}
	// The half-open Window by contrast excludes the endpoint.
	if got := s.Window(t0, end).Len(); got != 1 {
		t.Fatalf("half-open Window kept %d samples, want 1", got)
	}
}

// TestAlignKeepsNanosecondAlignedEndpoint pins the Align edge case: when
// the shortest member's last sample sits exactly on the common grid end,
// that sample must contribute to the aligned output rather than being
// windowed away.
func TestAlignKeepsNanosecondAlignedEndpoint(t *testing.T) {
	// Both members end exactly at t0+90s; the common end IS a sample.
	a := &Series{}
	b := &Series{}
	for i := 0; i <= 9; i++ {
		a.AppendValue(t0.Add(time.Duration(i)*10*time.Second), float64(i))
		b.AppendValue(t0.Add(time.Duration(i)*10*time.Second), 100+float64(i))
	}
	aligned, err := AlignToCommonGrid([]*Series{a, b}, NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	ua := aligned[0]
	if ua.Len() != 10 {
		t.Fatalf("aligned length %d, want 10 — the endpoint sample was lost", ua.Len())
	}
	if got := ua.Values[ua.Len()-1]; got != 9 {
		t.Fatalf("last aligned value %v, want 9 (the sample on the window end)", got)
	}
}

// TestResampleGrid pins the reconstruction entry point: the caller owns
// the grid (anchor and pitch), values interpolate per policy, and slots
// outside the observed span clamp to the edges.
func TestResampleGrid(t *testing.T) {
	s := &Series{}
	// Samples at 0, 10, 20 s with values 0, 10, 20: linear in time.
	for i := 0; i <= 2; i++ {
		s.AppendValue(t0.Add(time.Duration(i)*10*time.Second), float64(10*i))
	}

	t.Run("linear-on-offset-grid", func(t *testing.T) {
		// Grid anchored between samples: 5, 10, 15 s.
		u, err := s.ResampleGrid(t0.Add(5*time.Second), 5*time.Second, 3, Linear)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{5, 10, 15}
		for i, w := range want {
			if math.Abs(u.Values[i]-w) > 1e-9 {
				t.Fatalf("linear slot %d = %v, want %v", i, u.Values[i], w)
			}
		}
		if !u.Start.Equal(t0.Add(5*time.Second)) || u.Interval != 5*time.Second {
			t.Fatalf("grid not caller-owned: start %v interval %v", u.Start, u.Interval)
		}
	})
	t.Run("previous-holds", func(t *testing.T) {
		u, err := s.ResampleGrid(t0.Add(5*time.Second), 5*time.Second, 3, PreviousValue)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{0, 10, 10} // sample-and-hold between observations
		for i, w := range want {
			if u.Values[i] != w {
				t.Fatalf("previous slot %d = %v, want %v", i, u.Values[i], w)
			}
		}
	})
	t.Run("nearest-snaps", func(t *testing.T) {
		u, err := s.ResampleGrid(t0.Add(4*time.Second), 12*time.Second, 2, NearestNeighbor)
		if err != nil {
			t.Fatal(err)
		}
		// 4s is closer to the 0s sample (4s away) than to 10s (6s away);
		// 16s is closer to 20s (4s) than to 10s (6s).
		if u.Values[0] != 0 || u.Values[1] != 20 {
			t.Fatalf("nearest = %v, want [0 20]", u.Values)
		}
	})
	t.Run("clamps-outside-span", func(t *testing.T) {
		// Grid extends 10 s before and after the observations.
		u, err := s.ResampleGrid(t0.Add(-10*time.Second), 10*time.Second, 5, Linear)
		if err != nil {
			t.Fatal(err)
		}
		if u.Values[0] != 0 {
			t.Fatalf("pre-span slot = %v, want edge clamp 0", u.Values[0])
		}
		if u.Values[4] != 20 {
			t.Fatalf("post-span slot = %v, want edge clamp 20", u.Values[4])
		}
	})
	t.Run("errors", func(t *testing.T) {
		if _, err := s.ResampleGrid(t0, 0, 3, Linear); err != ErrBadInterval {
			t.Fatalf("zero interval: %v, want ErrBadInterval", err)
		}
		if _, err := s.ResampleGrid(t0, time.Second, 0, Linear); err != ErrTooShort {
			t.Fatalf("zero slots: %v, want ErrTooShort", err)
		}
		if _, err := (&Series{}).ResampleGrid(t0, time.Second, 3, Linear); err != ErrEmpty {
			t.Fatalf("empty series: %v, want ErrEmpty", err)
		}
		if _, err := s.ResampleGrid(t0, time.Second, 3, Interpolation(99)); err != ErrBadInterpolation {
			t.Fatalf("unknown policy: %v, want ErrBadInterpolation", err)
		}
	})
}
