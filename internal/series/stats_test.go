package series

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("Variance = %v, want 1.25", s.Variance)
	}
	if math.Abs(s.RMS-math.Sqrt(7.5)) > 1e-12 {
		t.Fatalf("RMS = %v", s.RMS)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
}

func TestDetrendZeroMeanProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, math.Mod(v, 1e9))
		}
		if len(clean) == 0 {
			return true
		}
		d := Detrend(clean)
		if len(d) != len(clean) {
			return false
		}
		m := Mean(d)
		scale := 1.0
		for _, v := range clean {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		return math.Abs(m) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {200, 4},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(empty) should be NaN")
	}
	// Input must not be reordered.
	if vals[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 || b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("BoxStats = %+v", b)
	}
}

func TestBoxStatsOrderedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		b := BoxStats(clean)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("Diff of singleton should be nil")
	}
}

func TestIsMonotone(t *testing.T) {
	if !IsMonotone([]float64{1, 1, 2, 3}) {
		t.Fatal("non-decreasing should be monotone")
	}
	if IsMonotone([]float64{1, 2, 1}) {
		t.Fatal("decreasing step should not be monotone")
	}
	if IsMonotone(nil) {
		t.Fatal("empty should not be monotone")
	}
}

func TestInterpolationString(t *testing.T) {
	cases := map[Interpolation]string{
		NearestNeighbor:    "nearest",
		Linear:             "linear",
		PreviousValue:      "previous",
		Interpolation(100): "unknown",
	}
	for ip, want := range cases {
		if got := ip.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ip, got, want)
		}
	}
}
