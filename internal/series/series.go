// Package series provides the time-series substrate: timestamped samples as
// produced by monitoring systems, conversion between irregular and uniform
// sampling (the paper's nearest-neighbour pre-cleaning, §3.2), gap analysis
// and summary statistics.
package series

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Point is a single observation of a monitored metric.
type Point struct {
	// Time is when the sample was taken.
	Time time.Time
	// Value is the observed reading.
	Value float64
}

// Series is a sequence of possibly irregularly spaced observations of one
// metric on one device. The zero value is an empty, ready-to-use series.
type Series struct {
	points []Point
	sorted bool
}

// Errors returned by series operations.
var (
	// ErrEmpty indicates an operation that needs at least one sample.
	ErrEmpty = errors.New("series: empty series")
	// ErrTooShort indicates an operation that needs more samples than
	// the series holds.
	ErrTooShort = errors.New("series: too few samples")
	// ErrBadInterval indicates a non-positive sampling interval.
	ErrBadInterval = errors.New("series: interval must be positive")
)

// New returns a Series over the given points. The points are copied and
// sorted by time.
func New(points []Point) *Series {
	s := &Series{points: append([]Point(nil), points...)}
	s.sort()
	return s
}

// Append adds a point. Appending in time order is O(1); out-of-order points
// are accepted and trigger a re-sort on the next read.
func (s *Series) Append(p Point) {
	if n := len(s.points); n > 0 && s.points[n-1].Time.After(p.Time) {
		s.sorted = false
	}
	s.points = append(s.points, p)
}

// AppendValue adds a point with the given time and value.
func (s *Series) AppendValue(t time.Time, v float64) {
	s.Append(Point{Time: t, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the samples sorted by time. The returned slice is owned by
// the series and must not be modified.
func (s *Series) Points() []Point {
	s.sort()
	return s.points
}

// Values returns the sample values in time order as a fresh slice.
func (s *Series) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.Value
	}
	return out
}

// Start returns the time of the earliest sample.
func (s *Series) Start() (time.Time, error) {
	if len(s.points) == 0 {
		return time.Time{}, ErrEmpty
	}
	s.sort()
	return s.points[0].Time, nil
}

// End returns the time of the latest sample.
func (s *Series) End() (time.Time, error) {
	if len(s.points) == 0 {
		return time.Time{}, ErrEmpty
	}
	s.sort()
	return s.points[len(s.points)-1].Time, nil
}

// Duration returns the time spanned by the series.
func (s *Series) Duration() (time.Duration, error) {
	if len(s.points) == 0 {
		return 0, ErrEmpty
	}
	s.sort()
	return s.points[len(s.points)-1].Time.Sub(s.points[0].Time), nil
}

// MedianInterval returns the median gap between consecutive samples. It is
// the robust estimate of the nominal polling interval of a production trace
// whose timestamps jitter.
func (s *Series) MedianInterval() (time.Duration, error) {
	if len(s.points) < 2 {
		return 0, ErrTooShort
	}
	s.sort()
	gaps := make([]time.Duration, len(s.points)-1)
	for i := 1; i < len(s.points); i++ {
		gaps[i-1] = s.points[i].Time.Sub(s.points[i-1].Time)
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2], nil
}

// SampleRate returns the nominal sampling rate in hertz implied by the
// median interval.
func (s *Series) SampleRate() (float64, error) {
	iv, err := s.MedianInterval()
	if err != nil {
		return 0, err
	}
	if iv <= 0 {
		return 0, ErrBadInterval
	}
	return 1 / iv.Seconds(), nil
}

// Window returns a new series holding the samples with from <= t < to.
func (s *Series) Window(from, to time.Time) *Series {
	s.sort()
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].Time.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return !s.points[i].Time.Before(to) })
	return New(s.points[lo:hi])
}

// WindowInclusive returns a new series holding the samples with
// from <= t <= end: the closed-interval companion to Window, for callers
// whose window end is a grid point that must itself be retained (a
// sample sitting exactly on the common end of an alignment span, for
// example). A sample even one nanosecond past end is excluded.
func (s *Series) WindowInclusive(from, end time.Time) *Series {
	s.sort()
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].Time.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time.After(end) })
	return New(s.points[lo:hi])
}

func (s *Series) sort() {
	if s.sorted && len(s.points) > 0 {
		return
	}
	sort.SliceStable(s.points, func(i, j int) bool { return s.points[i].Time.Before(s.points[j].Time) })
	s.sorted = true
}

// String summarizes the series for debugging.
func (s *Series) String() string {
	if len(s.points) == 0 {
		return "series(empty)"
	}
	s.sort()
	return fmt.Sprintf("series(%d points, %s .. %s)",
		len(s.points),
		s.points[0].Time.Format(time.RFC3339),
		s.points[len(s.points)-1].Time.Format(time.RFC3339))
}

// Uniform is a regularly sampled signal: Values[i] was observed at
// Start + i*Interval. It is the form all spectral analysis operates on.
type Uniform struct {
	// Start is the time of Values[0].
	Start time.Time
	// Interval is the spacing between consecutive samples.
	Interval time.Duration
	// Values holds the samples.
	Values []float64
}

// NewUniform constructs a Uniform signal, validating the interval.
func NewUniform(start time.Time, interval time.Duration, values []float64) (*Uniform, error) {
	if interval <= 0 {
		return nil, ErrBadInterval
	}
	return &Uniform{Start: start, Interval: interval, Values: values}, nil
}

// SampleRate returns the sampling rate in hertz.
func (u *Uniform) SampleRate() float64 {
	if u.Interval <= 0 {
		return 0
	}
	return 1 / u.Interval.Seconds()
}

// Len returns the number of samples.
func (u *Uniform) Len() int { return len(u.Values) }

// TimeAt returns the timestamp of sample i.
func (u *Uniform) TimeAt(i int) time.Time {
	return u.Start.Add(time.Duration(i) * u.Interval)
}

// Duration returns the time covered from the first to the last sample.
func (u *Uniform) Duration() time.Duration {
	if len(u.Values) < 2 {
		return 0
	}
	return time.Duration(len(u.Values)-1) * u.Interval
}

// Series converts back to an explicit timestamped series.
func (u *Uniform) Series() *Series {
	pts := make([]Point, len(u.Values))
	for i, v := range u.Values {
		pts[i] = Point{Time: u.TimeAt(i), Value: v}
	}
	return New(pts)
}

// Slice returns the sub-signal covering sample indices [lo, hi).
func (u *Uniform) Slice(lo, hi int) (*Uniform, error) {
	if lo < 0 || hi > len(u.Values) || lo > hi {
		return nil, fmt.Errorf("series: slice [%d, %d) out of range 0..%d", lo, hi, len(u.Values))
	}
	return &Uniform{Start: u.TimeAt(lo), Interval: u.Interval, Values: u.Values[lo:hi]}, nil
}
