package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestCDFFractionAbove(t *testing.T) {
	c := NewCDF([]float64{1, 10, 100, 1000, 10000})
	if got := c.FractionAbove(1000); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("FractionAbove(1000) = %v, want 0.4", got)
	}
	if got := c.FractionAbove(0); got != 1 {
		t.Fatalf("FractionAbove(0) = %v, want 1", got)
	}
}

func TestCDFDropsNaN(t *testing.T) {
	c := NewCDF([]float64{1, math.NaN(), 2})
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		c := NewCDF(vals)
		if c.Len() == 0 {
			return true
		}
		prev := -1.0
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			q := c.Quantile(p)
			if math.IsNaN(q) {
				return false
			}
			y := c.At(q)
			if y < prev-1e-12 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogXPoints(t *testing.T) {
	c := NewCDF([]float64{1, 10, 100, 1000})
	pts := c.LogXPoints(10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 1 || math.Abs(pts[len(pts)-1].X-1000) > 1e-9 {
		t.Fatalf("x range = %v .. %v", pts[0].X, pts[len(pts)-1].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF curve not monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("final y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestLogXPointsDegenerate(t *testing.T) {
	if pts := NewCDF(nil).LogXPoints(5); pts != nil {
		t.Fatal("empty CDF should yield nil")
	}
	if pts := NewCDF([]float64{-5, -1}).LogXPoints(5); pts != nil {
		t.Fatal("all-negative CDF should yield nil (log axis)")
	}
	pts := NewCDF([]float64{7, 7, 7}).LogXPoints(5)
	if len(pts) != 1 || pts[0].Y != 1 {
		t.Fatalf("constant CDF = %v", pts)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("metric", "value")
	tb.AddRow("temperature", "0.003")
	tb.AddRow("cpu", "0.008", "extra-dropped")
	out := tb.String()
	if !strings.Contains(out, "temperature") || !strings.Contains(out, "0.008") {
		t.Fatalf("table output:\n%s", out)
	}
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("extra cell should be dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, sep, 2 rows)", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "metric,value\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestAsciiPlotRender(t *testing.T) {
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{X: float64(i + 1), Y: math.Sqrt(float64(i))}
	}
	out := AsciiPlot{Width: 40, Height: 10, Title: "demo"}.Render(pts)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*") {
		t.Fatalf("plot output:\n%s", out)
	}
	if !strings.Contains(out, "x: 1 ..") {
		t.Fatalf("axis line missing:\n%s", out)
	}
}

func TestAsciiPlotLogX(t *testing.T) {
	pts := []Point{{1, 0}, {10, 0.5}, {100, 0.9}, {1000, 1}, {-5, 0.2}}
	out := AsciiPlot{LogX: true}.Render(pts)
	if !strings.Contains(out, "(log)") {
		t.Fatalf("log axis annotation missing:\n%s", out)
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	out := AsciiPlot{Title: "t"}.Render(nil)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot output:\n%s", out)
	}
	out = AsciiPlot{LogX: true}.Render([]Point{{X: -1, Y: 0}})
	if !strings.Contains(out, "(no data)") {
		t.Fatal("all-filtered plot should report no data")
	}
}

func TestBar(t *testing.T) {
	out := Bar("fig1", []string{"a", "bb"}, []float64{0.5, 1.2}, 20)
	if !strings.Contains(out, "fig1") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("fraction missing:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatal("fractions above 1 must clamp to 100%")
	}
}

func TestBoxRow(t *testing.T) {
	row := BoxRow("temp", 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-7, 1e-1, 40, true)
	if !strings.Contains(row, "temp") || !strings.Contains(row, "M") {
		t.Fatalf("box row: %q", row)
	}
	// Linear axis variant.
	row = BoxRow("lin", 1, 2, 3, 4, 5, 0, 10, 40, false)
	if !strings.Contains(row, "=") || !strings.Contains(row, "|") {
		t.Fatalf("linear box row: %q", row)
	}
}
