package report

import (
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	// 40 columns x 8 rows; a bright diagonal band.
	data := make([][]float64, 40)
	for c := range data {
		data[c] = make([]float64, 8)
		data[c][c*8/40] = 100
	}
	out := Heatmap{Title: "spec"}.Render(data)
	if !strings.Contains(out, "spec") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "@") {
		t.Fatalf("no bright cells:\n%s", out)
	}
	if !strings.Contains(out, "frequency") {
		t.Fatal("axis legend missing")
	}
}

func TestHeatmapLogScale(t *testing.T) {
	data := [][]float64{{1e-9, 1e-3}, {1e-6, 1}}
	out := Heatmap{Log: true}.Render(data)
	if !strings.Contains(out, "log10") {
		t.Fatal("log legend missing")
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if out := (Heatmap{Title: "t"}).Render(nil); !strings.Contains(out, "(no data)") {
		t.Fatal("nil input should say no data")
	}
	if out := (Heatmap{}).Render([][]float64{{}}); !strings.Contains(out, "(no data)") {
		t.Fatal("empty column should say no data")
	}
	// Ragged.
	if out := (Heatmap{}).Render([][]float64{{1, 2}, {1}}); !strings.Contains(out, "(no data)") {
		t.Fatal("ragged input should say no data")
	}
	// Constant matrix must not divide by zero.
	out := (Heatmap{}).Render([][]float64{{5, 5}, {5, 5}})
	if strings.Contains(out, "NaN") {
		t.Fatal("constant heatmap produced NaN")
	}
}

func TestHeatmapDecimation(t *testing.T) {
	// 500x200 decimated into <=72x16 with max-pooling: the single hot
	// cell must survive.
	data := make([][]float64, 500)
	for c := range data {
		data[c] = make([]float64, 200)
	}
	data[250][100] = 1
	out := Heatmap{MaxWidth: 60, MaxHeight: 12}.Render(data)
	if !strings.Contains(out, "@") {
		t.Fatalf("hot cell lost in decimation:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if len(l) > 80 {
			t.Fatalf("line too wide: %d", len(l))
		}
	}
}
