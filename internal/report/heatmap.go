package report

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a matrix (rows = y, ascending upward; columns = x) as
// ASCII shades — the terminal form of a spectrogram.
type Heatmap struct {
	// Title is printed above the grid.
	Title string
	// Log compresses values logarithmically before shading, the usual
	// choice for spectral power.
	Log bool
	// MaxWidth and MaxHeight bound the rendered size; larger matrices
	// are decimated. Zero selects 72x16.
	MaxWidth, MaxHeight int
}

var shades = []byte(" .:-=+*#%@")

// Render draws the matrix: data[c][r] is column c (time), row r
// (frequency, drawn bottom-up). Ragged or empty input yields "(no data)".
func (h Heatmap) Render(data [][]float64) string {
	w := h.MaxWidth
	if w <= 0 {
		w = 72
	}
	ht := h.MaxHeight
	if ht <= 0 {
		ht = 16
	}
	if len(data) == 0 || len(data[0]) == 0 {
		return h.Title + "\n(no data)\n"
	}
	rows := len(data[0])
	for _, col := range data {
		if len(col) != rows {
			return h.Title + "\n(no data)\n"
		}
	}
	cols := len(data)
	// Decimation strides.
	cStep := (cols + w - 1) / w
	rStep := (rows + ht - 1) / ht
	outCols := (cols + cStep - 1) / cStep
	outRows := (rows + rStep - 1) / rStep

	lo, hi := math.Inf(1), math.Inf(-1)
	val := func(c, r int) float64 {
		// Max-pool the decimated cell so narrow spectral lines survive.
		var m float64 = math.Inf(-1)
		for cc := c * cStep; cc < (c+1)*cStep && cc < cols; cc++ {
			for rr := r * rStep; rr < (r+1)*rStep && rr < rows; rr++ {
				v := data[cc][rr]
				if h.Log {
					v = math.Log10(v + 1e-30)
				}
				if v > m {
					m = v
				}
			}
		}
		return m
	}
	cells := make([][]float64, outCols)
	for c := range cells {
		cells[c] = make([]float64, outRows)
		for r := range cells[c] {
			v := val(c, r)
			cells[c][r] = v
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	if h.Title != "" {
		b.WriteString(h.Title)
		b.WriteByte('\n')
	}
	for r := outRows - 1; r >= 0; r-- {
		b.WriteByte('|')
		for c := 0; c < outCols; c++ {
			v := cells[c][r]
			var idx int
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				idx = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", outCols) + " (time ->, frequency ^)\n")
	if h.Log {
		fmt.Fprintf(&b, " shade: log10 power %.3g .. %.3g\n", lo, hi)
	} else {
		fmt.Fprintf(&b, " shade: %.3g .. %.3g\n", lo, hi)
	}
	return b.String()
}
