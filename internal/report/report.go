// Package report renders experiment results as the tables, CDFs, box
// plots and ASCII charts the paper's figures are built from. Everything
// writes plain text or CSV so results diff cleanly in EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied; NaNs dropped).
func NewCDF(samples []float64) *CDF {
	clean := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	sort.Float64s(clean)
	return &CDF{sorted: clean}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample v with P(X <= v) >= p. p is clamped
// to [0, 1]; an empty CDF yields NaN.
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// FractionAbove returns P(X >= x).
func (c *CDF) FractionAbove(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	return float64(len(c.sorted)-idx) / float64(len(c.sorted))
}

// LogXPoints samples the CDF at n log-spaced x positions spanning the data
// range, the series behind the paper's log-x Fig. 4 plots. Non-positive
// samples are clamped to the smallest positive one.
func (c *CDF) LogXPoints(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo := c.sorted[0]
	hi := c.sorted[len(c.sorted)-1]
	if lo <= 0 {
		lo = smallestPositive(c.sorted)
		if lo <= 0 {
			return nil
		}
	}
	if hi <= lo {
		return []Point{{X: lo, Y: 1}}
	}
	out := make([]Point, n)
	for i := range out {
		x := lo * math.Pow(hi/lo, float64(i)/float64(n-1))
		out[i] = Point{X: x, Y: c.At(x)}
	}
	return out
}

func smallestPositive(sorted []float64) float64 {
	for _, v := range sorted {
		if v > 0 {
			return v
		}
	}
	return 0
}

// Point is one (x, y) pair of a rendered curve.
type Point struct{ X, Y float64 }

// Table renders rows of labelled columns as aligned plain text.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
			if i < len(widths)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
