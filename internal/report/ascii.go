package report

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders a curve as a fixed-size character grid: the terminal
// rendition of a paper figure.
type AsciiPlot struct {
	// Width and Height are the plot area dimensions in characters.
	Width, Height int
	// LogX plots the x axis in log scale (Fig. 4 style).
	LogX bool
	// Title is printed above the grid.
	Title string
	// Marker is the curve glyph; 0 selects '*'.
	Marker byte
}

// Render draws the points. Non-finite points are skipped; with LogX,
// non-positive x values are skipped too.
func (p AsciiPlot) Render(points []Point) string {
	w, h := p.Width, p.Height
	if w < 8 {
		w = 60
	}
	if h < 4 {
		h = 16
	}
	marker := p.Marker
	if marker == 0 {
		marker = '*'
	}
	usable := make([]Point, 0, len(points))
	for _, pt := range points {
		if math.IsNaN(pt.X) || math.IsNaN(pt.Y) || math.IsInf(pt.X, 0) || math.IsInf(pt.Y, 0) {
			continue
		}
		if p.LogX && pt.X <= 0 {
			continue
		}
		usable = append(usable, pt)
	}
	if len(usable) == 0 {
		return p.Title + "\n(no data)\n"
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, pt := range usable {
		x := pt.X
		if p.LogX {
			x = math.Log10(x)
		}
		xlo, xhi = math.Min(xlo, x), math.Max(xhi, x)
		ylo, yhi = math.Min(ylo, pt.Y), math.Max(yhi, pt.Y)
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, pt := range usable {
		x := pt.X
		if p.LogX {
			x = math.Log10(x)
		}
		col := int((x - xlo) / (xhi - xlo) * float64(w-1))
		row := h - 1 - int((pt.Y-ylo)/(yhi-ylo)*float64(h-1))
		if col >= 0 && col < w && row >= 0 && row < h {
			grid[row][col] = marker
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	for _, line := range grid {
		b.WriteString("|")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	if p.LogX {
		fmt.Fprintf(&b, " x: %.3g .. %.3g (log)   y: %.3g .. %.3g\n",
			math.Pow(10, xlo), math.Pow(10, xhi), ylo, yhi)
	} else {
		fmt.Fprintf(&b, " x: %.3g .. %.3g   y: %.3g .. %.3g\n", xlo, xhi, ylo, yhi)
	}
	return b.String()
}

// Bar renders a horizontal bar chart of labelled fractions in [0, 1] —
// the Fig. 1 rendition.
func Bar(title string, labels []string, fractions []float64, width int) string {
	if width < 10 {
		width = 40
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, l := range labels {
		f := 0.0
		if i < len(fractions) {
			f = math.Max(0, math.Min(1, fractions[i]))
		}
		n := int(f * float64(width))
		fmt.Fprintf(&b, "%-*s |%s%s| %5.1f%%\n", labelW, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), 100*f)
	}
	return b.String()
}

// BoxRow renders a five-number summary as a text box-whisker spanning
// [axisLo, axisHi] (log scale when log is true) — one row of Fig. 5.
func BoxRow(label string, mn, q1, med, q3, mx, axisLo, axisHi float64, width int, log bool) string {
	if width < 10 {
		width = 50
	}
	pos := func(v float64) int {
		if log {
			if v <= 0 || axisLo <= 0 {
				return 0
			}
			v, axisLoL, axisHiL := math.Log10(v), math.Log10(axisLo), math.Log10(axisHi)
			if axisHiL == axisLoL {
				return 0
			}
			return clampInt(int((v-axisLoL)/(axisHiL-axisLoL)*float64(width-1)), 0, width-1)
		}
		if axisHi == axisLo {
			return 0
		}
		return clampInt(int((v-axisLo)/(axisHi-axisLo)*float64(width-1)), 0, width-1)
	}
	line := []byte(strings.Repeat(" ", width))
	for i := pos(mn); i <= pos(mx) && i < width; i++ {
		line[i] = '-'
	}
	for i := pos(q1); i <= pos(q3) && i < width; i++ {
		line[i] = '='
	}
	line[pos(mn)] = '|'
	line[pos(mx)] = '|'
	line[pos(med)] = 'M'
	return fmt.Sprintf("%-20s %s", label, string(line))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
