package tsdb

import (
	"sort"
	"time"

	"repro/internal/series"
)

// QueryResult is the answer to a range query: points stitched across the
// tiers intersecting the window, oldest tier first, sorted by time.
type QueryResult struct {
	// ID echoes the queried series.
	ID string
	// Points holds the stitched samples in time order. Points taken from
	// a downsampled tier carry the bucket's grid-aligned start time and
	// its mean value; Aggregates has their full summaries.
	Points []series.Point
	// Tiers lists each tier that contributed, in read order (coarsest
	// first, raw last). Tier 0 is the raw ring, tier k ≥ 1 the k-th
	// downsampled tier.
	Tiers []TierSlice
	// Aggregates holds the min/max/mean summaries of every bucket point
	// in the (unthinned) window, in time order. Empty when the window was
	// answered from the raw ring alone.
	Aggregates []AggPoint
	// Thinned reports that the stitched result exceeded the requested
	// point budget and was stride-decimated down to it.
	Thinned bool
}

// TierSlice records one tier's contribution to a query.
type TierSlice struct {
	// Tier is the tier index: 0 = raw ring, k ≥ 1 = k-th downsampled
	// tier.
	Tier int
	// Width is the tier's bucket width (0 for the raw ring).
	Width time.Duration
	// Points is how many points the tier contributed (before thinning).
	Points int
}

// AggPoint is a bucket summary surfaced by a query.
type AggPoint struct {
	// Time is the bucket's grid-aligned start.
	Time time.Time
	// Min, Max and Mean summarize the samples the bucket represents.
	Min, Max, Mean float64
	// Count is the number of raw samples represented.
	Count int64
}

// query stitches the retained tiers over [from, to). Caller holds the
// shard lock. A non-nil cache serves sealed-block decodes from the
// shard's decoded-block LRU.
func (m *memSeries) query(id string, from, to time.Time, maxPoints int, cache *blockCache) *QueryResult {
	res := &QueryResult{ID: id}
	// Coarsest tier first: the cascade makes deeper tiers strictly older,
	// so this emits (approximately) oldest → newest. A bucket is returned
	// when its own [start, end) coverage overlaps [from, to) — so a
	// window falling inside one bucket still gets its summary, and
	// buckets written before a retention retune keep the coverage they
	// were written with.
	for k := len(m.tiers) - 1; k >= 0; k-- {
		t := m.tiers[k]
		if !t.overlaps(from, to) {
			continue
		}
		before := len(res.Points)
		emit := func(b bucket) {
			if !to.IsZero() && !b.start.Before(to) {
				return
			}
			if !from.IsZero() && !b.end.After(from) {
				return
			}
			res.Points = append(res.Points, series.Point{Time: b.start, Value: b.mean()})
			res.Aggregates = append(res.Aggregates, AggPoint{
				Time: b.start, Min: b.min, Max: b.max, Mean: b.mean(), Count: b.count,
			})
		}
		t.each(from, to, emit)
		if t.curSet {
			emit(t.cur)
		}
		if n := len(res.Points) - before; n > 0 {
			res.Tiers = append(res.Tiers, TierSlice{Tier: k + 1, Width: t.width, Points: n})
		}
	}
	// Same band pruning for the raw store: a window entirely outside the
	// retained raw span (deep-history queries) skips the scan. In
	// compressed mode, sealed blocks outside the window are additionally
	// skipped without decoding.
	if oldest, newest, ok := m.rawBounds(); ok &&
		(to.IsZero() || oldest.Before(to)) &&
		(from.IsZero() || !newest.Before(from)) {
		before := len(res.Points)
		keep := func(p series.Point) {
			if (from.IsZero() || !p.Time.Before(from)) && (to.IsZero() || p.Time.Before(to)) {
				res.Points = append(res.Points, p)
			}
		}
		if m.raw != nil {
			for i := 0; i < m.raw.size(); i++ {
				keep(m.raw.at(i))
			}
		} else {
			// Cache-resident blocks arrive window-trimmed as whole slices;
			// one bulk append per block keeps the cached read path free of
			// the per-point closure cost the streaming decode pays.
			m.craw.each(from, to, cache, func(pts []series.Point) {
				res.Points = append(res.Points, pts...)
			}, keep)
		}
		if n := len(res.Points) - before; n > 0 {
			res.Tiers = append(res.Tiers, TierSlice{Tier: 0, Points: n})
		}
	}
	// Single-band results (the common recent-window raw read) are already
	// ordered by construction; a linear is-sorted check keeps the hot
	// path free of the O(n log n) pass.
	if !sort.SliceIsSorted(res.Points, func(a, b int) bool { return res.Points[a].Time.Before(res.Points[b].Time) }) {
		sort.SliceStable(res.Points, func(a, b int) bool { return res.Points[a].Time.Before(res.Points[b].Time) })
	}
	if !sort.SliceIsSorted(res.Aggregates, func(a, b int) bool { return res.Aggregates[a].Time.Before(res.Aggregates[b].Time) }) {
		sort.SliceStable(res.Aggregates, func(a, b int) bool { return res.Aggregates[a].Time.Before(res.Aggregates[b].Time) })
	}
	if maxPoints > 0 && len(res.Points) > maxPoints {
		res.Points = thin(res.Points, maxPoints)
		res.Thinned = true
	}
	return res
}

// thin decimates pts to exactly maxPoints with a fractional stride
// (integer strides can undershoot the budget by up to half). Strides are
// anchored at the end so the newest sample — the one operators care
// about most — always survives.
func thin(pts []series.Point, maxPoints int) []series.Point {
	n := len(pts)
	out := pts[:0]
	for j := 0; j < maxPoints; j++ {
		out = append(out, pts[(j+1)*n/maxPoints-1])
	}
	return out
}
