package tsdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/series"
)

var snapStart = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// TestStrictAppendRejects locks the serving-path contract: a strict
// store rejects out-of-order and unrepresentable timestamps without
// mutating anything, while the lenient default keeps absorbing them.
func TestStrictAppendRejects(t *testing.T) {
	db := New(Config{StrictAppend: true, Retention: RetentionConfig{RawCapacity: 64, CompressBlock: 8}})
	if !db.Strict() {
		t.Fatal("Strict() = false on a StrictAppend store")
	}
	for i := 0; i < 10; i++ {
		if err := db.Append("s", series.Point{Time: snapStart.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatalf("in-order append %d: %v", i, err)
		}
	}
	// Equal timestamps are allowed (production pollers emit duplicates).
	if err := db.Append("s", series.Point{Time: snapStart.Add(9 * time.Second), Value: 9.5}); err != nil {
		t.Fatalf("equal-timestamp append: %v", err)
	}
	before := db.Stats().Appends
	if err := db.Append("s", series.Point{Time: snapStart, Value: -1}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order append: got %v, want ErrOutOfOrder", err)
	}
	if err := db.Append("s", series.Point{Time: time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC), Value: 0}); !errors.Is(err, ErrTimeRange) {
		t.Fatalf("far-future append: got %v, want ErrTimeRange", err)
	}
	if got := db.Stats().Appends; got != before {
		t.Fatalf("rejected appends still counted: %d -> %d", before, got)
	}

	lenient := New(Config{})
	lenient.Append("s", series.Point{Time: snapStart.Add(time.Hour)})
	if err := lenient.Append("s", series.Point{Time: snapStart}); err != nil {
		t.Fatalf("lenient store rejected an out-of-order append: %v", err)
	}
}

// TestSealHook asserts the hook sees exactly the appended points, in
// order, as blocks seal — including the forced SealAll tail.
func TestSealHook(t *testing.T) {
	db := New(Config{StrictAppend: true, Retention: RetentionConfig{RawCapacity: 1024, CompressBlock: 16}})
	var got []series.Point
	db.OnSeal(func(id string, blk Block) {
		if id != "s" {
			t.Errorf("hook id = %q, want s", id)
		}
		pts, err := blk.Points(nil)
		if err != nil {
			t.Errorf("hook block decode: %v", err)
		}
		got = append(got, pts...)
	})
	const n = 16*3 + 5 // three sealed blocks plus an unsealed tail
	var want []series.Point
	for i := 0; i < n; i++ {
		p := series.Point{Time: snapStart.Add(time.Duration(i) * time.Second), Value: float64(i)}
		want = append(want, p)
		if err := db.Append("s", p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if len(got) != 16*3 {
		t.Fatalf("hook saw %d points before SealAll, want %d", len(got), 16*3)
	}
	if sealed := db.SealAll(); sealed != 1 {
		t.Fatalf("SealAll sealed %d blocks, want 1", sealed)
	}
	if len(got) != n {
		t.Fatalf("hook saw %d points after SealAll, want %d", len(got), n)
	}
	for i := range want {
		if !got[i].Time.Equal(want[i].Time) || got[i].Value != want[i].Value {
			t.Fatalf("hook point %d = %v, want %v", i, got[i], want[i])
		}
	}
	// SealAll with nothing active is a no-op.
	if sealed := db.SealAll(); sealed != 0 {
		t.Fatalf("second SealAll sealed %d blocks, want 0", sealed)
	}
}

// TestRebuildBlock round-trips a sealed block through its persisted form.
func TestRebuildBlock(t *testing.T) {
	b := NewBlockBuilder()
	for i := 0; i < 100; i++ {
		if err := b.Append(snapStart.Add(time.Duration(i)*30*time.Second), float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	blk := b.Finish()
	re, err := RebuildBlock(blk.Data(), blk.Len())
	if err != nil {
		t.Fatalf("RebuildBlock: %v", err)
	}
	if !re.First().Equal(blk.First()) || !re.Last().Equal(blk.Last()) {
		t.Fatalf("rebuilt bounds [%v, %v], want [%v, %v]", re.First(), re.Last(), blk.First(), blk.Last())
	}
	orig, _ := blk.Points(nil)
	back, err := re.Points(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(back) {
		t.Fatalf("rebuilt %d points, want %d", len(back), len(orig))
	}
	for i := range orig {
		if !orig[i].Time.Equal(back[i].Time) || orig[i].Value != back[i].Value {
			t.Fatalf("point %d differs after rebuild", i)
		}
	}
	if _, err := RebuildBlock(blk.Data()[:len(blk.Data())/2], blk.Len()); err == nil {
		t.Fatal("RebuildBlock accepted a truncated payload")
	}
	if _, err := RebuildBlock(nil, 0); err == nil {
		t.Fatal("RebuildBlock accepted an empty block")
	}
}

// fillSnapshotDB writes enough points to exercise sealed blocks, the
// active tail, tier cascades and a retuned grid.
func fillSnapshotDB(db *DB, seriesN, pointsN int) {
	for s := 0; s < seriesN; s++ {
		id := fmt.Sprintf("dev%02d/metric", s)
		db.SetNyquistRate(id, 0.05)
		for i := 0; i < pointsN; i++ {
			db.Append(id, series.Point{
				Time:  snapStart.Add(time.Duration(i) * time.Second),
				Value: float64(i%37) + float64(s),
			})
		}
	}
}

// TestExportRestoreRoundTrip asserts a restored DB answers every query
// identically to the original — raw, tiers, aggregates and stats.
func TestExportRestoreRoundTrip(t *testing.T) {
	for _, compress := range []int{0, 16} {
		t.Run(fmt.Sprintf("compress=%d", compress), func(t *testing.T) {
			cfg := Config{
				StrictAppend: true,
				Retention:    RetentionConfig{RawCapacity: 256, TierCapacity: 64, Tiers: 2, CompressBlock: compress},
			}
			src := New(cfg)
			fillSnapshotDB(src, 3, 2000)

			dst := New(cfg)
			if err := src.ExportSeries(func(s SeriesSnapshot) error { return dst.RestoreSeries(s) }); err != nil {
				t.Fatalf("export/restore: %v", err)
			}

			for _, id := range src.IDs() {
				a, err := src.Query(id, time.Time{}, time.Time{}, 0)
				if err != nil {
					t.Fatal(err)
				}
				b, err := dst.Query(id, time.Time{}, time.Time{}, 0)
				if err != nil {
					t.Fatalf("restored query %s: %v", id, err)
				}
				if len(a.Points) != len(b.Points) {
					t.Fatalf("%s: restored %d points, want %d", id, len(b.Points), len(a.Points))
				}
				for i := range a.Points {
					if !a.Points[i].Time.Equal(b.Points[i].Time) || a.Points[i].Value != b.Points[i].Value {
						t.Fatalf("%s point %d: %v != %v", id, i, b.Points[i], a.Points[i])
					}
				}
				if len(a.Aggregates) != len(b.Aggregates) {
					t.Fatalf("%s: restored %d aggregates, want %d", id, len(b.Aggregates), len(a.Aggregates))
				}
				sa, _ := src.SeriesStats(id)
				sb, err := dst.SeriesStats(id)
				if err != nil {
					t.Fatal(err)
				}
				if sa.Appends != sb.Appends || sa.Compacted != sb.Compacted || sa.Dropped != sb.Dropped {
					t.Fatalf("%s: restored counters (%d,%d,%d), want (%d,%d,%d)",
						id, sb.Appends, sb.Compacted, sb.Dropped, sa.Appends, sa.Compacted, sa.Dropped)
				}
				if sa.NyquistRate != sb.NyquistRate {
					t.Fatalf("%s: restored nyquist %v, want %v", id, sb.NyquistRate, sa.NyquistRate)
				}
			}

			// The restored store keeps appending where the original left
			// off: strict ordering must hold against the restored
			// watermark, and new points must land.
			id := "dev00/metric"
			if err := dst.Append(id, series.Point{Time: snapStart, Value: 0}); !errors.Is(err, ErrOutOfOrder) {
				t.Fatalf("restored store accepted a pre-watermark append: %v", err)
			}
			if err := dst.Append(id, series.Point{Time: snapStart.Add(3000 * time.Second), Value: 1}); err != nil {
				t.Fatalf("restored store rejected a fresh append: %v", err)
			}
		})
	}
}
