// Compressed storage backends for memSeries: when RetentionConfig
// selects CompressBlock > 0, the raw ring and the summary-tier rings
// trade their []Point / []bucket slices for sealed Gorilla blocks plus a
// small uncompressed active run. Eviction becomes block-granular — a
// full store sheds its oldest sealed block into the next tier — so the
// retained size breathes between capacity−blockLen and capacity instead
// of sitting exactly at capacity; what a serving store buys for that is
// roughly an order of magnitude more retained points per byte.

package tsdb

import (
	"sort"
	"time"

	"repro/internal/series"
)

// pointSeg is one sealed segment of the compressed raw store: normally a
// Gorilla block, or (only when the codec refused the data — e.g. a
// timestamp outside the int64-nanosecond range) a verbatim fallback
// slice, so compression can never lose or reject a write.
type pointSeg struct {
	blk Block
	pts []series.Point // fallback; nil when blk is used
	// firstT/lastT bound the segment (fallback mode; blk carries its own).
	firstT, lastT time.Time
	// seq is the segment's process-unique decoded-block cache key,
	// assigned at seal (and on snapshot restore); 0 = not cacheable.
	seq uint64
}

func (s *pointSeg) size() int {
	if s.pts != nil {
		return len(s.pts)
	}
	return s.blk.Len()
}

func (s *pointSeg) first() time.Time {
	if s.pts != nil {
		return s.firstT
	}
	return s.blk.First()
}

func (s *pointSeg) last() time.Time {
	if s.pts != nil {
		return s.lastT
	}
	return s.blk.Last()
}

// each emits the segment's points in time order. Decode state is local,
// so concurrent readers may share a segment.
func (s *pointSeg) each(emit func(series.Point)) {
	if s.pts != nil {
		for _, p := range s.pts {
			emit(p)
		}
		return
	}
	it := s.blk.Iter()
	for it.Next() {
		emit(it.Point())
	}
}

// cachedWindow returns the segment's decoded points trimmed to [from, to),
// served from c (and populating c on a miss). ok is false when the segment
// cannot use the cache — nil cache, a fallback slice, or no seq — and the
// caller must fall back to a streaming decode. The returned slice aliases
// the shared cache entry and must never be mutated.
func (s *pointSeg) cachedWindow(c *blockCache, from, to time.Time) (_ []series.Point, ok bool) {
	if c == nil || s.seq == 0 || s.pts != nil {
		return nil, false
	}
	pts, hit := c.get(s.seq)
	if !hit {
		pts = make([]series.Point, 0, s.blk.Len())
		it := s.blk.Iter()
		for it.Next() {
			pts = append(pts, it.Point())
		}
		c.put(s.seq, pts)
	}
	return trimWindow(pts, from, to), true
}

// trimWindow narrows a time-ordered slice to [from, to) by binary search;
// zero bounds are unbounded.
func trimWindow(pts []series.Point, from, to time.Time) []series.Point {
	lo, hi := 0, len(pts)
	if !from.IsZero() {
		lo = sort.Search(len(pts), func(i int) bool { return !pts[i].Time.Before(from) })
	}
	if !to.IsZero() {
		hi = sort.Search(len(pts), func(i int) bool { return !pts[i].Time.Before(to) })
	}
	if lo >= hi {
		return nil
	}
	return pts[lo:hi]
}

// compPoints is the compressed raw store: a FIFO of sealed segments plus
// an uncompressed active run of at most blockLen points.
type compPoints struct {
	blockLen int
	capacity int // max total points; 0 = unbounded (never evicts)
	segs     []pointSeg
	active   []series.Point
	n        int
	evbuf    []series.Point // reusable eviction decode buffer
	// sealed queues blocks sealed since the last takeSealed — the DB's
	// seal-hook feed. Fallback (uncompressable) segments never enter it:
	// strict serving stores cannot produce them, and lenient stores have
	// no hook.
	sealed []Block
	// evictedSeqs queues the cache keys of segments evicted from
	// retention since the last takeEvictedSeqs — the DB drains it (under
	// the shard lock) to invalidate the decoded-block cache.
	evictedSeqs []uint64
}

func newCompPoints(blockLen, capacity int) *compPoints {
	return &compPoints{blockLen: blockLen, capacity: capacity}
}

func (c *compPoints) size() int { return c.n }

// push appends one point. When the store exceeds its capacity the oldest
// sealed segment is evicted and returned, oldest point first; the slice
// is reused across calls and must be consumed before the next push.
func (c *compPoints) push(p series.Point) []series.Point {
	c.active = append(c.active, p)
	c.n++
	if len(c.active) >= c.blockLen {
		//nyquist:allow-alloc seal fires once per blockLen points; its cost amortizes to ~0 per append
		c.seal()
	}
	if c.capacity > 0 && c.n > c.capacity && len(c.segs) > 0 {
		//nyquist:allow-alloc eviction happens at capacity, once per sealed block
		return c.evictOldest()
	}
	return nil
}

// seal compresses the active run into a segment. Appends may arrive out
// of time order (the Append contract tolerates them); storage order
// inside a segment is by time, which preserves the point multiset — the
// query path orders across bands anyway.
func (c *compPoints) seal() {
	if len(c.active) == 0 {
		return
	}
	pts := c.active
	if !sort.SliceIsSorted(pts, func(a, b int) bool { return pts[a].Time.Before(pts[b].Time) }) {
		sort.SliceStable(pts, func(a, b int) bool { return pts[a].Time.Before(pts[b].Time) })
	}
	seg := pointSeg{}
	if blk, err := encodeBlockPooled(pts); err == nil {
		seg.blk = blk
		seg.seq = nextSegSeq()
		c.sealed = append(c.sealed, blk)
	} else {
		seg.pts = append([]series.Point(nil), pts...)
		seg.firstT = pts[0].Time
		seg.lastT = pts[len(pts)-1].Time
	}
	c.segs = append(c.segs, seg)
	c.active = c.active[:0]
}

// takeSealed drains the sealed-block queue. The returned slice is reused
// by later seals; the caller (the DB, under the shard lock) must consume
// it before releasing the lock.
func (c *compPoints) takeSealed() []Block {
	if len(c.sealed) == 0 {
		return nil
	}
	out := c.sealed
	c.sealed = c.sealed[:0]
	return out
}

// evictOldest decodes and removes the oldest sealed segment, returning
// its points (reusable buffer). The segment's cache key is queued for
// invalidation (see takeEvictedSeqs).
func (c *compPoints) evictOldest() []series.Point {
	seg := c.segs[0]
	copy(c.segs, c.segs[1:])
	c.segs[len(c.segs)-1] = pointSeg{}
	c.segs = c.segs[:len(c.segs)-1]
	if seg.seq != 0 {
		c.evictedSeqs = append(c.evictedSeqs, seg.seq)
	}
	c.evbuf = c.evbuf[:0]
	seg.each(func(p series.Point) { c.evbuf = append(c.evbuf, p) })
	c.n -= seg.size()
	return c.evbuf
}

// takeEvictedSeqs drains the queue of cache keys whose segments left
// retention. The returned slice is reused by later evictions; the
// caller (the DB, under the shard lock) must consume it before
// releasing the lock.
func (c *compPoints) takeEvictedSeqs() []uint64 {
	if len(c.evictedSeqs) == 0 {
		return nil
	}
	out := c.evictedSeqs
	c.evictedSeqs = c.evictedSeqs[:0]
	return out
}

// bounds returns the oldest and newest retained timestamps.
func (c *compPoints) bounds() (oldest, newest time.Time, ok bool) {
	for i := range c.segs {
		s := &c.segs[i]
		if !ok || s.first().Before(oldest) {
			oldest = s.first()
		}
		if s.last().After(newest) {
			newest = s.last()
		}
		ok = true
	}
	for _, p := range c.active {
		if !ok || p.Time.Before(oldest) {
			oldest = p.Time
		}
		if p.Time.After(newest) {
			newest = p.Time
		}
		ok = true
	}
	return oldest, newest, ok
}

// each emits every retained point whose segment can overlap [from, to)
// (zero bounds are unbounded). Sealed segments fully outside the window
// are skipped without decoding. A non-nil cache serves repeated decodes
// of hot segments from memory: cache-served segments are handed to bulk
// as one window-trimmed, already-filtered slice (the query hot path
// appends it with a single copy instead of a closure call per point);
// everything else streams through emit, which the caller still filters.
func (c *compPoints) each(from, to time.Time, cache *blockCache, bulk func([]series.Point), emit func(series.Point)) {
	for i := range c.segs {
		s := &c.segs[i]
		if !to.IsZero() && !s.first().Before(to) {
			continue
		}
		if !from.IsZero() && s.last().Before(from) {
			continue
		}
		if pts, ok := s.cachedWindow(cache, from, to); ok {
			if len(pts) > 0 {
				bulk(pts)
			}
			continue
		}
		s.each(emit)
	}
	for _, p := range c.active {
		emit(p)
	}
}

// compressedFootprint reports the sealed compressed payload: bytes and
// the points they hold (fallback segments count as uncompressed).
func (c *compPoints) compressedFootprint() (bytes, points int64) {
	for i := range c.segs {
		if c.segs[i].pts == nil {
			bytes += int64(c.segs[i].blk.Size())
			points += int64(c.segs[i].blk.Len())
		}
	}
	return bytes, points
}

// bucketSeg is one sealed segment of a compressed tier, mirroring
// pointSeg: a bucket block, or a verbatim fallback slice.
type bucketSeg struct {
	blk bucketBlock
	bks []bucket // fallback; nil when blk is used
	// firstT/lastEndT bound the segment (fallback mode).
	firstT, lastEndT time.Time
}

func (s *bucketSeg) size() int {
	if s.bks != nil {
		return len(s.bks)
	}
	return s.blk.n
}

func (s *bucketSeg) firstStart() time.Time {
	if s.bks != nil {
		return s.firstT
	}
	return time.Unix(0, s.blk.firstNano)
}

func (s *bucketSeg) lastEnd() time.Time {
	if s.bks != nil {
		return s.lastEndT
	}
	return time.Unix(0, s.blk.lastEnd)
}

// samples is the sum of the segment's bucket counts, available without
// decoding.
func (s *bucketSeg) samples() int64 {
	if s.bks != nil {
		var n int64
		for _, b := range s.bks {
			n += b.count
		}
		return n
	}
	return s.blk.samples
}

func (s *bucketSeg) each(emit func(bucket)) {
	if s.bks != nil {
		for _, b := range s.bks {
			emit(b)
		}
		return
	}
	_ = s.blk.each(emit) // decode errors impossible for self-encoded blocks
}

// compBuckets is the compressed finalized-bucket store of one tier.
type compBuckets struct {
	blockLen int
	capacity int // max finalized buckets; 0 = unbounded
	segs     []bucketSeg
	active   []bucket
	n        int
	builder  *bucketBlockBuilder
	evbuf    []bucket
}

func newCompBuckets(blockLen, capacity int) *compBuckets {
	return &compBuckets{blockLen: blockLen, capacity: capacity}
}

func (c *compBuckets) size() int { return c.n }

// push appends one finalized bucket, returning evicted buckets (oldest
// first, reusable buffer) once capacity is exceeded.
func (c *compBuckets) push(b bucket) []bucket {
	c.active = append(c.active, b)
	c.n++
	if len(c.active) >= c.blockLen {
		//nyquist:allow-alloc seal fires once per blockLen buckets; its cost amortizes to ~0 per append
		c.seal()
	}
	if c.capacity > 0 && c.n > c.capacity && len(c.segs) > 0 {
		//nyquist:allow-alloc eviction happens at capacity, once per sealed block
		return c.evictOldest()
	}
	return nil
}

func (c *compBuckets) seal() {
	if len(c.active) == 0 {
		return
	}
	if c.builder == nil {
		c.builder = newBucketBlockBuilder()
	} else {
		c.builder.reset()
	}
	seg := bucketSeg{}
	ok := true
	for _, b := range c.active {
		if err := c.builder.append(b); err != nil {
			ok = false
			break
		}
	}
	if ok {
		seg.blk = c.builder.finish()
	} else {
		seg.bks = append([]bucket(nil), c.active...)
		seg.firstT = c.active[0].start
		for _, b := range c.active {
			if b.end.After(seg.lastEndT) {
				seg.lastEndT = b.end
			}
		}
	}
	c.segs = append(c.segs, seg)
	c.active = c.active[:0]
}

func (c *compBuckets) evictOldest() []bucket {
	seg := c.segs[0]
	copy(c.segs, c.segs[1:])
	c.segs[len(c.segs)-1] = bucketSeg{}
	c.segs = c.segs[:len(c.segs)-1]
	c.evbuf = c.evbuf[:0]
	seg.each(func(b bucket) { c.evbuf = append(c.evbuf, b) })
	c.n -= seg.size()
	return c.evbuf
}

// bounds returns the oldest bucket start and newest coverage end.
func (c *compBuckets) bounds() (oldest, newestEnd time.Time, ok bool) {
	for i := range c.segs {
		s := &c.segs[i]
		if !ok || s.firstStart().Before(oldest) {
			oldest = s.firstStart()
		}
		if s.lastEnd().After(newestEnd) {
			newestEnd = s.lastEnd()
		}
		ok = true
	}
	for _, b := range c.active {
		if !ok || b.start.Before(oldest) {
			oldest = b.start
		}
		if b.end.After(newestEnd) {
			newestEnd = b.end
		}
		ok = true
	}
	return oldest, newestEnd, ok
}

// each emits finalized buckets in order, skipping sealed segments whose
// coverage cannot intersect [from, to); zero bounds are unbounded.
func (c *compBuckets) each(from, to time.Time, emit func(bucket)) {
	for i := range c.segs {
		s := &c.segs[i]
		if !to.IsZero() && !s.firstStart().Before(to) {
			continue
		}
		if !from.IsZero() && !s.lastEnd().After(from) {
			continue
		}
		s.each(emit)
	}
	for _, b := range c.active {
		emit(b)
	}
}

// sampleTotal sums every finalized bucket's count without decoding any
// sealed block — the stats path runs under the shard lock.
func (c *compBuckets) sampleTotal() int64 {
	var n int64
	for i := range c.segs {
		n += c.segs[i].samples()
	}
	for _, b := range c.active {
		n += b.count
	}
	return n
}

func (c *compBuckets) compressedFootprint() (bytes, buckets int64) {
	for i := range c.segs {
		if c.segs[i].bks == nil {
			bytes += int64(c.segs[i].blk.size())
			buckets += int64(c.segs[i].blk.n)
		}
	}
	return bytes, buckets
}
