package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/series"
)

// TestConcurrentWritersAcrossShards drives parallel writers over many
// series with bounded retention — so compaction cascades are active the
// whole time — while readers hammer Query, Stats, Snapshot and
// SetNyquistRate. Run under -race (the CI race job does), this is the
// shard-locking contract test.
func TestConcurrentWritersAcrossShards(t *testing.T) {
	db := New(Config{Shards: 8, Retention: RetentionConfig{RawCapacity: 64, TierCapacity: 32, Tiers: 2, Fanout: 4}})
	const (
		writers = 8
		perID   = 500
	)
	ids := make([]string, writers)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev%02d/metric", i)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: range queries and operator reports racing the compaction
	// cascade.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[r%len(ids)]
				if res, err := db.Query(id, start, start.Add(perID*time.Second), 20); err == nil {
					if len(res.Points) > 20 {
						t.Errorf("budget exceeded: %d", len(res.Points))
						return
					}
				}
				_ = db.Stats()
				_ = db.Snapshot()
				db.SetNyquistRate(id, 0.05)
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perID; i++ {
				db.Append(ids[w], series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
			}
		}(w)
	}
	// Wait for writers (the first `writers` Adds complete when counter
	// drops to reader count); simpler: separate group.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Writers finish on their own; readers need the stop signal. Poll the
	// append counter instead of sleeping blindly.
	deadline := time.After(30 * time.Second)
	for {
		if db.Stats().Appends == int64(writers*perID) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("writers did not finish in time")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done

	st := db.Stats()
	if st.Series != writers {
		t.Fatalf("series = %d, want %d", st.Series, writers)
	}
	if st.Appends != int64(writers*perID) {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perID)
	}
	// Conservation: every append is still raw, in a bucket, or counted
	// dropped.
	var inTiers int64
	for _, s := range db.Snapshot() {
		for _, ts := range s.Tiers {
			inTiers += ts.Samples
		}
	}
	if got := int64(st.RawPoints) + inTiers + st.Dropped; got != st.Appends {
		t.Fatalf("conservation: raw %d + tiered %d + dropped %d = %d, want %d",
			st.RawPoints, inTiers, st.Dropped, got, st.Appends)
	}
}

// TestConcurrentSameSeries serializes correctly when every writer hits
// one series (single shard lock contention path).
func TestConcurrentSameSeries(t *testing.T) {
	db := New(Config{Shards: 4, Retention: RetentionConfig{RawCapacity: 128}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				db.Append("hot", series.Point{Time: start.Add(time.Duration(g*250+i) * time.Second), Value: 1})
			}
		}(g)
	}
	wg.Wait()
	if st := db.Stats(); st.Appends != 2000 {
		t.Fatalf("appends = %d, want 2000", st.Appends)
	}
}
