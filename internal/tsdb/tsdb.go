// Package tsdb is the storage leg of the monitoring pipeline: a sharded,
// concurrency-safe, in-memory time-series engine with Nyquist-aware
// multi-resolution retention.
//
// The paper's cost/quality sweet spot applies to storage as much as to
// polling: once a metric's Nyquist rate is known, retaining samples above
// it is pure waste, and retaining below it aliases. The engine encodes
// that directly:
//
//   - Series are spread over N independent shards keyed by an FNV-1a hash
//     of the series id, each with its own lock, so writers scale with
//     cores instead of serializing on one global mutex.
//
//   - Each series holds a raw ring buffer at the polled rate plus
//     downsampled retention tiers. The first tier's bucket width derives
//     from the series' estimated Nyquist rate (lossless at ≥ 2·f_max with
//     headroom); deeper tiers widen by a fixed fan-out and keep
//     min/max/mean summaries — progressively cheaper, progressively
//     coarser.
//
//   - A full raw ring never fails a write. The oldest point cascades into
//     the first tier's current bucket; a full tier cascades its oldest
//     bucket into the next; only the last tier forgets (and counts what it
//     forgot). Resource pressure degrades resolution, it does not stall
//     the pipeline.
//
// Range queries stitch the tiers intersecting the requested window —
// recent queries touch only the raw ring, deep-history queries read the
// coarse tiers — and thin the result to a point budget when asked.
// Snapshot and stats surfaces exist for operator reporting.
//
// For network-facing deployments the engine also ships a compressed
// block format (block.go): Gorilla-style delta-of-delta timestamps and
// XOR-chained values, round-trip exact for arbitrary float64 values and
// int64-nanosecond instants. RetentionConfig.CompressBlock switches the
// raw rings and the summary tiers onto sealed compressed blocks, which
// hold roughly an order of magnitude more points per byte on production
// telemetry (quantized, mostly idle, regularly polled) at the cost of
// block-granular eviction and decode-on-read for cold history. The
// BlockBuilder/Block surface is usable on its own for wire transfer or
// snapshot persistence.
package tsdb

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/series"
)

// ErrNoSeries is returned when querying an id that was never written.
var ErrNoSeries = errNoSeries

// Config parameterizes a DB.
type Config struct {
	// Shards is the number of independently locked shards; zero selects
	// 16. Negative values are treated as zero.
	Shards int
	// Retention is the per-series retention policy.
	Retention RetentionConfig
	// StrictAppend, when true, makes Append fail instead of tolerate:
	// a point older than the series' newest accepted sample returns
	// ErrOutOfOrder, and a timestamp outside the int64-nanosecond range
	// returns ErrTimeRange. This is the serving-path (and write-ahead
	// log) contract — "accepted" must mean "landed, in order, and
	// replayable" — whereas the default lenient mode keeps the library
	// behavior of absorbing whatever a poller hands it.
	StrictAppend bool
	// CacheBytes, when positive, bounds a decoded-block LRU split evenly
	// across the shards: queries over sealed compressed history serve
	// repeat decodes from memory instead of re-running the codec. Only
	// meaningful with Retention.CompressBlock > 0 (uncompressed stores
	// never decode); 0 disables the cache.
	CacheBytes int64
}

// RetentionConfig is the per-series multi-resolution retention policy.
type RetentionConfig struct {
	// RawCapacity bounds the raw (full-resolution) ring buffer of each
	// series in points; zero means unbounded, which disables compaction
	// entirely (the regeneration-figures configuration).
	RawCapacity int
	// TierCapacity bounds each downsampled tier in buckets; zero selects
	// RawCapacity.
	TierCapacity int
	// Tiers is the number of downsampled tiers below the raw ring; zero
	// selects 2, negative selects none (a plain bounded ring that simply
	// forgets evicted points, the seed-style retention). Tiers only
	// matter when RawCapacity bounds the ring.
	Tiers int
	// Fanout is the integer bucket-width multiplier between consecutive
	// tiers; zero selects 4. Integer fan-outs keep the tier grids nested.
	Fanout int
	// Headroom multiplies the estimated Nyquist rate when sizing the
	// first (lossless) tier's bucket rate. Values ≤ 1 select 1.2,
	// matching the rest of the pipeline: bucketing exactly at the
	// critical rate leaves the top component ambiguous.
	Headroom float64
	// CompressBlock, when positive, stores raw samples and finalized
	// tier buckets as sealed Gorilla-compressed blocks of (up to) this
	// many entries instead of uncompressed rings — the serving
	// configuration, holding ~8-25x more points per byte on telemetry
	// workloads. Eviction becomes block-granular: a full store sheds its
	// oldest sealed block into the next tier, so the retained size
	// breathes between capacity−block and capacity. Values in [1, 4)
	// select 4; 0 (the default) keeps uncompressed rings.
	CompressBlock int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Retention.RawCapacity < 0 {
		c.Retention.RawCapacity = 0
	}
	if c.Retention.TierCapacity <= 0 {
		c.Retention.TierCapacity = c.Retention.RawCapacity
	}
	if c.Retention.Tiers == 0 {
		c.Retention.Tiers = 2
	}
	if c.Retention.Tiers < 0 {
		c.Retention.Tiers = 0
	}
	if c.Retention.Fanout <= 1 {
		c.Retention.Fanout = 4
	}
	if c.Retention.Headroom <= 1 {
		c.Retention.Headroom = 1.2
	}
	if c.Retention.CompressBlock < 0 {
		c.Retention.CompressBlock = 0
	}
	if c.Retention.CompressBlock > 0 && c.Retention.CompressBlock < 4 {
		c.Retention.CompressBlock = 4
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	return c
}

// DB is a sharded in-memory time-series database. All methods are safe
// for concurrent use; writers to different shards proceed in parallel.
type DB struct {
	cfg    Config
	shards []shard
	// sealHook, when set, observes every raw block the moment it is
	// sealed (see OnSeal).
	sealHook atomic.Pointer[SealHook]
	// sealedBlocks counts raw blocks sealed over the DB's lifetime
	// (append-filled and force-sealed alike) — the write-side block
	// cadence the observability layer watches.
	sealedBlocks atomic.Int64
}

// SealHook observes one sealed raw block. Hooks run under the owning
// shard's lock so sealed blocks reach the hook in per-series seal order
// (the property a write-ahead log needs); they must not call back into
// the DB and should only hand the block off (e.g. buffer its bytes).
type SealHook func(id string, blk Block)

// OnSeal installs fn as the seal hook: every raw block sealed from this
// point on — by appends filling a block, or by SealAll — is passed to
// fn. Only compressed stores (RetentionConfig.CompressBlock > 0) seal
// blocks; the hook never fires on uncompressed rings. A nil fn removes
// the hook.
func (db *DB) OnSeal(fn SealHook) {
	if fn == nil {
		db.sealHook.Store(nil)
		return
	}
	db.sealHook.Store(&fn)
}

func (db *DB) hook() SealHook {
	if p := db.sealHook.Load(); p != nil {
		return *p
	}
	return nil
}

// Strict reports whether the DB enforces StrictAppend ordering.
func (db *DB) Strict() bool { return db.cfg.StrictAppend }

type shard struct {
	// mu guards series membership and everything a memSeries holds.
	// It is the ingest hot path's contention point: code holding it
	// must not block, do I/O, or re-enter the DB (lockdiscipline).
	//
	//nyquist:hotlock
	mu     sync.RWMutex
	series map[string]*memSeries
	// cache is the shard's decoded-block LRU (nil = disabled). It has its
	// own lock; the only ordering is shard lock → cache lock.
	cache *blockCache
}

// New returns an empty DB. Zero-value config fields select defaults (16
// shards, unbounded raw retention).
func New(cfg Config) *DB {
	c := cfg.withDefaults()
	db := &DB{cfg: c, shards: make([]shard, c.Shards)}
	per := int64(0)
	if c.CacheBytes > 0 && c.Retention.CompressBlock > 0 {
		per = c.CacheBytes / int64(c.Shards)
	}
	for i := range db.shards {
		db.shards[i].series = make(map[string]*memSeries)
		if per > 0 {
			db.shards[i].cache = newBlockCache(per)
		}
	}
	return db
}

// Shards returns the configured shard count.
func (db *DB) Shards() int { return len(db.shards) }

// Retention returns the configured retention policy.
func (db *DB) Retention() RetentionConfig { return db.cfg.Retention }

// fnv32a is the FNV-1a hash of s, inlined to keep the append hot path
// allocation-free.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (db *DB) shardFor(id string) *shard {
	return &db.shards[fnv32a(id)%uint32(len(db.shards))]
}

func (sh *shard) getOrCreate(id string, rc *RetentionConfig) *memSeries {
	m := sh.series[id]
	if m == nil {
		//nyquist:allow-alloc first sight of a series: creation is the cold branch, the map hit is the hot one
		m = newMemSeries(rc)
		sh.series[id] = m
	}
	return m
}

// Append adds one point to the series with the given id, creating the
// series on first write. Appends never fail for capacity: a full raw ring
// compacts its oldest point into the retention tiers instead. Under
// StrictAppend, out-of-order or unrepresentable timestamps are rejected
// (ErrOutOfOrder / ErrTimeRange) and the point does not land; the
// default lenient mode always returns nil.
func (db *DB) Append(id string, p series.Point) error {
	sh := db.shardFor(id)
	sh.mu.Lock()
	m := sh.getOrCreate(id, &db.cfg.Retention)
	err := m.append(p, &db.cfg.Retention, db.cfg.StrictAppend)
	db.drainSealed(sh, id, m)
	sh.mu.Unlock()
	return err
}

// AppendUniform stores every sample of a uniform trace under id, taking
// the shard lock once for the whole block. Under StrictAppend the first
// rejected sample stops the append and is returned; earlier samples have
// already landed.
func (db *DB) AppendUniform(id string, u *series.Uniform) error {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.getOrCreate(id, &db.cfg.Retention)
	defer db.drainSealed(sh, id, m)
	for i, v := range u.Values {
		if err := m.append(series.Point{Time: u.TimeAt(i), Value: v}, &db.cfg.Retention, db.cfg.StrictAppend); err != nil {
			return err
		}
	}
	return nil
}

// drainSealed hands any freshly sealed raw blocks to the seal hook and
// invalidates decoded-block cache entries for segments that left
// retention. Caller holds the shard lock, which is what serializes hook
// calls per series and orders invalidations after the eviction they
// reflect.
func (db *DB) drainSealed(sh *shard, id string, m *memSeries) {
	if m.craw == nil {
		return
	}
	if sh.cache != nil {
		for _, seq := range m.craw.takeEvictedSeqs() {
			sh.cache.invalidate(seq)
		}
	}
	sealed := m.craw.takeSealed()
	if len(sealed) == 0 {
		return
	}
	db.sealedBlocks.Add(int64(len(sealed)))
	if h := db.hook(); h != nil {
		for _, blk := range sealed {
			h(id, blk)
		}
	}
}

// SealAll force-seals every series' active compressed run, firing the
// seal hook for each block sealed. This is the graceful-shutdown path: a
// write-ahead log only sees sealed blocks, so sealing the active tails
// makes them durable before exit. Uncompressed stores have nothing to
// seal. Returns the number of blocks sealed.
func (db *DB) SealAll() int {
	total := 0
	h := db.hook()
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for id, m := range sh.series {
			if m.craw == nil {
				continue
			}
			m.craw.seal()
			for _, blk := range m.craw.takeSealed() {
				total++
				db.sealedBlocks.Add(1)
				if h != nil {
					h(id, blk)
				}
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// SetNyquistRate records the series' estimated Nyquist rate (2·f_max, in
// hertz) and re-derives its tier bucket widths: the first tier becomes
// lossless at Headroom×rate, deeper tiers widen by the fan-out. This is
// the estimate→retain loop: live estimators feed their current estimate
// here and retention follows the signal. Non-positive or non-finite rates
// are ignored. Existing buckets keep their widths; only future buckets
// use the new grid.
func (db *DB) SetNyquistRate(id string, rate float64) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return
	}
	sh := db.shardFor(id)
	sh.mu.Lock()
	m := sh.getOrCreate(id, &db.cfg.Retention)
	m.nyquist = rate
	m.retune(&db.cfg.Retention)
	sh.mu.Unlock()
}

// NyquistRate returns the series' recorded Nyquist rate estimate in
// hertz, or 0 when none was set.
func (db *DB) NyquistRate(id string) float64 {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if m := sh.series[id]; m != nil {
		return m.nyquist
	}
	return 0
}

// Query returns the retained samples for id within [from, to), stitched
// across tiers: coarse (older) tiers first, the raw ring last, sorted by
// time. A zero from or to leaves that side unbounded. Compacted buckets
// are returned when their own [start, end) coverage overlaps the window.
// Only tiers (and the raw ring) whose retained band intersects the
// window are read, so recent queries touch just the raw ring. When
// maxPoints > 0 and the stitched result is larger, it is stride-thinned
// to exactly maxPoints (Result.Thinned reports the degradation).
func (db *DB) Query(id string, from, to time.Time, maxPoints int) (*QueryResult, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.series[id]
	if m == nil {
		return nil, ErrNoSeries
	}
	return m.query(id, from, to, maxPoints, sh.cache), nil
}

// Full returns everything retained for id across all tiers.
func (db *DB) Full(id string) (*QueryResult, error) {
	return db.Query(id, time.Time{}, time.Time{}, 0)
}

// IDs returns the stored series ids, sorted.
func (db *DB) IDs() []string {
	var out []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for id := range sh.series {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Points returns the total number of retained points (raw samples plus
// finalized and in-progress tier buckets) across all series.
func (db *DB) Points() int {
	total := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, m := range sh.series {
			total += m.retained()
		}
		sh.mu.RUnlock()
	}
	return total
}

// SealedBlocks returns the number of raw compressed blocks sealed over
// the DB's lifetime (0 on uncompressed stores).
func (db *DB) SealedBlocks() int64 { return db.sealedBlocks.Load() }

// Stats aggregates the whole database for operator reporting.
func (db *DB) Stats() Stats {
	st := Stats{Shards: len(db.shards), SeriesPerShard: make([]int, len(db.shards)), SealedBlocks: db.sealedBlocks.Load()}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		st.SeriesPerShard[i] = len(sh.series)
		st.Series += len(sh.series)
		for _, m := range sh.series {
			st.RawPoints += m.rawSize()
			st.Buckets += m.buckets()
			st.Appends += m.appends
			st.Compacted += m.compacted
			st.Dropped += m.dropped
			b, n := m.compressedFootprint()
			st.CompressedBytes += b
			st.CompressedEntries += n
		}
		sh.mu.RUnlock()
		if c := sh.cache; c != nil {
			bytes, entries := c.snapshot()
			st.Cache.MaxBytes += c.maxBytes
			st.Cache.Bytes += bytes
			st.Cache.Entries += entries
			st.Cache.Hits += c.hits.Load()
			st.Cache.Misses += c.misses.Load()
			st.Cache.Evictions += c.evictions.Load()
			st.Cache.Invalidations += c.invalidations.Load()
		}
	}
	return st
}

// SeriesStats reports one series' retention state.
func (db *DB) SeriesStats(id string) (*SeriesStats, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.series[id]
	if m == nil {
		return nil, ErrNoSeries
	}
	st := m.stats(id)
	return &st, nil
}

// Snapshot reports every series' retention state, sorted by id.
func (db *DB) Snapshot() []SeriesStats {
	var out []SeriesStats
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for id, m := range sh.series {
			out = append(out, m.stats(id))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Stats is the database-wide operator report.
type Stats struct {
	// Shards is the shard count.
	Shards int
	// Series is the number of stored series.
	Series int
	// RawPoints is the number of full-resolution samples retained.
	RawPoints int
	// Buckets is the number of retained tier buckets (including the
	// in-progress bucket of each tier).
	Buckets int
	// Appends counts every point ever written.
	Appends int64
	// Compacted counts raw samples that cascaded into the tiers.
	Compacted int64
	// Dropped counts raw samples represented by buckets aged out of the
	// last tier — the only data the engine ever forgets.
	Dropped int64
	// CompressedBytes is the total sealed Gorilla-block payload across
	// raw stores and tiers (0 when CompressBlock is off).
	CompressedBytes int64
	// CompressedEntries is the number of points and buckets those sealed
	// blocks hold; CompressedBytes/CompressedEntries is the achieved
	// bytes-per-point figure.
	CompressedEntries int64
	// SealedBlocks counts raw blocks sealed over the DB's lifetime
	// (append-filled plus force-sealed; 0 on uncompressed stores).
	SealedBlocks int64
	// Cache aggregates the per-shard decoded-block LRUs (zero-valued when
	// the cache is disabled — Cache.MaxBytes == 0 distinguishes the two).
	Cache CacheStats
	// SeriesPerShard is the series count per shard (load-balance view).
	SeriesPerShard []int
}

// Retained returns the total points currently held (raw + buckets).
func (s Stats) Retained() int { return s.RawPoints + s.Buckets }

// SeriesStats is one series' retention state.
type SeriesStats struct {
	// ID is the series id.
	ID string
	// NyquistRate is the recorded estimate in hertz (0 = none).
	NyquistRate float64
	// Appends, Compacted and Dropped mirror the Stats counters for this
	// series alone.
	Appends, Compacted, Dropped int64
	// CompressedBytes is this series' sealed compressed payload (0 when
	// CompressBlock is off).
	CompressedBytes int64
	// RawPoints is the raw ring's current size.
	RawPoints int
	// RawOldest and RawNewest bound the raw ring's retained window (zero
	// when empty).
	RawOldest, RawNewest time.Time
	// Tiers describes each downsampled tier, finest first.
	Tiers []TierStats
}

// TierStats is one downsampled tier's state.
type TierStats struct {
	// Width is the tier's current bucket width.
	Width time.Duration
	// Buckets is the number of retained buckets (including in-progress).
	Buckets int
	// Samples is the number of raw samples those buckets represent.
	Samples int64
	// Oldest and Newest bound the tier's retained window: the oldest
	// bucket's start and the newest bucket's coverage end (zero when
	// empty).
	Oldest, Newest time.Time
}
