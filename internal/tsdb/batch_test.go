package tsdb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/series"
)

// TestAppendBatchMatchesSequential is the order-preservation property
// test for the shard-affinity batched append: random multi-series
// batches with interleaved late points, applied to one DB through
// AppendBatch and to a twin through per-point Append, must produce
// identical per-point verdicts, identical per-series stored content (so
// stored order per series equals the arrival order of its accepted
// points), and identical engine stats — the reject count the serving
// layer reports is exactly the reference store's. The counting-sort
// regrouping inside AppendBatch is only allowed to change which lock is
// held when, never what lands.
func TestAppendBatchMatchesSequential(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		cfg := Config{
			Shards:       1 + rng.Intn(8),
			StrictAppend: trial%2 == 0,
			Retention: RetentionConfig{
				RawCapacity:   64,
				TierCapacity:  32,
				Tiers:         2,
				CompressBlock: 16,
			},
		}
		dbBatch, dbRef := New(cfg), New(cfg)
		nSeries := 1 + rng.Intn(6)
		clocks := make([]time.Time, nSeries)
		for i := range clocks {
			clocks[i] = start
		}
		total := 200 + rng.Intn(600)
		var chunk []BatchPoint
		flush := func() {
			if len(chunk) == 0 {
				return
			}
			accepted := dbBatch.AppendBatch(chunk)
			wantAccepted := 0
			for i := range chunk {
				refErr := dbRef.Append(chunk[i].ID, chunk[i].P)
				if refErr == nil {
					wantAccepted++
				}
				bErr := chunk[i].Err
				switch {
				case (bErr == nil) != (refErr == nil):
					t.Fatalf("trial %d point %d (%s@%v): batch err %v, sequential err %v",
						trial, i, chunk[i].ID, chunk[i].P.Time, bErr, refErr)
				case bErr != nil && bErr.Error() != refErr.Error():
					t.Fatalf("trial %d point %d: batch reason %q, sequential reason %q",
						trial, i, bErr, refErr)
				}
			}
			if accepted != wantAccepted {
				t.Fatalf("trial %d: AppendBatch accepted %d, sequential accepted %d", trial, accepted, wantAccepted)
			}
			chunk = chunk[:0]
		}
		for i := 0; i < total; i++ {
			sid := rng.Intn(nSeries)
			var ts time.Time
			if rng.Intn(6) == 0 {
				// A late point: behind this series' clock, so under
				// StrictAppend it must draw the same rejection from both
				// paths; lenient stores must land it identically too.
				ts = clocks[sid].Add(-time.Duration(1+rng.Intn(90)) * time.Second)
			} else {
				clocks[sid] = clocks[sid].Add(time.Duration(1+rng.Intn(30)) * time.Second)
				ts = clocks[sid]
			}
			chunk = append(chunk, BatchPoint{
				ID: fmt.Sprintf("s%02d", sid),
				P:  series.Point{Time: ts, Value: rng.NormFloat64()},
			})
			// Random chunk boundaries: regrouping must hold per-series
			// order within every split of the stream, not just one.
			if rng.Intn(40) == 0 {
				flush()
			}
		}
		flush()

		// Stats before any read path runs (queries warm the block cache).
		sb, sr := dbBatch.Stats(), dbRef.Stats()
		sb.SeriesPerShard, sr.SeriesPerShard = nil, nil
		if fmt.Sprintf("%+v", sb) != fmt.Sprintf("%+v", sr) {
			t.Fatalf("trial %d: stats diverge\nbatch:      %+v\nsequential: %+v", trial, sb, sr)
		}
		for _, id := range dbRef.IDs() {
			fb, err := dbBatch.Full(id)
			if err != nil {
				t.Fatalf("trial %d: batch Full(%s): %v", trial, id, err)
			}
			fr, err := dbRef.Full(id)
			if err != nil {
				t.Fatalf("trial %d: sequential Full(%s): %v", trial, id, err)
			}
			if len(fb.Points) != len(fr.Points) {
				t.Fatalf("trial %d series %s: batch stored %d points, sequential %d",
					trial, id, len(fb.Points), len(fr.Points))
			}
			for i := range fb.Points {
				if !fb.Points[i].Time.Equal(fr.Points[i].Time) || fb.Points[i].Value != fr.Points[i].Value {
					t.Fatalf("trial %d series %s point %d: batch %v=%v, sequential %v=%v",
						trial, id, i,
						fb.Points[i].Time, fb.Points[i].Value,
						fr.Points[i].Time, fr.Points[i].Value)
				}
			}
		}
	}
}

// TestAppendBatchSealsThroughHook verifies the batched path drives the
// same WAL seal hook as per-point appends: sealed blocks surface in
// per-series order with identical payloads.
func TestAppendBatchSealsThroughHook(t *testing.T) {
	type sealed struct {
		id  string
		blk Block
	}
	collect := func(db *DB) *[]sealed {
		out := &[]sealed{}
		db.OnSeal(func(id string, blk Block) {
			*out = append(*out, sealed{id, blk})
		})
		return out
	}
	cfg := Config{Shards: 4, StrictAppend: true,
		Retention: RetentionConfig{RawCapacity: 256, TierCapacity: 64, Tiers: 1, CompressBlock: 8}}
	dbBatch, dbRef := New(cfg), New(cfg)
	gotB, gotR := collect(dbBatch), collect(dbRef)

	var chunk []BatchPoint
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("seal%d", i%3)
		p := series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)}
		chunk = append(chunk, BatchPoint{ID: id, P: p})
	}
	dbBatch.AppendBatch(chunk)
	for i := range chunk {
		if err := dbRef.Append(chunk[i].ID, chunk[i].P); err != nil {
			t.Fatal(err)
		}
	}
	// The batch path may order series within a shard differently than the
	// arrival interleaving, but per series the sealed sequence must be
	// identical.
	perSeries := func(got []sealed) map[string][]Block {
		m := map[string][]Block{}
		for _, s := range got {
			m[s.id] = append(m[s.id], s.blk)
		}
		return m
	}
	mb, mr := perSeries(*gotB), perSeries(*gotR)
	if len(*gotB) != len(*gotR) {
		t.Fatalf("batch sealed %d blocks, sequential %d", len(*gotB), len(*gotR))
	}
	for id, blksR := range mr {
		blksB := mb[id]
		if len(blksB) != len(blksR) {
			t.Fatalf("series %s: batch sealed %d blocks, sequential %d", id, len(blksB), len(blksR))
		}
		for i := range blksR {
			if string(blksB[i].Data()) != string(blksR[i].Data()) || blksB[i].Len() != blksR[i].Len() {
				t.Fatalf("series %s block %d: payload diverges", id, i)
			}
		}
	}
}
