package tsdb

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/series"
)

// TestCompressedStoreEquivalence pins the central compression contract:
// with unbounded retention (no eviction on either side), a compressed
// store returns exactly the points an uncompressed store does — same
// instants, bit-identical values — for monotonic and for out-of-order
// append streams.
func TestCompressedStoreEquivalence(t *testing.T) {
	for name, outOfOrder := range map[string]bool{"monotonic": false, "out-of-order": true} {
		t.Run(name, func(t *testing.T) {
			plain := New(Config{Shards: 1})
			comp := New(Config{Shards: 1, Retention: RetentionConfig{CompressBlock: 32}})
			const id = "host/metric"
			pts := diurnalWorkload(500)
			if outOfOrder {
				// Swap pairs so some appends go backwards in time.
				for i := 0; i+1 < len(pts); i += 5 {
					pts[i], pts[i+1] = pts[i+1], pts[i]
				}
			}
			for _, p := range pts {
				plain.Append(id, p)
				comp.Append(id, p)
			}
			want, err := plain.Full(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := comp.Full(id)
			if err != nil {
				t.Fatal(err)
			}
			// Both engines order by time; the uncompressed ring keeps
			// append order inside equal-time runs, the compressed store
			// sorts stably — the point multisets must still match.
			if len(got.Points) != len(want.Points) {
				t.Fatalf("compressed store returned %d points, uncompressed %d", len(got.Points), len(want.Points))
			}
			for i := range want.Points {
				if !got.Points[i].Time.Equal(want.Points[i].Time) {
					t.Fatalf("point %d: time %v vs %v", i, got.Points[i].Time, want.Points[i].Time)
				}
				if math.Float64bits(got.Points[i].Value) != math.Float64bits(want.Points[i].Value) {
					t.Fatalf("point %d: value %v vs %v", i, got.Points[i].Value, want.Points[i].Value)
				}
			}
		})
	}
}

// TestCompressedCascade drives a small bounded compressed store far past
// its capacity and checks the retention invariants survive
// block-granular eviction: no write ever fails, every append is either
// still raw or was compacted into the tiers, the raw store breathes
// within [capacity−block, capacity], and mid-history queries still
// answer from the tiers.
func TestCompressedCascade(t *testing.T) {
	db := New(Config{
		Shards: 1,
		Retention: RetentionConfig{
			RawCapacity: 64, TierCapacity: 16, Tiers: 2, Fanout: 4, CompressBlock: 16,
		},
	})
	const id = "host/metric"
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	const n = 5000
	for i := 0; i < n; i++ {
		db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 97)})
		if st, _ := db.SeriesStats(id); st.RawPoints > 64 {
			t.Fatalf("after %d appends: raw store holds %d points, capacity 64", i+1, st.RawPoints)
		}
	}
	st, err := db.SeriesStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Appends != n {
		t.Fatalf("appends %d, want %d", st.Appends, n)
	}
	if got := st.Compacted + int64(st.RawPoints); got != n {
		t.Fatalf("compacted %d + raw %d = %d, want every append accounted (%d)", st.Compacted, st.RawPoints, got, n)
	}
	if st.RawPoints < 64-16 {
		t.Fatalf("raw store holds %d points, want at least capacity-block (%d)", st.RawPoints, 64-16)
	}
	if st.CompressedBytes == 0 {
		t.Fatal("compressed store reports zero sealed bytes")
	}
	// A window just behind the raw store's retained band must answer
	// from the tiers alone (these tiny tiers only reach ~80 s back;
	// anything older was legitimately forgotten by the last tier).
	res, err := db.Query(id, st.RawOldest.Add(-30*time.Second), st.RawOldest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("behind-raw query returned nothing: the cascade lost the tiers")
	}
	for _, ts := range res.Tiers {
		if ts.Tier == 0 {
			t.Fatalf("behind-raw query read the raw store: %+v", res.Tiers)
		}
	}
}

// TestCompressedFootprint pins the reason the serving store compresses
// at all: on the canonical diurnal workload the sealed raw payload costs
// at most 2 bytes per point, against 32 bytes for a []Point slice.
func TestCompressedFootprint(t *testing.T) {
	db := New(Config{Shards: 1, Retention: RetentionConfig{CompressBlock: 128}})
	const id = "host/metric"
	for _, p := range diurnalWorkload(4096) {
		db.Append(id, p)
	}
	st := db.Stats()
	if st.CompressedEntries == 0 {
		t.Fatal("no sealed compressed entries")
	}
	bpp := float64(st.CompressedBytes) / float64(st.CompressedEntries)
	t.Logf("store-level footprint: %d entries, %d bytes, %.3f bytes/point",
		st.CompressedEntries, st.CompressedBytes, bpp)
	if bpp > 2 {
		t.Fatalf("compressed store costs %.3f bytes/point on the diurnal workload, want <= 2", bpp)
	}
}

// TestCompressedRetune checks the estimate→retain loop still works on a
// compressed store: a SetNyquistRate retune changes future tier widths
// without corrupting buckets sealed under the old grid.
func TestCompressedRetune(t *testing.T) {
	db := New(Config{
		Shards:    1,
		Retention: RetentionConfig{RawCapacity: 32, TierCapacity: 64, Tiers: 2, Fanout: 4, CompressBlock: 8},
	})
	const id = "host/metric"
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	i := 0
	appendN := func(n int) {
		for k := 0; k < n; k++ {
			db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
			i++
		}
	}
	appendN(500)
	db.SetNyquistRate(id, 0.01) // first tier ~83 s buckets
	appendN(500)
	db.SetNyquistRate(id, 0.1) // retune to ~8.3 s buckets
	appendN(500)
	res, err := db.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	for k, p := range res.Points {
		if k > 0 && p.Time.Before(prev) {
			t.Fatalf("point %d at %v precedes %v after retune", k, p.Time, prev)
		}
		prev = p.Time
	}
	for _, a := range res.Aggregates {
		if a.Min > a.Max || a.Mean < a.Min-1e-9 || a.Mean > a.Max+1e-9 {
			t.Fatalf("bucket summary inconsistent after retune: %+v", a)
		}
	}
}

// TestCompressedConcurrent runs writers against query/stats readers on a
// compressed store — under -race this is the decode-under-RLock
// contract: block iteration must not share decode state.
func TestCompressedConcurrent(t *testing.T) {
	db := New(Config{
		Shards:    4,
		Retention: RetentionConfig{RawCapacity: 64, TierCapacity: 32, Tiers: 2, Fanout: 4, CompressBlock: 16},
	})
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev%02d/metric", i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					if res, err := db.Query(id, start, start.Add(time.Hour), 50); err == nil && len(res.Points) > 50 {
						t.Errorf("budget exceeded: %d", len(res.Points))
						return
					}
				}
				_ = db.Stats()
				_ = db.Snapshot()
			}
		}(r)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				db.Append(ids[w], series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
				if i%500 == 0 {
					db.SetNyquistRate(ids[w], 0.05)
				}
			}
		}(w)
	}
	// Writers finish, then readers are released.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
}
