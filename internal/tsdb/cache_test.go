package tsdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/series"
)

// fillSealed appends n one-second-spaced points to id so that most of
// them land in sealed compressed blocks.
func fillSealed(db *DB, id string, n int) {
	for i := 0; i < n; i++ {
		db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 251)})
	}
}

// TestCacheServesIdenticalResults pins the cache's core contract: a
// cached store answers every window bit-identically to an uncached one,
// on the first read (miss + populate) and the second (hit).
func TestCacheServesIdenticalResults(t *testing.T) {
	ret := RetentionConfig{RawCapacity: 4096, TierCapacity: 512, Tiers: 2, CompressBlock: 64}
	plain := New(Config{Shards: 4, Retention: ret})
	cached := New(Config{Shards: 4, Retention: ret, CacheBytes: 1 << 20})
	const id = "cache/series"
	const n = 2000
	fillSealed(plain, id, n)
	fillSealed(cached, id, n)

	windows := []struct{ from, to time.Time }{
		{time.Time{}, time.Time{}},
		{start, start.Add(500 * time.Second)},
		{start.Add(300 * time.Second), start.Add(1700 * time.Second)},
		{start.Add((n - 100) * time.Second), start.Add(n * time.Second)},
	}
	for pass := 0; pass < 2; pass++ {
		for wi, w := range windows {
			want, err := plain.Query(id, w.from, w.to, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cached.Query(id, w.from, w.to, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Points) != len(want.Points) {
				t.Fatalf("pass %d window %d: cached %d points, uncached %d", pass, wi, len(got.Points), len(want.Points))
			}
			for i := range want.Points {
				if !got.Points[i].Time.Equal(want.Points[i].Time) || got.Points[i].Value != want.Points[i].Value {
					t.Fatalf("pass %d window %d point %d: cached %v=%v, uncached %v=%v",
						pass, wi, i, got.Points[i].Time, got.Points[i].Value, want.Points[i].Time, want.Points[i].Value)
				}
			}
		}
	}
	cs := cached.Stats().Cache
	if cs.Hits == 0 {
		t.Fatal("second pass over identical windows produced no cache hits")
	}
	if cs.Misses == 0 {
		t.Fatal("first pass produced no cache misses — nothing was actually cached")
	}
	if cs.Bytes <= 0 || cs.Entries <= 0 {
		t.Fatalf("cache occupancy bytes=%d entries=%d after hits", cs.Bytes, cs.Entries)
	}
	if ps := plain.Stats().Cache; ps.MaxBytes != 0 || ps.Hits != 0 || ps.Misses != 0 {
		t.Fatalf("uncached store reports cache activity: %+v", ps)
	}
}

// TestCacheHitMissAccounting pins the counter semantics on a single
// sealed block: first read misses and populates, repeats hit.
func TestCacheHitMissAccounting(t *testing.T) {
	db := New(Config{Shards: 1, CacheBytes: 1 << 20,
		Retention: RetentionConfig{RawCapacity: 4096, CompressBlock: 64}})
	const id = "acct/series"
	fillSealed(db, id, 64) // exactly one sealed block, empty active run
	if got := db.SealedBlocks(); got != 1 {
		t.Fatalf("sealed %d blocks, want 1", got)
	}
	if _, err := db.Query(id, time.Time{}, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	cs := db.Stats().Cache
	if cs.Misses != 1 || cs.Hits != 0 || cs.Entries != 1 {
		t.Fatalf("after first read: hits=%d misses=%d entries=%d, want 0/1/1", cs.Hits, cs.Misses, cs.Entries)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Query(id, time.Time{}, time.Time{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	cs = db.Stats().Cache
	if cs.Misses != 1 || cs.Hits != 5 {
		t.Fatalf("after five repeats: hits=%d misses=%d, want 5/1", cs.Hits, cs.Misses)
	}
}

// TestCacheInvalidatedOnRetentionEviction pins the staleness contract:
// when a sealed block ages out of the raw store, its cache entry dies
// with it, and subsequent queries never see evicted data resurrected.
func TestCacheInvalidatedOnRetentionEviction(t *testing.T) {
	// Tiny store: 2-block capacity with 4-point blocks, no tiers, so
	// appends beyond 8 points evict whole sealed blocks.
	db := New(Config{Shards: 1, CacheBytes: 1 << 20,
		Retention: RetentionConfig{RawCapacity: 8, Tiers: -1, CompressBlock: 4}})
	const id = "evict/series"
	fillSealed(db, id, 8)
	if _, err := db.Query(id, time.Time{}, time.Time{}, 0); err != nil {
		t.Fatal(err) // populate the cache with both sealed blocks
	}
	if cs := db.Stats().Cache; cs.Entries == 0 {
		t.Fatal("cache empty after a full-window read over sealed blocks")
	}
	// Push enough to evict the oldest block(s) from retention.
	for i := 8; i < 16; i++ {
		db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	cs := db.Stats().Cache
	if cs.Invalidations == 0 {
		t.Fatalf("retention evicted sealed blocks but the cache recorded no invalidations: %+v", cs)
	}
	// The surviving window must reflect current retention, not cached
	// history: nothing older than the store's own oldest bound.
	res, err := db.Query(id, time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Time.Before(start.Add(8 * time.Second)) {
			t.Fatalf("query resurrected evicted point at %v", p.Time)
		}
	}
}

// TestCacheRespectsByteBudget pins the bound: a cache sized well below
// the working set holds at most its budget and evicts by LRU.
func TestCacheRespectsByteBudget(t *testing.T) {
	// Each 64-point block costs 96 + 32*64 = 2144 bytes; budget two-ish.
	db := New(Config{Shards: 1, CacheBytes: 5000,
		Retention: RetentionConfig{RawCapacity: 1 << 20, CompressBlock: 64}})
	const id = "budget/series"
	fillSealed(db, id, 64*8)
	if _, err := db.Query(id, time.Time{}, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	cs := db.Stats().Cache
	if cs.Bytes > cs.MaxBytes {
		t.Fatalf("cache occupancy %d over the %d budget", cs.Bytes, cs.MaxBytes)
	}
	if cs.Entries > 2 {
		t.Fatalf("cache holds %d entries, budget fits at most 2", cs.Entries)
	}
	if cs.Evictions == 0 {
		t.Fatal("working set exceeded the budget but nothing was LRU-evicted")
	}
}

// TestCacheDisabledWithoutCompression pins the config interaction: a
// CacheBytes budget on an uncompressed store is ignored (nothing to
// decode, nothing to cache).
func TestCacheDisabledWithoutCompression(t *testing.T) {
	db := New(Config{Shards: 1, CacheBytes: 1 << 20,
		Retention: RetentionConfig{RawCapacity: 1024}})
	const id = "nocomp/series"
	fillSealed(db, id, 512)
	if _, err := db.Query(id, time.Time{}, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	if cs := db.Stats().Cache; cs.MaxBytes != 0 || cs.Entries != 0 {
		t.Fatalf("uncompressed store built a cache: %+v", cs)
	}
}

// TestQueryMatch pins the fan-in semantics: prefix and glob matching,
// id-sorted results, shared budget split, deterministic truncation, and
// the zero-match empty (not error) answer.
func TestQueryMatch(t *testing.T) {
	db := New(Config{Shards: 4, Retention: RetentionConfig{RawCapacity: 1024, CompressBlock: 16}})
	ids := []string{
		"dc1/rack1/dev1", "dc1/rack1/dev2", "dc1/rack2/dev1",
		"dc2/rack1/dev1", "other/series",
	}
	const n = 100
	for _, id := range ids {
		fillSealed(db, id, n)
	}

	t.Run("prefix", func(t *testing.T) {
		res := db.QueryMatch("dc1/", time.Time{}, time.Time{}, 0, 0)
		if res.Matches != 3 || len(res.Results) != 3 || res.Truncated {
			t.Fatalf("matches=%d results=%d truncated=%v, want 3/3/false", res.Matches, len(res.Results), res.Truncated)
		}
		want := []string{"dc1/rack1/dev1", "dc1/rack1/dev2", "dc1/rack2/dev1"}
		for i, r := range res.Results {
			if r.ID != want[i] {
				t.Fatalf("result %d is %q, want %q (sorted)", i, r.ID, want[i])
			}
			if len(r.Points) != n {
				t.Fatalf("result %q has %d points, want %d", r.ID, len(r.Points), n)
			}
		}
	})
	t.Run("glob", func(t *testing.T) {
		res := db.QueryMatch("dc?/rack1/*", time.Time{}, time.Time{}, 0, 0)
		if res.Matches != 3 {
			t.Fatalf("glob matched %d, want 3", res.Matches)
		}
		res = db.QueryMatch("*dev1", time.Time{}, time.Time{}, 0, 0)
		if res.Matches != 3 {
			t.Fatalf("suffix glob matched %d, want 3", res.Matches)
		}
		res = db.QueryMatch("*", time.Time{}, time.Time{}, 0, 0)
		if res.Matches != len(ids) {
			t.Fatalf("* matched %d, want %d", res.Matches, len(ids))
		}
	})
	t.Run("budget-split", func(t *testing.T) {
		res := db.QueryMatch("dc1/", time.Time{}, time.Time{}, 30, 0)
		for _, r := range res.Results {
			if len(r.Points) > 10 {
				t.Fatalf("series %q got %d points of a 30-point budget over 3 series", r.ID, len(r.Points))
			}
			if !r.Thinned {
				t.Fatalf("series %q holds %d stored points but was not thinned to its 10-point share", r.ID, n)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		res := db.QueryMatch("dc", time.Time{}, time.Time{}, 0, 2)
		if res.Matches != 4 || len(res.Results) != 2 || !res.Truncated {
			t.Fatalf("matches=%d results=%d truncated=%v, want 4/2/true", res.Matches, len(res.Results), res.Truncated)
		}
		// Deterministic: smallest ids win.
		if res.Results[0].ID != "dc1/rack1/dev1" || res.Results[1].ID != "dc1/rack1/dev2" {
			t.Fatalf("truncation kept %q, %q — want the two smallest ids", res.Results[0].ID, res.Results[1].ID)
		}
	})
	t.Run("zero-matches", func(t *testing.T) {
		res := db.QueryMatch("nosuch/", time.Time{}, time.Time{}, 100, 10)
		if res.Matches != 0 || len(res.Results) != 0 || res.Truncated {
			t.Fatalf("zero-match query returned %+v, want empty", res)
		}
	})
	t.Run("window", func(t *testing.T) {
		from, to := start.Add(10*time.Second), start.Add(20*time.Second)
		res := db.QueryMatch("dc1/", from, to, 0, 0)
		for _, r := range res.Results {
			for _, p := range r.Points {
				if p.Time.Before(from) || !p.Time.Before(to) {
					t.Fatalf("series %q point at %v outside [%v, %v)", r.ID, p.Time, from, to)
				}
			}
		}
	})
}

// TestGlobMatch exercises the matcher directly, including the
// backtracking paths a query would rarely construct.
func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, id string
		want        bool
	}{
		{"", "", true},
		{"", "x", false},
		{"*", "", true},
		{"*", "anything/at/all", true},
		{"a*b", "ab", true},
		{"a*b", "aXYZb", true},
		{"a*b", "aXYZbc", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "aXcYb", false},
		{"?", "x", true},
		{"?", "", false},
		{"?", "xy", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*.cpu", "dev1.cpu", true},
		{"*.cpu", "dev1.mem", false},
		{"a*a*a*a*b", "aaaaaaaaaaaaaaaa", false}, // pathological backtracking terminates
		{"a*a*a*a*", "aaaaaaaaaaaaaaaa", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.id); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.id, got, c.want)
		}
	}
	// No metacharacters → prefix semantics, via matchesPattern.
	if !matchesPattern("dc1/", "dc1/rack/dev") {
		t.Error("prefix pattern must match its subtree")
	}
	if matchesPattern("dc1/rack/dev", "dc1/") {
		t.Error("prefix pattern must not match a shorter id")
	}
}

// TestCacheConcurrentReadersWriters is the -race soak: concurrent cached
// reads (point and pattern queries) against live ingest, seals and
// retention evictions. Run with -race in CI; correctness here is "no
// race, no panic, contract holds".
func TestCacheConcurrentReadersWriters(t *testing.T) {
	db := New(Config{Shards: 4, CacheBytes: 256 << 10,
		Retention: RetentionConfig{RawCapacity: 256, TierCapacity: 64, Tiers: 2, CompressBlock: 16}})
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("soak/dev%02d", i)
		fillSealed(db, ids[i], 128)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: keep appending (sealing and evicting) across all series.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 128
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					db.Append(id, series.Point{Time: start.Add(time.Duration(i+w*100000) * time.Second), Value: float64(i)})
				}
				i++
			}
		}(w)
	}
	// A sealer forcing active-tail seals mid-read.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.SealAll()
			}
		}
	}()
	// Readers: cached point queries and pattern fan-ins.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				from := start.Add(time.Duration(rng.Intn(256)) * time.Second)
				to := from.Add(time.Duration(1+rng.Intn(256)) * time.Second)
				if _, err := db.Query(id, from, to, 64); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				mres := db.QueryMatch("soak/*", from, to, 64, 4)
				if len(mres.Results) > 4 {
					t.Errorf("match returned %d results over the 4-series cap", len(mres.Results))
					return
				}
			}
		}(r)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	cs := db.Stats().Cache
	if cs.Bytes > cs.MaxBytes {
		t.Fatalf("cache occupancy %d over budget %d after soak", cs.Bytes, cs.MaxBytes)
	}
}
