package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/series"
)

// singleMutexStore replicates the seed monitor.Store exactly — one global
// mutex in front of a map of append-only series, with the capacity
// bookkeeping the seed performed — as the baseline the sharded engine is
// measured against.
type singleMutexStore struct {
	mu       sync.Mutex
	data     map[string]*series.Series
	points   int
	capacity int
}

func newSingleMutexStore() *singleMutexStore {
	return &singleMutexStore{data: make(map[string]*series.Series)}
}

var errBenchStoreFull = fmt.Errorf("store capacity exceeded")

func (s *singleMutexStore) append(id string, p series.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity > 0 && s.points >= s.capacity {
		return errBenchStoreFull
	}
	ser, ok := s.data[id]
	if !ok {
		ser = &series.Series{}
		s.data[id] = ser
	}
	ser.Append(p)
	s.points++
	return nil
}

// BenchmarkStoreAppendParallel is the write-path scaling comparison: the
// seed's single-mutex store against the sharded engine at 1, 4 and 16
// shards, under 8×GOMAXPROCS concurrent writers on distinct series. The
// per-op numbers land in BENCH_tsdb.json as the perf trajectory baseline.
func BenchmarkStoreAppendParallel(b *testing.B) {
	parallelAppend := func(b *testing.B, setup func(id string), appendFn func(id string, p series.Point)) {
		var ctr int64
		b.SetParallelism(64)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := fmt.Sprintf("dev%03d/metric", atomic.AddInt64(&ctr, 1))
			if setup != nil {
				setup(id)
			}
			i := 0
			for pb.Next() {
				appendFn(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
				i++
			}
		})
	}

	b.Run("single-mutex", func(b *testing.B) {
		s := newSingleMutexStore()
		parallelAppend(b, nil, func(id string, p series.Point) { _ = s.append(id, p) })
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tsdb/shards=%d", shards), func(b *testing.B) {
			db := New(Config{Shards: shards})
			parallelAppend(b, nil, func(id string, p series.Point) { _ = db.Append(id, p) })
		})
	}
	// The production shape: bounded rings with the compaction cascade
	// active and retention tuned by a Nyquist estimate (the
	// estimate→retain loop), still lock-scaled across shards. One-second
	// polls against a 0.05 Hz requirement bucket ~17 samples per
	// lossless-tier interval.
	b.Run("tsdb/shards=16/compacting", func(b *testing.B) {
		db := New(Config{Shards: 16, Retention: RetentionConfig{RawCapacity: 4096, TierCapacity: 1024}})
		parallelAppend(b, func(id string) { db.SetNyquistRate(id, 0.05) }, func(id string, p series.Point) { _ = db.Append(id, p) })
	})
}

// BenchmarkQueryRange measures tier-stitched range queries against a
// bounded, compacted store: a recent window served by the raw ring alone
// and a full-history window stitched across tiers with a point budget.
func BenchmarkQueryRange(b *testing.B) {
	db := New(Config{Retention: RetentionConfig{RawCapacity: 1024, TierCapacity: 512, Tiers: 2, Fanout: 4}})
	const n = 20000
	for s := 0; s < 8; s++ {
		id := fmt.Sprintf("dev%02d/metric", s)
		db.SetNyquistRate(id, 0.05)
		for i := 0; i < n; i++ {
			db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
		}
	}
	b.Run("recent-raw", func(b *testing.B) {
		b.ReportAllocs()
		from, to := start.Add((n-512)*time.Second), start.Add(n*time.Second)
		for i := 0; i < b.N; i++ {
			res, err := db.Query("dev00/metric", from, to, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Thinned {
				b.Fatal("raw window should not thin")
			}
		}
	})
	b.Run("history-budget100", func(b *testing.B) {
		b.ReportAllocs()
		to := start.Add(n * time.Second)
		for i := 0; i < b.N; i++ {
			res, err := db.Query("dev00/metric", start, to, 100)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Points) > 100 {
				b.Fatal("budget exceeded")
			}
		}
	})
}

// BenchmarkQueryHot measures the hot read path — the dashboard shape:
// a recent window answered by the raw ring of a compressed production
// store while the rest of history sits in sealed blocks and tiers.
// Per-op latencies are collected individually and reported as p50/p99
// (ns), the figures recorded in BENCH_tsdb.json: a mean hides exactly
// the tail a serving read path is judged by.
func BenchmarkQueryHot(b *testing.B) {
	db := New(Config{Shards: 16, Retention: RetentionConfig{
		RawCapacity: 4096, TierCapacity: 1024, Tiers: 2, CompressBlock: 128,
	}})
	const n = 20000
	ids := make([]string, 8)
	for s := range ids {
		ids[s] = fmt.Sprintf("dev%02d/metric", s)
		db.SetNyquistRate(ids[s], 0.05)
		for i := 0; i < n; i++ {
			db.Append(ids[s], series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 97)})
		}
	}
	from, to := start.Add((n-512)*time.Second), start.Add(n*time.Second)
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := db.Query(ids[i%len(ids)], from, to, 0)
		lat = append(lat, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("hot window returned no points")
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/op")
}

// benchSealedStore builds the production store shape with most history in
// sealed Gorilla blocks, and returns a query window that sits entirely in
// the sealed region (past the active run, inside the raw ring), so every
// query must decode blocks — or hit the decoded-block cache.
func benchSealedStore(b *testing.B, cacheBytes int64) (*DB, []string, time.Time, time.Time) {
	b.Helper()
	db := New(Config{Shards: 16, CacheBytes: cacheBytes, Retention: RetentionConfig{
		RawCapacity: 4096, TierCapacity: 1024, Tiers: 2, CompressBlock: 128,
	}})
	const n = 20000
	// Quantized multi-tone values (the repo's canonical sensor workload,
	// cf. diurnalWorkload): integer-valued ramps XOR to almost nothing and
	// would make the decode this pair of benchmarks contrasts artificially
	// free.
	const quant = 1.0 / 64
	ids := make([]string, 8)
	for s := range ids {
		ids[s] = fmt.Sprintf("dev%02d/metric", s)
		db.SetNyquistRate(ids[s], 0.05)
		for i := 0; i < n; i++ {
			v := 40 + 8*math.Sin(2*math.Pi*float64(i)/600) + 3*math.Sin(2*math.Pi*float64(i)/97+1)
			db.Append(ids[s], series.Point{
				Time:  start.Add(time.Duration(i) * time.Second),
				Value: math.Round(v/quant) * quant,
			})
		}
	}
	// The raw ring holds the newest 4096 points; the newest ≤128 sit in
	// the active (undecoded-cost-free) run. [n-2048, n-1024) is sealed
	// history: ~8 blocks per series that must decompress to answer.
	from, to := start.Add((n-2048)*time.Second), start.Add((n-1024)*time.Second)
	return db, ids, from, to
}

// reportTail reports per-op p50/p99 latencies (ns) from individual
// timings — the serving figures recorded in BENCH_tsdb.json.
func reportTail(b *testing.B, lat []time.Duration) {
	b.Helper()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/op")
}

// BenchmarkQueryCold is the sealed-history read path with the decoded-
// block cache off: every query pays the Gorilla decode for every block in
// the window. The baseline BenchmarkQueryCached is measured against.
func BenchmarkQueryCold(b *testing.B) {
	db, ids, from, to := benchSealedStore(b, 0)
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := db.Query(ids[i%len(ids)], from, to, 0)
		lat = append(lat, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("sealed window returned no points")
		}
	}
	b.StopTimer()
	if st := db.Stats(); st.Cache.Hits != 0 {
		b.Fatalf("cold benchmark served %d cache hits", st.Cache.Hits)
	}
	reportTail(b, lat)
}

// BenchmarkQueryCached is the same sealed-history window with the
// decoded-block cache on and warmed: repeat dashboard pulls decode each
// block once, then serve from the LRU. The PR 8 acceptance bar is ≥2x
// over BenchmarkQueryCold.
func BenchmarkQueryCached(b *testing.B) {
	db, ids, from, to := benchSealedStore(b, 64<<20)
	for _, id := range ids { // warm the cache
		if _, err := db.Query(id, from, to, 0); err != nil {
			b.Fatal(err)
		}
	}
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := db.Query(ids[i%len(ids)], from, to, 0)
		lat = append(lat, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("sealed window returned no points")
		}
	}
	b.StopTimer()
	if st := db.Stats(); st.Cache.Hits == 0 {
		b.Fatal("cached benchmark never hit the cache")
	}
	reportTail(b, lat)
}

// BenchmarkQueryMulti is the fan-in read path: one QueryMatch answers the
// whole 8-series family over the sealed window under a shared point
// budget, with the cache on — the multi-panel dashboard shape.
func BenchmarkQueryMulti(b *testing.B) {
	db, ids, from, to := benchSealedStore(b, 64<<20)
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		mres := db.QueryMatch("dev*", from, to, 8*1024, 64)
		lat = append(lat, time.Since(t0))
		if mres.Matches != len(ids) || len(mres.Results) != len(ids) {
			b.Fatalf("matched %d/%d series, want %d", mres.Matches, len(mres.Results), len(ids))
		}
	}
	b.StopTimer()
	reportTail(b, lat)
}

// BenchmarkBlockEncode measures the codec's append path on the diurnal
// workload; bytes/point is reported as a custom metric (the figure
// recorded in BENCH_ingest.json).
func BenchmarkBlockEncode(b *testing.B) {
	pts := diurnalWorkload(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var size, n int
	for i := 0; i < b.N; i++ {
		blk, err := EncodeBlock(pts)
		if err != nil {
			b.Fatal(err)
		}
		size, n = blk.Size(), blk.Len()
	}
	b.StopTimer()
	b.ReportMetric(float64(size)/float64(n), "bytes/point")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pts)), "ns/point")
}

// BenchmarkBlockDecode measures the query-path decode cost.
func BenchmarkBlockDecode(b *testing.B) {
	blk, err := EncodeBlock(diurnalWorkload(4096))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := blk.Iter()
		n := 0
		for it.Next() {
			n++
		}
		if n != blk.Len() {
			b.Fatalf("decoded %d of %d", n, blk.Len())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blk.Len()), "ns/point")
}

// BenchmarkCompressedAppend compares the engine's append hot path with
// compression on, against BenchmarkStoreAppendParallel's uncompressed
// figures.
func BenchmarkCompressedAppend(b *testing.B) {
	db := New(Config{Shards: 16, Retention: RetentionConfig{
		RawCapacity: 4096, TierCapacity: 1024, Tiers: 2, CompressBlock: 128,
	}})
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := "bench/series"
		i := 0
		for pb.Next() {
			db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 97)})
			i++
		}
	})
}
