package tsdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/series"
)

// singleMutexStore replicates the seed monitor.Store exactly — one global
// mutex in front of a map of append-only series, with the capacity
// bookkeeping the seed performed — as the baseline the sharded engine is
// measured against.
type singleMutexStore struct {
	mu       sync.Mutex
	data     map[string]*series.Series
	points   int
	capacity int
}

func newSingleMutexStore() *singleMutexStore {
	return &singleMutexStore{data: make(map[string]*series.Series)}
}

var errBenchStoreFull = fmt.Errorf("store capacity exceeded")

func (s *singleMutexStore) append(id string, p series.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity > 0 && s.points >= s.capacity {
		return errBenchStoreFull
	}
	ser, ok := s.data[id]
	if !ok {
		ser = &series.Series{}
		s.data[id] = ser
	}
	ser.Append(p)
	s.points++
	return nil
}

// BenchmarkStoreAppendParallel is the write-path scaling comparison: the
// seed's single-mutex store against the sharded engine at 1, 4 and 16
// shards, under 8×GOMAXPROCS concurrent writers on distinct series. The
// per-op numbers land in BENCH_tsdb.json as the perf trajectory baseline.
func BenchmarkStoreAppendParallel(b *testing.B) {
	parallelAppend := func(b *testing.B, setup func(id string), appendFn func(id string, p series.Point)) {
		var ctr int64
		b.SetParallelism(64)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := fmt.Sprintf("dev%03d/metric", atomic.AddInt64(&ctr, 1))
			if setup != nil {
				setup(id)
			}
			i := 0
			for pb.Next() {
				appendFn(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
				i++
			}
		})
	}

	b.Run("single-mutex", func(b *testing.B) {
		s := newSingleMutexStore()
		parallelAppend(b, nil, func(id string, p series.Point) { _ = s.append(id, p) })
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tsdb/shards=%d", shards), func(b *testing.B) {
			db := New(Config{Shards: shards})
			parallelAppend(b, nil, func(id string, p series.Point) { _ = db.Append(id, p) })
		})
	}
	// The production shape: bounded rings with the compaction cascade
	// active and retention tuned by a Nyquist estimate (the
	// estimate→retain loop), still lock-scaled across shards. One-second
	// polls against a 0.05 Hz requirement bucket ~17 samples per
	// lossless-tier interval.
	b.Run("tsdb/shards=16/compacting", func(b *testing.B) {
		db := New(Config{Shards: 16, Retention: RetentionConfig{RawCapacity: 4096, TierCapacity: 1024}})
		parallelAppend(b, func(id string) { db.SetNyquistRate(id, 0.05) }, func(id string, p series.Point) { _ = db.Append(id, p) })
	})
}

// BenchmarkQueryRange measures tier-stitched range queries against a
// bounded, compacted store: a recent window served by the raw ring alone
// and a full-history window stitched across tiers with a point budget.
func BenchmarkQueryRange(b *testing.B) {
	db := New(Config{Retention: RetentionConfig{RawCapacity: 1024, TierCapacity: 512, Tiers: 2, Fanout: 4}})
	const n = 20000
	for s := 0; s < 8; s++ {
		id := fmt.Sprintf("dev%02d/metric", s)
		db.SetNyquistRate(id, 0.05)
		for i := 0; i < n; i++ {
			db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i)})
		}
	}
	b.Run("recent-raw", func(b *testing.B) {
		b.ReportAllocs()
		from, to := start.Add((n-512)*time.Second), start.Add(n*time.Second)
		for i := 0; i < b.N; i++ {
			res, err := db.Query("dev00/metric", from, to, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Thinned {
				b.Fatal("raw window should not thin")
			}
		}
	})
	b.Run("history-budget100", func(b *testing.B) {
		b.ReportAllocs()
		to := start.Add(n * time.Second)
		for i := 0; i < b.N; i++ {
			res, err := db.Query("dev00/metric", start, to, 100)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Points) > 100 {
				b.Fatal("budget exceeded")
			}
		}
	})
}

// BenchmarkQueryHot measures the hot read path — the dashboard shape:
// a recent window answered by the raw ring of a compressed production
// store while the rest of history sits in sealed blocks and tiers.
// Per-op latencies are collected individually and reported as p50/p99
// (ns), the figures recorded in BENCH_tsdb.json: a mean hides exactly
// the tail a serving read path is judged by.
func BenchmarkQueryHot(b *testing.B) {
	db := New(Config{Shards: 16, Retention: RetentionConfig{
		RawCapacity: 4096, TierCapacity: 1024, Tiers: 2, CompressBlock: 128,
	}})
	const n = 20000
	ids := make([]string, 8)
	for s := range ids {
		ids[s] = fmt.Sprintf("dev%02d/metric", s)
		db.SetNyquistRate(ids[s], 0.05)
		for i := 0; i < n; i++ {
			db.Append(ids[s], series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 97)})
		}
	}
	from, to := start.Add((n-512)*time.Second), start.Add(n*time.Second)
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := db.Query(ids[i%len(ids)], from, to, 0)
		lat = append(lat, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("hot window returned no points")
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/op")
}

// BenchmarkBlockEncode measures the codec's append path on the diurnal
// workload; bytes/point is reported as a custom metric (the figure
// recorded in BENCH_ingest.json).
func BenchmarkBlockEncode(b *testing.B) {
	pts := diurnalWorkload(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var size, n int
	for i := 0; i < b.N; i++ {
		blk, err := EncodeBlock(pts)
		if err != nil {
			b.Fatal(err)
		}
		size, n = blk.Size(), blk.Len()
	}
	b.StopTimer()
	b.ReportMetric(float64(size)/float64(n), "bytes/point")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pts)), "ns/point")
}

// BenchmarkBlockDecode measures the query-path decode cost.
func BenchmarkBlockDecode(b *testing.B) {
	blk, err := EncodeBlock(diurnalWorkload(4096))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := blk.Iter()
		n := 0
		for it.Next() {
			n++
		}
		if n != blk.Len() {
			b.Fatalf("decoded %d of %d", n, blk.Len())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blk.Len()), "ns/point")
}

// BenchmarkCompressedAppend compares the engine's append hot path with
// compression on, against BenchmarkStoreAppendParallel's uncompressed
// figures.
func BenchmarkCompressedAppend(b *testing.B) {
	db := New(Config{Shards: 16, Retention: RetentionConfig{
		RawCapacity: 4096, TierCapacity: 1024, Tiers: 2, CompressBlock: 128,
	}})
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := "bench/series"
		i := 0
		for pb.Next() {
			db.Append(id, series.Point{Time: start.Add(time.Duration(i) * time.Second), Value: float64(i % 97)})
			i++
		}
	})
}
