package tsdb

import (
	"errors"
	"time"

	"repro/internal/series"
)

var errNoSeries = errors.New("tsdb: no such series")

// maxTierWidth caps bucket widths so absurdly low Nyquist estimates
// cannot overflow duration arithmetic.
const maxTierWidth = 365 * 24 * time.Hour

// ring is a FIFO buffer. A positive capacity makes it circular: pushing
// into a full ring evicts and returns the oldest element. Capacity zero
// grows without bound and never evicts.
type ring[T any] struct {
	buf  []T
	head int
	n    int
	cap  int
}

func newRing[T any](capacity int) *ring[T] {
	r := &ring[T]{cap: capacity}
	if capacity > 0 {
		r.buf = make([]T, capacity)
	}
	return r
}

func (r *ring[T]) size() int { return r.n }

// wrap reduces an index in [0, 2·cap) onto the ring without a divide —
// the append path runs once per poll, so the modulo matters.
func (r *ring[T]) wrap(i int) int {
	if i >= r.cap {
		i -= r.cap
	}
	return i
}

// at returns element i, 0 being the oldest.
func (r *ring[T]) at(i int) T {
	if r.cap > 0 {
		return r.buf[r.wrap(r.head+i)]
	}
	return r.buf[i]
}

// push appends v, returning the evicted oldest element when full.
func (r *ring[T]) push(v T) (evicted T, wasEvicted bool) {
	if r.cap <= 0 {
		r.buf = append(r.buf, v)
		r.n++
		return evicted, false
	}
	if r.n < r.cap {
		r.buf[r.wrap(r.head+r.n)] = v
		r.n++
		return evicted, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = v
	r.head = r.wrap(r.head + 1)
	return evicted, true
}

// bucket is one aggregated interval of a downsampled tier. Each bucket
// carries its own [start, end) coverage: tiers are retuned while buckets
// written under older widths are still retained, so coverage must not be
// derived from the tier's live width.
type bucket struct {
	start, end time.Time
	min, max   float64
	sum        float64
	count      int64
}

func bucketOf(p series.Point) bucket {
	return bucket{start: p.Time, end: p.Time, min: p.Value, max: p.Value, sum: p.Value, count: 1}
}

func (b bucket) mean() float64 { return b.sum / float64(b.count) }

// merge folds o into b (b.start is kept; coverage extends to o's end
// when a cascaded bucket straddles it).
func (b *bucket) merge(o bucket) {
	if o.min < b.min {
		b.min = o.min
	}
	if o.max > b.max {
		b.max = o.max
	}
	if o.end.After(b.end) {
		b.end = o.end
	}
	b.sum += o.sum
	b.count += o.count
}

// tier is one downsampled retention level: finalized buckets (an
// uncompressed ring or, under RetentionConfig.CompressBlock, sealed
// compressed bucket blocks) plus the in-progress bucket accumulating the
// newest interval. Exactly one of ring and cb is non-nil.
type tier struct {
	width  time.Duration
	ring   *ring[bucket]
	cb     *compBuckets
	cur    bucket
	curSet bool
	// next caches the grid start adjacent to cur under the CURRENT
	// width — the fast path for the dense in-order cadence, letting
	// ingest skip Truncate's 128-bit division per point. Zero means
	// unknown (fresh tier, restored tier, or width retuned while cur
	// was open on the old grid) and forces the exact slow path.
	next time.Time
	evb  [1]bucket // reusable eviction buffer for ring mode
}

func newTier(width time.Duration, rc *RetentionConfig) *tier {
	t := &tier{width: width}
	if rc.CompressBlock > 0 {
		t.cb = newCompBuckets(bucketBlockLen(rc), rc.TierCapacity)
	} else {
		t.ring = newRing[bucket](rc.TierCapacity)
	}
	return t
}

// bucketBlockLen bounds a compressed tier's block length by its
// capacity so eviction (one sealed block at a time) stays possible.
func bucketBlockLen(rc *RetentionConfig) int {
	bl := rc.CompressBlock
	if rc.TierCapacity > 0 && bl > rc.TierCapacity {
		bl = rc.TierCapacity
	}
	return bl
}

// push adds one finalized bucket, returning the evicted oldest buckets —
// at most one in ring mode, a whole sealed block in compressed mode. The
// returned slice is reused; consume it before the next push.
func (t *tier) push(b bucket) []bucket {
	if t.ring != nil {
		if ev, wasEvicted := t.ring.push(b); wasEvicted {
			t.evb[0] = ev
			return t.evb[:1]
		}
		return nil
	}
	return t.cb.push(b)
}

// size returns the number of finalized buckets (excluding cur).
func (t *tier) size() int {
	if t.ring != nil {
		return t.ring.size()
	}
	return t.cb.size()
}

// each emits the finalized buckets in order. In compressed mode, sealed
// blocks whose coverage cannot intersect [from, to) are skipped without
// decoding; callers still filter per bucket (zero bounds walk all).
func (t *tier) each(from, to time.Time, emit func(bucket)) {
	if t.ring != nil {
		for i := 0; i < t.ring.size(); i++ {
			emit(t.ring.at(i))
		}
		return
	}
	t.cb.each(from, to, emit)
}

// bounds returns the finalized buckets' [oldest start, newest coverage
// end) band.
func (t *tier) bounds() (oldest, newestEnd time.Time, ok bool) {
	if t.ring != nil {
		if t.ring.size() == 0 {
			return oldest, newestEnd, false
		}
		return t.ring.at(0).start, t.ring.at(t.ring.size() - 1).end, true
	}
	return t.cb.bounds()
}

// overlaps reports whether the tier's retained band [oldest bucket
// start, newest bucket end) intersects [from, to) — the pruning check
// that keeps recent-window queries from walking cold tiers. Zero bounds
// are unbounded.
func (t *tier) overlaps(from, to time.Time) bool {
	oldest, newestEnd, ok := t.bounds()
	if ok {
		if t.curSet && t.cur.end.After(newestEnd) {
			newestEnd = t.cur.end
		}
	} else if t.curSet {
		oldest, newestEnd = t.cur.start, t.cur.end
	} else {
		return false
	}
	return (to.IsZero() || oldest.Before(to)) && (from.IsZero() || newestEnd.After(from))
}

// memSeries is one series' in-memory state. It carries no lock of its
// own: the owning shard's mutex guards all access (query-time block
// decoding touches no shared state, so readers share the RLock).
type memSeries struct {
	// Exactly one of raw (uncompressed ring) and craw (sealed Gorilla
	// blocks, RetentionConfig.CompressBlock > 0) is non-nil.
	raw   *ring[series.Point]
	craw  *compPoints
	tiers []*tier

	// nyquist is the recorded Nyquist-rate estimate in hertz (0 =
	// unknown); it drives the tier bucket widths.
	nyquist float64
	// gap is an EWMA of positive inter-sample gaps — the fallback basis
	// for tier widths while no Nyquist estimate exists.
	gap      time.Duration
	lastTime time.Time
	haveLast bool

	appends   int64
	compacted int64
	dropped   int64
}

func newMemSeries(rc *RetentionConfig) *memSeries {
	if rc.CompressBlock > 0 {
		bl := rc.CompressBlock
		if rc.RawCapacity > 0 && bl > rc.RawCapacity {
			bl = rc.RawCapacity
		}
		return &memSeries{craw: newCompPoints(bl, rc.RawCapacity)}
	}
	return &memSeries{raw: newRing[series.Point](rc.RawCapacity)}
}

// rawSize returns the raw store's current point count.
func (m *memSeries) rawSize() int {
	if m.raw != nil {
		return m.raw.size()
	}
	return m.craw.size()
}

// rawBounds returns the raw store's retained time band.
func (m *memSeries) rawBounds() (oldest, newest time.Time, ok bool) {
	if m.raw != nil {
		if n := m.raw.size(); n > 0 {
			return m.raw.at(0).Time, m.raw.at(n - 1).Time, true
		}
		return oldest, newest, false
	}
	return m.craw.bounds()
}

// append ingests one point, cascading the evicted oldest raw point into
// the tiers when the ring is full. In lenient mode points are expected in
// time order (the poller's contract) but out-of-order points are accepted
// and may land in an already-open bucket; in strict mode an out-of-order
// or unrepresentable timestamp is rejected and nothing changes.
func (m *memSeries) append(p series.Point, rc *RetentionConfig, strict bool) error {
	if strict {
		if m.haveLast && p.Time.Before(m.lastTime) {
			return ErrOutOfOrder
		}
		if !unixNanoSafe(p.Time) {
			return ErrTimeRange
		}
	}
	// The gap EWMA only seeds the initial tier grid; once the tiers
	// exist, retention follows the Nyquist estimates.
	if m.tiers == nil && m.haveLast {
		if gap := p.Time.Sub(m.lastTime); gap > 0 {
			if m.gap == 0 {
				m.gap = gap
			} else {
				m.gap += (gap - m.gap) / 8
			}
		}
	}
	m.lastTime = p.Time
	m.haveLast = true
	m.appends++
	if m.raw != nil {
		if ev, wasEvicted := m.raw.push(p); wasEvicted {
			m.compact(ev, rc)
		}
		return nil
	}
	// Compressed mode evicts a whole sealed block at a time; the points
	// cascade into the tiers oldest first, exactly as the ring's
	// one-at-a-time evictions would have.
	for _, ev := range m.craw.push(p) {
		m.compact(ev, rc)
	}
	return nil
}

// compact cascades one evicted raw point into the first tier (or counts
// it dropped when tiers are disabled).
func (m *memSeries) compact(p series.Point, rc *RetentionConfig) {
	//nyquist:allow-alloc tier arrays are built on a series' first compaction, then reused for its lifetime
	m.ensureTiers(rc)
	if len(m.tiers) == 0 {
		m.dropped++
		return
	}
	m.compacted++
	m.ingest(0, bucketOf(p))
}

// ingest folds b into tier k's current bucket, finalizing (and possibly
// cascading to tier k+1) when b opens a later interval on the tier grid.
//
//nyquist:hotpath
func (m *memSeries) ingest(k int, b bucket) {
	t := m.tiers[k]
	if !t.curSet {
		b.start = b.start.Truncate(t.width)
		b.end = b.start.Add(t.width)
		t.cur = b
		t.curSet = true
		t.next = b.start.Add(t.width)
		return
	}
	// Common case: the point lands in the open bucket (or before it,
	// for out-of-order arrivals) — one comparison, no grid division.
	if b.start.Before(t.cur.end) {
		t.cur.merge(b)
		return
	}
	// Next-bucket fast path: when t.next is known, cur.start sits on
	// the current width's grid and t.next is the adjacent grid start,
	// so a point landing inside [next, next+width) opens exactly the
	// adjacent bucket. That is the dense in-order cadence, and
	// answering it with two comparisons skips Truncate's 128-bit
	// division — measurably hot when every append cascades a raw point
	// through here. A retune zeroes t.next (cur then straddles the old
	// grid), falling back to the exact slow path until the next bucket
	// opens on the new grid.
	var gridStart time.Time
	if !t.next.IsZero() && !b.start.Before(t.next) && b.start.Before(t.next.Add(t.width)) {
		gridStart = t.next
	} else {
		gridStart = b.start.Truncate(t.width)
		if !gridStart.After(t.cur.start) {
			t.cur.merge(b)
			return
		}
	}
	for _, ev := range t.push(t.cur) {
		if k+1 < len(m.tiers) {
			m.ingest(k+1, ev)
		} else {
			m.dropped += ev.count
		}
	}
	b.start = gridStart
	b.end = gridStart.Add(t.width)
	t.cur = b
	t.next = gridStart.Add(t.width)
}

// ensureTiers lazily creates the downsampled tiers on first compaction,
// with widths derived from the current Nyquist estimate (or the observed
// native interval while none exists).
func (m *memSeries) ensureTiers(rc *RetentionConfig) {
	if m.tiers != nil || rc.Tiers <= 0 {
		return
	}
	m.tiers = make([]*tier, rc.Tiers)
	widths := m.tierWidths(rc)
	for i := range m.tiers {
		m.tiers[i] = newTier(widths[i], rc)
	}
}

// retune updates existing tier widths after a Nyquist estimate change;
// future buckets use the new grid, retained buckets are left as written.
func (m *memSeries) retune(rc *RetentionConfig) {
	if m.tiers == nil {
		return
	}
	// Open and retained buckets keep the coverage they were written
	// with; only buckets opened from here on use the new grid.
	widths := m.tierWidths(rc)
	for i, t := range m.tiers {
		t.width = widths[i]
		// The open bucket still sits on the old grid; drop the cached
		// adjacent grid start so ingest recomputes via Truncate until a
		// bucket opens on the new grid.
		t.next = time.Time{}
	}
}

// tierWidths derives the bucket width of every tier. The first tier is
// lossless with respect to the estimated Nyquist rate: its bucket rate is
// Headroom × rate, i.e. at least 2·f_max. Each deeper tier widens by the
// integer fan-out, keeping the grids nested. While no estimate exists the
// native inter-sample interval stands in, making the first tier lossless
// with respect to whatever is actually being polled.
func (m *memSeries) tierWidths(rc *RetentionConfig) []time.Duration {
	var base time.Duration
	if m.nyquist > 0 {
		base = time.Duration(float64(time.Second) / (rc.Headroom * m.nyquist))
	}
	if base <= 0 {
		base = m.gap
	}
	if base <= 0 {
		base = time.Second
	}
	if base > maxTierWidth {
		base = maxTierWidth
	}
	widths := make([]time.Duration, rc.Tiers)
	w := base
	for i := range widths {
		widths[i] = w
		if w < maxTierWidth/time.Duration(rc.Fanout) {
			w *= time.Duration(rc.Fanout)
		} else {
			w = maxTierWidth
		}
	}
	return widths
}

// retained counts currently held points: raw samples plus finalized and
// in-progress buckets.
func (m *memSeries) retained() int { return m.rawSize() + m.buckets() }

func (m *memSeries) buckets() int {
	n := 0
	for _, t := range m.tiers {
		n += t.size()
		if t.curSet {
			n++
		}
	}
	return n
}

// compressedFootprint sums the sealed compressed payload across the raw
// store and all tiers: bytes on the wire and the entries they hold.
func (m *memSeries) compressedFootprint() (bytes, entries int64) {
	if m.craw != nil {
		bytes, entries = m.craw.compressedFootprint()
	}
	for _, t := range m.tiers {
		if t.cb != nil {
			b, n := t.cb.compressedFootprint()
			bytes += b
			entries += n
		}
	}
	return bytes, entries
}

// stats builds the operator view of this series.
func (m *memSeries) stats(id string) SeriesStats {
	st := SeriesStats{
		ID:          id,
		NyquistRate: m.nyquist,
		Appends:     m.appends,
		Compacted:   m.compacted,
		Dropped:     m.dropped,
		RawPoints:   m.rawSize(),
	}
	st.CompressedBytes, _ = m.compressedFootprint()
	if oldest, newest, ok := m.rawBounds(); ok {
		st.RawOldest = oldest
		st.RawNewest = newest
	}
	for _, t := range m.tiers {
		ts := TierStats{Width: t.width, Buckets: t.size()}
		if t.cb != nil {
			// Sealed compressed blocks carry their bounds and sample
			// totals as metadata; the stats path (which runs under the
			// shard lock) must never pay a decode for them.
			ts.Samples = t.cb.sampleTotal()
			if oldest, newestEnd, ok := t.cb.bounds(); ok {
				ts.Oldest, ts.Newest = oldest, newestEnd
			}
		} else {
			t.each(time.Time{}, time.Time{}, func(b bucket) {
				ts.Samples += b.count
				if ts.Oldest.IsZero() || b.start.Before(ts.Oldest) {
					ts.Oldest = b.start
				}
				if b.end.After(ts.Newest) {
					ts.Newest = b.end
				}
			})
		}
		if t.curSet {
			ts.Buckets++
			ts.Samples += t.cur.count
			if ts.Oldest.IsZero() || t.cur.start.Before(ts.Oldest) {
				ts.Oldest = t.cur.start
			}
			if t.cur.end.After(ts.Newest) {
				ts.Newest = t.cur.end
			}
		}
		st.Tiers = append(st.Tiers, ts)
	}
	return st
}
