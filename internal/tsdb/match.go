// Multi-series fan-in: one dashboard pull usually wants a family of
// series (every queue on a switch, every device in a rack), not one id.
// QueryMatch answers a prefix or glob over the id space in a single
// call, fanning the per-shard reads out in parallel and splitting one
// point budget across the matched series so the response size stays
// bounded no matter how many series the pattern catches.

package tsdb

import (
	"sort"
	"sync"
	"time"
)

// MatchResult is the answer to a pattern query.
type MatchResult struct {
	// Results holds one QueryResult per selected series, sorted by id.
	Results []*QueryResult
	// Matches is the number of series the pattern matched, before any
	// maxSeries cap — when Truncated, it exceeds len(Results).
	Matches int
	// Truncated reports that more series matched than maxSeries allowed;
	// the lexicographically smallest ids were kept (deterministic, so
	// paging dashboards see a stable prefix).
	Truncated bool
}

// matchesPattern reports whether id matches pattern. A pattern with no
// metacharacters is a prefix match (the dashboard namespace convention:
// "dc1/rack3/" selects the subtree); '*' matches any run of bytes
// (including '/'), '?' matches exactly one byte.
func matchesPattern(pattern, id string) bool {
	if !hasGlobMeta(pattern) {
		return len(id) >= len(pattern) && id[:len(pattern)] == pattern
	}
	return globMatch(pattern, id)
}

func hasGlobMeta(pattern string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '*' || pattern[i] == '?' {
			return true
		}
	}
	return false
}

// globMatch is the classic iterative wildcard matcher with single-star
// backtracking: linear in len(id) for patterns with one star, worst-case
// quadratic (never exponential) for pathological multi-star patterns.
func globMatch(pattern, id string) bool {
	p, s := 0, 0
	star, ss := -1, 0
	for s < len(id) {
		switch {
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == id[s]):
			p++
			s++
		case p < len(pattern) && pattern[p] == '*':
			star, ss = p, s
			p++
		case star >= 0:
			// Backtrack: let the last star swallow one more byte.
			ss++
			p, s = star+1, ss
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// QueryMatch runs Query over every series whose id matches pattern (see
// matchesPattern for the prefix/glob semantics) and returns the results
// sorted by id. maxSeries > 0 caps how many series are answered (the
// smallest ids win, Truncated reports the cut); maxPoints > 0 is a
// shared budget split evenly across the selected series, every series
// getting at least one point. Shards are read in parallel under their
// read locks. A pattern matching nothing returns an empty result, not
// an error — dashboards poll patterns before the fleet reports in.
func (db *DB) QueryMatch(pattern string, from, to time.Time, maxPoints, maxSeries int) *MatchResult {
	// Phase 1: collect matching ids. Cheap (no decoding), so one pass
	// under each shard's read lock in turn.
	var ids []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for id := range sh.series {
			if matchesPattern(pattern, id) {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
	}
	res := &MatchResult{Matches: len(ids)}
	if len(ids) == 0 {
		return res
	}
	sort.Strings(ids)
	if maxSeries > 0 && len(ids) > maxSeries {
		ids = ids[:maxSeries]
		res.Truncated = true
	}
	perBudget := 0
	if maxPoints > 0 {
		perBudget = maxPoints / len(ids)
		if perBudget < 1 {
			perBudget = 1
		}
	}
	// Phase 2: group the selected ids by shard and fan the reads out, one
	// goroutine per shard with series to answer, each under its shard's
	// read lock. A series can disappear between phases only by never
	// having existed — the engine has no deletes — but the nil check
	// keeps the contract local.
	byShard := make(map[uint32][]string)
	for _, id := range ids {
		k := fnv32a(id) % uint32(len(db.shards))
		byShard[k] = append(byShard[k], id)
	}
	out := make([]*QueryResult, 0, len(ids))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for k, shardIDs := range byShard {
		wg.Add(1)
		go func(sh *shard, shardIDs []string) {
			defer wg.Done()
			local := make([]*QueryResult, 0, len(shardIDs))
			sh.mu.RLock()
			for _, id := range shardIDs {
				if m := sh.series[id]; m != nil {
					local = append(local, m.query(id, from, to, perBudget, sh.cache))
				}
			}
			sh.mu.RUnlock()
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(&db.shards[k], shardIDs)
	}
	wg.Wait()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	res.Results = out
	return res
}
