package tsdb

import (
	"errors"
	"testing"
	"time"

	"repro/internal/series"
)

var start = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

func appendN(db *DB, id string, n int, interval time.Duration) {
	for i := 0; i < n; i++ {
		db.Append(id, series.Point{Time: start.Add(time.Duration(i) * interval), Value: float64(i)})
	}
}

func TestAppendQueryUnbounded(t *testing.T) {
	db := New(Config{})
	appendN(db, "a", 10, time.Second)
	res, err := db.Query("a", start.Add(2*time.Second), start.Add(5*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("query returned %d points, want 3", len(res.Points))
	}
	if len(res.Tiers) != 1 || res.Tiers[0].Tier != 0 {
		t.Fatalf("tiers = %+v, want raw only", res.Tiers)
	}
	if len(res.Aggregates) != 0 {
		t.Fatalf("raw query carried %d aggregates", len(res.Aggregates))
	}
	if _, err := db.Query("missing", start, start.Add(time.Hour), 0); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
	if db.Points() != 10 {
		t.Fatalf("points = %d, want 10", db.Points())
	}
	full, err := db.Full("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Points) != 10 {
		t.Fatalf("full returned %d points", len(full.Points))
	}
	ids := db.IDs()
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("ids = %v", ids)
	}
}

// TestBoundedSeriesDegradesInsteadOfFailing is the tiered-retention
// acceptance test: a full raw ring cascades into coarser tiers (min/max/
// mean summaries) and keeps accepting writes forever, instead of the
// seed store's hard ErrStoreFull.
func TestBoundedSeriesDegradesInsteadOfFailing(t *testing.T) {
	db := New(Config{Retention: RetentionConfig{RawCapacity: 32, TierCapacity: 16, Tiers: 2, Fanout: 4}})
	appendN(db, "a", 1000, time.Second)

	st := db.Stats()
	if st.Appends != 1000 {
		t.Fatalf("appends = %d, want 1000", st.Appends)
	}
	if st.Compacted != 1000-32 {
		t.Fatalf("compacted = %d, want %d", st.Compacted, 1000-32)
	}
	if got, max := st.Retained(), 32+2*(16+1); got > max {
		t.Fatalf("retained %d points, capacity allows at most %d", got, max)
	}
	if st.Dropped == 0 {
		t.Fatal("a 1000-point stream through ~66 slots must eventually drop")
	}

	full, err := db.Full("a")
	if err != nil {
		t.Fatal(err)
	}
	// Degraded resolution, not absence: coarse-tier buckets summarize
	// multiple raw samples each.
	sawAggregated := false
	for _, a := range full.Aggregates {
		if a.Min > a.Mean || a.Mean > a.Max {
			t.Fatalf("bucket invariant violated: %+v", a)
		}
		if a.Count > 1 {
			sawAggregated = true
		}
	}
	if !sawAggregated {
		t.Fatal("no bucket aggregates multiple samples; resolution never degraded")
	}
	// The newest samples stay raw and exact.
	last := full.Points[len(full.Points)-1]
	if last.Value != 999 {
		t.Fatalf("newest retained value = %v, want 999 (raw)", last.Value)
	}
}

func TestNyquistDerivedTierWidths(t *testing.T) {
	rc := RetentionConfig{RawCapacity: 16, TierCapacity: 8, Tiers: 2, Fanout: 4, Headroom: 1.2}
	db := New(Config{Retention: rc})
	// The estimate→retain loop: the estimator says 0.05 Hz Nyquist rate;
	// the lossless tier buckets at headroom×rate (≥ 2·f_max), i.e. one
	// bucket per 1/(1.2·0.05) ≈ 16.7 s, aggregating ~17 one-second polls.
	db.SetNyquistRate("a", 0.05)
	appendN(db, "a", 400, time.Second)

	st, err := db.SeriesStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.NyquistRate != 0.05 {
		t.Fatalf("nyquist = %v", st.NyquistRate)
	}
	rate := 0.05
	wantW1 := time.Duration(float64(time.Second) / (1.2 * rate))
	if len(st.Tiers) != 2 || st.Tiers[0].Width != wantW1 || st.Tiers[1].Width != 4*wantW1 {
		t.Fatalf("tier widths = %+v, want %v and %v", st.Tiers, wantW1, 4*wantW1)
	}
	// The lossless tier actually realizes the Nyquist saving: buckets
	// aggregate many oversampled polls.
	if st.Tiers[0].Buckets == 0 || st.Tiers[0].Samples < 2*int64(st.Tiers[0].Buckets) {
		t.Fatalf("tier 1 %d buckets / %d samples; expected >2 samples per bucket", st.Tiers[0].Buckets, st.Tiers[0].Samples)
	}
}

func TestRetuneAppliesToFutureBuckets(t *testing.T) {
	rc := RetentionConfig{RawCapacity: 8, TierCapacity: 8, Tiers: 2, Fanout: 4, Headroom: 1.2}
	db := New(Config{Retention: rc})
	appendN(db, "a", 40, time.Second) // tiers created on native 1 s grid
	before, err := db.SeriesStats("a")
	if err != nil {
		t.Fatal(err)
	}
	db.SetNyquistRate("a", 0.01)
	after, err := db.SeriesStats("a")
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.01
	want := time.Duration(float64(time.Second) / (1.2 * rate))
	if after.Tiers[0].Width != want {
		t.Fatalf("retuned width = %v, want %v", after.Tiers[0].Width, want)
	}
	if before.Tiers[0].Width == after.Tiers[0].Width {
		t.Fatal("retune changed nothing")
	}
	// Ignored inputs leave the estimate alone.
	db.SetNyquistRate("a", -1)
	db.SetNyquistRate("a", 0)
	if got := db.NyquistRate("a"); got != 0.01 {
		t.Fatalf("nyquist after bad sets = %v, want 0.01", got)
	}
}

func TestQueryTierSelection(t *testing.T) {
	db := New(Config{Retention: RetentionConfig{RawCapacity: 50, TierCapacity: 100, Tiers: 2, Fanout: 4}})
	appendN(db, "a", 500, time.Second)
	// Recent window: answered from the raw ring alone.
	recent, err := db.Query("a", start.Add(460*time.Second), start.Add(500*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recent.Tiers) != 1 || recent.Tiers[0].Tier != 0 {
		t.Fatalf("recent query tiers = %+v, want raw only", recent.Tiers)
	}
	if len(recent.Points) != 40 {
		t.Fatalf("recent points = %d, want 40", len(recent.Points))
	}
	// Deep history: the raw ring no longer covers it; only tiers answer.
	old, err := db.Query("a", start, start.Add(100*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Points) == 0 {
		t.Fatal("old window lost entirely")
	}
	for _, ts := range old.Tiers {
		if ts.Tier == 0 {
			t.Fatalf("old query read the raw ring: %+v", old.Tiers)
		}
	}
	// A window that falls entirely inside one compacted bucket still
	// gets that bucket's summary (overlap semantics, not start-in-range).
	narrow, err := db.Query("a", start.Add(10*time.Second), start.Add(11*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Points) == 0 {
		t.Fatal("sub-bucket window returned nothing despite retained summaries")
	}
	// Point budget: thinned, never over, and the newest sample survives.
	budget, err := db.Query("a", start, start.Add(500*time.Second), 25)
	if err != nil {
		t.Fatal(err)
	}
	if !budget.Thinned || len(budget.Points) > 25 {
		t.Fatalf("budget query: thinned=%v n=%d", budget.Thinned, len(budget.Points))
	}
	if got := budget.Points[len(budget.Points)-1].Value; got != 499 {
		t.Fatalf("thinning dropped the newest sample: last = %v, want 499", got)
	}
	for i := 1; i < len(budget.Points); i++ {
		if budget.Points[i].Time.Before(budget.Points[i-1].Time) {
			t.Fatal("stitched points out of order")
		}
	}
}

// TestBucketCoverageSurvivesRetune pins buckets to the coverage they
// were written with: a retune widening the tier grid must not let old
// narrow buckets answer (or phantom-cover) windows they never spanned.
func TestBucketCoverageSurvivesRetune(t *testing.T) {
	rc := RetentionConfig{RawCapacity: 4, TierCapacity: 8, Tiers: 1, Fanout: 4}
	db := New(Config{Retention: rc})
	appendN(db, "a", 12, time.Second) // tier buckets at the native 1 s grid, t=0..7
	rate := 0.01
	db.SetNyquistRate("a", rate) // future buckets ~83 s wide
	// (8.5 s, 9 s): no retained bucket covers it (each spans 1 s) and no
	// raw point falls in it. Judging old buckets by the live width would
	// phantom-cover this window with the bucket at t=7.
	res, err := db.Query("a", start.Add(8500*time.Millisecond), start.Add(9*time.Second), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 0 {
		t.Fatalf("window covered by nothing returned %d points (phantom coverage)", len(res.Points))
	}
	// The old buckets still answer the windows they do cover.
	res, err = db.Query("a", start.Add(3*time.Second), start.Add(3500*time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Value != 3 {
		t.Fatalf("sub-bucket window = %+v, want the t=3 bucket", res.Points)
	}
}

func TestShardingSpreadsSeries(t *testing.T) {
	db := New(Config{})
	if db.Shards() != 16 {
		t.Fatalf("default shards = %d, want 16", db.Shards())
	}
	for i := 0; i < 64; i++ {
		db.Append(string(rune('a'+i%26))+string(rune('0'+i/26)), series.Point{Time: start, Value: 1})
	}
	st := db.Stats()
	if st.Series != 64 {
		t.Fatalf("series = %d", st.Series)
	}
	busy := 0
	for _, n := range st.SeriesPerShard {
		if n > 0 {
			busy++
		}
	}
	if busy < 8 {
		t.Fatalf("only %d of 16 shards used for 64 series; hash is not spreading", busy)
	}
	// A single-shard DB still works (the benchmark baseline shape).
	one := New(Config{Shards: 1})
	appendN(one, "x", 10, time.Second)
	if one.Points() != 10 {
		t.Fatalf("single-shard points = %d", one.Points())
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	db := New(Config{Retention: RetentionConfig{RawCapacity: 4}})
	for _, id := range []string{"zz", "aa", "mm"} {
		appendN(db, id, 10, time.Second)
	}
	snap := db.Snapshot()
	if len(snap) != 3 || snap[0].ID != "aa" || snap[1].ID != "mm" || snap[2].ID != "zz" {
		t.Fatalf("snapshot = %+v", snap)
	}
	for _, s := range snap {
		if s.Appends != 10 || s.RawPoints != 4 {
			t.Fatalf("%s: appends=%d raw=%d", s.ID, s.Appends, s.RawPoints)
		}
		if s.RawOldest.IsZero() || !s.RawNewest.After(s.RawOldest) {
			t.Fatalf("%s: raw span %v..%v", s.ID, s.RawOldest, s.RawNewest)
		}
	}
	if _, err := db.SeriesStats("nope"); !errors.Is(err, ErrNoSeries) {
		t.Fatal("want ErrNoSeries")
	}
}

// TestNegativeTiersPlainBoundedRing checks Tiers < 0 expresses the
// seed-style retention: keep the newest RawCapacity points, forget the
// rest — still without ever failing a write.
func TestNegativeTiersPlainBoundedRing(t *testing.T) {
	db := New(Config{Retention: RetentionConfig{RawCapacity: 8, Tiers: -1}})
	appendN(db, "a", 100, time.Second)
	st := db.Stats()
	if st.Appends != 100 || st.RawPoints != 8 || st.Buckets != 0 {
		t.Fatalf("stats = %+v, want 100 appends, 8 raw, 0 buckets", st)
	}
	if st.Dropped != 92 {
		t.Fatalf("dropped = %d, want 92", st.Dropped)
	}
	if st.Compacted != 0 {
		t.Fatalf("compacted = %d, want 0 (nothing cascaded without tiers)", st.Compacted)
	}
	full, err := db.Full("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Points) != 8 || full.Points[0].Value != 92 {
		t.Fatalf("retained = %+v, want the newest 8", full.Points)
	}
}

func TestAppendUniform(t *testing.T) {
	db := New(Config{})
	u := &series.Uniform{Start: start, Interval: time.Second, Values: []float64{1, 2, 3}}
	db.AppendUniform("u", u)
	full, err := db.Full("u")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Points) != 3 || full.Points[2].Value != 3 {
		t.Fatalf("full = %+v", full.Points)
	}
}
