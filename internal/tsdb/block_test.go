package tsdb

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/series"
)

// checkRoundTrip encodes pts and asserts the decode is bit-exact: every
// timestamp the same instant, every value the identical float64 bit
// pattern (NaN payloads included).
func checkRoundTrip(t *testing.T, pts []series.Point) Block {
	t.Helper()
	blk, err := EncodeBlock(pts)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if blk.Len() != len(pts) {
		t.Fatalf("block len %d, want %d", blk.Len(), len(pts))
	}
	got, err := blk.Points(nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if !got[i].Time.Equal(pts[i].Time) {
			t.Fatalf("point %d: time %v, want %v", i, got[i].Time, pts[i].Time)
		}
		if math.Float64bits(got[i].Value) != math.Float64bits(pts[i].Value) {
			t.Fatalf("point %d: value bits %x, want %x (%v vs %v)",
				i, math.Float64bits(got[i].Value), math.Float64bits(pts[i].Value),
				got[i].Value, pts[i].Value)
		}
	}
	if len(pts) > 0 {
		if !blk.First().Equal(pts[0].Time) || !blk.Last().Equal(pts[len(pts)-1].Time) {
			t.Fatalf("block bounds [%v, %v], want [%v, %v]",
				blk.First(), blk.Last(), pts[0].Time, pts[len(pts)-1].Time)
		}
	}
	return blk
}

var blockEpoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// TestBlockRoundTripPatterns drives the codec through the timestamp and
// value regimes a serving store actually sees, plus the adversarial
// ones: constant timestamps (duplicate polls), heavy jitter, huge grid
// shifts, constant values, NaN/Inf/denormal values, and single-point
// blocks.
func TestBlockRoundTripPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int, tAt func(i int) time.Time, vAt func(i int) float64) []series.Point {
		pts := make([]series.Point, n)
		for i := range pts {
			pts[i] = series.Point{Time: tAt(i), Value: vAt(i)}
		}
		return pts
	}
	regular := func(step time.Duration) func(int) time.Time {
		return func(i int) time.Time { return blockEpoch.Add(time.Duration(i) * step) }
	}
	cases := map[string][]series.Point{
		"empty":        nil,
		"single":       mk(1, regular(time.Second), func(int) float64 { return 42.5 }),
		"regular-sine": mk(512, regular(30*time.Second), func(i int) float64 { return math.Sin(float64(i) / 40) }),
		"constant-timestamps": mk(64, func(int) time.Time { return blockEpoch },
			func(i int) float64 { return float64(i) }),
		"constant-values": mk(256, regular(time.Second), func(int) float64 { return 99.25 }),
		"ms-jitter": mk(256, func(i int) time.Time {
			return blockEpoch.Add(time.Duration(i)*time.Second + time.Duration(rng.Intn(2_000_001)-1_000_000)*time.Nanosecond)
		}, func(i int) float64 { return float64(i % 7) }),
		"grid-shifts": mk(128, func(i int) time.Time {
			// Alternating 1 s and 1 h deltas: every step is a worst-case
			// delta-of-delta.
			return blockEpoch.Add(time.Duration(i/2)*time.Hour + time.Duration(i%2)*time.Second)
		}, func(i int) float64 { return float64(i) * 1e17 }),
		"special-values": mk(10, regular(time.Minute), func(i int) float64 {
			return []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
				math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, 1e-310, -1e-310}[i]
		}),
		"extreme-times": {
			{Time: time.Unix(0, math.MinInt64), Value: 1},
			{Time: blockEpoch, Value: 2},
			{Time: time.Unix(0, math.MaxInt64), Value: 3},
		},
	}
	for name, pts := range cases {
		t.Run(name, func(t *testing.T) { checkRoundTrip(t, pts) })
	}
}

// TestBlockRoundTripRandom is the property test: random walks over
// random grids with random jitter and value quantization, all bit-exact.
func TestBlockRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		step := time.Duration(1+rng.Intn(3600)) * time.Second / 4
		jitter := int64(0)
		if rng.Intn(2) == 0 {
			jitter = int64(step) / int64(1+rng.Intn(10))
		}
		quant := math.Pow(2, float64(rng.Intn(20)-10))
		if rng.Intn(3) == 0 {
			quant = 0 // full-precision walk
		}
		pts := make([]series.Point, n)
		now := blockEpoch.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
		v := rng.NormFloat64() * 100
		for i := range pts {
			v += rng.NormFloat64()
			val := v
			if quant > 0 {
				val = math.Round(v/quant) * quant
			}
			pts[i] = series.Point{Time: now, Value: val}
			d := int64(step)
			if jitter > 0 {
				d += rng.Int63n(2*jitter+1) - jitter
				if d < 0 {
					d = 0
				}
			}
			now = now.Add(time.Duration(d))
		}
		checkRoundTrip(t, pts)
	}
}

// TestBlockRejectsOutOfOrder pins the ordering contract: a decreasing
// timestamp is refused with ErrOutOfOrder, leaves the block intact, and
// equal timestamps (duplicate polls) are accepted.
func TestBlockRejectsOutOfOrder(t *testing.T) {
	b := NewBlockBuilder()
	if err := b.Append(blockEpoch, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(blockEpoch.Add(time.Second), 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(blockEpoch, 3); err != ErrOutOfOrder {
		t.Fatalf("out-of-order append: got %v, want ErrOutOfOrder", err)
	}
	if err := b.Append(blockEpoch.Add(time.Second), 4); err != nil {
		t.Fatalf("equal-timestamp append after rejection: %v", err)
	}
	got, err := b.Finish().Points(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Value != 4 {
		t.Fatalf("rejected append leaked into the block: %+v", got)
	}
}

// TestBlockRejectsTimeRange pins the UnixNano-representability contract.
func TestBlockRejectsTimeRange(t *testing.T) {
	b := NewBlockBuilder()
	tooOld := time.Date(1600, 1, 1, 0, 0, 0, 0, time.UTC)
	tooNew := time.Date(2400, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := b.Append(tooOld, 1); err != ErrTimeRange {
		t.Fatalf("pre-1678 append: got %v, want ErrTimeRange", err)
	}
	if err := b.Append(tooNew, 1); err != ErrTimeRange {
		t.Fatalf("post-2262 append: got %v, want ErrTimeRange", err)
	}
	if b.Len() != 0 {
		t.Fatalf("rejected appends changed the block: len %d", b.Len())
	}
}

// TestBlockBytesPerPointDiurnal is the acceptance bar: a realistic
// diurnal workload — a quantized daily-rhythm gauge polled on a regular
// grid — compresses to at most 2 bytes per point (a []Point slice costs
// 32). The measured figure is recorded in BENCH_ingest.json.
func TestBlockBytesPerPointDiurnal(t *testing.T) {
	pts := diurnalWorkload(4096)
	blk := checkRoundTrip(t, pts)
	bpp := float64(blk.Size()) / float64(blk.Len())
	t.Logf("diurnal workload: %d points, %d bytes, %.3f bytes/point (%.1fx vs 32-byte Points)",
		blk.Len(), blk.Size(), bpp, 32/bpp)
	if bpp > 2.0 {
		t.Fatalf("compressed diurnal workload costs %.3f bytes/point, want <= 2", bpp)
	}
}

// diurnalWorkload builds the canonical serving-path test signal: a
// diurnal-harmonic gauge (fundamental plus two harmonics) polled every
// 30 s and quantized to the sensor step, the regime the paper treats as
// the telemetry baseline.
func diurnalWorkload(n int) []series.Point {
	const (
		f0    = 1.0 / 86400 // one cycle per day
		step  = 30 * time.Second
		quant = 1.0 / 64 // sensor quantum (power of two keeps mantissas short)
	)
	pts := make([]series.Point, n)
	for i := range pts {
		ts := float64(i) * step.Seconds()
		v := 40 + 8*math.Sin(2*math.Pi*f0*ts) + 3*math.Sin(2*math.Pi*3*f0*ts+1) +
			1.5*math.Sin(2*math.Pi*8*f0*ts+2)
		pts[i] = series.Point{
			Time:  blockEpoch.Add(time.Duration(i) * step),
			Value: math.Round(v/quant) * quant,
		}
	}
	return pts
}

// TestBucketBlockRoundTrip covers the summary-tier codec: regular and
// retuned (width-changing) bucket runs round-trip exactly.
func TestBucketBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(100)
		width := time.Duration(1+rng.Intn(600)) * time.Second
		start := blockEpoch.Add(time.Duration(rng.Int63n(int64(time.Hour))))
		in := make([]bucket, n)
		for i := range in {
			if rng.Intn(20) == 0 {
				width = time.Duration(1+rng.Intn(600)) * time.Second // retune
			}
			lo := rng.NormFloat64() * 10
			in[i] = bucket{
				start: start,
				end:   start.Add(width),
				min:   lo,
				max:   lo + rng.Float64()*5,
				sum:   lo * float64(1+rng.Intn(10)),
				count: int64(1 + rng.Intn(32)),
			}
			start = start.Add(width)
		}
		bb := newBucketBlockBuilder()
		for i, bk := range in {
			if err := bb.append(bk); err != nil {
				t.Fatalf("trial %d: append %d: %v", trial, i, err)
			}
		}
		sealed := bb.finish()
		var got []bucket
		if err := sealed.each(func(bk bucket) { got = append(got, bk) }); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: decoded %d buckets, want %d", trial, len(got), n)
		}
		for i := range in {
			a, b := in[i], got[i]
			if !a.start.Equal(b.start) || !a.end.Equal(b.end) ||
				math.Float64bits(a.min) != math.Float64bits(b.min) ||
				math.Float64bits(a.max) != math.Float64bits(b.max) ||
				math.Float64bits(a.sum) != math.Float64bits(b.sum) ||
				a.count != b.count {
				t.Fatalf("trial %d: bucket %d mismatch:\n got %+v\nwant %+v", trial, i, b, a)
			}
		}
	}
}

// TestBlockIterConcurrent pins the share-safety contract Block promises:
// many goroutines iterating one block see identical, uncorrupted data.
func TestBlockIterConcurrent(t *testing.T) {
	pts := diurnalWorkload(1024)
	blk, err := EncodeBlock(pts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			got, err := blk.Points(nil)
			if err == nil && len(got) != len(pts) {
				err = ErrCorruptBlock
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
