package tsdb

import (
	"testing"
	"time"

	"repro/internal/series"
)

// FuzzQueryRange drives a small, aggressively compacting DB through
// random interleavings of appends, retention retunes (which cascade raw
// samples through the tiers) and range queries, and checks the query
// contract on every step:
//
//   - timestamps are monotonically non-decreasing after tier stitching,
//   - no returned point starts at or after the window's end,
//   - only bucket summaries (whose [start, end) coverage may legitimately
//     straddle the window start) ever carry timestamps before `from`;
//     raw samples are strictly in-window,
//   - a point budget is never exceeded, and Thinned is set iff it bit.
func FuzzQueryRange(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x42, 0x02, 0x80, 0x03, 0x00, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x01, 0x02, 0x02, 0x03, 0x03, 0x07})
	f.Add([]byte("append-cascade-query-interleaving"))

	f.Fuzz(func(t *testing.T, data []byte) {
		db := New(Config{
			Shards: 2,
			// Tiny capacities so a short op stream reaches the cascade
			// and the last tier's forgetting path.
			Retention: RetentionConfig{RawCapacity: 8, TierCapacity: 4, Tiers: 2, Fanout: 2},
		})
		const id = "fuzz/series"
		epoch := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
		now := epoch
		var appended int

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 4 {
			case 0: // append one point, time advancing 1..256 s
				now = now.Add(time.Duration(1+int(arg)) * time.Second)
				db.Append(id, series.Point{Time: now, Value: float64(int8(arg))})
				appended++
			case 1: // append a uniform block of up to 8 samples
				n := 1 + int(arg%8)
				vals := make([]float64, n)
				for k := range vals {
					vals[k] = float64(arg) + float64(k)
				}
				db.AppendUniform(id, &series.Uniform{
					Start:    now.Add(time.Second),
					Interval: time.Duration(1+int(arg%4)) * time.Second,
					Values:   vals,
				})
				now = now.Add(time.Duration(n*(1+int(arg%4))) * time.Second)
				appended += n
			case 2: // retune retention from a pseudo-Nyquist estimate
				rate := 1.0 / float64(1+int(arg))
				db.SetNyquistRate(id, rate)
			case 3: // query a window derived from the op stream
				if appended == 0 {
					continue
				}
				span := now.Sub(epoch)
				from := epoch.Add(span * time.Duration(arg%16) / 16)
				to := from.Add(span/time.Duration(1+arg%8) + time.Second)
				budget := 0
				if arg%3 == 0 {
					budget = 1 + int(arg%32)
				}
				res, err := db.Query(id, from, to, budget)
				if err != nil {
					t.Fatalf("query [%v, %v): %v", from, to, err)
				}
				checkQueryResult(t, res, from, to, budget)
			}
		}
		// Full must obey the same ordering contract.
		if appended > 0 {
			res, err := db.Full(id)
			if err != nil {
				t.Fatalf("full: %v", err)
			}
			checkQueryResult(t, res, time.Time{}, time.Time{}, 0)
		}
	})
}

func checkQueryResult(t *testing.T, res *QueryResult, from, to time.Time, budget int) {
	t.Helper()
	// Aggregates carry the (unthinned) bucket points; any stitched point
	// not on that grid came from the raw ring and must be strictly
	// in-window.
	bucketTimes := make(map[time.Time]bool, len(res.Aggregates))
	for _, a := range res.Aggregates {
		bucketTimes[a.Time] = true
	}
	var prev time.Time
	for i, p := range res.Points {
		if i > 0 && p.Time.Before(prev) {
			t.Fatalf("point %d at %v precedes point %d at %v — non-monotonic stitch", i, p.Time, i-1, prev)
		}
		prev = p.Time
		if !to.IsZero() && !p.Time.Before(to) {
			t.Fatalf("point %d at %v at/after window end %v", i, p.Time, to)
		}
		if !from.IsZero() && p.Time.Before(from) && !bucketTimes[p.Time] {
			t.Fatalf("raw point %d at %v before window start %v", i, p.Time, from)
		}
	}
	if budget > 0 {
		if len(res.Points) > budget {
			t.Fatalf("query returned %d points over the %d budget", len(res.Points), budget)
		}
		if res.Thinned && len(res.Points) != budget {
			t.Fatalf("thinned result has %d points, budget %d — thinning must hit the budget exactly", len(res.Points), budget)
		}
	}
	prev = time.Time{}
	for i, a := range res.Aggregates {
		if i > 0 && a.Time.Before(prev) {
			t.Fatalf("aggregate %d at %v precedes aggregate %d — non-monotonic", i, a.Time, i-1)
		}
		prev = a.Time
		if a.Count <= 0 {
			t.Fatalf("aggregate %d summarizes %d samples", i, a.Count)
		}
		if a.Min > a.Max || a.Mean < a.Min || a.Mean > a.Max {
			t.Fatalf("aggregate %d min/mean/max inconsistent: %v/%v/%v", i, a.Min, a.Mean, a.Max)
		}
	}
}
