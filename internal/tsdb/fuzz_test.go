package tsdb

import (
	"math"
	"testing"
	"time"

	"repro/internal/series"
)

// FuzzQueryRange drives a small, aggressively compacting DB through
// random interleavings of appends, retention retunes (which cascade raw
// samples through the tiers) and range queries, and checks the query
// contract on every step:
//
//   - timestamps are monotonically non-decreasing after tier stitching,
//   - no returned point starts at or after the window's end,
//   - only bucket summaries (whose [start, end) coverage may legitimately
//     straddle the window start) ever carry timestamps before `from`;
//     raw samples are strictly in-window,
//   - a point budget is never exceeded, and Thinned is set iff it bit.
//
// The first input byte selects the storage backend — bit 0 picks
// uncompressed rings vs Gorilla-compressed blocks (CompressBlock), bit 1
// enables the decoded-block cache — so all engine configurations face
// the same interleavings under the same contract (the cache must be
// invisible to results, including across retention evictions).
func FuzzQueryRange(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x42, 0x02, 0x80, 0x03, 0x00, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x01, 0x02, 0x02, 0x03, 0x03, 0x07})
	f.Add([]byte("append-cascade-query-interleaving"))
	f.Add([]byte("Compressed-cascade-query-interleaving"))
	// Compressed + cached (first byte 0x03), with queries (op 3) hitting
	// the same windows twice so the second read serves from the cache.
	f.Add([]byte{0x03, 0x00, 0x10, 0x01, 0x07, 0x00, 0x20, 0x03, 0x06, 0x03, 0x06, 0x03, 0x0c})
	// Cached with reconstruct-style budgets and retention churn (op 0
	// floods force evictions → invalidations).
	f.Add([]byte{0x03, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x03, 0x03, 0x00, 0xff, 0x03, 0x09})

	f.Fuzz(func(t *testing.T, data []byte) {
		compress, cacheBytes := 0, int64(0)
		if len(data) > 0 {
			if data[0]%2 == 1 {
				compress = 4
			}
			if (data[0]>>1)%2 == 1 {
				cacheBytes = 1 << 20
			}
			data = data[1:]
		}
		db := New(Config{
			Shards:     2,
			CacheBytes: cacheBytes,
			// Tiny capacities so a short op stream reaches the cascade
			// and the last tier's forgetting path.
			Retention: RetentionConfig{
				RawCapacity: 8, TierCapacity: 4, Tiers: 2, Fanout: 2,
				CompressBlock: compress,
			},
		})
		const id = "fuzz/series"
		epoch := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
		now := epoch
		var appended int

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 4 {
			case 0: // append one point, time advancing 1..256 s
				now = now.Add(time.Duration(1+int(arg)) * time.Second)
				db.Append(id, series.Point{Time: now, Value: float64(int8(arg))})
				appended++
			case 1: // append a uniform block of up to 8 samples
				n := 1 + int(arg%8)
				vals := make([]float64, n)
				for k := range vals {
					vals[k] = float64(arg) + float64(k)
				}
				db.AppendUniform(id, &series.Uniform{
					Start:    now.Add(time.Second),
					Interval: time.Duration(1+int(arg%4)) * time.Second,
					Values:   vals,
				})
				now = now.Add(time.Duration(n*(1+int(arg%4))) * time.Second)
				appended += n
			case 2: // retune retention from a pseudo-Nyquist estimate
				rate := 1.0 / float64(1+int(arg))
				db.SetNyquistRate(id, rate)
			case 3: // query a window derived from the op stream
				if appended == 0 {
					continue
				}
				span := now.Sub(epoch)
				from := epoch.Add(span * time.Duration(arg%16) / 16)
				to := from.Add(span/time.Duration(1+arg%8) + time.Second)
				budget := 0
				if arg%3 == 0 {
					budget = 1 + int(arg%32)
				}
				res, err := db.Query(id, from, to, budget)
				if err != nil {
					t.Fatalf("query [%v, %v): %v", from, to, err)
				}
				checkQueryResult(t, res, from, to, budget)
				// The pattern fan-in must answer the same window under the
				// same contract (one series stored → at most one result).
				mres := db.QueryMatch("fuzz/*", from, to, budget, 4)
				if mres.Matches > 1 || len(mres.Results) != mres.Matches {
					t.Fatalf("match: %d matches, %d results for a single stored series", mres.Matches, len(mres.Results))
				}
				for _, r := range mres.Results {
					checkQueryResult(t, r, from, to, budget)
				}
			}
		}
		// Full must obey the same ordering contract.
		if appended > 0 {
			res, err := db.Full(id)
			if err != nil {
				t.Fatalf("full: %v", err)
			}
			checkQueryResult(t, res, time.Time{}, time.Time{}, 0)
		}
	})
}

func checkQueryResult(t *testing.T, res *QueryResult, from, to time.Time, budget int) {
	t.Helper()
	// Aggregates carry the (unthinned) bucket points; any stitched point
	// not on that grid came from the raw ring and must be strictly
	// in-window.
	bucketTimes := make(map[time.Time]bool, len(res.Aggregates))
	for _, a := range res.Aggregates {
		bucketTimes[a.Time] = true
	}
	var prev time.Time
	for i, p := range res.Points {
		if i > 0 && p.Time.Before(prev) {
			t.Fatalf("point %d at %v precedes point %d at %v — non-monotonic stitch", i, p.Time, i-1, prev)
		}
		prev = p.Time
		if !to.IsZero() && !p.Time.Before(to) {
			t.Fatalf("point %d at %v at/after window end %v", i, p.Time, to)
		}
		if !from.IsZero() && p.Time.Before(from) && !bucketTimes[p.Time] {
			t.Fatalf("raw point %d at %v before window start %v", i, p.Time, from)
		}
	}
	if budget > 0 {
		if len(res.Points) > budget {
			t.Fatalf("query returned %d points over the %d budget", len(res.Points), budget)
		}
		if res.Thinned && len(res.Points) != budget {
			t.Fatalf("thinned result has %d points, budget %d — thinning must hit the budget exactly", len(res.Points), budget)
		}
	}
	prev = time.Time{}
	for i, a := range res.Aggregates {
		if i > 0 && a.Time.Before(prev) {
			t.Fatalf("aggregate %d at %v precedes aggregate %d — non-monotonic", i, a.Time, i-1)
		}
		prev = a.Time
		if a.Count <= 0 {
			t.Fatalf("aggregate %d summarizes %d samples", i, a.Count)
		}
		if a.Min > a.Max || a.Mean < a.Min || a.Mean > a.Max {
			t.Fatalf("aggregate %d min/mean/max inconsistent: %v/%v/%v", i, a.Min, a.Mean, a.Max)
		}
	}
}

// FuzzBlockRoundTrip drives the Gorilla point codec with fuzzer-chosen
// timestamp gaps (spanning nanosecond jitter to decade shifts, including
// deliberate out-of-order attempts) and raw float64 bit patterns, and
// checks the codec's whole contract:
//
//   - accepted points decode back bit-exactly (same UnixNano instant,
//     identical value bits — NaN payloads included),
//   - a decreasing timestamp is rejected with ErrOutOfOrder and leaves
//     the block untouched,
//   - block metadata (Len, First, Last) matches the accepted points.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("regular-grid-then-jitter-then-a-big-shift-0123456789abcdef"))
	seed := make([]byte, 0, 8*12)
	for i := 0; i < 8; i++ {
		seed = append(seed, 0x02, 0x00, 0x00, byte(i), 0x7f, 0xf8, 0, 0, 0, 0, 0, byte(i))
	}
	f.Add(seed) // NaN payload walk on a near-regular microsecond grid

	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBlockBuilder()
		var want []series.Point
		nano := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).UnixNano()
		last := nano
		// 12-byte records: 1 flag byte, 3-byte gap, 8-byte value bits.
		for i := 0; i+12 <= len(data); i += 12 {
			flags := data[i]
			gap := int64(data[i+1])<<16 | int64(data[i+2])<<8 | int64(data[i+3])
			// Scale the gap by the flag's unit: ns, µs, s, or 10^4 s —
			// the last one walks toward (and past) the int64 range.
			switch (flags >> 1) % 4 {
			case 1:
				gap *= 1_000
			case 2:
				gap *= 1_000_000_000
			case 3:
				gap *= 10_000_000_000_000
			}
			if flags&1 == 1 {
				gap = -gap // an out-of-order (or duplicate) attempt
			}
			nano += gap // deliberate wrap-around is fine: it must be rejected below
			var vbits uint64
			for k := 0; k < 8; k++ {
				vbits = vbits<<8 | uint64(data[i+4+k])
			}
			v := math.Float64frombits(vbits)
			// An empty block accepts any starting timestamp; ordering
			// only binds from the second point on.
			wantReject := b.Len() > 0 && nano < last
			err := b.Append(time.Unix(0, nano), v)
			if wantReject {
				if err != ErrOutOfOrder {
					t.Fatalf("append at %d after %d: got %v, want ErrOutOfOrder", nano, last, err)
				}
				nano = last // the builder must be untouched; resync our mirror
				continue
			}
			if err != nil {
				t.Fatalf("in-order append at %d: %v", nano, err)
			}
			last = nano
			want = append(want, series.Point{Time: time.Unix(0, nano), Value: v})
		}
		blk := b.Finish()
		if blk.Len() != len(want) {
			t.Fatalf("block len %d, want %d", blk.Len(), len(want))
		}
		got, err := blk.Points(nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d points, want %d", len(got), len(want))
		}
		for i := range want {
			if !got[i].Time.Equal(want[i].Time) {
				t.Fatalf("point %d: time %v, want %v", i, got[i].Time, want[i].Time)
			}
			if math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
				t.Fatalf("point %d: value bits %016x, want %016x",
					i, math.Float64bits(got[i].Value), math.Float64bits(want[i].Value))
			}
		}
		if len(want) > 0 {
			if !blk.First().Equal(want[0].Time) || !blk.Last().Equal(want[len(want)-1].Time) {
				t.Fatalf("block bounds [%v, %v], want [%v, %v]",
					blk.First(), blk.Last(), want[0].Time, want[len(want)-1].Time)
			}
		}
	})
}
