// The decoded-block LRU: the read-path half of the compression bargain.
// Sealed Gorilla blocks make retention cheap, but every query over
// history pays a full block decode per sealed segment — and dashboards
// ask for the same hot ranges over and over. Each shard owns a small
// bounded-bytes cache of decoded point slices keyed by the segment's
// unique seal sequence number, so a hot range pays the codec once and
// is served from memory after that. Entries are immutable once
// inserted (readers share the slice, never mutate it), invalidated
// when their segment is evicted from retention, and LRU-evicted when
// the byte budget fills. Keys are never reused — a segment that left
// retention can never be confused with a new one.
package tsdb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/series"
)

// segSeq hands out process-unique cache keys for sealed segments. Seal
// and snapshot-restore both assign from it; 0 is reserved for "not
// cacheable" (fallback segments, pre-cache stores).
var segSeq atomic.Uint64

func nextSegSeq() uint64 { return segSeq.Add(1) }

// Per-entry cost accounting: a decoded series.Point is 32 bytes
// (24-byte time.Time + float64), plus a flat allowance for the slice
// header, map slot and list element.
const (
	cachePointBytes    = 32
	cacheEntryOverhead = 96
)

// blockCache is one shard's decoded-block LRU. It is locked
// independently of the shard mutex; the only ordering is shard lock →
// cache lock (query and invalidation paths), never the reverse.
type blockCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[uint64]*list.Element

	hits, misses, evictions, invalidations atomic.Int64
}

type cacheEntry struct {
	seq  uint64
	pts  []series.Point
	cost int64
}

func newBlockCache(maxBytes int64) *blockCache {
	return &blockCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[uint64]*list.Element),
	}
}

// get returns the decoded points for seq, promoting the entry. The
// returned slice is shared and must be treated as immutable.
func (c *blockCache) get(seq uint64) ([]series.Point, bool) {
	c.mu.Lock()
	el, ok := c.entries[seq]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	pts := el.Value.(*cacheEntry).pts
	c.mu.Unlock()
	c.hits.Add(1)
	return pts, true
}

// put inserts the decoded points for seq, LRU-evicting until the byte
// budget holds. A slice costing more than the whole budget is not
// cached at all (it would evict everything and then miss next time
// anyway).
func (c *blockCache) put(seq uint64, pts []series.Point) {
	cost := cacheEntryOverhead + cachePointBytes*int64(len(pts))
	if cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	if _, ok := c.entries[seq]; ok {
		c.mu.Unlock()
		return
	}
	c.entries[seq] = c.ll.PushFront(&cacheEntry{seq: seq, pts: pts, cost: cost})
	c.bytes += cost
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, e.seq)
		c.bytes -= e.cost
		c.evictions.Add(1)
	}
	c.mu.Unlock()
}

// invalidate drops seq's entry, if cached — called when the segment is
// evicted from retention, so the cache never outlives the data.
func (c *blockCache) invalidate(seq uint64) {
	if seq == 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[seq]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, seq)
		c.bytes -= e.cost
		c.invalidations.Add(1)
	}
	c.mu.Unlock()
}

// snapshot reports the cache's current occupancy.
func (c *blockCache) snapshot() (bytes int64, entries int) {
	c.mu.Lock()
	bytes, entries = c.bytes, c.ll.Len()
	c.mu.Unlock()
	return bytes, entries
}

// CacheStats aggregates the decoded-block caches for operator
// reporting (zero-valued when the cache is disabled).
type CacheStats struct {
	// MaxBytes is the configured budget across all shards (0 = cache
	// disabled).
	MaxBytes int64
	// Bytes and Entries describe current occupancy.
	Bytes   int64
	Entries int
	// Hits and Misses count lookups; Evictions counts LRU evictions at
	// the byte budget and Invalidations counts entries dropped because
	// their segment left retention.
	Hits, Misses, Evictions, Invalidations int64
}
