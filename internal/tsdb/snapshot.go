// Export/restore of per-series state: the iteration hooks the durability
// layer (internal/wal) uses to write block snapshots and to rebuild a
// store on boot. A SeriesSnapshot is a faithful copy of one memSeries —
// sealed raw blocks verbatim (they are already the byte-exact,
// self-delimiting persistence unit), the unsealed active tail as plain
// points, and every retention tier's finalized buckets plus its open
// bucket — so restore followed by the same appends is indistinguishable
// from never having restarted.

package tsdb

import (
	"time"

	"repro/internal/series"
)

// SeriesSnapshot is one series' complete retention state, as exported by
// ExportSeries and accepted by RestoreSeries.
type SeriesSnapshot struct {
	// ID is the series id.
	ID string
	// NyquistRate is the recorded estimate in hertz (0 = none).
	NyquistRate float64
	// Gap is the inter-sample EWMA that seeds tier widths while no
	// Nyquist estimate exists.
	Gap time.Duration
	// LastTime/HaveLast reproduce the strict-append ordering watermark.
	LastTime time.Time
	HaveLast bool
	// Appends, Compacted and Dropped mirror the per-series counters.
	Appends, Compacted, Dropped int64
	// Raw holds the sealed raw segments, oldest first (compressed stores
	// only; uncompressed rings export everything through Active).
	Raw []RawSegment
	// Active is the unsealed raw tail (or, for uncompressed stores, the
	// whole ring), oldest first.
	Active []series.Point
	// Tiers describes each downsampled tier, finest first.
	Tiers []TierSnapshot
}

// RawSegment is one sealed raw segment: a compressed Block, or — only
// when the codec had refused the data (timestamps outside the
// int64-nanosecond range) — a verbatim point slice.
type RawSegment struct {
	// Points is the verbatim fallback; nil when Block carries the data.
	Points []series.Point
	// Block is the sealed compressed run (valid when Points is nil).
	Block Block
}

// TierSnapshot is one retention tier's state.
type TierSnapshot struct {
	// Width is the tier's current bucket width.
	Width time.Duration
	// Buckets holds the finalized buckets, oldest first.
	Buckets []BucketSnapshot
	// Cur is the in-progress bucket, nil when none is open.
	Cur *BucketSnapshot
}

// BucketSnapshot is one aggregated bucket.
type BucketSnapshot struct {
	Start, End time.Time
	Min, Max   float64
	Sum        float64
	Count      int64
}

func bucketSnapOf(b bucket) BucketSnapshot {
	return BucketSnapshot{Start: b.start, End: b.end, Min: b.min, Max: b.max, Sum: b.sum, Count: b.count}
}

func (bs BucketSnapshot) bucket() bucket {
	return bucket{start: bs.Start, end: bs.End, min: bs.Min, max: bs.Max, sum: bs.Sum, count: bs.Count}
}

// ExportSeries calls fn once per stored series with its full retention
// state. Each shard is read-locked for the duration of its series'
// exports, so fn should only encode and hand off (writers to that shard
// stall while it runs); a non-nil error from fn aborts the export.
// Sealed blocks are exported by reference — Block data is immutable — so
// exporting does not copy compressed history.
func (db *DB) ExportSeries(fn func(SeriesSnapshot) error) error {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for id, m := range sh.series {
			if err := fn(m.export(id)); err != nil {
				sh.mu.RUnlock()
				return err
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// export builds the snapshot of one series. Caller holds the shard lock.
func (m *memSeries) export(id string) SeriesSnapshot {
	s := SeriesSnapshot{
		ID:          id,
		NyquistRate: m.nyquist,
		Gap:         m.gap,
		LastTime:    m.lastTime,
		HaveLast:    m.haveLast,
		Appends:     m.appends,
		Compacted:   m.compacted,
		Dropped:     m.dropped,
	}
	if m.raw != nil {
		for i := 0; i < m.raw.size(); i++ {
			s.Active = append(s.Active, m.raw.at(i))
		}
	} else {
		for i := range m.craw.segs {
			seg := &m.craw.segs[i]
			if seg.pts != nil {
				s.Raw = append(s.Raw, RawSegment{Points: append([]series.Point(nil), seg.pts...)})
			} else {
				s.Raw = append(s.Raw, RawSegment{Block: seg.blk})
			}
		}
		s.Active = append([]series.Point(nil), m.craw.active...)
	}
	for _, t := range m.tiers {
		ts := TierSnapshot{Width: t.width}
		t.each(time.Time{}, time.Time{}, func(b bucket) {
			ts.Buckets = append(ts.Buckets, bucketSnapOf(b))
		})
		if t.curSet {
			c := bucketSnapOf(t.cur)
			ts.Cur = &c
		}
		s.Tiers = append(s.Tiers, ts)
	}
	return s
}

// RestoreSeries installs an exported series state, replacing any series
// with the same id. Restore is a boot-time operation: it is safe against
// concurrent access to other series, but racing appends to the id being
// restored lose. When the DB's retention config matches the exporting
// one (the normal restart), the structure is rebuilt verbatim; when the
// compression mode changed, points are converted through the regular
// append path, cascading overflow into the (already restored) tiers.
func (db *DB) RestoreSeries(s SeriesSnapshot) error {
	rc := &db.cfg.Retention
	m := newMemSeries(rc)
	m.nyquist = s.NyquistRate
	m.gap = s.Gap
	m.lastTime, m.haveLast = s.LastTime, s.HaveLast
	m.appends, m.compacted, m.dropped = s.Appends, s.Compacted, s.Dropped

	// Tiers first — deepest first, so any evictions a shallower tier's
	// restore causes cascade onto already-restored deeper buckets in
	// time order.
	if len(s.Tiers) > 0 && rc.Tiers > 0 {
		m.tiers = make([]*tier, len(s.Tiers))
		for k := range s.Tiers {
			m.tiers[k] = newTier(s.Tiers[k].Width, rc)
		}
		for k := len(s.Tiers) - 1; k >= 0; k-- {
			t := m.tiers[k]
			for _, bs := range s.Tiers[k].Buckets {
				for _, ev := range t.push(bs.bucket()) {
					if k+1 < len(m.tiers) {
						m.ingest(k+1, ev)
					} else {
						m.dropped += ev.count
					}
				}
			}
			if s.Tiers[k].Cur != nil {
				t.cur = s.Tiers[k].Cur.bucket()
				t.curSet = true
			}
		}
	}

	if m.craw != nil {
		for _, seg := range s.Raw {
			if seg.Points != nil {
				if len(seg.Points) == 0 {
					continue
				}
				pts := append([]series.Point(nil), seg.Points...)
				m.craw.segs = append(m.craw.segs, pointSeg{
					pts:    pts,
					firstT: pts[0].Time,
					lastT:  pts[len(pts)-1].Time,
				})
				m.craw.n += len(pts)
			} else {
				if seg.Block.Len() == 0 {
					continue
				}
				m.craw.segs = append(m.craw.segs, pointSeg{blk: seg.Block, seq: nextSegSeq()})
				m.craw.n += seg.Block.Len()
			}
		}
		// The active tail re-enters through push so an oversized tail
		// (smaller block length after a config change) re-seals; blocks
		// sealed during restore are already covered by the snapshot, so
		// their hook queue is discarded, not replayed into the WAL.
		for _, p := range s.Active {
			for _, ev := range m.craw.push(p) {
				m.compact(ev, rc)
			}
		}
		m.craw.takeSealed()
	} else {
		// Uncompressed ring: decode everything back into points, oldest
		// first, and let the ring evict/cascade if the capacity shrank.
		emit := func(p series.Point) {
			if ev, wasEvicted := m.raw.push(p); wasEvicted {
				m.compact(ev, rc)
			}
		}
		for _, seg := range s.Raw {
			if seg.Points != nil {
				for _, p := range seg.Points {
					emit(p)
				}
				continue
			}
			pts, err := seg.Block.Points(nil)
			if err != nil {
				return err
			}
			for _, p := range pts {
				emit(p)
			}
		}
		for _, p := range s.Active {
			emit(p)
		}
	}

	sh := db.shardFor(s.ID)
	sh.mu.Lock()
	sh.series[s.ID] = m
	sh.mu.Unlock()
	return nil
}
