// Shard-affinity batched appends: the write-path counterpart of
// AppendUniform for mixed-series batches. The serving layer parses a
// whole ingest batch before touching the store; AppendBatch then groups
// the batch's points by their FNV target shard and flushes each group
// under a single shard-lock acquisition — one lock round-trip per shard
// per batch instead of one per point. Per-series arrival order is
// preserved: a series maps to exactly one shard, the grouping scatter is
// stable, and each shard's group is applied in arrival order, so the
// strict-append verdict for every point is identical to what a per-point
// Append loop would have produced.

package tsdb

import (
	"sync"

	"repro/internal/series"
)

// BatchPoint is one point of an AppendBatch call. Err is an output: nil
// after the call means the point landed; under StrictAppend a refused
// point carries ErrOutOfOrder/ErrTimeRange exactly as Append would have
// returned it. Writing verdicts in place keeps the batch path free of
// per-call result allocations.
type BatchPoint struct {
	ID  string
	P   series.Point
	Err error
}

// batchScratch is the pooled grouping state of one AppendBatch call: a
// counting-sort of point indexes by target shard. Pooled so steady-state
// batches allocate nothing for grouping.
type batchScratch struct {
	shardOf []uint32 // target shard per point
	counts  []int32  // points per shard
	offs    []int32  // running scatter offsets per shard
	bounds  []int32  // group end offsets per shard (start = previous end)
	order   []int32  // point indexes grouped by shard, arrival order within
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) size(points, shards int) {
	if cap(sc.shardOf) < points {
		sc.shardOf = make([]uint32, points)
		sc.order = make([]int32, points)
	}
	sc.shardOf = sc.shardOf[:points]
	sc.order = sc.order[:points]
	if cap(sc.counts) < shards {
		sc.counts = make([]int32, shards)
		sc.offs = make([]int32, shards)
		sc.bounds = make([]int32, shards)
	}
	sc.counts = sc.counts[:shards]
	sc.offs = sc.offs[:shards]
	sc.bounds = sc.bounds[:shards]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
}

// AppendBatch appends every point of the batch, grouping points by
// target shard so each touched shard's lock is taken once for the whole
// batch. Each point's verdict is written to its Err field (always nil in
// lenient mode; ErrOutOfOrder/ErrTimeRange under StrictAppend), and the
// number of accepted points is returned. Points of the same series are
// applied in slice order, so per-series verdicts — and the per-series
// seal order the WAL hook observes — match a sequential Append loop
// exactly. Points of distinct series interleave differently than a
// sequential loop would (shard by shard instead of arrival order), which
// no contract observes: series are independent everywhere downstream.
//
//nyquist:hotpath
func (db *DB) AppendBatch(pts []BatchPoint) (accepted int) {
	if len(pts) == 0 {
		return 0
	}
	shards := uint32(len(db.shards))
	sc := batchScratchPool.Get().(*batchScratch)
	//nyquist:allow-alloc pooled scratch grows to the largest batch seen, then is reused
	sc.size(len(pts), int(shards))
	for i := range pts {
		s := fnv32a(pts[i].ID) % shards
		sc.shardOf[i] = s
		sc.counts[s]++
	}
	off := int32(0)
	for s := range sc.counts {
		sc.offs[s] = off
		off += sc.counts[s]
		sc.bounds[s] = off
	}
	for i := range pts {
		s := sc.shardOf[i]
		sc.order[sc.offs[s]] = int32(i)
		sc.offs[s]++
	}
	start := int32(0)
	for s := 0; s < int(shards); s++ {
		end := sc.bounds[s]
		if start == end {
			continue
		}
		sh := &db.shards[s]
		sh.mu.Lock()
		var m *memSeries
		lastID := ""
		for _, idx := range sc.order[start:end] {
			bp := &pts[idx]
			// Same-series runs reuse the resolved series and defer the
			// seal-hook drain to the run boundary; the hook still sees
			// per-series seal order (everything here is under the lock).
			if m == nil || bp.ID != lastID {
				if m != nil {
					db.drainSealed(sh, lastID, m)
				}
				m = sh.getOrCreate(bp.ID, &db.cfg.Retention)
				lastID = bp.ID
			}
			bp.Err = m.append(bp.P, &db.cfg.Retention, db.cfg.StrictAppend)
			if bp.Err == nil {
				accepted++
			}
		}
		if m != nil {
			db.drainSealed(sh, lastID, m)
		}
		sh.mu.Unlock()
		start = end
	}
	batchScratchPool.Put(sc)
	return accepted
}
