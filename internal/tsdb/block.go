// The compressed-block codec: Gorilla-style delta-of-delta timestamps and
// XOR-chained values packed into a bit stream, the format that lets a
// network-facing store hold roughly an order of magnitude more points per
// byte than []Point slices.
//
// The scheme follows Facebook's Gorilla (VLDB 2015), adapted to
// nanosecond timestamps:
//
//   - The first point's timestamp and value are stored verbatim (64 bits
//     each). Every later timestamp stores the delta-of-delta — the change
//     in inter-sample spacing — which is exactly zero on a regular poll
//     grid. A zero costs one bit; jittered grids cost a few bytes; an
//     arbitrary shift falls back to a full 64-bit field.
//
//   - Every later value stores the XOR against its predecessor. Repeated
//     readings (idle counters, quantized gauges — most of a production
//     fleet) cost one bit; slowly moving readings share sign, exponent
//     and high mantissa bits and store only the short meaningful window.
//
// Both encodings are bijective: decoding returns the exact UnixNano
// instants and bit-identical float64 values that were appended, NaN
// payloads included. Blocks refuse decreasing timestamps (equal stamps
// are allowed — production pollers do emit duplicates) and timestamps
// outside the int64-nanosecond range; both come back as ErrOutOfOrder /
// ErrTimeRange so callers can seal and start a fresh block.
//
// This comment documents the file; the package doc lives in tsdb.go.

package tsdb

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"repro/internal/series"
)

var (
	// ErrOutOfOrder is returned by BlockBuilder.Append for a timestamp
	// earlier than the previous one. Blocks are time-ordered by
	// construction; callers seal the block and start a new one instead.
	ErrOutOfOrder = errors.New("tsdb: block append out of order")
	// ErrTimeRange is returned for timestamps not representable as
	// int64 nanoseconds since the Unix epoch (roughly years 1678–2262).
	ErrTimeRange = errors.New("tsdb: timestamp outside int64-nanosecond range")
	// ErrCorruptBlock is returned when decoding runs off the end of the
	// bit stream or decodes more points than the block holds.
	ErrCorruptBlock = errors.New("tsdb: corrupt block")
)

// unixNanoSafe reports whether t survives a UnixNano round trip.
func unixNanoSafe(t time.Time) bool {
	// time.Unix(0, n) covers 1678-09-21 .. 2262-04-11; compare against
	// the representable extremes directly.
	return !t.Before(minUnixNano) && !t.After(maxUnixNano)
}

var (
	minUnixNano = time.Unix(0, math.MinInt64)
	maxUnixNano = time.Unix(0, math.MaxInt64)
)

// bitWriter packs MSB-first bit fields into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	free uint // bits still free in cur (8 when cur is empty)
}

func newBitWriter() *bitWriter { return &bitWriter{free: 8} }

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// writeBits appends the low n bits of v, most significant first. n ≤ 64.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		take := n
		if take > w.free {
			take = w.free
		}
		shift := n - take
		chunk := byte(v>>shift) & byte((1<<take)-1)
		w.cur |= chunk << (w.free - take)
		w.free -= take
		n -= take
		if w.free == 0 {
			w.buf = append(w.buf, w.cur)
			w.cur = 0
			w.free = 8
		}
	}
}

// bytes returns the encoded stream, flushing any partial byte.
func (w *bitWriter) bytes() []byte {
	if w.free == 8 {
		return w.buf
	}
	return append(w.buf, w.cur)
}

// size returns the current encoded size in bytes, counting a partial
// byte as a full one.
func (w *bitWriter) size() int {
	n := len(w.buf)
	if w.free != 8 {
		n++
	}
	return n
}

// bitReader consumes MSB-first bit fields from a byte slice. It is a
// value type so concurrent readers can each iterate a shared block
// without touching shared state.
type bitReader struct {
	data []byte
	byte int  // index of the next byte to load from
	left uint // bits not yet consumed in data[byte]
	err  error
}

func newBitReader(data []byte) bitReader {
	r := bitReader{data: data}
	if len(data) > 0 {
		r.left = 8
	}
	return r
}

func (r *bitReader) readBit() uint64 { return r.readBits(1) }

// readBits returns the next n bits as the low bits of a uint64. On
// underflow it sets err and returns 0.
func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		if r.byte >= len(r.data) {
			r.err = ErrCorruptBlock
			return 0
		}
		take := n
		if take > r.left {
			take = r.left
		}
		shift := r.left - take
		chunk := (r.data[r.byte] >> shift) & byte((1<<take)-1)
		v = v<<take | uint64(chunk)
		r.left -= take
		n -= take
		if r.left == 0 {
			r.byte++
			r.left = 8
		}
	}
	return v
}

// zigzag maps signed to unsigned so small-magnitude values of either
// sign get small codes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Delta-of-delta bucket sizes. Nanosecond grids make the classic Gorilla
// second-scale buckets useless, so the ladder is: 0 → one bit;
// sub-millisecond jitter → '10' + 21 bits; sub-4-second shifts → '110' +
// 33 bits; anything → '111' + 64 bits. All bucketed fields are zigzagged.
const (
	dodSmallBits = 21
	dodMidBits   = 33
)

// writeDoD appends one delta-of-delta (or any small-signed-int chain
// step: the bucket-block codec reuses it for widths and counts).
func writeDoD(w *bitWriter, dod int64) {
	z := zigzag(dod)
	switch {
	case z == 0:
		w.writeBit(0)
	case z < 1<<dodSmallBits:
		w.writeBits(0b10, 2)
		w.writeBits(z, dodSmallBits)
	case z < 1<<dodMidBits:
		w.writeBits(0b110, 3)
		w.writeBits(z, dodMidBits)
	default:
		w.writeBits(0b111, 3)
		w.writeBits(z, 64)
	}
}

func readDoD(r *bitReader) int64 {
	if r.readBit() == 0 {
		return 0
	}
	if r.readBit() == 0 {
		return unzigzag(r.readBits(dodSmallBits))
	}
	if r.readBit() == 0 {
		return unzigzag(r.readBits(dodMidBits))
	}
	return unzigzag(r.readBits(64))
}

// xorState is one Gorilla XOR value chain: the previous value plus the
// previous meaningful-bit window.
type xorState struct {
	prev     uint64
	leading  uint
	sigbits  uint
	haveWind bool
}

// write encodes v against the chain and advances it.
func (s *xorState) write(w *bitWriter, v uint64) {
	x := v ^ s.prev
	s.prev = v
	if x == 0 {
		w.writeBit(0)
		return
	}
	w.writeBit(1)
	lead := uint(bits.LeadingZeros64(x))
	if lead > 31 {
		lead = 31
	}
	trail := uint(bits.TrailingZeros64(x))
	sig := 64 - lead - trail
	// Reuse the previous window when the new meaningful bits fit inside
	// it — both ends — and it is not grossly oversized (the classic
	// heuristic: a stale wide window would pad every subsequent value).
	if s.haveWind && lead >= s.leading && trail >= 64-s.leading-s.sigbits && s.sigbits < sig+12 {
		w.writeBit(0)
		w.writeBits(x>>(64-s.leading-s.sigbits), s.sigbits)
		return
	}
	w.writeBit(1)
	w.writeBits(uint64(lead), 5)
	w.writeBits(uint64(sig-1), 6)
	w.writeBits(x>>trail, sig)
	s.leading, s.sigbits, s.haveWind = lead, sig, true
}

// read decodes the next value in the chain and advances it.
func (s *xorState) read(r *bitReader) uint64 {
	if r.readBit() == 0 {
		return s.prev
	}
	if r.readBit() == 0 {
		if !s.haveWind {
			r.err = ErrCorruptBlock
			return 0
		}
		x := r.readBits(s.sigbits) << (64 - s.leading - s.sigbits)
		s.prev ^= x
		return s.prev
	}
	lead := uint(r.readBits(5))
	sig := uint(r.readBits(6)) + 1
	if lead+sig > 64 {
		r.err = ErrCorruptBlock
		return 0
	}
	x := r.readBits(sig) << (64 - lead - sig)
	s.prev ^= x
	s.leading, s.sigbits, s.haveWind = lead, sig, true
	return s.prev
}

// BlockBuilder incrementally encodes an append-ordered run of points
// into one compressed block. The zero value is not usable; call
// NewBlockBuilder. Builders are reusable via Reset and are not safe for
// concurrent use.
type BlockBuilder struct {
	w         *bitWriter
	n         int
	firstNano int64
	lastNano  int64
	prevDelta int64
	vals      xorState
}

// NewBlockBuilder returns an empty builder.
func NewBlockBuilder() *BlockBuilder { return &BlockBuilder{w: newBitWriter()} }

// Len returns the number of points appended so far.
func (b *BlockBuilder) Len() int { return b.n }

// Size returns the current encoded size in bytes.
func (b *BlockBuilder) Size() int { return b.w.size() }

// Reset clears the builder for a fresh block, keeping the buffer.
func (b *BlockBuilder) Reset() {
	b.w.buf = b.w.buf[:0]
	b.w.cur, b.w.free = 0, 8
	*b = BlockBuilder{w: b.w}
}

// Append encodes one point. Timestamps must be non-decreasing within a
// block (ErrOutOfOrder otherwise) and representable as int64 nanoseconds
// (ErrTimeRange otherwise); on error the block is unchanged.
func (b *BlockBuilder) Append(t time.Time, v float64) error {
	if !unixNanoSafe(t) {
		return ErrTimeRange
	}
	nano := t.UnixNano()
	if b.n == 0 {
		b.w.writeBits(uint64(nano), 64)
		b.w.writeBits(math.Float64bits(v), 64)
		b.vals.prev = math.Float64bits(v)
		b.firstNano, b.lastNano = nano, nano
		b.n = 1
		return nil
	}
	if nano < b.lastNano {
		return ErrOutOfOrder
	}
	delta := nano - b.lastNano
	writeDoD(b.w, delta-b.prevDelta)
	b.vals.write(b.w, math.Float64bits(v))
	b.prevDelta = delta
	b.lastNano = nano
	b.n++
	return nil
}

// Finish seals the builder into an immutable Block. The builder must be
// Reset before reuse.
func (b *BlockBuilder) Finish() Block {
	data := append([]byte(nil), b.w.bytes()...)
	return Block{data: data, n: b.n, firstNano: b.firstNano, lastNano: b.lastNano}
}

// Block is a sealed compressed run of points. Blocks are immutable and
// safe for concurrent iteration: every iterator carries its own decode
// state.
type Block struct {
	data      []byte
	n         int
	firstNano int64
	lastNano  int64
}

// Len returns the number of points in the block.
func (blk Block) Len() int { return blk.n }

// Size returns the compressed payload size in bytes.
func (blk Block) Size() int { return len(blk.data) }

// Data returns the block's encoded payload. The slice is the block's own
// storage: callers persisting it (write-ahead logs, snapshots) must treat
// it as read-only.
func (blk Block) Data() []byte { return blk.data }

// RebuildBlock reconstitutes a sealed Block from a persisted payload
// (Data) and point count (Len). The whole payload is decoded once to
// validate it and to recover the block's time bounds, so a corrupt or
// truncated payload returns ErrCorruptBlock here rather than surfacing
// later on the query path.
func RebuildBlock(data []byte, n int) (Block, error) {
	if n <= 0 {
		return Block{}, ErrCorruptBlock
	}
	blk := Block{data: data, n: n}
	it := blk.Iter()
	first := true
	for it.Next() {
		if first {
			blk.firstNano = it.nano
			first = false
		}
		blk.lastNano = it.nano
	}
	if err := it.Err(); err != nil {
		return Block{}, err
	}
	if first {
		return Block{}, ErrCorruptBlock
	}
	return blk, nil
}

// First returns the first (oldest) timestamp; meaningless when Len is 0.
func (blk Block) First() time.Time { return time.Unix(0, blk.firstNano) }

// Last returns the last (newest) timestamp; meaningless when Len is 0.
func (blk Block) Last() time.Time { return time.Unix(0, blk.lastNano) }

// Points decodes the whole block, appending to dst (which may be nil).
// Decoded timestamps denote the exact appended instants (Time.Equal
// holds; the wall clock is rebuilt from UnixNano, so the Location
// normalizes and monotonic readings are dropped) and values are
// bit-identical.
func (blk Block) Points(dst []series.Point) ([]series.Point, error) {
	it := blk.Iter()
	for it.Next() {
		dst = append(dst, it.Point())
	}
	return dst, it.Err()
}

// Iter returns a fresh iterator positioned before the first point.
func (blk Block) Iter() BlockIter {
	return BlockIter{r: newBitReader(blk.data), n: blk.n}
}

// BlockIter walks a Block one point at a time without allocating.
type BlockIter struct {
	r         bitReader
	n         int
	i         int
	nano      int64
	prevDelta int64
	vals      xorState
	val       float64
}

// Next advances to the next point, returning false at the end of the
// block or on a decode error (see Err).
func (it *BlockIter) Next() bool {
	if it.i >= it.n || it.r.err != nil {
		return false
	}
	if it.i == 0 {
		it.nano = int64(it.r.readBits(64))
		bits := it.r.readBits(64)
		it.vals.prev = bits
		it.val = math.Float64frombits(bits)
	} else {
		delta := it.prevDelta + readDoD(&it.r)
		it.nano += delta
		it.prevDelta = delta
		it.val = math.Float64frombits(it.vals.read(&it.r))
	}
	if it.r.err != nil {
		return false
	}
	it.i++
	return true
}

// Point returns the current point. Valid only after a true Next.
func (it *BlockIter) Point() series.Point {
	return series.Point{Time: time.Unix(0, it.nano), Value: it.val}
}

// Err returns the decode error that stopped iteration, if any.
func (it *BlockIter) Err() error {
	if it.r.err != nil {
		return fmt.Errorf("%w (point %d of %d)", it.r.err, it.i, it.n)
	}
	return nil
}

// EncodeBlock compresses an append-ordered run of points in one call.
func EncodeBlock(pts []series.Point) (Block, error) {
	b := NewBlockBuilder()
	for _, p := range pts {
		if err := b.Append(p.Time, p.Value); err != nil {
			return Block{}, err
		}
	}
	return b.Finish(), nil
}

// blockBuilderPool recycles encode scratch — the builder struct and its
// bit buffer — across seals. Under sustained ingest every series seals a
// block every CompressBlock points; a fresh builder per seal made the
// seal path the write side's main GC churn.
var blockBuilderPool = sync.Pool{New: func() any { return NewBlockBuilder() }}

// encodeBlockPooled is EncodeBlock with pooled scratch. Finish copies the
// payload into the immutable Block, so the returned block shares nothing
// with the pooled builder.
func encodeBlockPooled(pts []series.Point) (Block, error) {
	b := blockBuilderPool.Get().(*BlockBuilder)
	b.Reset()
	for _, p := range pts {
		if err := b.Append(p.Time, p.Value); err != nil {
			blockBuilderPool.Put(b)
			return Block{}, err
		}
	}
	blk := b.Finish()
	blockBuilderPool.Put(b)
	return blk, nil
}

// bucketBlock is the summary-tier counterpart of Block: a sealed
// compressed run of min/max/mean buckets. Starts ride a delta-of-delta
// chain (tier grids are regular), widths and counts ride their own
// small-delta chains (constant per tier between retunes), and min, max
// and sum are XOR chains against their own predecessors.
type bucketBlock struct {
	data      []byte
	n         int
	firstNano int64 // oldest start
	lastEnd   int64 // newest coverage end
	// samples is the sum of the bucket counts, kept so stats reporting
	// never has to decode a sealed block under the shard lock.
	samples int64
}

func (bb bucketBlock) size() int { return len(bb.data) }

type bucketBlockBuilder struct {
	w         *bitWriter
	n         int
	firstNano int64
	lastStart int64
	lastEnd   int64
	prevDelta int64
	prevWidth int64
	prevCount int64
	samples   int64
	min, max  xorState
	sum       xorState
}

func newBucketBlockBuilder() *bucketBlockBuilder {
	return &bucketBlockBuilder{w: newBitWriter()}
}

func (b *bucketBlockBuilder) reset() {
	b.w.buf = b.w.buf[:0]
	b.w.cur, b.w.free = 0, 8
	*b = bucketBlockBuilder{w: b.w}
}

// append encodes one bucket. Bucket starts must be non-decreasing; both
// bounds must be UnixNano-representable.
func (b *bucketBlockBuilder) append(bk bucket) error {
	if !unixNanoSafe(bk.start) || !unixNanoSafe(bk.end) {
		return ErrTimeRange
	}
	start, end := bk.start.UnixNano(), bk.end.UnixNano()
	width := end - start
	if b.n == 0 {
		b.w.writeBits(uint64(start), 64)
		b.w.writeBits(uint64(width), 64)
		b.w.writeBits(math.Float64bits(bk.min), 64)
		b.w.writeBits(math.Float64bits(bk.max), 64)
		b.w.writeBits(math.Float64bits(bk.sum), 64)
		b.w.writeBits(uint64(bk.count), 64)
		b.min.prev = math.Float64bits(bk.min)
		b.max.prev = math.Float64bits(bk.max)
		b.sum.prev = math.Float64bits(bk.sum)
		b.firstNano, b.lastStart, b.lastEnd = start, start, end
		b.prevWidth, b.prevCount = width, bk.count
		b.samples = bk.count
		b.n = 1
		return nil
	}
	if start < b.lastStart {
		return ErrOutOfOrder
	}
	delta := start - b.lastStart
	writeDoD(b.w, delta-b.prevDelta)
	writeDoD(b.w, width-b.prevWidth)
	b.min.write(b.w, math.Float64bits(bk.min))
	b.max.write(b.w, math.Float64bits(bk.max))
	b.sum.write(b.w, math.Float64bits(bk.sum))
	writeDoD(b.w, bk.count-b.prevCount)
	b.prevDelta, b.lastStart = delta, start
	b.prevWidth, b.prevCount = width, bk.count
	if end > b.lastEnd {
		b.lastEnd = end
	}
	b.samples += bk.count
	b.n++
	return nil
}

func (b *bucketBlockBuilder) finish() bucketBlock {
	data := append([]byte(nil), b.w.bytes()...)
	return bucketBlock{data: data, n: b.n, firstNano: b.firstNano, lastEnd: b.lastEnd, samples: b.samples}
}

// each decodes the block in order, calling emit for every bucket. The
// decode state is local, so concurrent readers may iterate one block.
func (bb bucketBlock) each(emit func(bucket)) error {
	r := newBitReader(bb.data)
	var (
		nano      int64
		prevDelta int64
		width     int64
		count     int64
		mn, mx, s xorState
	)
	for i := 0; i < bb.n; i++ {
		if i == 0 {
			nano = int64(r.readBits(64))
			width = int64(r.readBits(64))
			mn.prev = r.readBits(64)
			mx.prev = r.readBits(64)
			s.prev = r.readBits(64)
			count = int64(r.readBits(64))
		} else {
			delta := prevDelta + readDoD(&r)
			nano += delta
			prevDelta = delta
			width += readDoD(&r)
			mn.read(&r)
			mx.read(&r)
			s.read(&r)
			count += readDoD(&r)
		}
		if r.err != nil {
			return fmt.Errorf("%w (bucket %d of %d)", r.err, i, bb.n)
		}
		emit(bucket{
			start: time.Unix(0, nano),
			end:   time.Unix(0, nano+width),
			min:   math.Float64frombits(mn.prev),
			max:   math.Float64frombits(mx.prev),
			sum:   math.Float64frombits(s.prev),
			count: count,
		})
	}
	return nil
}
