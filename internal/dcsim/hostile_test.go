package dcsim

import (
	"strings"
	"testing"
	"time"
)

func buildHostile(t *testing.T, name string, seed int64, devices int) *Scenario {
	t.Helper()
	sc, err := BuildScenario(name, seed, devices)
	if err != nil {
		t.Fatalf("BuildScenario(%s): %v", name, err)
	}
	if !sc.Spec.Hostile || sc.Hostile == nil {
		t.Fatalf("scenario %s not marked hostile (spec=%v hostile=%v)", name, sc.Spec.Hostile, sc.Hostile)
	}
	return sc
}

func TestHostileCatalogPresent(t *testing.T) {
	want := map[string]bool{"cardinality": true, "backfill": true, "clockskew": true, "podchurn": true}
	hostile := 0
	for _, sp := range Scenarios() {
		if !sp.Hostile {
			if want[sp.Name] {
				t.Errorf("regime %s lost its Hostile mark", sp.Name)
			}
			continue
		}
		hostile++
		if !want[sp.Name] {
			continue
		}
		delete(want, sp.Name)
	}
	if hostile < 4 {
		t.Errorf("catalog has %d hostile regimes, want >= 4", hostile)
	}
	for name := range want {
		t.Errorf("hostile regime %s missing from catalog", name)
	}
}

func TestWireGenDeterministic(t *testing.T) {
	for _, sp := range Scenarios() {
		if !sp.Hostile {
			continue
		}
		t.Run(sp.Name, func(t *testing.T) {
			a := NewWireGen(buildHostile(t, sp.Name, 7, 12), WireConfig{})
			b := NewWireGen(buildHostile(t, sp.Name, 7, 12), WireConfig{})
			for r := 0; r < 3; r++ {
				ra, rb := a.Round(), b.Round()
				if len(ra) != len(rb) {
					t.Fatalf("round %d: %d vs %d samples", r, len(ra), len(rb))
				}
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("round %d sample %d differs: %+v vs %+v", r, i, ra[i], rb[i])
					}
				}
			}
			// A different seed must change the traffic, not just the ids.
			c := NewWireGen(buildHostile(t, sp.Name, 8, 12), WireConfig{})
			rc := c.Round()
			ra := NewWireGen(buildHostile(t, sp.Name, 7, 12), WireConfig{})
			if first := ra.Round(); len(rc) > 0 && len(first) > 0 && rc[0].Value == first[0].Value {
				t.Errorf("seed 7 and 8 produced the same first value %v", rc[0].Value)
			}
		})
	}
}

// TestWireBackfillIsLateAndRejectable checks every Late sample ships
// after an on-time sample with a newer wire timestamp from the same
// device — the property that makes a strict-append store reject exactly
// the late arrivals.
func TestWireBackfillIsLateAndRejectable(t *testing.T) {
	sc := buildHostile(t, "backfill", 11, 12)
	g := NewWireGen(sc, WireConfig{})
	newest := make(map[int]time.Time)
	late, onTime := 0, 0
	for r := 0; r < 4; r++ {
		for _, ws := range g.Round() {
			if ws.Late {
				late++
				if !ws.Time.Before(newest[ws.Device]) {
					t.Fatalf("late sample for device %d at %v is not behind newest %v", ws.Device, ws.Time, newest[ws.Device])
				}
				continue
			}
			onTime++
			if !newest[ws.Device].Before(ws.Time) {
				t.Fatalf("on-time sample for device %d at %v does not advance newest %v", ws.Device, ws.Time, newest[ws.Device])
			}
			newest[ws.Device] = ws.Time
		}
	}
	if late == 0 {
		t.Fatal("backfill regime emitted no late samples")
	}
	total := late + onTime
	if frac := float64(late) / float64(total); frac < 0.1 || frac > 0.4 {
		t.Errorf("late fraction %.2f far from BackfillFraction %.2f", frac, sc.Hostile.BackfillFraction)
	}
}

// TestWireChurnRotatesIDs checks churned regimes rotate ids on the epoch
// boundary and that DistinctIDs matches the traffic.
func TestWireChurnRotatesIDs(t *testing.T) {
	for _, name := range []string{"cardinality", "podchurn"} {
		t.Run(name, func(t *testing.T) {
			sc := buildHostile(t, name, 5, 8)
			g := NewWireGen(sc, WireConfig{})
			const rounds = 3
			ids := make(map[string]bool)
			churned := 0
			for r := 0; r < rounds; r++ {
				for _, ws := range g.Round() {
					ids[ws.ID] = true
					if strings.Contains(ws.ID, "#e") {
						churned++
					}
				}
			}
			if churned == 0 {
				t.Fatal("no churned ids on the wire")
			}
			want := g.DistinctIDs(rounds)
			if len(ids) != want {
				t.Errorf("distinct ids on wire %d, DistinctIDs says %d", len(ids), want)
			}
			if len(ids) <= len(sc.Fleet.Devices) {
				t.Errorf("churn produced only %d ids for %d devices", len(ids), len(sc.Fleet.Devices))
			}
		})
	}
}

// TestWireClockStepChangesCadence checks the coordinated step: wire time
// jumps forward (never backward — the store must keep accepting) and the
// post-step gap shrinks by StepRateFactor, which is what forces the
// estimator re-probe.
func TestWireClockStepChangesCadence(t *testing.T) {
	sc := buildHostile(t, "clockskew", 3, 4)
	g := NewWireGen(sc, WireConfig{})
	h := sc.Hostile
	stepAt := int(h.StepAtFraction * float64(sc.Spec.MaxRounds*g.SamplesPerRound()))
	var times []time.Time
	for r := 0; r < sc.Spec.MaxRounds; r++ {
		for _, ws := range g.Round() {
			if ws.Device == 0 {
				times = append(times, ws.Time)
			}
		}
	}
	if len(times) <= stepAt+2 {
		t.Fatalf("only %d samples for device 0, need past step index %d", len(times), stepAt)
	}
	for i := 1; i < len(times); i++ {
		if !times[i].After(times[i-1]) {
			t.Fatalf("wire time not strictly increasing at sample %d: %v -> %v", i, times[i-1], times[i])
		}
	}
	pre := times[stepAt-1].Sub(times[stepAt-2]).Seconds()
	jump := times[stepAt].Sub(times[stepAt-1]).Seconds()
	post := times[stepAt+2].Sub(times[stepAt+1]).Seconds()
	if jump < h.StepSeconds {
		t.Errorf("step gap %.1fs, want >= StepSeconds %.1fs", jump, h.StepSeconds)
	}
	if ratio := post / pre; ratio < 0.9*h.StepRateFactor || ratio > 1.1*h.StepRateFactor {
		t.Errorf("post/pre cadence ratio %.3f, want ~StepRateFactor %.2f", ratio, h.StepRateFactor)
	}
}

// TestWireSkipRoundsResumes checks a generator that skipped n rounds
// continues exactly where a continuous generator would be — the property
// the chaos harness leans on to resume a scenario after a restart.
func TestWireSkipRoundsResumes(t *testing.T) {
	for _, name := range []string{"backfill", "clockskew"} {
		t.Run(name, func(t *testing.T) {
			cont := NewWireGen(buildHostile(t, name, 17, 6), WireConfig{})
			skip := NewWireGen(buildHostile(t, name, 17, 6), WireConfig{})
			cont.Round()
			cont.Round()
			skip.SkipRounds(2)
			a, b := cont.Round(), skip.Round()
			if len(a) != len(b) {
				t.Fatalf("round 3 length differs: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round 3 sample %d differs after SkipRounds: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestHostileDevicesAreOversampled guards the fleet-builder invariant:
// hostile regimes stress the wire, so every device must be estimable
// from its own clean traffic.
func TestHostileDevicesAreOversampled(t *testing.T) {
	for _, sp := range Scenarios() {
		if !sp.Hostile {
			continue
		}
		sc := buildHostile(t, sp.Name, 101, 48)
		for _, d := range sc.Fleet.Devices {
			if !d.Oversampled() {
				t.Errorf("%s: device %s polls at %.3g Hz below its true Nyquist %.3g Hz", sp.Name, d.ID, d.PollRate(), d.TrueNyquist)
			}
			if d.TrueNyquist < 4*DiurnalFreq {
				t.Errorf("%s: device %s true Nyquist %.3g Hz is below the harmonic floor", sp.Name, d.ID, d.TrueNyquist)
			}
		}
	}
}
