package dcsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/dsp"
	"repro/internal/series"
)

// Device is one monitored metric on one simulated datacenter component: a
// switch interface counter, a server temperature probe, a pingmesh path.
// It implements the core.Sampler contract (At) so the estimator, detector
// and adaptive sampler can drive it directly.
type Device struct {
	// ID uniquely identifies the metric/device pair in the fleet.
	ID string
	// Metric is the metric family.
	Metric Metric
	// TrueNyquist is the ground-truth Nyquist rate of the underlying
	// signal in hertz (2x its band limit) — known here because we build
	// the signal, unknowable in production.
	TrueNyquist float64
	// PollInterval is the ad-hoc interval the production monitoring
	// system currently uses for this device.
	PollInterval time.Duration

	profile Profile
	sig     *Composite
	quant   *dsp.Quantizer
	noise   float64
	seed    uint64
}

// DiurnalFreq is one cycle per day in hertz, the fundamental of datacenter
// telemetry rhythms.
const DiurnalFreq = 1.0 / 86400

// NewDevice builds a device of the given metric family with the given
// band limit (hertz). rng drives the random signal construction; seed
// derives the deterministic measurement noise.
//
// Devices whose band limit admits at least one full cycle per day are
// built as diurnal-harmonic signals (components at multiples of
// DiurnalFreq), which is how production telemetry actually behaves.
// Slower devices are "quiet": their variation is scaled below the sensor
// quantum, so the exported readings are constant — the idle counters that
// make production fleets so compressible.
func NewDevice(id string, m Metric, bandLimit float64, pollInterval time.Duration, rng *rand.Rand, seed uint64) (*Device, error) {
	p := ProfileFor(m)
	var (
		base  *BandLimited
		noise = p.NoiseAmp
		err   error
	)
	if bandLimit >= DiurnalFreq {
		base, err = NewHarmonicSeries(rng, DiurnalFreq, bandLimit, p.Swing, 12)
	} else {
		// Quiet device: real variation exists but sits below the sensor
		// quantum, and the noise must too, or the quantized output
		// would flip and look like white noise.
		amp := p.Swing
		if p.QuantStep > 0 {
			amp = 0.25 * p.QuantStep
			if noise > 0.15*p.QuantStep {
				noise = 0.15 * p.QuantStep
			}
		}
		base, err = NewBandLimited(rng, bandLimit, amp, 12)
	}
	if err != nil {
		return nil, err
	}
	var q *dsp.Quantizer
	if p.QuantStep > 0 {
		q = &dsp.Quantizer{Step: p.QuantStep}
	}
	return &Device{
		ID:           id,
		Metric:       m,
		TrueNyquist:  2 * base.BandLimit(),
		PollInterval: pollInterval,
		profile:      p,
		sig:          &Composite{Base: base},
		quant:        q,
		noise:        noise,
		seed:         seed,
	}, nil
}

// At returns the measured value at time t seconds: base signal plus any
// bursts plus the metric's base level, white measurement noise, and sensor
// quantization — what a poll at t would actually read.
func (d *Device) At(t float64) float64 {
	v := d.profile.Base + d.sig.At(t)
	if d.noise > 0 {
		v += d.noise * whiteNoise(d.seed, t)
	}
	return d.quant.Value(v)
}

// CleanAt returns the value without noise and quantization, for fidelity
// baselines.
func (d *Device) CleanAt(t float64) float64 {
	return d.profile.Base + d.sig.At(t)
}

// AddBurst layers a transient event onto the device's signal.
func (d *Device) AddBurst(b Burst) {
	d.sig.Bursts = append(d.sig.Bursts, b)
}

// NewContinuousDevice builds a device whose signal components sit at
// arbitrary (non-harmonic) frequencies below the band limit. Used for the
// fleet's deliberately under-sampled devices: content folding from
// off-grid frequencies smears across the spectrum, producing the
// "all bins needed" aliased signature the estimator looks for — whereas
// harmonic content folds back onto clean bins and is undetectable from a
// single trace (the fundamental blind spot motivating §4.1's dual-rate
// detection).
func NewContinuousDevice(id string, m Metric, bandLimit float64, pollInterval time.Duration, rng *rand.Rand, seed uint64) (*Device, error) {
	p := ProfileFor(m)
	base, err := NewBandLimited(rng, bandLimit, p.Swing, 12)
	if err != nil {
		return nil, err
	}
	var q *dsp.Quantizer
	if p.QuantStep > 0 {
		q = &dsp.Quantizer{Step: p.QuantStep}
	}
	// Under-sampled production traces carry a visible broadband floor
	// (folded micro-bursts, counter churn); 15 % of the swing puts ~15 %
	// of the energy there, which is what makes such traces land in the
	// paper's "cannot reliably detect the Nyquist rate" bucket.
	noise := p.NoiseAmp
	if n := 0.15 * p.Swing; n > noise {
		noise = n
	}
	return &Device{
		ID:           id,
		Metric:       m,
		TrueNyquist:  2 * base.BandLimit(),
		PollInterval: pollInterval,
		profile:      p,
		sig:          &Composite{Base: base},
		quant:        q,
		noise:        noise,
		seed:         seed,
	}, nil
}

// SetNoiseAmp overrides the measurement-noise amplitude (0 models an
// ideal repeatable sensor whose only distortion is quantization).
func (d *Device) SetNoiseAmp(a float64) {
	if a < 0 {
		a = 0
	}
	d.noise = a
}

// Profile returns the device's metric profile.
func (d *Device) Profile() Profile { return d.profile }

// PollRate returns the production sampling rate in hertz.
func (d *Device) PollRate() float64 {
	if d.PollInterval <= 0 {
		return 0
	}
	return 1 / d.PollInterval.Seconds()
}

// Oversampled reports whether the production poll rate exceeds the true
// Nyquist rate (ground truth for Fig. 1).
func (d *Device) Oversampled() bool {
	return d.PollRate() > d.TrueNyquist
}

// Trace polls the device every PollInterval for the given duration
// starting at startOffset (seconds of signal time) and returns the uniform
// trace the production monitoring system would have collected.
func (d *Device) Trace(start time.Time, startOffset float64, duration time.Duration) *series.Uniform {
	n := int(duration / d.PollInterval)
	if n < 1 {
		n = 1
	}
	ivs := d.PollInterval.Seconds()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = d.At(startOffset + float64(i)*ivs)
	}
	return &series.Uniform{Start: start, Interval: d.PollInterval, Values: vals}
}

// CounterTrace exports the device as a cumulative counter, the way
// drop/discard/byte metrics actually leave a switch: each poll reads the
// integral of the underlying rate signal since the start, rounded to
// whole events. Analysis pipelines difference such traces back into rates
// (series.Diff) before spectral analysis — the paper treats its counter
// metrics the same way.
func (d *Device) CounterTrace(start time.Time, startOffset float64, duration time.Duration) *series.Uniform {
	n := int(duration / d.PollInterval)
	if n < 1 {
		n = 1
	}
	ivs := d.PollInterval.Seconds()
	vals := make([]float64, n)
	// Integrate the clean rate with a few sub-steps per poll so the
	// count is accurate even for long poll intervals, clamping negative
	// rate excursions to zero as real counters do.
	const subSteps = 4
	dt := ivs / subSteps
	var acc float64
	for i := range vals {
		base := startOffset + float64(i)*ivs
		for s := 0; s < subSteps; s++ {
			r := d.CleanAt(base + float64(s)*dt)
			if r > 0 {
				acc += r * dt
			}
		}
		vals[i] = math.Floor(acc)
	}
	return &series.Uniform{Start: start, Interval: d.PollInterval, Values: vals}
}

// RateFromCounter converts a cumulative counter trace back into the
// per-interval rate signal analysis operates on: the first difference
// scaled by the sampling interval.
func RateFromCounter(u *series.Uniform) (*series.Uniform, error) {
	if u == nil || u.Len() < 2 {
		return nil, series.ErrTooShort
	}
	diffs := series.Diff(u.Values)
	ivs := u.Interval.Seconds()
	if !(ivs > 0) {
		return nil, series.ErrBadInterval
	}
	for i := range diffs {
		diffs[i] /= ivs
	}
	return &series.Uniform{Start: u.Start.Add(u.Interval), Interval: u.Interval, Values: diffs}, nil
}

// TraceAtRate polls at an arbitrary rate (hertz) instead of the production
// interval; used by experiments that need reference (oversampled) traces.
func (d *Device) TraceAtRate(start time.Time, startOffset float64, duration time.Duration, rate float64) (*series.Uniform, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("dcsim: non-positive trace rate %v", rate)
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		return nil, fmt.Errorf("dcsim: trace rate %v too fast to represent", rate)
	}
	n := int(duration.Seconds() * rate)
	if n < 1 {
		n = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = d.At(startOffset + float64(i)/rate)
	}
	return &series.Uniform{Start: start, Interval: interval, Values: vals}, nil
}
