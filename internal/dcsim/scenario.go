package dcsim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dsp"
)

// The scenario engine: seeded, named workload regimes that stress the
// estimate→poll→retain control loop in qualitatively different ways. A
// production fleet is never one clean trace — it is diurnal rhythms with
// slow drift, microbursts riding quiet links, failed sensors flatlining,
// signals spread across four decades of band limit, whole racks moving in
// lockstep, and pollers whose phases were never synchronized. Each
// Scenario builds a deterministic device population exhibiting exactly
// one of those regimes, together with the quality bar and convergence
// bound a closed-loop controller must meet on it.

// ScenarioSpec names and bounds one workload regime of the catalog.
type ScenarioSpec struct {
	// Name is the catalog key (lowercase, stable — golden files and CLI
	// flags refer to it).
	Name string
	// Description is the operator-facing one-liner.
	Description string
	// DefaultDevices is the device count used when a build does not
	// specify one.
	DefaultDevices int
	// MaxRounds bounds how many control rounds a closed-loop controller
	// may need before every device's poll rate has converged on this
	// regime.
	MaxRounds int
	// QualityBar is the maximum acceptable reconstruction error on this
	// regime, as a fraction of each metric's value swing (RMSE/Swing
	// against the clean signal at converged rates).
	QualityBar float64
	// BudgetFraction is the share of the production fleet rate a
	// closed-loop run is budgeted on this regime (1 = the rate the fleet
	// already pays). Regimes that need aliasing probes get more headroom.
	//
	// Hostile regimes reinterpret this as the estimator-capacity budget:
	// the MaxSeries cap granted to the ingest harness, as a fraction of
	// the regime's distinct wire-id load (see fleet.RunHostile).
	BudgetFraction float64
	// Hostile marks wire-hostile regimes: the device population is
	// benign, but the wire transform (WireGen) churns ids, delivers
	// samples out of order, or skews clocks. Their bars are enforced by
	// the ingest-side hostile harness instead of the closed-loop
	// controller.
	Hostile bool
}

// Scenario is a built workload regime: the spec, the deterministic device
// population, and the per-device poll-phase offsets (zero except in the
// phase-jitter regime).
type Scenario struct {
	// Spec is the catalog entry the scenario was built from.
	Spec ScenarioSpec
	// Seed is the seed the population was built with.
	Seed int64
	// Fleet is the device population.
	Fleet *Fleet
	// PhaseOffset is each device's poll-phase offset in seconds of
	// signal time: device i's k-th poll at rate r reads the signal at
	// PhaseOffset[i] + k/r. All zeros except in the phasejitter regime.
	PhaseOffset []float64
	// Hostile carries the wire-transform knobs of hostile regimes (nil
	// for the benign catalog). The signals stay clean — the hostility is
	// in how samples reach the wire.
	Hostile *HostileSpec
}

// catalogEntry pairs a regime's spec with its builder.
type catalogEntry struct {
	spec  ScenarioSpec
	build func(s *Scenario, rng *rand.Rand) error
}

// scenarioCatalog holds the regimes in catalog order: the six benign
// regimes here, the hostile ones appended from hostile.go. Golden tests
// pin the builds, so changing a builder is a (deliberate) regression
// event.
var scenarioCatalog = []catalogEntry{
	{
		spec: ScenarioSpec{
			Name:           "diurnal",
			Description:    "daily rhythms with sub-diurnal drift, the baseline telemetry regime",
			DefaultDevices: 48,
			MaxRounds:      12,
			QualityBar:     0.35,
			BudgetFraction: 1,
		},
		build: buildDiurnal,
	},
	{
		spec: ScenarioSpec{
			Name:           "microburst",
			Description:    "quiet links with recurring high-frequency bursts (link flaps, batch jobs)",
			DefaultDevices: 48,
			MaxRounds:      14,
			QualityBar:     0.5,
			BudgetFraction: 2,
		},
		build: buildMicroburst,
	},
	{
		spec: ScenarioSpec{
			Name:           "flatline",
			Description:    "idle and failed sensors: variation below the sensor quantum, constant exports",
			DefaultDevices: 48,
			MaxRounds:      6,
			QualityBar:     0.2,
			BudgetFraction: 0.5,
		},
		build: buildFlatline,
	},
	{
		spec: ScenarioSpec{
			Name:           "sweep",
			Description:    "band limits swept log-uniformly across three decades, one device per step",
			DefaultDevices: 48,
			MaxRounds:      10,
			QualityBar:     0.45,
			BudgetFraction: 2,
		},
		build: buildSweep,
	},
	{
		spec: ScenarioSpec{
			Name:           "racks",
			Description:    "rack-correlated devices: 16 per rack share a base signal plus small local wiggle",
			DefaultDevices: 48,
			MaxRounds:      8,
			QualityBar:     0.35,
			BudgetFraction: 1,
		},
		build: buildRacks,
	},
	{
		spec: ScenarioSpec{
			Name:           "phasejitter",
			Description:    "identical rhythms polled with unsynchronized phases (staggered collector starts)",
			DefaultDevices: 48,
			MaxRounds:      8,
			QualityBar:     0.35,
			BudgetFraction: 1,
		},
		build: buildPhaseJitter,
	},
}

// Scenarios returns the catalog specs in catalog order.
func Scenarios() []ScenarioSpec {
	out := make([]ScenarioSpec, len(scenarioCatalog))
	for i, c := range scenarioCatalog {
		out[i] = c.spec
	}
	return out
}

// ScenarioNames returns the catalog keys, sorted.
func ScenarioNames() []string {
	out := make([]string, len(scenarioCatalog))
	for i, c := range scenarioCatalog {
		out[i] = c.spec.Name
	}
	sort.Strings(out)
	return out
}

// ErrUnknownScenario reports a name outside the catalog.
var ErrUnknownScenario = errors.New("dcsim: unknown scenario")

// BuildScenario builds the named regime deterministically from the seed.
// devices <= 0 selects the spec's default. The same (name, seed, devices)
// triple always yields byte-identical populations.
func BuildScenario(name string, seed int64, devices int) (*Scenario, error) {
	for _, c := range scenarioCatalog {
		if c.spec.Name != name {
			continue
		}
		if devices <= 0 {
			devices = c.spec.DefaultDevices
		}
		s := &Scenario{
			Spec:        c.spec,
			Seed:        seed,
			Fleet:       &Fleet{Seed: seed},
			PhaseOffset: make([]float64, devices),
		}
		s.Fleet.Devices = make([]*Device, 0, devices)
		rng := rand.New(rand.NewSource(seed ^ int64(fnvName(name))))
		if err := c.build(s, rng); err != nil {
			return nil, fmt.Errorf("dcsim: scenario %s: %w", name, err)
		}
		if len(s.Fleet.Devices) != devices {
			return nil, fmt.Errorf("dcsim: scenario %s built %d devices, want %d", name, len(s.Fleet.Devices), devices)
		}
		return s, nil
	}
	return nil, fmt.Errorf("%w %q (catalog: %v)", ErrUnknownScenario, name, ScenarioNames())
}

// fnvName folds the scenario name into the seed so two regimes built from
// the same seed do not share device populations.
func fnvName(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// scenarioID names device i of a regime.
func (s *Scenario) scenarioID(m Metric, i int) string {
	return fmt.Sprintf("%s/%s/dev%04d", s.Spec.Name, sanitize(ProfileFor(m).Name), i)
}

// metricAt cycles the 14 families so every regime mixes metric characters.
func metricAt(i int) Metric { return Metric(i % NumMetrics) }

// pollIntervalFor draws a production poll interval from the metric's
// ad-hoc set.
func pollIntervalFor(m Metric, rng *rand.Rand) (p Profile, iv float64) {
	p = ProfileFor(m)
	d := p.PollIntervals[rng.Intn(len(p.PollIntervals))]
	return p, d.Seconds()
}

// rawDevice assembles a Device from explicit parts — the in-package
// constructor scenario builders use when the public NewDevice shapes
// (harmonic/quiet/continuous) do not fit the regime.
func rawDevice(id string, m Metric, p Profile, base *BandLimited, intervalSecs float64, noise float64, seed uint64) *Device {
	d := &Device{
		ID:           id,
		Metric:       m,
		TrueNyquist:  2 * base.BandLimit(),
		PollInterval: secondsToDuration(intervalSecs),
		profile:      p,
		sig:          &Composite{Base: base},
		noise:        noise,
		seed:         seed,
	}
	if p.QuantStep > 0 {
		d.quant = &dsp.Quantizer{Step: p.QuantStep}
	}
	return d
}

// secondsToDuration converts seconds of signal time to a time.Duration.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// buildDiurnal: harmonic devices carrying the diurnal fundamental and its
// harmonics, plus a sub-diurnal drift component (a third of a cycle per
// day) modelling the slow load migration real fleets ride on.
func buildDiurnal(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	for i := 0; i < n; i++ {
		m := metricAt(i)
		p, iv := pollIntervalFor(m, rng)
		// Band limits one to two decades above the diurnal fundamental.
		bl := DiurnalFreq * math.Pow(10, 0.5+1.5*rng.Float64())
		seed := uint64(s.Seed) + uint64(i)*7919
		dev, err := NewDevice(s.scenarioID(m, i), m, bl, secondsToDuration(iv), rng, seed)
		if err != nil {
			return err
		}
		// Drift: a day-scale enveloped swell well below the fundamental,
		// long enough to span any audit window.
		dev.AddBurst(Burst{
			Start:    0,
			Duration: 64 * 86400,
			Freq:     DiurnalFreq / 3,
			Amp:      0.3 * p.Swing,
		})
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// buildMicroburst: slow harmonic base signals with a recurring train of
// short high-frequency bursts — the §4.2 regime where a controller that
// converged low must notice aliased windows and probe back up.
//
// The bursts sit far above Device.TrueNyquist, which (per the AddBurst
// contract throughout dcsim) tracks the *base* band only: transient
// events are deliberately not part of the steady-state ground truth —
// they are exactly what §4.2's probing exists to catch, and the regime's
// elevated QualityBar prices the reconstruction error of converging low
// between bursts.
func buildMicroburst(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	for i := 0; i < n; i++ {
		m := metricAt(i)
		p, iv := pollIntervalFor(m, rng)
		bl := DiurnalFreq * math.Pow(10, 0.3+0.7*rng.Float64())
		seed := uint64(s.Seed) + uint64(i)*7919
		dev, err := NewDevice(s.scenarioID(m, i), m, bl, secondsToDuration(iv), rng, seed)
		if err != nil {
			return err
		}
		// Bursts every one to three hours, 2-5 poll intervals long, at a
		// frequency far above the base band.
		period := 3600 * (1 + 2*rng.Float64())
		burstLen := iv * (2 + 3*rng.Float64())
		first := period * rng.Float64()
		freq := 40 * bl * (1 + rng.Float64())
		for _, b := range FlapTrain(first, period, burstLen, 64*86400, freq, 2*p.Swing) {
			dev.AddBurst(b)
		}
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// buildFlatline: idle counters and failed probes. Variation sits below
// the sensor quantum, so every poll reads the same number — the regime
// where a closed loop should collapse rates to the floor and retention to
// the coarsest tier.
func buildFlatline(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	for i := 0; i < n; i++ {
		m := metricAt(i)
		p, iv := pollIntervalFor(m, rng)
		// Real variation exists far below one cycle per day, but the
		// exported readings are exactly constant: the base level is
		// snapped onto the sensor grid and the swing held to a tenth of
		// a quantum, so round-to-nearest always lands on the same level.
		bl := DiurnalFreq * math.Pow(10, -2+1.5*rng.Float64())
		amp := 0.0
		if p.QuantStep > 0 {
			p.Base = math.Round(p.Base/p.QuantStep) * p.QuantStep
			amp = 0.1 * p.QuantStep
		}
		base, err := NewBandLimited(rng, bl, amp, 8)
		if err != nil {
			return err
		}
		seed := uint64(s.Seed) + uint64(i)*7919
		dev := rawDevice(s.scenarioID(m, i), m, p, base, iv, 0, seed)
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// buildSweep: one device per log-step of band limit across three decades
// (2e-6..2e-3 Hz) — the regime that exercises the controller's full
// dynamic range at once, like a chirp spread over the fleet.
func buildSweep(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	const lo, hi = 2e-6, 2e-3
	for i := 0; i < n; i++ {
		m := metricAt(i)
		p, iv := pollIntervalFor(m, rng)
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		bl := lo * math.Pow(hi/lo, frac)
		base, err := NewBandLimited(rng, bl, p.Swing, 10)
		if err != nil {
			return err
		}
		seed := uint64(s.Seed) + uint64(i)*7919
		dev := rawDevice(s.scenarioID(m, i), m, p, base, iv, p.NoiseAmp, seed)
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// buildRacks: devices grouped into racks of 16 sharing one base signal
// (the rack's aggregate load), each adding a small independent wiggle and
// its own measurement noise — the correlation structure black-hole
// detectors see on backbone traffic mixes.
func buildRacks(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	const rackSize = 16
	var rackBase *BandLimited
	var rackLimit float64
	for i := 0; i < n; i++ {
		m := metricAt(i)
		p, iv := pollIntervalFor(m, rng)
		if i%rackSize == 0 {
			// New rack: a fresh shared base one decade above diurnal.
			rackLimit = DiurnalFreq * math.Pow(10, 0.5+rng.Float64())
			var err error
			rackBase, err = NewBandLimited(rng, rackLimit, 1, 10)
			if err != nil {
				return err
			}
		}
		// Local wiggle at 10 % amplitude within the same band, so the
		// rack's devices stay spectrally aligned but not identical.
		wiggle, err := NewBandLimited(rng, rackLimit, 0.1, 4)
		if err != nil {
			return err
		}
		base := mergeBandLimited(rackBase, wiggle, p.Swing)
		seed := uint64(s.Seed) + uint64(i)*7919
		dev := rawDevice(s.scenarioID(m, i), m, p, base, iv, p.NoiseAmp, seed)
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// buildPhaseJitter: devices with near-identical diurnal-harmonic signals
// whose polls start at unsynchronized phases — the collector-restart
// regime where aggregate fleet load is smeared across the poll period.
// The offsets land in Scenario.PhaseOffset; a controller must apply them
// when polling.
func buildPhaseJitter(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	for i := 0; i < n; i++ {
		m := metricAt(i)
		_, iv := pollIntervalFor(m, rng)
		bl := DiurnalFreq * math.Pow(10, 0.8+0.4*rng.Float64())
		seed := uint64(s.Seed) + uint64(i)*7919
		dev, err := NewDevice(s.scenarioID(m, i), m, bl, secondsToDuration(iv), rng, seed)
		if err != nil {
			return err
		}
		s.PhaseOffset[i] = iv * rng.Float64()
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// mergeBandLimited sums two component sets into one signal normalized to
// the requested amplitude scale, preserving the wider band limit.
func mergeBandLimited(a, b *BandLimited, amp float64) *BandLimited {
	comps := make([]component, 0, len(a.comps)+len(b.comps))
	comps = append(append(comps, a.comps...), b.comps...)
	total := 0.0
	for _, c := range comps {
		total += math.Abs(c.amp)
	}
	if total > 0 {
		for i := range comps {
			comps[i].amp *= amp / total
		}
	}
	return &BandLimited{comps: comps, limit: math.Max(a.limit, b.limit)}
}
