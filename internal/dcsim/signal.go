package dcsim

import (
	"errors"
	"math"
	"math/rand"
)

// BandLimited is a deterministic, strictly band-limited test signal: a sum
// of sinusoids with frequencies at or below its band limit, amplitudes
// decaying toward the band edge (pink-ish, as real telemetry looks) but
// with a guaranteed energetic component *at* the edge so that the Nyquist
// rate of the generated signal is genuinely 2*BandLimit.
type BandLimited struct {
	comps []component
	limit float64
}

type component struct {
	freq, amp, phase float64
}

// NewBandLimited builds a signal with nComps sinusoids below bandLimit
// (hertz) whose overall amplitude scale is amp, using rng for the random
// draw. The highest component always sits exactly at bandLimit with at
// least 10 % of the total amplitude, pinning the true Nyquist rate.
func NewBandLimited(rng *rand.Rand, bandLimit, amp float64, nComps int) (*BandLimited, error) {
	if !(bandLimit > 0) {
		return nil, errors.New("dcsim: band limit must be positive")
	}
	if nComps < 1 {
		nComps = 1
	}
	b := &BandLimited{limit: bandLimit}
	total := 0.0
	comps := make([]component, 0, nComps)
	for i := 0; i < nComps-1; i++ {
		// Log-uniform frequencies within (bandLimit/100, bandLimit).
		f := bandLimit * math.Pow(10, -2*rng.Float64())
		// Amplitude decays with frequency (1/sqrt(f/flo) profile).
		a := 1 / math.Sqrt(f/(bandLimit/100))
		comps = append(comps, component{freq: f, amp: a, phase: 2 * math.Pi * rng.Float64()})
		total += a
	}
	// Edge component pins the band limit.
	edge := component{freq: bandLimit, amp: math.Max(total/6, 1), phase: 2 * math.Pi * rng.Float64()}
	comps = append(comps, edge)
	total += edge.amp
	// Normalize to the requested amplitude scale.
	for i := range comps {
		comps[i].amp *= amp / total
	}
	b.comps = comps
	return b, nil
}

// NewHarmonicSeries builds a signal whose components sit at integer
// multiples of baseFreq up to bandLimit — the structure of real datacenter
// telemetry, which is dominated by the diurnal cycle and its harmonics.
// The top harmonic is always included with at least ~1/7 of the amplitude
// so the band limit stays energetically visible to a 99 % energy cut-off.
// nComps bounds how many distinct harmonics are drawn.
func NewHarmonicSeries(rng *rand.Rand, baseFreq, bandLimit, amp float64, nComps int) (*BandLimited, error) {
	if !(baseFreq > 0) {
		return nil, errors.New("dcsim: base frequency must be positive")
	}
	if bandLimit < baseFreq {
		return nil, errors.New("dcsim: band limit below base frequency")
	}
	kMax := int(bandLimit / baseFreq)
	if kMax < 1 {
		kMax = 1
	}
	if nComps < 1 {
		nComps = 1
	}
	if nComps > kMax {
		nComps = kMax
	}
	b := &BandLimited{limit: float64(kMax) * baseFreq}
	total := 0.0
	comps := make([]component, 0, nComps)
	seen := map[int]bool{kMax: true}
	for len(comps) < nComps-1 {
		// Log-uniform harmonic index in [1, kMax).
		k := 1 + int(float64(kMax)*math.Pow(10, -2*rng.Float64()))
		if k >= kMax || seen[k] {
			// Collisions are fine; fall back to a linear draw to
			// guarantee progress on small kMax.
			k = 1 + rng.Intn(kMax)
			if seen[k] {
				break
			}
		}
		seen[k] = true
		a := 1 / math.Sqrt(float64(k))
		comps = append(comps, component{freq: float64(k) * baseFreq, amp: a, phase: 2 * math.Pi * rng.Float64()})
		total += a
	}
	edge := component{freq: float64(kMax) * baseFreq, amp: math.Max(total/6, 1), phase: 2 * math.Pi * rng.Float64()}
	comps = append(comps, edge)
	total += edge.amp
	for i := range comps {
		comps[i].amp *= amp / total
	}
	b.comps = comps
	return b, nil
}

// At returns the signal value at time t seconds.
func (b *BandLimited) At(t float64) float64 {
	var v float64
	for _, c := range b.comps {
		v += c.amp * math.Sin(2*math.Pi*c.freq*t+c.phase)
	}
	return v
}

// BandLimit returns the highest frequency present in the signal, in hertz.
func (b *BandLimited) BandLimit() float64 { return b.limit }

// Components returns the number of sinusoids.
func (b *BandLimited) Components() int { return len(b.comps) }

// whiteNoise produces deterministic white measurement noise: a hash of the
// sample time and a per-device seed, mapped to [-1, 1). Unlike an AR
// process it is well defined at any time instant, so two pollers sampling
// the same device at different rates see consistent values — exactly how
// real sensor noise behaves, and a prerequisite for the dual-rate detector
// to work on simulated devices.
func whiteNoise(seed uint64, t float64) float64 {
	x := math.Float64bits(t) ^ (seed * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(int64(x))/math.MaxInt64 - 0 // in (-1, 1)
}

// Burst is a transient high-frequency event layered on a base signal: a
// link flap, a fail-stop, an incident. During [Start, Start+Duration) it
// adds an enveloped oscillation at Freq; outside it contributes nothing.
// Bursts are how the fleet exercises the adaptive sampler's probe path
// (§4.2's frame-checksum example).
type Burst struct {
	// Start and Duration bound the event, in seconds of signal time.
	Start, Duration float64
	// Freq is the oscillation frequency in hertz (typically far above
	// the base signal's band limit).
	Freq float64
	// Amp is the oscillation amplitude.
	Amp float64
}

// At returns the burst's contribution at time t.
func (b Burst) At(t float64) float64 {
	if t < b.Start || t >= b.Start+b.Duration || b.Duration <= 0 {
		return 0
	}
	// Raised-cosine envelope avoids spectral splatter from hard edges.
	u := (t - b.Start) / b.Duration
	env := 0.5 * (1 - math.Cos(2*math.Pi*u))
	return b.Amp * env * math.Sin(2*math.Pi*b.Freq*t)
}

// FlapTrain returns the bursts of a periodically recurring event — a
// flapping transceiver, a nightly batch job — every period seconds
// starting at first, lasting burstLen each, until end. It is the standard
// workload for exercising the adaptive sampler's memory (§4.2).
func FlapTrain(first, period, burstLen, end, freq, amp float64) []Burst {
	var out []Burst
	if period <= 0 || burstLen <= 0 {
		return out
	}
	for t := first; t < end; t += period {
		out = append(out, Burst{Start: t, Duration: burstLen, Freq: freq, Amp: amp})
	}
	return out
}

// Composite sums a base signal and any number of bursts.
type Composite struct {
	// Base is the underlying band-limited signal.
	Base *BandLimited
	// Bursts are transient events.
	Bursts []Burst
}

// At returns the composite value at time t.
func (c *Composite) At(t float64) float64 {
	v := c.Base.At(t)
	for _, b := range c.Bursts {
		v += b.At(t)
	}
	return v
}
